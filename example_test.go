package lcws_test

import (
	"fmt"

	"lcws"
	"lcws/parlay"
)

// ExampleNew shows the basic scheduler lifecycle: create a pool, run a
// fork-join computation, and read the synchronization counters.
func ExampleNew() {
	// One worker keeps this example deterministic: with no thieves, a
	// split-deque scheduler performs zero synchronization operations.
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(lcws.SignalLCWS))
	var left, right int
	s.Run(func(ctx *lcws.Ctx) {
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) { left = 20 },
			func(ctx *lcws.Ctx) { right = 22 },
		)
	})
	fmt.Println(left + right)
	fmt.Println("fences:", s.Stats().Fences)
	// Output:
	// 42
	// fences: 0
}

// ExampleParFor shows a data-parallel loop with an explicit grain size.
func ExampleParFor() {
	s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(lcws.HalfLCWS))
	squares := make([]int, 8)
	s.Run(func(ctx *lcws.Ctx) {
		lcws.ParFor(ctx, 0, len(squares), 2, func(ctx *lcws.Ctx, i int) {
			squares[i] = i * i
		})
	})
	fmt.Println(squares)
	// Output:
	// [0 1 4 9 16 25 36 49]
}

// ExampleParsePolicy shows converting figure labels into policies.
func ExampleParsePolicy() {
	for _, name := range []string{"WS", "User", "Signal", "Half"} {
		p, err := lcws.ParsePolicy(name)
		if err != nil {
			fmt.Println(err)
			continue
		}
		fmt.Println(p)
	}
	// Output:
	// WS
	// USLCWS
	// Signal
	// Half
}

// Example_parlay shows the toolkit primitives composing under a
// scheduler: tabulate, filter and reduce.
func Example_parlay() {
	s := lcws.New(lcws.WithWorkers(2), lcws.WithPolicy(lcws.ConsLCWS))
	var sumOfEvenSquares uint64
	s.Run(func(ctx *lcws.Ctx) {
		squares := parlay.Tabulate(ctx, 10, func(i int) uint64 { return uint64(i * i) })
		even := parlay.Filter(ctx, squares, func(v uint64) bool { return v%2 == 0 })
		sumOfEvenSquares = parlay.Sum(ctx, even)
	})
	fmt.Println(sumOfEvenSquares)
	// Output:
	// 120
}
