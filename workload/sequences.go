// Package workload generates the synthetic input instances used by the
// pbbs benchmark suite, mirroring the input-instance families of PBBS v2
// (randomSeq, exptSeq, almostSortedSeq, trigram text, rMat and random
// local graphs, point distributions, and covtype-like labelled rows).
// All generators are deterministic functions of their seed, so every
// benchmark configuration is bit-for-bit reproducible. PBBS's default
// instances have ~100M elements; ours default to a few hundred thousand
// (configured by the harness) so the full evaluation sweep runs on a
// laptop-class host — see DESIGN.md §2 for the substitution rationale.
package workload

import (
	"math"

	"lcws/internal/rng"
)

// RandomSeq returns n uniform integers in [0, bound), as in PBBS's
// randomSeq_<n>_int (bound 2^27 by default there; callers pick the bound).
func RandomSeq(seed uint64, n int, bound uint64) []uint64 {
	out := make([]uint64, n)
	g := rng.New(seed)
	for i := range out {
		out[i] = g.Uint64n(bound)
	}
	return out
}

// ExptSeq returns n integers distributed approximately exponentially, as
// in PBBS's exptSeq: many small values, few large ones, heavy skew in the
// key histogram.
func ExptSeq(seed uint64, n int, bound uint64) []uint64 {
	out := make([]uint64, n)
	g := rng.New(seed)
	scale := float64(bound) / 16
	for i := range out {
		v := uint64(g.Exp() * scale)
		if v >= bound {
			v = bound - 1
		}
		out[i] = v
	}
	return out
}

// AlmostSortedSeq returns the sequence 0..n-1 with swaps random
// transpositions applied, as in PBBS's almostSortedSeq.
func AlmostSortedSeq(seed uint64, n, swaps int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i)
	}
	g := rng.New(seed)
	for s := 0; s < swaps; s++ {
		i, j := g.Intn(n), g.Intn(n)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// RandomDoubles returns n uniform float64 values in [0, 1).
func RandomDoubles(seed uint64, n int) []float64 {
	out := make([]float64, n)
	g := rng.New(seed)
	for i := range out {
		out[i] = g.Float64()
	}
	return out
}

// ExptDoubles returns n exponentially distributed float64 values.
func ExptDoubles(seed uint64, n int) []float64 {
	out := make([]float64, n)
	g := rng.New(seed)
	for i := range out {
		out[i] = g.Exp()
	}
	return out
}

// KeyValuePairs returns n (key, value) pairs with uniform keys in
// [0, bound), as in PBBS's randomSeq_<n>_int_pair_int instances (bound 256
// gives the heavily duplicated "randomSeq_100M_256_int_pair_int").
func KeyValuePairs(seed uint64, n int, bound uint64) (keys []uint64, vals []uint64) {
	keys = make([]uint64, n)
	vals = make([]uint64, n)
	g := rng.New(seed)
	for i := range keys {
		keys[i] = g.Uint64n(bound)
		vals[i] = g.Uint64()
	}
	return keys, vals
}

// LabeledRow is one row of the covtype-like classification dataset.
type LabeledRow struct {
	Features []float64
	Label    int
}

// CovtypeLike returns n labelled rows with the given number of numeric
// features and classes. The label is a noisy threshold function of a few
// features, so a decision tree can learn it (mirroring the covtype dataset
// used by PBBS classify): about 10% of the labels are randomized.
func CovtypeLike(seed uint64, n, features, classes int) []LabeledRow {
	if features < 2 {
		panic("workload: CovtypeLike needs at least 2 features")
	}
	g := rng.New(seed)
	rows := make([]LabeledRow, n)
	for i := range rows {
		f := make([]float64, features)
		for j := range f {
			f[j] = g.Float64()
		}
		// The true concept: a small axis-aligned decision "tree".
		var label int
		switch {
		case f[0] < 0.3:
			label = 0
		case f[1] > 0.6:
			label = 1 % classes
		case f[0]+f[1] > 1.2:
			label = 2 % classes
		default:
			label = int(math.Floor(f[1]*float64(classes))) % classes
		}
		if g.Float64() < 0.1 { // label noise
			label = g.Intn(classes)
		}
		rows[i] = LabeledRow{Features: f, Label: label}
	}
	return rows
}
