package workload

import (
	"sort"

	"lcws/internal/rng"
)

// Graph is a graph in compressed sparse row form. Edges of vertex v are
// Adj[Offsets[v]:Offsets[v+1]]. For undirected graphs every edge appears
// in both endpoints' adjacency lists.
type Graph struct {
	Offsets []int32
	Adj     []int32
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Offsets) - 1 }

// NumEdges returns the number of directed adjacency entries (twice the
// undirected edge count for symmetric graphs).
func (g *Graph) NumEdges() int { return len(g.Adj) }

// Neighbors returns the adjacency list of v.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Adj[g.Offsets[v]:g.Offsets[v+1]]
}

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Edge is an undirected edge with endpoints U < V possible but not
// required.
type Edge struct{ U, V int32 }

// WeightedEdge is an Edge with a weight, for the spanning-forest
// benchmarks.
type WeightedEdge struct {
	U, V int32
	W    float64
}

// BuildGraph converts an edge list over n vertices into CSR form,
// symmetrizing (each edge appears in both directions) and removing
// self-loops and duplicate directed entries.
func BuildGraph(n int, edges []Edge) *Graph {
	type dedge struct{ u, v int32 }
	dir := make([]dedge, 0, 2*len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		dir = append(dir, dedge{e.U, e.V}, dedge{e.V, e.U})
	}
	sort.Slice(dir, func(i, j int) bool {
		if dir[i].u != dir[j].u {
			return dir[i].u < dir[j].u
		}
		return dir[i].v < dir[j].v
	})
	// Remove duplicates.
	uniq := dir[:0]
	for i, e := range dir {
		if i == 0 || e != dir[i-1] {
			uniq = append(uniq, e)
		}
	}
	offsets := make([]int32, n+1)
	for _, e := range uniq {
		offsets[e.u+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, len(uniq))
	for i, e := range uniq {
		adj[i] = e.v
	}
	return &Graph{Offsets: offsets, Adj: adj}
}

// RMatEdges returns m edges over 2^logN vertices drawn from an RMAT
// distribution with the standard (0.57, 0.19, 0.19, 0.05) quadrant
// probabilities, mirroring PBBS's rMatGraph inputs (heavy-tailed degree
// distribution).
func RMatEdges(seed uint64, logN, m int) []Edge {
	g := rng.New(seed)
	edges := make([]Edge, m)
	for i := range edges {
		var u, v int32
		for bit := 0; bit < logN; bit++ {
			r := g.Float64()
			switch {
			case r < 0.57:
				// top-left: no bits set
			case r < 0.76:
				v |= 1 << bit
			case r < 0.95:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges[i] = Edge{u, v}
	}
	return edges
}

// RMatGraph returns the symmetrized CSR form of RMatEdges.
func RMatGraph(seed uint64, logN, m int) *Graph {
	return BuildGraph(1<<logN, RMatEdges(seed, logN, m))
}

// RandLocalEdges returns approximately degree*n/2 edges over n vertices
// where each vertex connects to random vertices within a window of its
// own id, mirroring PBBS's randLocalGraph (good locality, near-uniform
// degrees).
func RandLocalEdges(seed uint64, n, degree int) []Edge {
	g := rng.New(seed)
	window := n / 16
	if window < 4 {
		window = 4
	}
	edges := make([]Edge, 0, n*degree/2)
	for u := 0; u < n; u++ {
		for d := 0; d < degree/2; d++ {
			off := g.Intn(2*window) - window
			v := u + off
			if v < 0 {
				v += n
			}
			if v >= n {
				v -= n
			}
			if v != u {
				edges = append(edges, Edge{int32(u), int32(v)})
			}
		}
	}
	return edges
}

// RandLocalGraph returns the symmetrized CSR form of RandLocalEdges.
func RandLocalGraph(seed uint64, n, degree int) *Graph {
	return BuildGraph(n, RandLocalEdges(seed, n, degree))
}

// GridGraph3D returns the 6-neighbour 3D grid torus on side^3 vertices,
// mirroring PBBS's 3Dgrid inputs (bounded degree, large diameter).
func GridGraph3D(side int) *Graph {
	n := side * side * side
	id := func(x, y, z int) int32 {
		x = (x + side) % side
		y = (y + side) % side
		z = (z + side) % side
		return int32((x*side+y)*side + z)
	}
	edges := make([]Edge, 0, 3*n)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				u := id(x, y, z)
				edges = append(edges,
					Edge{u, id(x+1, y, z)},
					Edge{u, id(x, y+1, z)},
					Edge{u, id(x, y, z+1)},
				)
			}
		}
	}
	return BuildGraph(n, edges)
}

// WeightedEdges attaches deterministic pseudo-random weights in (0, 1) to
// an edge list (for minSpanningForest). Weights are distinct with high
// probability.
func WeightedEdges(seed uint64, edges []Edge) []WeightedEdge {
	out := make([]WeightedEdge, len(edges))
	for i, e := range edges {
		h := rng.Hash64(seed ^ uint64(i)<<32 ^ uint64(e.U)<<16 ^ uint64(e.V))
		out[i] = WeightedEdge{U: e.U, V: e.V, W: (float64(h>>11) + 1) / (1 << 53)}
	}
	return out
}
