package workload

import (
	"math"

	"lcws/internal/rng"
)

// Point2 is a point in the plane.
type Point2 struct{ X, Y float64 }

// Point3 is a point in 3-space.
type Point3 struct{ X, Y, Z float64 }

// InCube2D returns n uniform points in the unit square, mirroring PBBS's
// 2DinCube inputs.
func InCube2D(seed uint64, n int) []Point2 {
	g := rng.New(seed)
	out := make([]Point2, n)
	for i := range out {
		out[i] = Point2{g.Float64(), g.Float64()}
	}
	return out
}

// InSphere2D returns n points uniform inside the unit disk, mirroring
// PBBS's 2DinSphere inputs (a workload on which convex hulls are tiny).
func InSphere2D(seed uint64, n int) []Point2 {
	g := rng.New(seed)
	out := make([]Point2, n)
	for i := range out {
		r := math.Sqrt(g.Float64())
		th := 2 * math.Pi * g.Float64()
		out[i] = Point2{r * math.Cos(th), r * math.Sin(th)}
	}
	return out
}

// OnSphere2D returns n points on the unit circle (every point is on the
// hull — the convex hull worst case), mirroring PBBS's 2DonSphere.
func OnSphere2D(seed uint64, n int) []Point2 {
	g := rng.New(seed)
	out := make([]Point2, n)
	for i := range out {
		th := 2 * math.Pi * g.Float64()
		out[i] = Point2{math.Cos(th), math.Sin(th)}
	}
	return out
}

// Kuzmin2D returns n points from a Plummer/Kuzmin-like heavy-tailed radial
// distribution (clustered center, sparse fringe), mirroring PBBS's
// 2Dkuzmin inputs for nearest neighbors.
func Kuzmin2D(seed uint64, n int) []Point2 {
	g := rng.New(seed)
	out := make([]Point2, n)
	for i := range out {
		u := g.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		r := math.Sqrt(1/((1-u)*(1-u)) - 1)
		th := 2 * math.Pi * g.Float64()
		out[i] = Point2{r * math.Cos(th), r * math.Sin(th)}
	}
	return out
}

// InCube3D returns n uniform points in the unit cube.
func InCube3D(seed uint64, n int) []Point3 {
	g := rng.New(seed)
	out := make([]Point3, n)
	for i := range out {
		out[i] = Point3{g.Float64(), g.Float64(), g.Float64()}
	}
	return out
}

// PlummerBodies returns n bodies with Plummer-distributed positions and
// unit masses for the nBody benchmark (PBBS's 3DinCube/3Dplummer inputs).
func PlummerBodies(seed uint64, n int) []Point3 {
	g := rng.New(seed)
	out := make([]Point3, n)
	for i := range out {
		u := g.Float64()
		if u >= 1 {
			u = math.Nextafter(1, 0)
		}
		r := 1 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		// Uniform direction on the sphere.
		z := 2*g.Float64() - 1
		th := 2 * math.Pi * g.Float64()
		s := math.Sqrt(1 - z*z)
		out[i] = Point3{r * s * math.Cos(th), r * s * math.Sin(th), r * z}
	}
	return out
}

// Segment2 is a line segment in the plane (for the 2D rayCast benchmark).
type Segment2 struct{ A, B Point2 }

// RandomSegments returns n short random segments kept strictly inside the
// unit square (the domain of the rayCast acceleration grid).
func RandomSegments(seed uint64, n int, maxLen float64) []Segment2 {
	g := rng.New(seed)
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 0.999999 {
			return 0.999999
		}
		return v
	}
	out := make([]Segment2, n)
	for i := range out {
		a := Point2{g.Float64(), g.Float64()}
		th := 2 * math.Pi * g.Float64()
		l := maxLen * g.Float64()
		b := Point2{clamp(a.X + l*math.Cos(th)), clamp(a.Y + l*math.Sin(th))}
		out[i] = Segment2{A: a, B: b}
	}
	return out
}

// Ray2 is a ray in the plane with origin O and direction D.
type Ray2 struct{ O, D Point2 }

// RandomRays returns n rays with origins in the unit square and random
// directions.
func RandomRays(seed uint64, n int) []Ray2 {
	g := rng.New(seed)
	out := make([]Ray2, n)
	for i := range out {
		th := 2 * math.Pi * g.Float64()
		out[i] = Ray2{
			O: Point2{g.Float64(), g.Float64()},
			D: Point2{math.Cos(th), math.Sin(th)},
		}
	}
	return out
}
