package workload

import (
	"strings"

	"lcws/internal/rng"
)

// trigram model: a tiny fixed letter-transition table drives word
// generation, mirroring PBBS's trigramSeq/trigramString generators, which
// produce text whose word-frequency distribution is Zipf-like enough to
// exercise wordCounts, invertedIndex and suffixArray realistically.

const letters = "abcdefghijklmnopqrstuvwxyz"

// trigramNext deterministically picks the next letter from the previous
// two; mixing with a per-position random word keeps the text aperiodic.
func trigramNext(g *rng.Xoshiro256, a, b byte) byte {
	h := rng.Hash64(uint64(a)<<8 | uint64(b))
	// Bias towards a letter determined by the previous two, with noise.
	if g.Float64() < 0.6 {
		return letters[h%26]
	}
	return letters[g.Intn(26)]
}

// TrigramWord returns one word of length in [minLen, maxLen].
func trigramWord(g *rng.Xoshiro256, minLen, maxLen int) string {
	n := minLen
	if maxLen > minLen {
		n += g.Intn(maxLen - minLen + 1)
	}
	var sb strings.Builder
	sb.Grow(n)
	a, b := letters[g.Intn(26)], letters[g.Intn(26)]
	sb.WriteByte(a)
	if n > 1 {
		sb.WriteByte(b)
	}
	for i := 2; i < n; i++ {
		c := trigramNext(g, a, b)
		sb.WriteByte(c)
		a, b = b, c
	}
	return sb.String()
}

// TrigramWords returns n space-separated trigram words as a single string,
// mirroring PBBS's trigramSeq word sequences.
func TrigramWords(seed uint64, n int) string {
	g := rng.New(seed)
	var sb strings.Builder
	sb.Grow(n * 6)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(trigramWord(g, 2, 9))
	}
	return sb.String()
}

// TrigramString returns a string of length n over a small alphabet with
// trigram structure (PBBS trigramString), suitable for suffix-array
// workloads: repeated substrings occur but the text is not periodic.
func TrigramString(seed uint64, n int) []byte {
	g := rng.New(seed)
	out := make([]byte, n)
	a, b := letters[g.Intn(26)], letters[g.Intn(26)]
	for i := 0; i < n; i++ {
		var c byte
		if g.Float64() < 0.12 {
			c = ' ' // word boundaries
		} else {
			c = trigramNext(g, a, b)
		}
		out[i] = c
		a, b = b, c
	}
	return out
}

// ZipfDocuments returns nDocs documents whose words are drawn from a
// vocabulary with a Zipf-like rank-frequency distribution (exponent ~1),
// a closer match to natural-language corpora than the trigram model: a
// few words dominate, with a long tail of rare ones.
func ZipfDocuments(seed uint64, nDocs, wordsPerDoc, vocabulary int) []string {
	g := rng.New(seed)
	// Pre-generate the vocabulary with the trigram word model.
	vocab := make([]string, vocabulary)
	for i := range vocab {
		vocab[i] = trigramWord(g, 2, 9)
	}
	// Inverse-CDF sampling of a Zipf(1) rank distribution.
	cdf := make([]float64, vocabulary)
	total := 0.0
	for i := range cdf {
		total += 1 / float64(i+1)
		cdf[i] = total
	}
	pick := func() string {
		target := g.Float64() * total
		lo, hi := 0, vocabulary
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo >= vocabulary {
			lo = vocabulary - 1
		}
		return vocab[lo]
	}
	docs := make([]string, nDocs)
	for d := range docs {
		n := wordsPerDoc/2 + g.Intn(wordsPerDoc+1)
		var sb strings.Builder
		sb.Grow(n * 6)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(pick())
		}
		docs[d] = sb.String()
	}
	return docs
}

// Documents returns nDocs documents of roughly wordsPerDoc trigram words
// each, for the invertedIndex benchmark (standing in for PBBS's
// wikipedia250M input). Document lengths vary by ±50%.
func Documents(seed uint64, nDocs, wordsPerDoc int) []string {
	g := rng.New(seed)
	docs := make([]string, nDocs)
	for d := range docs {
		n := wordsPerDoc/2 + g.Intn(wordsPerDoc+1)
		var sb strings.Builder
		sb.Grow(n * 6)
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(trigramWord(g, 2, 8))
		}
		docs[d] = sb.String()
	}
	return docs
}
