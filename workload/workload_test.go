package workload

import (
	"math"
	"strings"
	"testing"
)

func TestRandomSeqDeterministicAndBounded(t *testing.T) {
	a := RandomSeq(1, 1000, 100)
	b := RandomSeq(1, 1000, 100)
	c := RandomSeq(2, 1000, 100)
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandomSeq not deterministic")
		}
		if a[i] >= 100 {
			t.Fatalf("RandomSeq value %d out of bound", a[i])
		}
		if a[i] != c[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical sequences")
	}
}

func TestExptSeqSkewed(t *testing.T) {
	xs := ExptSeq(3, 10000, 1<<20)
	small := 0
	for _, v := range xs {
		if v >= 1<<20 {
			t.Fatalf("ExptSeq value %d out of bound", v)
		}
		if v < 1<<16 {
			small++
		}
	}
	if small < 5000 {
		t.Errorf("ExptSeq not skewed: only %d/10000 small values", small)
	}
}

func TestAlmostSortedSeq(t *testing.T) {
	xs := AlmostSortedSeq(5, 10000, 100)
	inversions := 0
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("AlmostSortedSeq is fully sorted; swaps had no effect")
	}
	if inversions > 400 {
		t.Errorf("AlmostSortedSeq too disordered: %d adjacent inversions", inversions)
	}
	// It must still be a permutation of 0..n-1.
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatal("AlmostSortedSeq is not a permutation")
		}
		seen[v] = true
	}
}

func TestKeyValuePairs(t *testing.T) {
	k, v := KeyValuePairs(7, 500, 256)
	if len(k) != 500 || len(v) != 500 {
		t.Fatal("KeyValuePairs length mismatch")
	}
	for _, key := range k {
		if key >= 256 {
			t.Fatalf("key %d out of bound", key)
		}
	}
}

func TestCovtypeLikeLearnable(t *testing.T) {
	rows := CovtypeLike(11, 5000, 8, 4)
	for _, r := range rows {
		if len(r.Features) != 8 {
			t.Fatal("feature count wrong")
		}
		if r.Label < 0 || r.Label >= 4 {
			t.Fatalf("label %d out of range", r.Label)
		}
	}
	// The concept is mostly deterministic: the plurality class among
	// rows with f0 < 0.3 must be class 0 (10% noise cannot flip it).
	counts := map[int]int{}
	for _, r := range rows {
		if r.Features[0] < 0.3 {
			counts[r.Label]++
		}
	}
	best, bestC := -1, -1
	for l, c := range counts {
		if c > bestC {
			best, bestC = l, c
		}
	}
	if best != 0 {
		t.Errorf("plurality class for f0<0.3 is %d, want 0", best)
	}
}

func TestTrigramWordsShape(t *testing.T) {
	text := TrigramWords(13, 1000)
	words := strings.Fields(text)
	if len(words) != 1000 {
		t.Fatalf("TrigramWords produced %d words, want 1000", len(words))
	}
	freq := map[string]int{}
	for _, w := range words {
		for _, c := range w {
			if c < 'a' || c > 'z' {
				t.Fatalf("word %q contains non-letter", w)
			}
		}
		freq[w]++
	}
	if len(freq) == 1000 {
		t.Error("no repeated words; trigram model should repeat some")
	}
}

func TestTrigramString(t *testing.T) {
	s := TrigramString(17, 5000)
	if len(s) != 5000 {
		t.Fatalf("TrigramString length %d", len(s))
	}
	spaces := 0
	for _, c := range s {
		if c == ' ' {
			spaces++
		} else if c < 'a' || c > 'z' {
			t.Fatalf("unexpected byte %q", c)
		}
	}
	if spaces == 0 || spaces > 1500 {
		t.Errorf("space count %d out of expected range", spaces)
	}
}

func TestDocuments(t *testing.T) {
	docs := Documents(19, 50, 40)
	if len(docs) != 50 {
		t.Fatal("wrong doc count")
	}
	for _, d := range docs {
		n := len(strings.Fields(d))
		if n < 10 || n > 70 {
			t.Errorf("document has %d words, want ~40±50%%", n)
		}
	}
}

func TestBuildGraphSymmetricNoSelfLoops(t *testing.T) {
	g := BuildGraph(4, []Edge{{0, 1}, {1, 0}, {2, 2}, {1, 3}, {1, 3}})
	if g.NumVertices() != 4 {
		t.Fatal("vertex count")
	}
	// Edges: 0-1 and 1-3 (deduplicated, self-loop dropped) → 4 directed.
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	for v := int32(0); v < 4; v++ {
		for _, u := range g.Neighbors(v) {
			if u == v {
				t.Fatal("self loop survived")
			}
			found := false
			for _, w := range g.Neighbors(u) {
				if w == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", v, u)
			}
		}
	}
}

func TestRMatGraphShape(t *testing.T) {
	g := RMatGraph(23, 10, 8000)
	if g.NumVertices() != 1024 {
		t.Fatal("vertex count")
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	// RMAT graphs are heavy-tailed: the max degree should far exceed the
	// average degree.
	maxDeg, sumDeg := 0, 0
	for v := int32(0); v < 1024; v++ {
		d := g.Degree(v)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sumDeg / 1024
	if maxDeg < 4*(avg+1) {
		t.Errorf("RMAT degree distribution not heavy-tailed: max %d avg %d", maxDeg, avg)
	}
}

func TestRandLocalGraphDegrees(t *testing.T) {
	g := RandLocalGraph(29, 2000, 8)
	if g.NumVertices() != 2000 {
		t.Fatal("vertex count")
	}
	sum := 0
	for v := int32(0); v < 2000; v++ {
		sum += g.Degree(v)
	}
	avg := float64(sum) / 2000
	if avg < 4 || avg > 10 {
		t.Errorf("average degree %.1f outside expected range", avg)
	}
}

func TestGridGraph3D(t *testing.T) {
	g := GridGraph3D(5)
	if g.NumVertices() != 125 {
		t.Fatal("vertex count")
	}
	for v := int32(0); v < 125; v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("grid vertex %d has degree %d, want 6", v, g.Degree(v))
		}
	}
}

func TestWeightedEdges(t *testing.T) {
	edges := RMatEdges(31, 8, 1000)
	we := WeightedEdges(1, edges)
	seen := map[float64]bool{}
	for _, e := range we {
		if e.W <= 0 || e.W >= 1 {
			t.Fatalf("weight %v out of (0,1)", e.W)
		}
		seen[e.W] = true
	}
	if len(seen) < 990 {
		t.Errorf("weights not distinct enough: %d unique of 1000", len(seen))
	}
}

func TestPointDistributions(t *testing.T) {
	cube := InCube2D(37, 1000)
	for _, p := range cube {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatal("InCube2D point outside unit square")
		}
	}
	disk := InSphere2D(41, 1000)
	for _, p := range disk {
		if p.X*p.X+p.Y*p.Y > 1+1e-12 {
			t.Fatal("InSphere2D point outside unit disk")
		}
	}
	circ := OnSphere2D(43, 1000)
	for _, p := range circ {
		if math.Abs(p.X*p.X+p.Y*p.Y-1) > 1e-9 {
			t.Fatal("OnSphere2D point not on unit circle")
		}
	}
	cube3 := InCube3D(47, 100)
	for _, p := range cube3 {
		if p.Z < 0 || p.Z >= 1 {
			t.Fatal("InCube3D point outside cube")
		}
	}
	kz := Kuzmin2D(53, 1000)
	far := 0
	for _, p := range kz {
		if p.X*p.X+p.Y*p.Y > 100 {
			far++
		}
	}
	if far == 0 {
		t.Error("Kuzmin2D has no far-out points; tail missing")
	}
}

func TestSegmentsAndRays(t *testing.T) {
	segs := RandomSegments(59, 100, 0.1)
	for _, s := range segs {
		dx, dy := s.B.X-s.A.X, s.B.Y-s.A.Y
		if math.Hypot(dx, dy) > 0.1+1e-12 {
			t.Fatal("segment longer than maxLen")
		}
	}
	rays := RandomRays(61, 100)
	for _, r := range rays {
		if math.Abs(math.Hypot(r.D.X, r.D.Y)-1) > 1e-9 {
			t.Fatal("ray direction not unit length")
		}
	}
}

func TestPlummerBodies(t *testing.T) {
	bodies := PlummerBodies(67, 1000)
	if len(bodies) != 1000 {
		t.Fatal("body count")
	}
	// Plummer is centrally concentrated: more than half within r=1.3.
	near := 0
	for _, b := range bodies {
		if b.X*b.X+b.Y*b.Y+b.Z*b.Z < 1.3*1.3 {
			near++
		}
	}
	if near < 400 {
		t.Errorf("Plummer distribution not concentrated: %d/1000 near center", near)
	}
}

func TestZipfDocumentsSkew(t *testing.T) {
	docs := ZipfDocuments(71, 100, 50, 2000)
	if len(docs) != 100 {
		t.Fatal("doc count")
	}
	freq := map[string]int{}
	total := 0
	for _, d := range docs {
		for _, w := range strings.Fields(d) {
			freq[w]++
			total++
		}
	}
	// Zipf: the most frequent word should account for a large share,
	// and the vocabulary actually used should be much smaller than the
	// total word count.
	best := 0
	for _, c := range freq {
		if c > best {
			best = c
		}
	}
	if best < total/50 {
		t.Errorf("top word has %d/%d occurrences; expected heavy head", best, total)
	}
	if len(freq) >= total/2 {
		t.Errorf("%d distinct words of %d total; expected heavy reuse", len(freq), total)
	}
}
