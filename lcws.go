// Package lcws is a Go implementation of the schedulers from
// "Efficient Synchronization-Light Work Stealing" (Custódio, Paulino,
// Rito; SPAA 2023): the classic Work Stealing baseline and four variants
// of Low-Cost Work Stealing (LCWS) built on split deques, which keep most
// of a processor's deque private and synchronization-free while still
// allowing thieves to request and steal work.
//
// A Scheduler runs fork-join computations over P workers:
//
//	s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(lcws.SignalLCWS))
//	s.Run(func(ctx *lcws.Ctx) {
//	    lcws.Fork2(ctx,
//	        func(ctx *lcws.Ctx) { /* left branch */ },
//	        func(ctx *lcws.Ctx) { /* right branch */ },
//	    )
//	})
//
// Computational kernels should call ctx.Poll inside long sequential loops;
// that is the emulated signal-delivery point that lets the signal-based
// schedulers expose work in constant time (see internal/core for the full
// discussion of the signal emulation). Every scheduler records the
// synchronization operations its C++ reference implementation would
// execute; Stats exposes them for profiling (the paper's Figures 3 and 8).
//
// # Persistent executor
//
// A Scheduler is a long-lived executor: its workers are spawned once
// (lazily on first use, or eagerly via Start), stay resident parked on
// per-worker semaphores between jobs, and exit only on Close. Run is
// "submit and wait"; Submit enqueues a job from any goroutine and
// returns a *Job handle to Wait on, so many goroutines can serve
// concurrent jobs over one pool:
//
//	s := lcws.New(lcws.WithWorkers(8))
//	defer s.Close()
//	j := s.Submit(func(ctx *lcws.Ctx) { /* root task */ })
//	// ... other work, other Submits ...
//	if err := j.Wait(); err != nil { /* job failed */ }
//
// Jobs are isolated: a panicking task fails only its own job (Wait
// returns a *TaskPanic-wrapped error; the pool stays healthy), and
// jobs submitted with WithJobCtx observe context cancellation at task
// boundaries and Poll checkpoints. See DESIGN.md §10 for the
// executor's lifecycle state machine and cost model.
//
// # Elastic sizing
//
// The pool's live worker count is not fixed at construction. It starts
// at WithWorkers and moves between 1 and WithMaxWorkers (default: the
// initial count, i.e. a fixed pool): Scheduler.SetWorkers reconfigures
// it at any time — concurrently with running jobs — the pool grows on
// demand when queued jobs outrun unparked workers, and deep-parked
// workers retire under sustained idleness, releasing their deque
// arrays, freelists and trace rings. The resize machinery lives behind
// an epoch-guarded worker-set snapshot, so workers inside a stable
// epoch run the paper's fork/steal fast paths unchanged; see DESIGN.md
// §15.
//
// # Multi-tenant QoS
//
// Submissions are not a single FIFO line. Each job carries a priority
// class (High, Normal, Low — WithJobPriority) and an integer weight
// (WithJobWeight), and idle workers pick queued jobs up in
// weighted-fair (stride) order: classes share pickups in proportion to
// their configured weights (WithClassWeight, default 16:4:1), and jobs
// within a class in proportion to their job weights, FIFO among equals.
// Workers running a less-urgent job also poll for more-urgent queued
// jobs at Poll checkpoints and run them to completion inline when the
// weighted-fair order grants them the next turn, so a High submission's
// pickup latency under a saturating Low backlog is bounded by the
// checkpoint interval rather than by queue depth. Per-class queue
// capacities (WithClassCapacity) bound admission: a full class either
// fails the submission fast with ErrQueueFull (AdmitFail) or blocks the
// submitter until space frees (AdmitBlock, the default when a capacity
// is set) — pick with WithAdmission.
//
// # Errors
//
// Job.Err (and Wait) report exactly one of:
//
//   - ErrSchedulerClosed — submitted after Close, or still queued when
//     Close ran.
//   - ErrQueueFull — rejected by AdmitFail bounded admission.
//   - a *TaskPanic-wrapped error — a task function panicked.
//   - the job context's cancellation cause (context.Canceled,
//     context.DeadlineExceeded, or a context.WithCancelCause cause) for
//     jobs submitted with WithJobCtx.
//   - ErrJobInvariant — scheduler accounting self-check failed (a bug
//     in lcws, not in the caller).
//
// All are matchable with errors.Is/errors.As.
package lcws

import (
	"context"
	"io"

	"lcws/internal/core"
	"lcws/internal/trace"
)

// Ctx is the per-worker scheduling context passed to every task function.
// Its methods (Fork points via Fork2/ParFor, Poll/Checkpoint, ID, Rand)
// must be called only from the task function that received it.
type Ctx = core.Worker

// Scheduler is a persistent, elastic pool of resident workers; see New
// and the package comment's "Persistent executor" and "Elastic sizing"
// sections. Submit enqueues a job from any goroutine (with per-job
// SubmitOpts for class, weight, context and admission mode), Run is
// submit-and-wait, Start spawns the workers eagerly, SetWorkers resizes
// the live pool, Close shuts it down.
type Scheduler = core.Scheduler

// Job is the handle of one submitted fork-join computation: Wait (or
// the Done channel) for completion, then inspect Err and Stats.
type Job = core.Job

// JobStats is the per-job task accounting and duration, exact even when
// jobs overlap on the pool (unlike the scheduler-wide Stats deltas).
type JobStats = core.JobStats

// Errors surfaced through Job.Err; see the package comment's "Errors"
// section for the full taxonomy.
var (
	// ErrSchedulerClosed is returned by jobs submitted after Close.
	ErrSchedulerClosed = core.ErrSchedulerClosed
	// ErrQueueFull is returned by submissions rejected by bounded
	// admission (WithClassCapacity + WithAdmission(AdmitFail)).
	ErrQueueFull = core.ErrQueueFull
	// ErrJobInvariant wraps a post-job scheduler accounting violation (a
	// scheduler bug surfaced as a per-job error rather than a panic).
	ErrJobInvariant = core.ErrJobInvariant
)

// JobClass is a submission's priority class; see the package comment's
// "Multi-tenant QoS" section.
type JobClass = core.JobClass

// The priority classes, most urgent first.
const (
	// High is for latency-sensitive jobs.
	High = core.High
	// Normal is the default class of Submit and Run.
	Normal = core.Normal
	// Low is for batch/background jobs.
	Low = core.Low
)

// NumJobClasses is the number of priority classes.
const NumJobClasses = core.NumJobClasses

// ParseJobClass converts a class name ("high", "normal", "low",
// case-insensitive) into a JobClass.
func ParseJobClass(name string) (JobClass, bool) { return core.ParseJobClass(name) }

// AdmitMode selects what a submission does when its class queue is at
// its WithClassCapacity bound.
type AdmitMode = core.AdmitMode

const (
	// AdmitBlock blocks the submitter until space frees, the job's
	// context is cancelled, or the scheduler closes (the default).
	AdmitBlock = core.AdmitBlock
	// AdmitFail fails the submission immediately with ErrQueueFull.
	AdmitFail = core.AdmitFail
)

// SubmitOpt configures one submission (Submit or Run).
type SubmitOpt = core.SubmitOpt

// WithJobPriority sets the submission's priority class (default Normal).
func WithJobPriority(c JobClass) SubmitOpt { return core.WithJobPriority(c) }

// WithJobWeight sets the submission's weight within its class (default
// 1; values below 1 are clamped to 1). Jobs of one class share pickups
// in proportion to their weights.
func WithJobWeight(w int) SubmitOpt { return core.WithJobWeight(w) }

// WithJobCtx attaches a context: the job fails with the context's
// cancellation cause, observed at task boundaries and Poll checkpoints.
func WithJobCtx(ctx context.Context) SubmitOpt { return core.WithJobCtx(ctx) }

// WithAdmission sets the submission's behavior at a full class queue
// (default AdmitBlock). Irrelevant while the class is uncapped.
func WithAdmission(m AdmitMode) SubmitOpt { return core.WithAdmission(m) }

// Policy selects the scheduling algorithm.
type Policy = core.Policy

// The available scheduling policies (paper sections in parentheses).
const (
	// WS is the baseline Work Stealing scheduler on fully concurrent
	// Chase-Lev deques (Parlay's stock scheduler).
	WS = core.WS
	// USLCWS is user-space LCWS (§3): notifications are observed only at
	// task boundaries.
	USLCWS = core.USLCWS
	// SignalLCWS is signal-based LCWS (§4): constant-time work exposure.
	SignalLCWS = core.SignalLCWS
	// ConsLCWS is the Conservative Exposure variant (§4.1.1).
	ConsLCWS = core.ConsLCWS
	// HalfLCWS is the Expose Half variant (§4.1.2).
	HalfLCWS = core.HalfLCWS
	// LaceWS is the Lace comparator scheduler (related work, §2): split
	// deques with task-boundary exposure requests, half exposure, and
	// wholesale un-exposing of unstolen public work.
	LaceWS = core.LaceWS
	// MultFree is the relaxed split-deque policy: fence- and CAS-free
	// stealing of idempotent (range) tasks with bounded multiplicity;
	// duplicate executions are absorbed by a generation-stamp
	// arbitration, and Fork2 closures keep the exclusive CAS steal.
	MultFree = core.MultFree
)

// Policies lists every policy in presentation order (WS first).
var Policies = core.Policies[:]

// LCWSPolicies lists the four LCWS variants in the paper's figure order
// (User, Signal, Cons, Half).
var LCWSPolicies = core.LCWSPolicies[:]

// ParsePolicy converts a figure label (WS, USLCWS/User, Signal, Cons,
// Half) into a Policy.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// Option configures New.
type Option func(*core.Options)

// WithWorkers sets the initial number of workers P (default 1).
func WithWorkers(p int) Option { return func(o *core.Options) { o.Workers = p } }

// WithMaxWorkers sets the pool's growth ceiling: the live worker count
// may be moved between 1 and n by Scheduler.SetWorkers and by the
// demand-driven growth trigger (see the package comment's "Elastic
// sizing" section). It is floored at WithWorkers; the default equals
// WithWorkers, i.e. a pool that never grows on its own. Per-worker
// structures indexed by Ctx.ID are sized to n once at construction, so
// resizes move no memory.
func WithMaxWorkers(n int) Option { return func(o *core.Options) { o.MaxWorkers = n } }

// WithPolicy sets the scheduling policy (default WS).
func WithPolicy(p Policy) Option { return func(o *core.Options) { o.Policy = p } }

// WithDequeCapacity sets the per-worker deque's initial capacity. The
// deques grow by doubling when a spawn tree outgrows them, up to the
// WithMaxDequeCapacity cap.
func WithDequeCapacity(n int) Option { return func(o *core.Options) { o.DequeCapacity = n } }

// WithMaxDequeCapacity caps per-worker deque growth (never below the
// initial capacity). Past the cap the owner spills its oldest tasks to
// an unbounded overflow list instead of growing further, so arbitrarily
// wide spawn trees run in bounded deque memory.
func WithMaxDequeCapacity(n int) Option { return func(o *core.Options) { o.MaxDequeCapacity = n } }

// WithFreelistBound caps each worker's task freelist. Tasks freed past
// the bound are recycled through the scheduler's global shard pool or
// released to the GC, keeping steady-state memory flat across jobs of
// wildly different widths.
func WithFreelistBound(n int) Option { return func(o *core.Options) { o.FreelistBound = n } }

// WithClassWeight sets priority class c's share weight in the
// weighted-fair injector (default High:16, Normal:4, Low:1; values
// below 1 are clamped to 1). Classes receive job pickups in proportion
// to their weights while all have queued jobs.
func WithClassWeight(c JobClass, w int) Option {
	return func(o *core.Options) { o.ClassWeights[c] = w }
}

// WithClassCapacity bounds priority class c's submission queue to n
// queued (not yet picked up) jobs; 0, the default, leaves the class
// unbounded. Submissions to a full class block or fail per their
// WithAdmission mode.
func WithClassCapacity(c JobClass, n int) Option {
	return func(o *core.Options) { o.ClassCapacity[c] = n }
}

// WithSeed seeds the workers' victim-selection PRNGs for reproducible
// scheduling decisions.
func WithSeed(seed uint64) Option { return func(o *core.Options) { o.Seed = seed } }

// WithPollEvery sets how many ctx.Poll calls elapse between checks of the
// emulated pending-signal word (default 64) — the knob playing the role
// of OS signal-delivery latency in the signal emulation.
func WithPollEvery(n int) Option { return func(o *core.Options) { o.PollEvery = n } }

// WithYieldEvery makes each worker yield its OS thread after executing n
// tasks (0 = never, the default). On hosts with fewer CPUs than workers
// this produces steal and exposure dynamics representative of a real
// P-core machine; the profiling harness uses it for the paper's counter
// figures.
func WithYieldEvery(n int) Option { return func(o *core.Options) { o.YieldEvery = n } }

// WithStealBatch opts into the batched steal-side mode: thieves claim up
// to half of a victim's public part with one CAS, probe their last
// successful victim first (sticky victim selection), and idle workers
// park on per-worker semaphores woken by work-producing events instead
// of sleeping blind. The default (false) is the paper-faithful
// single-steal mode, whose fence/CAS accounting matches the counting
// model exactly; batch mode extends the model as documented in
// internal/counters/model.go.
func WithStealBatch(on bool) Option { return func(o *core.Options) { o.StealBatch = on } }

// WithTrace enables the flight recorder: each worker records typed,
// timestamped scheduler events (task spans, forks, steals, exposures,
// signals, parks) into a fixed-capacity owner-write ring, and derives
// steal/exposure/signal/park latency histograms, all readable at any
// time via Scheduler.TraceSnapshot and Scheduler.Stats. Tracing also
// labels workers' CPU-profile samples (runtime/pprof) with
// lcws_policy/lcws_worker/lcws_phase. The zero TraceConfig selects the
// default ring capacity. Without this option tracing costs nothing:
// workers hold no recorder and every trace hook is one nil check.
func WithTrace(cfg TraceConfig) Option {
	return func(o *core.Options) { c := cfg; o.Trace = &c }
}

// New returns a Scheduler. The zero configuration is a single-worker WS
// scheduler.
func New(opts ...Option) *Scheduler {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewScheduler(o)
}

// Fork2 executes left and right as a fork-join pair and returns when both
// are done; right may run on another worker.
func Fork2(ctx *Ctx, left, right func(*Ctx)) { core.Fork2(ctx, left, right) }

// Fork4 is a two-level Fork2 for four-way forks.
func Fork4(ctx *Ctx, a, b, c, d func(*Ctx)) { core.Fork4(ctx, a, b, c, d) }

// ForkN executes any number of branches as a balanced fork-join tree.
func ForkN(ctx *Ctx, fns ...func(*Ctx)) { core.ForkN(ctx, fns...) }

// ParFor executes body for every index in [lo, hi) with recursive binary
// splitting; grain <= 0 selects an automatic grain size.
func ParFor(ctx *Ctx, lo, hi, grain int, body func(ctx *Ctx, i int)) {
	core.ParFor(ctx, lo, hi, grain, body)
}

// Stats aggregates the instrumentation of a scheduler: the
// synchronization operations the reference C++ implementation would
// execute (Fences, CAS — see internal/counters/model.go for the counting
// model), scheduler-level event counts, and — on schedulers built with
// WithTrace — the four derived latency histograms (StealToHit,
// FlagToExposure, SignalToHandle, ParkDuration). The paper's profiles
// (Figures 3 and 8) are ratios of the counter fields between schedulers.
//
// Obtain one with Scheduler.Stats; take interval deltas with Stats.Sub:
//
//	before := s.Stats()
//	s.Run(phase)
//	delta := s.Stats().Sub(before)
type Stats = core.Stats

// StatsOf returns the counters accumulated by s since its creation or the
// last reset.
//
// Deprecated: use the Scheduler.Stats method instead.
func StatsOf(s *Scheduler) Stats { return s.Stats() }

// ResetStats zeroes s's counters and latency histograms.
//
// Deprecated: use the Scheduler.ResetStats method instead.
func ResetStats(s *Scheduler) { s.ResetStats() }

// Histogram is a power-of-two-bucketed latency histogram in nanoseconds
// with Mean/Quantile accessors; Stats and Trace expose the scheduler's
// derived latencies as Histograms.
type Histogram = trace.Histogram

// TraceConfig configures the flight recorder enabled by WithTrace.
type TraceConfig = trace.Config

// Trace is a decoded flight-recorder snapshot: every worker's typed,
// timestamped events merged into one stream, plus the aggregated
// latency histograms. Obtain one with Scheduler.TraceSnapshot; export
// it for Perfetto/chrome://tracing with its WriteChrome method.
type Trace = trace.Trace

// TraceEvent is one decoded flight-recorder event.
type TraceEvent = trace.Event

// TaskPanic is the value Scheduler.Run re-throws when a task function
// panics: the original panic value wrapped with the worker id it ran on
// and — when tracing — that worker's recent flight-recorder events.
// recover() still observes a non-nil value exactly when a task
// panicked; callers that inspect the value unwrap it:
//
//	defer func() {
//	    if r := recover(); r != nil {
//	        tp := r.(*lcws.TaskPanic)
//	        log.Printf("worker %d panicked: %v", tp.WorkerID, tp.Value)
//	    }
//	}()
type TaskPanic = core.TaskPanic

// WriteChromeTrace writes t in Chrome trace_event JSON, loadable in
// Perfetto (https://ui.perfetto.dev) and chrome://tracing.
func WriteChromeTrace(w io.Writer, t *Trace) error { return trace.WriteChrome(w, t) }
