// Package lcws is a Go implementation of the schedulers from
// "Efficient Synchronization-Light Work Stealing" (Custódio, Paulino,
// Rito; SPAA 2023): the classic Work Stealing baseline and four variants
// of Low-Cost Work Stealing (LCWS) built on split deques, which keep most
// of a processor's deque private and synchronization-free while still
// allowing thieves to request and steal work.
//
// A Scheduler runs fork-join computations over P workers:
//
//	s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(lcws.SignalLCWS))
//	s.Run(func(ctx *lcws.Ctx) {
//	    lcws.Fork2(ctx,
//	        func(ctx *lcws.Ctx) { /* left branch */ },
//	        func(ctx *lcws.Ctx) { /* right branch */ },
//	    )
//	})
//
// Computational kernels should call ctx.Poll inside long sequential loops;
// that is the emulated signal-delivery point that lets the signal-based
// schedulers expose work in constant time (see internal/core for the full
// discussion of the signal emulation). Every scheduler records the
// synchronization operations its C++ reference implementation would
// execute; Stats exposes them for profiling (the paper's Figures 3 and 8).
package lcws

import (
	"lcws/internal/core"
	"lcws/internal/counters"
)

// Ctx is the per-worker scheduling context passed to every task function.
// Its methods (Fork points via Fork2/ParFor, Poll/Checkpoint, ID, Rand)
// must be called only from the task function that received it.
type Ctx = core.Worker

// Scheduler is a reusable pool of workers; see New.
type Scheduler = core.Scheduler

// Policy selects the scheduling algorithm.
type Policy = core.Policy

// The available scheduling policies (paper sections in parentheses).
const (
	// WS is the baseline Work Stealing scheduler on fully concurrent
	// Chase-Lev deques (Parlay's stock scheduler).
	WS = core.WS
	// USLCWS is user-space LCWS (§3): notifications are observed only at
	// task boundaries.
	USLCWS = core.USLCWS
	// SignalLCWS is signal-based LCWS (§4): constant-time work exposure.
	SignalLCWS = core.SignalLCWS
	// ConsLCWS is the Conservative Exposure variant (§4.1.1).
	ConsLCWS = core.ConsLCWS
	// HalfLCWS is the Expose Half variant (§4.1.2).
	HalfLCWS = core.HalfLCWS
	// LaceWS is the Lace comparator scheduler (related work, §2): split
	// deques with task-boundary exposure requests, half exposure, and
	// wholesale un-exposing of unstolen public work.
	LaceWS = core.LaceWS
)

// Policies lists every policy in presentation order (WS first).
var Policies = core.Policies[:]

// LCWSPolicies lists the four LCWS variants in the paper's figure order
// (User, Signal, Cons, Half).
var LCWSPolicies = core.LCWSPolicies[:]

// ParsePolicy converts a figure label (WS, USLCWS/User, Signal, Cons,
// Half) into a Policy.
func ParsePolicy(name string) (Policy, error) { return core.ParsePolicy(name) }

// Option configures New.
type Option func(*core.Options)

// WithWorkers sets the number of workers P (default 1).
func WithWorkers(p int) Option { return func(o *core.Options) { o.Workers = p } }

// WithPolicy sets the scheduling policy (default WS).
func WithPolicy(p Policy) Option { return func(o *core.Options) { o.Policy = p } }

// WithDequeCapacity sets the per-worker deque capacity; the deques are
// fixed-size arrays as in the paper and panic on overflow.
func WithDequeCapacity(n int) Option { return func(o *core.Options) { o.DequeCapacity = n } }

// WithSeed seeds the workers' victim-selection PRNGs for reproducible
// scheduling decisions.
func WithSeed(seed uint64) Option { return func(o *core.Options) { o.Seed = seed } }

// WithPollEvery sets how many ctx.Poll calls elapse between checks of the
// emulated pending-signal word (default 64) — the knob playing the role
// of OS signal-delivery latency in the signal emulation.
func WithPollEvery(n int) Option { return func(o *core.Options) { o.PollEvery = n } }

// WithYieldEvery makes each worker yield its OS thread after executing n
// tasks (0 = never, the default). On hosts with fewer CPUs than workers
// this produces steal and exposure dynamics representative of a real
// P-core machine; the profiling harness uses it for the paper's counter
// figures.
func WithYieldEvery(n int) Option { return func(o *core.Options) { o.YieldEvery = n } }

// WithStealBatch opts into the batched steal-side mode: thieves claim up
// to half of a victim's public part with one CAS, probe their last
// successful victim first (sticky victim selection), and idle workers
// park on per-worker semaphores woken by work-producing events instead
// of sleeping blind. The default (false) is the paper-faithful
// single-steal mode, whose fence/CAS accounting matches the counting
// model exactly; batch mode extends the model as documented in
// internal/counters/model.go.
func WithStealBatch(on bool) Option { return func(o *core.Options) { o.StealBatch = on } }

// New returns a Scheduler. The zero configuration is a single-worker WS
// scheduler.
func New(opts ...Option) *Scheduler {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	return core.NewScheduler(o)
}

// Fork2 executes left and right as a fork-join pair and returns when both
// are done; right may run on another worker.
func Fork2(ctx *Ctx, left, right func(*Ctx)) { core.Fork2(ctx, left, right) }

// Fork4 is a two-level Fork2 for four-way forks.
func Fork4(ctx *Ctx, a, b, c, d func(*Ctx)) { core.Fork4(ctx, a, b, c, d) }

// ForkN executes any number of branches as a balanced fork-join tree.
func ForkN(ctx *Ctx, fns ...func(*Ctx)) { core.ForkN(ctx, fns...) }

// ParFor executes body for every index in [lo, hi) with recursive binary
// splitting; grain <= 0 selects an automatic grain size.
func ParFor(ctx *Ctx, lo, hi, grain int, body func(ctx *Ctx, i int)) {
	core.ParFor(ctx, lo, hi, grain, body)
}

// Stats aggregates the instrumentation counters of a scheduler: the
// synchronization operations the reference C++ implementation would
// execute (Fences, CAS — see internal/counters/model.go for the counting
// model) plus scheduler-level events. The paper's profiles (Figures 3 and
// 8) are ratios of these fields between schedulers.
type Stats struct {
	// Fences counts memory fences per the counting model.
	Fences uint64
	// CAS counts compare-and-swap instructions per the counting model.
	CAS uint64
	// StealAttempts counts pop_top calls on victims.
	StealAttempts uint64
	// StealSuccesses counts steals that obtained a task.
	StealSuccesses uint64
	// StealPrivateWork counts steal attempts that found only private
	// work and so notified the victim.
	StealPrivateWork uint64
	// StealAborts counts steal attempts that lost a CAS race.
	StealAborts uint64
	// Exposures counts tasks moved from private to public parts.
	Exposures uint64
	// ExposedNotStolen counts exposed tasks taken back by their owner.
	ExposedNotStolen uint64
	// SignalsSent counts emulated pthread_kill notifications.
	SignalsSent uint64
	// SignalsHandled counts exposure requests handled by owners.
	SignalsHandled uint64
	// IdleIterations counts scheduler iterations that found no work.
	IdleIterations uint64
	// ParkedNanos is the total time (ns) workers spent sleeping in the
	// idle backoff, separating parked idle cost from busy idle spinning.
	ParkedNanos uint64
	// TasksExecuted counts tasks run to completion.
	TasksExecuted uint64
	// TasksPushed counts deque pushes.
	TasksPushed uint64
	// StealBatchTasks counts tasks transferred by batched steals
	// (StealBatch mode); StealBatchTasks / StealSuccesses is the average
	// claimed batch size.
	StealBatchTasks uint64
	// WakeupsSent counts parked thieves woken by work-producing events
	// (StealBatch mode).
	WakeupsSent uint64
	// ParkCount counts semaphore parks in the idle parking lot
	// (StealBatch mode); the time spent parked is in ParkedNanos.
	ParkCount uint64
}

func statsFromSnapshot(sn counters.Snapshot) Stats {
	return Stats{
		Fences:           sn.Get(counters.Fence),
		CAS:              sn.Get(counters.CAS),
		StealAttempts:    sn.Get(counters.StealAttempt),
		StealSuccesses:   sn.Get(counters.StealSuccess),
		StealPrivateWork: sn.Get(counters.StealPrivate),
		StealAborts:      sn.Get(counters.StealAbort),
		Exposures:        sn.Get(counters.Exposure),
		ExposedNotStolen: sn.Get(counters.ExposedNotStolen),
		SignalsSent:      sn.Get(counters.SignalSent),
		SignalsHandled:   sn.Get(counters.SignalHandled),
		IdleIterations:   sn.Get(counters.IdleIteration),
		ParkedNanos:      sn.Get(counters.ParkedNanos),
		TasksExecuted:    sn.Get(counters.TaskExecuted),
		TasksPushed:      sn.Get(counters.TaskPushed),
		StealBatchTasks:  sn.Get(counters.StealBatchTasks),
		WakeupsSent:      sn.Get(counters.WakeupsSent),
		ParkCount:        sn.Get(counters.ParkCount),
	}
}

// StatsOf returns the counters accumulated by s since its creation or the
// last ResetStats call.
func StatsOf(s *Scheduler) Stats { return statsFromSnapshot(s.Counters()) }

// ResetStats zeroes s's counters.
func ResetStats(s *Scheduler) { s.ResetCounters() }

// UnstolenFraction returns the fraction of exposed tasks that were not
// stolen (Figures 3d and 8d), or 0 when nothing was exposed.
func (st Stats) UnstolenFraction() float64 {
	if st.Exposures == 0 {
		return 0
	}
	return float64(st.ExposedNotStolen) / float64(st.Exposures)
}
