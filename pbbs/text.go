package pbbs

import (
	"bytes"
	"sort"
	"strings"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// textInstances returns the wordCounts, invertedIndex, suffixArray and
// longestRepeatedSubstring instances.
func textInstances(scale Scale) []*Instance {
	nWords := scale.scaled(60_000)
	nDocs := scale.scaled(400)
	nSA := scale.scaled(40_000)
	nLRS := scale.scaled(25_000)
	return []*Instance{
		{Benchmark: "wordCounts", Input: "trigramSeq",
			Prepare: func() *Job { return wordCountsJob(workload.TrigramWords(201, nWords)) }},
		{Benchmark: "wordCounts", Input: "trigramSeq_small_alpha",
			Prepare: func() *Job {
				// Fewer distinct words: heavier duplication.
				return wordCountsJob(workload.TrigramWords(202, nWords/2) + " " + workload.TrigramWords(202, nWords/2))
			}},
		{Benchmark: "invertedIndex", Input: "wikipedia_like",
			Prepare: func() *Job { return invertedIndexJob(workload.Documents(211, nDocs, 60)) }},
		{Benchmark: "invertedIndex", Input: "wikipedia_like_zipf",
			Prepare: func() *Job { return invertedIndexJob(workload.ZipfDocuments(212, nDocs, 60, 5000)) }},
		{Benchmark: "suffixArray", Input: "trigramString",
			Prepare: func() *Job { return suffixArrayJob(workload.TrigramString(221, nSA)) }},
		{Benchmark: "longestRepeatedSubstring", Input: "trigramString",
			Prepare: func() *Job { return lrsJob(workload.TrigramString(231, nLRS)) }},
	}
}

// WordCount is one (word, occurrences) result entry of WordCounts.
type WordCount struct {
	Word  string
	Count int
}

// tokenize splits text into words in parallel: the text is cut into
// blocks, block boundaries are snapped forward to the next word start, and
// per-block token lists are flattened.
func tokenize(ctx *lcws.Ctx, text string) []string {
	n := len(text)
	if n == 0 {
		return nil
	}
	const grain = 8 << 10
	nb := (n + grain - 1) / grain
	parts := make([][]string, nb)
	lcws.ParFor(ctx, 0, nb, 1, func(ctx *lcws.Ctx, b int) {
		lo, hi := b*grain, (b+1)*grain
		if hi > n {
			hi = n
		}
		// A word is owned by the block containing its first byte. Advance
		// lo to the first word start in the block (position i is a word
		// start when text[i] is a letter and text[i-1] is a space).
		if lo > 0 {
			for lo < hi && !(text[lo] != ' ' && text[lo-1] == ' ') {
				lo++
			}
		}
		if lo >= hi {
			ctx.Poll()
			return
		}
		// Extend through a word still in progress at the block boundary;
		// a word starting exactly at hi belongs to the next block.
		end := hi
		if end < n && text[end-1] != ' ' {
			for end < n && text[end] != ' ' {
				end++
			}
		}
		parts[b] = strings.Fields(text[lo:end])
		ctx.Poll()
	})
	return parlay.Flatten(ctx, parts)
}

// WordCounts returns the occurrence count of every distinct word in text,
// ordered by word (the PBBS wordCounts kernel: parallel tokenize, parallel
// sort, run-length count).
func WordCounts(ctx *lcws.Ctx, text string) []WordCount {
	words := tokenize(ctx, text)
	if len(words) == 0 {
		return nil
	}
	parlay.SortFunc(ctx, words, func(a, b string) bool { return a < b })
	starts := parlay.Tabulate(ctx, len(words), func(i int) bool {
		return i == 0 || words[i] != words[i-1]
	})
	idx := parlay.PackIndex(ctx, starts)
	return parlay.Tabulate(ctx, len(idx), func(j int) WordCount {
		end := len(words)
		if j+1 < len(idx) {
			end = idx[j+1]
		}
		return WordCount{Word: words[idx[j]], Count: end - idx[j]}
	})
}

func wordCountsJob(text string) *Job {
	var got []WordCount
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = WordCounts(ctx, text) },
		Verify: func() error {
			want := map[string]int{}
			for _, w := range strings.Fields(text) {
				want[w]++
			}
			if len(got) != len(want) {
				return verifyErr("wordCounts", "%d distinct words, want %d", len(got), len(want))
			}
			for i, wc := range got {
				if want[wc.Word] != wc.Count {
					return verifyErr("wordCounts", "%q: count %d, want %d", wc.Word, wc.Count, want[wc.Word])
				}
				if i > 0 && got[i-1].Word >= wc.Word {
					return verifyErr("wordCounts", "output not sorted at %d", i)
				}
			}
			return nil
		},
	}
}

// Posting is one (word, document list) entry of an inverted index.
type Posting struct {
	Word string
	Docs []int32
}

// BuildInvertedIndex returns, for every distinct word across docs, the
// ascending list of document ids containing it (the PBBS invertedIndex
// kernel).
func BuildInvertedIndex(ctx *lcws.Ctx, docs []string) []Posting {
	type wd struct {
		word string
		doc  int32
	}
	// Tokenize every document in parallel.
	perDoc := parlay.Tabulate(ctx, len(docs), func(d int) []wd {
		words := strings.Fields(docs[d])
		out := make([]wd, len(words))
		for i, w := range words {
			out[i] = wd{word: w, doc: int32(d)}
		}
		return out
	})
	pairs := parlay.Flatten(ctx, perDoc)
	if len(pairs) == 0 {
		return nil
	}
	parlay.SortFunc(ctx, pairs, func(a, b wd) bool {
		if a.word != b.word {
			return a.word < b.word
		}
		return a.doc < b.doc
	})
	starts := parlay.Tabulate(ctx, len(pairs), func(i int) bool {
		return i == 0 || pairs[i].word != pairs[i-1].word
	})
	idx := parlay.PackIndex(ctx, starts)
	return parlay.Tabulate(ctx, len(idx), func(j int) Posting {
		end := len(pairs)
		if j+1 < len(idx) {
			end = idx[j+1]
		}
		p := Posting{Word: pairs[idx[j]].word}
		for i := idx[j]; i < end; i++ {
			d := pairs[i].doc
			if len(p.Docs) == 0 || p.Docs[len(p.Docs)-1] != d {
				p.Docs = append(p.Docs, d)
			}
		}
		return p
	})
}

func invertedIndexJob(docs []string) *Job {
	var got []Posting
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = BuildInvertedIndex(ctx, docs) },
		Verify: func() error {
			want := map[string][]int32{}
			for d, doc := range docs {
				seen := map[string]bool{}
				for _, w := range strings.Fields(doc) {
					if !seen[w] {
						seen[w] = true
						want[w] = append(want[w], int32(d))
					}
				}
			}
			for w := range want {
				sort.Slice(want[w], func(i, j int) bool { return want[w][i] < want[w][j] })
			}
			if len(got) != len(want) {
				return verifyErr("invertedIndex", "%d words, want %d", len(got), len(want))
			}
			for _, p := range got {
				ref, ok := want[p.Word]
				if !ok || len(ref) != len(p.Docs) {
					return verifyErr("invertedIndex", "posting list for %q wrong length", p.Word)
				}
				for i := range ref {
					if ref[i] != p.Docs[i] {
						return verifyErr("invertedIndex", "posting list for %q differs at %d", p.Word, i)
					}
				}
			}
			return nil
		},
	}
}

// SuffixArray returns the suffix array of s (indices of suffixes in
// lexicographic order) using parallel prefix doubling over the integer
// sort: O(log n) rounds of stable radix sorting on packed rank pairs.
func SuffixArray(ctx *lcws.Ctx, s []byte) []int32 {
	n := len(s)
	if n == 0 {
		return nil
	}
	// b = bits needed for a rank in [0, n].
	b := 1
	for 1<<b < n+1 {
		b++
	}
	rank := parlay.Tabulate(ctx, n, func(i int) uint64 { return uint64(s[i]) })
	sa := parlay.Tabulate(ctx, n, func(i int) uint64 { return uint64(i) })
	keys := make([]uint64, n)

	rerank := func(ctx *lcws.Ctx, sortedKeys []uint64) uint64 {
		// flags mark the start of each distinct-key run; the inclusive
		// scan numbers the runs; ranks scatter back by suffix position.
		flags := parlay.Tabulate(ctx, n, func(i int) uint64 {
			if i == 0 || sortedKeys[i] != sortedKeys[i-1] {
				return 1
			}
			return 0
		})
		nums := parlay.ScanInclusive(ctx, flags, 0, func(a, b uint64) uint64 { return a + b })
		lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
			rank[sa[i]] = nums[i] - 1
		})
		return nums[n-1] - 1 // max rank
	}

	// Round 0: sort by first character.
	copy(keys, rank)
	parlay.IntegerSortPairs(ctx, keys, sa, 8)
	maxRank := rerank(ctx, keys)

	for k := 1; k < n && maxRank < uint64(n-1); k *= 2 {
		kk := k
		lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) {
			second := uint64(0)
			if i+kk < n {
				second = rank[i+kk] + 1
			}
			keys[i] = rank[i]<<uint(b+1) | second
		})
		lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) { sa[i] = uint64(i) })
		parlay.IntegerSortPairs(ctx, keys, sa, 2*b+1)
		maxRank = rerank(ctx, keys)
	}

	return parlay.Tabulate(ctx, n, func(i int) int32 { return int32(sa[i]) })
}

func suffixArrayJob(s []byte) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = SuffixArray(ctx, s) },
		Verify: func() error {
			n := len(s)
			if len(got) != n {
				return verifyErr("suffixArray", "length %d, want %d", len(got), n)
			}
			seen := make([]bool, n)
			for _, p := range got {
				if p < 0 || int(p) >= n || seen[p] {
					return verifyErr("suffixArray", "not a permutation (position %d)", p)
				}
				seen[p] = true
			}
			// Every adjacent pair must be in lexicographic order; checking
			// all pairs is O(n · avg-lcp), fine at our scales.
			for i := 1; i < n; i++ {
				if bytes.Compare(s[got[i-1]:], s[got[i]:]) >= 0 {
					return verifyErr("suffixArray", "order violated at %d (suffixes %d, %d)", i, got[i-1], got[i])
				}
			}
			return nil
		},
	}
}

// LCPArray returns, for each adjacent pair of the suffix array, the
// length of their longest common prefix (lcp[0] = 0; lcp[i] =
// LCP(s[sa[i-1]:], s[sa[i]:])), each pair computed independently in
// parallel by direct comparison.
func LCPArray(ctx *lcws.Ctx, s []byte, sa []int32) []int32 {
	n := len(sa)
	if n == 0 {
		return nil
	}
	return parlay.Tabulate(ctx, n, func(i int) int32 {
		if i == 0 {
			return 0
		}
		a, b := int(sa[i-1]), int(sa[i])
		l := 0
		for a+l < len(s) && b+l < len(s) && s[a+l] == s[b+l] {
			l++
		}
		return int32(l)
	})
}

// LongestRepeatedSubstring returns the start position and length of the
// longest substring occurring at least twice in s, computed from the
// suffix array: the maximum longest-common-prefix over adjacent suffix
// pairs, with each pair's LCP computed by direct comparison in parallel.
func LongestRepeatedSubstring(ctx *lcws.Ctx, s []byte) (pos, length int) {
	n := len(s)
	if n < 2 {
		return 0, 0
	}
	sa := SuffixArray(ctx, s)
	lcp := LCPArray(ctx, s, sa)
	best := parlay.MaxIndex(ctx, lcp)
	if best <= 0 || lcp[best] == 0 {
		return 0, 0
	}
	return int(sa[best-1]), int(lcp[best])
}

func lrsJob(s []byte) *Job {
	var gotPos, gotLen int
	return &Job{
		Run: func(ctx *lcws.Ctx) { gotPos, gotLen = LongestRepeatedSubstring(ctx, s) },
		Verify: func() error {
			if gotLen == 0 {
				return verifyErr("longestRepeatedSubstring", "no repeat found in %d bytes", len(s))
			}
			sub := s[gotPos : gotPos+gotLen]
			// The reported substring must occur at least twice.
			first := bytes.Index(s, sub)
			if first < 0 || bytes.Index(s[first+1:], sub) < 0 {
				return verifyErr("longestRepeatedSubstring", "reported substring does not repeat")
			}
			// No longer repeat may exist: check length+1 windows.
			if gotLen+1 <= len(s) {
				seen := map[string]bool{}
				for i := 0; i+gotLen+1 <= len(s); i++ {
					w := string(s[i : i+gotLen+1])
					if seen[w] {
						return verifyErr("longestRepeatedSubstring", "found a longer repeat of length %d", gotLen+1)
					}
					seen[w] = true
				}
			}
			return nil
		},
	}
}
