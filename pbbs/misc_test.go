package pbbs

import (
	"math"
	"testing"

	"lcws"
	"lcws/workload"
)

func TestNBodyTwoBodiesSymmetric(t *testing.T) {
	bodies := []workload.Point3{{X: 0, Y: 0, Z: 0}, {X: 1, Y: 0, Z: 0}}
	runOn(t, func(ctx *lcws.Ctx) {
		acc := NBodyForces(ctx, bodies)
		if acc[0].X <= 0 || acc[1].X >= 0 {
			t.Errorf("bodies do not attract: %v", acc)
		}
		if acc[0].X != -acc[1].X || acc[0].Y != 0 || acc[0].Z != 0 {
			t.Errorf("forces not equal and opposite: %v", acc)
		}
	})
}

func TestNBodyInverseSquareScaling(t *testing.T) {
	near := []workload.Point3{{}, {X: 1}}
	far := []workload.Point3{{}, {X: 2}}
	runOn(t, func(ctx *lcws.Ctx) {
		an := NBodyForces(ctx, near)[0].X
		af := NBodyForces(ctx, far)[0].X
		ratio := an / af
		if math.Abs(ratio-4) > 1e-3 {
			t.Errorf("force ratio at distance 1 vs 2 = %v, want ~4", ratio)
		}
	})
}

func TestGiniSplitKnown(t *testing.T) {
	// Perfectly separable: values <=0.5 are class 0, rest class 1.
	values := []float64{0.1, 0.2, 0.3, 0.7, 0.8, 0.9}
	labels := []int{0, 0, 0, 1, 1, 1}
	th, score, ok := giniSplit(values, labels, 2)
	if !ok {
		t.Fatal("no split found")
	}
	if th <= 0.3 || th >= 0.7 {
		t.Errorf("threshold %v not between the classes", th)
	}
	if score != 0 {
		t.Errorf("separable split impurity = %v, want 0", score)
	}
}

func TestGiniSplitAllEqualValues(t *testing.T) {
	_, _, ok := giniSplit([]float64{1, 1, 1}, []int{0, 1, 0}, 2)
	if ok {
		t.Error("split reported on constant values")
	}
}

func TestDecisionTreePredictAndDepth(t *testing.T) {
	leaf0 := &DecisionTree{Feature: -1, Label: 0}
	leaf1 := &DecisionTree{Feature: -1, Label: 1}
	root := &DecisionTree{Feature: 0, Threshold: 0.5, Left: leaf0, Right: leaf1}
	if root.Predict([]float64{0.2}) != 0 || root.Predict([]float64{0.9}) != 1 {
		t.Error("Predict routed wrong")
	}
	if root.Depth() != 2 || leaf0.Depth() != 1 {
		t.Error("Depth wrong")
	}
}

func TestBuildDecisionTreeSeparable(t *testing.T) {
	// Noise-free threshold concept: the tree must fit it (nearly)
	// perfectly.
	rows := make([]workload.LabeledRow, 400)
	for i := range rows {
		x := float64(i) / 400
		label := 0
		if x > 0.5 {
			label = 1
		}
		rows[i] = workload.LabeledRow{Features: []float64{x, 0.5}, Label: label}
	}
	runOn(t, func(ctx *lcws.Ctx) {
		tree := BuildDecisionTree(ctx, rows, 2)
		correct := 0
		for _, r := range rows {
			if tree.Predict(r.Features) == r.Label {
				correct++
			}
		}
		if correct != len(rows) {
			t.Errorf("separable concept: %d/%d correct", correct, len(rows))
		}
	})
}

func TestBuildDecisionTreeDeterministicAcrossPolicies(t *testing.T) {
	rows := workload.CovtypeLike(871, 3000, 6, 3)
	var ref []int
	for _, p := range lcws.Policies {
		s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(p), lcws.WithSeed(5))
		var preds []int
		s.Run(func(ctx *lcws.Ctx) {
			tree := BuildDecisionTree(ctx, rows, 3)
			preds = make([]int, len(rows))
			for i := range rows {
				preds[i] = tree.Predict(rows[i].Features)
			}
		})
		if ref == nil {
			ref = preds
			continue
		}
		for i := range ref {
			if preds[i] != ref[i] {
				t.Fatalf("policy %v: prediction %d differs from WS reference", p, i)
			}
		}
	}
}

func TestBuildDecisionTreePureInputIsLeaf(t *testing.T) {
	rows := make([]workload.LabeledRow, 100)
	for i := range rows {
		rows[i] = workload.LabeledRow{Features: []float64{float64(i), 1}, Label: 2}
	}
	runOn(t, func(ctx *lcws.Ctx) {
		tree := BuildDecisionTree(ctx, rows, 4)
		if tree.Feature != -1 || tree.Label != 2 {
			t.Errorf("pure input built non-leaf: %+v", tree)
		}
	})
}

func TestBarnesHutMatchesDirectSum(t *testing.T) {
	bodies := workload.PlummerBodies(601, 1500)
	runOn(t, func(ctx *lcws.Ctx) {
		approx := NBodyBarnesHut(ctx, bodies)
		direct := NBodyForces(ctx, bodies)
		worst := 0.0
		for i := range bodies {
			w := direct[i]
			wMag := math.Sqrt(w.X*w.X + w.Y*w.Y + w.Z*w.Z)
			dx, dy, dz := approx[i].X-w.X, approx[i].Y-w.Y, approx[i].Z-w.Z
			rel := math.Sqrt(dx*dx+dy*dy+dz*dz) / (wMag + 1e-12)
			if rel > worst {
				worst = rel
			}
		}
		if worst > 0.05 {
			t.Errorf("worst Barnes–Hut relative error %.2f%% exceeds 5%%", 100*worst)
		}
	})
}

func TestBarnesHutTinyInputs(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		if got := NBodyBarnesHut(ctx, nil); got != nil {
			t.Error("empty body set gave forces")
		}
		two := []workload.Point3{{X: 0}, {X: 1}}
		got := NBodyBarnesHut(ctx, two)
		// With only two bodies the tree degenerates to exact pairwise.
		want := accelOn(two, 0)
		if math.Abs(got[0].X-want.X) > 1e-9 {
			t.Errorf("two-body force %v, want %v", got[0], want)
		}
	})
}

func TestBarnesHutClusteredBodies(t *testing.T) {
	// Deep octree: two tight clusters far apart.
	var bodies []workload.Point3
	cube := workload.InCube3D(603, 200)
	for _, p := range cube[:100] {
		bodies = append(bodies, workload.Point3{X: p.X * 1e-3, Y: p.Y * 1e-3, Z: p.Z * 1e-3})
	}
	for _, p := range cube[100:] {
		bodies = append(bodies, workload.Point3{X: 10 + p.X*1e-3, Y: p.Y * 1e-3, Z: p.Z * 1e-3})
	}
	runOn(t, func(ctx *lcws.Ctx) {
		approx := NBodyBarnesHut(ctx, bodies)
		// Bodies in cluster 1 must be pulled toward +X by cluster 2.
		if approx[0].X <= 0 {
			t.Errorf("cluster attraction wrong: %v", approx[0])
		}
	})
}
