package pbbs

import (
	"sort"
	"sync/atomic"

	"lcws"
	"lcws/internal/rng"
	"lcws/parlay"
	"lcws/workload"
)

// graphInstances returns the breadthFirstSearch, maximalIndependentSet,
// maximalMatching, spanningForest and minSpanningForest instances.
func graphInstances(scale Scale) []*Instance {
	logN := 13
	m := scale.scaled(120_000)
	nLocal := scale.scaled(30_000)
	side := 22 // 3D grid side; ~10.6k vertices at scale 1
	if scale < 1 {
		side = 12
	}
	return []*Instance{
		{Benchmark: "breadthFirstSearch", Input: "rMatGraph",
			Prepare: func() *Job { return bfsJob(workload.RMatGraph(301, logN, m)) }},
		{Benchmark: "breadthFirstSearch", Input: "randLocalGraph",
			Prepare: func() *Job { return bfsJob(workload.RandLocalGraph(302, nLocal, 8)) }},
		{Benchmark: "breadthFirstSearch", Input: "3Dgrid",
			Prepare: func() *Job { return bfsJob(workload.GridGraph3D(side)) }},

		{Benchmark: "backForwardBFS", Input: "rMatGraph",
			Prepare: func() *Job { return backForwardJob(workload.RMatGraph(301, logN, m)) }},
		{Benchmark: "backForwardBFS", Input: "3Dgrid",
			Prepare: func() *Job { return backForwardJob(workload.GridGraph3D(side)) }},

		{Benchmark: "maximalIndependentSet", Input: "rMatGraph",
			Prepare: func() *Job { return misJob(workload.RMatGraph(311, logN, m)) }},
		{Benchmark: "maximalIndependentSet", Input: "randLocalGraph",
			Prepare: func() *Job { return misJob(workload.RandLocalGraph(312, nLocal, 8)) }},

		{Benchmark: "maximalMatching", Input: "rMatGraph",
			Prepare: func() *Job { return matchingJob(1<<logN, workload.RMatEdges(321, logN, m)) }},
		{Benchmark: "maximalMatching", Input: "randLocalGraph",
			Prepare: func() *Job { return matchingJob(nLocal, workload.RandLocalEdges(322, nLocal, 8)) }},

		{Benchmark: "spanningForest", Input: "rMatGraph",
			Prepare: func() *Job { return spanningForestJob(1<<logN, workload.RMatEdges(331, logN, m)) }},
		{Benchmark: "spanningForest", Input: "randLocalGraph",
			Prepare: func() *Job { return spanningForestJob(nLocal, workload.RandLocalEdges(332, nLocal, 8)) }},

		{Benchmark: "minSpanningForest", Input: "rMatGraph",
			Prepare: func() *Job {
				edges := workload.WeightedEdges(341, workload.RMatEdges(341, logN, m))
				return msfJob(1<<logN, edges)
			}},
		{Benchmark: "minSpanningForest", Input: "randLocalGraph",
			Prepare: func() *Job {
				edges := workload.WeightedEdges(342, workload.RandLocalEdges(342, nLocal, 8))
				return msfJob(nLocal, edges)
			}},
	}
}

// BFS computes a BFS tree of g from src with frontier-based parallel
// rounds: every round expands the frontier's out-edges in parallel,
// claiming unvisited vertices with a CAS on their parent slot (the PBBS
// breadthFirstSearch kernel). It returns the parent array (-1 for
// unreached, src's parent is itself).
func BFS(ctx *lcws.Ctx, g *workload.Graph, src int32) []int32 {
	n := g.NumVertices()
	parents := make([]atomic.Int32, n)
	lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) { parents[i].Store(-1) })
	parents[src].Store(src)
	frontier := []int32{src}
	for len(frontier) > 0 {
		// Offsets of each frontier vertex's edge block in the output.
		degs := parlay.Map(ctx, frontier, func(v int32) int { return g.Degree(v) })
		offsets, total := parlay.Scan(ctx, degs, 0, func(a, b int) int { return a + b })
		next := make([]int32, total)
		lcws.ParFor(ctx, 0, len(frontier), 1, func(ctx *lcws.Ctx, i int) {
			v := frontier[i]
			o := offsets[i]
			for j, u := range g.Neighbors(v) {
				if parents[u].Load() == -1 && parents[u].CompareAndSwap(-1, v) {
					next[o+j] = u
				} else {
					next[o+j] = -1
				}
			}
			ctx.Poll()
		})
		frontier = parlay.Filter(ctx, next, func(u int32) bool { return u >= 0 })
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = parents[i].Load()
	}
	return out
}

func bfsJob(g *workload.Graph) *Job {
	var got []int32
	const src = 0
	return &Job{
		Run:    func(ctx *lcws.Ctx) { got = BFS(ctx, g, src) },
		Verify: func() error { return verifyBFSTree("breadthFirstSearch", g, src, got) },
	}
}

// verifyBFSTree checks a parent array against sequential BFS distances:
// reachability must match, every parent edge must exist, and every parent
// must be exactly one level closer to the source.
func verifyBFSTree(bench string, g *workload.Graph, src int32, got []int32) error {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	for v := 0; v < n; v++ {
		if (got[v] == -1) != (dist[v] == -1) {
			return verifyErr(bench, "vertex %d reachability mismatch", v)
		}
	}
	for v := int32(0); int(v) < n; v++ {
		p := got[v]
		if p == -1 || v == src {
			continue
		}
		if dist[v] != dist[p]+1 {
			return verifyErr(bench, "vertex %d: parent %d not one level up (%d vs %d)", v, p, dist[v], dist[p])
		}
		found := false
		for _, u := range g.Neighbors(p) {
			if u == v {
				found = true
				break
			}
		}
		if !found {
			return verifyErr(bench, "parent edge %d->%d not in graph", p, v)
		}
	}
	return nil
}

// misStatus values for MaximalIndependentSet.
const (
	misUnknown int32 = iota
	misIn
	misOut
)

// MaximalIndependentSet returns a maximal independent set of g computed
// with parallel rounds of the hash-priority greedy ("deterministic
// reservations" style, the PBBS maximalIndependentSet kernel): a vertex
// joins the set when its priority is a local minimum among still-undecided
// neighbours, and its neighbours drop out.
func MaximalIndependentSet(ctx *lcws.Ctx, g *workload.Graph) []bool {
	n := g.NumVertices()
	prio := parlay.Tabulate(ctx, n, func(i int) uint64 { return rng.Hash64(uint64(i) ^ 0x5bf0_3635) })
	status := make([]atomic.Int32, n)
	remaining := parlay.Tabulate(ctx, n, func(i int) int32 { return int32(i) })
	for len(remaining) > 0 {
		// Decide: v enters when no undecided neighbour has a smaller
		// priority (ties by id).
		lcws.ParFor(ctx, 0, len(remaining), 0, func(ctx *lcws.Ctx, i int) {
			v := remaining[i]
			if status[v].Load() != misUnknown {
				return
			}
			win := true
			for _, u := range g.Neighbors(v) {
				if status[u].Load() == misIn {
					win = false
					break
				}
				if status[u].Load() == misUnknown &&
					(prio[u] < prio[v] || (prio[u] == prio[v] && u < v)) {
					win = false
					break
				}
			}
			if win {
				status[v].Store(misIn)
			}
		})
		// Knock out neighbours of new members.
		lcws.ParFor(ctx, 0, len(remaining), 0, func(ctx *lcws.Ctx, i int) {
			v := remaining[i]
			if status[v].Load() != misUnknown {
				return
			}
			for _, u := range g.Neighbors(v) {
				if status[u].Load() == misIn {
					status[v].Store(misOut)
					break
				}
			}
		})
		remaining = parlay.Filter(ctx, remaining, func(v int32) bool {
			return status[v].Load() == misUnknown
		})
	}
	return parlay.Tabulate(ctx, n, func(i int) bool { return status[i].Load() == misIn })
}

func misJob(g *workload.Graph) *Job {
	var got []bool
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = MaximalIndependentSet(ctx, g) },
		Verify: func() error {
			n := g.NumVertices()
			for v := int32(0); int(v) < n; v++ {
				if got[v] {
					for _, u := range g.Neighbors(v) {
						if got[u] {
							return verifyErr("maximalIndependentSet", "adjacent vertices %d and %d both in set", v, u)
						}
					}
				} else {
					covered := false
					for _, u := range g.Neighbors(v) {
						if got[u] {
							covered = true
							break
						}
					}
					if !covered {
						return verifyErr("maximalIndependentSet", "vertex %d has no neighbour in set (not maximal)", v)
					}
				}
			}
			return nil
		},
	}
}

// MaximalMatching returns a maximal matching over the given edges (vertex
// count n) using parallel rounds of two-sided reservations (the PBBS
// maximalMatching kernel): each live edge reserves both endpoints with an
// atomic-min on its index; edges holding both reservations are matched.
// It returns the indices of matched edges.
func MaximalMatching(ctx *lcws.Ctx, n int, edges []workload.Edge) []int32 {
	reserve := make([]atomic.Int32, n)
	matchedV := make([]atomic.Bool, n)
	var matched []int32
	live := parlay.Tabulate(ctx, len(edges), func(i int) int32 { return int32(i) })
	live = parlay.Filter(ctx, live, func(e int32) bool { return edges[e].U != edges[e].V })
	for len(live) > 0 {
		lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, v int) { reserve[v].Store(-1) })
		// Reserve endpoints with the smallest live edge index.
		lcws.ParFor(ctx, 0, len(live), 0, func(ctx *lcws.Ctx, i int) {
			e := live[i]
			atomicMin(&reserve[edges[e].U], e)
			atomicMin(&reserve[edges[e].V], e)
		})
		// An edge holding both reservations is matched.
		wins := parlay.Tabulate(ctx, len(live), func(i int) bool {
			e := live[i]
			return reserve[edges[e].U].Load() == e && reserve[edges[e].V].Load() == e
		})
		winners := parlay.Pack(ctx, live, wins)
		lcws.ParFor(ctx, 0, len(winners), 0, func(ctx *lcws.Ctx, i int) {
			e := winners[i]
			matchedV[edges[e].U].Store(true)
			matchedV[edges[e].V].Store(true)
		})
		matched = append(matched, winners...)
		live = parlay.Filter(ctx, live, func(e int32) bool {
			return !matchedV[edges[e].U].Load() && !matchedV[edges[e].V].Load()
		})
	}
	return matched
}

// atomicMin lowers a to min(a, v).
func atomicMin(a *atomic.Int32, v int32) {
	for {
		cur := a.Load()
		if cur != -1 && cur <= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func matchingJob(n int, edges []workload.Edge) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = MaximalMatching(ctx, n, edges) },
		Verify: func() error {
			deg := make([]int, n)
			for _, e := range got {
				u, v := edges[e].U, edges[e].V
				if u == v {
					return verifyErr("maximalMatching", "self loop %d matched", e)
				}
				deg[u]++
				deg[v]++
				if deg[u] > 1 || deg[v] > 1 {
					return verifyErr("maximalMatching", "vertex matched twice (edge %d)", e)
				}
			}
			// Maximality: no remaining edge has both endpoints free.
			for i, e := range edges {
				if e.U != e.V && deg[e.U] == 0 && deg[e.V] == 0 {
					return verifyErr("maximalMatching", "edge %d (%d-%d) could still be matched", i, e.U, e.V)
				}
			}
			return nil
		},
	}
}

// unionFind is a lock-free union-find over n elements: parents are
// atomics, unions link the higher root under the lower with a CAS, and
// finds compress paths opportunistically.
type unionFind struct {
	parent []atomic.Int32
}

func newUnionFind(ctx *lcws.Ctx, n int) *unionFind {
	uf := &unionFind{parent: make([]atomic.Int32, n)}
	lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) { uf.parent[i].Store(int32(i)) })
	return uf
}

func (uf *unionFind) find(v int32) int32 {
	for {
		p := uf.parent[v].Load()
		if p == v {
			return v
		}
		gp := uf.parent[p].Load()
		if gp != p {
			// Path halving; a failed CAS is harmless.
			uf.parent[v].CompareAndSwap(p, gp)
		}
		v = p
	}
}

// union links the components of u and v and reports whether they were
// distinct (i.e. the edge joins the forest).
func (uf *unionFind) union(u, v int32) bool {
	for {
		ru, rv := uf.find(u), uf.find(v)
		if ru == rv {
			return false
		}
		if ru < rv {
			ru, rv = rv, ru
		}
		// Link the higher-indexed root under the lower: acyclic by the
		// total order on ids.
		if uf.parent[ru].CompareAndSwap(ru, rv) {
			return true
		}
	}
}

// SpanningForest returns the indices of edges forming a spanning forest,
// computed with a parallel lock-free union-find over the edge list (the
// PBBS spanningForest kernel, incremental variant).
func SpanningForest(ctx *lcws.Ctx, n int, edges []workload.Edge) []int32 {
	uf := newUnionFind(ctx, n)
	inForest := make([]bool, len(edges))
	lcws.ParFor(ctx, 0, len(edges), 0, func(ctx *lcws.Ctx, i int) {
		e := edges[i]
		if e.U != e.V && uf.union(e.U, e.V) {
			inForest[i] = true
		}
	})
	idx := parlay.Iota(ctx, len(edges))
	sel := parlay.Pack(ctx, idx, inForest)
	return parlay.Map(ctx, sel, func(i int) int32 { return int32(i) })
}

// seqComponents returns each vertex's component id under a sequential
// union-find over the same edges (verification reference).
func seqComponents(n int, edges []workload.Edge) []int32 {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for _, e := range edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	out := make([]int32, n)
	for v := range out {
		out[v] = find(int32(v))
	}
	return out
}

func spanningForestJob(n int, edges []workload.Edge) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = SpanningForest(ctx, n, edges) },
		Verify: func() error {
			return verifyForest("spanningForest", n, edges, got, nil)
		},
	}
}

// verifyForest checks that the selected edge indices form a spanning
// forest of (n, edges): acyclic, and connecting exactly the components of
// the full graph. If weights is non-nil it additionally checks the total
// weight against the sequential Kruskal reference.
func verifyForest(bench string, n int, edges []workload.Edge, selected []int32, weights []float64) error {
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for _, ei := range selected {
		e := edges[ei]
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			return verifyErr(bench, "selected edge %d creates a cycle", ei)
		}
		parent[ru] = rv
	}
	// Same components as the full graph ⇒ spanning.
	ref := seqComponents(n, edges)
	refOf := map[int32]int32{}
	for v := 0; v < n; v++ {
		mine := find(int32(v))
		if r, ok := refOf[ref[v]]; !ok {
			refOf[ref[v]] = mine
		} else if r != mine {
			return verifyErr(bench, "forest splits a connected component at vertex %d", v)
		}
	}
	// Forest edge count must equal n - #components.
	comps := map[int32]bool{}
	for v := 0; v < n; v++ {
		comps[ref[v]] = true
	}
	if len(selected) != n-len(comps) {
		return verifyErr(bench, "forest has %d edges, want %d", len(selected), n-len(comps))
	}
	if weights != nil {
		var gotW float64
		for _, ei := range selected {
			gotW += weights[ei]
		}
		wantW := kruskalWeight(n, edges, weights)
		if diff := gotW - wantW; diff > 1e-9 || diff < -1e-9 {
			return verifyErr(bench, "forest weight %.9f, want %.9f", gotW, wantW)
		}
	}
	return nil
}

// kruskalWeight is the sequential Kruskal reference for the MSF weight.
func kruskalWeight(n int, edges []workload.Edge, weights []float64) float64 {
	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return weights[order[a]] < weights[order[b]] })
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	total := 0.0
	for _, i := range order {
		e := edges[i]
		if e.U == e.V {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			total += weights[i]
		}
	}
	return total
}

// MinSpanningForest returns the indices of a minimum spanning forest of
// the weighted edges: a filter-Kruskal style algorithm with a parallel
// sort by weight followed by a sequential union-find acceptance pass (the
// coarse sequential tail is characteristic of the PBBS minSpanningForest
// kernel and exercises the schedulers' handling of long sequential tasks).
func MinSpanningForest(ctx *lcws.Ctx, n int, edges []workload.WeightedEdge) []int32 {
	order := parlay.Iota(ctx, len(edges))
	parlay.SortFunc(ctx, order, func(a, b int) bool {
		if edges[a].W != edges[b].W {
			return edges[a].W < edges[b].W
		}
		return a < b
	})
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(v int32) int32
	find = func(v int32) int32 {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	var out []int32
	for _, i := range order {
		e := edges[i]
		if e.U == e.V {
			continue
		}
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			out = append(out, int32(i))
		}
		ctx.Poll()
	}
	return out
}

func msfJob(n int, edges []workload.WeightedEdge) *Job {
	plain := make([]workload.Edge, len(edges))
	weights := make([]float64, len(edges))
	for i, e := range edges {
		plain[i] = workload.Edge{U: e.U, V: e.V}
		weights[i] = e.W
	}
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = MinSpanningForest(ctx, n, edges) },
		Verify: func() error {
			return verifyForest("minSpanningForest", n, plain, got, weights)
		},
	}
}

// backForwardThreshold tunes when BackForwardBFS switches to bottom-up
// rounds: when the frontier holds more than 1/backForwardThreshold of the
// vertices.
const backForwardThreshold = 20

// BackForwardBFS is direction-optimizing BFS (Beamer et al.; the PBBS
// backForwardBFS benchmark): small frontiers expand top-down like BFS,
// large frontiers switch to bottom-up rounds in which every unvisited
// vertex scans its neighbours for a frontier member. It returns the
// parent array (-1 for unreached; the source is its own parent).
func BackForwardBFS(ctx *lcws.Ctx, g *workload.Graph, src int32) []int32 {
	n := g.NumVertices()
	parents := make([]atomic.Int32, n)
	lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, i int) { parents[i].Store(-1) })
	parents[src].Store(src)

	inFrontier := make([]bool, n) // current frontier as a bitmap
	frontier := []int32{src}
	inFrontier[src] = true

	for len(frontier) > 0 {
		var next []int32
		if len(frontier) > n/backForwardThreshold {
			// Bottom-up: every unvisited vertex looks for a parent in
			// the frontier. Claims are exclusive per vertex, so no CAS
			// is needed.
			nextFlags := make([]bool, n)
			lcws.ParFor(ctx, 0, n, 0, func(ctx *lcws.Ctx, vi int) {
				v := int32(vi)
				if parents[v].Load() != -1 {
					return
				}
				for _, u := range g.Neighbors(v) {
					if inFrontier[u] {
						parents[v].Store(u)
						nextFlags[v] = true
						break
					}
				}
			})
			idx := parlay.PackIndex(ctx, nextFlags)
			next = parlay.Map(ctx, idx, func(i int) int32 { return int32(i) })
		} else {
			// Top-down: expand frontier out-edges with CAS claims.
			degs := parlay.Map(ctx, frontier, func(v int32) int { return g.Degree(v) })
			offsets, total := parlay.Scan(ctx, degs, 0, func(a, b int) int { return a + b })
			out := make([]int32, total)
			lcws.ParFor(ctx, 0, len(frontier), 1, func(ctx *lcws.Ctx, i int) {
				v := frontier[i]
				o := offsets[i]
				for j, u := range g.Neighbors(v) {
					if parents[u].Load() == -1 && parents[u].CompareAndSwap(-1, v) {
						out[o+j] = u
					} else {
						out[o+j] = -1
					}
				}
				ctx.Poll()
			})
			next = parlay.Filter(ctx, out, func(u int32) bool { return u >= 0 })
		}
		// Swap frontier bitmaps.
		lcws.ParFor(ctx, 0, len(frontier), 0, func(ctx *lcws.Ctx, i int) {
			inFrontier[frontier[i]] = false
		})
		lcws.ParFor(ctx, 0, len(next), 0, func(ctx *lcws.Ctx, i int) {
			inFrontier[next[i]] = true
		})
		frontier = next
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = parents[i].Load()
	}
	return out
}

// backForwardJob wraps BackForwardBFS with the same BFS-tree verifier.
func backForwardJob(g *workload.Graph) *Job {
	var got []int32
	const src = 0
	return &Job{
		Run:    func(ctx *lcws.Ctx) { got = BackForwardBFS(ctx, g, src) },
		Verify: func() error { return verifyBFSTree("backForwardBFS", g, src, got) },
	}
}
