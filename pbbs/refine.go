package pbbs

import (
	"math"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// Delaunay mesh refinement (the PBBS delaunayRefine benchmark): insert
// the circumcenters of poor-quality ("skinny") triangles until every
// interior triangle meets the quality bound. A triangle is skinny when
// its circumradius-to-shortest-edge ratio exceeds the bound (the standard
// Ruppert/Chew criterion; ratio sqrt(2) corresponds to a minimum angle of
// about 20.7°). Without boundary segments to respect, refinement is
// restricted to triangles whose circumcenter falls inside the input's
// bounding box, and rounds are capped for termination on adversarial
// inputs.

// RefineResult is the outcome of DelaunayRefine.
type RefineResult struct {
	// Points is the input points followed by the inserted Steiner points.
	Points []workload.Point2
	// Triangles is the final triangulation of Points.
	Triangles []Triangle
	// Rounds is how many refinement rounds ran.
	Rounds int
	// SkinnyBefore and SkinnyAfter count refinable skinny triangles in
	// the first and final triangulations.
	SkinnyBefore, SkinnyAfter int
}

// circumcenter returns the circumcenter of triangle abc and ok=false for
// (numerically) degenerate triangles.
func circumcenter(a, b, c workload.Point2) (workload.Point2, bool) {
	d := 2 * ((a.X-c.X)*(b.Y-c.Y) - (b.X-c.X)*(a.Y-c.Y))
	if d == 0 {
		return workload.Point2{}, false
	}
	a2 := (a.X-c.X)*(a.X+c.X) + (a.Y-c.Y)*(a.Y+c.Y)
	b2 := (b.X-c.X)*(b.X+c.X) + (b.Y-c.Y)*(b.Y+c.Y)
	ux := (a2*(b.Y-c.Y) - b2*(a.Y-c.Y)) / d
	uy := (b2*(a.X-c.X) - a2*(b.X-c.X)) / d
	return workload.Point2{X: ux, Y: uy}, true
}

// skinnyRatio returns circumradius / shortest edge length.
func skinnyRatio(a, b, c workload.Point2) float64 {
	cc, ok := circumcenter(a, b, c)
	if !ok {
		return math.Inf(1)
	}
	r := math.Hypot(a.X-cc.X, a.Y-cc.Y)
	e := math.Min(math.Hypot(a.X-b.X, a.Y-b.Y),
		math.Min(math.Hypot(b.X-c.X, b.Y-c.Y), math.Hypot(c.X-a.X, c.Y-a.Y)))
	if e == 0 {
		return math.Inf(1)
	}
	return r / e
}

// refineBound is the default quality bound (minimum angle ≈ 20.7°).
const refineBound = math.Sqrt2

// refineMaxRounds caps refinement rounds.
const refineMaxRounds = 24

// refineFloorFrac sets the resolution floor as a fraction of the input's
// bounding-box diagonal: only triangles whose circumradius exceeds the
// floor are refined. Every circumcenter of a Delaunay triangle is at
// distance exactly the circumradius from its nearest input point (the
// circumdisk is empty), so the floor guarantees inserted Steiner points
// stay well separated from all existing points — the standard packing
// argument that makes refinement terminate.
const refineFloorFrac = 1.0 / 64

// DelaunayRefine refines the Delaunay triangulation of pts until no
// interior triangle has circumradius/shortest-edge ratio above bound
// (pass 0 for the default sqrt(2)), inserting circumcenters in parallel
// rounds. Each round rebuilds the triangulation with the parallel
// incremental algorithm and finds all refinable triangles in parallel.
func DelaunayRefine(ctx *lcws.Ctx, pts []workload.Point2, bound float64) RefineResult {
	if bound <= 0 {
		bound = refineBound
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	inBox := func(p workload.Point2) bool {
		return p.X >= minX && p.X <= maxX && p.Y >= minY && p.Y <= maxY
	}
	floor := refineFloorFrac * math.Hypot(maxX-minX, maxY-minY)

	res := RefineResult{Points: append([]workload.Point2{}, pts...)}
	maxPoints := 8 * len(pts)
	for res.Rounds = 0; res.Rounds < refineMaxRounds; res.Rounds++ {
		res.Triangles = DelaunayTriangulation(ctx, res.Points)
		// Find refinable skinny triangles and their circumcenters: poor
		// quality, circumradius above the resolution floor, and center
		// inside the domain box.
		centers := parlay.Filter(ctx,
			parlay.Map(ctx, res.Triangles, func(t Triangle) workload.Point2 {
				a, b, c := res.Points[t.A], res.Points[t.B], res.Points[t.C]
				cc, ok := circumcenter(a, b, c)
				if !ok || !inBox(cc) {
					return workload.Point2{X: math.Inf(1)} // sentinel: skip
				}
				r := math.Hypot(a.X-cc.X, a.Y-cc.Y)
				if r < floor || skinnyRatio(a, b, c) <= bound {
					return workload.Point2{X: math.Inf(1)}
				}
				return cc
			}),
			func(p workload.Point2) bool { return !math.IsInf(p.X, 1) })
		if res.Rounds == 0 {
			res.SkinnyBefore = len(centers)
		}
		res.SkinnyAfter = len(centers)
		if len(centers) == 0 || len(res.Points) >= maxPoints {
			break
		}
		// Batch separation: circumcenters of adjacent skinny triangles
		// can nearly coincide; keep at most one per floor-sized grid
		// cell so the round's insertions stay apart (separation from
		// existing points is already guaranteed by the empty circumdisk
		// and the radius floor).
		type cell struct{ x, y int }
		seen := map[cell]bool{}
		kept := centers[:0]
		for _, c := range centers {
			k := cell{int(math.Floor(c.X / floor)), int(math.Floor(c.Y / floor))}
			if !seen[k] {
				seen[k] = true
				kept = append(kept, c)
			}
		}
		centers = kept
		if len(res.Points)+len(centers) > maxPoints {
			centers = centers[:maxPoints-len(res.Points)]
		}
		res.Points = append(res.Points, centers...)
	}
	return res
}

func refineJob(pts []workload.Point2) *Job {
	var got RefineResult
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = DelaunayRefine(ctx, pts, 0) },
		Verify: func() error {
			if len(got.Points) < len(pts) {
				return verifyErr("delaunayRefine", "lost input points")
			}
			for i := range pts {
				if got.Points[i] != pts[i] {
					return verifyErr("delaunayRefine", "input point %d moved", i)
				}
			}
			if err := verifyDelaunay(got.Points, got.Triangles); err != nil {
				return err
			}
			if got.SkinnyBefore > 0 && got.SkinnyAfter >= got.SkinnyBefore {
				return verifyErr("delaunayRefine",
					"refinement did not reduce skinny triangles (%d -> %d)",
					got.SkinnyBefore, got.SkinnyAfter)
			}
			return nil
		},
	}
}
