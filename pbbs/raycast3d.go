package pbbs

import (
	"math"
	"sort"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// 3D ray casting against triangle meshes (the PBBS rayCast benchmark
// proper): a bounding-volume hierarchy is built in parallel over the
// triangles, and every ray finds its first hit by BVH traversal, rays in
// parallel. The 2D segment version (geometry.go) is kept as the
// fine-grained variant.

// Tri3 is a triangle in 3-space.
type Tri3 struct{ A, B, C workload.Point3 }

// Ray3 is a ray with origin O and (not necessarily unit) direction D.
type Ray3 struct{ O, D workload.Point3 }

// aabb is an axis-aligned bounding box.
type aabb struct{ lo, hi workload.Point3 }

func emptyBox() aabb {
	inf := math.Inf(1)
	return aabb{
		lo: workload.Point3{X: inf, Y: inf, Z: inf},
		hi: workload.Point3{X: -inf, Y: -inf, Z: -inf},
	}
}

func (b *aabb) addPoint(p workload.Point3) {
	b.lo.X = math.Min(b.lo.X, p.X)
	b.lo.Y = math.Min(b.lo.Y, p.Y)
	b.lo.Z = math.Min(b.lo.Z, p.Z)
	b.hi.X = math.Max(b.hi.X, p.X)
	b.hi.Y = math.Max(b.hi.Y, p.Y)
	b.hi.Z = math.Max(b.hi.Z, p.Z)
}

func (b *aabb) addTri(t Tri3) {
	b.addPoint(t.A)
	b.addPoint(t.B)
	b.addPoint(t.C)
}

// hitBox returns whether the ray intersects the box within [0, tMax],
// using the slab method.
func (b *aabb) hitBox(r Ray3, tMax float64) bool {
	t0, t1 := 0.0, tMax
	for axis := 0; axis < 3; axis++ {
		var o, d, lo, hi float64
		switch axis {
		case 0:
			o, d, lo, hi = r.O.X, r.D.X, b.lo.X, b.hi.X
		case 1:
			o, d, lo, hi = r.O.Y, r.D.Y, b.lo.Y, b.hi.Y
		default:
			o, d, lo, hi = r.O.Z, r.D.Z, b.lo.Z, b.hi.Z
		}
		if d == 0 {
			if o < lo || o > hi {
				return false
			}
			continue
		}
		ta, tb := (lo-o)/d, (hi-o)/d
		if ta > tb {
			ta, tb = tb, ta
		}
		t0 = math.Max(t0, ta)
		t1 = math.Min(t1, tb)
		if t0 > t1 {
			return false
		}
	}
	return true
}

// rayTriIntersect returns the ray parameter of the hit with triangle tri
// (Möller–Trumbore), or +Inf on a miss.
func rayTriIntersect(r Ray3, tri Tri3) float64 {
	const eps = 1e-12
	e1 := workload.Point3{X: tri.B.X - tri.A.X, Y: tri.B.Y - tri.A.Y, Z: tri.B.Z - tri.A.Z}
	e2 := workload.Point3{X: tri.C.X - tri.A.X, Y: tri.C.Y - tri.A.Y, Z: tri.C.Z - tri.A.Z}
	// p = D × e2
	p := workload.Point3{
		X: r.D.Y*e2.Z - r.D.Z*e2.Y,
		Y: r.D.Z*e2.X - r.D.X*e2.Z,
		Z: r.D.X*e2.Y - r.D.Y*e2.X,
	}
	det := e1.X*p.X + e1.Y*p.Y + e1.Z*p.Z
	if det > -eps && det < eps {
		return math.Inf(1)
	}
	inv := 1 / det
	s := workload.Point3{X: r.O.X - tri.A.X, Y: r.O.Y - tri.A.Y, Z: r.O.Z - tri.A.Z}
	u := (s.X*p.X + s.Y*p.Y + s.Z*p.Z) * inv
	if u < 0 || u > 1 {
		return math.Inf(1)
	}
	// q = s × e1
	q := workload.Point3{
		X: s.Y*e1.Z - s.Z*e1.Y,
		Y: s.Z*e1.X - s.X*e1.Z,
		Z: s.X*e1.Y - s.Y*e1.X,
	}
	v := (r.D.X*q.X + r.D.Y*q.Y + r.D.Z*q.Z) * inv
	if v < 0 || u+v > 1 {
		return math.Inf(1)
	}
	t := (e2.X*q.X + e2.Y*q.Y + e2.Z*q.Z) * inv
	if t < 0 {
		return math.Inf(1)
	}
	return t
}

// bvhNode is one node of the hierarchy; leaves hold triangle indices.
type bvhNode struct {
	box         aabb
	left, right *bvhNode
	tris        []int32 // leaf only
}

const bvhLeafSize = 8

// centroid returns the triangle's centroid coordinate on the given axis.
func centroid(t Tri3, axis int) float64 {
	switch axis {
	case 0:
		return (t.A.X + t.B.X + t.C.X) / 3
	case 1:
		return (t.A.Y + t.B.Y + t.C.Y) / 3
	default:
		return (t.A.Z + t.B.Z + t.C.Z) / 3
	}
}

// buildBVH builds the hierarchy over idx (reordering it), splitting at
// the median centroid of the widest axis, children in parallel.
func buildBVH(ctx *lcws.Ctx, tris []Tri3, idx []int32) *bvhNode {
	node := &bvhNode{box: emptyBox()}
	for _, i := range idx {
		node.box.addTri(tris[i])
	}
	if len(idx) <= bvhLeafSize {
		node.tris = idx
		return node
	}
	spans := [3]float64{
		node.box.hi.X - node.box.lo.X,
		node.box.hi.Y - node.box.lo.Y,
		node.box.hi.Z - node.box.lo.Z,
	}
	axis := 0
	if spans[1] > spans[axis] {
		axis = 1
	}
	if spans[2] > spans[axis] {
		axis = 2
	}
	if len(idx) > 4096 {
		parlay.SortFunc(ctx, idx, func(a, b int32) bool {
			ca, cb := centroid(tris[a], axis), centroid(tris[b], axis)
			if ca != cb {
				return ca < cb
			}
			return a < b
		})
	} else {
		sort.Slice(idx, func(a, b int) bool {
			ca, cb := centroid(tris[idx[a]], axis), centroid(tris[idx[b]], axis)
			if ca != cb {
				return ca < cb
			}
			return idx[a] < idx[b]
		})
	}
	mid := len(idx) / 2
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { node.left = buildBVH(ctx, tris, idx[:mid]) },
		func(ctx *lcws.Ctx) { node.right = buildBVH(ctx, tris, idx[mid:]) },
	)
	return node
}

// cast returns the index of the first triangle hit by r and the hit
// parameter, or (-1, +Inf). Ties break toward the lower index.
func (n *bvhNode) cast(tris []Tri3, r Ray3, best int32, bestT float64) (int32, float64) {
	if !n.box.hitBox(r, bestT) {
		return best, bestT
	}
	if n.tris != nil {
		for _, i := range n.tris {
			if t := rayTriIntersect(r, tris[i]); t < bestT || (t == bestT && !math.IsInf(t, 1) && i < best) {
				best, bestT = i, t
			}
		}
		return best, bestT
	}
	best, bestT = n.left.cast(tris, r, best, bestT)
	return n.right.cast(tris, r, best, bestT)
}

// RayCast3D intersects every ray with the triangle set and returns the
// index of the first triangle each ray hits (-1 for a miss): parallel BVH
// build, then a flat parallel loop of irregular-cost traversals.
func RayCast3D(ctx *lcws.Ctx, tris []Tri3, rays []Ray3) []int32 {
	if len(tris) == 0 {
		out := make([]int32, len(rays))
		for i := range out {
			out[i] = -1
		}
		return out
	}
	idx := parlay.Tabulate(ctx, len(tris), func(i int) int32 { return int32(i) })
	root := buildBVH(ctx, tris, idx)
	return parlay.Tabulate(ctx, len(rays), func(i int) int32 {
		hit, _ := root.cast(tris, rays[i], -1, math.Inf(1))
		return hit
	})
}

// RandomTriangles returns n small random triangles inside the unit cube
// (the synthetic stand-in for PBBS's happy/angel/dragon meshes).
func RandomTriangles(seed uint64, n int, maxSize float64) []Tri3 {
	anchors := workload.InCube3D(seed, 3*n)
	out := make([]Tri3, n)
	for i := range out {
		a := anchors[3*i]
		d1, d2 := anchors[3*i+1], anchors[3*i+2]
		out[i] = Tri3{
			A: a,
			B: workload.Point3{X: a.X + (d1.X-0.5)*maxSize, Y: a.Y + (d1.Y-0.5)*maxSize, Z: a.Z + (d1.Z-0.5)*maxSize},
			C: workload.Point3{X: a.X + (d2.X-0.5)*maxSize, Y: a.Y + (d2.Y-0.5)*maxSize, Z: a.Z + (d2.Z-0.5)*maxSize},
		}
	}
	return out
}

// RandomRays3D returns rays with origins in the unit cube and uniform
// random directions.
func RandomRays3D(seed uint64, n int) []Ray3 {
	pts := workload.InCube3D(seed, n)
	dirs := workload.PlummerBodies(seed^0xabcd, n) // radially symmetric directions
	out := make([]Ray3, n)
	for i := range out {
		d := dirs[i]
		l := math.Sqrt(d.X*d.X+d.Y*d.Y+d.Z*d.Z) + 1e-12
		out[i] = Ray3{O: pts[i], D: workload.Point3{X: d.X / l, Y: d.Y / l, Z: d.Z / l}}
	}
	return out
}

func rayCast3DJob(tris []Tri3, rays []Ray3) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = RayCast3D(ctx, tris, rays) },
		Verify: func() error {
			step := len(rays)/120 + 1
			for ri := 0; ri < len(rays); ri += step {
				best, bestT := int32(-1), math.Inf(1)
				for ti := range tris {
					if t := rayTriIntersect(rays[ri], tris[ti]); t < bestT || (t == bestT && !math.IsInf(t, 1) && int32(ti) < best) {
						best, bestT = int32(ti), t
					}
				}
				if got[ri] != best {
					return verifyErr("rayCast3d", "ray %d hit %d, brute force %d", ri, got[ri], best)
				}
			}
			return nil
		},
	}
}
