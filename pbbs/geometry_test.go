package pbbs

import (
	"math"
	"testing"

	"lcws"
	"lcws/workload"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []workload.Point2{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1},
		{X: 0.5, Y: 0.5}, {X: 0.3, Y: 0.7}, // interior
	}
	runOn(t, func(ctx *lcws.Ctx) {
		hull := ConvexHull(ctx, pts)
		if len(hull) != 4 {
			t.Fatalf("square hull = %v, want the 4 corners", hull)
		}
		seen := map[int32]bool{}
		for _, i := range hull {
			seen[i] = true
		}
		for i := int32(0); i < 4; i++ {
			if !seen[i] {
				t.Errorf("corner %d missing from hull %v", i, hull)
			}
		}
	})
}

func TestConvexHullDegenerate(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		if got := ConvexHull(ctx, nil); got != nil {
			t.Errorf("hull of nothing = %v", got)
		}
		one := []workload.Point2{{X: 0.5, Y: 0.5}}
		if got := ConvexHull(ctx, one); len(got) != 1 || got[0] != 0 {
			t.Errorf("hull of single point = %v", got)
		}
		same := []workload.Point2{{X: 1, Y: 2}, {X: 1, Y: 2}, {X: 1, Y: 2}}
		if got := ConvexHull(ctx, same); len(got) != 1 {
			t.Errorf("hull of coincident points = %v", got)
		}
		// Collinear points: hull is the two extremes (interior collinear
		// points may or may not be reported; the extremes must be).
		line := []workload.Point2{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 3, Y: 3}}
		got := ConvexHull(ctx, line)
		hasMin, hasMax := false, false
		for _, i := range got {
			if i == 0 {
				hasMin = true
			}
			if i == 3 {
				hasMax = true
			}
		}
		if !hasMin || !hasMax {
			t.Errorf("collinear hull %v missing extremes", got)
		}
	})
}

func TestConvexHullIsCCWAndConvex(t *testing.T) {
	pts := workload.InSphere2D(99, 5000)
	runOn(t, func(ctx *lcws.Ctx) {
		hull := ConvexHull(ctx, pts)
		m := len(hull)
		if m < 3 {
			t.Fatalf("hull too small: %v", hull)
		}
		for k := 0; k < m; k++ {
			a, b, c := hull[k], hull[(k+1)%m], hull[(k+2)%m]
			if cross(pts[a], pts[b], pts[c]) <= 0 {
				t.Fatalf("hull not strictly counter-clockwise at %d", k)
			}
		}
		// Every point must be inside or on the hull.
		for i := range pts {
			for k := 0; k < m; k++ {
				a, b := hull[k], hull[(k+1)%m]
				if cross(pts[a], pts[b], pts[i]) < 0 {
					t.Fatalf("point %d outside hull edge %d-%d", i, a, b)
				}
			}
		}
	})
}

func TestSeqHullMatchesParallelOnRandom(t *testing.T) {
	pts := workload.InCube2D(101, 2000)
	runOn(t, func(ctx *lcws.Ctx) {
		got := ConvexHull(ctx, pts)
		want := seqHull(pts)
		gs := map[int32]bool{}
		for _, i := range got {
			gs = mapSet(gs, i)
		}
		ws := map[int32]bool{}
		for _, i := range want {
			ws = mapSet(ws, i)
		}
		if len(gs) != len(ws) {
			t.Fatalf("hull sizes differ: %d vs %d", len(gs), len(ws))
		}
		for i := range ws {
			if !gs[i] {
				t.Fatalf("hull vertex %d missing", i)
			}
		}
	})
}

func mapSet(m map[int32]bool, k int32) map[int32]bool {
	m[k] = true
	return m
}

func TestNearestNeighborsGrid(t *testing.T) {
	// A 10x10 unit grid: every point's NN is at distance exactly 1.
	var pts []workload.Point2
	for x := 0; x < 10; x++ {
		for y := 0; y < 10; y++ {
			pts = append(pts, workload.Point2{X: float64(x), Y: float64(y)})
		}
	}
	runOn(t, func(ctx *lcws.Ctx) {
		nn := AllNearestNeighbors(ctx, pts)
		for i, j := range nn {
			if d := sqDist(pts[i], pts[j]); d != 1 {
				t.Fatalf("point %d: NN distance² %v, want 1", i, d)
			}
		}
	})
}

func TestNearestNeighborsBruteForceAgreement(t *testing.T) {
	pts := workload.Kuzmin2D(103, 3000)
	runOn(t, func(ctx *lcws.Ctx) {
		nn := AllNearestNeighbors(ctx, pts)
		for q := 0; q < len(pts); q += 37 {
			bestD := math.Inf(1)
			for i := range pts {
				if i != q {
					if d := sqDist(pts[i], pts[q]); d < bestD {
						bestD = d
					}
				}
			}
			if got := sqDist(pts[nn[q]], pts[q]); got != bestD {
				t.Fatalf("point %d: kd NN dist² %v, brute %v", q, got, bestD)
			}
		}
	})
}

func TestNearestNeighborsTiny(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		if got := AllNearestNeighbors(ctx, nil); len(got) != 0 {
			t.Error("NN of no points should be empty")
		}
		two := []workload.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}}
		got := AllNearestNeighbors(ctx, two)
		if got[0] != 1 || got[1] != 0 {
			t.Errorf("NN of pair = %v", got)
		}
	})
}

func TestRaySegIntersectCases(t *testing.T) {
	seg := workload.Segment2{A: workload.Point2{X: 1, Y: -1}, B: workload.Point2{X: 1, Y: 1}}
	right := workload.Ray2{O: workload.Point2{X: 0, Y: 0}, D: workload.Point2{X: 1, Y: 0}}
	if got := raySegIntersect(right, seg); got != 1 {
		t.Errorf("head-on intersection t = %v, want 1", got)
	}
	left := workload.Ray2{O: workload.Point2{X: 0, Y: 0}, D: workload.Point2{X: -1, Y: 0}}
	if got := raySegIntersect(left, seg); !math.IsInf(got, 1) {
		t.Errorf("ray pointing away t = %v, want +Inf", got)
	}
	miss := workload.Ray2{O: workload.Point2{X: 0, Y: 5}, D: workload.Point2{X: 1, Y: 0}}
	if got := raySegIntersect(miss, seg); !math.IsInf(got, 1) {
		t.Errorf("missing ray t = %v, want +Inf", got)
	}
	parallel := workload.Ray2{O: workload.Point2{X: 0, Y: 0}, D: workload.Point2{X: 0, Y: 1}}
	if got := raySegIntersect(parallel, seg); !math.IsInf(got, 1) {
		t.Errorf("parallel ray t = %v, want +Inf", got)
	}
	// Endpoint hit (u == 1).
	tip := workload.Ray2{O: workload.Point2{X: 0, Y: 1}, D: workload.Point2{X: 1, Y: 0}}
	if got := raySegIntersect(tip, seg); got != 1 {
		t.Errorf("endpoint hit t = %v, want 1", got)
	}
}

func TestRayCastGridMatchesBruteForceExhaustively(t *testing.T) {
	segs := workload.RandomSegments(107, 150, 0.08)
	rays := workload.RandomRays(109, 400)
	runOn(t, func(ctx *lcws.Ctx) {
		got := RayCast(ctx, segs, rays)
		for ri := range rays {
			best, bestT := int32(-1), math.Inf(1)
			for si := range segs {
				if tt := raySegIntersect(rays[ri], segs[si]); tt < bestT || (tt == bestT && int32(si) < best) {
					best, bestT = int32(si), tt
				}
			}
			if got[ri] != best {
				t.Fatalf("ray %d: grid hit %d, brute force %d", ri, got[ri], best)
			}
		}
	})
}

func TestRangeQuery2DBruteForceAgreement(t *testing.T) {
	pts := workload.Kuzmin2D(211, 4000)
	queries := randomRects(213, 300)
	runOn(t, func(ctx *lcws.Ctx) {
		got := RangeQuery2D(ctx, pts, queries)
		for q, r := range queries {
			want := 0
			for _, p := range pts {
				if r.contains(p) {
					want++
				}
			}
			if got[q] != want {
				t.Fatalf("query %d = %d, want %d", q, got[q], want)
			}
		}
	})
}

func TestRangeQuery2DEdgeCases(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		// No points.
		got := RangeQuery2D(ctx, nil, []Rect2{{0, 0, 1, 1}})
		if got[0] != 0 {
			t.Error("count in empty point set != 0")
		}
		// Whole-plane query counts everything (fully-contained fast path).
		pts := workload.InCube2D(217, 1000)
		got = RangeQuery2D(ctx, pts, []Rect2{{-10, -10, 10, 10}, {5, 5, 6, 6}})
		if got[0] != 1000 {
			t.Errorf("whole-plane count = %d, want 1000", got[0])
		}
		if got[1] != 0 {
			t.Errorf("disjoint count = %d, want 0", got[1])
		}
		// Inclusive boundaries.
		one := []workload.Point2{{X: 0.5, Y: 0.5}}
		got = RangeQuery2D(ctx, one, []Rect2{{0.5, 0.5, 0.5, 0.5}})
		if got[0] != 1 {
			t.Errorf("boundary-inclusive count = %d, want 1", got[0])
		}
	})
}

func TestRayCast3DBruteForceAgreement(t *testing.T) {
	tris := RandomTriangles(271, 200, 0.15)
	rays := RandomRays3D(273, 300)
	runOn(t, func(ctx *lcws.Ctx) {
		got := RayCast3D(ctx, tris, rays)
		for ri := range rays {
			best, bestT := int32(-1), math.Inf(1)
			for ti := range tris {
				if tt := rayTriIntersect(rays[ri], tris[ti]); tt < bestT {
					best, bestT = int32(ti), tt
				}
			}
			if got[ri] != best {
				t.Fatalf("ray %d: BVH hit %d, brute %d", ri, got[ri], best)
			}
		}
	})
}

func TestRayTriIntersectCases(t *testing.T) {
	tri := Tri3{
		A: workload.Point3{X: 0, Y: 0, Z: 1},
		B: workload.Point3{X: 1, Y: 0, Z: 1},
		C: workload.Point3{X: 0, Y: 1, Z: 1},
	}
	headOn := Ray3{O: workload.Point3{X: 0.2, Y: 0.2, Z: 0}, D: workload.Point3{Z: 1}}
	if got := rayTriIntersect(headOn, tri); got != 1 {
		t.Errorf("head-on t = %v, want 1", got)
	}
	away := Ray3{O: workload.Point3{X: 0.2, Y: 0.2, Z: 0}, D: workload.Point3{Z: -1}}
	if got := rayTriIntersect(away, tri); !math.IsInf(got, 1) {
		t.Errorf("pointing away t = %v, want +Inf", got)
	}
	miss := Ray3{O: workload.Point3{X: 0.9, Y: 0.9, Z: 0}, D: workload.Point3{Z: 1}}
	if got := rayTriIntersect(miss, tri); !math.IsInf(got, 1) {
		t.Errorf("outside-barycentric t = %v, want +Inf", got)
	}
	parallel := Ray3{O: workload.Point3{X: 0.2, Y: 0.2, Z: 0}, D: workload.Point3{X: 1}}
	if got := rayTriIntersect(parallel, tri); !math.IsInf(got, 1) {
		t.Errorf("parallel ray t = %v, want +Inf", got)
	}
}

func TestRayCast3DEmptyScene(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		got := RayCast3D(ctx, nil, RandomRays3D(1, 10))
		for _, h := range got {
			if h != -1 {
				t.Fatal("hit in an empty scene")
			}
		}
	})
}

func TestAABBHitBox(t *testing.T) {
	b := aabb{lo: workload.Point3{X: 0, Y: 0, Z: 0}, hi: workload.Point3{X: 1, Y: 1, Z: 1}}
	through := Ray3{O: workload.Point3{X: -1, Y: 0.5, Z: 0.5}, D: workload.Point3{X: 1}}
	if !b.hitBox(through, math.Inf(1)) {
		t.Error("ray through box reported miss")
	}
	if b.hitBox(through, 0.5) {
		t.Error("box beyond tMax reported hit")
	}
	missRay := Ray3{O: workload.Point3{X: -1, Y: 5, Z: 0.5}, D: workload.Point3{X: 1}}
	if b.hitBox(missRay, math.Inf(1)) {
		t.Error("missing ray reported hit")
	}
	inside := Ray3{O: workload.Point3{X: 0.5, Y: 0.5, Z: 0.5}, D: workload.Point3{Y: 1}}
	if !b.hitBox(inside, math.Inf(1)) {
		t.Error("ray from inside reported miss")
	}
	zeroAxis := Ray3{O: workload.Point3{X: 0.5, Y: -1, Z: 5}, D: workload.Point3{Y: 1}}
	if b.hitBox(zeroAxis, math.Inf(1)) {
		t.Error("ray with zero-component outside slab reported hit")
	}
}
