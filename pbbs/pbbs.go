// Package pbbs is a Go implementation of a Problem-Based Benchmark Suite
// (PBBS v2) style benchmark collection, written against the parlay
// primitives so every benchmark runs unmodified under the WS baseline and
// under every LCWS scheduler variant — the property the paper's evaluation
// depends on. Each benchmark provides a parallel implementation, one or
// more input instances mirroring the PBBS input families, and a verifier
// that checks the parallel result against an independent sequential
// reference.
//
// Input sizes default to laptop scale (PBBS's 100M-element defaults are
// scaled to a few hundred thousand; see DESIGN.md §2) and every instance
// is a deterministic function of its seed.
package pbbs

import (
	"fmt"
	"sort"

	"lcws"
)

// Job is one prepared benchmark execution: Run performs the parallel
// computation (it may be invoked repeatedly — it re-copies any input it
// mutates), and Verify checks the result of the most recent Run against a
// sequential reference.
type Job struct {
	// Run executes the benchmark's parallel computation.
	Run func(ctx *lcws.Ctx)
	// Verify returns nil when the last Run produced a correct result.
	Verify func() error
}

// Instance is one ⟨benchmark, input⟩ pair of the suite. Together with a
// worker count it forms the paper's "benchmark configuration" triple.
type Instance struct {
	// Benchmark is the PBBS benchmark name (e.g. "integerSort").
	Benchmark string
	// Input is the input-instance name (e.g. "randomSeq_int").
	Input string
	// Prepare generates the instance's input data (untimed) and returns
	// the runnable job. The generation is deterministic.
	Prepare func() *Job
}

// Name returns "benchmark/input".
func (in *Instance) Name() string { return in.Benchmark + "/" + in.Input }

// Scale multiplies the default input sizes of Suite. Scale 1 sizes each
// benchmark for tens of milliseconds of single-worker wall time.
type Scale float64

// scaled returns base scaled, with a floor to keep instances non-trivial.
func (s Scale) scaled(base int) int {
	n := int(float64(base) * float64(s))
	if n < 64 {
		n = 64
	}
	return n
}

// Suite returns every benchmark instance of the suite at the given scale.
// The benchmark families mirror PBBS v2: basics (integerSort,
// comparisonSort, histogram, removeDuplicates), text (wordCounts,
// invertedIndex, suffixArray, longestRepeatedSubstring), graphs
// (breadthFirstSearch, maximalIndependentSet, maximalMatching,
// spanningForest, minSpanningForest), geometry (convexHull,
// nearestNeighbors, rayCast) and simulation/learning (nBody, classify).
func Suite(scale Scale) []*Instance {
	var out []*Instance
	out = append(out, basicsInstances(scale)...)
	out = append(out, textInstances(scale)...)
	out = append(out, graphInstances(scale)...)
	out = append(out, geometryInstances(scale)...)
	out = append(out, miscInstances(scale)...)
	return out
}

// Find returns the instance with the given benchmark and input names.
func Find(scale Scale, benchmark, input string) (*Instance, error) {
	for _, in := range Suite(scale) {
		if in.Benchmark == benchmark && in.Input == input {
			return in, nil
		}
	}
	return nil, fmt.Errorf("pbbs: no instance %s/%s", benchmark, input)
}

// Benchmarks returns the distinct benchmark names in suite order.
func Benchmarks(scale Scale) []string {
	var names []string
	seen := map[string]bool{}
	for _, in := range Suite(scale) {
		if !seen[in.Benchmark] {
			seen[in.Benchmark] = true
			names = append(names, in.Benchmark)
		}
	}
	return names
}

// verifyErr formats a verification failure.
func verifyErr(bench string, format string, args ...any) error {
	return fmt.Errorf("pbbs/%s: %s", bench, fmt.Sprintf(format, args...))
}

// sortedCopyU64 is a sequential-reference helper.
func sortedCopyU64(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
