package pbbs

import (
	"sort"
	"strings"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// basicsInstances returns the integerSort, comparisonSort, histogram and
// removeDuplicates instances.
func basicsInstances(scale Scale) []*Instance {
	nInt := scale.scaled(200_000)
	nCmp := scale.scaled(100_000)
	nHist := scale.scaled(200_000)
	nDup := scale.scaled(100_000)
	return []*Instance{
		{Benchmark: "integerSort", Input: "randomSeq_int",
			Prepare: func() *Job { return integerSortJob(workload.RandomSeq(101, nInt, 1<<27), 27) }},
		{Benchmark: "integerSort", Input: "exptSeq_int",
			Prepare: func() *Job { return integerSortJob(workload.ExptSeq(102, nInt, 1<<27), 27) }},
		{Benchmark: "integerSort", Input: "randomSeq_int_pair_int",
			Prepare: func() *Job { return integerSortPairsJob(103, nInt, 1<<27) }},
		{Benchmark: "integerSort", Input: "randomSeq_256_int_pair_int",
			Prepare: func() *Job { return integerSortPairsJob(104, nInt, 256) }},

		{Benchmark: "comparisonSort", Input: "randomSeq_double",
			Prepare: func() *Job { return comparisonSortJob(workload.RandomDoubles(111, nCmp)) }},
		{Benchmark: "comparisonSort", Input: "exptSeq_double",
			Prepare: func() *Job { return comparisonSortJob(workload.ExptDoubles(112, nCmp)) }},
		{Benchmark: "comparisonSort", Input: "almostSortedSeq",
			Prepare: func() *Job {
				xs := workload.AlmostSortedSeq(113, nCmp, nCmp/100)
				ds := make([]float64, len(xs))
				for i, v := range xs {
					ds[i] = float64(v)
				}
				return comparisonSortJob(ds)
			}},
		{Benchmark: "comparisonSort", Input: "trigramWords",
			Prepare: func() *Job { return stringSortJob(workload.TrigramWords(114, nCmp/4)) }},

		{Benchmark: "histogram", Input: "randomSeq_256_int",
			Prepare: func() *Job { return histogramJob(121, nHist, 256) }},
		{Benchmark: "histogram", Input: "randomSeq_100K_int",
			Prepare: func() *Job { return histogramJob(122, nHist, 100_000) }},
		{Benchmark: "histogram", Input: "exptSeq_int",
			Prepare: func() *Job { return histogramExptJob(123, nHist, 1<<16) }},

		{Benchmark: "removeDuplicates", Input: "randomSeq_int",
			Prepare: func() *Job { return removeDuplicatesJob(workload.RandomSeq(131, nDup, uint64(nDup))) }},
		{Benchmark: "removeDuplicates", Input: "exptSeq_int",
			Prepare: func() *Job { return removeDuplicatesJob(workload.ExptSeq(132, nDup, uint64(nDup))) }},
		{Benchmark: "removeDuplicates", Input: "randomSeq_int_hash",
			Prepare: func() *Job { return hashDedupJob(workload.RandomSeq(133, nDup, uint64(nDup))) }},
	}
}

func integerSortJob(input []uint64, bits int) *Job {
	var got []uint64
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			got = append(got[:0], input...)
			parlay.IntegerSort(ctx, got, bits)
		},
		Verify: func() error {
			want := sortedCopyU64(input)
			for i := range want {
				if got[i] != want[i] {
					return verifyErr("integerSort", "mismatch at %d: %d != %d", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}

func integerSortPairsJob(seed uint64, n int, bound uint64) *Job {
	keys, vals := workload.KeyValuePairs(seed, n, bound)
	bits := 0
	for b := bound - 1; b > 0; b >>= 1 {
		bits++
	}
	var gotK, gotV []uint64
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			gotK = append(gotK[:0], keys...)
			gotV = append(gotV[:0], vals...)
			parlay.IntegerSortPairs(ctx, gotK, gotV, bits)
		},
		Verify: func() error {
			// Reference: stable sort of (key, original index).
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
			for i := range idx {
				if gotK[i] != keys[idx[i]] || gotV[i] != vals[idx[i]] {
					return verifyErr("integerSort", "pair mismatch at %d", i)
				}
			}
			return nil
		},
	}
}

func comparisonSortJob(input []float64) *Job {
	var got []float64
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			got = append(got[:0], input...)
			// PBBS's comparisonSort is a sample sort; parlay.SampleSort
			// falls back to the parallel merge sort on small inputs.
			parlay.SampleSort(ctx, got)
		},
		Verify: func() error {
			want := append([]float64(nil), input...)
			sort.Float64s(want)
			for i := range want {
				if got[i] != want[i] {
					return verifyErr("comparisonSort", "mismatch at %d: %v != %v", i, got[i], want[i])
				}
			}
			return nil
		},
	}
}

// stringSortJob sorts the words of a text (PBBS's trigram string sort
// input for comparisonSort).
func stringSortJob(text string) *Job {
	words := strings.Fields(text)
	var got []string
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			got = append(got[:0], words...)
			parlay.SortFunc(ctx, got, func(a, b string) bool { return a < b })
		},
		Verify: func() error {
			want := append([]string(nil), words...)
			sort.Strings(want)
			for i := range want {
				if got[i] != want[i] {
					return verifyErr("comparisonSort", "string sort mismatch at %d", i)
				}
			}
			return nil
		},
	}
}

func histogramJob(seed uint64, n, buckets int) *Job {
	raw := workload.RandomSeq(seed, n, uint64(buckets))
	keys := make([]int, n)
	for i, v := range raw {
		keys[i] = int(v)
	}
	var got []int
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			got = parlay.Histogram(ctx, keys, buckets)
		},
		Verify: func() error {
			want := make([]int, buckets)
			for _, k := range keys {
				want[k]++
			}
			for k := range want {
				if got[k] != want[k] {
					return verifyErr("histogram", "bucket %d: %d != %d", k, got[k], want[k])
				}
			}
			return nil
		},
	}
}

// hashDedupJob is removeDuplicates via the phase-concurrent hash table
// (the PBBS implementation proper) — a CAS-heavy flat parallel loop.
func hashDedupJob(input []uint64) *Job {
	var got []uint64
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = parlay.HashDedup(ctx, input) },
		Verify: func() error {
			want := map[uint64]bool{}
			for _, v := range input {
				want[v] = true
			}
			if len(got) != len(want) {
				return verifyErr("removeDuplicates", "hash dedup kept %d, want %d", len(got), len(want))
			}
			seen := map[uint64]bool{}
			for _, v := range got {
				if !want[v] || seen[v] {
					return verifyErr("removeDuplicates", "hash dedup output invalid at value %d", v)
				}
				seen[v] = true
			}
			return nil
		},
	}
}

// histogramExptJob histograms an exponentially skewed key sequence —
// heavy contention on the low buckets.
func histogramExptJob(seed uint64, n, buckets int) *Job {
	raw := workload.ExptSeq(seed, n, uint64(buckets))
	keys := make([]int, n)
	for i, v := range raw {
		keys[i] = int(v)
	}
	var got []int
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			got = parlay.Histogram(ctx, keys, buckets)
		},
		Verify: func() error {
			want := make([]int, buckets)
			for _, k := range keys {
				want[k]++
			}
			for k := range want {
				if got[k] != want[k] {
					return verifyErr("histogram", "bucket %d: %d != %d", k, got[k], want[k])
				}
			}
			return nil
		},
	}
}

func removeDuplicatesJob(input []uint64) *Job {
	var got []uint64
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			got = parlay.RemoveDuplicates(ctx, input)
		},
		Verify: func() error {
			seen := map[uint64]bool{}
			for _, v := range input {
				seen[v] = true
			}
			if len(got) != len(seen) {
				return verifyErr("removeDuplicates", "kept %d values, want %d", len(got), len(seen))
			}
			for i, v := range got {
				if !seen[v] {
					return verifyErr("removeDuplicates", "value %d at %d not in input", v, i)
				}
				if i > 0 && got[i-1] >= v {
					return verifyErr("removeDuplicates", "output not strictly increasing at %d", i)
				}
			}
			return nil
		},
	}
}
