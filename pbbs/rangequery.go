package pbbs

import (
	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// Rect2 is an axis-aligned query rectangle (inclusive bounds).
type Rect2 struct {
	XMin, YMin, XMax, YMax float64
}

func (r Rect2) contains(p workload.Point2) bool {
	return p.X >= r.XMin && p.X <= r.XMax && p.Y >= r.YMin && p.Y <= r.YMax
}

// rqNode is a kd-tree node augmented with subtree size and bounding box,
// so fully-contained subtrees answer in O(1).
type rqNode struct {
	axis        int // -1 for leaves
	split       float64
	count       int
	box         Rect2
	left, right *rqNode
	pts         []workload.Point2 // leaf points
}

const rqLeafSize = 32

// buildRQ builds the range tree over pts (reordering idx) with parallel
// child construction.
func buildRQ(ctx *lcws.Ctx, pts []workload.Point2, idx []int32, depth int) *rqNode {
	box := Rect2{XMin: pts[idx[0]].X, XMax: pts[idx[0]].X, YMin: pts[idx[0]].Y, YMax: pts[idx[0]].Y}
	for _, i := range idx {
		p := pts[i]
		if p.X < box.XMin {
			box.XMin = p.X
		}
		if p.X > box.XMax {
			box.XMax = p.X
		}
		if p.Y < box.YMin {
			box.YMin = p.Y
		}
		if p.Y > box.YMax {
			box.YMax = p.Y
		}
	}
	if len(idx) <= rqLeafSize {
		leaf := &rqNode{axis: -1, count: len(idx), box: box, pts: make([]workload.Point2, len(idx))}
		for i, id := range idx {
			leaf.pts[i] = pts[id]
		}
		return leaf
	}
	axis := depth % 2
	coord := func(i int32) float64 {
		if axis == 0 {
			return pts[i].X
		}
		return pts[i].Y
	}
	parlay.SortFunc(ctx, idx, func(a, b int32) bool {
		ca, cb := coord(a), coord(b)
		if ca != cb {
			return ca < cb
		}
		return a < b
	})
	mid := len(idx) / 2
	node := &rqNode{axis: axis, split: coord(idx[mid]), count: len(idx), box: box}
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { node.left = buildRQ(ctx, pts, idx[:mid], depth+1) },
		func(ctx *lcws.Ctx) { node.right = buildRQ(ctx, pts, idx[mid:], depth+1) },
	)
	return node
}

// countIn returns the number of points in node's subtree inside r.
func (n *rqNode) countIn(r Rect2) int {
	// Disjoint or fully-contained boxes answer immediately.
	if n.box.XMax < r.XMin || n.box.XMin > r.XMax || n.box.YMax < r.YMin || n.box.YMin > r.YMax {
		return 0
	}
	if n.box.XMin >= r.XMin && n.box.XMax <= r.XMax && n.box.YMin >= r.YMin && n.box.YMax <= r.YMax {
		return n.count
	}
	if n.axis == -1 {
		c := 0
		for _, p := range n.pts {
			if r.contains(p) {
				c++
			}
		}
		return c
	}
	return n.left.countIn(r) + n.right.countIn(r)
}

// RangeQuery2D builds a kd-tree over pts and answers every rectangle
// count query, queries in parallel (the PBBS rangeQuery kernel, counting
// variant).
func RangeQuery2D(ctx *lcws.Ctx, pts []workload.Point2, queries []Rect2) []int {
	if len(pts) == 0 {
		return make([]int, len(queries))
	}
	idx := parlay.Tabulate(ctx, len(pts), func(i int) int32 { return int32(i) })
	root := buildRQ(ctx, pts, idx, 0)
	return parlay.Tabulate(ctx, len(queries), func(q int) int {
		return root.countIn(queries[q])
	})
}

// randomRects returns query rectangles with random centers and a spread
// of sizes (mostly small, a few large — heavy-tailed query cost).
func randomRects(seed uint64, n int) []Rect2 {
	pts := workload.InCube2D(seed, 2*n)
	out := make([]Rect2, n)
	for i := range out {
		c := pts[2*i]
		half := 0.01 + pts[2*i+1].X*pts[2*i+1].X*0.2 // quadratic: few large
		out[i] = Rect2{XMin: c.X - half, XMax: c.X + half, YMin: c.Y - half, YMax: c.Y + half}
	}
	return out
}

func rangeQueryJob(pts []workload.Point2, queries []Rect2) *Job {
	var got []int
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = RangeQuery2D(ctx, pts, queries) },
		Verify: func() error {
			step := len(queries)/150 + 1
			for q := 0; q < len(queries); q += step {
				want := 0
				for _, p := range pts {
					if queries[q].contains(p) {
						want++
					}
				}
				if got[q] != want {
					return verifyErr("rangeQuery2d", "query %d = %d, want %d", q, got[q], want)
				}
			}
			return nil
		},
	}
}
