package pbbs

import (
	"testing"

	"lcws"
	"lcws/workload"
)

// bruteDelaunay returns all ccw triples with an empty circumcircle — the
// exact Delaunay triangulation for points in general position.
func bruteDelaunay(pts []workload.Point2) map[[3]int32]bool {
	n := len(pts)
	out := map[[3]int32]bool{}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				pa, pb, pc := pts[a], pts[b], pts[c]
				i, j, k := int32(a), int32(b), int32(c)
				if orient2d(pa, pb, pc) < 0 {
					pb, pc = pc, pb
					j, k = k, j
				}
				empty := true
				for d := 0; d < n && empty; d++ {
					if d == a || d == b || d == c {
						continue
					}
					if inCircle(pa, pb, pc, pts[d]) {
						empty = false
					}
				}
				if empty {
					out[[3]int32{i, j, k}] = true
				}
			}
		}
	}
	return out
}

// canon rotates a ccw triangle to start with its smallest vertex id.
func canon(t Triangle) [3]int32 {
	v := [3]int32{t.A, t.B, t.C}
	for v[0] > v[1] || v[0] > v[2] {
		v[0], v[1], v[2] = v[1], v[2], v[0]
	}
	return v
}

func TestDelaunayMatchesBruteForce(t *testing.T) {
	for _, n := range []int{4, 8, 15, 25, 40} {
		pts := workload.InCube2D(uint64(100+n), n)
		want := bruteDelaunay(pts)
		runOn(t, func(ctx *lcws.Ctx) {
			got := DelaunayTriangulation(ctx, pts)
			if len(got) != len(want) {
				t.Fatalf("n=%d: %d triangles, brute force has %d", n, len(got), len(want))
			}
			for _, tr := range got {
				key := canon(tr)
				if !want[key] {
					t.Fatalf("n=%d: triangle %v not in the exact Delaunay set", n, key)
				}
			}
		})
	}
}

func TestDelaunayAllPoliciesAgree(t *testing.T) {
	pts := workload.InCube2D(313, 400)
	var ref map[[3]int32]bool
	for _, p := range lcws.Policies {
		s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(p), lcws.WithSeed(3))
		var tris []Triangle
		s.Run(func(ctx *lcws.Ctx) { tris = DelaunayTriangulation(ctx, pts) })
		if err := verifyDelaunay(pts, tris); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		set := map[[3]int32]bool{}
		for _, tr := range tris {
			set[canon(tr)] = true
		}
		if ref == nil {
			ref = set
			continue
		}
		// In general position the Delaunay triangulation is unique, so
		// every policy must produce the same triangle set.
		if len(set) != len(ref) {
			t.Fatalf("%v: %d triangles, reference has %d", p, len(set), len(ref))
		}
		for k := range ref {
			if !set[k] {
				t.Fatalf("%v: triangle %v missing", p, k)
			}
		}
	}
}

func TestDelaunayKuzminHeavyTail(t *testing.T) {
	pts := workload.Kuzmin2D(317, 800)
	runOn(t, func(ctx *lcws.Ctx) {
		tris := DelaunayTriangulation(ctx, pts)
		if err := verifyDelaunay(pts, tris); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDelaunayDegenerateSizes(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		if got := DelaunayTriangulation(ctx, nil); got != nil {
			t.Errorf("no points: %v", got)
		}
		two := workload.InCube2D(1, 2)
		if got := DelaunayTriangulation(ctx, two); got != nil {
			t.Errorf("two points: %v", got)
		}
		three := workload.InCube2D(2, 3)
		got := DelaunayTriangulation(ctx, three)
		if len(got) != 1 {
			t.Errorf("three points gave %d triangles, want 1", len(got))
		}
	})
}

func TestDelaunaySequentialInsertionMatches(t *testing.T) {
	// Force batch size 1 (pure sequential Bowyer–Watson) and check the
	// parallel rounds produce the identical triangle set.
	pts := workload.InCube2D(331, 300)
	var par, seq map[[3]int32]bool
	runOn(t, func(ctx *lcws.Ctx) {
		tris := DelaunayTriangulation(ctx, pts)
		par = map[[3]int32]bool{}
		for _, tr := range tris {
			par[canon(tr)] = true
		}
	})
	old := delaunayMaxBatch
	delaunayMaxBatch = 1
	defer func() { delaunayMaxBatch = old }()
	runOn(t, func(ctx *lcws.Ctx) {
		tris := DelaunayTriangulation(ctx, pts)
		seq = map[[3]int32]bool{}
		for _, tr := range tris {
			seq[canon(tr)] = true
		}
	})
	if len(par) != len(seq) {
		t.Fatalf("parallel %d triangles, sequential %d", len(par), len(seq))
	}
	for k := range seq {
		if !par[k] {
			t.Fatalf("triangle %v only in sequential result", k)
		}
	}
}

func TestDelaunayEulerCount(t *testing.T) {
	// For points in general position inside the super-triangle, the
	// data-only triangles number 2n - 2 - h where h is the hull size.
	pts := workload.InCube2D(337, 500)
	runOn(t, func(ctx *lcws.Ctx) {
		tris := DelaunayTriangulation(ctx, pts)
		hull := ConvexHull(ctx, pts)
		want := 2*len(pts) - 2 - len(hull)
		if len(tris) != want {
			t.Errorf("triangle count %d, Euler formula wants %d (hull %d)", len(tris), want, len(hull))
		}
	})
}

func TestDelaunayRefineImprovesQuality(t *testing.T) {
	pts := workload.InCube2D(401, 300)
	runOn(t, func(ctx *lcws.Ctx) {
		got := DelaunayRefine(ctx, pts, 0)
		if got.SkinnyBefore == 0 {
			t.Skip("input already met the quality bound")
		}
		if got.SkinnyAfter >= got.SkinnyBefore {
			t.Errorf("skinny count %d -> %d after %d rounds",
				got.SkinnyBefore, got.SkinnyAfter, got.Rounds)
		}
		if err := verifyDelaunay(got.Points, got.Triangles); err != nil {
			t.Error(err)
		}
	})
}

func TestDelaunayRefineTerminatesOnCluster(t *testing.T) {
	// A tight cluster plus far satellites forces many skinny triangles;
	// refinement must stop at its caps without error.
	pts := workload.Kuzmin2D(403, 150)
	runOn(t, func(ctx *lcws.Ctx) {
		got := DelaunayRefine(ctx, pts, 0)
		if got.Rounds > refineMaxRounds {
			t.Errorf("rounds %d exceeded cap", got.Rounds)
		}
		if err := verifyDelaunay(got.Points, got.Triangles); err != nil {
			t.Error(err)
		}
	})
}

func TestSkinnyRatioAndCircumcenter(t *testing.T) {
	// Equilateral triangle: ratio = 1/sqrt(3) ≈ 0.577 (high quality).
	a := workload.Point2{X: 0, Y: 0}
	b := workload.Point2{X: 1, Y: 0}
	c := workload.Point2{X: 0.5, Y: 0.8660254037844386}
	if r := skinnyRatio(a, b, c); r < 0.55 || r > 0.60 {
		t.Errorf("equilateral skinny ratio = %v, want ≈0.577", r)
	}
	// A near-degenerate sliver has a huge ratio.
	d := workload.Point2{X: 0.5, Y: 1e-9}
	if r := skinnyRatio(a, b, d); r < 100 {
		t.Errorf("sliver ratio = %v, want huge", r)
	}
	// Collinear points have no circumcenter.
	if _, ok := circumcenter(a, b, workload.Point2{X: 2, Y: 0}); ok {
		t.Error("collinear circumcenter reported ok")
	}
	// Circumcenter of a right triangle is the hypotenuse midpoint.
	cc, ok := circumcenter(a, b, workload.Point2{X: 0, Y: 1})
	if !ok || cc.X != 0.5 || cc.Y != 0.5 {
		t.Errorf("right-triangle circumcenter = %v, %v", cc, ok)
	}
}
