package pbbs

import (
	"math"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// Barnes–Hut n-body force approximation: an octree over the bodies with
// per-node centers of mass, and a θ-criterion traversal per body. It
// stands in for PBBS's Callahan–Kosaraju nBody algorithm (both are
// tree-based O(n log n) force approximations with the same parallel
// structure: tree build, then a flat loop of irregular traversals), and
// the direct-summation kernel (misc.go) doubles as its accuracy
// reference.

// bhNode is one octree node.
type bhNode struct {
	center   workload.Point3 // cube center
	half     float64         // cube half-width
	mass     float64
	com      workload.Point3 // center of mass (valid when mass > 0)
	children [8]*bhNode      // nil for leaves
	bodies   []int32         // leaf bodies
}

// bhLeafSize caps bodies per leaf.
const bhLeafSize = 8

// bhTheta is the standard opening-angle parameter.
const bhTheta = 0.5

// octant returns which child cube body p falls into.
func (n *bhNode) octant(p workload.Point3) int {
	o := 0
	if p.X >= n.center.X {
		o |= 1
	}
	if p.Y >= n.center.Y {
		o |= 2
	}
	if p.Z >= n.center.Z {
		o |= 4
	}
	return o
}

// childCenter returns the center of octant o.
func (n *bhNode) childCenter(o int) workload.Point3 {
	h := n.half / 2
	c := n.center
	if o&1 != 0 {
		c.X += h
	} else {
		c.X -= h
	}
	if o&2 != 0 {
		c.Y += h
	} else {
		c.Y -= h
	}
	if o&4 != 0 {
		c.Z += h
	} else {
		c.Z -= h
	}
	return c
}

// buildBH builds the octree over idx; the top levels build their octants
// in parallel.
func buildBH(ctx *lcws.Ctx, bodies []workload.Point3, idx []int32, center workload.Point3, half float64) *bhNode {
	n := &bhNode{center: center, half: half}
	if len(idx) <= bhLeafSize {
		n.bodies = idx
		for _, i := range idx {
			b := bodies[i]
			n.mass++
			n.com.X += b.X
			n.com.Y += b.Y
			n.com.Z += b.Z
		}
		if n.mass > 0 {
			n.com.X /= n.mass
			n.com.Y /= n.mass
			n.com.Z /= n.mass
		}
		return n
	}
	// Partition into octants (parallel Filter at large nodes).
	var parts [8][]int32
	if len(idx) > 4096 {
		for o := 0; o < 8; o++ {
			o := o
			parts[o] = parlay.Filter(ctx, idx, func(i int32) bool {
				return n.octant(bodies[i]) == o
			})
		}
	} else {
		for _, i := range idx {
			o := n.octant(bodies[i])
			parts[o] = append(parts[o], i)
		}
	}
	lcws.ParFor(ctx, 0, 8, 1, func(ctx *lcws.Ctx, o int) {
		if len(parts[o]) > 0 {
			n.children[o] = buildBH(ctx, bodies, parts[o], n.childCenter(o), half/2)
		}
	})
	for _, ch := range n.children {
		if ch == nil {
			continue
		}
		n.mass += ch.mass
		n.com.X += ch.com.X * ch.mass
		n.com.Y += ch.com.Y * ch.mass
		n.com.Z += ch.com.Z * ch.mass
	}
	if n.mass > 0 {
		n.com.X /= n.mass
		n.com.Y /= n.mass
		n.com.Z /= n.mass
	}
	return n
}

// accumulate adds the gravitational acceleration on body i from node n
// under the θ criterion.
func (n *bhNode) accumulate(bodies []workload.Point3, i int32, acc *Vec3) {
	bi := bodies[i]
	if n.bodies != nil {
		for _, j := range n.bodies {
			if j == i {
				continue
			}
			bj := bodies[j]
			dx, dy, dz := bj.X-bi.X, bj.Y-bi.Y, bj.Z-bi.Z
			r2 := dx*dx + dy*dy + dz*dz + nBodySoftening
			inv := 1 / (r2 * math.Sqrt(r2))
			acc.X += dx * inv
			acc.Y += dy * inv
			acc.Z += dz * inv
		}
		return
	}
	dx, dy, dz := n.com.X-bi.X, n.com.Y-bi.Y, n.com.Z-bi.Z
	dist2 := dx*dx + dy*dy + dz*dz
	width := 2 * n.half
	if width*width < bhTheta*bhTheta*dist2 {
		// Far enough: treat the whole cell as a point mass.
		r2 := dist2 + nBodySoftening
		inv := n.mass / (r2 * math.Sqrt(r2))
		acc.X += dx * inv
		acc.Y += dy * inv
		acc.Z += dz * inv
		return
	}
	for _, ch := range n.children {
		if ch != nil {
			ch.accumulate(bodies, i, acc)
		}
	}
}

// NBodyBarnesHut computes approximate gravitational accelerations on all
// unit-mass bodies with a parallel octree build and parallel per-body
// traversals.
func NBodyBarnesHut(ctx *lcws.Ctx, bodies []workload.Point3) []Vec3 {
	n := len(bodies)
	if n == 0 {
		return nil
	}
	var box aabb = emptyBox()
	for _, b := range bodies {
		box.addPoint(b)
	}
	center := workload.Point3{
		X: (box.lo.X + box.hi.X) / 2,
		Y: (box.lo.Y + box.hi.Y) / 2,
		Z: (box.lo.Z + box.hi.Z) / 2,
	}
	half := math.Max(box.hi.X-box.lo.X, math.Max(box.hi.Y-box.lo.Y, box.hi.Z-box.lo.Z))/2 + 1e-12
	idx := parlay.Tabulate(ctx, n, func(i int) int32 { return int32(i) })
	root := buildBH(ctx, bodies, idx, center, half)
	return parlay.Tabulate(ctx, n, func(i int) Vec3 {
		var acc Vec3
		root.accumulate(bodies, int32(i), &acc)
		return acc
	})
}

func nBodyBHJob(bodies []workload.Point3) *Job {
	var got []Vec3
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = NBodyBarnesHut(ctx, bodies) },
		Verify: func() error {
			// Accuracy against direct summation on a sample: Barnes–Hut
			// with θ=0.5 should be within ~1% relative error.
			step := len(bodies)/40 + 1
			for i := 0; i < len(bodies); i += step {
				want := accelOn(bodies, i)
				wMag := math.Sqrt(want.X*want.X + want.Y*want.Y + want.Z*want.Z)
				dx, dy, dz := got[i].X-want.X, got[i].Y-want.Y, got[i].Z-want.Z
				err := math.Sqrt(dx*dx + dy*dy + dz*dz)
				if err > 0.03*wMag+1e-9 {
					return verifyErr("nBodyBarnesHut",
						"body %d: approximation error %.2f%% exceeds 3%%", i, 100*err/wMag)
				}
			}
			return nil
		},
	}
}
