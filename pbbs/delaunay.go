package pbbs

import (
	"fmt"
	"sync/atomic"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// Delaunay triangulation by parallel incremental insertion with
// deterministic reservations (the PBBS delaunayTriangulation benchmark):
// each round a prefix of the remaining points computes its insertion
// cavity in parallel, reserves the cavity triangles with an atomic
// priority minimum, and the winners' cavities are retriangulated; losers
// retry the next round. Points are bootstrapped inside one large
// super-triangle whose vertices are far enough away (relative to the
// data's bounding box) that they do not perturb the triangulation of the
// data points.

// dTri is one triangle of the mesh: vertices in counter-clockwise order
// and the neighbor across the edge opposite each vertex (-1 on the outer
// boundary).
type dTri struct {
	v    [3]int32
	n    [3]int32
	dead bool
}

// Triangle is one output triangle of DelaunayTriangulation, vertices in
// counter-clockwise order (indices into the input point slice).
type Triangle struct{ A, B, C int32 }

// dMesh is the growing triangulation. pts holds the data points followed
// by the three super-triangle vertices.
type dMesh struct {
	pts  []workload.Point2
	tris []dTri
}

// orient2d returns twice the signed area of triangle abc (positive when
// counter-clockwise).
func orient2d(a, b, c workload.Point2) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// inCircle reports whether d lies strictly inside the circumcircle of the
// counter-clockwise triangle abc.
func inCircle(a, b, c, d workload.Point2) bool {
	ax, ay := a.X-d.X, a.Y-d.Y
	bx, by := b.X-d.X, b.Y-d.Y
	cx, cy := c.X-d.X, c.Y-d.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// containsPoint reports whether p lies inside (or on the boundary of)
// triangle t.
func (m *dMesh) containsPoint(t int32, p workload.Point2) bool {
	tr := &m.tris[t]
	a, b, c := m.pts[tr.v[0]], m.pts[tr.v[1]], m.pts[tr.v[2]]
	return orient2d(a, b, p) >= 0 && orient2d(b, c, p) >= 0 && orient2d(c, a, p) >= 0
}

// locate walks from start to a triangle containing p (orientation-guided
// walk; the mesh is a triangulation of a convex region, so the walk
// terminates).
func (m *dMesh) locate(start int32, p workload.Point2) int32 {
	t := start
	for {
		tr := &m.tris[t]
		moved := false
		for k := 0; k < 3; k++ {
			a, b := m.pts[tr.v[(k+1)%3]], m.pts[tr.v[(k+2)%3]]
			if orient2d(a, b, p) < 0 && tr.n[k] >= 0 {
				t = tr.n[k]
				moved = true
				break
			}
		}
		if !moved {
			return t
		}
	}
}

// cavityOf returns the ids of the triangles whose circumcircle contains
// p, found by BFS from the containing triangle home. The cavity of a
// point is exactly the set its insertion destroys.
func (m *dMesh) cavityOf(home int32, p workload.Point2) []int32 {
	home = m.locate(home, p)
	inCav := map[int32]bool{home: true}
	stack := []int32{home}
	cav := []int32{home}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range m.tris[t].n {
			if nb < 0 || inCav[nb] {
				continue
			}
			tr := &m.tris[nb]
			if inCircle(m.pts[tr.v[0]], m.pts[tr.v[1]], m.pts[tr.v[2]], p) {
				inCav[nb] = true
				cav = append(cav, nb)
				stack = append(stack, nb)
			}
		}
	}
	return cav
}

// edge is a directed mesh edge.
type edge struct{ u, v int32 }

// retriangulate replaces the cavity of point p (vertex id pid) with a fan
// of new triangles around p and returns the new triangle ids. It runs
// sequentially per winner (cavities are small); the expensive geometry
// happened during the parallel cavity phase.
func (m *dMesh) retriangulate(pid int32, cav []int32) []int32 {
	inCav := make(map[int32]bool, len(cav))
	for _, t := range cav {
		inCav[t] = true
	}
	// Boundary edges of the cavity, with their outer neighbors.
	type bEdge struct {
		u, v  int32
		outer int32
	}
	var boundary []bEdge
	for _, t := range cav {
		tr := &m.tris[t]
		for k := 0; k < 3; k++ {
			nb := tr.n[k]
			if nb >= 0 && inCav[nb] {
				continue
			}
			// Edge opposite vertex k, oriented ccw within t.
			u, v := tr.v[(k+1)%3], tr.v[(k+2)%3]
			boundary = append(boundary, bEdge{u: u, v: v, outer: nb})
		}
		tr.dead = true
	}
	// One new triangle per boundary edge: (u, v, p), ccw because the
	// boundary is oriented ccw around the star-shaped cavity.
	newIDs := make([]int32, len(boundary))
	for i, be := range boundary {
		newIDs[i] = int32(len(m.tris))
		m.tris = append(m.tris, dTri{v: [3]int32{be.u, be.v, pid}})
	}
	// Link the fan: outer neighbors across (u,v), sibling fan triangles
	// across the (v,p)/(p,u) edges.
	byFirst := make(map[int32]int32, len(boundary)) // u -> fan tri starting at u
	for i, be := range boundary {
		byFirst[be.u] = newIDs[i]
	}
	for i, be := range boundary {
		id := newIDs[i]
		tr := &m.tris[id]
		// Neighbor opposite p (vertex 2) is the outer triangle.
		tr.n[2] = be.outer
		if be.outer >= 0 {
			out := &m.tris[be.outer]
			for k := 0; k < 3; k++ {
				a, b := out.v[(k+1)%3], out.v[(k+2)%3]
				if (a == be.v && b == be.u) || (a == be.u && b == be.v) {
					out.n[k] = id
				}
			}
		}
		// Neighbor opposite u (vertex 0) is the fan triangle on edge
		// (v, p): the one whose boundary edge starts at v. The cavity
		// boundary is a simple cycle, so exactly one exists.
		next, ok := byFirst[be.v]
		if !ok {
			panic("pbbs: delaunay cavity boundary is not a cycle")
		}
		tr.n[0] = next
		// And symmetrically, that triangle's edge (p, v) faces us.
		m.tris[next].n[1] = id
	}
	return newIDs
}

// DelaunayTriangulation returns the Delaunay triangles of pts (vertices
// in counter-clockwise order), excluding triangles incident to the
// bootstrap super-triangle. Points must be distinct; ties in the
// geometric predicates (exactly cocircular or collinear quadruples) are
// not handled — the suite's random inputs avoid them.
func DelaunayTriangulation(ctx *lcws.Ctx, pts []workload.Point2) []Triangle {
	n := len(pts)
	if n < 3 {
		return nil
	}
	// Super-triangle vertices far outside the data's bounding box.
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	span := maxX - minX + maxY - minY + 1
	big := span * 1e6
	cx, cy := (minX+maxX)/2, (minY+maxY)/2
	m := &dMesh{
		pts: append(append([]workload.Point2{}, pts...),
			workload.Point2{X: cx - big, Y: cy - big},
			workload.Point2{X: cx + big, Y: cy - big},
			workload.Point2{X: cx, Y: cy + big}),
	}
	m.tris = []dTri{{v: [3]int32{int32(n), int32(n + 1), int32(n + 2)}, n: [3]int32{-1, -1, -1}}}

	// loc[p] = a live triangle containing point p (exact, maintained by
	// redistribution).
	loc := make([]int32, n)
	remaining := parlay.Tabulate(ctx, n, func(i int) int32 { return int32(i) })

	inserted := 0
	for len(remaining) > 0 {
		// Doubling prefix: parallelism grows with the mesh.
		prefix := inserted + 1
		if prefix > delaunayMaxBatch {
			prefix = delaunayMaxBatch
		}
		if prefix > len(remaining) {
			prefix = len(remaining)
		}
		batch := remaining[:prefix]

		// Parallel: compute cavities and reserve with the point's
		// priority (its position in the batch order: lower wins).
		// Reservations cover the cavity AND its boundary ring: by the
		// conflict-list lemma (Guibas–Knuth–Sharir), a new triangle's
		// circumdisk is covered by the disks of the two old triangles
		// on its boundary edge — one inside the cavity, one in the
		// ring — so two insertions commute only when each cavity is
		// disjoint from the other's cavity-plus-ring.
		reserve := make([]atomic.Int32, len(m.tris))
		lcws.ParFor(ctx, 0, len(m.tris), 0, func(ctx *lcws.Ctx, t int) {
			reserve[t].Store(int32(len(batch)))
		})
		cavities := make([][]int32, len(batch))
		claims := parlay.Tabulate(ctx, len(batch), func(i int) []int32 {
			cav := m.cavityOf(loc[batch[i]], m.pts[batch[i]])
			cavities[i] = cav
			inClaim := make(map[int32]bool, 2*len(cav))
			claim := make([]int32, 0, 2*len(cav))
			for _, t := range cav {
				if !inClaim[t] {
					inClaim[t] = true
					claim = append(claim, t)
				}
				for _, nb := range m.tris[t].n {
					if nb >= 0 && !inClaim[nb] {
						inClaim[nb] = true
						claim = append(claim, nb)
					}
				}
			}
			for _, t := range claim {
				atomicMin2(&reserve[t], int32(i))
			}
			return claim
		})

		// Parallel: a point wins when it holds every claimed reservation.
		wins := parlay.Tabulate(ctx, len(batch), func(i int) bool {
			for _, t := range claims[i] {
				if reserve[t].Load() != int32(i) {
					return false
				}
			}
			return true
		})

		// Sequential surgery per winner (cavities are disjoint for
		// winners, but adjacent cavities share boundary triangles'
		// neighbor links, so the mesh mutation itself is serialized).
		replaced := map[int32][]int32{}
		for i := range batch {
			if !wins[i] {
				continue
			}
			newIDs := m.retriangulate(batch[i], cavities[i])
			for _, t := range cavities[i] {
				replaced[t] = newIDs
			}
			inserted++
		}

		// Parallel: drop winners and relocate points whose containing
		// triangle died.
		next := make([]int32, 0, len(remaining))
		for i, p := range remaining {
			if i < len(batch) && wins[i] {
				continue
			}
			next = append(next, p)
		}
		lcws.ParFor(ctx, 0, len(next), 0, func(ctx *lcws.Ctx, i int) {
			p := next[i]
			for m.tris[loc[p]].dead {
				cands, ok := replaced[loc[p]]
				if !ok {
					panic("pbbs: dead triangle without replacement")
				}
				found := false
				for _, c := range cands {
					if !m.tris[c].dead && m.containsPoint(c, m.pts[p]) {
						loc[p] = c
						found = true
						break
					}
				}
				if !found {
					// Numerical corner: take any live replacement whose
					// cavity will still contain p on recomputation.
					for _, c := range cands {
						if !m.tris[c].dead {
							loc[p] = c
							found = true
							break
						}
					}
					if !found {
						// All replacements died in the same round's
						// later surgeries; follow their replacements.
						loc[p] = cands[0]
					}
				}
			}
			ctx.Poll()
		})
		remaining = next
	}

	// Collect live triangles not touching the super vertices.
	out := make([]Triangle, 0, 2*n)
	for i := range m.tris {
		tr := &m.tris[i]
		if tr.dead {
			continue
		}
		if tr.v[0] >= int32(n) || tr.v[1] >= int32(n) || tr.v[2] >= int32(n) {
			continue
		}
		out = append(out, Triangle{A: tr.v[0], B: tr.v[1], C: tr.v[2]})
	}
	return out
}

// delaunayMaxBatch caps the per-round insertion batch; tests use 1 to
// force sequential insertion when isolating mesh-surgery issues.
var delaunayMaxBatch = 1 << 30

// atomicMin2 lowers a to min(a, v) (plain minimum; no sentinel).
func atomicMin2(a *atomic.Int32, v int32) {
	for {
		cur := a.Load()
		if cur <= v {
			return
		}
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// delaunayJob verifies structure and the empty-circumcircle property.
func delaunayJob(pts []workload.Point2) *Job {
	var got []Triangle
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = DelaunayTriangulation(ctx, pts) },
		Verify: func() error {
			return verifyDelaunay(pts, got)
		},
	}
}

// verifyDelaunay checks counter-clockwise orientation, vertex coverage,
// and the empty-circumcircle property (exhaustive for small inputs,
// sampled above 2000 points).
func verifyDelaunay(pts []workload.Point2, tris []Triangle) error {
	n := len(pts)
	if n >= 3 && len(tris) == 0 {
		return verifyErr("delaunayTriangulation", "no triangles for %d points", n)
	}
	used := make([]bool, n)
	for _, t := range tris {
		a, b, c := pts[t.A], pts[t.B], pts[t.C]
		if orient2d(a, b, c) <= 0 {
			return verifyErr("delaunayTriangulation", "triangle (%d,%d,%d) not counter-clockwise", t.A, t.B, t.C)
		}
		used[t.A], used[t.B], used[t.C] = true, true, true
	}
	for i, u := range used {
		if !u {
			return verifyErr("delaunayTriangulation", "point %d in no triangle", i)
		}
	}
	step := 1
	if len(tris) > 2000 {
		step = len(tris) / 2000
	}
	for ti := 0; ti < len(tris); ti += step {
		t := tris[ti]
		a, b, c := pts[t.A], pts[t.B], pts[t.C]
		for pi := 0; pi < n; pi++ {
			p := int32(pi)
			if p == t.A || p == t.B || p == t.C {
				continue
			}
			if inCircle(a, b, c, pts[pi]) {
				return verifyErr("delaunayTriangulation",
					"point %d inside circumcircle of (%d,%d,%d)", pi, t.A, t.B, t.C)
			}
		}
	}
	return nil
}

var _ = fmt.Sprintf // keep fmt for future diagnostics in this file
