package pbbs

import (
	"testing"

	"lcws"
	"lcws/workload"
)

func TestBFSPathGraph(t *testing.T) {
	// 0-1-2-...-9: parent of v must be v-1, distances increase by 1.
	var edges []workload.Edge
	for i := int32(0); i < 9; i++ {
		edges = append(edges, workload.Edge{U: i, V: i + 1})
	}
	g := workload.BuildGraph(10, edges)
	runOn(t, func(ctx *lcws.Ctx) {
		parents := BFS(ctx, g, 0)
		for v := int32(1); v < 10; v++ {
			if parents[v] != v-1 {
				t.Errorf("parent[%d] = %d, want %d", v, parents[v], v-1)
			}
		}
		if parents[0] != 0 {
			t.Errorf("source parent = %d", parents[0])
		}
	})
}

func TestBFSDisconnected(t *testing.T) {
	g := workload.BuildGraph(5, []workload.Edge{{U: 0, V: 1}, {U: 3, V: 4}})
	runOn(t, func(ctx *lcws.Ctx) {
		parents := BFS(ctx, g, 0)
		if parents[2] != -1 || parents[3] != -1 || parents[4] != -1 {
			t.Errorf("unreachable vertices have parents: %v", parents)
		}
		if parents[1] != 0 {
			t.Errorf("parent[1] = %d", parents[1])
		}
	})
}

func TestBFSStarGraph(t *testing.T) {
	// Star: all leaves at distance 1 from center 0.
	var edges []workload.Edge
	for i := int32(1); i < 100; i++ {
		edges = append(edges, workload.Edge{U: 0, V: i})
	}
	g := workload.BuildGraph(100, edges)
	runOn(t, func(ctx *lcws.Ctx) {
		parents := BFS(ctx, g, 0)
		for v := 1; v < 100; v++ {
			if parents[v] != 0 {
				t.Errorf("parent[%d] = %d, want 0", v, parents[v])
			}
		}
	})
}

func TestMISTriangle(t *testing.T) {
	g := workload.BuildGraph(3, []workload.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	runOn(t, func(ctx *lcws.Ctx) {
		mis := MaximalIndependentSet(ctx, g)
		count := 0
		for _, in := range mis {
			if in {
				count++
			}
		}
		if count != 1 {
			t.Errorf("triangle MIS has %d vertices, want 1", count)
		}
	})
}

func TestMISEmptyGraphAllIn(t *testing.T) {
	g := workload.BuildGraph(50, nil)
	runOn(t, func(ctx *lcws.Ctx) {
		mis := MaximalIndependentSet(ctx, g)
		for v, in := range mis {
			if !in {
				t.Errorf("isolated vertex %d not in MIS", v)
			}
		}
	})
}

func TestMatchingSingleEdgeAndTriangle(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		m := MaximalMatching(ctx, 2, []workload.Edge{{U: 0, V: 1}})
		if len(m) != 1 || m[0] != 0 {
			t.Errorf("single-edge matching = %v", m)
		}
		m = MaximalMatching(ctx, 3, []workload.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
		if len(m) != 1 {
			t.Errorf("triangle matching has %d edges, want 1", len(m))
		}
		m = MaximalMatching(ctx, 4, nil)
		if len(m) != 0 {
			t.Errorf("empty matching = %v", m)
		}
	})
}

func TestMatchingPerfectOnPath(t *testing.T) {
	// Path 0-1-2-3: a maximal matching has 1 or 2 edges, never 0.
	edges := []workload.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	runOn(t, func(ctx *lcws.Ctx) {
		m := MaximalMatching(ctx, 4, edges)
		if len(m) == 0 || len(m) > 2 {
			t.Errorf("path matching = %v", m)
		}
	})
}

func TestSpanningForestTreeInput(t *testing.T) {
	// Input is already a tree: every edge must be selected.
	edges := []workload.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 1, V: 3}, {U: 3, V: 4}}
	runOn(t, func(ctx *lcws.Ctx) {
		sel := SpanningForest(ctx, 5, edges)
		if len(sel) != 4 {
			t.Errorf("tree spanning forest selected %d edges, want 4", len(sel))
		}
	})
}

func TestSpanningForestWithCyclesAndComponents(t *testing.T) {
	// Two components: a 4-cycle (3 tree edges) and an edge (1 tree edge).
	edges := []workload.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0},
		{U: 4, V: 5},
	}
	runOn(t, func(ctx *lcws.Ctx) {
		sel := SpanningForest(ctx, 6, edges)
		if len(sel) != 4 {
			t.Errorf("selected %d edges, want 4", len(sel))
		}
		if err := verifyForest("test", 6, edges, sel, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestMinSpanningForestKnown(t *testing.T) {
	// Square with diagonal: MST must take the three cheapest non-cyclic.
	edges := []workload.WeightedEdge{
		{U: 0, V: 1, W: 0.1},
		{U: 1, V: 2, W: 0.2},
		{U: 2, V: 3, W: 0.9},
		{U: 3, V: 0, W: 0.3},
		{U: 0, V: 2, W: 0.8},
	}
	runOn(t, func(ctx *lcws.Ctx) {
		sel := MinSpanningForest(ctx, 4, edges)
		if len(sel) != 3 {
			t.Fatalf("MSF has %d edges, want 3", len(sel))
		}
		var w float64
		for _, i := range sel {
			w += edges[i].W
		}
		if diff := w - 0.6; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("MSF weight = %v, want 0.6", w)
		}
	})
}

func TestUnionFindConcurrentAgreesWithSequential(t *testing.T) {
	edges := workload.RMatEdges(77, 10, 4000)
	n := 1024
	runOn(t, func(ctx *lcws.Ctx) {
		sel := SpanningForest(ctx, n, edges)
		if err := verifyForest("test", n, edges, sel, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestSeqComponents(t *testing.T) {
	comp := seqComponents(5, []workload.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	if comp[0] != comp[1] || comp[2] != comp[3] {
		t.Error("connected vertices in different components")
	}
	if comp[0] == comp[2] || comp[0] == comp[4] {
		t.Error("disconnected vertices share a component")
	}
}

func TestBackForwardBFSMatchesBFS(t *testing.T) {
	graphs := []*workload.Graph{
		workload.RMatGraph(881, 10, 6000), // dense enough to trigger bottom-up
		workload.GridGraph3D(8),
		workload.BuildGraph(5, []workload.Edge{{U: 0, V: 1}, {U: 3, V: 4}}), // disconnected
	}
	for gi, g := range graphs {
		g := g
		runOn(t, func(ctx *lcws.Ctx) {
			bf := BackForwardBFS(ctx, g, 0)
			if err := verifyBFSTree("backForwardBFS", g, 0, bf); err != nil {
				t.Errorf("graph %d: %v", gi, err)
			}
			// Reachability must agree with plain BFS.
			plain := BFS(ctx, g, 0)
			for v := range bf {
				if (bf[v] == -1) != (plain[v] == -1) {
					t.Errorf("graph %d: vertex %d reachability differs between BFS variants", gi, v)
				}
			}
		})
	}
}

func TestBackForwardBFSStarTriggersBottomUp(t *testing.T) {
	// A star graph floods the frontier in one round, forcing the
	// bottom-up path.
	var edges []workload.Edge
	for i := int32(1); i < 2000; i++ {
		edges = append(edges, workload.Edge{U: 0, V: i})
	}
	g := workload.BuildGraph(2000, edges)
	runOn(t, func(ctx *lcws.Ctx) {
		parents := BackForwardBFS(ctx, g, 0)
		for v := 1; v < 2000; v++ {
			if parents[v] != 0 {
				t.Fatalf("parent[%d] = %d, want 0", v, parents[v])
			}
		}
	})
}
