package pbbs

import (
	"testing"

	"lcws"
)

// testScale keeps suite-wide tests fast; individual benchmarks get
// additional focused tests in their own files.
const testScale = Scale(0.05)

func TestSuiteEveryInstanceVerifiesUnderWS(t *testing.T) {
	for _, inst := range Suite(testScale) {
		inst := inst
		t.Run(inst.Name(), func(t *testing.T) {
			job := inst.Prepare()
			s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(lcws.WS), lcws.WithSeed(1))
			s.Run(job.Run)
			if err := job.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSuiteEveryInstanceVerifiesUnderEveryLCWSPolicy(t *testing.T) {
	for _, p := range lcws.LCWSPolicies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, inst := range Suite(testScale) {
				inst := inst
				t.Run(inst.Name(), func(t *testing.T) {
					job := inst.Prepare()
					s := lcws.New(lcws.WithWorkers(4), lcws.WithPolicy(p), lcws.WithSeed(2))
					s.Run(job.Run)
					if err := job.Verify(); err != nil {
						t.Fatal(err)
					}
				})
			}
		})
	}
}

func TestSuiteSingleWorker(t *testing.T) {
	// P=1 is the paper's sequential end of every sweep; all instances
	// must verify there too.
	for _, inst := range Suite(testScale) {
		inst := inst
		t.Run(inst.Name(), func(t *testing.T) {
			job := inst.Prepare()
			s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(lcws.SignalLCWS))
			s.Run(job.Run)
			if err := job.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestJobRunIsRepeatable(t *testing.T) {
	// The harness reuses jobs across repetitions and policies; Run must
	// be callable repeatedly with Verify passing each time.
	inst, err := Find(testScale, "integerSort", "randomSeq_int")
	if err != nil {
		t.Fatal(err)
	}
	job := inst.Prepare()
	s := lcws.New(lcws.WithWorkers(2), lcws.WithPolicy(lcws.HalfLCWS))
	for round := 0; round < 3; round++ {
		s.Run(job.Run)
		if err := job.Verify(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite(testScale)
	if len(suite) < 25 {
		t.Errorf("suite has only %d instances; expected the full benchmark collection", len(suite))
	}
	benches := Benchmarks(testScale)
	if len(benches) < 15 {
		t.Errorf("suite covers only %d benchmarks: %v", len(benches), benches)
	}
	seen := map[string]bool{}
	for _, inst := range suite {
		key := inst.Name()
		if seen[key] {
			t.Errorf("duplicate instance %s", key)
		}
		seen[key] = true
		if inst.Prepare == nil {
			t.Errorf("instance %s has no Prepare", key)
		}
	}
	for _, want := range []string{
		"integerSort", "comparisonSort", "histogram", "removeDuplicates",
		"wordCounts", "invertedIndex", "suffixArray", "longestRepeatedSubstring",
		"breadthFirstSearch", "maximalIndependentSet", "maximalMatching",
		"spanningForest", "minSpanningForest",
		"convexHull", "nearestNeighbors", "rayCast", "nBody", "classify",
	} {
		found := false
		for _, b := range benches {
			if b == want {
				found = true
			}
		}
		if !found {
			t.Errorf("benchmark %s missing from suite", want)
		}
	}
}

func TestFindUnknownInstance(t *testing.T) {
	if _, err := Find(testScale, "nosuch", "input"); err == nil {
		t.Error("Find of unknown instance succeeded")
	}
	inst, err := Find(testScale, "histogram", "randomSeq_256_int")
	if err != nil || inst.Benchmark != "histogram" {
		t.Errorf("Find(histogram) = %v, %v", inst, err)
	}
}
