package pbbs

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lcws"
	"lcws/internal/rng"
)

func runOn(t *testing.T, f func(ctx *lcws.Ctx)) {
	t.Helper()
	s := lcws.New(lcws.WithWorkers(3), lcws.WithPolicy(lcws.SignalLCWS), lcws.WithSeed(9))
	s.Run(f)
}

func TestTokenizeEdgeCases(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"one",
		"one two three",
		"  leading and trailing  ",
		strings.Repeat("x", 100_000), // one giant word spanning many blocks
		strings.Repeat("ab ", 50_000),
	}
	for _, text := range cases {
		text := text
		runOn(t, func(ctx *lcws.Ctx) {
			got := tokenize(ctx, text)
			want := strings.Fields(text)
			if len(got) != len(want) {
				t.Errorf("tokenize(%.20q...): %d words, want %d", text, len(got), len(want))
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("tokenize word %d = %q, want %q", i, got[i], want[i])
					return
				}
			}
		})
	}
}

func TestTokenizePropertyMatchesFields(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		// Random text with random word and gap lengths crossing the 8 KiB
		// block boundary in varied ways.
		var sb strings.Builder
		for sb.Len() < 40_000 {
			wl := 1 + g.Intn(30)
			for i := 0; i < wl; i++ {
				sb.WriteByte(byte('a' + g.Intn(26)))
			}
			for i := 0; i <= g.Intn(3); i++ {
				sb.WriteByte(' ')
			}
		}
		text := sb.String()
		ok := true
		runOn(t, func(ctx *lcws.Ctx) {
			got := tokenize(ctx, text)
			want := strings.Fields(text)
			if len(got) != len(want) {
				ok = false
				return
			}
			for i := range want {
				if got[i] != want[i] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestWordCountsSmall(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		got := WordCounts(ctx, "b a b a b")
		if len(got) != 2 || got[0].Word != "a" || got[0].Count != 2 || got[1].Word != "b" || got[1].Count != 3 {
			t.Errorf("WordCounts = %v", got)
		}
		if got := WordCounts(ctx, ""); got != nil {
			t.Errorf("WordCounts(\"\") = %v", got)
		}
	})
}

func TestBuildInvertedIndexSmall(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		docs := []string{"cat dog", "dog dog bird", "", "cat"}
		idx := BuildInvertedIndex(ctx, docs)
		want := map[string][]int32{
			"bird": {1}, "cat": {0, 3}, "dog": {0, 1},
		}
		if len(idx) != len(want) {
			t.Fatalf("index = %v", idx)
		}
		for _, p := range idx {
			ref := want[p.Word]
			if len(ref) != len(p.Docs) {
				t.Fatalf("posting %q = %v, want %v", p.Word, p.Docs, ref)
			}
			for i := range ref {
				if p.Docs[i] != ref[i] {
					t.Fatalf("posting %q = %v, want %v", p.Word, p.Docs, ref)
				}
			}
		}
		if got := BuildInvertedIndex(ctx, nil); got != nil {
			t.Errorf("empty index = %v", got)
		}
	})
}

// naiveSA is the quadratic reference suffix array.
func naiveSA(s []byte) []int32 {
	out := make([]int32, len(s))
	for i := range out {
		out[i] = int32(i)
	}
	sort.Slice(out, func(a, b int) bool {
		return bytes.Compare(s[out[a]:], s[out[b]:]) < 0
	})
	return out
}

func TestSuffixArrayKnownStrings(t *testing.T) {
	cases := []string{
		"",
		"a",
		"banana",
		"mississippi",
		"aaaaaaaa",
		"abababab",
		"the quick brown fox jumps over the lazy dog",
	}
	for _, s := range cases {
		s := s
		runOn(t, func(ctx *lcws.Ctx) {
			got := SuffixArray(ctx, []byte(s))
			want := naiveSA([]byte(s))
			if len(got) != len(want) {
				t.Fatalf("SuffixArray(%q) length %d", s, len(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("SuffixArray(%q) = %v, want %v", s, got, want)
				}
			}
		})
	}
}

func TestSuffixArrayPropertyMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		n := 1 + g.Intn(2000)
		s := make([]byte, n)
		for i := range s {
			s[i] = byte('a' + g.Intn(4)) // small alphabet: many ties
		}
		var got []int32
		runOn(t, func(ctx *lcws.Ctx) { got = SuffixArray(ctx, s) })
		want := naiveSA(s)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLongestRepeatedSubstringKnown(t *testing.T) {
	cases := []struct {
		s    string
		want string
	}{
		{"banana", "ana"},
		{"abcabcabc", "abcabc"},
		{"aaaa", "aaa"},
		{"abcdefg", ""},
	}
	for _, c := range cases {
		c := c
		runOn(t, func(ctx *lcws.Ctx) {
			pos, length := LongestRepeatedSubstring(ctx, []byte(c.s))
			got := c.s[pos : pos+length]
			if length != len(c.want) {
				t.Errorf("LRS(%q) = %q (len %d), want %q", c.s, got, length, c.want)
				return
			}
			if length > 0 && got != c.want {
				// Multiple longest repeats may exist; the reported one
				// must at least repeat.
				if strings.Count(c.s, got) < 2 {
					t.Errorf("LRS(%q) = %q does not repeat", c.s, got)
				}
			}
		})
	}
}

func TestLongestRepeatedSubstringTiny(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		if _, l := LongestRepeatedSubstring(ctx, nil); l != 0 {
			t.Error("LRS(nil) should be 0")
		}
		if _, l := LongestRepeatedSubstring(ctx, []byte("x")); l != 0 {
			t.Error("LRS of 1 byte should be 0")
		}
	})
}

// FuzzTokenize checks the parallel block tokenizer against
// strings.Fields on arbitrary inputs (the block-boundary word-ownership
// logic is the tricky part).
func FuzzTokenize(f *testing.F) {
	f.Add("one two three")
	f.Add("  leading  ")
	f.Add(strings.Repeat("word ", 3000))
	f.Add(strings.Repeat("x", 20000))
	f.Fuzz(func(t *testing.T, text string) {
		// The tokenizer is specified for space-separated lower-case
		// words; normalize arbitrary bytes into that alphabet while
		// keeping the fuzzer's structure (lengths and boundaries).
		b := []byte(text)
		for i, c := range b {
			if c != ' ' {
				b[i] = 'a' + c%26
			}
		}
		norm := string(b)
		var got []string
		runOn(t, func(ctx *lcws.Ctx) { got = tokenize(ctx, norm) })
		want := strings.Fields(norm)
		if len(got) != len(want) {
			t.Fatalf("tokenize found %d words, Fields %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("word %d = %q, want %q", i, got[i], want[i])
			}
		}
	})
}

func TestLCPArrayAgainstNaive(t *testing.T) {
	s := []byte("banana")
	runOn(t, func(ctx *lcws.Ctx) {
		sa := SuffixArray(ctx, s)
		lcp := LCPArray(ctx, s, sa)
		// SA of banana: a(5), ana(3), anana(1), banana(0), na(4), nana(2)
		want := []int32{0, 1, 3, 0, 0, 2}
		for i := range want {
			if lcp[i] != want[i] {
				t.Fatalf("lcp = %v, want %v", lcp, want)
			}
		}
	})
}

func TestLCPArrayRandomConsistency(t *testing.T) {
	runOn(t, func(ctx *lcws.Ctx) {
		s := []byte(strings.Repeat("abracadabra", 200))
		sa := SuffixArray(ctx, s)
		lcp := LCPArray(ctx, s, sa)
		if len(lcp) != len(sa) {
			t.Fatal("length mismatch")
		}
		for i := 1; i < len(sa); i += 97 {
			a, b := s[sa[i-1]:], s[sa[i]:]
			l := int(lcp[i])
			if l > len(a) || l > len(b) {
				t.Fatalf("lcp %d longer than a suffix", l)
			}
			if !bytes.Equal(a[:l], b[:l]) {
				t.Fatalf("prefixes differ at lcp %d", l)
			}
			if l < len(a) && l < len(b) && a[l] == b[l] {
				t.Fatalf("lcp %d not maximal at %d", l, i)
			}
		}
		if got := LCPArray(ctx, nil, nil); got != nil {
			t.Error("LCPArray(nil) should be nil")
		}
	})
}
