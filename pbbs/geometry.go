package pbbs

import (
	"math"
	"sort"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// geometryInstances returns the convexHull, nearestNeighbors and rayCast
// instances.
func geometryInstances(scale Scale) []*Instance {
	nHull := scale.scaled(100_000)
	nNN := scale.scaled(20_000)
	nSegs := scale.scaled(2_000)
	nRays := scale.scaled(6_000)
	return []*Instance{
		{Benchmark: "convexHull", Input: "2DinSphere",
			Prepare: func() *Job { return hullJob(workload.InSphere2D(401, nHull)) }},
		{Benchmark: "convexHull", Input: "2DonSphere",
			Prepare: func() *Job { return hullJob(workload.OnSphere2D(402, nHull/4)) }},
		{Benchmark: "convexHull", Input: "2Dkuzmin",
			Prepare: func() *Job { return hullJob(workload.Kuzmin2D(403, nHull)) }},

		{Benchmark: "nearestNeighbors", Input: "2DinCube",
			Prepare: func() *Job { return nnJob(workload.InCube2D(411, nNN)) }},
		{Benchmark: "nearestNeighbors", Input: "2Dkuzmin",
			Prepare: func() *Job { return nnJob(workload.Kuzmin2D(412, nNN)) }},

		{Benchmark: "delaunayTriangulation", Input: "2DinCube",
			Prepare: func() *Job { return delaunayJob(workload.InCube2D(441, scale.scaled(8_000))) }},
		{Benchmark: "delaunayTriangulation", Input: "2Dkuzmin",
			Prepare: func() *Job { return delaunayJob(workload.Kuzmin2D(442, scale.scaled(8_000))) }},

		{Benchmark: "delaunayRefine", Input: "2DinCube",
			Prepare: func() *Job { return refineJob(workload.InCube2D(451, scale.scaled(3_000))) }},

		{Benchmark: "rangeQuery2d", Input: "2DinCube",
			Prepare: func() *Job {
				return rangeQueryJob(workload.InCube2D(431, nNN), randomRects(432, nNN/4))
			}},
		{Benchmark: "rangeQuery2d", Input: "2Dkuzmin",
			Prepare: func() *Job {
				return rangeQueryJob(workload.Kuzmin2D(433, nNN), randomRects(434, nNN/4))
			}},

		{Benchmark: "rayCast3d", Input: "randomTriangles",
			Prepare: func() *Job {
				tris := RandomTriangles(461, scale.scaled(3_000), 0.08)
				rays := RandomRays3D(462, scale.scaled(5_000))
				return rayCast3DJob(tris, rays)
			}},

		{Benchmark: "rayCast", Input: "randomSegments",
			Prepare: func() *Job {
				segs := workload.RandomSegments(421, nSegs, 0.05)
				rays := workload.RandomRays(422, nRays)
				return rayCastJob(segs, rays)
			}},
	}
}

// cross returns the z component of (b-a) × (c-a): positive when c lies
// left of the directed line a→b.
func cross(a, b, c workload.Point2) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// ConvexHull returns the indices of points on the convex hull in
// counter-clockwise order, computed with parallel quickhull (the PBBS
// convexHull kernel): recursive filtering of points outside each hull
// edge, with the two sub-problems solved in parallel.
func ConvexHull(ctx *lcws.Ctx, pts []workload.Point2) []int32 {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := parlay.Tabulate(ctx, n, func(i int) int32 { return int32(i) })
	// Extreme points by (x, y) lexicographic order.
	minP := parlay.Reduce(ctx, idx, idx[0], func(a, b int32) int32 {
		if pts[b].X < pts[a].X || (pts[b].X == pts[a].X && pts[b].Y < pts[a].Y) {
			return b
		}
		return a
	})
	maxP := parlay.Reduce(ctx, idx, idx[0], func(a, b int32) int32 {
		if pts[b].X > pts[a].X || (pts[b].X == pts[a].X && pts[b].Y > pts[a].Y) {
			return b
		}
		return a
	})
	if minP == maxP {
		return []int32{minP}
	}
	upper := parlay.Filter(ctx, idx, func(i int32) bool { return cross(pts[minP], pts[maxP], pts[i]) > 0 })
	lower := parlay.Filter(ctx, idx, func(i int32) bool { return cross(pts[maxP], pts[minP], pts[i]) > 0 })
	var left, right []int32
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { left = quickHullRec(ctx, pts, upper, minP, maxP) },
		func(ctx *lcws.Ctx) { right = quickHullRec(ctx, pts, lower, maxP, minP) },
	)
	out := make([]int32, 0, len(left)+len(right)+2)
	out = append(out, minP)
	out = append(out, left...)
	out = append(out, maxP)
	out = append(out, right...)
	// The assembly above walks the hull clockwise (top chain first);
	// reverse for the conventional counter-clockwise order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// quickHullRec returns the hull points strictly left of a→b among cand,
// in order along the hull from a to b (exclusive).
func quickHullRec(ctx *lcws.Ctx, pts []workload.Point2, cand []int32, a, b int32) []int32 {
	if len(cand) == 0 {
		return nil
	}
	// Farthest point from the line a-b (ties by index for determinism).
	far := parlay.Reduce(ctx, cand, cand[0], func(x, y int32) int32 {
		cx, cy := cross(pts[a], pts[b], pts[x]), cross(pts[a], pts[b], pts[y])
		if cy > cx || (cy == cx && y < x) {
			return y
		}
		return x
	})
	leftCand := parlay.Filter(ctx, cand, func(i int32) bool { return cross(pts[a], pts[far], pts[i]) > 0 })
	rightCand := parlay.Filter(ctx, cand, func(i int32) bool { return cross(pts[far], pts[b], pts[i]) > 0 })
	var left, right []int32
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { left = quickHullRec(ctx, pts, leftCand, a, far) },
		func(ctx *lcws.Ctx) { right = quickHullRec(ctx, pts, rightCand, far, b) },
	)
	out := make([]int32, 0, len(left)+len(right)+1)
	out = append(out, left...)
	out = append(out, far)
	out = append(out, right...)
	return out
}

// seqHull is the sequential Andrew monotone chain reference.
func seqHull(pts []workload.Point2) []int32 {
	n := len(pts)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	build := func(order []int32) []int32 {
		var h []int32
		for _, i := range order {
			for len(h) >= 2 && cross(pts[h[len(h)-2]], pts[h[len(h)-1]], pts[i]) <= 0 {
				h = h[:len(h)-1]
			}
			h = append(h, i)
		}
		return h
	}
	lower := build(idx)
	rev := make([]int32, n)
	for i := range idx {
		rev[i] = idx[n-1-i]
	}
	upper := build(rev)
	out := lower[:len(lower)-1]
	out = append(out, upper[:len(upper)-1]...)
	return out
}

func hullJob(pts []workload.Point2) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = ConvexHull(ctx, pts) },
		Verify: func() error {
			want := seqHull(pts)
			// The two algorithms break collinear ties differently; compare
			// the sets of strictly extreme points: every reference hull
			// vertex that is a strict corner must be present, and every
			// reported vertex must lie on the reference hull boundary.
			wantSet := map[int32]bool{}
			for _, i := range want {
				wantSet[i] = true
			}
			gotSet := map[int32]bool{}
			for _, i := range got {
				gotSet[i] = true
			}
			m := len(want)
			for k := 0; k < m; k++ {
				prev, cur, next := want[(k+m-1)%m], want[k], want[(k+1)%m]
				if cross(pts[prev], pts[next], pts[cur]) > 0 && !gotSet[cur] {
					return verifyErr("convexHull", "strict hull corner %d missing", cur)
				}
			}
			// Every reported point must not be strictly inside: no
			// reference edge may have it strictly to the left... i.e. it
			// must lie on the boundary: for some consecutive reference
			// pair (a,b), cross(a,b,p) == 0 and p between, or p is a
			// corner.
			for _, p := range got {
				if wantSet[p] {
					continue
				}
				on := false
				for k := 0; k < m; k++ {
					a, b := want[k], want[(k+1)%m]
					if cross(pts[a], pts[b], pts[p]) == 0 {
						on = true
						break
					}
				}
				if !on {
					return verifyErr("convexHull", "reported vertex %d not on reference hull", p)
				}
			}
			return nil
		},
	}
}

// kdNode is one node of the nearest-neighbour kd-tree; leaves hold up to
// kdLeafSize point indices.
type kdNode struct {
	axis        int     // 0 = x, 1 = y; -1 for leaves
	split       float64 // splitting coordinate
	left, right *kdNode
	pts         []int32 // leaf points
}

const kdLeafSize = 16

// buildKD builds a kd-tree over idx (which it reorders) with parallel
// child construction. Splits take the median by sorting the sub-slice —
// the top-level sorts are themselves parallel work for the scheduler.
func buildKD(ctx *lcws.Ctx, pts []workload.Point2, idx []int32, depth int) *kdNode {
	if len(idx) <= kdLeafSize {
		return &kdNode{axis: -1, pts: idx}
	}
	axis := depth % 2
	coord := func(i int32) float64 {
		if axis == 0 {
			return pts[i].X
		}
		return pts[i].Y
	}
	parlay.SortFunc(ctx, idx, func(a, b int32) bool {
		ca, cb := coord(a), coord(b)
		if ca != cb {
			return ca < cb
		}
		return a < b
	})
	mid := len(idx) / 2
	node := &kdNode{axis: axis, split: coord(idx[mid])}
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { node.left = buildKD(ctx, pts, idx[:mid], depth+1) },
		func(ctx *lcws.Ctx) { node.right = buildKD(ctx, pts, idx[mid:], depth+1) },
	)
	return node
}

func sqDist(a, b workload.Point2) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

// nnSearch finds the nearest neighbour of pts[q] in the tree, excluding q
// itself. best and bestD carry the incumbent through the recursion.
func nnSearch(node *kdNode, pts []workload.Point2, q int32, best int32, bestD float64) (int32, float64) {
	if node.axis == -1 {
		for _, i := range node.pts {
			if i == q {
				continue
			}
			if d := sqDist(pts[i], pts[q]); d < bestD || (d == bestD && (best == -1 || i < best)) {
				best, bestD = i, d
			}
		}
		return best, bestD
	}
	var qc float64
	if node.axis == 0 {
		qc = pts[q].X
	} else {
		qc = pts[q].Y
	}
	near, farN := node.left, node.right
	if qc > node.split {
		near, farN = node.right, node.left
	}
	best, bestD = nnSearch(near, pts, q, best, bestD)
	if d := qc - node.split; d*d <= bestD {
		best, bestD = nnSearch(farN, pts, q, best, bestD)
	}
	return best, bestD
}

// AllNearestNeighbors returns, for every point, the index of its nearest
// other point (ties by lowest index), via a parallel kd-tree build and
// parallel independent queries (the PBBS nearestNeighbors kernel, k=1).
func AllNearestNeighbors(ctx *lcws.Ctx, pts []workload.Point2) []int32 {
	n := len(pts)
	if n < 2 {
		return make([]int32, n)
	}
	idx := parlay.Tabulate(ctx, n, func(i int) int32 { return int32(i) })
	root := buildKD(ctx, pts, idx, 0)
	return parlay.Tabulate(ctx, n, func(q int) int32 {
		best, _ := nnSearch(root, pts, int32(q), -1, math.Inf(1))
		return best
	})
}

func nnJob(pts []workload.Point2) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = AllNearestNeighbors(ctx, pts) },
		Verify: func() error {
			n := len(pts)
			// Brute-force distances on a deterministic sample.
			step := n/200 + 1
			for q := 0; q < n; q += step {
				bestD := math.Inf(1)
				for i := 0; i < n; i++ {
					if i == q {
						continue
					}
					if d := sqDist(pts[i], pts[q]); d < bestD {
						bestD = d
					}
				}
				g := got[q]
				if g < 0 || int(g) >= n || g == int32(q) {
					return verifyErr("nearestNeighbors", "invalid neighbour %d for %d", g, q)
				}
				if gd := sqDist(pts[g], pts[q]); gd != bestD {
					return verifyErr("nearestNeighbors", "point %d: dist %v, want %v", q, gd, bestD)
				}
			}
			return nil
		},
	}
}

// raySegIntersect returns the ray parameter t >= 0 at which ray r hits
// segment s, or +Inf when it misses.
func raySegIntersect(r workload.Ray2, s workload.Segment2) float64 {
	ex, ey := s.B.X-s.A.X, s.B.Y-s.A.Y
	den := r.D.X*ey - r.D.Y*ex
	if den == 0 {
		return math.Inf(1)
	}
	ax, ay := s.A.X-r.O.X, s.A.Y-r.O.Y
	t := (ax*ey - ay*ex) / den
	u := (ax*r.D.Y - ay*r.D.X) / den
	if t >= 0 && u >= 0 && u <= 1 {
		return t
	}
	return math.Inf(1)
}

// rayGrid is a uniform grid over the unit square accelerating ray casts.
type rayGrid struct {
	res   int
	cells [][]int32 // segment indices per cell
	segs  []workload.Segment2
}

func buildRayGrid(ctx *lcws.Ctx, segs []workload.Segment2, res int) *rayGrid {
	g := &rayGrid{res: res, cells: make([][]int32, res*res), segs: segs}
	clampCell := func(v float64) int {
		c := int(v * float64(res))
		if c < 0 {
			c = 0
		}
		if c >= res {
			c = res - 1
		}
		return c
	}
	// Conservative rasterization: every cell in the segment's bounding
	// box. Segments are short, so boxes span few cells. Build cell lists
	// sequentially per cell row in parallel.
	type span struct{ x0, x1, y0, y1 int }
	spans := parlay.Tabulate(ctx, len(segs), func(i int) span {
		s := segs[i]
		return span{
			x0: clampCell(math.Min(s.A.X, s.B.X)), x1: clampCell(math.Max(s.A.X, s.B.X)),
			y0: clampCell(math.Min(s.A.Y, s.B.Y)), y1: clampCell(math.Max(s.A.Y, s.B.Y)),
		}
	})
	lcws.ParFor(ctx, 0, res, 1, func(ctx *lcws.Ctx, cy int) {
		for i, sp := range spans {
			if cy < sp.y0 || cy > sp.y1 {
				continue
			}
			for cx := sp.x0; cx <= sp.x1; cx++ {
				g.cells[cy*res+cx] = append(g.cells[cy*res+cx], int32(i))
			}
		}
		ctx.Poll()
	})
	return g
}

// cast walks the ray through the grid (DDA) and returns the index of the
// first segment hit and the hit parameter, or (-1, +Inf).
func (g *rayGrid) cast(r workload.Ray2) (int32, float64) {
	res := g.res
	cell := func(v float64) int { return int(math.Floor(v * float64(res))) }
	cx, cy := cell(r.O.X), cell(r.O.Y)
	stepX, stepY := 1, 1
	if r.D.X < 0 {
		stepX = -1
	}
	if r.D.Y < 0 {
		stepY = -1
	}
	nextBoundary := func(c int, step int) float64 {
		if step > 0 {
			return float64(c+1) / float64(res)
		}
		return float64(c) / float64(res)
	}
	tMax := func(o, d float64, c, step int) float64 {
		if d == 0 {
			return math.Inf(1)
		}
		return (nextBoundary(c, step) - o) / d
	}
	tmx := tMax(r.O.X, r.D.X, cx, stepX)
	tmy := tMax(r.O.Y, r.D.Y, cy, stepY)
	tdx, tdy := math.Inf(1), math.Inf(1)
	if r.D.X != 0 {
		tdx = 1 / math.Abs(r.D.X*float64(res))
	}
	if r.D.Y != 0 {
		tdy = 1 / math.Abs(r.D.Y*float64(res))
	}
	bestSeg, bestT := int32(-1), math.Inf(1)
	for cx >= 0 && cx < res && cy >= 0 && cy < res {
		cellEnd := math.Min(tmx, tmy)
		for _, si := range g.cells[cy*res+cx] {
			if t := raySegIntersect(r, g.segs[si]); t < bestT || (t == bestT && si < bestSeg) {
				bestSeg, bestT = si, t
			}
		}
		// A hit inside the portion of the ray already traversed is final.
		if bestT <= cellEnd {
			return bestSeg, bestT
		}
		if tmx < tmy {
			tmx += tdx
			cx += stepX
		} else {
			tmy += tdy
			cy += stepY
		}
	}
	return bestSeg, bestT
}

// RayCast intersects every ray with the segment set and returns the index
// of the first segment each ray hits (-1 for a miss), using a uniform
// acceleration grid with parallel build and parallel independent ray
// walks. It stands in for PBBS's 3D triangle rayCast benchmark (DESIGN.md
// §2): the same structure — build an acceleration structure, then a flat
// parallel loop of irregular-cost queries.
func RayCast(ctx *lcws.Ctx, segs []workload.Segment2, rays []workload.Ray2) []int32 {
	grid := buildRayGrid(ctx, segs, 64)
	return parlay.Tabulate(ctx, len(rays), func(i int) int32 {
		hit, _ := grid.cast(rays[i])
		return hit
	})
}

func rayCastJob(segs []workload.Segment2, rays []workload.Ray2) *Job {
	var got []int32
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = RayCast(ctx, segs, rays) },
		Verify: func() error {
			// Brute-force reference on a deterministic sample of rays.
			step := len(rays)/150 + 1
			for ri := 0; ri < len(rays); ri += step {
				best, bestT := int32(-1), math.Inf(1)
				for si := range segs {
					if t := raySegIntersect(rays[ri], segs[si]); t < bestT || (t == bestT && int32(si) < best) {
						best, bestT = int32(si), t
					}
				}
				if got[ri] != best {
					return verifyErr("rayCast", "ray %d hit %d, want %d", ri, got[ri], best)
				}
			}
			return nil
		},
	}
}
