package pbbs

import (
	"math"

	"lcws"
	"lcws/parlay"
	"lcws/workload"
)

// miscInstances returns the nBody and classify instances.
func miscInstances(scale Scale) []*Instance {
	nBodies := scale.scaled(1_500)
	nRows := scale.scaled(20_000)
	return []*Instance{
		{Benchmark: "nBody", Input: "3Dplummer",
			Prepare: func() *Job { return nBodyJob(workload.PlummerBodies(501, nBodies)) }},
		{Benchmark: "nBody", Input: "3Dplummer_barnesHut",
			Prepare: func() *Job { return nBodyBHJob(workload.PlummerBodies(502, nBodies*6)) }},
		{Benchmark: "classify", Input: "covtype_like",
			Prepare: func() *Job { return classifyJob(workload.CovtypeLike(511, nRows, 8, 4)) }},
		{Benchmark: "classify", Input: "covtype_like_wide",
			Prepare: func() *Job { return classifyJob(workload.CovtypeLike(512, nRows/2, 24, 4)) }},
	}
}

// Vec3 is a 3-vector (forces/accelerations of the nBody benchmark).
type Vec3 struct{ X, Y, Z float64 }

// nBodySoftening avoids singular forces for near-coincident bodies.
const nBodySoftening = 1e-6

// accelOn computes the gravitational acceleration on body i from all
// other unit-mass bodies (direct summation).
func accelOn(bodies []workload.Point3, i int) Vec3 {
	var a Vec3
	bi := bodies[i]
	for j, bj := range bodies {
		if j == i {
			continue
		}
		dx, dy, dz := bj.X-bi.X, bj.Y-bi.Y, bj.Z-bi.Z
		r2 := dx*dx + dy*dy + dz*dz + nBodySoftening
		inv := 1 / (r2 * math.Sqrt(r2))
		a.X += dx * inv
		a.Y += dy * inv
		a.Z += dz * inv
	}
	return a
}

// NBodyForces computes the gravitational acceleration on every body by
// direct all-pairs summation, parallel over bodies. It stands in for
// PBBS's Callahan–Kosaraju nBody benchmark (DESIGN.md §2): the same flat
// parallel loop of uniformly expensive, compute-bound tasks.
func NBodyForces(ctx *lcws.Ctx, bodies []workload.Point3) []Vec3 {
	return parlay.Tabulate(ctx, len(bodies), func(i int) Vec3 {
		return accelOn(bodies, i)
	})
}

func nBodyJob(bodies []workload.Point3) *Job {
	var got []Vec3
	return &Job{
		Run: func(ctx *lcws.Ctx) { got = NBodyForces(ctx, bodies) },
		Verify: func() error {
			// Newton's third law: with unit masses the accelerations sum
			// to (nearly) zero.
			var sx, sy, sz, mag float64
			for _, a := range got {
				sx += a.X
				sy += a.Y
				sz += a.Z
				mag += math.Abs(a.X) + math.Abs(a.Y) + math.Abs(a.Z)
			}
			tol := 1e-9 * (mag + 1)
			if math.Abs(sx) > tol || math.Abs(sy) > tol || math.Abs(sz) > tol {
				return verifyErr("nBody", "momentum not conserved: sum = (%g, %g, %g)", sx, sy, sz)
			}
			// Spot-check against the sequential kernel.
			step := len(bodies)/50 + 1
			for i := 0; i < len(bodies); i += step {
				want := accelOn(bodies, i)
				if got[i] != want {
					return verifyErr("nBody", "acceleration of body %d differs", i)
				}
			}
			return nil
		},
	}
}

// DecisionTree is a binary axis-aligned decision tree (the classify
// benchmark's model).
type DecisionTree struct {
	// Feature is the split feature, or -1 for a leaf.
	Feature int
	// Threshold routes rows with feature value <= Threshold left.
	Threshold float64
	// Label is the predicted class at a leaf.
	Label       int
	Left, Right *DecisionTree
}

// Predict returns the tree's class for the feature vector.
func (t *DecisionTree) Predict(features []float64) int {
	for t.Feature >= 0 {
		if features[t.Feature] <= t.Threshold {
			t = t.Left
		} else {
			t = t.Right
		}
	}
	return t.Label
}

// Depth returns the height of the tree (a leaf has depth 1).
func (t *DecisionTree) Depth() int {
	if t.Feature < 0 {
		return 1
	}
	l, r := t.Left.Depth(), t.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

const (
	dtMaxDepth = 8
	dtMinLeaf  = 16
)

// giniSplit sweeps sorted (value, label) pairs and returns the best
// threshold and its weighted Gini impurity (lower is better). ok is false
// when no valid split exists (all values equal).
func giniSplit(values []float64, labels []int, classes int) (threshold, score float64, ok bool) {
	n := len(values)
	total := make([]int, classes)
	for _, l := range labels {
		total[l]++
	}
	left := make([]int, classes)
	best := math.Inf(1)
	var bestT float64
	found := false
	nl := 0
	for i := 0; i < n-1; i++ {
		left[labels[i]]++
		nl++
		if values[i] == values[i+1] {
			continue // can only split between distinct values
		}
		nr := n - nl
		gl, gr := 1.0, 1.0
		for c := 0; c < classes; c++ {
			pl := float64(left[c]) / float64(nl)
			pr := float64(total[c]-left[c]) / float64(nr)
			gl -= pl * pl
			gr -= pr * pr
		}
		g := (float64(nl)*gl + float64(nr)*gr) / float64(n)
		if g < best {
			best = g
			bestT = (values[i] + values[i+1]) / 2
			found = true
		}
	}
	return bestT, best, found
}

// majority returns the most frequent label (lowest label on ties) and
// whether the rows are pure.
func majority(rows []workload.LabeledRow, idx []int32, classes int) (label int, pure bool) {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[rows[i].Label]++
	}
	best, bestC, nonzero := 0, -1, 0
	for c, k := range counts {
		if k > 0 {
			nonzero++
		}
		if k > bestC {
			best, bestC = c, k
		}
	}
	return best, nonzero <= 1
}

// BuildDecisionTree trains a Gini-impurity decision tree on rows (the
// PBBS classify/decisionTree benchmark): the per-feature split searches
// run in parallel (each is a parallel sort plus a sequential sweep) and
// the two child subtrees build in parallel.
func BuildDecisionTree(ctx *lcws.Ctx, rows []workload.LabeledRow, classes int) *DecisionTree {
	idx := parlay.Tabulate(ctx, len(rows), func(i int) int32 { return int32(i) })
	return buildDT(ctx, rows, idx, classes, dtMaxDepth)
}

func buildDT(ctx *lcws.Ctx, rows []workload.LabeledRow, idx []int32, classes, depth int) *DecisionTree {
	label, pure := majority(rows, idx, classes)
	if pure || depth <= 1 || len(idx) < 2*dtMinLeaf {
		return &DecisionTree{Feature: -1, Label: label}
	}
	nf := len(rows[0].Features)
	type split struct {
		score, threshold float64
		ok               bool
	}
	splits := make([]split, nf)
	// Evaluate every feature's best split in parallel.
	lcws.ParFor(ctx, 0, nf, 1, func(ctx *lcws.Ctx, f int) {
		order := make([]int32, len(idx))
		copy(order, idx)
		parlay.SortFunc(ctx, order, func(a, b int32) bool {
			va, vb := rows[a].Features[f], rows[b].Features[f]
			if va != vb {
				return va < vb
			}
			return a < b
		})
		values := make([]float64, len(order))
		labels := make([]int, len(order))
		for i, r := range order {
			values[i] = rows[r].Features[f]
			labels[i] = rows[r].Label
		}
		t, s, ok := giniSplit(values, labels, classes)
		splits[f] = split{score: s, threshold: t, ok: ok}
		ctx.Poll()
	})
	bestF := -1
	bestS := math.Inf(1)
	for f, s := range splits {
		if s.ok && s.score < bestS {
			bestF, bestS = f, s.score
		}
	}
	if bestF < 0 {
		return &DecisionTree{Feature: -1, Label: label}
	}
	th := splits[bestF].threshold
	leftIdx := parlay.Filter(ctx, idx, func(i int32) bool { return rows[i].Features[bestF] <= th })
	rightIdx := parlay.Filter(ctx, idx, func(i int32) bool { return rows[i].Features[bestF] > th })
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &DecisionTree{Feature: -1, Label: label}
	}
	node := &DecisionTree{Feature: bestF, Threshold: th}
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { node.Left = buildDT(ctx, rows, leftIdx, classes, depth-1) },
		func(ctx *lcws.Ctx) { node.Right = buildDT(ctx, rows, rightIdx, classes, depth-1) },
	)
	return node
}

func classifyJob(rows []workload.LabeledRow) *Job {
	const classes = 4
	var tree *DecisionTree
	var preds []int
	return &Job{
		Run: func(ctx *lcws.Ctx) {
			tree = BuildDecisionTree(ctx, rows, classes)
			preds = parlay.Tabulate(ctx, len(rows), func(i int) int {
				return tree.Predict(rows[i].Features)
			})
		},
		Verify: func() error {
			if tree == nil {
				return verifyErr("classify", "no tree built")
			}
			if d := tree.Depth(); d > dtMaxDepth {
				return verifyErr("classify", "tree depth %d exceeds limit %d", d, dtMaxDepth)
			}
			correct := 0
			for i, r := range rows {
				if preds[i] != tree.Predict(r.Features) {
					return verifyErr("classify", "stored prediction %d differs from tree at row %d", preds[i], i)
				}
				if preds[i] < 0 || preds[i] >= classes {
					return verifyErr("classify", "prediction %d out of range", preds[i])
				}
				if preds[i] == r.Label {
					correct++
				}
			}
			acc := float64(correct) / float64(len(rows))
			// The concept has 10% label noise; a depth-8 tree should fit
			// well above chance (25%).
			if acc < 0.6 {
				return verifyErr("classify", "training accuracy %.3f below 0.6", acc)
			}
			return nil
		},
	}
}
