// Command tracecheck validates a Chrome trace_event JSON file produced
// by the flight recorder (lcwsbench -trace, lcws.WriteChromeTrace): the
// document must decode, carry a non-empty traceEvents array whose
// entries all have the required ph/name/pid/tid (and ts, except on
// metadata records) fields, and every B/E duration pair must balance
// per thread. CI's trace-smoke job runs it against a fresh trace; it
// exits 0 on a valid file and 1 with a diagnostic otherwise.
//
// Usage:
//
//	tracecheck out.json
package main

import (
	"fmt"
	"os"

	"lcws/internal/trace"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.ValidateChrome(f); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: %s: valid Chrome trace\n", os.Args[1])
}
