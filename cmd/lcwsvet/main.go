// Command lcwsvet is the repo's concurrency linter: a vet tool bundling
// the owneronly, atomicfield and syncaccount analyzers (see
// internal/analysis). It runs in two modes:
//
//	go vet -vettool=$(command -v lcwsvet) ./...
//
// drives it through cmd/go's unitchecker protocol (one vet.cfg per
// build unit, including test variants), and
//
//	lcwsvet [packages]
//
// runs it standalone over module packages loaded from source (defaults
// to ./...; test files are not loaded in this mode — use go vet for
// full coverage).
package main

import (
	"fmt"
	"os"
	"strings"

	"lcws/internal/analysis"
	"lcws/internal/analysis/atomicfield"
	"lcws/internal/analysis/owneronly"
	"lcws/internal/analysis/syncaccount"
)

var analyzers = []*analysis.Analyzer{
	owneronly.Analyzer,
	atomicfield.Analyzer,
	syncaccount.Analyzer,
}

func main() {
	args := os.Args[1:]

	// cmd/go's vettool handshake: -V=full must print "name version ...",
	// and -flags must print the JSON list of supported flags (none).
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			fmt.Println("lcwsvet version 1")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(analysis.RunUnit(args[0], analyzers, os.Stderr))
	}

	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
		os.Exit(1)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.Run(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: lcwsvet [packages]   (standalone, source mode)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v lcwsvet) ./...\n\nanalyzers:\n")
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
}
