// Command lcwsvet is the repo's concurrency linter: a vet tool bundling
// the owneronly, atomicfield, syncaccount, fieldclass, presync and
// noalloc analyzers (see internal/analysis). It runs in two modes:
//
//	go vet -vettool=$(command -v lcwsvet) ./...
//
// drives it through cmd/go's unitchecker protocol (one vet.cfg per
// build unit, including test variants), and
//
//	lcwsvet [-report file.json] [packages]
//
// runs it standalone over module packages loaded from source (defaults
// to ./...; test files are not loaded in this mode — use go vet for
// full coverage). With -report, the standalone mode also writes the
// concurrency-manifest field-access census (see ANALYSIS.json at the
// repo root) after running the analyzers; CI regenerates the census
// and diffs it so discipline drift shows up in review.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"lcws/internal/analysis"
	"lcws/internal/analysis/atomicfield"
	"lcws/internal/analysis/fieldclass"
	"lcws/internal/analysis/noalloc"
	"lcws/internal/analysis/owneronly"
	"lcws/internal/analysis/presync"
	"lcws/internal/analysis/syncaccount"
)

var analyzers = []*analysis.Analyzer{
	owneronly.Analyzer,
	atomicfield.Analyzer,
	syncaccount.Analyzer,
	fieldclass.Analyzer,
	presync.Analyzer,
	noalloc.Analyzer,
}

func main() {
	args := os.Args[1:]

	// cmd/go's vettool handshake: -V=full must print "name version ...",
	// and -flags must print the JSON list of supported flags (none).
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			fmt.Println("lcwsvet version 1")
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(analysis.RunUnit(args[0], analyzers, os.Stderr))
	}

	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage()
		return
	}

	reportPath := ""
	var patterns []string
	for i := 0; i < len(args); i++ {
		if args[i] == "-report" {
			if i+1 >= len(args) {
				fmt.Fprintf(os.Stderr, "lcwsvet: -report requires a file argument\n")
				os.Exit(1)
			}
			i++
			reportPath = args[i]
			continue
		}
		patterns = append(patterns, args[i])
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
		os.Exit(1)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.Run(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if reportPath != "" {
		if err := writeCensus(reportPath, loader, pkgs); err != nil {
			fmt.Fprintf(os.Stderr, "lcwsvet: %v\n", err)
			os.Exit(1)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// writeCensus emits the concurrency-manifest field-access census as
// deterministic, diff-friendly JSON.
func writeCensus(path string, loader *analysis.Loader, pkgs []*analysis.Package) error {
	census := fieldclass.BuildCensus(loader.Fset, pkgs)
	data, err := json.MarshalIndent(census, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: lcwsvet [-report file.json] [packages]   (standalone, source mode)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(command -v lcwsvet) ./...\n\nanalyzers:\n")
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
}
