// Command pbbsrun executes one benchmark configuration
// ⟨benchmark, input, workers⟩ under a chosen scheduler, verifies the
// result, and prints the wall time and synchronization counters —
// the PBBS-style single-configuration driver.
//
// Usage:
//
//	pbbsrun -bench integerSort -input randomSeq_int -workers 4 -policy Signal
//	pbbsrun -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lcws"
	"lcws/pbbs"
)

// policyUsage enumerates the accepted -policy values from the live
// policy list, so the help text cannot drift from ParsePolicy.
func policyUsage() string {
	names := make([]string, len(lcws.Policies))
	for i, p := range lcws.Policies {
		names[i] = p.String()
	}
	return "scheduler: " + strings.Join(names, ", ") + " (case-insensitive; User = USLCWS)"
}

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (see -list)")
		input   = flag.String("input", "", "input instance name (see -list)")
		workers = flag.Int("workers", 1, "number of workers (processors)")
		policy  = flag.String("policy", "WS", policyUsage())
		scale   = flag.Float64("scale", 1, "input scale factor")
		rounds  = flag.Int("rounds", 3, "timed repetitions (reported: average)")
		seed    = flag.Uint64("seed", 42, "victim-selection seed")
		list    = flag.Bool("list", false, "list all benchmark instances and exit")
	)
	flag.Parse()

	if *list {
		for _, inst := range pbbs.Suite(pbbs.Scale(*scale)) {
			fmt.Printf("%-26s %s\n", inst.Benchmark, inst.Input)
		}
		return
	}
	pol, err := lcws.ParsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbbsrun:", err)
		os.Exit(2)
	}
	inst, err := pbbs.Find(pbbs.Scale(*scale), *bench, *input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbbsrun:", err, "(use -list to enumerate)")
		os.Exit(2)
	}

	fmt.Printf("preparing %s (scale %g)...\n", inst.Name(), *scale)
	job := inst.Prepare()
	s := lcws.New(lcws.WithWorkers(*workers), lcws.WithPolicy(pol), lcws.WithSeed(*seed))

	// Warm-up run (also validates before timing).
	s.Run(job.Run)
	if err := job.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "pbbsrun: verification failed:", err)
		os.Exit(1)
	}
	s.ResetStats()

	var total time.Duration
	for r := 0; r < *rounds; r++ {
		start := time.Now()
		s.Run(job.Run)
		total += time.Since(start)
	}
	if err := job.Verify(); err != nil {
		fmt.Fprintln(os.Stderr, "pbbsrun: verification failed:", err)
		os.Exit(1)
	}
	st := s.Stats()

	fmt.Printf("⟨%s, %s, %d⟩ under %v: avg %.3f ms over %d rounds (verified)\n",
		*bench, *input, *workers, pol, float64(total.Microseconds())/1000/float64(*rounds), *rounds)
	fmt.Printf("  fences=%d cas=%d steals=%d/%d exposures=%d unstolen=%d signals=%d tasks=%d\n",
		st.Fences, st.CAS, st.StealSuccesses, st.StealAttempts,
		st.Exposures, st.ExposedNotStolen, st.SignalsSent, st.TasksExecuted)
}
