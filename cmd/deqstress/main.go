// Command deqstress soaks the schedulers with adversarial fork-join
// workloads (deep skew, fine grain, heavy nesting) across all policies
// and worker counts, and exits non-zero if any scheduling invariant is
// violated. Run it under the race detector when hacking on the deques
// or the scheduler core:
//
//	go run -race ./cmd/deqstress -duration 30s
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"lcws"
	"lcws/internal/counters"
)

func main() {
	var (
		duration = flag.Duration("duration", 0, "how long to soak (takes precedence over -seconds)")
		seconds  = flag.Int("seconds", 10, "how long to soak, in seconds (legacy spelling of -duration)")
		workers  = flag.Int("workers", 0, "fixed worker count (0 = cycle through 1..maxp)")
		maxP     = flag.Int("maxp", 8, "maximum worker count to cycle through when -workers is 0")
		seed     = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	d := *duration
	if d <= 0 {
		d = time.Duration(*seconds) * time.Second
	}
	deadline := time.Now().Add(d)
	round := 0
	for time.Now().Before(deadline) {
		for _, pol := range lcws.Policies {
			p := *workers
			if p <= 0 {
				p = 1 + round%*maxP
			}
			s := lcws.New(lcws.WithWorkers(p), lcws.WithPolicy(pol), lcws.WithSeed(*seed+uint64(round)))
			err := soak(s, round)
			// Workers are resident under the persistent executor; an
			// un-Closed scheduler would leak a parked pool every round.
			s.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "deqstress: policy %v P=%d round %d: %v\n", pol, p, round, err)
				os.Exit(1)
			}
			round++
		}
	}
	fmt.Printf("deqstress: %d rounds clean\n", round)
}

// soak runs one adversarial workload mix and checks its result and the
// scheduler's post-run invariants. A panic (e.g. the scheduler's
// non-empty-deque check, or the fork-join LIFO check) is converted into
// an error so the process exits non-zero instead of dumping a stack
// mid-soak.
func soak(s *lcws.Scheduler, round int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("invariant panic: %v", r)
		}
	}()
	var leafCount atomic.Int64
	var skewSum atomic.Int64
	const n = 3000
	s.Run(func(ctx *lcws.Ctx) {
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) {
				// Deep left spine with tiny right tasks.
				var spine func(ctx *lcws.Ctx, d int)
				spine = func(ctx *lcws.Ctx, d int) {
					if d == 0 {
						return
					}
					lcws.Fork2(ctx,
						func(ctx *lcws.Ctx) { spine(ctx, d-1) },
						func(ctx *lcws.Ctx) { skewSum.Add(1) },
					)
				}
				spine(ctx, 300)
			},
			func(ctx *lcws.Ctx) {
				// Fine-grained nested loops with polls.
				lcws.ParFor(ctx, 0, n, 1, func(ctx *lcws.Ctx, i int) {
					leafCount.Add(1)
					ctx.Poll()
				})
			},
		)
	})
	if leafCount.Load() != n {
		return fmt.Errorf("leaf count %d, want %d", leafCount.Load(), n)
	}
	if skewSum.Load() != 300 {
		return fmt.Errorf("skew sum %d, want 300", skewSum.Load())
	}

	// Counter invariants: every forked task executes exactly once (the
	// root task runs without being pushed, hence the +1), and steals
	// cannot outnumber attempts.
	sn := s.Counters()
	if got, want := sn[counters.TaskExecuted], sn[counters.TaskPushed]+1; got != want {
		return fmt.Errorf("tasks executed %d, want pushed+1 = %d (lost or duplicated task)", got, want)
	}
	if sn[counters.StealSuccess] > sn[counters.StealAttempt] {
		return fmt.Errorf("steal successes %d exceed attempts %d", sn[counters.StealSuccess], sn[counters.StealAttempt])
	}
	_ = round
	return nil
}
