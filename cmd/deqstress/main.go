// Command deqstress soaks the schedulers with adversarial fork-join
// workloads (deep skew, fine grain, heavy nesting) across all policies
// and worker counts. Run it under the race detector when hacking on the
// deques or the scheduler core:
//
//	go run -race ./cmd/deqstress -seconds 30
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"lcws"
)

func main() {
	var (
		seconds = flag.Int("seconds", 10, "how long to soak")
		maxP    = flag.Int("maxp", 8, "maximum worker count to cycle through")
		seed    = flag.Uint64("seed", 1, "base seed")
	)
	flag.Parse()

	deadline := time.Now().Add(time.Duration(*seconds) * time.Second)
	round := 0
	for time.Now().Before(deadline) {
		for _, pol := range lcws.Policies {
			p := 1 + round%*maxP
			s := lcws.New(lcws.WithWorkers(p), lcws.WithPolicy(pol), lcws.WithSeed(*seed+uint64(round)))
			if err := soak(s, round); err != nil {
				fmt.Fprintf(os.Stderr, "deqstress: policy %v P=%d round %d: %v\n", pol, p, round, err)
				os.Exit(1)
			}
			round++
		}
	}
	fmt.Printf("deqstress: %d rounds clean\n", round)
}

// soak runs one adversarial workload mix and checks its result.
func soak(s *lcws.Scheduler, round int) error {
	var leafCount atomic.Int64
	var skewSum atomic.Int64
	const n = 3000
	s.Run(func(ctx *lcws.Ctx) {
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) {
				// Deep left spine with tiny right tasks.
				var spine func(ctx *lcws.Ctx, d int)
				spine = func(ctx *lcws.Ctx, d int) {
					if d == 0 {
						return
					}
					lcws.Fork2(ctx,
						func(ctx *lcws.Ctx) { spine(ctx, d-1) },
						func(ctx *lcws.Ctx) { skewSum.Add(1) },
					)
				}
				spine(ctx, 300)
			},
			func(ctx *lcws.Ctx) {
				// Fine-grained nested loops with polls.
				lcws.ParFor(ctx, 0, n, 1, func(ctx *lcws.Ctx, i int) {
					leafCount.Add(1)
					ctx.Poll()
				})
			},
		)
	})
	if leafCount.Load() != n {
		return fmt.Errorf("leaf count %d, want %d", leafCount.Load(), n)
	}
	if skewSum.Load() != 300 {
		return fmt.Errorf("skew sum %d, want 300", skewSum.Load())
	}
	_ = round
	return nil
}
