// Command lcwsbench regenerates the paper's evaluation: Table 1, Figures
// 3–8 and the §5 statistics. Counter figures (3, 8) run the real
// schedulers over the pbbs suite; speedup figures (4–7) and statistics
// sweep the simulator over the three Table 1 machine profiles.
//
// It also runs the microbenchmarks of internal/perf and emits them as
// machine-readable documents the allocation/benchmark regression gates
// compare against: the fork-overhead benchmarks as BENCH_fork.json, the
// steal-latency ping-pong as BENCH_steal.json, the executor lifecycle
// (resident pool vs spawn-per-run) as BENCH_exec.json, the
// steady-state memory measurements as BENCH_mem.json, and the
// multi-tenant QoS measurements (weighted-fair pickup shares and
// starvation latency under a saturating flood) as BENCH_qos.json.
//
// The -jobs mode exercises the persistent executor as a job server:
// -submitters goroutines submit -jobs fork-join jobs over one resident
// pool and the per-job statistics are emitted as JSON.
//
// Usage:
//
//	lcwsbench -all                # everything, default sizes
//	lcwsbench -fig3 -scale 0.1    # Figure 3 from a larger counter sweep
//	lcwsbench -fig5 -csv          # Figure 5 data as CSV
//	lcwsbench -forkbench -forkjson BENCH_fork.json
//	lcwsbench -stealbench -stealjson BENCH_steal.json
//	lcwsbench -execbench -execjson BENCH_exec.json
//	lcwsbench -membench -memjson BENCH_mem.json
//	lcwsbench -qosbench -qosjson BENCH_qos.json
//	lcwsbench -elasticbench -elasticjson BENCH_elastic.json
//	lcwsbench -jobs 64 -submitters 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lcws"
	"lcws/fig"
	"lcws/internal/perf"
	"lcws/internal/trace"
	"lcws/pbbs"
	"lcws/sim"
)

func main() {
	var (
		all    = flag.Bool("all", false, "regenerate every table and figure")
		table1 = flag.Bool("table1", false, "print Table 1 (machine profiles)")
		fig3   = flag.Bool("fig3", false, "Figure 3: USLCWS vs WS counter profile (real runs)")
		fig4   = flag.Bool("fig4", false, "Figure 4: USLCWS speedup box plots (simulated)")
		fig5   = flag.Bool("fig5", false, "Figure 5: average speedups of all variants (simulated)")
		fig6   = flag.Bool("fig6", false, "Figure 6: %% of configurations with speedup > 1 (simulated)")
		fig7   = flag.Bool("fig7", false, "Figure 7: signal-based speedup box plots (simulated)")
		fig8   = flag.Bool("fig8", false, "Figure 8: signal-based counter profile (real runs)")
		stats  = flag.Bool("stats", false, "§5.1/§5.2/§5.4 statistics (simulated)")
		lace   = flag.Bool("lace", false, "extension figure: Lace vs USLCWS vs Signal (simulated)")
		multi  = flag.Bool("multiprog", false, "extension figure: slowdown under core revocation (simulated)")
		scale  = flag.Float64("scale", 0.05, "pbbs input scale for the counter sweeps")
		procs  = flag.String("workers", "2,4,8,16,32", "worker counts for the counter sweeps")
		seed   = flag.Uint64("seed", 42, "seed for scheduling and simulation")
		csv    = flag.Bool("csv", false, "emit figure data as CSV instead of text")
		chart  = flag.Bool("chart", false, "render figures as ASCII charts instead of tables")

		forkbench  = flag.Bool("forkbench", false, "run the fork-overhead microbenchmarks (internal/perf)")
		forkjson   = flag.String("forkjson", "", "write the fork benchmark report as JSON to this file (default stdout)")
		forkrounds = flag.Int("forkrounds", perf.DefaultRounds, "timed Run calls per fork-benchmark repetition")
		forkreps   = flag.Int("forkreps", perf.DefaultReps, "fork-benchmark repetitions (minimum is reported)")

		stealbench  = flag.Bool("stealbench", false, "run the steal-latency ping-pong benchmarks (internal/perf)")
		stealjson   = flag.String("stealjson", "", "write the steal benchmark report as JSON to this file (default stdout)")
		stealbursts = flag.Int("stealbursts", perf.DefaultStealBursts, "timed bursts per steal-benchmark repetition")
		stealreps   = flag.Int("stealreps", perf.DefaultStealReps, "steal-benchmark repetitions (minimum is reported)")

		execbench  = flag.Bool("execbench", false, "run the executor-lifecycle benchmarks: resident pool vs spawn-per-run (internal/perf)")
		execjson   = flag.String("execjson", "", "write the executor benchmark report as JSON to this file (default stdout)")
		execrounds = flag.Int("execrounds", perf.ExecDefaultRounds, "timed Run calls per executor-benchmark repetition")
		execreps   = flag.Int("execreps", perf.DefaultReps, "executor-benchmark repetitions (minimum is reported)")

		membench = flag.Bool("membench", false, "run the memory benchmarks: steady-state HeapInuse across mixed-width jobs plus deque growth/spill engagement (internal/perf)")
		memjson  = flag.String("memjson", "", "write the memory benchmark report as JSON to this file (default stdout)")
		memwarm  = flag.Int("memwarm", perf.MemJobsWarm, "jobs before the warm HeapInuse reference")
		memtotal = flag.Int("memtotal", perf.MemJobsTotal, "total jobs in the steady-state stream")

		qosbench  = flag.Bool("qosbench", false, "run the multi-tenant QoS benchmarks: weighted-fair pickup shares plus High-under-Low-flood starvation latency (internal/perf)")
		qosjson   = flag.String("qosjson", "", "write the QoS benchmark report as JSON to this file (default stdout)")
		qoswindow = flag.Duration("qoswindow", 0, "QoS measurement window per scenario (0 = default 1s)")

		elasticbench  = flag.Bool("elasticbench", false, "run the elastic-pool lifecycle benchmark: demand growth, retire-on-idle, idle CPU cost, and regrow throughput (internal/perf)")
		elasticjson   = flag.String("elasticjson", "", "write the elastic benchmark report as JSON to this file (default stdout)")
		elasticwindow = flag.Duration("elasticwindow", 0, "elastic retire-settle and idle quiet window (0 = default 2s)")

		jobs       = flag.Int("jobs", 0, "submit this many concurrent fork-join jobs over one resident pool and emit per-job stats as JSON")
		submitters = flag.Int("submitters", 4, "submitting goroutines for the -jobs mode")
		jobpolicy  = flag.String("jobpolicy", lcws.SignalLCWS.String(), "scheduling policy for the -jobs pool")
		jobworkers = flag.Int("jobworkers", 4, "workers for the -jobs pool")
		jobsjson   = flag.String("jobsjson", "", "write the -jobs report as JSON to this file (default stdout)")

		traceOut     = flag.String("trace", "", "run a traced fork-join workload and write its Chrome trace JSON (Perfetto-loadable) to this file")
		tracePolicy  = flag.String("tracepolicy", lcws.SignalLCWS.String(), "scheduling policy for the -trace run")
		traceWorkers = flag.Int("traceworkers", 4, "workers for the -trace run")
		traceBuf     = flag.Int("tracebuf", 0, "per-worker trace ring capacity in events (0 = default)")
	)
	flag.Parse()

	if !(*all || *table1 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *stats || *lace || *multi || *forkbench || *stealbench || *execbench || *membench || *qosbench || *elasticbench || *jobs > 0 || *traceOut != "") {
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := runTrace(*traceOut, *tracePolicy, *traceWorkers, *traceBuf, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}

	if *forkbench {
		if err := runForkBench(*forkrounds, *forkreps, *forkjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *stealbench {
		if err := runStealBench(*stealbursts, *stealreps, *stealjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *execbench {
		if err := runExecBench(*execrounds, *execreps, *execjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *membench {
		if err := runMemBench(*memwarm, *memtotal, *memjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *qosbench {
		if err := runQoSBench(*qoswindow, *qosjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *elasticbench {
		if err := runElasticBench(*elasticwindow, *elasticjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *jobs > 0 {
		if err := runJobs(*jobs, *submitters, *jobpolicy, *jobworkers, *seed, *jobsjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if (*forkbench || *stealbench || *execbench || *membench || *qosbench || *elasticbench || *jobs > 0 || *traceOut != "") &&
		!(*all || *table1 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *stats || *lace || *multi) {
		return
	}

	// On hosts with fewer CPUs than the requested worker counts, raise
	// GOMAXPROCS so worker goroutines timeshare OS threads; otherwise a
	// busy worker can monopolize the only P and steal counters stay
	// artificially near zero.
	if workers, err := parseWorkers(*procs); err == nil {
		maxW := 0
		for _, p := range workers {
			if p > maxW {
				maxW = p
			}
		}
		if maxW > runtime.GOMAXPROCS(0) {
			runtime.GOMAXPROCS(maxW)
		}
	}

	out := os.Stdout
	emit := func(f *fig.Figure) {
		switch {
		case *csv:
			f.WriteCSV(out)
		case *chart:
			f.RenderChart(out)
		default:
			f.Render(out)
		}
	}

	if *all || *table1 {
		fig.Table1(out)
		fmt.Fprintln(out)
	}

	needCounters := *all || *fig3 || *fig8
	if needCounters {
		workers, err := parseWorkers(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(2)
		}
		fmt.Fprintf(out, "counter sweep: pbbs scale %g, workers %v (real executions; verified)\n\n", *scale, workers)
		cs := fig.RunCounterSweep(pbbs.Scale(*scale), workers,
			[]lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS}, *seed)
		if *all || *fig3 {
			emit(fig.Figure3(cs))
		}
		if *all || *fig8 {
			emit(fig.Figure8(cs))
		}
	}

	needSweeps := *all || *fig4 || *fig5 || *fig6 || *fig7 || *stats || *lace
	if needSweeps || *multi {
		var sweeps []*fig.SimSweep
		if needSweeps {
			for _, m := range sim.Machines {
				sweeps = append(sweeps, fig.RunSimSweep(m, nil, *seed))
			}
		}
		if *all || *fig4 {
			emit(fig.Figure4(sweeps))
		}
		if *all || *fig5 {
			emit(fig.Figure5(sweeps))
		}
		if *all || *fig6 {
			emit(fig.Figure6(sweeps))
		}
		if *all || *fig7 {
			emit(fig.Figure7(sweeps))
		}
		if *all || *lace {
			emit(fig.FigureLace(sweeps))
		}
		if *all || *multi {
			emit(fig.FigureMultiprog(sim.Machines, *seed))
		}
		if *all || *stats {
			fig.Stats51(out, sweeps)
			fig.Stats52(out, sweeps)
			fig.Stats54(out, sweeps)
		}
	}
}

// runForkBench measures the fork-overhead benchmarks and writes the
// BENCH_fork.json document to path (stdout when empty). A short text
// summary with the speedup against the recorded baseline goes to stderr
// so the JSON stream stays clean.
func runForkBench(rounds, reps int, path string) error {
	rep := perf.NewReport(rounds, reps)
	for _, r := range rep.Benches {
		line := fmt.Sprintf("%-18s %8.1f ns/fork  allocs/fork=%.3f fences/fork=%.3f",
			r.Key(), r.NsPerFork, r.AllocsPerFork, r.FencesPerFork)
		if base, ok := rep.BaselineNsPerFork[r.Key()]; ok && r.NsPerFork > 0 {
			line += fmt.Sprintf("  (%.2fx vs baseline %.1f)", base/r.NsPerFork, base)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runStealBench measures the steal-latency ping-pong benchmarks and
// writes the BENCH_steal.json document to path (stdout when empty),
// with a short text summary on stderr. The measurement needs the idle
// worker runnable while the root spins, so GOMAXPROCS is raised to at
// least two first; on single-CPU hosts the latencies then reflect
// scheduling rather than wake latency, and GOMAXPROCS in the report
// records that caveat.
func runStealBench(bursts, reps int, path string) error {
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	rep := perf.NewStealReport(bursts, reps)
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "%-22s %10.1f ns first-steal  allocs/burst=%.3f steals=%d batch_tasks=%d wakeups=%d parks=%d\n",
			r.Key(), r.NsFirstSteal, r.AllocsPerBurst, r.Steals, r.StealBatchTasks, r.WakeupsSent, r.ParkCount)
	}
	fmt.Fprintf(os.Stderr, "WS first-steal speedup (sleep-ladder / batch-park): %.2fx\n", rep.SpeedupFirstSteal)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runExecBench measures the executor lifecycle (resident pool vs
// spawn-per-run emulation) for every policy and writes the
// BENCH_exec.json document to path (stdout when empty), with a short
// text summary on stderr.
func runExecBench(rounds, reps int, path string) error {
	// Deliberately no GOMAXPROCS bump: internal/perf measures at the
	// ambient GOMAXPROCS (recorded in the report), and the regression
	// gate in execbench_test.go does the same. Oversubscribing a small
	// host would measure timesharing noise, not the lifecycle.
	rep := perf.NewExecReport(rounds, reps)
	for i, r := range rep.Resident {
		sp := rep.SpawnPerRun[i]
		speedup := 0.0
		if r.NormPerRun > 0 {
			speedup = sp.NormPerRun / r.NormPerRun
		}
		fmt.Fprintf(os.Stderr, "exec/%-8s resident %9.0f ns/run (allocs=%.1f) vs spawn-per-run %9.0f ns/run: %.2fx\n",
			r.Policy, r.NsPerRun, r.AllocsPerRun, sp.NsPerRun, speedup)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runMemBench measures steady-state memory across the mixed-width job
// stream and the deep-fork growth/spill engagement runs, and writes the
// BENCH_mem.json document to path (stdout when empty), with a short
// text summary and the flatness verdicts on stderr.
func runMemBench(jobsWarm, jobsTotal int, path string) error {
	rep := perf.NewMemReport(jobsWarm, jobsTotal)
	for _, r := range rep.Steady {
		verdict := "flat"
		if !perf.MemFlat(r.HeapInuseWarm, r.HeapInuseFinal) {
			verdict = "NOT FLAT"
		}
		fmt.Fprintf(os.Stderr, "mem/%-8s steady HeapInuse %8d -> %8d (%.3fx, %s)  returns=%d refills=%d\n",
			r.Policy, r.HeapInuseWarm, r.HeapInuseFinal, r.GrowthRatio, verdict,
			r.FreelistReturns, r.FreelistRefills)
	}
	for _, r := range rep.DeepFork {
		fmt.Fprintf(os.Stderr, "mem/%-8s deepfork depth=%d cap=%d/%d: grows=%d spilled=%d tasks=%d\n",
			r.Policy, r.Depth, r.DequeCapacity, r.MaxDequeCapacity,
			r.DequeGrows, r.TasksSpilled, r.TasksExecuted)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runQoSBench measures the multi-tenant QoS scenarios (weighted-fair
// pickup shares, High-trickle-under-Low-flood starvation, and the
// all-Normal control) and writes the BENCH_qos.json document to path
// (stdout when empty), with a short text summary and the gate verdicts
// on stderr.
func runQoSBench(window time.Duration, path string) error {
	rep := perf.NewQoSReport(window)
	for _, r := range rep.Fairness {
		verdict := "fair"
		if !perf.QoSFair(r) {
			verdict = "NOT FAIR"
		}
		fmt.Fprintf(os.Stderr, "qos/%-8s fairness backlog=%d prefix=%d max_skew=%.3f (%s) yields=%d\n",
			r.Policy, r.Backlog, r.Prefix, r.MaxSkew, verdict, r.JobYields)
		for _, cs := range r.Classes {
			fmt.Fprintf(os.Stderr, "  %-6s w=%d completed=%4d share=%.3f ideal=%.3f wait mean=%s p99=%s\n",
				cs.Class, cs.Weight, cs.Completed, cs.Share, cs.IdealShare,
				time.Duration(cs.WaitMeanNs).Round(time.Microsecond),
				time.Duration(cs.WaitP99Ns).Round(time.Microsecond))
		}
	}
	for i, r := range rep.Starvation {
		verdict := "bounded"
		if r.TrickleWaitP99Ns > r.BoundNs {
			verdict = "NOT BOUNDED"
		}
		fmt.Fprintf(os.Stderr, "qos/%-8s starvation flood=%d trickle=%d high p99=%s bound=%s (%s)\n",
			r.Policy, r.FloodCompleted, r.TrickleCompleted,
			time.Duration(r.TrickleWaitP99Ns).Round(time.Microsecond),
			time.Duration(r.BoundNs).Round(time.Microsecond), verdict)
		if i < len(rep.Control) {
			c := rep.Control[i]
			fmt.Fprintf(os.Stderr, "qos/%-8s control    flood=%d trickle=%d normal p99=%s (FIFO-shaped baseline)\n",
				c.Policy, c.FloodCompleted, c.TrickleCompleted,
				time.Duration(c.TrickleWaitP99Ns).Round(time.Microsecond))
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runElasticBench walks each policy's pool through the elastic
// lifecycle (demand growth, retire-on-idle, idle CPU cost, regrow) and
// writes the BENCH_elastic.json document to path (stdout when empty),
// with a short text summary and the gate verdicts on stderr.
func runElasticBench(window time.Duration, path string) error {
	rep := perf.NewElasticReport(window)
	for _, r := range rep.Results {
		verdict := func(ok bool, name string) string {
			if ok {
				return name
			}
			return "NOT " + name
		}
		fmt.Fprintf(os.Stderr, "elastic/%-8s %d->%d peak=%d grows=%d retired_idle=%d settle=%s (%s, %s)\n",
			r.Policy, r.Resident, r.MaxWorkers, r.PeakWorkers, r.BurstPoolGrows,
			r.WorkersRetiredIdle, time.Duration(r.RetireSettleNs).Round(time.Millisecond),
			verdict(perf.ElasticGrew(r), "grew"), verdict(perf.ElasticRetired(r), "retired"))
		idleCPU := "unavailable"
		if r.IdleCPUNs >= 0 {
			idleCPU = fmt.Sprintf("%.4f of a core", r.IdleCPUFrac)
		}
		fmt.Fprintf(os.Stderr, "elastic/%-8s idle cpu=%s over %s (%s) regrow=%.2fx baseline (%s)\n",
			r.Policy, idleCPU, time.Duration(r.IdleWindowNs),
			verdict(perf.ElasticIdleQuiet(r), "quiet"),
			r.RegrowRatio, verdict(perf.ElasticRegrowRestored(r), "restored"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// jobsReport is the JSON document of the -jobs mode: per-job statistics
// of a batch of concurrent submissions over one resident pool.
type jobsReport struct {
	Schema     string      `json:"schema"`
	Policy     string      `json:"policy"`
	Workers    int         `json:"workers"`
	Submitters int         `json:"submitters"`
	Jobs       []jobRecord `json:"jobs"`
	Totals     jobsTotals  `json:"totals"`
}

type jobRecord struct {
	// Submitter is the submitting goroutine's index; Seq its 0-based
	// submission sequence within that goroutine.
	Submitter  int    `json:"submitter"`
	Seq        int    `json:"seq"`
	Tasks      uint64 `json:"tasks"`
	Discarded  uint64 `json:"discarded,omitempty"`
	DurationNs int64  `json:"duration_ns"`
	Err        string `json:"err,omitempty"`
}

type jobsTotals struct {
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	TasksExecuted uint64 `json:"tasks_executed"`
	StealSuccess  uint64 `json:"steal_successes"`
}

// runJobs exercises the resident executor as a job server: submitters
// goroutines submit jobs fork-join computations (an irregular fib tree
// each) over one pool, wait for each, and the per-job statistics are
// written as JSON to path (stdout when empty).
func runJobs(jobs, submitters int, policy string, workers int, seed uint64, path string) error {
	pol, err := lcws.ParsePolicy(policy)
	if err != nil {
		return err
	}
	if submitters < 1 {
		return fmt.Errorf("-submitters must be at least 1, got %d", submitters)
	}
	if workers > runtime.GOMAXPROCS(0) {
		runtime.GOMAXPROCS(workers)
	}
	s := lcws.New(lcws.WithWorkers(workers), lcws.WithPolicy(pol), lcws.WithSeed(seed))
	defer s.Close()

	rep := jobsReport{
		Schema:     "lcws-jobs/v1",
		Policy:     pol.String(),
		Workers:    workers,
		Submitters: submitters,
		Jobs:       make([]jobRecord, jobs),
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				idx := int(next.Add(1)) - 1
				if idx >= jobs {
					return
				}
				depth := 14 + idx%4 // vary job sizes
				j := s.Submit(func(ctx *lcws.Ctx) { forkTree(ctx, depth) })
				jerr := j.Wait()
				st := j.Stats()
				rec := jobRecord{
					Submitter:  g,
					Seq:        seq,
					Tasks:      st.Tasks,
					Discarded:  st.Discarded,
					DurationNs: st.Duration.Nanoseconds(),
				}
				if jerr != nil {
					rec.Err = jerr.Error()
				}
				rep.Jobs[idx] = rec
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	rep.Totals = jobsTotals{
		JobsSubmitted: st.JobsSubmitted,
		JobsCompleted: st.JobsCompleted,
		JobsFailed:    st.JobsFailed,
		TasksExecuted: st.TasksExecuted,
		StealSuccess:  st.StealSuccesses,
	}
	fmt.Fprintf(os.Stderr, "jobs: %d jobs from %d submitters on %s ×%d: %d completed, %d failed, %d tasks\n",
		jobs, submitters, pol, workers, rep.Totals.JobsCompleted, rep.Totals.JobsFailed, rep.Totals.TasksExecuted)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// forkTree is the -jobs workload: an irregular fib-style fork tree.
func forkTree(ctx *lcws.Ctx, depth int) {
	if depth <= 1 {
		return
	}
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { forkTree(ctx, depth-1) },
		func(ctx *lcws.Ctx) { forkTree(ctx, depth-2) },
	)
}

// runTrace executes a traced fork-join workload and writes the flight
// recorder's snapshot as Chrome trace_event JSON to path (loadable in
// Perfetto / chrome://tracing). The workload is an irregular fib-style
// fork tree with polling leaf loops, run oversubscribed with per-task
// yielding, so every event class the recorder knows — forks, steals,
// exposure requests, signals, parks — actually appears in the trace. A
// latency-histogram summary goes to stderr so the JSON stream stays
// clean.
func runTrace(path, policy string, workers, bufPerWorker int, seed uint64) error {
	pol, err := lcws.ParsePolicy(policy)
	if err != nil {
		return err
	}
	if workers < 1 {
		return fmt.Errorf("-traceworkers must be at least 1, got %d", workers)
	}
	s := lcws.New(
		lcws.WithWorkers(workers),
		lcws.WithPolicy(pol),
		lcws.WithSeed(seed),
		lcws.WithYieldEvery(1),
		lcws.WithPollEvery(4),
		lcws.WithTrace(lcws.TraceConfig{BufPerWorker: bufPerWorker}),
	)
	var tree func(ctx *lcws.Ctx, depth int)
	tree = func(ctx *lcws.Ctx, depth int) {
		if depth <= 0 {
			acc := 0
			for i := 0; i < 400; i++ {
				acc += i
				ctx.Poll()
			}
			_ = acc
			return
		}
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) { tree(ctx, depth-1) },
			func(ctx *lcws.Ctx) { tree(ctx, depth-2) },
		)
	}
	s.Run(func(ctx *lcws.Ctx) { tree(ctx, 16) })

	tr := s.TraceSnapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	st := s.Stats()
	fmt.Fprintf(os.Stderr, "traced %s ×%d: %d events (%d dropped) -> %s\n",
		pol, workers, len(tr.Events), tr.Dropped, path)
	fmt.Fprintf(os.Stderr, "  tasks=%d steals=%d/%d signals=%d/%d exposures=%d\n",
		st.TasksExecuted, st.StealSuccesses, st.StealAttempts,
		st.SignalsHandled, st.SignalsSent, st.Exposures)
	for l := 0; l < trace.NumLatencies; l++ {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", trace.LatencyName(l), tr.Hist(l))
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts in %q", s)
	}
	return out, nil
}
