// Command lcwsbench regenerates the paper's evaluation: Table 1, Figures
// 3–8 and the §5 statistics. Counter figures (3, 8) run the real
// schedulers over the pbbs suite; speedup figures (4–7) and statistics
// sweep the simulator over the three Table 1 machine profiles.
//
// It also runs the microbenchmarks of internal/perf and emits them as
// machine-readable documents the allocation/benchmark regression gates
// compare against: the fork-overhead benchmarks as BENCH_fork.json and
// the steal-latency ping-pong as BENCH_steal.json.
//
// Usage:
//
//	lcwsbench -all                # everything, default sizes
//	lcwsbench -fig3 -scale 0.1    # Figure 3 from a larger counter sweep
//	lcwsbench -fig5 -csv          # Figure 5 data as CSV
//	lcwsbench -forkbench -forkjson BENCH_fork.json
//	lcwsbench -stealbench -stealjson BENCH_steal.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"lcws"
	"lcws/fig"
	"lcws/internal/perf"
	"lcws/internal/trace"
	"lcws/pbbs"
	"lcws/sim"
)

func main() {
	var (
		all    = flag.Bool("all", false, "regenerate every table and figure")
		table1 = flag.Bool("table1", false, "print Table 1 (machine profiles)")
		fig3   = flag.Bool("fig3", false, "Figure 3: USLCWS vs WS counter profile (real runs)")
		fig4   = flag.Bool("fig4", false, "Figure 4: USLCWS speedup box plots (simulated)")
		fig5   = flag.Bool("fig5", false, "Figure 5: average speedups of all variants (simulated)")
		fig6   = flag.Bool("fig6", false, "Figure 6: %% of configurations with speedup > 1 (simulated)")
		fig7   = flag.Bool("fig7", false, "Figure 7: signal-based speedup box plots (simulated)")
		fig8   = flag.Bool("fig8", false, "Figure 8: signal-based counter profile (real runs)")
		stats  = flag.Bool("stats", false, "§5.1/§5.2/§5.4 statistics (simulated)")
		lace   = flag.Bool("lace", false, "extension figure: Lace vs USLCWS vs Signal (simulated)")
		multi  = flag.Bool("multiprog", false, "extension figure: slowdown under core revocation (simulated)")
		scale  = flag.Float64("scale", 0.05, "pbbs input scale for the counter sweeps")
		procs  = flag.String("workers", "2,4,8,16,32", "worker counts for the counter sweeps")
		seed   = flag.Uint64("seed", 42, "seed for scheduling and simulation")
		csv    = flag.Bool("csv", false, "emit figure data as CSV instead of text")
		chart  = flag.Bool("chart", false, "render figures as ASCII charts instead of tables")

		forkbench  = flag.Bool("forkbench", false, "run the fork-overhead microbenchmarks (internal/perf)")
		forkjson   = flag.String("forkjson", "", "write the fork benchmark report as JSON to this file (default stdout)")
		forkrounds = flag.Int("forkrounds", perf.DefaultRounds, "timed Run calls per fork-benchmark repetition")
		forkreps   = flag.Int("forkreps", perf.DefaultReps, "fork-benchmark repetitions (minimum is reported)")

		stealbench  = flag.Bool("stealbench", false, "run the steal-latency ping-pong benchmarks (internal/perf)")
		stealjson   = flag.String("stealjson", "", "write the steal benchmark report as JSON to this file (default stdout)")
		stealbursts = flag.Int("stealbursts", perf.DefaultStealBursts, "timed bursts per steal-benchmark repetition")
		stealreps   = flag.Int("stealreps", perf.DefaultStealReps, "steal-benchmark repetitions (minimum is reported)")

		traceOut     = flag.String("trace", "", "run a traced fork-join workload and write its Chrome trace JSON (Perfetto-loadable) to this file")
		tracePolicy  = flag.String("tracepolicy", lcws.SignalLCWS.String(), "scheduling policy for the -trace run")
		traceWorkers = flag.Int("traceworkers", 4, "workers for the -trace run")
		traceBuf     = flag.Int("tracebuf", 0, "per-worker trace ring capacity in events (0 = default)")
	)
	flag.Parse()

	if !(*all || *table1 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *stats || *lace || *multi || *forkbench || *stealbench || *traceOut != "") {
		flag.Usage()
		os.Exit(2)
	}

	if *traceOut != "" {
		if err := runTrace(*traceOut, *tracePolicy, *traceWorkers, *traceBuf, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}

	if *forkbench {
		if err := runForkBench(*forkrounds, *forkreps, *forkjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if *stealbench {
		if err := runStealBench(*stealbursts, *stealreps, *stealjson); err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(1)
		}
	}
	if (*forkbench || *stealbench || *traceOut != "") &&
		!(*all || *table1 || *fig3 || *fig4 || *fig5 || *fig6 || *fig7 || *fig8 || *stats || *lace || *multi) {
		return
	}

	// On hosts with fewer CPUs than the requested worker counts, raise
	// GOMAXPROCS so worker goroutines timeshare OS threads; otherwise a
	// busy worker can monopolize the only P and steal counters stay
	// artificially near zero.
	if workers, err := parseWorkers(*procs); err == nil {
		maxW := 0
		for _, p := range workers {
			if p > maxW {
				maxW = p
			}
		}
		if maxW > runtime.GOMAXPROCS(0) {
			runtime.GOMAXPROCS(maxW)
		}
	}

	out := os.Stdout
	emit := func(f *fig.Figure) {
		switch {
		case *csv:
			f.WriteCSV(out)
		case *chart:
			f.RenderChart(out)
		default:
			f.Render(out)
		}
	}

	if *all || *table1 {
		fig.Table1(out)
		fmt.Fprintln(out)
	}

	needCounters := *all || *fig3 || *fig8
	if needCounters {
		workers, err := parseWorkers(*procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lcwsbench:", err)
			os.Exit(2)
		}
		fmt.Fprintf(out, "counter sweep: pbbs scale %g, workers %v (real executions; verified)\n\n", *scale, workers)
		cs := fig.RunCounterSweep(pbbs.Scale(*scale), workers,
			[]lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS}, *seed)
		if *all || *fig3 {
			emit(fig.Figure3(cs))
		}
		if *all || *fig8 {
			emit(fig.Figure8(cs))
		}
	}

	needSweeps := *all || *fig4 || *fig5 || *fig6 || *fig7 || *stats || *lace
	if needSweeps || *multi {
		var sweeps []*fig.SimSweep
		if needSweeps {
			for _, m := range sim.Machines {
				sweeps = append(sweeps, fig.RunSimSweep(m, nil, *seed))
			}
		}
		if *all || *fig4 {
			emit(fig.Figure4(sweeps))
		}
		if *all || *fig5 {
			emit(fig.Figure5(sweeps))
		}
		if *all || *fig6 {
			emit(fig.Figure6(sweeps))
		}
		if *all || *fig7 {
			emit(fig.Figure7(sweeps))
		}
		if *all || *lace {
			emit(fig.FigureLace(sweeps))
		}
		if *all || *multi {
			emit(fig.FigureMultiprog(sim.Machines, *seed))
		}
		if *all || *stats {
			fig.Stats51(out, sweeps)
			fig.Stats52(out, sweeps)
			fig.Stats54(out, sweeps)
		}
	}
}

// runForkBench measures the fork-overhead benchmarks and writes the
// BENCH_fork.json document to path (stdout when empty). A short text
// summary with the speedup against the recorded baseline goes to stderr
// so the JSON stream stays clean.
func runForkBench(rounds, reps int, path string) error {
	rep := perf.NewReport(rounds, reps)
	for _, r := range rep.Benches {
		line := fmt.Sprintf("%-18s %8.1f ns/fork  allocs/fork=%.3f fences/fork=%.3f",
			r.Key(), r.NsPerFork, r.AllocsPerFork, r.FencesPerFork)
		if base, ok := rep.BaselineNsPerFork[r.Key()]; ok && r.NsPerFork > 0 {
			line += fmt.Sprintf("  (%.2fx vs baseline %.1f)", base/r.NsPerFork, base)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runStealBench measures the steal-latency ping-pong benchmarks and
// writes the BENCH_steal.json document to path (stdout when empty),
// with a short text summary on stderr. The measurement needs the idle
// worker runnable while the root spins, so GOMAXPROCS is raised to at
// least two first; on single-CPU hosts the latencies then reflect
// scheduling rather than wake latency, and GOMAXPROCS in the report
// records that caveat.
func runStealBench(bursts, reps int, path string) error {
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	rep := perf.NewStealReport(bursts, reps)
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "%-22s %10.1f ns first-steal  allocs/burst=%.3f steals=%d batch_tasks=%d wakeups=%d parks=%d\n",
			r.Key(), r.NsFirstSteal, r.AllocsPerBurst, r.Steals, r.StealBatchTasks, r.WakeupsSent, r.ParkCount)
	}
	fmt.Fprintf(os.Stderr, "WS first-steal speedup (sleep-ladder / batch-park): %.2fx\n", rep.SpeedupFirstSteal)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runTrace executes a traced fork-join workload and writes the flight
// recorder's snapshot as Chrome trace_event JSON to path (loadable in
// Perfetto / chrome://tracing). The workload is an irregular fib-style
// fork tree with polling leaf loops, run oversubscribed with per-task
// yielding, so every event class the recorder knows — forks, steals,
// exposure requests, signals, parks — actually appears in the trace. A
// latency-histogram summary goes to stderr so the JSON stream stays
// clean.
func runTrace(path, policy string, workers, bufPerWorker int, seed uint64) error {
	pol, err := lcws.ParsePolicy(policy)
	if err != nil {
		return err
	}
	if workers < 1 {
		return fmt.Errorf("-traceworkers must be at least 1, got %d", workers)
	}
	s := lcws.New(
		lcws.WithWorkers(workers),
		lcws.WithPolicy(pol),
		lcws.WithSeed(seed),
		lcws.WithYieldEvery(1),
		lcws.WithPollEvery(4),
		lcws.WithTrace(lcws.TraceConfig{BufPerWorker: bufPerWorker}),
	)
	var tree func(ctx *lcws.Ctx, depth int)
	tree = func(ctx *lcws.Ctx, depth int) {
		if depth <= 0 {
			acc := 0
			for i := 0; i < 400; i++ {
				acc += i
				ctx.Poll()
			}
			_ = acc
			return
		}
		lcws.Fork2(ctx,
			func(ctx *lcws.Ctx) { tree(ctx, depth-1) },
			func(ctx *lcws.Ctx) { tree(ctx, depth-2) },
		)
	}
	s.Run(func(ctx *lcws.Ctx) { tree(ctx, 16) })

	tr := s.TraceSnapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	st := s.Stats()
	fmt.Fprintf(os.Stderr, "traced %s ×%d: %d events (%d dropped) -> %s\n",
		pol, workers, len(tr.Events), tr.Dropped, path)
	fmt.Fprintf(os.Stderr, "  tasks=%d steals=%d/%d signals=%d/%d exposures=%d\n",
		st.TasksExecuted, st.StealSuccesses, st.StealAttempts,
		st.SignalsHandled, st.SignalsSent, st.Exposures)
	for l := 0; l < trace.NumLatencies; l++ {
		fmt.Fprintf(os.Stderr, "  %-18s %s\n", trace.LatencyName(l), tr.Hist(l))
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts in %q", s)
	}
	return out, nil
}
