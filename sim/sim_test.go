package sim

import (
	"testing"

	"lcws"
	"lcws/pbbs"
)

func amd32() Machine {
	m, ok := MachineByName("AMD32")
	if !ok {
		panic("AMD32 missing")
	}
	return m
}

func TestSimulateDeterministic(t *testing.T) {
	w := Workloads()[0]
	a := Simulate(w.Phases, lcws.SignalLCWS, 8, amd32(), 7)
	b := Simulate(w.Phases, lcws.SignalLCWS, 8, amd32(), 7)
	if a != b {
		t.Errorf("equal-seed simulations differ:\n%v\n%v", a, b)
	}
	c := Simulate(w.Phases, lcws.SignalLCWS, 8, amd32(), 8)
	if a.Time == c.Time && a.Steals == c.Steals {
		t.Log("different seeds gave identical results (possible but suspicious)")
	}
}

func TestSimulateParallelismHelps(t *testing.T) {
	phases := flat(512, uniformCost(5, 3000, 0.2))
	for _, p := range []lcws.Policy{lcws.WS, lcws.SignalLCWS} {
		t1 := Simulate(phases, p, 1, amd32(), 1).Time
		t8 := Simulate(phases, p, 8, amd32(), 1).Time
		if t8 >= t1 {
			t.Errorf("%v: 8 workers (%.0f) not faster than 1 (%.0f)", p, t8, t1)
		}
		if t8 < t1/8 {
			t.Errorf("%v: superlinear speedup %.2f", p, t1/t8)
		}
	}
}

func TestSimulateSingleWorkerLCWSBeatsWS(t *testing.T) {
	// With one worker there are no steals: LCWS pays zero sync cost, WS
	// pays fences on every push/pop — the motivation of the paper.
	phases := flat(1024, uniformCost(9, 2000, 0.1))
	ws := Simulate(phases, lcws.WS, 1, amd32(), 1)
	for _, p := range lcws.LCWSPolicies {
		r := Simulate(phases, p, 1, amd32(), 1)
		if r.Time >= ws.Time {
			t.Errorf("%v at P=1 (%.0f) not faster than WS (%.0f)", p, r.Time, ws.Time)
		}
		if r.Fences != 0 || r.CAS != 0 {
			t.Errorf("%v at P=1 recorded sync ops: %v", p, r)
		}
	}
	if ws.Fences == 0 {
		t.Error("WS recorded no fences")
	}
}

func TestSimulateWorkConservation(t *testing.T) {
	// Makespan can never be below total-work / P.
	phases := flat(256, uniformCost(11, 4000, 0.3))
	total := 0.0
	for i := 0; i < 256; i++ {
		total += phases[0].cost(i)
	}
	for _, p := range lcws.Policies {
		for _, workers := range []int{1, 2, 4, 16} {
			r := Simulate(phases, p, workers, amd32(), 3)
			if r.Time < total/float64(workers)-1 {
				t.Errorf("%v P=%d: makespan %.0f below work bound %.0f", p, workers, r.Time, total/float64(workers))
			}
			if r.Time < total/float64(workers) {
				continue
			}
		}
	}
}

func TestSimulateCounterSemantics(t *testing.T) {
	phases := flat(512, uniformCost(13, 2500, 0.2))
	ws := Simulate(phases, lcws.WS, 8, amd32(), 5)
	if ws.Exposures != 0 || ws.Signals != 0 || ws.ExposedNotStolen != 0 {
		t.Errorf("WS recorded split-deque events: %v", ws)
	}
	us := Simulate(phases, lcws.USLCWS, 8, amd32(), 5)
	if us.Signals != 0 {
		t.Errorf("USLCWS recorded signals: %v", us)
	}
	if us.Exposures == 0 {
		t.Errorf("USLCWS with 8 workers exposed nothing: %v", us)
	}
	sig := Simulate(phases, lcws.SignalLCWS, 8, amd32(), 5)
	if sig.Signals == 0 {
		t.Errorf("SignalLCWS sent no signals: %v", sig)
	}
	if sig.Steals == 0 {
		t.Errorf("SignalLCWS with 8 workers stole nothing: %v", sig)
	}
	// LCWS fence reduction (Figures 3a/8a): far fewer fences than WS.
	if sig.Fences*5 > ws.Fences {
		t.Errorf("SignalLCWS fences (%d) not well below WS (%d)", sig.Fences, ws.Fences)
	}
}

func TestSimulateEmptyAndSeqOnlyWorkloads(t *testing.T) {
	if r := Simulate(nil, lcws.WS, 4, amd32(), 1); r.Time != 0 {
		t.Errorf("empty workload time = %v", r.Time)
	}
	r := Simulate([]Phase{{Seq: 5000}}, lcws.SignalLCWS, 4, amd32(), 1)
	if r.Time != 5000 {
		t.Errorf("seq-only workload time = %v, want 5000", r.Time)
	}
}

func TestWorkloadsMatchPBBSSuite(t *testing.T) {
	// Every pbbs suite instance must have a simulator model and vice
	// versa, so the figure harness can treat them uniformly.
	models := map[string]bool{}
	for _, w := range Workloads() {
		if models[w.Name()] {
			t.Errorf("duplicate workload model %s", w.Name())
		}
		models[w.Name()] = true
	}
	suite := map[string]bool{}
	for _, inst := range pbbs.Suite(1) {
		suite[inst.Name()] = true
		if !models[inst.Name()] {
			t.Errorf("pbbs instance %s has no simulator model", inst.Name())
		}
	}
	for name := range models {
		if !suite[name] {
			t.Errorf("simulator model %s has no pbbs instance", name)
		}
	}
}

func TestWorkloadPhasesAreSane(t *testing.T) {
	for _, w := range Workloads() {
		totalTasks := 0
		for _, ph := range w.Phases {
			if ph.Tasks < 0 || ph.Seq < 0 {
				t.Errorf("%s: negative phase parameters", w.Name())
			}
			totalTasks += ph.Tasks
			for i := 0; i < ph.Tasks; i += 100 {
				if c := ph.cost(i); c <= 0 || c > 1e7 {
					t.Errorf("%s: chunk cost %v out of range", w.Name(), c)
				}
			}
		}
		if totalTasks < 32 {
			t.Errorf("%s: only %d tasks total", w.Name(), totalTasks)
		}
	}
}

func TestMachineProfiles(t *testing.T) {
	if len(Machines) != 3 {
		t.Fatalf("Table 1 has 3 machines, got %d", len(Machines))
	}
	names := map[string]int{"Intel12": 12, "AMD32": 32, "Intel16": 16}
	for _, m := range Machines {
		want, ok := names[m.Name]
		if !ok {
			t.Errorf("unexpected machine %s", m.Name)
			continue
		}
		if m.Cores != want {
			t.Errorf("%s cores = %d, want %d", m.Name, m.Cores, want)
		}
		sweep := m.WorkerSweep()
		if sweep[0] != 1 || sweep[len(sweep)-1] != m.Cores {
			t.Errorf("%s sweep %v must span 1..cores", m.Name, sweep)
		}
	}
	if _, ok := MachineByName("nope"); ok {
		t.Error("MachineByName accepted an unknown name")
	}
}

func TestSpeedupHelper(t *testing.T) {
	if Speedup(100, 50) != 2 {
		t.Error("Speedup(100, 50) != 2")
	}
	if Speedup(100, 0) != 1 {
		t.Error("Speedup with zero time should default to 1")
	}
}
