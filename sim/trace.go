package sim

import "lcws"

// Multiprogrammed-environment extension (beyond the paper's evaluation,
// motivated by its §1.1): simulate a resource manager that revokes and
// returns cores while a computation runs. A revoked processor stops
// taking new work and stops handling exposure requests, but its deque
// stays in shared memory: under WS every task in it remains stealable,
// while under the LCWS schedulers the private part is stranded until the
// processor gets its core back — the structural trade-off this experiment
// quantifies.

// AvailWindow says that until virtual time Until, only processors with
// id < Procs may run.
type AvailWindow struct {
	Until float64
	Procs int
}

// Trace is a sequence of availability windows in increasing Until order.
// After the last window every processor is available (required for
// termination: stranded private work must eventually be reachable).
type Trace []AvailWindow

// availAt returns how many processors may run at time t.
func (tr Trace) availAt(t float64, workers int) int {
	for _, w := range tr {
		if t < w.Until {
			if w.Procs < 1 {
				return 1
			}
			return w.Procs
		}
	}
	return workers
}

// nextChange returns the next window boundary after t, or -1 when t is
// past the whole trace.
func (tr Trace) nextChange(t float64) float64 {
	for _, w := range tr {
		if t < w.Until {
			return w.Until
		}
	}
	return -1
}

// SimulateTrace is Simulate under an availability trace: processors whose
// id is at or above the current availability neither take work nor handle
// signals until their core returns.
func SimulateTrace(phases []Phase, policy lcws.Policy, workers int, m Machine, seed uint64, trace Trace) Result {
	if workers < 1 {
		panic("sim: need at least one worker")
	}
	s := newSim(phases, policy, workers, m, seed)
	s.trace = trace
	return s.runLoop()
}
