package sim

import "math"

// mathLog is math.Log; models.go keeps its ln wrapper to document the
// (0, 1] input domain of the cost helpers.
func mathLog(x float64) float64 { return math.Log(x) }
