package sim

import (
	"testing"

	"lcws"
)

func TestTraceAvailAtAndNextChange(t *testing.T) {
	tr := Trace{{Until: 100, Procs: 2}, {Until: 200, Procs: 4}}
	if got := tr.availAt(50, 8); got != 2 {
		t.Errorf("availAt(50) = %d", got)
	}
	if got := tr.availAt(150, 8); got != 4 {
		t.Errorf("availAt(150) = %d", got)
	}
	if got := tr.availAt(500, 8); got != 8 {
		t.Errorf("availAt past trace = %d", got)
	}
	if got := tr.nextChange(50); got != 100 {
		t.Errorf("nextChange(50) = %v", got)
	}
	if got := tr.nextChange(150); got != 200 {
		t.Errorf("nextChange(150) = %v", got)
	}
	if got := tr.nextChange(500); got != -1 {
		t.Errorf("nextChange past trace = %v", got)
	}
	// Zero-proc windows clamp to one processor.
	zero := Trace{{Until: 10, Procs: 0}}
	if got := zero.availAt(5, 4); got != 1 {
		t.Errorf("clamped availAt = %d", got)
	}
}

func TestSimulateTraceDeterministicAndSlower(t *testing.T) {
	m := amd32()
	phases := flat(2048, uniformCost(3, 2500, 0.2))
	full := Simulate(phases, lcws.SignalLCWS, 16, m, 9)
	// Revoke half the cores for the first stretch of the run.
	tr := Trace{{Until: full.Time / 2, Procs: 8}}
	a := SimulateTrace(phases, lcws.SignalLCWS, 16, m, 9, tr)
	b := SimulateTrace(phases, lcws.SignalLCWS, 16, m, 9, tr)
	if a != b {
		t.Error("SimulateTrace not deterministic")
	}
	if a.Time <= full.Time {
		t.Errorf("revoked run (%.0f) not slower than full run (%.0f)", a.Time, full.Time)
	}
	// But never slower than running on the reduced count the whole time.
	half := Simulate(phases, lcws.SignalLCWS, 8, m, 9)
	if a.Time > half.Time*1.15 {
		t.Errorf("revoked run (%.0f) much slower than steady half-machine (%.0f)", a.Time, half.Time)
	}
}

func TestSimulateTraceEquivalentToSteadyWhenConstant(t *testing.T) {
	m := amd32()
	phases := flat(1024, uniformCost(5, 2000, 0.2))
	// A trace that never changes availability must behave like plain
	// Simulate at the same width for every policy.
	for _, pol := range []lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS, lcws.LaceWS} {
		plain := Simulate(phases, pol, 4, m, 11)
		traced := SimulateTrace(phases, pol, 4, m, 11, nil)
		if plain != traced {
			t.Errorf("%v: nil-trace SimulateTrace differs from Simulate", pol)
		}
	}
}

func TestSimulateTraceStrandedPrivateWork(t *testing.T) {
	// The headline of the extension: under revocation mid-run, WS's
	// stranded deques remain fully stealable while LCWS strands private
	// work until the core returns. The revoked-run slowdown of LCWS must
	// therefore exceed WS's.
	m := amd32()
	phases := flat(4096, uniformCost(7, 2500, 0.2))
	slowdown := func(pol lcws.Policy) float64 {
		full := Simulate(phases, pol, 16, m, 13)
		tr := Trace{{Until: full.Time * 0.3, Procs: 4}}
		revoked := SimulateTrace(phases, pol, 16, m, 13, tr)
		return revoked.Time / full.Time
	}
	ws := slowdown(lcws.WS)
	us := slowdown(lcws.USLCWS)
	if ws <= 1 || us <= 1 {
		t.Fatalf("revocation did not slow runs down (WS %.2f, USLCWS %.2f)", ws, us)
	}
	if us < ws*0.98 {
		t.Errorf("USLCWS slowdown %.3f clearly below WS %.3f; stranded private work should not help LCWS", us, ws)
	}
}
