package sim

import "lcws/internal/rng"

// Workload is a benchmark-shaped computation model for the simulator: one
// entry per ⟨benchmark, input⟩ instance of the pbbs suite, with phases
// whose task counts, cost distributions and sequential portions mirror
// the parallel structure of the real implementation (flat loops, sort
// rounds, frontier rounds, recursion, sequential tails). Together with a
// worker count they form the paper's benchmark configurations.
//
// Calibration. The dimensionless ratios that drive the paper's figures
// are (a) fence cost : chunk cost, which sets the WS per-task overhead
// that LCWS removes (a few percent), and (b) signal latency : per-worker
// per-phase work, which sets the cost of LCWS's notification round-trips
// (tiny for PBBS's 100M-element phases, large only for benchmarks made of
// many small phases, such as grid BFS and the decision tree). The task
// counts below are scaled down from PBBS sizes but keep both ratios in
// the realistic regime; EXPERIMENTS.md records the resulting statistics
// against the paper's.
type Workload struct {
	Benchmark string
	Input     string
	Phases    []Phase
}

// Name returns "benchmark/input".
func (w *Workload) Name() string { return w.Benchmark + "/" + w.Input }

// Cost-distribution helpers. All are deterministic in (salt, i).

// uniformCost returns costs in [base·(1-jitter), base·(1+jitter)).
func uniformCost(salt uint64, base, jitter float64) func(int) float64 {
	return func(i int) float64 {
		u := float64(rng.Hash64(salt^uint64(i))>>11) / (1 << 53)
		return base * (1 - jitter + 2*jitter*u)
	}
}

// exptCost returns exponentially distributed costs with the given mean
// (clamped to 10× the mean): many cheap chunks, a few expensive ones.
func exptCost(salt uint64, mean float64) func(int) float64 {
	return func(i int) float64 {
		u := float64(rng.Hash64(salt^uint64(i))>>11)/(1<<53) + 1e-12
		c := -mean * ln(u)
		if c > 10*mean {
			c = 10 * mean
		}
		return c
	}
}

// heavyCost returns base-cost chunks where a `frac` fraction cost
// `factor`× more — the coarse sequential tasks (hub vertices, deep rays,
// big leaf sorts) that hurt task-boundary exposure.
func heavyCost(salt uint64, base, factor, frac float64) func(int) float64 {
	return func(i int) float64 {
		u := float64(rng.Hash64(salt^uint64(i))>>11) / (1 << 53)
		if u < frac {
			return base * factor
		}
		return base
	}
}

// ln is a minimal natural logarithm for the cost helpers; inputs are in
// (0, 1].
func ln(x float64) float64 { return mathLog(x) }

// flat returns a single bulk-parallel phase.
func flat(tasks int, cost func(int) float64) []Phase {
	return []Phase{{Tasks: tasks, Cost: cost}}
}

// roundsOf returns one phase per entry of tasks, all with the same cost
// function.
func roundsOf(tasks []int, cost func(int) float64) []Phase {
	out := make([]Phase, len(tasks))
	for i, n := range tasks {
		out[i] = Phase{Tasks: n, Cost: cost}
	}
	return out
}

// sortPhases models a parallel merge/radix sort: a leaf phase with
// occasional coarse leaves followed by log-depth combine rounds in which
// parallelism halves while chunk size (roughly) doubles — total work per
// round stays near-constant, and the deep rounds consist of a few coarse
// sequential merges, exactly the tasks that task-boundary exposure
// (USLCWS, Lace) handles poorly.
func sortPhases(salt uint64, leaves int, leafCost float64, combineRounds int) []Phase {
	out := []Phase{{Tasks: leaves, Cost: heavyCost(salt, leafCost, 12, 0.01)}}
	n := leaves / 2
	cost := leafCost * 0.8
	for r := 0; r < combineRounds && n >= 2; r++ {
		out = append(out, Phase{Tasks: n, Cost: uniformCost(salt^uint64(r+1), cost, 0.2)})
		n /= 2
		cost *= 1.9
	}
	return out
}

// geomPhases models divide-and-conquer recursion: task counts decay
// geometrically from start down to 2.
func geomPhases(salt uint64, start int, cost float64, decay float64) []Phase {
	var out []Phase
	n := start
	r := 0
	for n >= 2 {
		out = append(out, Phase{Tasks: n, Cost: uniformCost(salt^uint64(r), cost, 0.4)})
		n = int(float64(n) * decay)
		r++
	}
	return out
}

// concat joins phase lists.
func concat(lists ...[]Phase) []Phase {
	var out []Phase
	for _, l := range lists {
		out = append(out, l...)
	}
	return out
}

// taskScale multiplies every phase's task count and sequential portion.
// It moves the models from sketch scale to a regime where per-phase work
// dwarfs the notification round-trip — as PBBS's 100M-element inputs do —
// without touching the fence-cost : chunk-cost ratio that sets the WS
// overhead LCWS removes.
const taskScale = 4

// Workloads returns the simulator model of every pbbs suite instance.
func Workloads() []Workload {
	var out []Workload
	add := func(bench, input string, phases []Phase) {
		scaled := make([]Phase, len(phases))
		for i, ph := range phases {
			ph.Tasks *= taskScale
			ph.Seq *= taskScale
			scaled[i] = ph
		}
		out = append(out, Workload{Benchmark: bench, Input: input, Phases: scaled})
	}

	// integerSort: radix passes, each a count and a scatter sweep over
	// the whole input.
	radix := func(salt uint64, passes int, cost float64) []Phase {
		var ph []Phase
		for p := 0; p < passes; p++ {
			ph = append(ph,
				Phase{Tasks: 4096, Cost: uniformCost(salt^uint64(2*p), cost, 0.15)},
				Phase{Tasks: 4096, Cost: uniformCost(salt^uint64(2*p+1), cost*1.2, 0.15)},
			)
		}
		return ph
	}
	add("integerSort", "randomSeq_int", radix(1001, 4, 2200))
	add("integerSort", "exptSeq_int", concat(radix(1002, 4, 2000), flat(2048, exptCost(1002, 1800))))
	add("integerSort", "randomSeq_int_pair_int", radix(1003, 4, 3200))
	add("integerSort", "randomSeq_256_int_pair_int", radix(1004, 1, 3400))

	// comparisonSort: leaf sorts plus merge rounds.
	add("comparisonSort", "randomSeq_double", sortPhases(1011, 4096, 6000, 8))
	add("comparisonSort", "exptSeq_double", concat(
		[]Phase{{Tasks: 4096, Cost: exptCost(1012, 6000)}},
		sortPhases(1012, 2048, 5000, 7)))
	add("comparisonSort", "almostSortedSeq", sortPhases(1013, 4096, 3200, 8))
	add("comparisonSort", "trigramWords", sortPhases(1014, 4096, 7200, 8))

	// histogram: one counting sweep and a small reduction.
	add("histogram", "randomSeq_256_int", concat(
		flat(6144, uniformCost(1021, 800, 0.1)),
		flat(512, uniformCost(1022, 400, 0.1))))
	add("histogram", "randomSeq_100K_int", concat(
		flat(6144, uniformCost(1023, 1900, 0.1)),
		flat(2048, uniformCost(1024, 700, 0.1))))
	add("histogram", "exptSeq_int", concat(
		flat(6144, uniformCost(1025, 1700, 0.15)),
		flat(2048, uniformCost(1026, 650, 0.1))))

	// removeDuplicates: sort rounds plus a pack.
	add("removeDuplicates", "randomSeq_int", concat(
		sortPhases(1031, 4096, 4200, 7), flat(2048, uniformCost(1032, 1200, 0.2))))
	add("removeDuplicates", "exptSeq_int", concat(
		sortPhases(1033, 4096, 3800, 7), flat(2048, uniformCost(1034, 1100, 0.2))))
	// Hash-based dedup: one CAS-heavy flat insertion phase plus a pack.
	add("removeDuplicates", "randomSeq_int_hash", concat(
		flat(6144, uniformCost(1035, 1300, 0.15)),
		flat(2048, uniformCost(1036, 500, 0.1))))

	// wordCounts: tokenize sweep, string sort rounds, run counting.
	add("wordCounts", "trigramSeq", concat(
		flat(4096, uniformCost(1041, 2600, 0.3)),
		sortPhases(1042, 4096, 5000, 8),
		flat(2048, uniformCost(1043, 900, 0.2))))
	add("wordCounts", "trigramSeq_small_alpha", concat(
		flat(4096, uniformCost(1044, 2300, 0.3)),
		sortPhases(1045, 4096, 4300, 8),
		flat(2048, uniformCost(1046, 800, 0.2))))

	// invertedIndex: per-document tokenize (uneven documents), pair sort,
	// posting-list build.
	add("invertedIndex", "wikipedia_like", concat(
		flat(3072, exptCost(1051, 1100)),
		sortPhases(1052, 4096, 1400, 8),
		flat(2048, exptCost(1053, 700))))
	add("invertedIndex", "wikipedia_like_zipf", concat(
		flat(3072, exptCost(1054, 1200)),
		sortPhases(1055, 4096, 1500, 8),
		flat(2048, exptCost(1056, 750))))

	// suffixArray: log n prefix-doubling rounds, each a radix sort plus a
	// re-ranking sweep.
	saRounds := func(salt uint64, rounds int) []Phase {
		var ph []Phase
		for r := 0; r < rounds; r++ {
			ph = append(ph,
				Phase{Tasks: 3072, Cost: uniformCost(salt^uint64(3*r), 2600, 0.2)},
				Phase{Tasks: 3072, Cost: uniformCost(salt^uint64(3*r+1), 3000, 0.2)},
				Phase{Tasks: 1536, Cost: uniformCost(salt^uint64(3*r+2), 1200, 0.2)},
			)
		}
		return ph
	}
	add("suffixArray", "trigramString", saRounds(1061, 7))

	// longestRepeatedSubstring: suffix array plus an LCP sweep with
	// heavy-tailed comparisons.
	add("longestRepeatedSubstring", "trigramString", concat(
		saRounds(1071, 6),
		flat(3072, heavyCost(1072, 1800, 40, 0.01))))

	// breadthFirstSearch: frontier rounds. RMAT explodes then shrinks
	// with hub vertices; randLocal grows smoothly; the 3D grid is a long
	// chain of small frontiers (the paper's hard case for signal-based
	// LCWS at 32 workers).
	add("breadthFirstSearch", "rMatGraph",
		roundsOf([]int{1, 8, 96, 1024, 4096, 2048, 384, 48, 4}, heavyCost(1081, 380, 55, 0.02)))
	add("breadthFirstSearch", "randLocalGraph",
		roundsOf([]int{1, 16, 128, 768, 2048, 2048, 1024, 384, 96, 12}, uniformCost(1082, 900, 0.3)))
	grid := make([]int, 40)
	for i := range grid {
		grid[i] = 160
	}
	add("breadthFirstSearch", "3Dgrid", roundsOf(grid, uniformCost(1083, 800, 0.2)))

	// backForwardBFS: direction-optimizing. On RMAT the middle rounds
	// flip to cheap bottom-up sweeps; on the 3D grid the frontier never
	// dominates, leaving the same long chain of small rounds that makes
	// it the paper's worst case for the signal-based scheduler at 32
	// workers.
	add("backForwardBFS", "rMatGraph",
		roundsOf([]int{1, 8, 96, 2048, 2048, 1024, 384, 48, 4}, heavyCost(1084, 500, 40, 0.02)))
	bfGrid := make([]int, 44)
	for i := range bfGrid {
		bfGrid[i] = 120
	}
	add("backForwardBFS", "3Dgrid", roundsOf(bfGrid, uniformCost(1085, 700, 0.2)))

	// maximalIndependentSet / maximalMatching: a few rounds with
	// geometrically shrinking candidate sets.
	add("maximalIndependentSet", "rMatGraph",
		roundsOf([]int{4096, 1536, 512, 128, 24, 4}, heavyCost(1091, 1500, 25, 0.02)))
	add("maximalIndependentSet", "randLocalGraph",
		roundsOf([]int{4096, 1280, 384, 96, 16}, uniformCost(1092, 1400, 0.25)))
	add("maximalMatching", "rMatGraph",
		roundsOf([]int{4096, 2048, 768, 224, 48, 8}, heavyCost(1101, 1400, 25, 0.02)))
	add("maximalMatching", "randLocalGraph",
		roundsOf([]int{4096, 1792, 512, 112, 16}, uniformCost(1102, 1300, 0.25)))

	// spanningForest: one big union-find sweep plus a pack.
	add("spanningForest", "rMatGraph", concat(
		flat(5120, heavyCost(1111, 1800, 20, 0.02)),
		flat(768, uniformCost(1112, 700, 0.2))))
	add("spanningForest", "randLocalGraph", concat(
		flat(5120, uniformCost(1113, 1700, 0.25)),
		flat(768, uniformCost(1114, 700, 0.2))))

	// minSpanningForest: parallel sort rounds then the sequential Kruskal
	// tail — the low-parallelism regime where LCWS shines.
	msf := func(salt uint64, seqTail float64) []Phase {
		return concat(
			sortPhases(salt, 4096, 5200, 8),
			[]Phase{{Seq: seqTail, Tasks: 512, Cost: uniformCost(salt^99, 900, 0.2)}})
	}
	add("minSpanningForest", "rMatGraph", msf(1121, 2_500_000))
	add("minSpanningForest", "randLocalGraph", msf(1122, 2_200_000))

	// convexHull: quickhull recursion. In-sphere hulls shed points fast;
	// on-sphere keeps every point (deep recursion of smaller phases);
	// kuzmin sits between.
	add("convexHull", "2DinSphere", geomPhases(1131, 4096, 340, 0.3))
	add("convexHull", "2DonSphere", geomPhases(1132, 2048, 600, 0.62))
	add("convexHull", "2Dkuzmin", geomPhases(1133, 4096, 600, 0.45))

	// nearestNeighbors: kd-tree build rounds then a flat query phase.
	nn := func(salt uint64, queryCost func(int) float64) []Phase {
		return concat(
			geomPhases(salt, 2048, 900, 0.5),
			flat(6144, queryCost))
	}
	add("nearestNeighbors", "2DinCube", nn(1141, uniformCost(1142, 900, 0.3)))
	add("nearestNeighbors", "2Dkuzmin", nn(1143, heavyCost(1144, 620, 70, 0.008)))

	// delaunayTriangulation: incremental insertion rounds with doubling
	// prefixes — parallelism grows geometrically, and each round mixes a
	// parallel cavity phase with a short sequential surgery tail.
	delaunay := func(salt uint64) []Phase {
		var ph []Phase
		tasks := 1
		for tasks < 2048 {
			ph = append(ph, Phase{Seq: 4000, Tasks: tasks, Cost: uniformCost(salt^uint64(tasks), 2400, 0.4)})
			tasks *= 2
		}
		ph = append(ph, Phase{Seq: 8000, Tasks: 2048, Cost: uniformCost(salt^3, 2400, 0.4)})
		return ph
	}
	add("delaunayTriangulation", "2DinCube", delaunay(1191))
	add("delaunayTriangulation", "2Dkuzmin", delaunay(1192))

	// delaunayRefine: a handful of refinement rounds, each a full
	// incremental build plus a flat skinny-triangle scan.
	var refine []Phase
	for r := 0; r < 5; r++ {
		refine = append(refine, delaunay(uint64(1195+r))...)
		refine = append(refine, Phase{Tasks: 1024, Cost: uniformCost(uint64(1199+r), 900, 0.2)})
	}
	add("delaunayRefine", "2DinCube", refine)

	// rangeQuery2d: kd-tree build rounds plus a flat query phase with
	// heavy-tailed query rectangles.
	rq := func(salt uint64, queryCost func(int) float64) []Phase {
		return concat(
			geomPhases(salt, 2048, 1000, 0.5),
			flat(4096, queryCost))
	}
	add("rangeQuery2d", "2DinCube", rq(1146, heavyCost(1147, 900, 20, 0.02)))
	add("rangeQuery2d", "2Dkuzmin", rq(1148, heavyCost(1149, 900, 35, 0.02)))

	// rayCast: grid build plus a flat phase of irregular ray walks.
	add("rayCast", "randomSegments", concat(
		flat(2048, uniformCost(1151, 1500, 0.2)),
		flat(6144, heavyCost(1152, 2000, 35, 0.01))))

	// rayCast3d: BVH build (recursive, shrinking) plus a flat phase of
	// irregular traversals.
	add("rayCast3d", "randomTriangles", concat(
		geomPhases(1155, 2048, 1100, 0.5),
		flat(5120, heavyCost(1156, 1800, 30, 0.015))))

	// nBody: one flat phase of coarse uniform force computations — the
	// workload where task-boundary exposure delays (USLCWS) hurt most.
	add("nBody", "3Dplummer", flat(1024, uniformCost(1161, 60_000, 0.1)))
	// The Barnes–Hut variant: a tree build (shrinking rounds) plus a flat
	// traversal phase with moderately irregular costs.
	add("nBody", "3Dplummer_barnesHut", concat(
		geomPhases(1162, 2048, 1200, 0.5),
		flat(4096, heavyCost(1163, 3200, 10, 0.03))))

	// classify: many small per-node phases (feature sorts and partitions
	// over shrinking row sets) — the steal-heavy workload the paper
	// reports as signal-based LCWS's worst case at 16/32 workers.
	var classify []Phase
	nTasks := 1024
	for d := 0; d < 28 && nTasks >= 8; d++ {
		classify = append(classify,
			Phase{Tasks: nTasks, Cost: uniformCost(1171^uint64(d), 1600, 0.3)},
			Phase{Tasks: nTasks / 2, Cost: uniformCost(1172^uint64(d), 900, 0.3)},
		)
		nTasks = nTasks * 3 / 4
	}
	add("classify", "covtype_like", classify)
	// The wide variant: more features per node means coarser per-node
	// phases but the same steal-heavy shrinking structure.
	var classifyWide []Phase
	wTasks := 768
	for d := 0; d < 22 && wTasks >= 8; d++ {
		classifyWide = append(classifyWide,
			Phase{Tasks: wTasks, Cost: uniformCost(1175^uint64(d), 2600, 0.3)},
			Phase{Tasks: wTasks / 2, Cost: uniformCost(1176^uint64(d), 1100, 0.3)},
		)
		wTasks = wTasks * 3 / 4
	}
	add("classify", "covtype_like_wide", classifyWide)

	return out
}
