package sim

import (
	"container/heap"
	"fmt"

	"lcws"
	"lcws/internal/rng"
)

// Phase is one bulk-parallel region of a simulated computation: an
// optional sequential portion followed by Tasks independent grain-sized
// chunks executed under eager binary splitting, ending in a barrier.
type Phase struct {
	// Seq is sequential work (cycles) performed before the parallel
	// region by the processor that reached the barrier last.
	Seq float64
	// Tasks is the number of chunks in the parallel region.
	Tasks int
	// Cost returns the execution cost (cycles) of chunk i. It must be a
	// deterministic function. Nil means a unit cost of 1000 cycles.
	Cost func(i int) float64
}

func (ph *Phase) cost(i int) float64 {
	if ph.Cost == nil {
		return 1000
	}
	return ph.Cost(i)
}

// Result summarizes one simulation: the virtual makespan and the
// synchronization-operation counters accumulated by the simulated
// schedulers (same counting model as the real implementation, so sim and
// real profiles are directly comparable).
type Result struct {
	Time             float64
	Fences           uint64
	CAS              uint64
	StealAttempts    uint64
	Steals           uint64
	Exposures        uint64
	ExposedNotStolen uint64
	Signals          uint64
}

// item is a range of chunk indices of the current phase.
type item struct{ lo, hi int }

// proc is one simulated processor.
type proc struct {
	deq       []item
	publicBot int // deq[:publicBot] is public (split-deque policies)
	targeted  bool
	fails     uint32 // consecutive failed steal attempts (backoff)
}

// event kinds.
const (
	evReady  = iota // the processor is free: decide its next action
	evSignal        // an emulated signal arrives at the processor
)

type event struct {
	t    float64
	seq  uint64 // deterministic tie-break
	proc int
	kind int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// sim is the mutable simulation state.
type sim struct {
	policy  lcws.Policy
	machine Machine
	phases  []Phase
	procs   []proc
	heap    eventHeap
	seq     uint64
	rand    *rng.Xoshiro256

	phase     int     // index of the active phase
	remaining int     // chunks of the active phase not yet scheduled
	phaseEnd  float64 // latest chunk completion time of the active phase
	finishAt  float64
	res       Result

	// trace, when non-nil, gates processor availability over time
	// (the multiprogrammed-environment extension; see trace.go).
	trace Trace
}

// Simulate runs the workload's phases on `workers` simulated processors
// under the given policy and machine model, returning the virtual
// makespan and operation counters. Equal arguments (including seed) give
// bit-identical results.
func Simulate(phases []Phase, policy lcws.Policy, workers int, m Machine, seed uint64) Result {
	if workers < 1 {
		panic("sim: need at least one worker")
	}
	return newSim(phases, policy, workers, m, seed).runLoop()
}

func newSim(phases []Phase, policy lcws.Policy, workers int, m Machine, seed uint64) *sim {
	return &sim{
		policy:  policy,
		machine: m,
		phases:  phases,
		procs:   make([]proc, workers),
		rand:    rng.New(seed ^ 0xcafe_f00d),
		phase:   -1,
	}
}

// runLoop executes the event loop to completion.
func (s *sim) runLoop() Result {
	// Processor 0 starts the first phase at t=0; the rest start idle.
	t0 := s.advancePhase(0, 0)
	if s.phase >= len(s.phases) {
		s.res.Time = t0
		return s.res
	}
	s.post(t0, 0, evReady)
	for p := 1; p < len(s.procs); p++ {
		s.post(0, p, evReady)
	}
	for len(s.heap) > 0 {
		e := heap.Pop(&s.heap).(event)
		if s.phase >= len(s.phases) {
			break
		}
		switch e.kind {
		case evReady:
			s.ready(e.proc, e.t)
		case evSignal:
			s.handleSignal(e.proc, e.t)
		}
	}
	s.res.Time = s.finishAt
	return s.res
}

// parked handles availability gating: it reports whether processor p is
// revoked at time t, reposting the event at the core's return time.
func (s *sim) parked(p int, t float64, kind int) bool {
	if s.trace == nil {
		return false
	}
	if p < s.trace.availAt(t, len(s.procs)) {
		return false
	}
	if nc := s.trace.nextChange(t); nc >= 0 {
		s.post(nc, p, kind)
	}
	return true
}

func (s *sim) post(t float64, p, kind int) {
	s.seq++
	heap.Push(&s.heap, event{t: t, seq: s.seq, proc: p, kind: kind})
}

// advancePhase moves to the next non-empty phase, charging sequential
// portions to processor p starting at time t. It returns the time at
// which p holds the new phase's root range (pushed to its deque), or,
// when no phases remain, records the final time.
func (s *sim) advancePhase(p int, t float64) float64 {
	for {
		s.phase++
		if s.phase >= len(s.phases) {
			s.finishAt = t
			return t
		}
		ph := &s.phases[s.phase]
		t += ph.Seq
		if ph.Tasks > 0 {
			s.remaining = ph.Tasks
			s.phaseEnd = t
			s.push(p, item{0, ph.Tasks})
			return t
		}
		// A Tasks == 0 phase is a pure sequential portion.
	}
}

// splitDeque reports whether the policy's deques have a private part.
func (s *sim) splitDeque() bool { return s.policy != lcws.WS }

// push appends an item to p's deque, charging the policy's push cost and
// applying the push-side targeted reset of the signal-based schedulers.
func (s *sim) push(p int, it item) {
	pr := &s.procs[p]
	pr.deq = append(pr.deq, it)
	if s.splitDeque() {
		if s.policy.SignalBased() {
			pr.targeted = false
		}
	} else {
		s.res.Fences++ // WS push fence
	}
}

// pushCost is the time cost of one push.
func (s *sim) pushCost() float64 {
	if s.splitDeque() {
		return 0
	}
	return s.machine.FenceCost
}

// popLocal removes the bottom-most available item of p's deque, charging
// pop costs, and reports the time spent. ok is false when nothing locally
// poppable remains.
func (s *sim) popLocal(p int) (it item, cost float64, ok bool) {
	pr := &s.procs[p]
	n := len(pr.deq)
	if !s.splitDeque() {
		// WS: every pop pays a fence; the last element also races
		// thieves with a CAS.
		cost = s.machine.FenceCost
		if n == 0 {
			return item{}, cost, false
		}
		if n == 1 {
			cost += s.machine.CASCost
			s.res.CAS++
		}
		s.res.Fences++
		it = pr.deq[n-1]
		pr.deq = pr.deq[:n-1]
		return it, cost, true
	}
	// Split deque: the private part is free to pop.
	if n > pr.publicBot {
		it = pr.deq[n-1]
		pr.deq = pr.deq[:n-1]
		return it, 0, true
	}
	if s.policy == lcws.LaceWS && pr.publicBot > 0 {
		// Lace: reclaim the whole public part in one synchronized step
		// (one fence + one CAS) and pop it privately from then on.
		cost = s.machine.FenceCost + s.machine.CASCost
		s.res.Fences++
		s.res.CAS++
		s.res.ExposedNotStolen += uint64(pr.publicBot)
		pr.publicBot = 0
		n = len(pr.deq)
		it = pr.deq[n-1]
		pr.deq = pr.deq[:n-1]
		pr.targeted = false
		return it, cost, true
	}
	if pr.publicBot > 0 {
		// pop_public_bottom: one fence always, a second fence and the
		// last-element CAS on the emptying path.
		cost = s.machine.FenceCost
		s.res.Fences++
		if pr.publicBot == 1 {
			cost += s.machine.FenceCost + s.machine.CASCost
			s.res.Fences++
			s.res.CAS++
		}
		pr.publicBot--
		it = pr.deq[pr.publicBot]
		pr.deq = pr.deq[:pr.publicBot]
		s.res.ExposedNotStolen++
		if s.policy.SignalBased() {
			pr.targeted = false
		}
		return it, cost, true
	}
	if s.policy == lcws.USLCWS || s.policy == lcws.LaceWS {
		// Listing 1 line 17: reset the notification before stealing.
		pr.targeted = false
	}
	return item{}, 0, false
}

// expose transfers items from p's private part to its public part
// according to the policy's exposure mode.
func (s *sim) expose(p int) {
	pr := &s.procs[p]
	private := len(pr.deq) - pr.publicBot
	var k int
	switch s.policy {
	case lcws.ConsLCWS:
		if private >= 2 {
			k = 1
		}
	case lcws.HalfLCWS, lcws.LaceWS:
		if private >= 3 {
			k = (private + 1) / 2
		} else if private >= 1 {
			k = 1
		}
	default:
		if private >= 1 {
			k = 1
		}
	}
	pr.publicBot += k
	s.res.Exposures += uint64(k)
}

// handleSignal is the emulated signal handler: it runs exposure on the
// victim at signal-arrival time. The handler itself is a few instructions
// (footnote 3: no synchronization), so it adds no busy time. A revoked
// processor handles the signal when its core returns.
func (s *sim) handleSignal(p int, t float64) {
	if s.parked(p, t, evSignal) {
		return
	}
	s.expose(p)
	s.res.Signals++ // handled
}

// ready decides processor p's next action at time t. Revoked processors
// park until their core returns (revocation takes effect at task
// boundaries, as in a cooperative runtime).
func (s *sim) ready(p int, t float64) {
	if s.parked(p, t, evReady) {
		return
	}
	pr := &s.procs[p]
	// Task boundary: USLCWS and Lace notice their targeted flag here.
	if (s.policy == lcws.USLCWS || s.policy == lcws.LaceWS) && pr.targeted {
		pr.targeted = false
		s.expose(p)
	}
	if it, cost, ok := s.popLocal(p); ok {
		pr.fails = 0
		s.run(p, t+cost, it)
		return
	}
	// Steal phase: one attempt per ready event.
	s.steal(p, t)
}

// run executes range it on p: split eagerly (pushing right halves), then
// execute the single remaining chunk, posting the completion event.
func (s *sim) run(p int, t float64, it item) {
	ph := &s.phases[s.phase]
	for it.hi-it.lo > 1 {
		mid := it.lo + (it.hi-it.lo)/2
		s.push(p, item{mid, it.hi})
		t += s.pushCost()
		it.hi = mid
	}
	t += ph.cost(it.lo)
	if t > s.phaseEnd {
		s.phaseEnd = t
	}
	s.remaining--
	if s.remaining == 0 {
		// Every chunk is now scheduled; the barrier falls at the latest
		// completion. p advances to the next phase there (running its
		// sequential portion and taking the new root range); stragglers
		// rejoin by stealing.
		t = s.advancePhase(p, s.phaseEnd)
		if s.phase >= len(s.phases) {
			if t > s.finishAt {
				s.finishAt = t
			}
			return
		}
	}
	s.post(t, p, evReady)
}

// steal performs one stealing-phase iteration for thief p at time t.
func (s *sim) steal(p int, t float64) {
	m := &s.machine
	n := len(s.procs)
	if n == 1 {
		// Nothing to steal from; spin until the phase advances (it
		// cannot — single proc always has local work unless finished).
		return
	}
	vid := s.rand.Intn(n - 1)
	if vid >= p {
		vid++
	}
	v := &s.procs[vid]
	pr := &s.procs[p]
	s.res.StealAttempts++
	cost := m.LoopCost

	if !s.splitDeque() {
		cost += m.FenceCost
		s.res.Fences++
		if len(v.deq) > 0 {
			cost += m.CASCost + m.StealCost
			s.res.CAS++
			s.res.Steals++
			it := v.deq[0]
			v.deq = v.deq[1:]
			pr.fails = 0
			s.run(p, t+cost, it)
			return
		}
	} else if v.publicBot > 0 {
		cost += m.CASCost + m.StealCost
		s.res.CAS++
		s.res.Steals++
		it := v.deq[0]
		v.deq = v.deq[1:]
		v.publicBot--
		if s.policy.SignalBased() {
			v.targeted = false
		}
		pr.fails = 0
		s.run(p, t+cost, it)
		return
	} else if len(v.deq) > 0 {
		// PRIVATE_WORK: notify the victim per policy.
		switch s.policy {
		case lcws.USLCWS, lcws.LaceWS:
			v.targeted = true
		case lcws.SignalLCWS, lcws.HalfLCWS:
			if !v.targeted {
				v.targeted = true
				s.post(t+m.SignalCost, vid, evSignal)
			}
		case lcws.ConsLCWS:
			if !v.targeted && len(v.deq) >= 2 {
				v.targeted = true
				s.post(t+m.SignalCost, vid, evSignal)
			}
		}
	}

	// Failed attempt: back off a little more each time (mirrors the real
	// workers' Gosched/sleep backoff).
	pr.fails++
	backoff := float64(pr.fails) * m.LoopCost
	if backoff > 60*m.LoopCost {
		backoff = 60 * m.LoopCost
	}
	s.post(t+cost+backoff, p, evReady)
}

// Speedup returns tBase / tOther, the convention of the paper's figures
// (values above 1 mean `other` is faster than the WS baseline).
func Speedup(tBase, tOther float64) float64 {
	if tOther == 0 {
		return 1
	}
	return tBase / tOther
}

// String renders a result compactly for logs.
func (r Result) String() string {
	return fmt.Sprintf("time=%.0f fences=%d cas=%d steals=%d/%d exposed=%d unstolen=%d signals=%d",
		r.Time, r.Fences, r.CAS, r.Steals, r.StealAttempts, r.Exposures, r.ExposedNotStolen, r.Signals)
}
