// Package sim is a deterministic discrete-event simulator of the paper's
// five schedulers executing benchmark-shaped fork-join computations on
// multi-core machine models. It exists because this reproduction targets
// hosts where genuine multi-core wall-clock speedups cannot be measured
// (see DESIGN.md §2): the simulator runs the *same scheduling decisions*
// the real schedulers make — split deques, exposure notifications,
// task-boundary vs signal-time exposure handling, random victim selection
// — in virtual time, with per-operation costs taken from a machine
// profile. It regenerates the relative-performance shapes of the paper's
// Figures 4–7 and the §5 statistics.
//
// The simulation model (engine.go) is eager binary splitting over phases
// of independent grain-sized chunks: each phase's root range is split on
// the owning processor's deque, thieves steal subranges, and phases are
// separated by barriers with optional sequential portions. The model
// captures exactly the effects the paper discusses — per-task fence
// overheads, notification round-trips delaying steals, exposed-but-
// unstolen work, the slow start of USLCWS on coarse tasks — while
// abstracting the details (join helping, memory effects) that do not
// drive the figures.
package sim

// Machine is a simulated computer profile. Costs are in arbitrary cycle
// units; only their ratios to task grain sizes matter.
type Machine struct {
	// Name is the paper's machine label.
	Name string
	// Cores is the number of hardware threads used as the sweep's upper
	// bound (the paper sweeps 1..cores).
	Cores int
	// FenceCost is the cost of one memory fence.
	FenceCost float64
	// CASCost is the cost of one compare-and-swap.
	CASCost float64
	// StealCost is the extra latency of touching a remote deque
	// (cross-core/cross-socket traffic) on a steal attempt.
	StealCost float64
	// SignalCost is the OS signal-delivery latency of the signal-based
	// schedulers (footnote 2 of the paper).
	SignalCost float64
	// LoopCost is the cost of one scheduler-loop iteration (victim
	// selection, bookkeeping).
	LoopCost float64
}

// Machines are the three computers of Table 1 of the paper. The cost
// parameters reflect their microarchitectures qualitatively: the 4-socket
// Opteron (AMD32) has the most expensive fences and cross-socket steals;
// the Broadwell Intel16 the cheapest synchronization and fastest signal
// delivery; the Sandy Bridge Intel12 sits between.
var Machines = []Machine{
	{Name: "Intel12", Cores: 12, FenceCost: 25, CASCost: 45, StealCost: 180, SignalCost: 1500, LoopCost: 12},
	{Name: "AMD32", Cores: 32, FenceCost: 40, CASCost: 60, StealCost: 260, SignalCost: 2200, LoopCost: 14},
	{Name: "Intel16", Cores: 16, FenceCost: 22, CASCost: 40, StealCost: 160, SignalCost: 1200, LoopCost: 11},
}

// MachineByName returns the machine profile with the given Table 1 name.
func MachineByName(name string) (Machine, bool) {
	for _, m := range Machines {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}

// WorkerSweep returns the worker counts the paper's figures use for this
// machine: powers of two up to the core count, plus the core count.
func (m Machine) WorkerSweep() []int {
	var out []int
	for p := 1; p < m.Cores; p *= 2 {
		out = append(out, p)
	}
	out = append(out, m.Cores)
	return out
}
