package sim

import (
	"fmt"
	"os"
	"testing"

	"lcws"
)

// TestCalibrationReport prints the aggregate sweep statistics used to tune
// the cost model against the paper's reported numbers. Run with -v.
func TestCalibrationReport(t *testing.T) {
	if os.Getenv("LCWS_CALIBRATION") == "" {
		t.Skip("set LCWS_CALIBRATION=1 to print the calibration sweep")
	}
	pols := lcws.LCWSPolicies
	for _, m := range Machines {
		fmt.Printf("== %s ==\n", m.Name)
		sweep := m.WorkerSweep()
		wins := make(map[lcws.Policy]int)
		totalConfigs := 0
		gains := map[float64]int{1.0: 0, 1.05: 0, 1.10: 0, 1.15: 0, 1.20: 0}
		sigConfigs := 0
		bestCount := map[lcws.Policy]int{}
		for _, P := range sweep {
			avg := map[lcws.Policy]float64{}
			winAtP := map[lcws.Policy]int{}
			n := 0
			for _, w := range Workloads() {
				ws := Simulate(w.Phases, lcws.WS, P, m, 33).Time
				bestPol, bestSp := lcws.Policy(0), 0.0
				for _, p := range pols {
					r := Simulate(w.Phases, p, P, m, 33)
					sp := Speedup(ws, r.Time)
					avg[p] += sp
					if sp > 1 {
						winAtP[p]++
					}
					if sp > bestSp {
						bestSp, bestPol = sp, p
					}
					if p == lcws.SignalLCWS {
						sigConfigs++
						for thr := range gains {
							if sp > thr {
								gains[thr]++
							}
						}
					}
				}
				bestCount[bestPol]++
				n++
			}
			totalConfigs += n
			fmt.Printf(" P=%2d  avg: ", P)
			for _, p := range pols {
				fmt.Printf("%s=%.3f ", p, avg[p]/float64(n))
			}
			fmt.Printf(" win%%: ")
			for _, p := range pols {
				fmt.Printf("%s=%2.0f%% ", p, 100*float64(winAtP[p])/float64(n))
				wins[p] += winAtP[p]
			}
			fmt.Println()
		}
		fmt.Printf(" overall win%%: ")
		for _, p := range pols {
			fmt.Printf("%s=%2.0f%% ", p, 100*float64(wins[p])/float64(totalConfigs))
		}
		fmt.Printf("\n signal gains: >1=%2.0f%% >5=%2.0f%% >10=%2.0f%% >15=%2.0f%% >20=%2.0f%%\n",
			100*float64(gains[1.0])/float64(sigConfigs),
			100*float64(gains[1.05])/float64(sigConfigs),
			100*float64(gains[1.10])/float64(sigConfigs),
			100*float64(gains[1.15])/float64(sigConfigs),
			100*float64(gains[1.20])/float64(sigConfigs))
		fmt.Printf(" best policy counts: %v\n", bestCount)
	}
}
