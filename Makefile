# Verification entry points. `make verify` is the full gate CI runs
# (.github/workflows/verify.yml); the narrower targets exist for local
# iteration.

GO ?= go
BIN := $(CURDIR)/bin

.PHONY: verify build test race vet census race-matrix fuzz-smoke stress lcwsvet bench-fork bench-steal bench-exec bench-mem bench-qos bench-elastic submit-stress trace-smoke clean

verify: build test race vet fuzz-smoke stress submit-stress trace-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Build the repo's concurrency linter and run it through go vet's
# -vettool protocol so test files and build-tag variants are covered.
lcwsvet:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/lcwsvet ./cmd/lcwsvet

vet: lcwsvet
	$(GO) vet -vettool=$(BIN)/lcwsvet ./...

# Regenerate ANALYSIS.json, the committed concurrency-manifest census
# (per-field access counts by declared class). CI re-runs this and
# fails on a diff, so discipline drift must land as a reviewed change.
census: lcwsvet
	$(BIN)/lcwsvet -report ANALYSIS.json ./...

# Race-detector smoke of the scheduler core and injector at the two
# interesting parallelism extremes: P=2 maximizes owner/thief
# interleaving on one victim, P=8 exercises the multi-victim paths.
race-matrix:
	GOMAXPROCS=2 $(GO) test -race -count=1 ./internal/core ./internal/injector
	GOMAXPROCS=8 $(GO) test -race -count=1 ./internal/core ./internal/injector
	GOMAXPROCS=4 $(GO) test -race -count=2 -run 'TestMultFree' ./internal/core

# 10-second fuzz smoke of the split deque's sequential-model fuzzer;
# regressions in the deque invariants surface here fast.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzSplitDequeOwnerOps -fuzztime=10s ./internal/deque

# Short adversarial soak across all policies under the race detector.
stress:
	$(GO) run -race ./cmd/deqstress -duration 20s

# Fork-overhead microbenchmarks: regenerates BENCH_fork.json (the perf
# trajectory document, see README) and prints a per-policy summary with
# the speedup against the recorded pre-optimization baseline.
bench-fork:
	$(GO) run ./cmd/lcwsbench -forkbench -forkjson BENCH_fork.json

# Steal-latency ping-pong benchmarks: regenerates BENCH_steal.json with
# the time-to-first-steal of the sleep-ladder baseline vs the StealBatch
# parking-lot mode (see README and DESIGN.md §8).
bench-steal:
	$(GO) run ./cmd/lcwsbench -stealbench -stealjson BENCH_steal.json

# Executor-lifecycle benchmarks: regenerates BENCH_exec.json comparing
# the per-Run cost of the resident pool against the spawn-per-run
# lifecycle the scheduler had before the persistent executor (see
# README and DESIGN.md §10).
bench-exec:
	$(GO) run ./cmd/lcwsbench -execbench -execjson BENCH_exec.json

# Memory benchmarks: regenerates BENCH_mem.json measuring steady-state
# HeapInuse across the mixed-width job stream (the flat-memory claim of
# the bounded freelists and recycle shards) plus the deque growth/spill
# engagement runs (see README and DESIGN.md §12). The flatness gate
# itself is TestMemFlatAcrossJobs in internal/perf.
bench-mem:
	$(GO) run ./cmd/lcwsbench -membench -memjson BENCH_mem.json

# Multi-tenant QoS benchmarks: regenerates BENCH_qos.json measuring the
# weighted-fair injector's pickup shares over a pre-stacked backlog and
# the High class's pickup latency under a saturating Low flood, with an
# all-Normal control showing the backlog latency QoS removes (see
# README). The fairness and starvation gates themselves are
# TestQoSWeightedSharesConverge and TestQoSHighNotStarvedUnderLowFlood
# in internal/perf.
bench-qos:
	$(GO) run ./cmd/lcwsbench -qosbench -qosjson BENCH_qos.json

# Elastic-pool lifecycle benchmark: regenerates BENCH_elastic.json
# walking each policy's pool through demand growth, retire-on-idle, the
# idle CPU-cost window, and regrowth over recycled slots (see README).
# The lifecycle gate itself is TestElasticLifecycle in internal/perf.
bench-elastic:
	$(GO) run ./cmd/lcwsbench -elasticbench -elasticjson BENCH_elastic.json

# Concurrent-submission soak under the race detector: many submitter
# goroutines, overlapping jobs, panics and cancellations over one
# resident pool.
submit-stress:
	$(GO) test -race -run 'TestConcurrentSubmitters|TestCloseRacesInFlightSubmissions|TestPanicFailsOnlyItsJob|TestPerJobStatsExactUnderOverlap|TestCancelMidJob|TestMultFreeParForShadowStress' -count=2 ./internal/core

# Flight-recorder smoke: run a traced oversubscribed workload, export
# its Chrome trace (TRACE_OUT, default trace.json) and validate the
# trace_event schema with cmd/tracecheck. The file loads directly in
# Perfetto (https://ui.perfetto.dev) or chrome://tracing.
TRACE_OUT ?= trace.json
trace-smoke:
	$(GO) run ./cmd/lcwsbench -trace $(TRACE_OUT)
	$(GO) run ./cmd/tracecheck $(TRACE_OUT)

clean:
	rm -rf $(BIN)
