package fig

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// chart geometry.
const (
	chartHeight = 16
	chartColW   = 9 // columns per x position
)

// RenderChart writes the figure as ASCII charts: box plots render as
// whisker columns (min–max whiskers, q1–q3 box, median marker) and series
// panels as point charts with one symbol per series. It complements
// Render (exact numbers) for eyeballing shapes against the paper's plots.
func (f *Figure) RenderChart(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(w, "\n  (%s)  [y: %s]\n", p.Title, p.YLabel)
		if p.Boxes != nil {
			renderBoxChart(w, &p)
		}
		if len(p.Series) > 0 {
			renderSeriesChart(w, &p)
		}
	}
	fmt.Fprintln(w)
}

// yScale computes the panel's y range with a small margin.
func yScale(lo, hi float64) (float64, float64) {
	if !(hi > lo) { // equal or NaN ordering
		hi = lo + 1
	}
	margin := (hi - lo) * 0.05
	return lo - margin, hi + margin
}

// rowOf maps value v into a chart row (0 = top).
func rowOf(v, lo, hi float64) int {
	frac := (v - lo) / (hi - lo)
	r := chartHeight - 1 - int(math.Round(frac*float64(chartHeight-1)))
	if r < 0 {
		r = 0
	}
	if r >= chartHeight {
		r = chartHeight - 1
	}
	return r
}

func renderBoxChart(w io.Writer, p *Panel) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range p.Boxes {
		lo = math.Min(lo, b.Min)
		hi = math.Max(hi, b.Max)
	}
	lo, hi = yScale(lo, hi)
	grid := newGrid(len(p.X))
	for i, b := range p.Boxes {
		col := i*chartColW + chartColW/2
		for r := rowOf(b.Max, lo, hi); r <= rowOf(b.Min, lo, hi); r++ {
			grid.set(r, col, '|')
		}
		for r := rowOf(b.Q3, lo, hi); r <= rowOf(b.Q1, lo, hi); r++ {
			grid.set(r, col-1, '[')
			grid.set(r, col, '#')
			grid.set(r, col+1, ']')
		}
		grid.set(rowOf(b.Median, lo, hi), col, '=')
	}
	grid.flush(w, p, lo, hi)
}

// seriesMarks are the per-series point symbols.
var seriesMarks = []byte{'*', 'o', '+', 'x', '@', '%'}

func renderSeriesChart(w io.Writer, p *Panel) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for _, v := range s.Y {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	lo, hi = yScale(lo, hi)
	grid := newGrid(len(p.X))
	for si, s := range p.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i, v := range s.Y {
			col := i*chartColW + chartColW/2 + si - len(p.Series)/2
			grid.set(rowOf(v, lo, hi), col, mark)
		}
	}
	grid.flush(w, p, lo, hi)
	legend := "    legend:"
	for si, s := range p.Series {
		legend += fmt.Sprintf("  %c=%s", seriesMarks[si%len(seriesMarks)], s.Label)
	}
	fmt.Fprintln(w, legend)
}

// textGrid is a fixed-size character canvas.
type textGrid struct {
	rows  [][]byte
	width int
}

func newGrid(nx int) *textGrid {
	width := nx * chartColW
	g := &textGrid{width: width}
	for r := 0; r < chartHeight; r++ {
		g.rows = append(g.rows, []byte(strings.Repeat(" ", width)))
	}
	return g
}

func (g *textGrid) set(r, c int, ch byte) {
	if r < 0 || r >= chartHeight || c < 0 || c >= g.width {
		return
	}
	g.rows[r][c] = ch
}

// flush writes the canvas with a y-axis scale and the x labels.
func (g *textGrid) flush(w io.Writer, p *Panel, lo, hi float64) {
	for r := 0; r < chartHeight; r++ {
		yv := hi - (hi-lo)*float64(r)/float64(chartHeight-1)
		label := "        "
		// Label the top, middle and bottom rows, plus the row closest
		// to y = 1 (the speedup-parity line, drawn as dashes).
		if r == 0 || r == chartHeight-1 || r == chartHeight/2 {
			label = fmt.Sprintf("%8.3f", yv)
		}
		line := string(g.rows[r])
		if lo < 1 && hi > 1 && r == rowOf(1, lo, hi) {
			marked := []byte(line)
			for c := range marked {
				if marked[c] == ' ' {
					marked[c] = '-'
				}
			}
			line = string(marked)
			if label == "        " {
				label = "   1.000"
			}
		}
		fmt.Fprintf(w, "  %s |%s\n", label, line)
	}
	xAxis := "           "
	for _, x := range p.X {
		xAxis += fmt.Sprintf("%-*d", chartColW, x)
	}
	fmt.Fprintf(w, "           %s\n", strings.Repeat("-", g.width))
	fmt.Fprintln(w, xAxis)
}
