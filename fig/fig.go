// Package fig regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 3–8, and the §5.1/§5.2/§5.4 statistics).
//
// Two data sources feed the figures, mirroring DESIGN.md §2:
//
//   - Counter figures (3 and 8) come from real executions of the pbbs
//     benchmark suite on the actual schedulers, reading the
//     synchronization-operation counters (the figures are ratios of
//     counts, which are hardware-independent).
//   - Speedup figures (4–7) and the §5 statistics come from the
//     deterministic simulator (package sim) sweeping the three Table 1
//     machine profiles, because genuine multi-core wall-clock speedups
//     cannot be measured on this reproduction's hosts.
//
// Figures render as aligned text (Render) and as CSV (WriteCSV) so the
// series can be re-plotted directly against the paper's charts.
package fig

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Box summarizes a box plot's five-number summary over one group of
// samples (one x position of the paper's box plots).
type Box struct {
	Min, Q1, Median, Q3, Max float64
	N                        int
}

// NewBox computes the five-number summary of values. It panics on an
// empty input.
func NewBox(values []float64) Box {
	if len(values) == 0 {
		panic("fig: empty box")
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	return Box{
		Min:    v[0],
		Q1:     quantile(v, 0.25),
		Median: quantile(v, 0.5),
		Q3:     quantile(v, 0.75),
		Max:    v[len(v)-1],
		N:      len(v),
	}
}

// quantile returns the q-quantile of sorted values by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Panel is one subplot: either box plots (Boxes non-nil, one Box per X)
// or line series (Series non-empty, each with one Y per X).
type Panel struct {
	Title  string
	XLabel string
	YLabel string
	X      []int
	Boxes  []Box
	Series []Series
}

// Series is one labelled line of a panel.
type Series struct {
	Label string
	Y     []float64
}

// Figure is a paper figure: an identifier and its panels.
type Figure struct {
	ID     string // e.g. "Figure 3"
	Title  string
	Panels []Panel
}

// Render writes the figure as aligned text tables.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	for _, p := range f.Panels {
		fmt.Fprintf(w, "\n  (%s)  [x: %s, y: %s]\n", p.Title, p.XLabel, p.YLabel)
		if p.Boxes != nil {
			fmt.Fprintf(w, "    %8s %10s %10s %10s %10s %10s %5s\n",
				p.XLabel, "min", "q1", "median", "q3", "max", "n")
			for i, x := range p.X {
				b := p.Boxes[i]
				fmt.Fprintf(w, "    %8d %10.4f %10.4f %10.4f %10.4f %10.4f %5d\n",
					x, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
			}
		}
		if len(p.Series) > 0 {
			header := fmt.Sprintf("    %8s", p.XLabel)
			for _, s := range p.Series {
				header += fmt.Sprintf(" %10s", s.Label)
			}
			fmt.Fprintln(w, header)
			for i, x := range p.X {
				row := fmt.Sprintf("    %8d", x)
				for _, s := range p.Series {
					row += fmt.Sprintf(" %10.4f", s.Y[i])
				}
				fmt.Fprintln(w, row)
			}
		}
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the figure's data as CSV rows:
// figure,panel,x,series,value for series panels and
// figure,panel,x,min,q1,median,q3,max for box panels.
func (f *Figure) WriteCSV(w io.Writer) {
	for _, p := range f.Panels {
		if p.Boxes != nil {
			fmt.Fprintf(w, "figure,panel,x,min,q1,median,q3,max,n\n")
			for i, x := range p.X {
				b := p.Boxes[i]
				fmt.Fprintf(w, "%s,%s,%d,%g,%g,%g,%g,%g,%d\n",
					csvEscape(f.ID), csvEscape(p.Title), x, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
			}
		}
		if len(p.Series) > 0 {
			fmt.Fprintf(w, "figure,panel,x,series,value\n")
			for i, x := range p.X {
				for _, s := range p.Series {
					fmt.Fprintf(w, "%s,%s,%d,%s,%g\n",
						csvEscape(f.ID), csvEscape(p.Title), x, csvEscape(s.Label), s.Y[i])
				}
			}
		}
	}
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// mean returns the arithmetic mean of values (0 for empty input).
func mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// fractionAbove returns the fraction of values strictly above threshold.
func fractionAbove(values []float64, threshold float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v > threshold {
			n++
		}
	}
	return float64(n) / float64(len(values))
}
