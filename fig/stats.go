package fig

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"lcws"
)

// benchOf extracts the benchmark name from an "benchmark/input" instance
// name.
func benchOf(instance string) string {
	if i := strings.IndexByte(instance, '/'); i >= 0 {
		return instance[:i]
	}
	return instance
}

// Stats51 renders the §5.1 statistics for USLCWS: per-machine average
// gain over all configurations, the average at and below half the core
// count, and the best/worst configuration per benchmark.
func Stats51(w io.Writer, sweeps []*SimSweep) {
	fmt.Fprintln(w, "§5.1 statistics — USLCWS vs WS")
	for _, ss := range sweeps {
		var all, lowP []float64
		for _, p := range ss.Workers {
			sp := ss.speedups(lcws.USLCWS, p)
			all = append(all, sp...)
			if p <= ss.Machine.Cores/2 {
				lowP = append(lowP, sp...)
			}
		}
		atCores := ss.speedups(lcws.USLCWS, ss.Machine.Cores)
		fmt.Fprintf(w, "  %s: overall avg %.3f; avg at P<=cores/2 %.3f; avg at P=cores %.3f\n",
			ss.Machine.Name, mean(all), mean(lowP), mean(atCores))

		// Best and worst configuration per benchmark on this machine.
		best := map[string]float64{}
		worst := map[string]float64{}
		for _, name := range ss.Instances {
			b := benchOf(name)
			for _, p := range ss.Workers {
				sp := ss.Speedup(name, lcws.USLCWS, p)
				if cur, ok := best[b]; !ok || sp > cur {
					best[b] = sp
				}
				if cur, ok := worst[b]; !ok || sp < cur {
					worst[b] = sp
				}
			}
		}
		bmin, bmax := extremes(best)
		wmin, wmax := extremes(worst)
		fmt.Fprintf(w, "    best-config gains per benchmark span %+.1f%% .. %+.1f%%; worst-config span %+.1f%% .. %+.1f%%\n",
			100*(bmin-1), 100*(bmax-1), 100*(wmin-1), 100*(wmax-1))
	}
}

func extremes(m map[string]float64) (lo, hi float64) {
	first := true
	for _, v := range m {
		if first {
			lo, hi = v, v
			first = false
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// Stats52 renders the §5.2 statistics for the signal-based scheduler:
// per-machine fraction of configurations with speedup above 1 and the
// gain buckets (>5%, >10%, >15%, >20%), the average at P = cores, and
// the worst configurations.
func Stats52(w io.Writer, sweeps []*SimSweep) {
	fmt.Fprintln(w, "§5.2 statistics — signal-based LCWS vs WS")
	for _, ss := range sweeps {
		var all []float64
		for _, p := range ss.Workers {
			all = append(all, ss.speedups(lcws.SignalLCWS, p)...)
		}
		atCores := mean(ss.speedups(lcws.SignalLCWS, ss.Machine.Cores))
		fmt.Fprintf(w, "  %s: avg at P=cores %.3f; speedup>1 for %.0f%% of executions; gains >5%%: %.0f%%, >10%%: %.0f%%, >15%%: %.0f%%, >20%%: %.0f%%\n",
			ss.Machine.Name, atCores,
			100*fractionAbove(all, 1),
			100*fractionAbove(all, 1.05),
			100*fractionAbove(all, 1.10),
			100*fractionAbove(all, 1.15),
			100*fractionAbove(all, 1.20))

		// Worst configurations (the paper names decisionTree/covtype and
		// backForwardBFS/3Dgrid at high worker counts).
		type cfg struct {
			name string
			p    int
			sp   float64
		}
		var worst []cfg
		for _, name := range ss.Instances {
			for _, p := range ss.Workers {
				worst = append(worst, cfg{name, p, ss.Speedup(name, lcws.SignalLCWS, p)})
			}
		}
		sort.Slice(worst, func(a, b int) bool { return worst[a].sp < worst[b].sp })
		fmt.Fprintf(w, "    worst configurations:")
		for _, c := range worst[:3] {
			fmt.Fprintf(w, "  ⟨%s, %d⟩ %.2f", c.name, c.p, c.sp)
		}
		fmt.Fprintln(w)
	}
}

// Stats54 renders the §5.4 statistics: for how many configurations each
// LCWS variant is the best of the four, per machine, plus Expose Half's
// best/worst gains.
func Stats54(w io.Writer, sweeps []*SimSweep) {
	fmt.Fprintln(w, "§5.4 statistics — Conservative Exposure and Expose Half")
	for _, ss := range sweeps {
		bestCount := map[lcws.Policy]int{}
		total := 0
		var halfAll []float64
		for _, name := range ss.Instances {
			for _, p := range ss.Workers {
				bestPol, bestSp := lcws.Policy(0), -1.0
				for _, pol := range lcws.LCWSPolicies {
					sp := ss.Speedup(name, pol, p)
					if sp > bestSp {
						bestSp, bestPol = sp, pol
					}
					if pol == lcws.HalfLCWS {
						halfAll = append(halfAll, sp)
					}
				}
				bestCount[bestPol]++
				total++
			}
		}
		fmt.Fprintf(w, "  %s: best-variant share:", ss.Machine.Name)
		for _, pol := range lcws.LCWSPolicies {
			fmt.Fprintf(w, "  %s %.0f%%", pol, 100*float64(bestCount[pol])/float64(total))
		}
		lo, hi := minMax(halfAll)
		fmt.Fprintf(w, "; Half speedups span %+.1f%% .. %+.1f%%\n", 100*(lo-1), 100*(hi-1))
	}
}

func minMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Table1 renders the paper's Table 1: the simulated machine profiles.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — Computers used in the (simulated) experimental evaluation")
	fmt.Fprintf(w, "  %-8s %-30s %-14s %s\n", "Name", "CPU (profile)", "Cores/Threads", "Cost model (fence/CAS/steal/signal)")
	rows := []struct{ name, cpu, ct string }{
		{"Intel12", "2 x Intel Xeon E5-2620 v2", "12/24"},
		{"AMD32", "4 x AMD Opteron 6272", "32/64"},
		{"Intel16", "2 x Intel Xeon E5-2609 v4", "16/16"},
	}
	for _, r := range rows {
		for _, m := range machinesForTable() {
			if m.Name == r.name {
				fmt.Fprintf(w, "  %-8s %-30s %-14s %.0f/%.0f/%.0f/%.0f cycles\n",
					r.name, r.cpu, r.ct, m.FenceCost, m.CASCost, m.StealCost, m.SignalCost)
			}
		}
	}
}
