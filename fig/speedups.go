package fig

import (
	"lcws"
	"lcws/sim"
)

// SimSweep holds simulated runtimes of every benchmark configuration on
// one machine profile: Times[instance][policy][workers]. It feeds
// Figures 4–7 and the §5 statistics.
type SimSweep struct {
	Machine   sim.Machine
	Workers   []int
	Instances []string
	Times     map[string]map[lcws.Policy]map[int]float64
}

// simPolicies is the WS baseline, the paper's four LCWS variants, and
// the Lace comparator (used by the FigureLace extension).
var simPolicies = []lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS, lcws.ConsLCWS, lcws.HalfLCWS, lcws.LaceWS}

// RunSimSweep simulates every workload model under every policy for each
// worker count on machine m. Deterministic in seed.
func RunSimSweep(m sim.Machine, workers []int, seed uint64) *SimSweep {
	if workers == nil {
		workers = m.WorkerSweep()
	}
	out := &SimSweep{Machine: m, Workers: workers, Times: map[string]map[lcws.Policy]map[int]float64{}}
	for _, w := range sim.Workloads() {
		w := w
		name := w.Name()
		out.Instances = append(out.Instances, name)
		out.Times[name] = map[lcws.Policy]map[int]float64{}
		for _, pol := range simPolicies {
			out.Times[name][pol] = map[int]float64{}
			for _, p := range workers {
				out.Times[name][pol][p] = sim.Simulate(w.Phases, pol, p, m, seed).Time
			}
		}
	}
	return out
}

// Speedup returns the speedup of pol against the WS baseline for one
// configuration.
func (ss *SimSweep) Speedup(instance string, pol lcws.Policy, workers int) float64 {
	return sim.Speedup(ss.Times[instance][lcws.WS][workers], ss.Times[instance][pol][workers])
}

// speedups collects pol's speedup over every instance at one worker
// count.
func (ss *SimSweep) speedups(pol lcws.Policy, workers int) []float64 {
	out := make([]float64, 0, len(ss.Instances))
	for _, name := range ss.Instances {
		out = append(out, ss.Speedup(name, pol, workers))
	}
	return out
}

// boxFigure builds a per-machine box plot figure of pol's speedups
// (Figures 4 and 7 of the paper).
func boxFigure(id, title string, sweeps []*SimSweep, pol lcws.Policy) *Figure {
	f := &Figure{ID: id, Title: title}
	for _, ss := range sweeps {
		boxes := make([]Box, len(ss.Workers))
		for i, p := range ss.Workers {
			boxes[i] = NewBox(ss.speedups(pol, p))
		}
		f.Panels = append(f.Panels, Panel{
			Title:  ss.Machine.Name,
			XLabel: "workers",
			YLabel: "speedup vs WS",
			X:      ss.Workers,
			Boxes:  boxes,
		})
	}
	return f
}

// Figure4 reproduces the paper's Figure 4: box plots of USLCWS's speedup
// against WS per machine, varying the worker count over all benchmark
// configurations.
func Figure4(sweeps []*SimSweep) *Figure {
	return boxFigure("Figure 4", "Speedup of USLCWS vs WS (box over all configurations)", sweeps, lcws.USLCWS)
}

// Figure7 reproduces the paper's Figure 7: box plots of the signal-based
// version's speedup against WS per machine.
func Figure7(sweeps []*SimSweep) *Figure {
	return boxFigure("Figure 7", "Speedup of signal-based LCWS vs WS (box over all configurations)", sweeps, lcws.SignalLCWS)
}

// Figure5 reproduces the paper's Figure 5: per-machine average speedups
// of the four LCWS variants against WS, varying the worker count.
func Figure5(sweeps []*SimSweep) *Figure {
	f := &Figure{ID: "Figure 5", Title: "Average speedups vs WS (User, Signal, Cons, Half)"}
	for _, ss := range sweeps {
		panel := Panel{
			Title:  ss.Machine.Name,
			XLabel: "workers",
			YLabel: "avg speedup",
			X:      ss.Workers,
		}
		for _, pol := range lcws.LCWSPolicies {
			ys := make([]float64, len(ss.Workers))
			for i, p := range ss.Workers {
				ys[i] = mean(ss.speedups(pol, p))
			}
			panel.Series = append(panel.Series, Series{Label: pol.String(), Y: ys})
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// FigureLace is an extension beyond the paper: it compares the Lace
// comparator (related work §2) against USLCWS and the signal-based
// scheduler, per machine — average speedup over WS by worker count.
// The paper argues Lace's task-boundary request handling gives little
// room for parallelism on coarse sequential tasks; this figure measures
// that contrast directly.
func FigureLace(sweeps []*SimSweep) *Figure {
	f := &Figure{ID: "Figure L (extension)", Title: "Lace vs USLCWS vs signal-based LCWS: average speedup over WS"}
	for _, ss := range sweeps {
		panel := Panel{
			Title:  ss.Machine.Name,
			XLabel: "workers",
			YLabel: "avg speedup",
			X:      ss.Workers,
		}
		for _, pol := range []lcws.Policy{lcws.USLCWS, lcws.SignalLCWS, lcws.LaceWS} {
			ys := make([]float64, len(ss.Workers))
			for i, p := range ss.Workers {
				ys[i] = mean(ss.speedups(pol, p))
			}
			panel.Series = append(panel.Series, Series{Label: pol.String(), Y: ys})
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}

// Figure6 reproduces the paper's Figure 6: the percentage of benchmark
// configurations on which each variant obtained a speedup above 1,
// varying the worker count, per machine.
func Figure6(sweeps []*SimSweep) *Figure {
	f := &Figure{ID: "Figure 6", Title: "% of configurations with speedup > 1"}
	for _, ss := range sweeps {
		panel := Panel{
			Title:  ss.Machine.Name,
			XLabel: "workers",
			YLabel: "% configs > 1",
			X:      ss.Workers,
		}
		for _, pol := range lcws.LCWSPolicies {
			ys := make([]float64, len(ss.Workers))
			for i, p := range ss.Workers {
				ys[i] = 100 * fractionAbove(ss.speedups(pol, p), 1)
			}
			panel.Series = append(panel.Series, Series{Label: pol.String(), Y: ys})
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}
