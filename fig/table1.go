package fig

import "lcws/sim"

// machinesForTable exposes the sim machine profiles to Table1.
func machinesForTable() []sim.Machine { return sim.Machines }
