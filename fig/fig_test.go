package fig

import (
	"bytes"
	"strings"
	"testing"

	"lcws"
	"lcws/pbbs"
	"lcws/sim"
)

// quickCounterSweep runs a small real-execution sweep shared by tests.
var quickSweep *CounterSweep

func getQuickSweep(t *testing.T) *CounterSweep {
	t.Helper()
	if quickSweep == nil {
		quickSweep = RunCounterSweep(pbbs.Scale(0.02), []int{2, 4},
			[]lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS}, 1)
	}
	return quickSweep
}

func quickSimSweeps() []*SimSweep {
	var out []*SimSweep
	for _, m := range sim.Machines {
		out = append(out, RunSimSweep(m, []int{1, 2, m.Cores}, 17))
	}
	return out
}

func TestNewBoxQuartiles(t *testing.T) {
	b := NewBox([]float64{5, 1, 3, 2, 4})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.N != 5 {
		t.Errorf("box = %+v", b)
	}
	if b.Q1 != 2 || b.Q3 != 4 {
		t.Errorf("quartiles = %v, %v", b.Q1, b.Q3)
	}
	single := NewBox([]float64{7})
	if single.Min != 7 || single.Q1 != 7 || single.Median != 7 || single.Max != 7 {
		t.Errorf("single box = %+v", single)
	}
}

func TestNewBoxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBox(nil) did not panic")
		}
	}()
	NewBox(nil)
}

func TestMeanAndFractionAbove(t *testing.T) {
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
	if mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := fractionAbove([]float64{0.5, 1.5, 2.5, 1.0}, 1); got != 0.5 {
		t.Errorf("fractionAbove = %v, want 0.5", got)
	}
}

func TestCounterSweepAndFigure3(t *testing.T) {
	cs := getQuickSweep(t)
	if len(cs.Instances) < 25 {
		t.Fatalf("sweep covered %d instances", len(cs.Instances))
	}
	f := Figure3(cs)
	if len(f.Panels) != 4 {
		t.Fatalf("Figure 3 has %d panels, want 4", len(f.Panels))
	}
	// Headline result: USLCWS executes a small fraction of WS's fences
	// (the paper reports < 1%–few %); the median ratio must be well
	// below 1 at every worker count.
	for i := range f.Panels[0].X {
		if med := f.Panels[0].Boxes[i].Median; med >= 0.5 {
			t.Errorf("fence ratio median at P=%d is %v; expected far below 1", f.Panels[0].X[i], med)
		}
	}
	// CAS ratio must also be below 1 in the median.
	for i := range f.Panels[1].X {
		if med := f.Panels[1].Boxes[i].Median; med >= 1 {
			t.Errorf("CAS ratio median at P=%d is %v; expected below 1", f.Panels[1].X[i], med)
		}
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing title")
	}
	var csv bytes.Buffer
	f.WriteCSV(&csv)
	if !strings.Contains(csv.String(), "figure,panel,x,min") {
		t.Error("CSV missing box header")
	}
}

func TestFigure8Shape(t *testing.T) {
	cs := getQuickSweep(t)
	f := Figure8(cs)
	if len(f.Panels) != 8 {
		t.Fatalf("Figure 8 has %d panels, want 8", len(f.Panels))
	}
	// Signal-based LCWS also runs with a small fraction of WS's fences.
	for i := range f.Panels[0].X {
		if med := f.Panels[0].Boxes[i].Median; med >= 0.5 {
			t.Errorf("signal fence ratio median at P=%d is %v", f.Panels[0].X[i], med)
		}
	}
}

func TestSimSweepSpeedupFigures(t *testing.T) {
	sweeps := quickSimSweeps()
	f4 := Figure4(sweeps)
	f5 := Figure5(sweeps)
	f6 := Figure6(sweeps)
	f7 := Figure7(sweeps)
	if len(f4.Panels) != 3 || len(f5.Panels) != 3 || len(f6.Panels) != 3 || len(f7.Panels) != 3 {
		t.Fatal("speedup figures must have one panel per machine")
	}
	for _, sw := range sweeps {
		// Paper headline shapes: at P=1 every LCWS variant beats WS...
		for _, pol := range lcws.LCWSPolicies {
			if sp := mean(sw.speedups(pol, 1)); sp <= 1 {
				t.Errorf("%s: %v avg speedup at P=1 is %.3f, want > 1", sw.Machine.Name, pol, sp)
			}
		}
		// ...and at P=cores the signal-based scheduler is on par with WS
		// (paper: 99%–102%).
		atCores := mean(sw.speedups(lcws.SignalLCWS, sw.Machine.Cores))
		if atCores < 0.9 || atCores > 1.1 {
			t.Errorf("%s: Signal avg at P=cores is %.3f, want ≈ 1", sw.Machine.Name, atCores)
		}
		// USLCWS at P=cores falls below Signal (the paper's reason for
		// building the signal-based version).
		us := mean(sw.speedups(lcws.USLCWS, sw.Machine.Cores))
		if us >= atCores {
			t.Errorf("%s: USLCWS at P=cores (%.3f) should trail Signal (%.3f)", sw.Machine.Name, us, atCores)
		}
	}
	// Figure 6 series are percentages.
	for _, p := range f6.Panels {
		for _, s := range p.Series {
			for _, y := range s.Y {
				if y < 0 || y > 100 {
					t.Errorf("Figure 6 value %v out of [0,100]", y)
				}
			}
		}
	}
}

func TestStatsRender(t *testing.T) {
	sweeps := quickSimSweeps()
	var buf bytes.Buffer
	Stats51(&buf, sweeps)
	Stats52(&buf, sweeps)
	Stats54(&buf, sweeps)
	out := buf.String()
	for _, want := range []string{"§5.1", "§5.2", "§5.4", "AMD32", "Intel12", "Intel16", "best-variant share"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q", want)
		}
	}
}

func TestTable1Render(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, want := range []string{"Intel12", "AMD32", "Intel16", "12/24", "32/64", "16/16"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape("plain") != "plain" {
		t.Error("plain string escaped")
	}
	if csvEscape(`a,b`) != `"a,b"` {
		t.Error("comma not quoted")
	}
	if csvEscape(`a"b`) != `"a""b"` {
		t.Error("quote not doubled")
	}
}

func TestBenchOf(t *testing.T) {
	if benchOf("integerSort/randomSeq_int") != "integerSort" {
		t.Error("benchOf failed")
	}
	if benchOf("noslash") != "noslash" {
		t.Error("benchOf without slash failed")
	}
}

func TestRenderChartBoxAndSeries(t *testing.T) {
	f := &Figure{
		ID:    "Figure T",
		Title: "chart test",
		Panels: []Panel{
			{
				Title: "boxes", XLabel: "workers", YLabel: "speedup",
				X: []int{1, 2, 4},
				Boxes: []Box{
					{Min: 0.8, Q1: 0.95, Median: 1.0, Q3: 1.05, Max: 1.2, N: 5},
					{Min: 0.9, Q1: 0.98, Median: 1.02, Q3: 1.08, Max: 1.15, N: 5},
					{Min: 0.7, Q1: 0.9, Median: 0.97, Q3: 1.01, Max: 1.1, N: 5},
				},
			},
			{
				Title: "series", XLabel: "workers", YLabel: "avg",
				X: []int{1, 2, 4},
				Series: []Series{
					{Label: "A", Y: []float64{1.0, 1.1, 0.9}},
					{Label: "B", Y: []float64{1.05, 1.0, 0.95}},
				},
			},
		},
	}
	var buf bytes.Buffer
	f.RenderChart(&buf)
	out := buf.String()
	for _, want := range []string{"Figure T", "boxes", "series", "legend:", "A", "B", "=", "#", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart output missing %q", want)
		}
	}
	// The parity line (y=1) must be drawn since the range straddles 1.
	if !strings.Contains(out, "1.000") {
		t.Error("chart missing the y=1 parity label")
	}
}

func TestRenderChartDegenerateRange(t *testing.T) {
	f := &Figure{ID: "X", Title: "flat", Panels: []Panel{{
		Title: "flat", X: []int{1}, Series: []Series{{Label: "s", Y: []float64{2, 2, 2}[:1]}},
	}}}
	var buf bytes.Buffer
	f.RenderChart(&buf) // must not panic on zero-span y range
	if buf.Len() == 0 {
		t.Error("no output")
	}
}

func TestFigureMultiprog(t *testing.T) {
	// One small machine keeps the test quick.
	machines := []sim.Machine{sim.Machines[0]}
	f := FigureMultiprog(machines, 21)
	if len(f.Panels) != 1 || len(f.Panels[0].Series) != 4 {
		t.Fatalf("multiprog figure shape wrong: %d panels", len(f.Panels))
	}
	for _, s := range f.Panels[0].Series {
		for i, y := range s.Y {
			if y < 0.99 {
				t.Errorf("%s: slowdown %v below 1 at x=%d", s.Label, y, f.Panels[0].X[i])
			}
			if y > 4 {
				t.Errorf("%s: slowdown %v implausibly large", s.Label, y)
			}
		}
		// Full availability during the "revocation" window must be free.
		if last := s.Y[len(s.Y)-1]; last != 1 {
			t.Errorf("%s: no-revocation slowdown = %v, want exactly 1", s.Label, last)
		}
	}
}

// TestSimAndRealCounterModesAgree cross-validates the two measurement
// modes: the simulator and the real schedulers must agree on the
// headline synchronization ratios (LCWS fences a tiny fraction of WS's,
// CAS well below WS's) at the same worker count.
func TestSimAndRealCounterModesAgree(t *testing.T) {
	const workers = 4

	// Real executions, aggregated over the suite.
	cs := getQuickSweep(t)
	var realWS, realSig lcws.Stats
	for _, name := range cs.Instances {
		ws := cs.Stats[name][lcws.WS][workers]
		sg := cs.Stats[name][lcws.SignalLCWS][workers]
		realWS.Fences += ws.Fences
		realWS.CAS += ws.CAS
		realSig.Fences += sg.Fences
		realSig.CAS += sg.CAS
	}
	realFenceRatio := float64(realSig.Fences) / float64(realWS.Fences)
	realCASRatio := float64(realSig.CAS) / float64(realWS.CAS)

	// Simulated executions over the workload models.
	m, _ := sim.MachineByName("AMD32")
	var simWS, simSig sim.Result
	for _, w := range sim.Workloads() {
		ws := sim.Simulate(w.Phases, lcws.WS, workers, m, 3)
		sg := sim.Simulate(w.Phases, lcws.SignalLCWS, workers, m, 3)
		simWS.Fences += ws.Fences
		simWS.CAS += ws.CAS
		simSig.Fences += sg.Fences
		simSig.CAS += sg.CAS
	}
	simFenceRatio := float64(simSig.Fences) / float64(simWS.Fences)
	simCASRatio := float64(simSig.CAS) / float64(simWS.CAS)

	t.Logf("fence ratio: real %.4f, sim %.4f", realFenceRatio, simFenceRatio)
	t.Logf("CAS ratio:   real %.4f, sim %.4f", realCASRatio, simCASRatio)
	for name, r := range map[string]float64{
		"real fences": realFenceRatio, "sim fences": simFenceRatio,
	} {
		if r > 0.1 {
			t.Errorf("%s ratio %.4f; LCWS should eliminate almost all fences", name, r)
		}
	}
	for name, r := range map[string]float64{
		"real CAS": realCASRatio, "sim CAS": simCASRatio,
	} {
		if r > 0.6 {
			t.Errorf("%s ratio %.4f; LCWS should use well under WS's CAS", name, r)
		}
	}
}
