package fig

import (
	"fmt"
	"runtime"
	"sort"

	"lcws"
	"lcws/pbbs"
)

// CounterSweep holds the synchronization-operation counters of real
// benchmark executions: one lcws.Stats per ⟨instance, policy, workers⟩.
// It feeds Figures 3 and 8.
type CounterSweep struct {
	// Scale is the pbbs input scale the sweep ran at.
	Scale pbbs.Scale
	// Workers are the swept worker counts (the figures' x axes).
	Workers []int
	// Instances are the benchmark instance names, in suite order.
	Instances []string
	// Stats[instance][policy][workers] holds the run's counters.
	Stats map[string]map[lcws.Policy]map[int]lcws.Stats
}

// RunCounterSweep executes every pbbs suite instance once per
// ⟨policy, workers⟩ on the real schedulers and records the counters.
// Verification failures panic: a profile of an incorrect run would be
// meaningless.
//
// To obtain steal/exposure dynamics representative of a real multi-core
// machine even on hosts with fewer CPUs than the requested worker
// counts, the sweep raises GOMAXPROCS to the largest worker count for
// its duration and runs the schedulers with task-granular cooperative
// yielding (see lcws.WithYieldEvery).
func RunCounterSweep(scale pbbs.Scale, workers []int, policies []lcws.Policy, seed uint64) *CounterSweep {
	maxW := 1
	for _, p := range workers {
		if p > maxW {
			maxW = p
		}
	}
	if maxW > runtime.GOMAXPROCS(0) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(maxW))
	}
	sweep := &CounterSweep{
		Scale:   scale,
		Workers: workers,
		Stats:   map[string]map[lcws.Policy]map[int]lcws.Stats{},
	}
	for _, inst := range pbbs.Suite(scale) {
		name := inst.Name()
		sweep.Instances = append(sweep.Instances, name)
		sweep.Stats[name] = map[lcws.Policy]map[int]lcws.Stats{}
		job := inst.Prepare()
		for _, pol := range policies {
			sweep.Stats[name][pol] = map[int]lcws.Stats{}
			for _, p := range workers {
				s := lcws.New(lcws.WithWorkers(p), lcws.WithPolicy(pol), lcws.WithSeed(seed),
					lcws.WithYieldEvery(8))
				s.Run(job.Run)
				if err := job.Verify(); err != nil {
					panic(fmt.Sprintf("fig: %s under %v with %d workers failed verification: %v", name, pol, p, err))
				}
				sweep.Stats[name][pol][p] = s.Stats()
			}
		}
	}
	sort.Strings(sweep.Instances)
	return sweep
}

// ratioBoxes builds one Box per worker count from a per-instance ratio.
func (cs *CounterSweep) ratioBoxes(f func(name string, p int) (float64, bool)) []Box {
	out := make([]Box, len(cs.Workers))
	for i, p := range cs.Workers {
		var vals []float64
		for _, name := range cs.Instances {
			if v, ok := f(name, p); ok {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			vals = []float64{0}
		}
		out[i] = NewBox(vals)
	}
	return out
}

// ratio returns a/b, or (0, false) when b is zero.
func ratio(a, b uint64) (float64, bool) {
	if b == 0 {
		return 0, false
	}
	return float64(a) / float64(b), true
}

// Figure3 reproduces the paper's Figure 3: the profile of USLCWS against
// WS over all benchmark instances, varying the worker count — (a) memory
// fence ratio, (b) CAS ratio, (c) successful-steal ratio, (d) fraction of
// exposed work not stolen.
func Figure3(cs *CounterSweep) *Figure {
	boxPanel := func(title, ylabel string, f func(name string, p int) (float64, bool)) Panel {
		return Panel{Title: title, XLabel: "workers", YLabel: ylabel, X: cs.Workers, Boxes: cs.ratioBoxes(f)}
	}
	get := func(name string, pol lcws.Policy, p int) lcws.Stats { return cs.Stats[name][pol][p] }
	return &Figure{
		ID:    "Figure 3",
		Title: "Profile of USLCWS vs WS, all benchmarks (AMD32 profile)",
		Panels: []Panel{
			boxPanel("a: USLCWS fences / WS fences", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.USLCWS, p).Fences, get(n, lcws.WS, p).Fences)
			}),
			boxPanel("b: USLCWS CAS / WS CAS", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.USLCWS, p).CAS, get(n, lcws.WS, p).CAS)
			}),
			boxPanel("c: successful steals USLCWS / WS", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.USLCWS, p).StealSuccesses, get(n, lcws.WS, p).StealSuccesses)
			}),
			boxPanel("d: exposed work not stolen (USLCWS)", "fraction", func(n string, p int) (float64, bool) {
				st := get(n, lcws.USLCWS, p)
				if st.Exposures == 0 {
					return 0, false
				}
				return st.UnstolenFraction(), true
			}),
		},
	}
}

// Figure8 reproduces the paper's Figure 8: the profile of the
// signal-based LCWS implementation against WS (panels a–d) and against
// USLCWS (panels e–h), varying the worker count.
func Figure8(cs *CounterSweep) *Figure {
	boxPanel := func(title, ylabel string, f func(name string, p int) (float64, bool)) Panel {
		return Panel{Title: title, XLabel: "workers", YLabel: ylabel, X: cs.Workers, Boxes: cs.ratioBoxes(f)}
	}
	get := func(name string, pol lcws.Policy, p int) lcws.Stats { return cs.Stats[name][pol][p] }
	return &Figure{
		ID:    "Figure 8",
		Title: "Profile of signal-based LCWS vs WS and vs USLCWS (AMD32 profile)",
		Panels: []Panel{
			boxPanel("a: Signal fences / WS fences", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.SignalLCWS, p).Fences, get(n, lcws.WS, p).Fences)
			}),
			boxPanel("b: Signal CAS / WS CAS", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.SignalLCWS, p).CAS, get(n, lcws.WS, p).CAS)
			}),
			boxPanel("c: Signal steals / WS steals", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.SignalLCWS, p).StealSuccesses, get(n, lcws.WS, p).StealSuccesses)
			}),
			boxPanel("d: Signal unstolen fraction", "fraction", func(n string, p int) (float64, bool) {
				st := get(n, lcws.SignalLCWS, p)
				if st.Exposures == 0 {
					return 0, false
				}
				return st.UnstolenFraction(), true
			}),
			boxPanel("e: Signal fences / USLCWS fences", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.SignalLCWS, p).Fences, get(n, lcws.USLCWS, p).Fences)
			}),
			boxPanel("f: Signal CAS / USLCWS CAS", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.SignalLCWS, p).CAS, get(n, lcws.USLCWS, p).CAS)
			}),
			boxPanel("g: Signal steals / USLCWS steals", "ratio", func(n string, p int) (float64, bool) {
				return ratio(get(n, lcws.SignalLCWS, p).StealSuccesses, get(n, lcws.USLCWS, p).StealSuccesses)
			}),
			boxPanel("h: Signal unstolen / USLCWS unstolen", "ratio", func(n string, p int) (float64, bool) {
				a := get(n, lcws.SignalLCWS, p).UnstolenFraction()
				b := get(n, lcws.USLCWS, p).UnstolenFraction()
				if b == 0 {
					return 0, false
				}
				return a / b, true
			}),
		},
	}
}
