package fig

import (
	"lcws"
	"lcws/sim"
)

// FigureMultiprog is the multiprogrammed-environment extension experiment
// (beyond the paper's evaluation, motivated by its §1.1): mid-run — from
// 30% to 60% of each policy's full-machine completion time — a resource
// manager revokes cores so that only `avail` processors may run, and the
// figure reports completion time normalized to the policy's own
// full-machine run, averaged over all workloads (lower is better; 1.0
// means revocation was free). The window falls mid-run so revoked workers
// park holding work: under WS their whole deques stay stealable, while
// under the LCWS schedulers the private parts are stranded and exposure
// requests go unhandled until the cores return — the experiment measures
// that structural cost of privacy under revocation.
func FigureMultiprog(machines []sim.Machine, seed uint64) *Figure {
	policies := []lcws.Policy{lcws.WS, lcws.USLCWS, lcws.SignalLCWS, lcws.LaceWS}
	f := &Figure{
		ID:    "Figure M (extension)",
		Title: "Slowdown under core revocation (30% of the run), normalized per policy",
	}
	workloads := sim.Workloads()
	for _, m := range machines {
		avails := []int{m.Cores / 8, m.Cores / 4, m.Cores / 2, m.Cores}
		for i := range avails {
			if avails[i] < 1 {
				avails[i] = 1
			}
		}
		panel := Panel{
			Title:  m.Name,
			XLabel: "cores during revocation",
			YLabel: "time / full-machine time",
			X:      avails,
		}
		for _, pol := range policies {
			ys := make([]float64, len(avails))
			for ai, avail := range avails {
				total := 0.0
				for _, w := range workloads {
					full := sim.Simulate(w.Phases, pol, m.Cores, m, seed)
					tr := sim.Trace{
						{Until: full.Time * 0.3, Procs: m.Cores},
						{Until: full.Time * 0.6, Procs: avail},
					}
					revoked := sim.SimulateTrace(w.Phases, pol, m.Cores, m, seed, tr)
					total += revoked.Time / full.Time
				}
				ys[ai] = total / float64(len(workloads))
			}
			panel.Series = append(panel.Series, Series{Label: pol.String(), Y: ys})
		}
		f.Panels = append(f.Panels, panel)
	}
	return f
}
