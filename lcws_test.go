package lcws_test

import (
	"sync/atomic"
	"testing"

	"lcws"
)

func TestNewDefaults(t *testing.T) {
	s := lcws.New()
	if s.Workers() != 1 {
		t.Errorf("default workers = %d, want 1", s.Workers())
	}
	if s.Policy() != lcws.WS {
		t.Errorf("default policy = %v, want WS", s.Policy())
	}
}

func TestOptions(t *testing.T) {
	s := lcws.New(lcws.WithWorkers(6), lcws.WithPolicy(lcws.HalfLCWS),
		lcws.WithDequeCapacity(128), lcws.WithSeed(9))
	if s.Workers() != 6 || s.Policy() != lcws.HalfLCWS {
		t.Errorf("options not applied: %d workers, %v", s.Workers(), s.Policy())
	}
}

func TestPublicForkJoinAndParFor(t *testing.T) {
	for _, pol := range lcws.Policies {
		s := lcws.New(lcws.WithWorkers(3), lcws.WithPolicy(pol))
		var total atomic.Int64
		var left, right bool
		s.Run(func(ctx *lcws.Ctx) {
			lcws.Fork2(ctx,
				func(ctx *lcws.Ctx) { left = true },
				func(ctx *lcws.Ctx) { right = true },
			)
			lcws.ParFor(ctx, 0, 1000, 0, func(ctx *lcws.Ctx, i int) {
				total.Add(int64(i))
			})
		})
		if !left || !right {
			t.Errorf("%v: Fork2 branches did not both run", pol)
		}
		if total.Load() != 499500 {
			t.Errorf("%v: ParFor sum = %d", pol, total.Load())
		}
		total.Store(0)
		left, right = false, false
	}
}

func TestStatsAndReset(t *testing.T) {
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(lcws.WS))
	s.Run(func(ctx *lcws.Ctx) {
		lcws.Fork2(ctx, func(*lcws.Ctx) {}, func(*lcws.Ctx) {})
	})
	st := s.Stats()
	if st.TasksPushed == 0 || st.Fences == 0 {
		t.Errorf("WS run recorded no pushes/fences: %+v", st)
	}
	s.ResetStats()
	if got := s.Stats(); got.TasksPushed != 0 {
		t.Errorf("ResetStats did not clear counters: %+v", got)
	}
}

func TestStatsUnstolenFraction(t *testing.T) {
	st := lcws.Stats{Exposures: 8, ExposedNotStolen: 2}
	if got := st.UnstolenFraction(); got != 0.25 {
		t.Errorf("UnstolenFraction = %v, want 0.25", got)
	}
	var zero lcws.Stats
	if zero.UnstolenFraction() != 0 {
		t.Error("UnstolenFraction of zero stats should be 0")
	}
}

func TestCtxAccessors(t *testing.T) {
	s := lcws.New(lcws.WithWorkers(2), lcws.WithPolicy(lcws.ConsLCWS))
	s.Run(func(ctx *lcws.Ctx) {
		// Under the persistent executor any resident worker may pick the
		// job up from the injector; the id is only guaranteed in range.
		if id := ctx.ID(); id < 0 || id >= 2 {
			t.Errorf("root runs on worker %d, want 0 or 1", id)
		}
		if ctx.Workers() != 2 {
			t.Errorf("ctx.Workers() = %d", ctx.Workers())
		}
		if ctx.Policy() != lcws.ConsLCWS {
			t.Errorf("ctx.Policy() = %v", ctx.Policy())
		}
		if ctx.Rand() == nil {
			t.Error("ctx.Rand() is nil")
		}
		// Poll and Checkpoint must be callable anywhere in a task.
		for i := 0; i < 200; i++ {
			ctx.Poll()
		}
		ctx.Checkpoint()
	})
}

func TestPoliciesListsAreConsistent(t *testing.T) {
	if len(lcws.Policies) != 7 {
		t.Errorf("Policies has %d entries, want 7 (WS, four LCWS variants, Lace, MultFree)", len(lcws.Policies))
	}
	if lcws.Policies[0] != lcws.WS {
		t.Error("Policies must start with the WS baseline")
	}
	if len(lcws.LCWSPolicies) != 4 {
		t.Errorf("LCWSPolicies has %d entries, want 4", len(lcws.LCWSPolicies))
	}
	for _, p := range lcws.LCWSPolicies {
		if p == lcws.WS {
			t.Error("LCWSPolicies must not contain the baseline")
		}
		if p == lcws.MultFree {
			t.Error("LCWSPolicies must not contain MultFree (not one of the paper's schedulers)")
		}
	}
	seen := false
	for _, p := range lcws.Policies {
		if p == lcws.MultFree {
			seen = true
		}
	}
	if !seen {
		t.Error("Policies must include MultFree")
	}
}
