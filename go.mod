module lcws

go 1.22
