package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gatedScheduler returns a 1-worker scheduler whose single worker is
// occupied by a High-class gate job blocked on the returned release
// function. While the gate holds the worker, submissions queue up in
// the injector without being picked up, so tests can stage a backlog
// and then observe the exact pickup order. The gate never calls Poll,
// so no checkpoint yields fire while it runs.
func gatedScheduler(t *testing.T, opts Options) (*Scheduler, func()) {
	t.Helper()
	opts.Workers = 1
	s := NewScheduler(opts)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	j := s.Submit(func(w *Worker) {
		once.Do(func() { close(entered) })
		<-gate
	}, WithJobPriority(High))
	<-entered
	var relOnce sync.Once
	release := func() {
		relOnce.Do(func() { close(gate) })
		_ = j.Wait()
	}
	t.Cleanup(func() { release(); s.Close() })
	return s, release
}

// --- Submission options ---------------------------------------------------

func TestSubmitOptionsRoundtrip(t *testing.T) {
	s := newTestScheduler(WS, 1)
	defer s.Close()
	j := s.Submit(func(w *Worker) {}, WithJobPriority(Low), WithJobWeight(7))
	if err := j.Wait(); err != nil {
		t.Fatalf("Wait = %v", err)
	}
	if j.Class() != Low || j.Weight() != 7 {
		t.Fatalf("Class/Weight = %v/%d, want Low/7", j.Class(), j.Weight())
	}
	if st := j.Stats(); st.Class != Low {
		t.Fatalf("JobStats.Class = %v, want Low", st.Class)
	}
	// Defaults and clamping: no options → Normal/1; out-of-range values
	// clamp rather than corrupt the injector's class index.
	d := s.Submit(func(w *Worker) {})
	_ = d.Wait()
	if d.Class() != Normal || d.Weight() != 1 {
		t.Fatalf("default Class/Weight = %v/%d, want Normal/1", d.Class(), d.Weight())
	}
	c := s.Submit(func(w *Worker) {}, WithJobPriority(JobClass(250)), WithJobWeight(-3))
	_ = c.Wait()
	if c.Class() != Low || c.Weight() != 1 {
		t.Fatalf("clamped Class/Weight = %v/%d, want Low/1", c.Class(), c.Weight())
	}
}

func TestParseJobClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want JobClass
		ok   bool
	}{
		{"high", High, true}, {"HIGH", High, true}, {"Normal", Normal, true},
		{"low", Low, true}, {"batch", 0, false}, {"", 0, false},
	} {
		got, ok := ParseJobClass(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseJobClass(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	for _, c := range []JobClass{High, Normal, Low} {
		got, ok := ParseJobClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseJobClass(%q) = %v, %v; want roundtrip", c.String(), got, ok)
		}
	}
}

// --- Bounded admission ----------------------------------------------------

func TestAdmissionFailFast(t *testing.T) {
	var opts Options
	opts.ClassCapacity[Normal] = 2
	s, release := gatedScheduler(t, opts)
	a := s.Submit(func(w *Worker) {})
	b := s.Submit(func(w *Worker) {})
	rej := s.Submit(func(w *Worker) { t.Error("rejected job ran") }, WithAdmission(AdmitFail))
	if err := rej.Wait(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("rejected Wait = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.AdmissionRejects != 1 || st.JobsEnqueuedNormal != 2 {
		t.Fatalf("AdmissionRejects/JobsEnqueuedNormal = %d/%d, want 1/2",
			st.AdmissionRejects, st.JobsEnqueuedNormal)
	}
	// A capped class does not block other classes' admission.
	lo := s.Submit(func(w *Worker) {}, WithJobPriority(Low), WithAdmission(AdmitFail))
	release()
	for _, j := range []*Job{a, b, lo} {
		if err := j.Wait(); err != nil {
			t.Fatalf("Wait = %v, want nil", err)
		}
	}
}

func TestAdmissionBlocksUntilSpace(t *testing.T) {
	var opts Options
	opts.ClassCapacity[Normal] = 1
	s, release := gatedScheduler(t, opts)
	first := s.Submit(func(w *Worker) {})
	submitted := make(chan *Job)
	go func() {
		// Fills the only slot's successor: blocks until the gate lifts
		// and the pickup of `first` frees the slot.
		submitted <- s.Submit(func(w *Worker) {})
	}()
	select {
	case <-submitted:
		t.Fatal("second submission did not block on the full class queue")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	var second *Job
	select {
	case second = <-submitted:
	case <-time.After(10 * time.Second):
		t.Fatal("blocked submission never unblocked after pickups freed slots")
	}
	if err := first.Wait(); err != nil {
		t.Fatalf("first Wait = %v", err)
	}
	if err := second.Wait(); err != nil {
		t.Fatalf("second Wait = %v", err)
	}
}

func TestAdmissionBlockedCtxCancel(t *testing.T) {
	var opts Options
	opts.ClassCapacity[Normal] = 1
	s, release := gatedScheduler(t, opts)
	first := s.Submit(func(w *Worker) {})
	ctx, cancel := context.WithCancel(context.Background())
	submitted := make(chan *Job)
	go func() {
		submitted <- s.Submit(func(w *Worker) { t.Error("cancelled-while-blocked job ran") },
			WithJobCtx(ctx))
	}()
	select {
	case <-submitted:
		t.Fatal("submission did not block")
	case <-time.After(50 * time.Millisecond):
	}
	cancel()
	j := <-submitted
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	release()
	if err := first.Wait(); err != nil {
		t.Fatalf("first Wait = %v", err)
	}
}

func TestAdmissionBlockedClose(t *testing.T) {
	var opts Options
	opts.ClassCapacity[Normal] = 1
	s, release := gatedScheduler(t, opts)
	first := s.Submit(func(w *Worker) {})
	submitted := make(chan *Job)
	go func() {
		submitted <- s.Submit(func(w *Worker) { t.Error("closed-while-blocked job ran") })
	}()
	select {
	case <-submitted:
		t.Fatal("submission did not block")
	case <-time.After(50 * time.Millisecond):
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	j := <-submitted
	if err := j.Wait(); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("Wait = %v, want ErrSchedulerClosed", err)
	}
	// Close drains the already-queued job before the workers exit.
	release()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not return after the gate lifted")
	}
	if err := first.Wait(); err != nil {
		t.Fatalf("first Wait = %v, want nil (queued jobs run to completion)", err)
	}
}

// --- Weighted-fair pickup -------------------------------------------------

// TestClassWeightedPickupShares stages a backlog across all three
// classes behind a gated single worker and checks that the pickup
// order honors the configured 4:2:1 class weights: over any prefix in
// which every class still has queued jobs, each class's share of
// pickups stays within 1.3x of its weight share. Single worker + the
// deterministic stride order make this exact, not statistical.
func TestClassWeightedPickupShares(t *testing.T) {
	var opts Options
	opts.ClassWeights = [NumJobClasses]int{4, 2, 1}
	s, release := gatedScheduler(t, opts)
	const perClass = 24
	var mu sync.Mutex
	var order []JobClass
	var jobs []*Job
	for i := 0; i < perClass; i++ {
		for _, c := range []JobClass{High, Normal, Low} {
			c := c
			jobs = append(jobs, s.Submit(func(w *Worker) {
				mu.Lock()
				order = append(order, c)
				mu.Unlock()
			}, WithJobPriority(c)))
		}
	}
	release()
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatalf("Wait = %v", err)
		}
	}
	if len(order) != 3*perClass {
		t.Fatalf("ran %d jobs, want %d", len(order), 3*perClass)
	}
	// While all classes have work — the first perClass*(7/4) pickups
	// cannot exhaust High (weight share 4/7) — check weighted shares.
	prefix := perClass * 7 / 4
	var got [NumJobClasses]int
	for _, c := range order[:prefix] {
		got[c]++
	}
	weights := [NumJobClasses]float64{4, 2, 1}
	for c, n := range got {
		ideal := float64(prefix) * weights[c] / 7
		if float64(n) > ideal*1.3+1 || float64(n) < ideal/1.3-1 {
			t.Errorf("class %v: %d of first %d pickups, ideal %.1f (order %v)",
				JobClass(c), n, prefix, ideal, order[:prefix])
		}
	}
}

// TestJobWeightSharesWithinClass checks the second stride level: jobs
// of one class with weights 4/2/1 interleave in proportion to their
// job weights. The order is deterministic (single gated worker), so
// the first 7 pickups split exactly 4:2:1.
func TestJobWeightSharesWithinClass(t *testing.T) {
	s, release := gatedScheduler(t, Options{})
	const perWeight = 8
	var mu sync.Mutex
	var order []int
	var jobs []*Job
	for i := 0; i < perWeight; i++ {
		for _, w := range []int{1, 2, 4} {
			w := w
			jobs = append(jobs, s.Submit(func(wk *Worker) {
				mu.Lock()
				order = append(order, w)
				mu.Unlock()
			}, WithJobWeight(w)))
		}
	}
	release()
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatalf("Wait = %v", err)
		}
	}
	var got [5]int
	for _, w := range order[:7] {
		got[w]++
	}
	if got[4] != 4 || got[2] != 2 || got[1] != 1 {
		t.Fatalf("first 7 pickups split w4/w2/w1 = %d/%d/%d, want 4/2/1 (order %v)",
			got[4], got[2], got[1], order[:7])
	}
}

// TestHighNotStarvedByLowBacklog queues one High job behind a deep Low
// backlog: the weighted-fair order must pick the High job among the
// first few pickups regardless of queue depth (FIFO would run 30 Low
// jobs first).
func TestHighNotStarvedByLowBacklog(t *testing.T) {
	s, release := gatedScheduler(t, Options{})
	const backlog = 30
	var mu sync.Mutex
	var order []JobClass
	var jobs []*Job
	submit := func(c JobClass) {
		jobs = append(jobs, s.Submit(func(w *Worker) {
			mu.Lock()
			order = append(order, c)
			mu.Unlock()
		}, WithJobPriority(c)))
	}
	for i := 0; i < backlog; i++ {
		submit(Low)
	}
	submit(High)
	release()
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatalf("Wait = %v", err)
		}
	}
	pos := -1
	for i, c := range order {
		if c == High {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 3 {
		t.Fatalf("High job ran at position %d of %d, want within the first 4", pos, len(order))
	}
	if st := s.Stats(); st.JobsEnqueuedLow != backlog || st.JobsEnqueuedHigh != 2 {
		t.Fatalf("JobsEnqueuedLow/High = %d/%d, want %d/2 (gate included)",
			st.JobsEnqueuedLow, st.JobsEnqueuedHigh, backlog)
	}
	if st := s.Stats(); st.InjectorWaitHigh.Count == 0 || st.InjectorWaitLow.Count == 0 {
		t.Fatal("injector wait histograms not populated")
	}
}

// --- Checkpoint preemption ------------------------------------------------

// TestCheckpointYieldHighPreemptsLow proves the QoS preemption point
// works on every policy: a Low job spins at Poll checkpoints until a
// flag only a queued High job can set. With one worker the test
// deadlocks unless the Low job's checkpoint picks the High job up and
// runs it inline.
func TestCheckpointYieldHighPreemptsLow(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := NewScheduler(Options{Workers: 1, Policy: p, Seed: 3, PollEvery: 1})
		defer s.Close()
		var flag atomic.Bool
		entered := make(chan struct{})
		var once sync.Once
		low := s.Submit(func(w *Worker) {
			once.Do(func() { close(entered) })
			for !flag.Load() {
				w.Poll()
			}
		}, WithJobPriority(Low))
		<-entered
		high := s.Submit(func(w *Worker) { flag.Store(true) }, WithJobPriority(High))
		done := make(chan struct{})
		go func() {
			_ = low.Wait()
			_ = high.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatal("High job never ran: checkpoint yield missing")
		}
		if err := low.Err(); err != nil {
			t.Fatalf("low Err = %v", err)
		}
		if err := high.Err(); err != nil {
			t.Fatalf("high Err = %v", err)
		}
		if st := s.Stats(); st.JobYields == 0 {
			t.Fatal("JobYields = 0, want at least one checkpoint pickup")
		}
	})
}

// --- Deprecated wrappers --------------------------------------------------

func TestDeprecatedCtxWrappers(t *testing.T) {
	s := newTestScheduler(WS, 2)
	defer s.Close()
	ran := false
	if err := s.RunCtx(context.Background(), func(w *Worker) { ran = true }); err != nil || !ran {
		t.Fatalf("RunCtx = %v, ran = %v", err, ran)
	}
	j := s.SubmitCtx(context.Background(), func(w *Worker) {})
	if err := j.Wait(); err != nil {
		t.Fatalf("SubmitCtx Wait = %v", err)
	}
}
