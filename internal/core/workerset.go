package core

import (
	"fmt"
)

// This file is the elastic worker-set substrate: the epoch-guarded
// snapshot that decouples "which workers exist" (the immutable slab,
// sized Options.MaxWorkers at construction) from "which workers are
// live" (the prefix published through Scheduler.set), plus the resize
// machinery built on it — SetWorkers hot reconfiguration, demand-driven
// growth, idle retirement, and epoch-based reclamation of retired
// slots' resources.
//
// # Snapshot protocol
//
// The scheduler publishes a *workerSet through an atomic pointer. A
// worker pins the current snapshot on busy-phase entry (and re-pins on
// every idle-backoff iteration and job pickup, so long busy phases
// adopt new epochs promptly):
//
//	for {
//	    set := s.set.Load()
//	    w.pinnedEpoch.Store(set.epoch)   // seq-cst
//	    if s.set.Load() == set { break } // validate: still current
//	}
//
// and releases the pin (pinnedEpoch.Store(0)) when it leaves the busy
// phase for the idle phase's deep park. The resizer installs a new
// snapshot with one release store and then scans every slot's
// pinnedEpoch: if it misses a concurrent pin of the old epoch, the
// seq-cst total order puts the pinner's store after the scan — and
// therefore after the new snapshot's publication — so the pinner's
// validating reload observes the new snapshot and retries. Either the
// resizer sees the pin, or the pinner sees the new epoch; a stale
// snapshot can never be adopted unobserved. Retired resources are
// reclaimed only once no worker holds a pin at or below the last epoch
// that contained them.
//
// # Why the slab never shrinks
//
// Workers must stay at a fixed stride in one contiguous allocation
// (victim selection walks a single slab; see workerSlot and
// layout_test.go), and worker goroutines hold *Worker pointers across
// resizes. So the slab is allocated once at MaxWorkers and never
// moves: a snapshot is just a shorter or longer prefix of it, and
// "reclaiming" a retired slot tears down the slot's heap resources in
// place (deque array, freelist chain, recycle-shard donations, trace
// ring) without freeing the slot itself. Growth back over a reclaimed
// slot reuses it: the deque teardown preserves absolute indices (see
// deque.SplitDeque.Teardown), so even MultFree thieves' per-victim
// monotone claim cursors stay sound across a retire/regrow cycle.

// workerSet is one immutable epoch of the elastic pool: the live
// prefix of the scheduler's worker slab. Resizing never mutates a
// published set — it installs a successor with a bumped epoch.
//
//lcws:manifest
type workerSet struct {
	// epoch numbers the snapshot (starting at 1; a worker's
	// pinnedEpoch of 0 means unpinned).
	epoch uint64 //lcws:field immutable
	// slots is the live prefix of Scheduler.workers. Index i of the
	// pool is &slots[i].w in every epoch that contains it.
	slots []workerSlot //lcws:field immutable — prefix of the scheduler's slab; the Worker manifests govern the elements
}

// Slot lifecycle states (Worker.state). The zero value is slotIdle so
// never-grown slab tails need no initialization.
const (
	// slotIdle: no goroutine runs the slot — never spawned, or retired
	// (its exit CAS stores slotIdle). Resources of a retired idle slot
	// may be reclaimed once no pin covers its last epoch.
	slotIdle int32 = iota
	// slotLive: the slot is in the published set (or about to be) and
	// its goroutine, if the pool is started, is running.
	slotLive
	// slotDraining: the slot left the published set; its goroutine
	// finishes its local work, refuses new jobs and steals, and exits
	// via Worker.tryRetire. A grow can re-admit it (CAS back to
	// slotLive) before it exits.
	slotDraining
)

// retiree is one graveyard entry: a slot that left the live set at the
// end of the given epoch and whose resources await reclamation.
type retiree struct {
	id    int
	epoch uint64
}

// pin makes w's current busy phase a member of the current epoch: it
// publishes the epoch in pinnedEpoch (blocking reclamation of every
// structure that epoch references) and caches the snapshot in curSet
// for the steal path. Cost on a stable epoch: two snapshot loads and
// one seq-cst store — nothing on the per-fork path, which never reads
// the set. See the file comment for the Dekker argument with the
// resizer.
//
//lcws:noalloc
func (w *Worker) pin() {
	for {
		set := w.sched.set.Load()
		w.pinnedEpoch.Store(set.epoch)
		if w.sched.set.Load() == set {
			if w.curSet != set {
				w.adoptSet(set)
			}
			return
		}
	}
}

// unpin releases w's epoch pin. curSet stays cached — it remains a
// valid (if stale) snapshot until the next pin, and reclamation is
// gated on pins, not on the cache.
//
//lcws:noalloc
func (w *Worker) unpin() { w.pinnedEpoch.Store(0) }

// adoptSet installs a newly observed snapshot as w's steal-path view:
// cold path of pin, entered once per epoch flip per worker. The sticky
// victim is dropped if the new epoch no longer contains it, and the
// flip is recorded on w's own ring (EvResize carries the new live
// count), preserving the owner-write trace discipline — each worker
// logs its own adoption rather than the resizer writing foreign rings.
func (w *Worker) adoptSet(set *workerSet) {
	w.curSet = set
	if int(w.sticky) >= len(set.slots) {
		w.sticky = -1
	}
	if w.rec != nil {
		w.rec.Resize(len(set.slots))
	}
}

// retiring reports whether this slot has been asked to drain.
//
//lcws:noalloc
func (w *Worker) retiring() bool { return w.state.Load() == slotDraining }

// tryRetire completes a draining worker's retirement: it donates the
// entire freelist to the global recycle shard (so cached tasks are not
// stranded on a dead slot), records the retirement on its own ring,
// and CASes the slot out of the draining state. It returns true when
// the worker goroutine must exit; false means a concurrent grow
// re-admitted the slot and the worker resumes as live (with a cold
// freelist, which is harmless).
func (w *Worker) tryRetire() bool {
	if w.rec != nil {
		w.rec.Retire()
	}
	w.retireFreelist()
	w.unpin()
	if !w.state.CompareAndSwap(slotDraining, slotIdle) {
		return false // re-admitted by a concurrent grow
	}
	s := w.sched
	s.workersRetired.Add(1)
	// Reclaim opportunistically on the way out: if no pin covers our
	// last epoch anymore, our own resources (and any earlier retirees')
	// are torn down right here instead of waiting for the next resize.
	s.resizeMu.Lock()
	s.tryReclaimLocked()
	s.resizeMu.Unlock()
	return true
}

// retireFreelist hands this worker's whole freelist to its global
// recycle shard (donateFreelist keeps a hot half back — retirement
// keeps nothing). Chains past the shard bound go to the GC, exactly as
// in donateFreelist. Owner-only; runs before the retirement CAS so a
// re-admitted worker simply continues with an empty freelist.
func (w *Worker) retireFreelist() {
	chain := w.freelist
	n := w.freelistLen
	w.freelist = nil
	w.freelistLen = 0
	if chain == nil {
		return
	}
	sh := &w.sched.recycle[w.id]
	sh.mu.Lock()
	if sh.n >= 2*w.freelistBound {
		sh.mu.Unlock()
		return // shard full: release the chain to the GC
	}
	tail := chain
	for tail.next != nil {
		tail = tail.next
	}
	tail.link(sh.head)
	sh.head = chain
	sh.n += n
	sh.mu.Unlock()
}

// SetWorkers resizes the live pool to n workers, 1 <= n <= the
// MaxWorkers cap fixed at construction. It is safe to call at any time
// — including while jobs are running and concurrently with Submit,
// steals, and Close. Growth takes effect immediately (new workers
// spawn, or draining ones are re-admitted); shrinking is cooperative:
// surplus workers (the highest ids) finish their local work, refuse
// new work, and retire, after which their deque arrays, freelists,
// recycle-shard donations, and trace rings are reclaimed once no
// in-flight steal can still reference them (see the epoch protocol in
// workerset.go). Jobs never lose tasks across a shrink — per-job
// accounting shards are sized to MaxWorkers, and a draining worker
// drains its own deque before exiting.
//
// SetWorkers also sets the pool's resident target: demand-driven
// growth (toward MaxWorkers) above the target is undone by idle
// retirement back down to it.
func (s *Scheduler) SetWorkers(n int) error {
	if n < 1 || n > len(s.workers) {
		return fmt.Errorf("lcws: SetWorkers(%d) outside [1, %d] (MaxWorkers is fixed at construction)", n, len(s.workers))
	}
	s.resizeMu.Lock()
	defer s.resizeMu.Unlock()
	if s.closed.Load() {
		// A grow after Close would spawn goroutines the closer no
		// longer waits for; Close's resizeMu barrier makes this check
		// race-free against a concurrent closer.
		return ErrSchedulerClosed
	}
	s.target = n
	s.resizeLocked(n)
	s.tryReclaimLocked()
	return nil
}

// MaxWorkers returns the pool's growth ceiling (Options.MaxWorkers,
// fixed at construction): the bound of the worker-id space and the
// largest argument SetWorkers accepts.
func (s *Scheduler) MaxWorkers() int { return len(s.workers) }

// resizeLocked installs a new worker-set epoch with n live slots.
// Caller holds resizeMu.
//
// The EnsureRing call is epoch-guarded: it only swaps a ring that a
// past reclaim released, which implies the slot's goroutine exited and
// the slot is outside every published set — and it stays outside until
// this function publishes the grown set below.
//
//lcws:locked resizeMu
//lcws:epoch-guarded — rings are swapped only on slots outside every published set
func (s *Scheduler) resizeLocked(n int) {
	cur := s.set.Load()
	if n == len(cur.slots) {
		return
	}
	s.resizes.Add(1)
	next := &workerSet{epoch: cur.epoch + 1, slots: s.workers[:n]}
	if n > len(cur.slots) {
		s.poolGrows.Add(1)
		for i := len(cur.slots); i < n; i++ {
			w := s.worker(i)
			if w.sched == nil {
				s.initSlot(i) // first time this slab slot is grown into
			}
			if w.rec != nil {
				w.rec.EnsureRing() // restore a ring released by a past reclaim
			}
			if w.state.CompareAndSwap(slotDraining, slotLive) {
				continue // re-admitted: its goroutine is still running
			}
			w.state.Store(slotLive)
			if s.started {
				s.spawnWorker(w)
			}
		}
		// Entries for re-admitted ids are obsolete; drop them before
		// publishing so reclamation can never tear down a live slot.
		kept := s.graveyard[:0]
		for _, g := range s.graveyard {
			if g.id >= n {
				kept = append(kept, g)
			}
		}
		s.graveyard = kept
		s.set.Store(next)
		return
	}
	// Shrink: publish the smaller set first, then mark the surplus
	// slots draining — a worker that pins after the store already sees
	// the new epoch, and the draining flag only has to reach workers
	// pinned at the old one.
	s.set.Store(next)
	for i := n; i < len(cur.slots); i++ {
		w := s.worker(i)
		if !s.started {
			// No goroutine exists to drain; the slot is idle at once
			// (its deque is empty and its freelist cold — nothing to
			// reclaim, so no graveyard entry either).
			w.state.Store(slotIdle)
			continue
		}
		w.state.CompareAndSwap(slotLive, slotDraining)
		s.graveyard = append(s.graveyard, retiree{id: i, epoch: cur.epoch})
	}
	// Wake everyone: deep-parked surplus workers must observe the
	// draining flag and exit rather than sleep out their insurance
	// timers.
	s.wakeAll()
}

// initSlot builds the per-slot resources of a slab slot grown into for
// the first time: its deque (per the pool's policy) and the Worker
// fields init sets. Runs under resizeMu before the slot is published
// in any snapshot, so the plain writes are ordered by the set
// publication exactly as NewScheduler's are by the constructor.
func (s *Scheduler) initSlot(i int) {
	s.workers[i].w.init(i, s, newTaskDeque(s.opts), s.opts)
}

// spawnWorker starts slot w's resident goroutine. Caller holds
// resizeMu with s.started true (or is ensureStarted itself).
func (s *Scheduler) spawnWorker(w *Worker) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		w.onSpawn()
		s.runResident(w)
	}()
}

// onSpawn clears the owner-side scraps a previous residency of this
// slot may have left behind: a stale park token, the sticky victim,
// and the idle ladder. Runs on the slot's new goroutine before its
// resident loop, so the writes are owner writes.
func (w *Worker) onSpawn() {
	select {
	case <-w.parkSem:
	default:
	}
	w.sticky = -1
	w.idleSpins = 0
	w.idleSleep = 0
}

// maybeGrow is Submit's demand probe: if the injector backlog outruns
// the live workers not already busy (each non-busy worker — idle,
// waking, or parked-and-just-woken — absorbs at most one queued job),
// and the pool is below MaxWorkers, grow by one. A burst submitted
// into a parked pool therefore ratchets the pool up one worker per
// submission as the backlog deepens, until the backlog clears or the
// cap is hit — even before the first worker has woken. The probe is
// three atomic loads on the submit path; the resize itself is behind a
// TryLock, so submissions never serialize on the resize lock.
func (s *Scheduler) maybeGrow() {
	live := len(s.set.Load().slots)
	if live >= len(s.workers) || int64(s.inj.Len()) <= int64(live)-s.busy.Load() {
		return
	}
	if !s.resizeMu.TryLock() {
		return
	}
	if live := len(s.set.Load().slots); live < len(s.workers) &&
		int64(s.inj.Len()) > int64(live)-s.busy.Load() && !s.closed.Load() {
		s.resizeLocked(live + 1)
	}
	s.tryReclaimLocked()
	s.resizeMu.Unlock()
}

// maybeRetireIdle is the idle-phase shrink probe, reached only after a
// deep park ran its full insurance window (deepParkInsurance) with the
// pool still idle — the "sustained idleness" trigger. If demand growth
// left the pool above its resident target, it retires one surplus
// worker per window; at or below target it only attempts reclamation
// of already-retired slots. TryLock: an idle worker never blocks on a
// resize in flight.
func (s *Scheduler) maybeRetireIdle() {
	if !s.resizeMu.TryLock() {
		return
	}
	if live := len(s.set.Load().slots); live > s.target &&
		s.activeJobs.Load() == 0 && s.inj.Empty() && !s.closed.Load() {
		s.resizeLocked(live - 1)
	}
	s.tryReclaimLocked()
	s.resizeMu.Unlock()
}

// minPinnedEpoch returns the lowest epoch any worker currently pins
// (0 = no pins at all). The slab is scanned in full — draining and
// retired workers can hold pins too (a draining worker helping a join
// still steals through its pinned snapshot).
func (s *Scheduler) minPinnedEpoch() uint64 {
	min := uint64(0)
	for i := range s.workers {
		if e := s.workers[i].w.pinnedEpoch.Load(); e != 0 && (min == 0 || e < min) {
			min = e
		}
	}
	return min
}

// tryReclaimLocked tears down the resources of every graveyard slot
// whose retirement is complete (goroutine exited) and safe (no worker
// pins an epoch that could still reference it). Caller holds resizeMu.
//
//lcws:locked resizeMu
func (s *Scheduler) tryReclaimLocked() {
	if len(s.graveyard) == 0 {
		return
	}
	min := s.minPinnedEpoch()
	live := len(s.set.Load().slots)
	kept := s.graveyard[:0]
	for _, g := range s.graveyard {
		if g.id < live {
			continue // re-admitted since; entry obsolete
		}
		w := s.worker(g.id)
		if w.state.Load() != slotIdle || (min != 0 && min <= g.epoch) {
			kept = append(kept, g) // still draining, or still referenced
			continue
		}
		s.reclaimSlot(w)
	}
	s.graveyard = kept
}

// reclaimSlot releases a retired slot's heap resources in place: the
// deque's grown task array shrinks back to its initial capacity
// (index-preserving, so the deque stays valid for a future regrow and
// stale MultFree claim cursors stay sound), the slot's recycle-shard
// chain is dropped to the GC, and its trace ring is released. The slot
// itself is never freed — the slab is immutable (see the file
// comment). Caller holds resizeMu and has proved quiescence: the
// slot's goroutine exited (state == slotIdle, and its exit CAS ordered
// its last owner writes before our state load), and no worker pins an
// epoch that contained the slot.
//
//lcws:epoch-guarded — quiescence proved by tryReclaimLocked (exit CAS + epoch pin scan)
func (s *Scheduler) reclaimSlot(w *Worker) {
	w.dq.Teardown()
	sh := &s.recycle[w.id]
	sh.mu.Lock()
	sh.head = nil
	sh.n = 0
	sh.mu.Unlock()
	if w.rec != nil {
		w.rec.ReleaseRing()
	}
	s.epochReclaims.Add(1)
}
