package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"lcws/internal/counters"
	"lcws/internal/deque"
)

// Task is a unit of work scheduled by the worker pool. It is a small
// tagged union: a *function task* (fn != nil) runs fn, while a *range
// task* (fn == nil) executes body(w, i) for every i in [lo, hi) with
// recursive binary splitting down to grain. Range tasks are what make
// ParFor's fork path closure-free: splitting a range pushes another
// descriptor instead of allocating a closure pair per split.
//
// Tasks are recycled through per-worker freelists (newTask/freeTask) so
// the steady-state fork fast path performs no heap allocation. The
// recycling discipline is strict single-owner: the worker that forks a
// task is the only one that frees it, and only after its join observed
// completion, so an executing thief's final doneSeq store is always the
// last access to a task before it can be reused.
//
// Completion detection and the recycling generation stamp are fused into
// one word. seq is the owner-maintained generation, bumped on every
// free; an executor signals completion by storing seq+1 into the atomic
// doneSeq, and the join waits for doneSeq to reach the seq+1 it captured
// at fork time. Because every incarnation of the task waits for a
// different value, a recycled task needs no atomic reset on reallocation
// — and a *stale* doneSeq left over from a previous incarnation can
// never satisfy a later join, so the done flag of a stolen task cannot
// be observed stale. The join additionally asserts that seq itself is
// unchanged, turning any discipline violation (the task freed behind an
// in-flight join's back) into an immediate panic.
//
//lcws:manifest
type Task struct {
	// fn is the function of a plain task; nil marks a range task.
	//
	//lcws:field thief-shared — written pre-publication (prepareFn presync), read by the executor
	fn func(*Worker)

	// Range-task payload, valid when fn == nil.
	//
	//lcws:field thief-shared — written pre-publication, read by the executor
	body func(*Worker, int)
	//lcws:field thief-shared — written pre-publication, read by the executor
	lo, hi, grain int

	// doneSeq is stored (last) by the executing worker when the task
	// completes, with the value seq+1; the forking worker polls it to
	// detect completion of a stolen task.
	//
	//lcws:field atomic
	doneSeq atomic.Uint32

	// job tags the task with the Job it belongs to (nil for tasks driven
	// directly in tests without a job). Written by the pushing worker
	// before the deque publishes the task, so any thief that obtains the
	// task observes the tag; aborted-job drains filter on it.
	//
	//lcws:field thief-shared — written pre-publication, read by drains
	job *Job

	// execSeq is the MultFree execution-claim word: under the relaxed
	// policy a task may be obtained by more than one claimant (bounded
	// multiplicity), so every relaxed-eligible execution first CASes
	// execSeq from seq to seq+1 and only the winner runs the task. The
	// owner re-arms it to seq (pre-publication) when it forks a range
	// task under MultFree; untouched by every other policy.
	//
	//lcws:field atomic
	execSeq atomic.Uint32

	// pushStamp is the deque push stamp — packed (index epoch, absolute
	// index), see deque.PushStamp — written by the forking worker before
	// publication under MultFree. Relaxed thieves re-read it to validate
	// their fence-free slot loads (the slot may have been overwritten by
	// an aliased push, so a stale claimant can hold a pointer to a task
	// the owner has since recycled and re-stamped — hence atomic), and
	// the owner checks it against the exposure high-water mark at free
	// time (the recycling gate, see freeTask).
	//
	//lcws:field atomic
	pushStamp atomic.Uint64

	// Recycling state, touched only by the forking (owner) worker.
	//
	//lcws:field thief-shared — generation stamp: owner-written, executor reads it for the doneSeq store
	seq uint32
	//lcws:field owner(Worker)
	recycled bool // set while the task sits on a freelist
	//lcws:field owner(Worker)
	next *Task // freelist / overflow-list / recycle-shard link
}

// complete marks t done: the executing worker stores the completion
// stamp the forking worker's join is waiting for. It must be the
// executor's final access to t.
//
//lcws:noalloc
func (t *Task) complete() { t.doneSeq.Store(t.seq + 1) }

// isDone reports whether the incarnation of t stamped want (= seq+1 at
// fork time) has completed. The signed comparison keeps the check
// correct across the (theoretical) uint32 wrap of a very long-lived
// task's recycle count.
func (t *Task) isDone(want uint32) bool {
	return int32(t.doneSeq.Load()-want) >= 0
}

// prepareFn arms t as a function task and returns the completion stamp
// its join must wait for. The owner calls it between newTask and push;
// the deque's publication protocol orders the write before any thief's
// read.
//
//lcws:noalloc
func (t *Task) prepareFn(fn func(*Worker)) uint32 {
	t.fn = fn
	return t.seq + 1
}

// prepareRange arms t as a range task over [lo, hi) with the given
// grain, returning the completion stamp like prepareFn. fn is already
// nil on a task fresh from newTask, which is what marks t as a range
// task.
//
//lcws:noalloc
func (t *Task) prepareRange(lo, hi, grain int, body func(*Worker, int)) uint32 {
	t.body, t.lo, t.hi, t.grain = body, lo, hi, grain
	return t.seq + 1
}

// rearmExec aligns t's execution-claim word with its current generation
// so claimExec's CAS from seq has exactly one winner for this
// incarnation. The forking worker calls it before publication under
// MultFree (see forkRange); ordered before any claimant's CAS by the
// deque's publication protocol.
//
//lcws:noalloc
func (t *Task) rearmExec() { t.execSeq.Store(t.seq) }

// claimExec arbitrates a MultFree execution claim on the range task t:
// the CAS from seq to seq+1 admits exactly one executor per incarnation,
// so a duplicate obtained through the relaxed steal path (or through the
// owner reclaiming a task whose claim it could not yet see) is absorbed
// here instead of double-counting completion. The plain seq read is safe
// because no claimant can hold a never-exposed descriptor — the relaxed
// lane's stamp validation rejects slot reads that alias onto private
// tasks, and the recycling gate (freeTask) never recycles a range task
// that was ever exposed — so for every task that reaches a claimant, seq
// is frozen after publication. (Never-exposed range tasks DO recycle;
// they just never reach this function.) Counted per the model's
// MultFreeExecCAS.
//
//lcws:noalloc
func (w *Worker) claimExec(t *Task) bool {
	s := t.seq
	w.ctr.Add(counters.CAS, counters.MultFreeExecCAS)
	if t.execSeq.CompareAndSwap(s, s+1) {
		return true
	}
	w.ctr.Inc(counters.TaskDuplicated)
	if w.rec != nil {
		w.rec.Duplicate()
	}
	return false
}

// reuse detaches t from the freelist linkage when it is popped for
// reallocation.
//
//lcws:noalloc
func (t *Task) reuse() {
	t.next = nil
	t.recycled = false
}

// link points t's list link at next; unlink clears it. The overflow and
// recycle-shard chains are threaded through these instead of writing
// t.next in place so every plain write to the link stays inside Task's
// own methods (the atomicfield discipline), mirroring reuse/recycle.
//
//lcws:noalloc
func (t *Task) link(next *Task) { t.next = next }

//lcws:noalloc
func (t *Task) unlink() { t.next = nil }

// recycle resets t's payload, advances its generation stamp, and links
// it in front of the freelist node head. Called only by freeTask on the
// owning worker.
//
//lcws:noalloc
func (t *Task) recycle(head *Task) {
	t.recycled = true
	t.seq++
	t.fn = nil
	t.body = nil
	t.job = nil
	t.next = head
}

// newTask returns a task from the worker's freelist, falling back to
// the global recycle shards and finally to a heap allocation only while
// the freelist is cold (it warms up to the live-fork high-water mark of
// this worker, bounded by freelistBound, after which the fork path
// allocates nothing). Owner-only: must be called on the worker's own
// goroutine. No atomic reset is needed — completion is
// generation-stamped, see Task.
//
//lcws:noalloc
func (w *Worker) newTask() *Task {
	t := w.freelist
	if t == nil {
		// Cold path: refill from the recycle shards or heap-allocate.
		return w.newTaskSlow()
	}
	w.freelist = t.next
	w.freelistLen--
	t.reuse()
	return t
}

// newTaskSlow is newTask's freelist-miss path: refill a batch from the
// global recycle shards, or heap-allocate while the whole pool is cold.
func (w *Worker) newTaskSlow() *Task {
	if w.refillFreelist() {
		t := w.freelist
		w.freelist = t.next
		w.freelistLen--
		t.reuse()
		return t
	}
	return &Task{}
}

// freeTask returns t to the worker's freelist and advances its
// generation. Only the worker that allocated t may free it, and only
// once its join observed completion — at that point no thief holds a
// live reference (the doneSeq store is a thief's final access). Double
// frees panic via the recycled flag. The freelist is bounded: past
// freelistBound the cold half is donated to the worker's global recycle
// shard (or released to the GC when the shard is full), so a worker
// that once ran a very wide job does not pin that high-water mark of
// tasks forever.
//
//lcws:noalloc
func (w *Worker) freeTask(t *Task) {
	if t.recycled {
		panic("core: double free of a scheduler task (recycling discipline violated)")
	}
	if w.relaxed && t.fn == nil && !w.dq.NeverExposed(t.pushStamp.Load()) {
		// MultFree: a range task that was ever exposed may still be
		// referenced by a stale relaxed claimant (a thief that loaded
		// the slot but has not yet lost the execution arbitration).
		// Re-arming the descriptor would race that claimant's reads, so
		// once-exposed range tasks are never recycled — the GC reclaims
		// them when the last claimant drops its reference. Never-exposed
		// range tasks (the no-steal common case) and function tasks
		// (CAS-stolen exclusively) recycle as usual, which is what keeps
		// the steady-state fork path allocation-free under MultFree too.
		return
	}
	t.recycle(w.freelist)
	w.freelist = t
	w.freelistLen++
	if w.freelistLen > w.freelistBound {
		w.donateFreelist()
	}
}

// defaultFreelistBound caps each worker's task freelist
// (Options.FreelistBound when non-positive). 4096 tasks ≈ 512 KiB per
// worker of retained recycling capital — deep enough that steady
// fork-join spines never miss, small enough that a one-off very wide
// job does not pin its high-water mark of Tasks for the pool's
// lifetime.
const defaultFreelistBound = 4096

// refillBatch is how many tasks one refillFreelist call moves from a
// recycle shard onto the caller's freelist: large enough to amortize
// the shard lock over many forks, small enough not to strip a shard
// bare for the other workers.
const refillBatch = 32

// recycleShard is one slot of the scheduler's global task-recycling
// pool: a mutex-guarded chain of recycled Tasks. Each worker donates
// freelist overflow to its OWN shard (so donors never contend with each
// other) and refills from any shard on a freelist miss; both are cold
// paths, entered at most once per freelistBound/2 frees or once per
// refillBatch allocations. The trailing pad keeps neighbouring shards
// off each other's cache lines — shards sit in one contiguous slice and
// the mutex word would otherwise false-share between a donor and a
// refiller.
//
//lcws:manifest
type recycleShard struct {
	mu   sync.Mutex //lcws:field atomic — internally synchronized
	head *Task      //lcws:field guarded(mu)
	n    int        //lcws:field guarded(mu)
	_    [recycleShardPad]byte
}

const recycleShardSize = unsafe.Sizeof(sync.Mutex{}) + unsafe.Sizeof((*Task)(nil)) + unsafe.Sizeof(int(0))
const recycleShardPad = (cacheLineSize - recycleShardSize%cacheLineSize) % cacheLineSize

// donateFreelist moves the cold (oldest) half of this worker's freelist
// to its global recycle shard, keeping the hot half local. If the shard
// already holds 2×freelistBound tasks the chain is dropped for the GC
// instead — the pool-wide retained-task population stays bounded by
// 3×freelistBound×P no matter how wide past jobs were. Owner-only; the
// shard chain is spliced under the shard mutex. Cold path of freeTask.
func (w *Worker) donateFreelist() {
	keep := w.freelistBound / 2
	if keep < 1 {
		keep = 1
	}
	cut := w.freelist
	for i := 1; i < keep; i++ {
		cut = cut.next
	}
	chain := cut.next
	cut.unlink()
	n := w.freelistLen - keep
	w.freelistLen = keep
	if chain == nil {
		return
	}
	w.ctr.Add(counters.FreelistReturn, uint64(n))
	sh := &w.sched.recycle[w.id]
	sh.mu.Lock()
	if sh.n >= 2*w.freelistBound {
		sh.mu.Unlock()
		return // shard full: release the chain to the GC
	}
	tail := chain
	for tail.next != nil {
		tail = tail.next
	}
	tail.link(sh.head)
	sh.head = chain
	sh.n += n
	sh.mu.Unlock()
}

// refillFreelist moves up to refillBatch recycled tasks from the global
// recycle shards onto this worker's freelist, scanning round-robin from
// the worker's own shard. It reports whether any task was obtained.
// Owner-only; cold path of newTask.
func (w *Worker) refillFreelist() bool {
	shards := w.sched.recycle
	for i := 0; i < len(shards); i++ {
		sh := &shards[(w.id+i)%len(shards)]
		sh.mu.Lock()
		head := sh.head
		if head == nil {
			sh.mu.Unlock()
			continue
		}
		tail := head
		n := 1
		for n < refillBatch && tail.next != nil {
			tail = tail.next
			n++
		}
		sh.head = tail.next
		sh.n -= n
		sh.mu.Unlock()
		tail.unlink()
		w.freelist = head
		w.freelistLen = n
		w.ctr.Add(counters.FreelistRefill, uint64(n))
		return true
	}
	return false
}

// taskDeque abstracts over the two deque types so a single worker loop
// serves every policy. The WS baseline adapts the Chase-Lev deque: it has
// no public/private split, so PopPublicBottom always fails and Expose is a
// no-op.
type taskDeque interface {
	PushBottom(*Task, *counters.Worker)
	// TryPushBottom pushes like PushBottom, growing the array as needed,
	// but returns false instead of panicking when the deque is at its
	// maximum capacity; the worker then spills via SpillOldest.
	TryPushBottom(*Task, *counters.Worker) bool
	// SpillOldest removes up to len(out) of the OLDEST tasks (the
	// steal-side end) into out, returning how many were taken. Owner-only.
	SpillOldest([]*Task, *counters.Worker) int
	// Capacity is the current (grown) task-array capacity in slots.
	Capacity() int
	PopBottom(*counters.Worker) *Task
	PopPublicBottom(*counters.Worker) *Task
	PopTop(*counters.Worker) (*Task, deque.StealResult)
	PopTopHalf([]*Task, *counters.Worker) (int, deque.StealResult)
	// TakeTopRelaxed is the MultFree fence- and CAS-free steal: plain
	// read/write claim of the top task when the predicate reports it
	// idempotent, exclusive-CAS fallback otherwise. The second callback
	// returns the task's push stamp (an atomic read of Task.pushStamp),
	// which the relaxed lane re-validates after every slot load.
	// TakeTopHalfRelaxed is its batched (steal-half) composition. Only
	// the split deque implements them; the WS baseline never relaxes.
	TakeTopRelaxed(*deque.RelClaim, func(*Task) bool, func(*Task) uint64, *counters.Worker) (*Task, deque.StealResult)
	TakeTopHalfRelaxed([]*Task, *deque.RelClaim, func(*Task) bool, func(*Task) uint64, *counters.Worker) (int, deque.StealResult)
	// PushStamp and NeverExposed support the MultFree stamp validation
	// and recycling gate: the owner stamps each forked task with the
	// (epoch, index) it is pushed at, relaxed thieves validate slot reads
	// against it, and at free time the owner recycles the task only if
	// its stamp was never inside the public window (otherwise a stale
	// relaxed claimant may still hold the descriptor and it is left to
	// the GC). Owner-only.
	PushStamp() uint64
	NeverExposed(stamp uint64) bool
	Expose(deque.ExposeMode, *counters.Worker) int
	UnexposeAll(*counters.Worker) int
	HasTwoTasks() bool
	HasPublicWork() bool
	IsEmpty() bool
	// Teardown releases a grown task array back to the initial capacity,
	// preserving indices/age/epoch so stale thief state (sticky victims,
	// MultFree relaxed-claim cursors) stays sound. Epoch-guarded: called
	// only on an empty deque whose owner goroutine has exited and whose
	// epoch has quiesced (see core.reclaimSlot).
	Teardown()
}

// chaseLevDeque adapts deque.ChaseLev to the taskDeque interface.
type chaseLevDeque struct {
	*deque.ChaseLev[Task]
}

func (d chaseLevDeque) PopPublicBottom(*counters.Worker) *Task { return nil }

func (d chaseLevDeque) Expose(deque.ExposeMode, *counters.Worker) int { return 0 }

func (d chaseLevDeque) UnexposeAll(*counters.Worker) int { return 0 }

func (d chaseLevDeque) HasTwoTasks() bool { return d.Size() >= 2 }

func (d chaseLevDeque) PopTopHalf(buf []*Task, c *counters.Worker) (int, deque.StealResult) {
	return d.PopTopN(buf, c)
}

func (d chaseLevDeque) TakeTopRelaxed(*deque.RelClaim, func(*Task) bool, func(*Task) uint64, *counters.Worker) (*Task, deque.StealResult) {
	return nil, deque.Empty
}

func (d chaseLevDeque) TakeTopHalfRelaxed([]*Task, *deque.RelClaim, func(*Task) bool, func(*Task) uint64, *counters.Worker) (int, deque.StealResult) {
	return 0, deque.Empty
}

func (d chaseLevDeque) PushStamp() uint64 { return 0 }

func (d chaseLevDeque) NeverExposed(uint64) bool { return true }

var (
	_ taskDeque = chaseLevDeque{}
	_ taskDeque = (*deque.SplitDeque[Task])(nil)
)
