package core

import (
	"sync/atomic"

	"lcws/internal/counters"
	"lcws/internal/deque"
)

// Task is a unit of work scheduled by the worker pool. Fork points
// allocate one Task per potentially parallel branch; the done flag lets
// the forking worker detect completion when the branch was stolen.
type Task struct {
	fn   func(*Worker)
	done atomic.Bool
}

// taskDeque abstracts over the two deque types so a single worker loop
// serves every policy. The WS baseline adapts the Chase-Lev deque: it has
// no public/private split, so PopPublicBottom always fails and Expose is a
// no-op.
type taskDeque interface {
	PushBottom(*Task, *counters.Worker)
	PopBottom(*counters.Worker) *Task
	PopPublicBottom(*counters.Worker) *Task
	PopTop(*counters.Worker) (*Task, deque.StealResult)
	Expose(deque.ExposeMode, *counters.Worker) int
	UnexposeAll(*counters.Worker) int
	HasTwoTasks() bool
	IsEmpty() bool
}

// chaseLevDeque adapts deque.ChaseLev to the taskDeque interface.
type chaseLevDeque struct {
	*deque.ChaseLev[Task]
}

func (d chaseLevDeque) PopPublicBottom(*counters.Worker) *Task { return nil }

func (d chaseLevDeque) Expose(deque.ExposeMode, *counters.Worker) int { return 0 }

func (d chaseLevDeque) UnexposeAll(*counters.Worker) int { return 0 }

func (d chaseLevDeque) HasTwoTasks() bool { return d.Size() >= 2 }

var (
	_ taskDeque = chaseLevDeque{}
	_ taskDeque = (*deque.SplitDeque[Task])(nil)
)
