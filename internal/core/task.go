package core

import (
	"sync/atomic"

	"lcws/internal/counters"
	"lcws/internal/deque"
)

// Task is a unit of work scheduled by the worker pool. It is a small
// tagged union: a *function task* (fn != nil) runs fn, while a *range
// task* (fn == nil) executes body(w, i) for every i in [lo, hi) with
// recursive binary splitting down to grain. Range tasks are what make
// ParFor's fork path closure-free: splitting a range pushes another
// descriptor instead of allocating a closure pair per split.
//
// Tasks are recycled through per-worker freelists (newTask/freeTask) so
// the steady-state fork fast path performs no heap allocation. The
// recycling discipline is strict single-owner: the worker that forks a
// task is the only one that frees it, and only after its join observed
// completion, so an executing thief's final doneSeq store is always the
// last access to a task before it can be reused.
//
// Completion detection and the recycling generation stamp are fused into
// one word. seq is the owner-maintained generation, bumped on every
// free; an executor signals completion by storing seq+1 into the atomic
// doneSeq, and the join waits for doneSeq to reach the seq+1 it captured
// at fork time. Because every incarnation of the task waits for a
// different value, a recycled task needs no atomic reset on reallocation
// — and a *stale* doneSeq left over from a previous incarnation can
// never satisfy a later join, so the done flag of a stolen task cannot
// be observed stale. The join additionally asserts that seq itself is
// unchanged, turning any discipline violation (the task freed behind an
// in-flight join's back) into an immediate panic.
//
//lcws:manifest
type Task struct {
	// fn is the function of a plain task; nil marks a range task.
	//
	//lcws:field thief-shared — written pre-publication (prepareFn presync), read by the executor
	fn func(*Worker)

	// Range-task payload, valid when fn == nil.
	//
	//lcws:field thief-shared — written pre-publication, read by the executor
	body func(*Worker, int)
	//lcws:field thief-shared — written pre-publication, read by the executor
	lo, hi, grain int

	// doneSeq is stored (last) by the executing worker when the task
	// completes, with the value seq+1; the forking worker polls it to
	// detect completion of a stolen task.
	//
	//lcws:field atomic
	doneSeq atomic.Uint32

	// job tags the task with the Job it belongs to (nil for tasks driven
	// directly in tests without a job). Written by the pushing worker
	// before the deque publishes the task, so any thief that obtains the
	// task observes the tag; aborted-job drains filter on it.
	//
	//lcws:field thief-shared — written pre-publication, read by drains
	job *Job

	// Recycling state, touched only by the forking (owner) worker.
	//
	//lcws:field thief-shared — generation stamp: owner-written, executor reads it for the doneSeq store
	seq uint32
	//lcws:field owner(Worker)
	recycled bool // set while the task sits on a freelist
	//lcws:field owner(Worker)
	next *Task // freelist link
}

// complete marks t done: the executing worker stores the completion
// stamp the forking worker's join is waiting for. It must be the
// executor's final access to t.
//
//lcws:noalloc
func (t *Task) complete() { t.doneSeq.Store(t.seq + 1) }

// isDone reports whether the incarnation of t stamped want (= seq+1 at
// fork time) has completed. The signed comparison keeps the check
// correct across the (theoretical) uint32 wrap of a very long-lived
// task's recycle count.
func (t *Task) isDone(want uint32) bool {
	return int32(t.doneSeq.Load()-want) >= 0
}

// prepareFn arms t as a function task and returns the completion stamp
// its join must wait for. The owner calls it between newTask and push;
// the deque's publication protocol orders the write before any thief's
// read.
//
//lcws:noalloc
func (t *Task) prepareFn(fn func(*Worker)) uint32 {
	t.fn = fn
	return t.seq + 1
}

// prepareRange arms t as a range task over [lo, hi) with the given
// grain, returning the completion stamp like prepareFn. fn is already
// nil on a task fresh from newTask, which is what marks t as a range
// task.
//
//lcws:noalloc
func (t *Task) prepareRange(lo, hi, grain int, body func(*Worker, int)) uint32 {
	t.body, t.lo, t.hi, t.grain = body, lo, hi, grain
	return t.seq + 1
}

// reuse detaches t from the freelist linkage when it is popped for
// reallocation.
//
//lcws:noalloc
func (t *Task) reuse() {
	t.next = nil
	t.recycled = false
}

// recycle resets t's payload, advances its generation stamp, and links
// it in front of the freelist node head. Called only by freeTask on the
// owning worker.
//
//lcws:noalloc
func (t *Task) recycle(head *Task) {
	t.recycled = true
	t.seq++
	t.fn = nil
	t.body = nil
	t.job = nil
	t.next = head
}

// newTask returns a task from the worker's freelist, falling back to a
// heap allocation only while the freelist is cold (it warms up to the
// maximum number of simultaneously live forks of this worker, after
// which the fork path allocates nothing). Owner-only: must be called on
// the worker's own goroutine. No atomic reset is needed — completion is
// generation-stamped, see Task.
//
//lcws:noalloc
func (w *Worker) newTask() *Task {
	t := w.freelist
	if t == nil {
		//lcws:allocok cold path: the freelist warms up to the live-fork high-water mark
		return &Task{}
	}
	w.freelist = t.next
	t.reuse()
	return t
}

// freeTask returns t to the worker's freelist and advances its
// generation. Only the worker that allocated t may free it, and only
// once its join observed completion — at that point no thief holds a
// live reference (the doneSeq store is a thief's final access). Double
// frees panic via the recycled flag.
//
//lcws:noalloc
func (w *Worker) freeTask(t *Task) {
	if t.recycled {
		panic("core: double free of a scheduler task (recycling discipline violated)")
	}
	t.recycle(w.freelist)
	w.freelist = t
}

// taskDeque abstracts over the two deque types so a single worker loop
// serves every policy. The WS baseline adapts the Chase-Lev deque: it has
// no public/private split, so PopPublicBottom always fails and Expose is a
// no-op.
type taskDeque interface {
	PushBottom(*Task, *counters.Worker)
	PopBottom(*counters.Worker) *Task
	PopPublicBottom(*counters.Worker) *Task
	PopTop(*counters.Worker) (*Task, deque.StealResult)
	PopTopHalf([]*Task, *counters.Worker) (int, deque.StealResult)
	Expose(deque.ExposeMode, *counters.Worker) int
	UnexposeAll(*counters.Worker) int
	HasTwoTasks() bool
	HasPublicWork() bool
	IsEmpty() bool
}

// chaseLevDeque adapts deque.ChaseLev to the taskDeque interface.
type chaseLevDeque struct {
	*deque.ChaseLev[Task]
}

func (d chaseLevDeque) PopPublicBottom(*counters.Worker) *Task { return nil }

func (d chaseLevDeque) Expose(deque.ExposeMode, *counters.Worker) int { return 0 }

func (d chaseLevDeque) UnexposeAll(*counters.Worker) int { return 0 }

func (d chaseLevDeque) HasTwoTasks() bool { return d.Size() >= 2 }

func (d chaseLevDeque) PopTopHalf(buf []*Task, c *counters.Worker) (int, deque.StealResult) {
	return d.PopTopN(buf, c)
}

var (
	_ taskDeque = chaseLevDeque{}
	_ taskDeque = (*deque.SplitDeque[Task])(nil)
)
