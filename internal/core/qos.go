package core

import (
	"context"

	"lcws/internal/injector"
)

// JobClass is a job's priority class. Classes split injector pickups
// weighted-fair (see Options.ClassWeights): a more urgent class with
// queued jobs is preferred in proportion to its weight but cannot
// starve the others, and a queued job of a strictly more urgent class
// is additionally picked up at the Poll checkpoints of a running
// less-urgent job when the weighted-fair order would serve it next —
// the same checkpoint machinery that delivers the emulated steal
// signals doubles as the job-level preemption point, so a long Low job
// cedes its worker to a High arrival at the next checkpoint instead of
// at its own completion.
type JobClass uint8

const (
	// High is the most urgent class.
	High JobClass = iota
	// Normal is the default class of Submit.
	Normal
	// Low is the least urgent class.
	Low
)

// NumJobClasses is the number of priority classes.
const NumJobClasses = 3

// The core job classes map one-to-one onto the injector's class
// indices; a mismatch is a compile error.
var _ = [1]struct{}{}[NumJobClasses-injector.NumClasses]

var jobClassNames = [NumJobClasses]string{"High", "Normal", "Low"}

// String returns "High", "Normal" or "Low".
func (c JobClass) String() string {
	if int(c) >= NumJobClasses {
		return "Invalid"
	}
	return jobClassNames[c]
}

// ParseJobClass converts a class name ("high", "normal", "low",
// case-insensitive) into a JobClass.
func ParseJobClass(name string) (JobClass, bool) {
	for i, n := range jobClassNames {
		if len(name) == len(n) && equalFold(name, n) {
			return JobClass(i), true
		}
	}
	return Normal, false
}

// equalFold is a dependency-free ASCII strings.EqualFold.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// AdmitMode selects what Submit does when the job's class admission
// queue (Options.ClassCapacity) is at capacity.
type AdmitMode uint8

const (
	// AdmitBlock (the default) blocks the submitting goroutine until a
	// queued job of the class is picked up (freeing a slot), the job's
	// context is cancelled, or the scheduler closes.
	AdmitBlock AdmitMode = iota
	// AdmitFail rejects the job immediately: it settles with
	// ErrQueueFull without ever entering the queue.
	AdmitFail
)

// submitConfig is the folded result of a Submit call's options.
type submitConfig struct {
	ctx    context.Context
	class  JobClass
	weight int
	admit  AdmitMode
}

// SubmitOpt configures one submission (Scheduler.Submit, Run).
type SubmitOpt func(*submitConfig)

// WithJobPriority sets the job's priority class (default Normal).
// Out-of-range values are clamped to Low.
func WithJobPriority(c JobClass) SubmitOpt {
	return func(cfg *submitConfig) { cfg.class = c }
}

// WithJobWeight sets the job's weight within its class (default 1,
// values < 1 are treated as 1): when several backlogged tenants share
// a class, jobs submitted with equal weight form one FIFO flow, and
// distinct weights split the class's pickups in proportion to their
// weights.
func WithJobWeight(w int) SubmitOpt {
	return func(cfg *submitConfig) { cfg.weight = w }
}

// WithJobCtx attaches a cancellation context: if ctx is cancelled
// before the job finishes, the job's remaining tasks are drained
// without being executed, running tasks are unwound at their next Poll
// checkpoint or task boundary (the same hooks that deliver the
// emulated steal signals), and Job.Err returns the context's error.
// Cancelling a job never affects other jobs on the pool. A submission
// blocked on admission (AdmitBlock against a full class) is also
// released by the cancellation.
func WithJobCtx(ctx context.Context) SubmitOpt {
	return func(cfg *submitConfig) { cfg.ctx = ctx }
}

// WithAdmission sets the admission mode (default AdmitBlock); it only
// matters for classes bounded with Options.ClassCapacity.
func WithAdmission(m AdmitMode) SubmitOpt {
	return func(cfg *submitConfig) { cfg.admit = m }
}
