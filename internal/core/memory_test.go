package core

import (
	"testing"

	"lcws/internal/counters"
)

// TestSpillThenDrainOrdering drives the overflow-spill machinery
// directly on an unstarted single-worker scheduler and pins the drain
// order: the deque's survivors pop LIFO (newest first, the owner's
// normal discipline), and the spilled tasks then drain FIFO — the exact
// order thieves would have stolen them from the top.
func TestSpillThenDrainOrdering(t *testing.T) {
	s := NewScheduler(Options{Workers: 1, Policy: SignalLCWS, DequeCapacity: 2, MaxDequeCapacity: 4})
	w := s.worker(0)

	const n = 10
	tasks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tk := w.newTask()
		tk.prepareFn(func(*Worker) {})
		tasks[i] = tk
		w.push(tk)
	}
	// Pushing 10 tasks through a 2-slot deque capped at 4: one growth
	// (2 -> 4) and two spill episodes of 4 tasks each.
	if got := w.ctr.Get(counters.DequeGrow); got != 1 {
		t.Errorf("DequeGrow = %d, want 1", got)
	}
	if got := w.ctr.Get(counters.TaskSpilled); got != 8 {
		t.Errorf("TaskSpilled = %d, want 8", got)
	}
	if !w.spilled {
		t.Error("worker did not mark itself spilled")
	}

	var order []*Task
	for {
		tk := w.popLocal()
		if tk == nil {
			break
		}
		order = append(order, tk)
	}
	for {
		tk := w.nextOverflow()
		if tk == nil {
			break
		}
		order = append(order, tk)
	}
	if len(order) != n {
		t.Fatalf("drained %d tasks, want %d", len(order), n)
	}
	// Deque survivors LIFO (9, 8), then overflow oldest-first (0..7).
	want := []int{9, 8, 0, 1, 2, 3, 4, 5, 6, 7}
	for k, idx := range want {
		if order[k] != tasks[idx] {
			t.Fatalf("drain position %d got task %d, want task %d", k, taskIndex(tasks, order[k]), idx)
		}
	}
	if w.overflowHead != nil || w.overflowTail != nil {
		t.Error("overflow list not empty after drain")
	}
}

func taskIndex(tasks []*Task, t *Task) int {
	for i := range tasks {
		if tasks[i] == t {
			return i
		}
	}
	return -1
}

// TestFreelistBoundDonatesAndRefills pins the bounded-freelist contract
// with a tiny bound: frees past the bound donate the cold half to the
// worker's recycle shard, and allocation misses refill from the shards
// before touching the heap — every recycled task comes back.
func TestFreelistBoundDonatesAndRefills(t *testing.T) {
	s := NewScheduler(Options{Workers: 1, FreelistBound: 4})
	w := s.worker(0)

	const n = 10
	tasks := make(map[*Task]bool, n)
	alloc := make([]*Task, n)
	for i := 0; i < n; i++ {
		tk := w.newTask()
		tasks[tk] = true
		alloc[i] = tk
	}
	for _, tk := range alloc {
		tk.complete()
		w.freeTask(tk)
	}
	// Frees 1..10 with bound 4: donations trigger at len 5 (keep 2,
	// donate 3) and again at len 5 (keep 2, donate 3); the last two
	// frees leave the local freelist at 4 and the shard at 6.
	if got := w.ctr.Get(counters.FreelistReturn); got != 6 {
		t.Errorf("FreelistReturn = %d, want 6", got)
	}
	if w.freelistLen != 4 {
		t.Errorf("freelistLen = %d, want 4", w.freelistLen)
	}
	if got := s.recycle[0].n; got != 6 {
		t.Errorf("recycle shard holds %d tasks, want 6", got)
	}

	// Reallocate: 4 from the local freelist, 6 refilled from the shard,
	// and only then fresh heap tasks.
	recycled := 0
	for i := 0; i < n+2; i++ {
		tk := w.newTask()
		if tasks[tk] {
			recycled++
			delete(tasks, tk)
		}
	}
	if recycled != n {
		t.Errorf("recovered %d of %d freed tasks through freelist+shard, want all", recycled, n)
	}
	if got := w.ctr.Get(counters.FreelistRefill); got != 6 {
		t.Errorf("FreelistRefill = %d, want 6", got)
	}
}

// TestRecycleShardDoubleFreeDetected verifies the double-free guard
// holds across the global pool: a task donated to a recycle shard still
// carries its recycled flag, so freeing it again while it sits in the
// shard panics exactly like a same-worker double free.
func TestRecycleShardDoubleFreeDetected(t *testing.T) {
	s := NewScheduler(Options{Workers: 1, FreelistBound: 2})
	w := s.worker(0)
	var victim *Task
	alloc := make([]*Task, 4)
	for i := range alloc {
		alloc[i] = w.newTask()
	}
	for _, tk := range alloc {
		tk.complete()
		w.freeTask(tk)
	}
	// Bound 2: the first donation moved the cold half to the shard.
	s.recycle[0].mu.Lock()
	victim = s.recycle[0].head
	s.recycle[0].mu.Unlock()
	if victim == nil {
		t.Fatal("no task reached the recycle shard")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("double free of a shard-resident task did not panic")
		}
	}()
	w.freeTask(victim)
}

// TestGrowthAndSpillAcrossPolicies runs a deep fork tree through tiny
// deques under every policy — covering the split deque's tag-bump spill
// and the Chase-Lev self-steal spill (WS baseline), in plain and batch
// steal modes — and checks the computed result plus the growth/spill
// counters.
func TestGrowthAndSpillAcrossPolicies(t *testing.T) {
	for _, batch := range []bool{false, true} {
		for _, pol := range Policies {
			pol, batch := pol, batch
			name := pol.String()
			if batch {
				name += "/batch"
			}
			t.Run(name, func(t *testing.T) {
				s := NewScheduler(Options{
					Workers:          2,
					Policy:           pol,
					DequeCapacity:    2,
					MaxDequeCapacity: 8,
					StealBatch:       batch,
					Seed:             3,
				})
				defer s.Close()
				var got int
				s.Run(func(w *Worker) { got = fib(w, 18) })
				if want := 2584; got != want {
					t.Fatalf("fib(18) = %d, want %d", got, want)
				}
				st := s.Stats()
				if st.DequeGrows == 0 {
					t.Errorf("no deque growth recorded on a 2-slot initial capacity")
				}
				if st.TasksSpilled == 0 {
					t.Errorf("no spills recorded past the 8-slot maximum capacity")
				}
			})
		}
	}
}
