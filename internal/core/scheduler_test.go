package core

import (
	"sync/atomic"
	"testing"

	"lcws/internal/counters"
)

// testWorkerCounts are the pool sizes exercised by the cross-policy tests.
var testWorkerCounts = []int{1, 2, 3, 4, 8}

func forEachPolicy(t *testing.T, f func(t *testing.T, p Policy)) {
	t.Helper()
	for _, p := range Policies {
		p := p
		t.Run(p.String(), func(t *testing.T) { f(t, p) })
	}
}

func newTestScheduler(p Policy, workers int) *Scheduler {
	return NewScheduler(Options{Workers: workers, Policy: p, Seed: 42})
}

func fib(w *Worker, n int) int {
	if n < 2 {
		return n
	}
	var a, b int
	Fork2(w,
		func(w *Worker) { a = fib(w, n-1) },
		func(w *Worker) { b = fib(w, n-2) },
	)
	return a + b
}

func TestFibAllPoliciesAllWorkerCounts(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, workers := range testWorkerCounts {
			s := newTestScheduler(p, workers)
			var got int
			s.Run(func(w *Worker) { got = fib(w, 16) })
			if got != 987 {
				t.Errorf("P=%d: fib(16) = %d, want 987", workers, got)
			}
		}
	})
}

func TestParForSum(t *testing.T) {
	const n = 10000
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, workers := range testWorkerCounts {
			s := newTestScheduler(p, workers)
			var sum atomic.Int64
			s.Run(func(w *Worker) {
				ParFor(w, 0, n, 16, func(w *Worker, i int) {
					sum.Add(int64(i))
				})
			})
			want := int64(n) * (n - 1) / 2
			if sum.Load() != want {
				t.Errorf("P=%d: sum = %d, want %d", workers, sum.Load(), want)
			}
			sum.Store(0)
		}
	})
}

func TestParForEachIndexExactlyOnce(t *testing.T) {
	const n = 4096
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 4)
		hits := make([]atomic.Int32, n)
		s.Run(func(w *Worker) {
			ParFor(w, 0, n, 7, func(w *Worker, i int) {
				hits[i].Add(1)
			})
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("index %d executed %d times, want 1", i, got)
			}
		}
	})
}

func TestParForEmptyAndReversedRange(t *testing.T) {
	s := newTestScheduler(SignalLCWS, 2)
	ran := false
	s.Run(func(w *Worker) {
		ParFor(w, 5, 5, 1, func(w *Worker, i int) { ran = true })
		ParFor(w, 7, 3, 1, func(w *Worker, i int) { ran = true })
	})
	if ran {
		t.Error("body ran for an empty range")
	}
}

func TestSchedulerReuseAcrossRuns(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 3)
		for round := 0; round < 5; round++ {
			var got int
			s.Run(func(w *Worker) { got = fib(w, 12) })
			if got != 144 {
				t.Fatalf("round %d: fib(12) = %d, want 144", round, got)
			}
		}
	})
}

func TestNestedParForAndFork(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 4)
		var total atomic.Int64
		s.Run(func(w *Worker) {
			ParFor(w, 0, 32, 2, func(w *Worker, i int) {
				ParFor(w, 0, 32, 4, func(w *Worker, j int) {
					total.Add(1)
				})
			})
		})
		if total.Load() != 32*32 {
			t.Errorf("nested ParFor executed %d bodies, want %d", total.Load(), 32*32)
		}
	})
}

func TestFork4RunsAllBranches(t *testing.T) {
	s := newTestScheduler(HalfLCWS, 4)
	var mask atomic.Int32
	s.Run(func(w *Worker) {
		Fork4(w,
			func(w *Worker) { mask.Add(1) },
			func(w *Worker) { mask.Add(10) },
			func(w *Worker) { mask.Add(100) },
			func(w *Worker) { mask.Add(1000) },
		)
	})
	if mask.Load() != 1111 {
		t.Errorf("Fork4 branches = %d, want 1111", mask.Load())
	}
}

func TestUnbalancedRecursionCompletes(t *testing.T) {
	// A highly skewed task tree stresses stealing and (for LCWS) the
	// exposure path: the left spine is long, rights are tiny.
	var count func(w *Worker, depth int) int
	count = func(w *Worker, depth int) int {
		if depth == 0 {
			return 1
		}
		var a, b int
		Fork2(w,
			func(w *Worker) { a = count(w, depth-1) },
			func(w *Worker) { b = 1 },
		)
		return a + b
	}
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 4)
		var got int
		s.Run(func(w *Worker) { got = count(w, 200) })
		if got != 201 {
			t.Errorf("skewed tree count = %d, want 201", got)
		}
	})
}

func TestCountersTasksExecuted(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 2)
		s.Run(func(w *Worker) { fib(w, 10) })
		sn := s.Counters()
		// fib(10) forks 88 pairs plus the root: every push must be
		// matched by exactly one execution, plus the root task.
		if sn.Get(counters.TaskExecuted) != sn.Get(counters.TaskPushed)+1 {
			t.Errorf("executed %d tasks for %d pushes (+1 root expected)",
				sn.Get(counters.TaskExecuted), sn.Get(counters.TaskPushed))
		}
	})
}

func TestCountersPolicyModel(t *testing.T) {
	// Single worker, no thieves: WS must pay fences for every push/pop;
	// LCWS must pay none at all (every op is private).
	run := func(p Policy) counters.Snapshot {
		s := newTestScheduler(p, 1)
		s.Run(func(w *Worker) { fib(w, 12) })
		return s.Counters()
	}
	ws := run(WS)
	if ws.Get(counters.Fence) == 0 {
		t.Error("WS with 1 worker recorded no fences; expected one per push and pop")
	}
	wantWSFences := ws.Get(counters.TaskPushed) * 2 // 1 push fence + 1 pop fence per task
	if ws.Get(counters.Fence) != wantWSFences {
		t.Errorf("WS fences = %d, want %d (2 per pushed task)", ws.Get(counters.Fence), wantWSFences)
	}
	for _, p := range LCWSPolicies {
		sn := run(p)
		if got := sn.Get(counters.Fence); got != 0 {
			t.Errorf("%v with 1 worker recorded %d fences, want 0", p, got)
		}
		if got := sn.Get(counters.CAS); got != 0 {
			t.Errorf("%v with 1 worker recorded %d CAS, want 0", p, got)
		}
	}
}

func TestConcurrentRunsShareThePool(t *testing.T) {
	// The resident executor accepts overlapping Runs from multiple
	// goroutines: both jobs complete over the same pool (the one-shot
	// scheduler used to panic here).
	s := newTestScheduler(WS, 2)
	inRun := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(func(w *Worker) {
			close(inRun)
			<-release
		})
	}()
	<-inRun
	var got int
	s.Run(func(w *Worker) { got = fib(w, 10) })
	if got != 55 {
		t.Errorf("overlapping Run: fib(10) = %d, want 55", got)
	}
	close(release)
	<-done
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"WS", WS, true},
		{"USLCWS", USLCWS, true},
		{"User", USLCWS, true},
		{"Signal", SignalLCWS, true},
		{"Cons", ConsLCWS, true},
		{"Half", HalfLCWS, true},
		{"nope", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", c.in)
		}
	}
}

func TestPolicyPredicates(t *testing.T) {
	if WS.SplitDeque() {
		t.Error("WS should not use a split deque")
	}
	for _, p := range LCWSPolicies {
		if !p.SplitDeque() {
			t.Errorf("%v should use a split deque", p)
		}
	}
	if USLCWS.SignalBased() {
		t.Error("USLCWS is not signal-based")
	}
	for _, p := range []Policy{SignalLCWS, ConsLCWS, HalfLCWS} {
		if !p.SignalBased() {
			t.Errorf("%v should be signal-based", p)
		}
	}
	if !SignalLCWS.raceFixPop() || !HalfLCWS.raceFixPop() {
		t.Error("Signal and Half must use the race-fixed pop_bottom")
	}
	if ConsLCWS.raceFixPop() || USLCWS.raceFixPop() || LaceWS.raceFixPop() {
		t.Error("Cons, USLCWS and Lace must keep the original pop_bottom")
	}
	if !USLCWS.flagBased() || !LaceWS.flagBased() {
		t.Error("USLCWS and Lace observe requests via the targeted flag")
	}
	if LaceWS.SignalBased() {
		t.Error("Lace is not signal-based")
	}
	if !LaceWS.SplitDeque() {
		t.Error("Lace uses a split deque")
	}
}

func TestSignalsFlowOnlyInSignalPolicies(t *testing.T) {
	// Run a workload with enough parallelism slack that thieves must
	// request exposure, and check signal counters per policy.
	run := func(p Policy) counters.Snapshot {
		s := newTestScheduler(p, 4)
		s.Run(func(w *Worker) { fib(w, 18) })
		return s.Counters()
	}
	if sn := run(WS); sn.Get(counters.SignalSent) != 0 || sn.Get(counters.Exposure) != 0 {
		t.Error("WS recorded signals or exposures")
	}
	if sn := run(USLCWS); sn.Get(counters.SignalSent) != 0 {
		t.Error("USLCWS sent emulated signals; it must use only the targeted flag")
	}
	for _, p := range []Policy{SignalLCWS, ConsLCWS, HalfLCWS} {
		sn := run(p)
		if sn.Get(counters.SignalHandled) > sn.Get(counters.SignalSent) {
			t.Errorf("%v handled %d signals but only %d were sent",
				p, sn.Get(counters.SignalHandled), sn.Get(counters.SignalSent))
		}
	}
}

func TestTaskPanicPropagatesToRun(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 3)
		defer func() {
			// recover() != nil still holds for existing callers; the
			// value is now a TaskPanic wrapping the original.
			r := recover()
			if r == nil {
				t.Fatal("Run did not re-throw the task panic")
			}
			tp, ok := r.(*TaskPanic)
			if !ok {
				t.Fatalf("Run re-threw %T (%v), want *TaskPanic", r, r)
			}
			if tp.Value != "boom" {
				t.Fatalf("Run re-threw TaskPanic.Value %v, want boom", tp.Value)
			}
			if tp.WorkerID < 0 || tp.WorkerID >= s.Workers() {
				t.Fatalf("TaskPanic.WorkerID = %d, want a valid worker id", tp.WorkerID)
			}
		}()
		s.Run(func(w *Worker) {
			ParFor(w, 0, 100, 1, func(w *Worker, i int) {
				if i == 37 {
					panic("boom")
				}
			})
		})
	})
}

func TestPanicInForkedBranch(t *testing.T) {
	s := newTestScheduler(SignalLCWS, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("panic in forked branch not propagated")
		}
	}()
	s.Run(func(w *Worker) {
		Fork2(w,
			func(w *Worker) {},
			func(w *Worker) { panic("right branch") },
		)
	})
}

func TestYieldEveryOptionRuns(t *testing.T) {
	s := NewScheduler(Options{Workers: 2, Policy: HalfLCWS, YieldEvery: 1, Seed: 3})
	var got int
	s.Run(func(w *Worker) { got = fib(w, 12) })
	if got != 144 {
		t.Fatalf("fib with YieldEvery = %d", got)
	}
}

func TestLacePolicyEndToEnd(t *testing.T) {
	for _, workers := range testWorkerCounts {
		s := newTestScheduler(LaceWS, workers)
		var got int
		s.Run(func(w *Worker) { got = fib(w, 16) })
		if got != 987 {
			t.Errorf("Lace P=%d: fib(16) = %d, want 987", workers, got)
		}
	}
}

func TestLaceSendsNoSignals(t *testing.T) {
	s := newTestScheduler(LaceWS, 4)
	s.Run(func(w *Worker) { fib(w, 18) })
	sn := s.Counters()
	if sn.Get(counters.SignalSent) != 0 || sn.Get(counters.SignalHandled) != 0 {
		t.Error("Lace used the signal mechanism; it must be flag-based")
	}
}

func TestLaceSingleWorkerSyncFree(t *testing.T) {
	s := newTestScheduler(LaceWS, 1)
	s.Run(func(w *Worker) { fib(w, 12) })
	sn := s.Counters()
	if sn.Get(counters.Fence) != 0 || sn.Get(counters.CAS) != 0 {
		t.Errorf("Lace with 1 worker recorded sync ops: fences=%d cas=%d",
			sn.Get(counters.Fence), sn.Get(counters.CAS))
	}
}

func TestOversubscribedStealDynamics(t *testing.T) {
	// With task-granular yielding, thieves interleave with the busy
	// worker even on a single-CPU host, driving the steal, exposure and
	// (for signal policies) notification paths.
	work := func(w *Worker) {
		ParFor(w, 0, 3000, 4, func(w *Worker, i int) {
			x := i
			for k := 0; k < 50; k++ {
				x = x*31 + k
				w.Poll()
			}
			_ = x
		})
	}
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := NewScheduler(Options{Workers: 8, Policy: p, Seed: 5, YieldEvery: 1})
		s.Run(work)
		sn := s.Counters()
		if sn.Get(counters.StealAttempt) == 0 {
			t.Errorf("%v: no steal attempts despite 8 oversubscribed workers", p)
		}
		if p != WS && sn.Get(counters.StealSuccess) > 0 && sn.Get(counters.Exposure) == 0 {
			t.Errorf("%v: steals happened without any exposure", p)
		}
		if p == WS && sn.Get(counters.Exposure) != 0 {
			t.Error("WS recorded exposures")
		}
	})
}

func TestWorkerCountersPerWorker(t *testing.T) {
	s := newTestScheduler(WS, 2)
	s.Run(func(w *Worker) { fib(w, 10) })
	var sum counters.Snapshot
	for id := 0; id < s.Workers(); id++ {
		sum = sum.Add(s.WorkerCounters(id))
	}
	total := s.Counters()
	for e := 0; e < counters.NumEvents; e++ {
		if sum[e] != total[e] {
			t.Errorf("event %v: per-worker sum %d != total %d", counters.Event(e), sum[e], total[e])
		}
	}
}

func TestSmallDequeCapacityOverflows(t *testing.T) {
	// A deque smaller than the recursion depth no longer panics: it
	// doubles up to MaxDequeCapacity and then spills its oldest tasks to
	// the overflow list, so the job completes — with the growth and
	// spill visible in the stats.
	s := NewScheduler(Options{Workers: 1, Policy: SignalLCWS, DequeCapacity: 4, MaxDequeCapacity: 8})
	defer s.Close()
	var got int
	s.Run(func(w *Worker) { got = fib(w, 20) })
	if want := 6765; got != want {
		t.Errorf("fib(20) = %d through growth and spilling, want %d", got, want)
	}
	st := s.Stats()
	if st.DequeGrows == 0 {
		t.Errorf("deep recursion on a 4-slot deque recorded no growth")
	}
	if st.TasksSpilled == 0 {
		t.Errorf("recursion past the 8-slot maximum capacity recorded no spills")
	}
}

func TestOptionsDefaults(t *testing.T) {
	s := NewScheduler(Options{})
	if s.Workers() != 1 || s.Policy() != WS {
		t.Errorf("zero Options gave %d workers, %v", s.Workers(), s.Policy())
	}
}

func TestCheckpointHandlesPendingSignal(t *testing.T) {
	// Drive the emulated-signal handler directly: set up a worker with
	// private work and a pending signal; Checkpoint must expose.
	s := newTestScheduler(SignalLCWS, 1)
	s.Run(func(w *Worker) {
		rt := &Task{fn: func(*Worker) {}}
		w.push(rt)
		w.pending.Store(true)
		w.Checkpoint()
		sn := s.Counters()
		if sn.Get(counters.SignalHandled) != 1 {
			t.Errorf("SignalHandled = %d, want 1", sn.Get(counters.SignalHandled))
		}
		if sn.Get(counters.Exposure) != 1 {
			t.Errorf("Exposure = %d, want 1", sn.Get(counters.Exposure))
		}
		// Take the (now public) task back so Run's empty-deque invariant
		// holds.
		if got := w.popLocal(); got != rt {
			t.Error("exposed task not retrievable via popLocal")
		}
		w.runTask(rt)
	})
}

func TestForkN(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 3)
		var sum atomic.Int64
		s.Run(func(w *Worker) {
			var fns []func(*Worker)
			for i := 1; i <= 17; i++ {
				i := i
				fns = append(fns, func(w *Worker) { sum.Add(int64(i)) })
			}
			ForkN(w, fns...)
		})
		if sum.Load() != 17*18/2 {
			t.Errorf("ForkN sum = %d, want %d", sum.Load(), 17*18/2)
		}
	})
}

func TestForkNDegenerate(t *testing.T) {
	s := newTestScheduler(SignalLCWS, 2)
	s.Run(func(w *Worker) {
		ForkN(w) // zero branches: no-op
		ran := false
		ForkN(w, func(w *Worker) { ran = true })
		if !ran {
			t.Error("single-branch ForkN did not run")
		}
	})
}

func TestPollEveryOption(t *testing.T) {
	// With PollEvery=1 every Poll checks for signals; a pending signal
	// planted before a polling loop must be handled on the first call.
	s := NewScheduler(Options{Workers: 1, Policy: SignalLCWS, PollEvery: 1})
	s.Run(func(w *Worker) {
		rt := &Task{fn: func(*Worker) {}}
		w.push(rt)
		w.pending.Store(true)
		w.Poll()
		if s.Counters().Get(counters.SignalHandled) != 1 {
			t.Error("PollEvery=1 did not handle the signal on the first Poll")
		}
		w.runTask(w.popLocal())
	})
	// With a huge interval, a small number of polls never checks.
	s2 := NewScheduler(Options{Workers: 1, Policy: SignalLCWS, PollEvery: 1 << 20})
	s2.Run(func(w *Worker) {
		rt := &Task{fn: func(*Worker) {}}
		w.push(rt)
		w.pending.Store(true)
		for i := 0; i < 100; i++ {
			w.Poll()
		}
		if s2.Counters().Get(counters.SignalHandled) != 0 {
			t.Error("huge PollEvery handled a signal within 100 polls")
		}
		w.pending.Store(false)
		w.runTask(w.popLocal())
	})
}
