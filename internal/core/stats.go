package core

import (
	"lcws/internal/counters"
	"lcws/internal/trace"
)

// Stats aggregates the instrumentation of a scheduler: the
// synchronization operations the reference C++ implementation would
// execute (Fences, CAS — see internal/counters/model.go for the
// counting model), scheduler-level event counts, and — when the
// scheduler traces — the four derived latency histograms. The paper's
// profiles (Figures 3 and 8) are ratios of the counter fields between
// schedulers.
//
// Obtain one with Scheduler.Stats; interval deltas with Stats.Sub.
type Stats struct {
	// Fences counts memory fences per the counting model.
	Fences uint64
	// CAS counts compare-and-swap instructions per the counting model.
	CAS uint64
	// StealAttempts counts pop_top calls on victims.
	StealAttempts uint64
	// StealSuccesses counts steals that obtained a task.
	StealSuccesses uint64
	// StealPrivateWork counts steal attempts that found only private
	// work and so notified the victim.
	StealPrivateWork uint64
	// StealAborts counts steal attempts that lost a CAS race.
	StealAborts uint64
	// Exposures counts tasks moved from private to public parts.
	Exposures uint64
	// ExposedNotStolen counts exposed tasks taken back by their owner.
	ExposedNotStolen uint64
	// SignalsSent counts emulated pthread_kill notifications.
	SignalsSent uint64
	// SignalsHandled counts exposure requests handled by owners.
	SignalsHandled uint64
	// IdleIterations counts scheduler iterations that found no work.
	IdleIterations uint64
	// ParkedNanos is the total time (ns) workers spent sleeping in the
	// idle backoff, separating parked idle cost from busy idle spinning.
	ParkedNanos uint64
	// TasksExecuted counts tasks run to completion.
	TasksExecuted uint64
	// TasksPushed counts deque pushes.
	TasksPushed uint64
	// StealBatchTasks counts tasks transferred by batched steals
	// (StealBatch mode); StealBatchTasks / StealSuccesses is the average
	// claimed batch size.
	StealBatchTasks uint64
	// WakeupsSent counts parked thieves woken by work-producing events
	// (StealBatch mode).
	WakeupsSent uint64
	// ParkCount counts semaphore parks in the idle parking lot
	// (StealBatch mode); the time spent parked is in ParkedNanos.
	ParkCount uint64
	// TraceDrops counts flight-recorder events lost to ring wrap-around
	// or snapshot freeze windows; always zero when tracing is off.
	TraceDrops uint64
	// TasksDiscarded counts orphaned tasks drained unexecuted because
	// their job failed or was cancelled; zero while every job succeeds.
	TasksDiscarded uint64
	// DequeGrows counts deque array doublings (one per published
	// generation); zero while no live window outgrew the initial
	// capacity.
	DequeGrows uint64
	// TasksSpilled counts tasks moved from a deque at its maximum
	// capacity onto the owner's overflow list.
	TasksSpilled uint64
	// FreelistRefills counts recycled tasks adopted from the global
	// recycle shards on freelist misses.
	FreelistRefills uint64
	// FreelistReturns counts tasks evicted from over-full per-worker
	// freelists (donated to the recycle shards or released to the GC).
	FreelistReturns uint64
	// RelaxedSteals counts tasks claimed through the MultFree relaxed
	// (fence- and CAS-free) steal path; zero outside MultFree.
	RelaxedSteals uint64
	// TasksDuplicated counts duplicate task executions absorbed by the
	// MultFree generation-stamp arbitration (the bounded-multiplicity
	// cost); completion accounting excludes them, so TasksExecuted stays
	// exact. Zero outside MultFree.
	TasksDuplicated uint64

	// Executor-level job accounting (scheduler atomics, not per-worker
	// counters): jobs submitted / settled successfully / settled failed
	// since the scheduler's creation or the last ResetStats.
	JobsSubmitted uint64
	JobsCompleted uint64
	JobsFailed    uint64

	// Multi-tenant QoS accounting. JobsEnqueued counts jobs that
	// entered the injector, per class; AdmissionRejects counts
	// submissions refused with ErrQueueFull (AdmitFail against a class
	// at its ClassCapacity); JobYields counts queued jobs picked up at
	// a checkpoint of a running less-urgent job (the preemption point).
	JobsEnqueuedHigh   uint64
	JobsEnqueuedNormal uint64
	JobsEnqueuedLow    uint64
	AdmissionRejects   uint64
	JobYields          uint64

	// Elastic pool accounting (scheduler atomics). PoolGrows counts
	// demand-driven grows (injector backlog outran unparked workers);
	// WorkersRetired counts workers that completed retirement after
	// being shrunk out of the live set; Resizes counts installed
	// worker-set snapshots (SetWorkers and elastic triggers alike);
	// EpochReclaims counts retired slots whose heap resources were
	// reclaimed after epoch quiescence.
	PoolGrows      uint64
	WorkersRetired uint64
	Resizes        uint64
	EpochReclaims  uint64

	// The derived latency histograms, populated only on schedulers built
	// with tracing (zero-valued otherwise). Like the counters they are
	// exact only while no Run is in progress.

	// StealToHit is the time from a thief's first fruitless steal
	// attempt to its next successful steal.
	StealToHit trace.Histogram
	// FlagToExposure is the time from a thief setting a victim's
	// targeted flag to the victim exposing work.
	FlagToExposure trace.Histogram
	// SignalToHandle is the time from an emulated signal send to the
	// victim's handler running.
	SignalToHandle trace.Histogram
	// ParkDuration is the length of workers' idle-blocking episodes.
	ParkDuration trace.Histogram

	// The per-class injector-wait histograms: queue-to-pickup latency
	// of each job, by class. Unlike the trace histograms above they are
	// populated on every scheduler (pickup is a per-job event, off the
	// task hot path), so the QoS fairness and starvation bounds can be
	// stated without tracing.
	InjectorWaitHigh   trace.Histogram
	InjectorWaitNormal trace.Histogram
	InjectorWaitLow    trace.Histogram
}

func statsFromSnapshot(sn counters.Snapshot) Stats {
	return Stats{
		Fences:           sn.Get(counters.Fence),
		CAS:              sn.Get(counters.CAS),
		StealAttempts:    sn.Get(counters.StealAttempt),
		StealSuccesses:   sn.Get(counters.StealSuccess),
		StealPrivateWork: sn.Get(counters.StealPrivate),
		StealAborts:      sn.Get(counters.StealAbort),
		Exposures:        sn.Get(counters.Exposure),
		ExposedNotStolen: sn.Get(counters.ExposedNotStolen),
		SignalsSent:      sn.Get(counters.SignalSent),
		SignalsHandled:   sn.Get(counters.SignalHandled),
		IdleIterations:   sn.Get(counters.IdleIteration),
		ParkedNanos:      sn.Get(counters.ParkedNanos),
		TasksExecuted:    sn.Get(counters.TaskExecuted),
		TasksPushed:      sn.Get(counters.TaskPushed),
		StealBatchTasks:  sn.Get(counters.StealBatchTasks),
		WakeupsSent:      sn.Get(counters.WakeupsSent),
		ParkCount:        sn.Get(counters.ParkCount),
		TraceDrops:       sn.Get(counters.TraceDrop),
		TasksDiscarded:   sn.Get(counters.TaskDiscarded),
		DequeGrows:       sn.Get(counters.DequeGrow),
		TasksSpilled:     sn.Get(counters.TaskSpilled),
		FreelistRefills:  sn.Get(counters.FreelistRefill),
		FreelistReturns:  sn.Get(counters.FreelistReturn),
		RelaxedSteals:    sn.Get(counters.RelaxedSteal),
		TasksDuplicated:  sn.Get(counters.TaskDuplicated),
		JobYields:        sn.Get(counters.JobYield),
	}
}

// Stats returns the counters — and, when tracing, the latency
// histograms — accumulated since the scheduler's creation or the last
// ResetStats. Exact only while no Run is in progress (the per-worker
// counters are owner-written without synchronization).
func (s *Scheduler) Stats() Stats {
	st := statsFromSnapshot(s.ctrs.Snapshot())
	st.JobsSubmitted = s.jobsSubmitted.Load()
	st.JobsCompleted = s.jobsCompleted.Load()
	st.JobsFailed = s.jobsFailed.Load()
	st.JobsEnqueuedHigh = s.jobsEnqueued[High].Load()
	st.JobsEnqueuedNormal = s.jobsEnqueued[Normal].Load()
	st.JobsEnqueuedLow = s.jobsEnqueued[Low].Load()
	st.AdmissionRejects = s.admissionRejects.Load()
	st.PoolGrows = s.poolGrows.Load()
	st.WorkersRetired = s.workersRetired.Load()
	st.Resizes = s.resizes.Load()
	st.EpochReclaims = s.epochReclaims.Load()
	st.InjectorWaitHigh = s.InjectorWait(High)
	st.InjectorWaitNormal = s.InjectorWait(Normal)
	st.InjectorWaitLow = s.InjectorWait(Low)
	if s.opts.Trace != nil {
		// Aggregate over the current snapshot's live slots: the
		// acquire load orders a grown slot's recorder construction
		// before our reads, and retired slots (whose hists persist
		// until regrow) rejoin the sum when re-admitted.
		set := s.set.Load()
		for i := range set.slots {
			st.StealToHit = st.StealToHit.Add(s.worker(i).rec.Hist(trace.LatStealToHit))
			st.FlagToExposure = st.FlagToExposure.Add(s.worker(i).rec.Hist(trace.LatFlagToExpose))
			st.SignalToHandle = st.SignalToHandle.Add(s.worker(i).rec.Hist(trace.LatSignalToHandle))
			st.ParkDuration = st.ParkDuration.Add(s.worker(i).rec.Hist(trace.LatPark))
		}
	}
	return st
}

// ResetStats zeroes the scheduler's counters and latency histograms
// (the flight-recorder rings are untouched; they age out on their own).
func (s *Scheduler) ResetStats() {
	s.ctrs.Reset()
	s.jobsSubmitted.Store(0)
	s.jobsCompleted.Store(0)
	s.jobsFailed.Store(0)
	for c := range s.jobsEnqueued {
		s.jobsEnqueued[c].Store(0)
	}
	s.admissionRejects.Store(0)
	s.poolGrows.Store(0)
	s.workersRetired.Store(0)
	s.resizes.Store(0)
	s.epochReclaims.Store(0)
	s.waitMu.Lock()
	s.waitHist = [NumJobClasses]trace.Histogram{}
	s.waitMu.Unlock()
	if s.opts.Trace != nil {
		// Under resizeMu so no slot's recorder is being constructed
		// concurrently; the full slab is walked (nil recorders are
		// never-initialized slots) so retired workers' frozen hists
		// cannot leak back into a later interval on regrow.
		s.resizeMu.Lock()
		for i := range s.workers {
			if s.worker(i).rec != nil {
				s.worker(i).rec.ResetHists()
			}
		}
		s.resizeMu.Unlock()
	}
}

// Sub returns the interval delta st - prev: counter fields are
// subtracted (clamped at zero, so a reset between the two snapshots
// cannot wrap), histograms via Histogram.Sub. Use it to profile one
// phase of a long-lived scheduler:
//
//	before := s.Stats()
//	s.Run(phase)
//	delta := s.Stats().Sub(before)
func (st Stats) Sub(prev Stats) Stats {
	return Stats{
		Fences:           clampSub(st.Fences, prev.Fences),
		CAS:              clampSub(st.CAS, prev.CAS),
		StealAttempts:    clampSub(st.StealAttempts, prev.StealAttempts),
		StealSuccesses:   clampSub(st.StealSuccesses, prev.StealSuccesses),
		StealPrivateWork: clampSub(st.StealPrivateWork, prev.StealPrivateWork),
		StealAborts:      clampSub(st.StealAborts, prev.StealAborts),
		Exposures:        clampSub(st.Exposures, prev.Exposures),
		ExposedNotStolen: clampSub(st.ExposedNotStolen, prev.ExposedNotStolen),
		SignalsSent:      clampSub(st.SignalsSent, prev.SignalsSent),
		SignalsHandled:   clampSub(st.SignalsHandled, prev.SignalsHandled),
		IdleIterations:   clampSub(st.IdleIterations, prev.IdleIterations),
		ParkedNanos:      clampSub(st.ParkedNanos, prev.ParkedNanos),
		TasksExecuted:    clampSub(st.TasksExecuted, prev.TasksExecuted),
		TasksPushed:      clampSub(st.TasksPushed, prev.TasksPushed),
		StealBatchTasks:  clampSub(st.StealBatchTasks, prev.StealBatchTasks),
		WakeupsSent:      clampSub(st.WakeupsSent, prev.WakeupsSent),
		ParkCount:        clampSub(st.ParkCount, prev.ParkCount),
		TraceDrops:       clampSub(st.TraceDrops, prev.TraceDrops),
		TasksDiscarded:   clampSub(st.TasksDiscarded, prev.TasksDiscarded),
		DequeGrows:       clampSub(st.DequeGrows, prev.DequeGrows),
		TasksSpilled:     clampSub(st.TasksSpilled, prev.TasksSpilled),
		FreelistRefills:  clampSub(st.FreelistRefills, prev.FreelistRefills),
		FreelistReturns:  clampSub(st.FreelistReturns, prev.FreelistReturns),
		RelaxedSteals:    clampSub(st.RelaxedSteals, prev.RelaxedSteals),
		TasksDuplicated:  clampSub(st.TasksDuplicated, prev.TasksDuplicated),
		JobsSubmitted:    clampSub(st.JobsSubmitted, prev.JobsSubmitted),
		JobsCompleted:    clampSub(st.JobsCompleted, prev.JobsCompleted),
		JobsFailed:       clampSub(st.JobsFailed, prev.JobsFailed),

		JobsEnqueuedHigh:   clampSub(st.JobsEnqueuedHigh, prev.JobsEnqueuedHigh),
		JobsEnqueuedNormal: clampSub(st.JobsEnqueuedNormal, prev.JobsEnqueuedNormal),
		JobsEnqueuedLow:    clampSub(st.JobsEnqueuedLow, prev.JobsEnqueuedLow),
		AdmissionRejects:   clampSub(st.AdmissionRejects, prev.AdmissionRejects),
		JobYields:          clampSub(st.JobYields, prev.JobYields),

		PoolGrows:      clampSub(st.PoolGrows, prev.PoolGrows),
		WorkersRetired: clampSub(st.WorkersRetired, prev.WorkersRetired),
		Resizes:        clampSub(st.Resizes, prev.Resizes),
		EpochReclaims:  clampSub(st.EpochReclaims, prev.EpochReclaims),

		StealToHit:     st.StealToHit.Sub(prev.StealToHit),
		FlagToExposure: st.FlagToExposure.Sub(prev.FlagToExposure),
		SignalToHandle: st.SignalToHandle.Sub(prev.SignalToHandle),
		ParkDuration:   st.ParkDuration.Sub(prev.ParkDuration),

		InjectorWaitHigh:   st.InjectorWaitHigh.Sub(prev.InjectorWaitHigh),
		InjectorWaitNormal: st.InjectorWaitNormal.Sub(prev.InjectorWaitNormal),
		InjectorWaitLow:    st.InjectorWaitLow.Sub(prev.InjectorWaitLow),
	}
}

func clampSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// UnstolenFraction returns the fraction of exposed tasks that were not
// stolen (Figures 3d and 8d), or 0 when nothing was exposed.
func (st Stats) UnstolenFraction() float64 {
	if st.Exposures == 0 {
		return 0
	}
	return float64(st.ExposedNotStolen) / float64(st.Exposures)
}
