package core

import (
	"runtime"
	"testing"

	"lcws/internal/counters"
)

// Scheduler-level tests for the MultFree relaxed-stealing policy: the
// policy table and parsing, the counting model, the exactly-once
// execution guarantee under duplicated relaxed claims (the shadow-array
// stress, which the CI race matrix runs under -race), and the flow of
// the relaxed counters through Stats.

func TestPoliciesParseRoundTrip(t *testing.T) {
	// Every policy's figure label must round-trip through ParsePolicy,
	// case-insensitively — flag values like "multfree" select the
	// policy its Stats and BENCH documents report.
	for _, p := range Policies {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", p.String(), got, err, p)
		}
	}
	for _, in := range []string{"MultFree", "multfree", "MULTFREE"} {
		got, err := ParsePolicy(in)
		if err != nil || got != MultFree {
			t.Errorf("ParsePolicy(%q) = %v, %v; want MultFree", in, got, err)
		}
	}
}

func TestMultFreePredicates(t *testing.T) {
	if !MultFree.SplitDeque() {
		t.Error("MultFree must use the split deque")
	}
	if !MultFree.SignalBased() {
		t.Error("MultFree keeps Signal's notification machinery")
	}
	if !MultFree.raceFixPop() {
		t.Error("MultFree must use the race-fixed pop_bottom")
	}
	if !MultFree.relaxedSteal() {
		t.Error("MultFree must enable the relaxed steal path")
	}
	for _, p := range Policies {
		if p != MultFree && p.relaxedSteal() {
			t.Errorf("%v claims the relaxed steal path; only MultFree may", p)
		}
	}
}

func TestMultFreeSingleWorkerSyncFree(t *testing.T) {
	// With no thieves every operation is owner-local: like the LCWS
	// family, MultFree must pay zero fences and zero CAS, and the
	// relaxed machinery must stay cold.
	s := newTestScheduler(MultFree, 1)
	var got int
	s.Run(func(w *Worker) { got = fib(w, 12) })
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
	sn := s.Counters()
	if f, cas := sn.Get(counters.Fence), sn.Get(counters.CAS); f != 0 || cas != 0 {
		t.Errorf("MultFree with 1 worker cost (%d fences, %d CAS), want (0, 0)", f, cas)
	}
	if r := sn.Get(counters.RelaxedSteal); r != 0 {
		t.Errorf("%d relaxed steals with no thieves, want 0", r)
	}
	if d := sn.Get(counters.TaskDuplicated); d != 0 {
		t.Errorf("%d duplicates with no thieves, want 0", d)
	}
}

func TestMultFreeFork2NeverDuplicates(t *testing.T) {
	// Fork2 closures are non-idempotent: thieves may take them only
	// through the exclusive CAS fallback, so a pure fork-join workload
	// must finish with exact arithmetic and zero absorbed duplicates.
	s := newTestScheduler(MultFree, 4)
	var got int
	s.Run(func(w *Worker) { got = fib(w, 20) })
	if got != 6765 {
		t.Fatalf("fib(20) = %d, want 6765", got)
	}
	if d := s.Stats().TasksDuplicated; d != 0 {
		t.Errorf("closure-only workload absorbed %d duplicates, want 0", d)
	}
}

// TestMultFreeParForShadowStress is the exactly-once stress of the
// acceptance criteria: a fine-grained ParFor over a million elements
// under MultFree, with a plain (non-atomic) shadow array. Relaxed
// claims may hand the same range task to several workers, but the
// execution-claim arbitration (Task.execSeq) lets exactly one claimant
// run it — so every element is incremented exactly once, the plain
// increments are race-free (the CI race matrix runs this under -race,
// where a double execution would be reported as a data race as well as
// a count mismatch), and absorbed duplicates stay within the
// model-checked bound of thieves x relaxed steals.
func TestMultFreeParForShadowStress(t *testing.T) {
	const workers = 4
	n := 1_000_000
	if testing.Short() || raceEnabled {
		n = 1 << 17 // the race detector makes the full million ~10x slower
	}
	s := newTestScheduler(MultFree, workers)
	shadow := make([]int32, n)
	s.Run(func(w *Worker) {
		ParFor(w, 0, n, 64, func(w *Worker, i int) {
			shadow[i]++
			if i%2048 == 0 {
				// Let thief goroutines run on ovesubscribed hosts so the
				// relaxed steal path actually sees traffic.
				runtime.Gosched()
			}
		})
	})
	bad := 0
	for i, v := range shadow {
		if v != 1 {
			if bad < 5 {
				t.Errorf("shadow[%d] = %d, want 1 (exactly-once execution)", i, v)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Fatalf("%d of %d elements not executed exactly once", bad, n)
	}
	st := s.Stats()
	t.Logf("stress: %d tasks, %d relaxed steals, %d duplicates absorbed",
		st.TasksExecuted, st.RelaxedSteals, st.TasksDuplicated)
	if bound := uint64(workers-1) * st.RelaxedSteals; st.TasksDuplicated > bound {
		t.Errorf("%d duplicates exceed thieves x relaxed-steals = %d", st.TasksDuplicated, bound)
	}
	if runtime.GOMAXPROCS(0) >= 2 && st.RelaxedSteals == 0 {
		t.Error("no relaxed steals on a multi-CPU host; the relaxed path was never exercised")
	}
}

func TestMultFreeStatsSubCarriesRelaxedCounters(t *testing.T) {
	a := Stats{RelaxedSteals: 7, TasksDuplicated: 3}
	b := Stats{RelaxedSteals: 2, TasksDuplicated: 1}
	d := a.Sub(b)
	if d.RelaxedSteals != 5 || d.TasksDuplicated != 2 {
		t.Errorf("Sub = (%d relaxed, %d duplicated), want (5, 2)", d.RelaxedSteals, d.TasksDuplicated)
	}
	z := a.Sub(a)
	if z.RelaxedSteals != 0 || z.TasksDuplicated != 0 {
		t.Errorf("self-Sub not zero: %+v", z)
	}
	// Clamped, not underflowed, when the baseline ran further.
	u := b.Sub(a)
	if u.RelaxedSteals != 0 || u.TasksDuplicated != 0 {
		t.Errorf("clamped Sub = (%d, %d), want (0, 0)", u.RelaxedSteals, u.TasksDuplicated)
	}
}
