package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"lcws/internal/trace"
)

// traceTestScheduler builds a traced scheduler tuned so steals and
// exposures actually happen (oversubscribed yielding, small poll
// interval), mirroring newTestScheduler in scheduler_test.go.
func traceTestScheduler(p Policy, workers int, ringCap int) *Scheduler {
	return NewScheduler(Options{
		Workers:    workers,
		Policy:     p,
		Seed:       42,
		YieldEvery: 1,
		PollEvery:  4,
		Trace:      &trace.Config{BufPerWorker: ringCap},
	})
}

// spinSum burns deterministic work with Poll calls so signal policies
// can expose mid-task.
func spinSum(w *Worker, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
		w.Poll()
	}
	return s
}

func traceTree(w *Worker, depth int) {
	if depth == 0 {
		spinSum(w, 200)
		return
	}
	Fork2(w,
		func(w *Worker) { traceTree(w, depth-1) },
		func(w *Worker) { traceTree(w, depth-1) },
	)
}

// TestTraceSnapshotEvents runs a fork-join tree under every policy and
// checks the snapshot contains the event types the policy must emit,
// time-sorted and well-formed.
func TestTraceSnapshotEvents(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := traceTestScheduler(p, 4, 1<<14)
		s.Run(func(w *Worker) { traceTree(w, 8) })
		tr := s.TraceSnapshot()
		if tr.Policy != p.String() {
			t.Errorf("Trace.Policy = %q, want %q", tr.Policy, p.String())
		}
		if tr.Workers != 4 {
			t.Errorf("Trace.Workers = %d, want 4", tr.Workers)
		}
		if len(tr.Events) == 0 {
			t.Fatal("snapshot returned no events")
		}
		counts := map[trace.EventType]int{}
		for i, e := range tr.Events {
			if e.Worker < 0 || e.Worker >= 4 {
				t.Fatalf("event %d has worker %d out of range", i, e.Worker)
			}
			if i > 0 && e.Ts < tr.Events[i-1].Ts {
				t.Fatalf("events not time-sorted at %d", i)
			}
			counts[e.Type]++
		}
		if counts[trace.EvFork] == 0 {
			t.Error("no fork events recorded")
		}
		if counts[trace.EvTaskBegin] == 0 || counts[trace.EvTaskEnd] == 0 {
			t.Error("no task span events recorded")
		}
		if counts[trace.EvStealAttempt] == 0 {
			t.Error("no steal attempts recorded (4 workers, yielding pool)")
		}
	})
}

// TestTraceChromeExportFromRun pipes a real run's snapshot through the
// Chrome exporter and the validator.
func TestTraceChromeExportFromRun(t *testing.T) {
	s := traceTestScheduler(SignalLCWS, 4, 1<<14)
	s.Run(func(w *Worker) { traceTree(w, 8) })
	tr := s.TraceSnapshot()
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, &tr); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := trace.ValidateChrome(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateChrome rejected a real run's trace: %v", err)
	}
}

// TestConcurrentTraceSnapshotDuringRun snapshots continuously while a
// Run executes — the satellite requirement that the freeze protocol is
// race-detector clean against live owner rings. Rings are tiny so
// snapshots constantly race wrap-around.
func TestConcurrentTraceSnapshotDuringRun(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := traceTestScheduler(p, 4, 64)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					tr := s.TraceSnapshot()
					for i := 1; i < len(tr.Events); i++ {
						if tr.Events[i].Ts < tr.Events[i-1].Ts {
							t.Error("snapshot not time-sorted")
							return
						}
					}
				}
			}()
		}
		for round := 0; round < 3; round++ {
			s.Run(func(w *Worker) { traceTree(w, 8) })
		}
		close(stop)
		wg.Wait()
		if tr := s.TraceSnapshot(); tr.Dropped == 0 {
			// 64-slot rings over three deep trees must have wrapped.
			t.Error("expected wrap-around drops with a 64-event ring, got none")
		}
	})
}

// TestStatsHistogramsPopulated checks Scheduler.Stats surfaces the four
// latency histograms on a traced scheduler and that Sub clears them.
func TestStatsHistogramsPopulated(t *testing.T) {
	s := traceTestScheduler(SignalLCWS, 4, 1<<14)
	for round := 0; round < 5; round++ {
		s.Run(func(w *Worker) { traceTree(w, 9) })
	}
	st := s.Stats()
	if st.StealSuccesses > 0 && st.StealToHit.Count == 0 {
		t.Error("steals happened but StealToHit histogram is empty")
	}
	if st.SignalsHandled > 0 && st.SignalToHandle.Count == 0 {
		t.Error("signals handled but SignalToHandle histogram is empty")
	}
	if st.IdleIterations > 0 && st.StealToHit.Count == 0 && st.ParkDuration.Count == 0 {
		t.Log("note: idle iterations without park samples (fast quiesce); not a failure")
	}
	// Sub against itself zeroes counts.
	zero := st.Sub(st)
	if zero.StealToHit.Count != 0 || zero.TasksExecuted != 0 {
		t.Errorf("st.Sub(st) not zero: %+v", zero)
	}
	// ResetStats clears both counters and histograms.
	s.ResetStats()
	st = s.Stats()
	if st.TasksExecuted != 0 || st.StealToHit.Count != 0 || st.SignalToHandle.Count != 0 {
		t.Errorf("after ResetStats: TasksExecuted=%d StealToHit.Count=%d", st.TasksExecuted, st.StealToHit.Count)
	}
}

// TestUntracedSchedulerTraceAPI pins the disabled-tracing behavior:
// TraceSnapshot returns an empty trace and Stats' histograms stay zero.
func TestUntracedSchedulerTraceAPI(t *testing.T) {
	s := NewScheduler(Options{Workers: 2, Policy: SignalLCWS})
	s.Run(func(w *Worker) { traceTree(w, 4) })
	if s.Tracing() {
		t.Error("Tracing() = true on an untraced scheduler")
	}
	tr := s.TraceSnapshot()
	if len(tr.Events) != 0 || tr.Dropped != 0 {
		t.Errorf("untraced snapshot: %d events, %d dropped; want empty", len(tr.Events), tr.Dropped)
	}
	st := s.Stats()
	if st.StealToHit.Count != 0 || st.ParkDuration.Count != 0 || st.TraceDrops != 0 {
		t.Error("untraced scheduler reported latency samples or trace drops")
	}
}

// TestTaskPanicCarriesTraceTail asserts the wrapped panic includes the
// panicking worker's recent events when tracing is on, and that the
// scheduler remains recover-compatible.
func TestTaskPanicCarriesTraceTail(t *testing.T) {
	s := traceTestScheduler(SignalLCWS, 2, 1<<10)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-throw the task panic")
		}
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %T, want *TaskPanic", r)
		}
		if tp.Value != "kaboom" {
			t.Errorf("TaskPanic.Value = %v, want kaboom", tp.Value)
		}
		if len(tp.Tail) == 0 {
			t.Error("TaskPanic.Tail empty on a traced scheduler")
		}
		for _, e := range tp.Tail {
			if e.Worker != tp.WorkerID {
				t.Errorf("tail event worker %d != panic worker %d", e.Worker, tp.WorkerID)
			}
		}
		if tp.Error() == "" {
			t.Error("TaskPanic.Error() empty")
		}
	}()
	s.Run(func(w *Worker) {
		Fork2(w,
			func(w *Worker) { spinSum(w, 100) },
			func(w *Worker) { panic("kaboom") },
		)
	})
}

// TestPolicyStringParseRoundTrip pins that every policy's String form —
// in any case — parses back to the same policy (the satellite API
// contract for flag handling), plus the USLCWS figure-label alias.
func TestPolicyStringParseRoundTrip(t *testing.T) {
	for _, p := range Policies {
		for _, name := range []string{p.String(), strings.ToLower(p.String()), strings.ToUpper(p.String())} {
			got, err := ParsePolicy(name)
			if err != nil {
				t.Errorf("ParsePolicy(%q): %v", name, err)
				continue
			}
			if got != p {
				t.Errorf("ParsePolicy(%q) = %v, want %v", name, got, p)
			}
		}
	}
	for _, alias := range []string{"User", "user", "USER"} {
		if got, err := ParsePolicy(alias); err != nil || got != USLCWS {
			t.Errorf("ParsePolicy(%q) = %v, %v; want USLCWS", alias, got, err)
		}
	}
	if _, err := ParsePolicy("nonesuch"); err == nil {
		t.Error("ParsePolicy accepted an unknown name")
	}
}
