package core

// Fork2 executes left and right as a fork-join pair: right is pushed onto
// the worker's deque (where a thief — after an exposure in the LCWS
// schedulers — may steal it) and left runs immediately. After left
// returns, the worker takes right back from its own deque and runs it
// inline, or, if right was stolen, helps execute other tasks until the
// thief completes it. Fork2 returns only when both branches are done.
//
// This is the work-first discipline of Parlay's fork_join_pair: on the
// fast path (no steal) the only scheduler cost is one push and one pop of
// the worker's own deque — which is exactly where LCWS saves its fences.
func Fork2(w *Worker, left, right func(*Worker)) {
	rt := &Task{fn: right}
	w.push(rt)
	left(w)
	if t := w.popLocal(); t != nil {
		// LIFO discipline guarantees the bottom-most task is rt: every
		// task left pushed was joined before left returned.
		if t != rt {
			panic("core: fork-join LIFO violation (bottom of deque is not the forked sibling)")
		}
		w.runTask(t)
		return
	}
	// rt was stolen (or exposed and then stolen); work on other tasks
	// until the thief finishes it.
	w.helpUntil(rt.done.Load)
}

// Fork4 is a convenience two-level Fork2 for four-way forks.
func Fork4(w *Worker, a, b, c, d func(*Worker)) {
	Fork2(w,
		func(w *Worker) { Fork2(w, a, b) },
		func(w *Worker) { Fork2(w, c, d) },
	)
}

// ForkN executes any number of branches as a balanced fork-join tree and
// returns when all are done.
func ForkN(w *Worker, fns ...func(*Worker)) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0](w)
		return
	case 2:
		Fork2(w, fns[0], fns[1])
		return
	}
	mid := len(fns) / 2
	Fork2(w,
		func(w *Worker) { ForkN(w, fns[:mid]...) },
		func(w *Worker) { ForkN(w, fns[mid:]...) },
	)
}

// defaultGrainDiv controls the automatic grain size of ParFor: ranges are
// split until about 8×P leaves exist, matching Parlay's default
// granularity heuristic.
const defaultGrainDiv = 8

// ParFor executes body(w, i) for every i in [lo, hi) with recursive binary
// splitting. grain is the largest range executed sequentially; when
// grain <= 0 a default of max(1, (hi-lo)/(8*P)) is used. Leaf loops call
// Poll every iteration (the masked fast path keeps this cheap), so
// signal-based schedulers can expose work mid-leaf.
func ParFor(w *Worker, lo, hi, grain int, body func(w *Worker, i int)) {
	if lo >= hi {
		return
	}
	if grain <= 0 {
		grain = (hi - lo) / (defaultGrainDiv * w.Workers())
		if grain < 1 {
			grain = 1
		}
	}
	parForRec(w, lo, hi, grain, body)
}

func parForRec(w *Worker, lo, hi, grain int, body func(w *Worker, i int)) {
	if hi-lo <= grain {
		for i := lo; i < hi; i++ {
			body(w, i)
			w.Poll()
		}
		return
	}
	mid := lo + (hi-lo)/2
	Fork2(w,
		func(w *Worker) { parForRec(w, lo, mid, grain, body) },
		func(w *Worker) { parForRec(w, mid, hi, grain, body) },
	)
}
