package core

// Fork2 executes left and right as a fork-join pair: right is pushed onto
// the worker's deque (where a thief — after an exposure in the LCWS
// schedulers — may steal it) and left runs immediately. After left
// returns, the worker takes right back from its own deque and runs it
// inline, or, if right was stolen, helps execute other tasks until the
// thief completes it. Fork2 returns only when both branches are done.
//
// This is the work-first discipline of Parlay's fork_join_pair: on the
// fast path (no steal) the only scheduler cost is one push and one pop of
// the worker's own deque — which is exactly where LCWS saves its fences.
// The task descriptor itself comes from the worker's freelist, so the
// steady-state fast path allocates nothing.
//
//lcws:noalloc
func Fork2(w *Worker, left, right func(*Worker)) {
	rt := w.newTask()
	want := rt.prepareFn(right)
	w.push(rt)
	w.traceFork()
	left(w)
	w.join(rt, want)
}

// Fork4 is a convenience two-level Fork2 for four-way forks.
func Fork4(w *Worker, a, b, c, d func(*Worker)) {
	Fork2(w,
		func(w *Worker) { Fork2(w, a, b) },
		func(w *Worker) { Fork2(w, c, d) },
	)
}

// ForkN executes any number of branches as a balanced fork-join tree and
// returns when all are done.
func ForkN(w *Worker, fns ...func(*Worker)) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0](w)
		return
	case 2:
		Fork2(w, fns[0], fns[1])
		return
	}
	mid := len(fns) / 2
	Fork2(w,
		func(w *Worker) { ForkN(w, fns[:mid]...) },
		func(w *Worker) { ForkN(w, fns[mid:]...) },
	)
}

// defaultGrainDiv controls the automatic grain size of ParFor: ranges are
// split until about 8×P leaves exist, matching Parlay's default
// granularity heuristic.
const defaultGrainDiv = 8

// ParFor executes body(w, i) for every i in [lo, hi) with recursive binary
// splitting. grain is the largest range executed sequentially; when
// grain <= 0 a default of max(1, (hi-lo)/(8*P)) is used. Leaf loops keep
// Poll's exact check cadence but hoist the counter bookkeeping out of the
// per-iteration path (see Worker.runLeaf), so signal-based schedulers can
// still expose work mid-leaf.
//
// Splits are closure-free: every pushed right half is a range-task
// descriptor from the worker's freelist (see Task), so a ParFor call
// allocates only whatever the caller's body closure costs, regardless of
// how many times the range splits.
func ParFor(w *Worker, lo, hi, grain int, body func(w *Worker, i int)) {
	if lo >= hi {
		return
	}
	if grain <= 0 {
		grain = (hi - lo) / (defaultGrainDiv * w.Workers())
		if grain < 1 {
			grain = 1
		}
	}
	w.forkRange(lo, hi, grain, body)
}

// forkRange is the range-task analogue of Fork2: it pushes the right half
// of the range as a descriptor task, recurses into the left half, and
// joins. Stolen range tasks re-enter through runTask, which calls back
// into forkRange on the thief, so splitting continues wherever the range
// ends up executing.
//
//lcws:noalloc
func (w *Worker) forkRange(lo, hi, grain int, body func(*Worker, int)) {
	if hi-lo <= grain {
		w.runLeaf(lo, hi, body)
		return
	}
	mid := lo + (hi-lo)/2
	rt := w.newTask()
	want := rt.prepareRange(mid, hi, grain, body)
	if w.relaxed {
		// MultFree: re-arm the execution-claim word to this incarnation
		// before publication (the descriptor may be a recycled function
		// task carrying a stale claim value, which would otherwise make
		// every claimExec CAS fail and the task unrunnable).
		rt.rearmExec()
	}
	w.push(rt)
	w.traceFork()
	w.forkRange(lo, mid, grain, body)
	w.join(rt, want)
}
