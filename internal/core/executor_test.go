package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcws/internal/counters"
	"lcws/internal/trace"
)

// --- Lifecycle -----------------------------------------------------------

func TestSubmitWaitBasic(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 4)
		defer s.Close()
		var got int
		j := s.Submit(func(w *Worker) { got = fib(w, 16) })
		if err := j.Wait(); err != nil {
			t.Fatalf("Wait = %v", err)
		}
		if got != 987 {
			t.Fatalf("fib(16) = %d, want 987", got)
		}
		st := j.Stats()
		if st.Tasks == 0 {
			t.Error("JobStats.Tasks = 0 for a forking job")
		}
		if st.Discarded != 0 {
			t.Errorf("JobStats.Discarded = %d, want 0", st.Discarded)
		}
		if st.Duration <= 0 {
			t.Errorf("JobStats.Duration = %v, want > 0", st.Duration)
		}
	})
}

func TestStartIsOptionalAndIdempotent(t *testing.T) {
	s := newTestScheduler(SignalLCWS, 3)
	defer s.Close()
	s.Start()
	s.Start() // idempotent
	var got int
	s.Run(func(w *Worker) { got = fib(w, 12) })
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
}

func TestWorkersPersistAcrossRuns(t *testing.T) {
	// Repeated Runs must not spawn new goroutines: the resident pool is
	// created once. Measured indirectly — jobs complete and the jobs
	// counters advance while the pool stays open.
	s := newTestScheduler(HalfLCWS, 4)
	defer s.Close()
	for round := 0; round < 20; round++ {
		var got int
		s.Run(func(w *Worker) { got = fib(w, 10) })
		if got != 55 {
			t.Fatalf("round %d: fib(10) = %d, want 55", round, got)
		}
	}
	st := s.Stats()
	if st.JobsSubmitted != 20 || st.JobsCompleted != 20 || st.JobsFailed != 0 {
		t.Errorf("job counters = %d submitted / %d completed / %d failed, want 20/20/0",
			st.JobsSubmitted, st.JobsCompleted, st.JobsFailed)
	}
}

func TestCloseIdempotentAndConcurrent(t *testing.T) {
	s := newTestScheduler(WS, 2)
	s.Run(func(w *Worker) { fib(w, 8) })
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Errorf("Close = %v", err)
			}
		}()
	}
	wg.Wait()
	if !s.Closed() {
		t.Error("Closed() = false after Close")
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	s := newTestScheduler(USLCWS, 2)
	s.Run(func(w *Worker) {})
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	j := s.Submit(func(w *Worker) { t.Error("root of a rejected job ran") })
	if err := j.Wait(); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("Wait after Close = %v, want ErrSchedulerClosed", err)
	}
	if err := s.RunCtx(context.Background(), func(w *Worker) {}); !errors.Is(err, ErrSchedulerClosed) {
		t.Fatalf("RunCtx after Close = %v, want ErrSchedulerClosed", err)
	}
}

func TestCloseWithoutEverStarting(t *testing.T) {
	s := newTestScheduler(ConsLCWS, 4)
	if err := s.Close(); err != nil {
		t.Fatalf("Close on a never-started scheduler = %v", err)
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	// Jobs accepted before Close must run to completion even when Close
	// lands while they are still queued or in flight.
	s := newTestScheduler(SignalLCWS, 4)
	const jobs = 32
	var ran atomic.Int64
	handles := make([]*Job, jobs)
	for i := range handles {
		handles[i] = s.Submit(func(w *Worker) {
			ParFor(w, 0, 64, 8, func(w *Worker, i int) { ran.Add(1) })
		})
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	for i, j := range handles {
		if err := j.Wait(); err != nil {
			t.Fatalf("job %d: Wait = %v", i, err)
		}
	}
	if got := ran.Load(); got != jobs*64 {
		t.Fatalf("ran %d bodies, want %d", got, jobs*64)
	}
}

// --- Concurrent submission ----------------------------------------------

func TestConcurrentSubmitters(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, traced := range []bool{false, true} {
			traced := traced
			t.Run(fmt.Sprintf("traced=%v", traced), func(t *testing.T) {
				opts := Options{Workers: 4, Policy: p, Seed: 7}
				if traced {
					opts.Trace = &trace.Config{BufPerWorker: 1024}
				}
				s := NewScheduler(opts)
				defer s.Close()
				const submitters = 8
				const jobsEach = 6
				var wg sync.WaitGroup
				for g := 0; g < submitters; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						for k := 0; k < jobsEach; k++ {
							var got int
							j := s.Submit(func(w *Worker) { got = fib(w, 12) })
							if err := j.Wait(); err != nil {
								t.Errorf("submitter %d job %d: %v", g, k, err)
								return
							}
							if got != 144 {
								t.Errorf("submitter %d job %d: fib(12) = %d", g, k, got)
							}
						}
					}(g)
				}
				wg.Wait()
				st := s.Stats()
				if st.JobsCompleted != submitters*jobsEach {
					t.Errorf("JobsCompleted = %d, want %d", st.JobsCompleted, submitters*jobsEach)
				}
				if traced {
					// Concurrent TraceSnapshot over the settled pool must
					// see the job spans.
					tr := s.TraceSnapshot()
					if len(tr.Jobs) == 0 {
						t.Error("traced scheduler recorded no job spans")
					}
				}
			})
		}
	})
}

func TestCloseRacesInFlightSubmissions(t *testing.T) {
	// Submissions racing Close must either run to completion or settle
	// with ErrSchedulerClosed — never hang, never poison the pool.
	for round := 0; round < 8; round++ {
		s := newTestScheduler(WS, 4)
		const submitters = 6
		var wg sync.WaitGroup
		errs := make(chan error, submitters*8)
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 8; k++ {
					j := s.Submit(func(w *Worker) { fib(w, 8) })
					errs <- j.Wait()
				}
			}()
		}
		go s.Close()
		wg.Wait()
		s.Close() // wait for full shutdown before inspecting
		close(errs)
		for err := range errs {
			if err != nil && !errors.Is(err, ErrSchedulerClosed) {
				t.Fatalf("round %d: job settled with %v, want nil or ErrSchedulerClosed", round, err)
			}
		}
	}
}

// --- Panic isolation -----------------------------------------------------

func TestPoolSurvivesTaskPanic(t *testing.T) {
	// Satellite 1: a panicking Run used to poison the one-shot scheduler;
	// the resident pool must keep serving jobs afterwards.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newTestScheduler(p, 4)
		defer s.Close()
		for round := 0; round < 3; round++ {
			func() {
				defer func() {
					if recover() == nil {
						t.Fatal("Run did not re-throw the task panic")
					}
				}()
				s.Run(func(w *Worker) {
					ParFor(w, 0, 256, 1, func(w *Worker, i int) {
						if i == 101 {
							panic("boom")
						}
					})
				})
			}()
			var got int
			s.Run(func(w *Worker) { got = fib(w, 12) })
			if got != 144 {
				t.Fatalf("round %d after panic: fib(12) = %d, want 144", round, got)
			}
		}
	})
}

func TestPanicFailsOnlyItsJob(t *testing.T) {
	// A panic in one job must not disturb a concurrently running job.
	s := newTestScheduler(SignalLCWS, 4)
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	var got int
	healthy := s.Submit(func(w *Worker) {
		close(started)
		<-release
		got = fib(w, 12)
	})
	<-started
	bad := s.Submit(func(w *Worker) {
		ParFor(w, 0, 128, 1, func(w *Worker, i int) {
			if i == 64 {
				panic("job-local failure")
			}
		})
	})
	err := bad.Wait()
	var tp *TaskPanic
	if !errors.As(err, &tp) {
		t.Fatalf("failed job's Wait = %v, want *TaskPanic", err)
	}
	if tp.Value != "job-local failure" {
		t.Fatalf("TaskPanic.Value = %v", tp.Value)
	}
	close(release)
	if err := healthy.Wait(); err != nil {
		t.Fatalf("healthy job's Wait = %v", err)
	}
	if got != 144 {
		t.Fatalf("healthy job computed %d, want 144", got)
	}
	st := s.Stats()
	if st.JobsFailed != 1 {
		t.Errorf("JobsFailed = %d, want 1", st.JobsFailed)
	}
}

func TestFailedJobDiscardAccounting(t *testing.T) {
	// A failed wide job leaves orphans; they must be drained (counted as
	// discarded) rather than executed, and the pool must quiesce.
	s := newTestScheduler(WS, 4)
	defer s.Close()
	j := s.Submit(func(w *Worker) {
		ParFor(w, 0, 4096, 1, func(w *Worker, i int) {
			if i == 0 {
				panic("early")
			}
		})
	})
	if err := j.Wait(); err == nil {
		t.Fatal("failed job's Wait = nil")
	}
	// Pool healthy and counters consistent afterwards.
	var got int
	s.Run(func(w *Worker) { got = fib(w, 10) })
	if got != 55 {
		t.Fatalf("fib(10) after failed job = %d, want 55", got)
	}
	sn := s.Counters()
	if sn.Get(counters.TaskDiscarded) != j.Stats().Discarded {
		t.Errorf("counter discards %d != job discards %d",
			sn.Get(counters.TaskDiscarded), j.Stats().Discarded)
	}
}

// --- Invariant surfacing (satellite 2) -----------------------------------

func TestJobInvariantViolationSurfacesAsError(t *testing.T) {
	// The former "deque non-empty after Run" panic is now a per-job
	// error. Drive settle directly with cooked accounting: a healthy job
	// that claims one created but zero completed tasks.
	s := newTestScheduler(WS, 1)
	defer s.Close()
	j := &Job{id: 99, sched: s, done: make(chan struct{}), start: time.Now()}
	j.shards = make([]jobShard, 1) //lcws:presync single-threaded test; job never published
	j.shards[0].created = 1        //lcws:presync single-threaded test; job never published
	s.activeJobs.Add(1)
	j.settle()
	if err := j.Err(); !errors.Is(err, ErrJobInvariant) {
		t.Fatalf("Err = %v, want ErrJobInvariant", err)
	}
}

// --- Cancellation --------------------------------------------------------

func TestRunCtxPreCancelled(t *testing.T) {
	s := newTestScheduler(WS, 2)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.RunCtx(ctx, func(w *Worker) { t.Error("root of a pre-cancelled job ran") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
}

func TestCancellationUnwindsAtPoll(t *testing.T) {
	// A task that never returns on its own — an infinite loop with only
	// Poll checkpoints — must be unwound by cancellation.
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := NewScheduler(Options{Workers: 2, Policy: p, Seed: 9, PollEvery: 1})
		defer s.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		entered := make(chan struct{})
		var once sync.Once
		errCh := make(chan error, 1)
		go func() {
			errCh <- s.Submit(func(w *Worker) {
				for {
					once.Do(func() { close(entered) })
					w.Poll()
				}
			}, WithJobCtx(ctx)).Wait()
		}()
		<-entered
		cancel()
		select {
		case err := <-errCh:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunCtx = %v, want context.Canceled", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("cancellation did not unwind the spinning task")
		}
	})
}

func TestCancelMidJob(t *testing.T) {
	s := NewScheduler(Options{Workers: 4, Policy: SignalLCWS, Seed: 11, PollEvery: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	var once sync.Once
	j := s.Submit(func(w *Worker) {
		ParFor(w, 0, 1<<20, 1, func(w *Worker, i int) {
			once.Do(func() { close(entered) })
			for k := 0; k < 100; k++ {
				w.Poll()
			}
		})
	}, WithJobCtx(ctx))
	<-entered
	cancel()
	if err := j.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	// The pool must remain healthy for subsequent jobs.
	var got int
	s.Run(func(w *Worker) { got = fib(w, 12) })
	if got != 144 {
		t.Fatalf("fib(12) after cancellation = %d, want 144", got)
	}
}

func TestCancelBeforePickupDiscardsRoot(t *testing.T) {
	// Cancel a job so early that its root may never be picked up: the
	// drain path must settle it (root discard), not leak it.
	s := newTestScheduler(WS, 1)
	defer s.Close()
	for i := 0; i < 50; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		j := s.Submit(func(w *Worker) {}, WithJobCtx(ctx))
		cancel()
		err := j.Wait()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: Wait = %v, want nil or context.Canceled", i, err)
		}
	}
}

// --- Stats & quiescence --------------------------------------------------

func TestStatsExactAfterWaitOnIdlePool(t *testing.T) {
	// The seed guaranteed exact counter reads after Run; the resident
	// pool restores that via quiesce: executed == pushed + 1 root must
	// hold exactly right after Wait on an otherwise-idle scheduler.
	s := newTestScheduler(WS, 4)
	defer s.Close()
	for round := 0; round < 10; round++ {
		s.ResetCounters()
		s.Run(func(w *Worker) { fib(w, 14) })
		sn := s.Counters()
		if sn.Get(counters.TaskExecuted) != sn.Get(counters.TaskPushed)+1 {
			t.Fatalf("round %d: executed %d != pushed %d + 1",
				round, sn.Get(counters.TaskExecuted), sn.Get(counters.TaskPushed))
		}
	}
}

func TestPerJobStatsExactUnderOverlap(t *testing.T) {
	// Scheduler-wide deltas mix overlapping jobs, but per-job Stats must
	// stay exact: fib(n) forks 2*calls tasks; count them per job.
	s := newTestScheduler(WS, 4)
	defer s.Close()
	const jobs = 8
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j := s.Submit(func(w *Worker) { fib(w, 12) })
			if err := j.Wait(); err != nil {
				t.Errorf("Wait = %v", err)
				return
			}
			// fib(12) executes 232 Fork2 calls (nodes with n >= 2); each
			// pushes exactly one task, plus the root: 233 tasks.
			if got := j.Stats().Tasks; got != 233 {
				t.Errorf("JobStats.Tasks = %d, want 233", got)
			}
		}()
	}
	wg.Wait()
}

// --- Trace integration ---------------------------------------------------

func TestTraceJobSpansAndEventTags(t *testing.T) {
	s := NewScheduler(Options{
		Workers: 2, Policy: SignalLCWS, Seed: 3,
		Trace: &trace.Config{BufPerWorker: 4096},
	})
	defer s.Close()
	j1 := s.Submit(func(w *Worker) { fib(w, 10) })
	if err := j1.Wait(); err != nil {
		t.Fatal(err)
	}
	j2 := s.Submit(func(w *Worker) { fib(w, 10) })
	if err := j2.Wait(); err != nil {
		t.Fatal(err)
	}
	tr := s.TraceSnapshot()
	if len(tr.Jobs) != 2 {
		t.Fatalf("trace has %d job spans, want 2", len(tr.Jobs))
	}
	for _, js := range tr.Jobs {
		if js.End < js.Start {
			t.Errorf("job %d: span End %d < Start %d", js.ID, js.End, js.Start)
		}
		if js.Failed {
			t.Errorf("job %d: marked failed", js.ID)
		}
	}
	// Events recorded while serving a job must carry its id; job ids of
	// task events must only be the two submitted ids (or 0 for events
	// recorded before the first switch marker aged in).
	sawTagged := false
	for _, e := range tr.Events {
		if e.Type == trace.EvTaskBegin && e.Job != 0 {
			sawTagged = true
			if e.Job != 1 && e.Job != 2 {
				t.Fatalf("task event tagged with unknown job id %d", e.Job)
			}
		}
	}
	if !sawTagged {
		t.Error("no task event carried a job tag")
	}
}
