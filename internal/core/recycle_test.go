package core

import (
	"strings"
	"sync/atomic"
	"testing"
)

// TestTaskRecycleStealStress drives recycled tasks through every
// cross-worker path — exposure, steals, helping joins — on an
// oversubscribed pool with aggressive yielding, so the race detector
// checks the freelist discipline's central claim: an executing thief's
// completion stamp is its last access to a task before the owner reuses
// it. Correctness of the computed sums additionally catches any stale
// descriptor payload a recycling bug would deliver.
func TestTaskRecycleStealStress(t *testing.T) {
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			s := NewScheduler(Options{
				Workers:    4,
				Policy:     pol,
				YieldEvery: 1,
				PollEvery:  1,
				Seed:       7,
			})
			const n = 1 << 12
			rounds := 6
			if testing.Short() {
				rounds = 2
			}
			for r := 0; r < rounds; r++ {
				var sum atomic.Int64
				s.Run(func(w *Worker) {
					ParFor(w, 0, n, 1, func(w *Worker, i int) {
						sum.Add(int64(i))
						w.Poll()
					})
				})
				if want := int64(n) * (n - 1) / 2; sum.Load() != want {
					t.Fatalf("round %d: sum = %d, want %d (a recycled task ran with a stale descriptor)",
						r, sum.Load(), want)
				}
				st := s.Counters()
				s.ResetCounters()
				_ = st
			}
		})
	}
}

// TestTaskRecycleForkTreeStress is the Fork2 (function task) analogue of
// the ParFor stress: an irregular fib tree where every fork descriptor
// is recycled many times across steals.
func TestTaskRecycleForkTreeStress(t *testing.T) {
	var fib func(w *Worker, n int) int
	fib = func(w *Worker, n int) int {
		if n < 2 {
			return n
		}
		var a, b int
		Fork2(w,
			func(w *Worker) { a = fib(w, n-1) },
			func(w *Worker) { b = fib(w, n-2) },
		)
		return a + b
	}
	for _, pol := range Policies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			s := NewScheduler(Options{Workers: 4, Policy: pol, YieldEvery: 2, PollEvery: 1, Seed: 11})
			got := 0
			s.Run(func(w *Worker) { got = fib(w, 15) })
			if got != 610 {
				t.Fatalf("fib(15) = %d, want 610", got)
			}
		})
	}
}

// TestDoubleFreePanics seeds a deliberate recycling-discipline violation
// through the test-only post-join hook — freeing the just-freed task a
// second time — and asserts the freelist turns it into an immediate
// panic instead of silent corruption.
func TestDoubleFreePanics(t *testing.T) {
	defer func() { testHookAfterJoin = nil }()
	testHookAfterJoin = func(w *Worker, rt *Task) {
		testHookAfterJoin = nil // fire once
		w.freeTask(rt)
	}
	s := NewScheduler(Options{Workers: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double free of a task did not panic")
		}
		// The panic unwound out of a running task, so Run wraps it in a
		// TaskPanic carrying the worker id.
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("double free panicked with %T (%v), want *TaskPanic", r, r)
		}
		msg, ok := tp.Value.(string)
		if !ok || !strings.Contains(msg, "double free") {
			t.Fatalf("double free panicked with %v, want the recycling-discipline message", r)
		}
	}()
	s.Run(func(w *Worker) {
		Fork2(w, allocNoop, allocNoop)
	})
}

// TestGenerationStampMechanics pins the completion-stamp algebra that
// makes recycled tasks safe without an atomic reset: a fresh incarnation
// is not done, completing satisfies exactly the stamp captured at fork
// time, and — the stale-done property — a completion stored by a
// previous incarnation can never satisfy the next incarnation's join.
func TestGenerationStampMechanics(t *testing.T) {
	s := NewScheduler(Options{Workers: 1})
	s.Run(func(w *Worker) {
		tk := w.newTask()
		want := tk.seq + 1
		if tk.isDone(want) {
			t.Error("fresh task reports done before completion")
		}
		tk.complete()
		if !tk.isDone(want) {
			t.Error("completed task does not report done")
		}
		w.freeTask(tk)

		reused := w.newTask()
		if reused != tk {
			t.Fatal("freelist did not hand back the freed task")
		}
		want2 := reused.seq + 1
		if reused.isDone(want2) {
			t.Error("stale completion stamp of the previous incarnation satisfies the new join")
		}
		if reused.seq+1 != want2 || reused.seq == want-1 {
			t.Error("generation did not advance across free/realloc")
		}
		reused.complete()
		if !reused.isDone(want2) {
			t.Error("second incarnation's completion does not satisfy its own join")
		}
		w.freeTask(reused)
	})
}

// TestStampMismatchDetectsRecycledJoin verifies the join-side assertion
// condition: once a task is freed, the stamp captured by any join still
// in flight no longer matches seq+1, which is exactly what join panics
// on.
func TestStampMismatchDetectsRecycledJoin(t *testing.T) {
	s := NewScheduler(Options{Workers: 1})
	s.Run(func(w *Worker) {
		tk := w.newTask()
		want := tk.seq + 1
		w.freeTask(tk)
		if tk.seq+1 == want {
			t.Error("freeing a task left its generation unchanged; in-flight joins could not detect the recycle")
		}
		if got := w.newTask(); got != tk {
			t.Fatal("freelist did not hand back the freed task")
		}
		w.freeTask(tk)
	})
}
