package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lcws/internal/counters"
	"lcws/internal/deque"
	"lcws/internal/injector"
	"lcws/internal/trace"
)

// Options configures a Scheduler.
type Options struct {
	// Workers is the number of processors (worker goroutines), P in the
	// paper — the pool's initial live size and its resident target.
	// Defaults to 1 when non-positive. The pool is elastic: SetWorkers
	// changes the live size at runtime, and demand can grow it toward
	// MaxWorkers (see below).
	Workers int
	// MaxWorkers caps elastic growth: the worker slab, per-job
	// accounting shards, and parking bitset are sized to it once at
	// construction, and SetWorkers/demand growth may raise the live
	// pool up to it. Defaults to Workers when non-positive (a pool that
	// never grows by itself, matching the fixed-P behavior of earlier
	// versions).
	MaxWorkers int
	// Policy selects the scheduler algorithm. The zero value is the WS
	// baseline.
	Policy Policy
	// DequeCapacity sets the per-worker deque's INITIAL capacity
	// (deque.DefaultCapacity when non-positive). Deques grow by doubling
	// when a spawn tree outgrows it, up to MaxDequeCapacity.
	DequeCapacity int
	// MaxDequeCapacity caps per-worker deque growth
	// (deque.DefaultMaxCapacity when non-positive; never below the
	// initial capacity). Past the cap the owner spills its oldest tasks
	// to an unbounded overflow list instead of growing further, so
	// arbitrarily wide spawn trees run in bounded deque memory.
	MaxDequeCapacity int
	// FreelistBound caps each worker's task freelist
	// (defaultFreelistBound when non-positive). Tasks freed past the
	// bound are recycled through the scheduler's global shard pool or
	// released to the GC, keeping steady-state memory flat across jobs
	// of wildly different widths.
	FreelistBound int
	// Seed seeds the workers' victim-selection PRNGs; runs with equal
	// options and deterministic workloads make identical scheduling
	// decisions up to goroutine interleaving.
	Seed uint64
	// YieldEvery makes each worker call runtime.Gosched after executing
	// that many tasks (0 = never). On hosts with fewer CPUs than
	// workers, cooperative yielding gives thieves regular chances to
	// run, producing steal/exposure dynamics representative of a real
	// P-core machine; the profiling harness uses it for the paper's
	// counter figures.
	YieldEvery int
	// PollEvery sets how many Poll calls elapse between checks of the
	// emulated pending-signal word (default 64). It is the knob that
	// plays the role of OS signal-delivery latency (paper footnote 2):
	// larger values make exposure requests take longer to reach busy
	// workers.
	PollEvery int
	// StealBatch opts into the batched steal-side mode: thieves claim up
	// to half of a victim's public part with a single CAS (PopTopHalf /
	// PopTopN), remember their last successful victim (sticky victim
	// selection), and idle workers park on per-worker semaphores woken by
	// work-producing events instead of sleeping blind. The default
	// (false) is the paper-faithful single-steal mode whose fence/CAS
	// accounting matches internal/counters/model.go exactly; batch mode
	// extends the model as documented there (the WS baseline switches to
	// the tag-bumping batched deque, whose owner pop CASes on every pop).
	StealBatch bool
	// Trace enables the flight recorder: each worker gets a fixed-
	// capacity owner-write event ring (see internal/trace) plus online
	// latency histograms, readable at any time via TraceSnapshot/Stats.
	// nil (the default) disables tracing entirely — workers hold no
	// recorder and every hook is a single nil check, preserving the
	// fork fast path's zero-allocation and ns/fork properties.
	Trace *trace.Config
	// ClassWeights sets the weighted-fair split of injector pickups
	// between job classes (indexed by JobClass) when several classes
	// have queued jobs: a backlogged class receives pickups in
	// proportion to its weight, so urgency is a share, not a strict
	// priority, and no class can starve another. Non-positive entries
	// take the defaults (High 16, Normal 4, Low 1).
	ClassWeights [NumJobClasses]int
	// ClassCapacity bounds how many submitted-but-unstarted jobs each
	// class may queue (0 = unbounded, the default). At capacity, Submit
	// either blocks until a slot frees or fails fast with ErrQueueFull,
	// per the submission's AdmitMode.
	ClassCapacity [NumJobClasses]int
}

// defaultClassWeights is the pickup split used for zero ClassWeights
// entries: strongly prefer urgent classes while still guaranteeing the
// least urgent a 1/21 share under full backlog.
var defaultClassWeights = [NumJobClasses]int{16, 4, 1}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxWorkers < o.Workers {
		o.MaxWorkers = o.Workers
	}
	if o.PollEvery <= 0 {
		o.PollEvery = defaultPollEvery
	}
	if o.FreelistBound <= 0 {
		o.FreelistBound = defaultFreelistBound
	}
	for c := range o.ClassWeights {
		if o.ClassWeights[c] <= 0 {
			o.ClassWeights[c] = defaultClassWeights[c]
		}
		if o.ClassCapacity[c] < 0 {
			o.ClassCapacity[c] = 0
		}
	}
	return o
}

// Scheduler is a persistent, elastic pool of resident workers executing
// fork-join jobs under one of the paper's scheduling policies. The
// initial worker goroutines are spawned together — lazily on the first
// submission, or eagerly via Start — and workers live until Close,
// SetWorkers shrinks them away, or idle retirement stands them down:
// between jobs they park on the idle parking lot (costing no CPU), and
// repeated Run/Submit calls pay no goroutine spawn or teardown. This
// matches the paper's model of persistent processors that exist across
// computations, generalized to a live worker count that moves between 1
// and Options.MaxWorkers (SetWorkers, demand growth, idle retirement)
// while the paper's fork/steal fast paths stay byte-identical inside a
// stable worker-set epoch.
//
// Jobs enter through an MPMC injector queue (Submit/SubmitCtx/Run) and
// any number may run concurrently over the same pool; each Job carries
// its own completion, error, and task accounting, and a panic or
// cancellation in one job drains that job's tasks without affecting
// the others (see Job).
//
// Workers live in one contiguous, cache-line-padded slab (see workerSlot)
// rather than as individually heap-allocated objects: victim selection
// then walks a single allocation, and the padding guarantees no two
// workers — and no thief-written notification word and owner-hot field —
// share a cache line.
//
// The pool is elastic: the slab is sized Options.MaxWorkers once at
// construction, and the *live* prefix of it is published as an
// epoch-numbered workerSet snapshot through the set pointer. SetWorkers
// (and demand growth / idle retirement) install new snapshots; workers
// pin the snapshot they work against, and retired slots' resources are
// reclaimed once no pin can reference them. See workerset.go.
//
//lcws:manifest
type Scheduler struct {
	opts Options //lcws:field immutable
	// workers is the full MaxWorkers slab. The slab itself never grows,
	// shrinks, or moves — which worker ids are live is governed by the
	// set snapshot, and slots beyond the live prefix are either not yet
	// initialized (zeroed) or retired awaiting reuse.
	workers []workerSlot   //lcws:field immutable — liveness governed by set; see workerSet
	ctrs    *counters.Set  //lcws:field immutable
	wg      sync.WaitGroup //lcws:field atomic — resident-worker barrier for Close

	// set is the current worker-set epoch: the live prefix of the slab,
	// published with a release store by the resizer and pinned by
	// workers on busy-phase entry (see workerset.go for the protocol).
	set atomic.Pointer[workerSet] //lcws:field atomic

	// resizeMu serializes resizes, reclamation, and worker-goroutine
	// spawning. Never taken on any per-task path: submit and the idle
	// phase only TryLock it, and workers only block on it when retiring.
	resizeMu sync.Mutex //lcws:field atomic — internally synchronized
	// target is the resident size the pool settles to when idle:
	// Options.Workers, updated by SetWorkers. Demand growth above it is
	// undone by idle retirement back down to it.
	target int //lcws:field guarded(resizeMu)
	// started records whether the resident goroutines were spawned;
	// resizes before the first submission only reshape the set.
	started bool //lcws:field guarded(resizeMu)
	// graveyard lists retired slots whose resources await epoch-safe
	// reclamation (see tryReclaimLocked).
	graveyard []retiree //lcws:field guarded(resizeMu)

	// Elastic-pool accounting (Stats: PoolGrows, WorkersRetired,
	// Resizes, EpochReclaims).
	poolGrows      atomic.Uint64 //lcws:field atomic
	workersRetired atomic.Uint64 //lcws:field atomic
	resizes        atomic.Uint64 //lcws:field atomic
	epochReclaims  atomic.Uint64 //lcws:field atomic

	// inj is the class-aware MPMC submission queue: Submit pushes *Job
	// records from arbitrary goroutines; resident workers pop them —
	// in the weighted-fair stride order — in their top-level loop and
	// at the checkpoint-yield preemption point. Owner deque paths are
	// untouched by submission. Its aggregate size word keeps the
	// parking lot's Dekker emptiness probe a single atomic load, as
	// with the plain FIFO it replaced.
	inj       *injector.QoS[*Job] //lcws:field immutable — internally mutex+atomic synchronized
	startOnce sync.Once           //lcws:field atomic — spawns the resident workers exactly once
	closed    atomic.Bool         //lcws:field atomic — set by Close; workers exit once drained

	// closedCh is closed (exactly once, by the Close call that wins the
	// closed.Swap) to release submitters blocked on admission with
	// ErrSchedulerClosed.
	closedCh chan struct{} //lcws:field immutable — channel close is internally synchronized

	// activeJobs counts submitted-but-unsettled jobs. Workers use it to
	// decide between the in-job stealing loop (activeJobs > 0) and the
	// between-jobs idle phase; together with closed and inj.Empty it
	// forms the worker-exit condition. Submit increments it *before*
	// checking closed, so a submission that observed the scheduler open
	// keeps every worker alive until the job settles (the seq-cst total
	// order over this counter and closed makes the exit check safe).
	activeJobs atomic.Int64 //lcws:field atomic

	// busy counts workers currently inside their busy phase (where they
	// write per-worker counters without synchronization). Job.Wait
	// spins until it reaches zero after the pool goes idle, which
	// restores the seed's guarantee that Stats/Counters reads after a
	// Run are exact and race-free. See quiesce.
	busy atomic.Int64 //lcws:field atomic

	jobSeq        atomic.Uint64 //lcws:field atomic — job id allocator (ids start at 1)
	jobsSubmitted atomic.Uint64 //lcws:field atomic
	jobsCompleted atomic.Uint64 //lcws:field atomic
	jobsFailed    atomic.Uint64 //lcws:field atomic

	// Per-class QoS accounting: jobs enqueued per class and admissions
	// rejected with ErrQueueFull (AdmitFail against a full class).
	jobsEnqueued     [NumJobClasses]atomic.Uint64 //lcws:field thief-shared — element ops are atomic; the array word itself is never written
	admissionRejects atomic.Uint64                //lcws:field atomic

	// Per-class injector-wait histograms: queue-to-pickup latency,
	// observed by the picking worker at startJob. Unlike the trace
	// histograms these are always on — pickup is a per-job (not
	// per-task) event, so a mutex-guarded observe costs nothing that
	// matters and the QoS latency story does not require tracing.
	waitMu   sync.Mutex                     //lcws:field atomic
	waitHist [NumJobClasses]trace.Histogram //lcws:field guarded(waitMu)

	// parkWords is the idle-worker bitset of the parking lot (bit id
	// set = worker id is parked). Parkers set their bit with a seq-cst
	// RMW *before* re-checking for work; producers publish work *before*
	// scanning the bitset — the Dekker-style ordering that makes a lost
	// wakeup impossible (see Worker.park). The in-job parking lot is
	// used only in StealBatch mode, but every worker also parks here
	// between jobs (deepPark), so the bitset always exists.
	parkWords []atomic.Uint64 //lcws:field immutable — slice set in NewScheduler; elements are atomic words

	// recycle is the global task-recycling pool: one padded shard per
	// worker. Workers donate freelist overflow to their own shard and
	// refill from any shard on an allocation miss; each shard is
	// internally synchronized by its mutex (see recycleShard).
	recycle []recycleShard //lcws:field immutable — slice set in NewScheduler; shards are mutex-guarded

	// traceEpoch is the zero point of all trace timestamps; set once in
	// NewScheduler when tracing is enabled.
	traceEpoch time.Time //lcws:field immutable

	// Per-job spans for the Chrome export, recorded at job settlement
	// on traced schedulers only (bounded; see maxJobSpans).
	spanMu   sync.Mutex      //lcws:field atomic
	jobSpans []trace.JobSpan //lcws:field guarded(spanMu)
}

// maxJobSpans bounds the per-scheduler job-span log of a traced
// scheduler; beyond it the oldest spans are dropped, mirroring the
// flight-recorder rings' drop-oldest behavior.
const maxJobSpans = 4096

// worker returns worker i of the slab. Valid for every i in
// [0, MaxWorkers); whether the slot is live is the set's business.
func (s *Scheduler) worker(i int) *Worker { return &s.workers[i].w }

// TaskPanic is the value Run re-throws — and Job.Err wraps — when a
// task function panics: the original panic value wrapped with the id of
// the worker that was executing the task and, when tracing is on, that
// worker's most recent flight-recorder events — so the crash report
// says where the panic happened and what the scheduler was doing just
// before.
type TaskPanic struct {
	// WorkerID is the worker whose goroutine the panicking task ran on.
	WorkerID int
	// Value is the original value passed to panic.
	Value any
	// Tail holds the panicking worker's last flight-recorder events
	// (oldest first); nil when the scheduler was not tracing.
	Tail []trace.Event
}

// Error renders the panic report; TaskPanic satisfies error so callers
// recovering it can log it directly.
func (p *TaskPanic) Error() string {
	msg := fmt.Sprintf("lcws: task panic on worker %d: %v", p.WorkerID, p.Value)
	if len(p.Tail) > 0 {
		msg += fmt.Sprintf(" (last %d trace events", len(p.Tail))
		for _, e := range p.Tail {
			msg += fmt.Sprintf(" %s@%dns", e.Type, e.Ts)
		}
		msg += ")"
	}
	return msg
}

func (p *TaskPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As work through a recovered TaskPanic.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// NewScheduler returns a scheduler with the given options. No worker
// goroutines exist until the first submission (or Start).
func NewScheduler(opts Options) *Scheduler {
	opts = opts.withDefaults()
	if int(opts.Policy) >= NumPolicies {
		panic(fmt.Sprintf("core: unknown policy %d", opts.Policy))
	}
	s := &Scheduler{
		opts:     opts,
		workers:  make([]workerSlot, opts.MaxWorkers),
		ctrs:     counters.NewSet(opts.MaxWorkers),
		inj:      injector.NewQoS[*Job](opts.ClassWeights, opts.ClassCapacity),
		closedCh: make(chan struct{}),
	}
	if opts.Trace != nil {
		s.traceEpoch = time.Now() //lcws:presync constructor: worker goroutines have not started
	}
	//lcws:presync constructor: worker goroutines have not started
	s.target = opts.Workers
	//lcws:presync constructor: worker goroutines have not started
	s.parkWords = make([]atomic.Uint64, (opts.MaxWorkers+63)/64)
	//lcws:presync constructor: worker goroutines have not started
	s.recycle = make([]recycleShard, opts.MaxWorkers)
	// Only the initial live prefix is built eagerly; slots beyond it
	// stay zeroed until demand or SetWorkers grows into them
	// (initSlot), so a large MaxWorkers headroom costs only the slab.
	s.set.Store(&workerSet{epoch: 1, slots: s.workers[:opts.Workers]})
	for i := 0; i < opts.Workers; i++ {
		s.initSlot(i)
		s.workers[i].w.state.Store(slotLive)
	}
	return s
}

// newTaskDeque builds one worker's deque per the pool's policy; used by
// NewScheduler for the initial prefix and by initSlot when the pool
// grows into a fresh slot.
func newTaskDeque(opts Options) taskDeque {
	switch {
	case opts.Policy.relaxedSteal():
		// MultFree: the split deque with the relaxed claim cursor
		// enabled (and the owner-side repair folded into its
		// public-boundary operations).
		return deque.NewSplitRelaxed[Task](opts.DequeCapacity, opts.MaxDequeCapacity, opts.Policy.raceFixPop())
	case opts.Policy.SplitDeque():
		// The split deque supports PopTopHalf as-is; batch mode only
		// changes the owner discipline (reclaim via UnexposeAll, see
		// Worker.popLocal).
		return deque.NewSplitMax[Task](opts.DequeCapacity, opts.MaxDequeCapacity, opts.Policy.raceFixPop())
	case opts.StealBatch:
		return chaseLevDeque{deque.NewChaseLevBatchMax[Task](opts.DequeCapacity, opts.MaxDequeCapacity)}
	default:
		return chaseLevDeque{deque.NewChaseLevMax[Task](opts.DequeCapacity, opts.MaxDequeCapacity)}
	}
}

// Start spawns the resident worker goroutines if they are not running
// yet. Submissions start them on demand, so calling Start is optional;
// it exists for callers that want the spawn cost out of the first
// request's latency.
func (s *Scheduler) Start() { s.ensureStarted() }

// ensureStarted spawns the current live set's resident workers exactly
// once; workers added by later resizes are spawned by the resize
// itself.
func (s *Scheduler) ensureStarted() {
	s.startOnce.Do(func() {
		s.resizeMu.Lock()
		defer s.resizeMu.Unlock()
		s.started = true
		for i := range s.set.Load().slots {
			s.spawnWorker(s.worker(i))
		}
	})
}

// runResident runs w's resident loop, wrapped in pprof labels when the
// scheduler traces (pprof.Do allocates, so the wrap is traced-only).
func (s *Scheduler) runResident(w *Worker) {
	if s.opts.Trace != nil {
		pprof.Do(context.Background(), s.workerLabels(w.id, "resident"), func(context.Context) {
			w.residentLoop()
		})
	} else {
		w.residentLoop()
	}
}

// Close shuts the executor down: no further submissions are accepted
// (they settle immediately with ErrSchedulerClosed), in-flight and
// already-queued jobs run to completion, and the resident workers then
// exit. Close blocks until every worker has exited; it is idempotent
// and safe to call concurrently with submissions from other
// goroutines. After Close, counter and trace reads are exact.
func (s *Scheduler) Close() error {
	if !s.closed.Swap(true) {
		// Release submitters blocked on admission (they settle their
		// jobs with ErrSchedulerClosed) before waking the workers.
		close(s.closedCh)
		s.wakeAll()
	}
	// Resize barrier: a resize that began before the closed flip may
	// still be spawning workers. Passing through resizeMu here orders
	// every such wg.Add before the Wait; resizes that start after the
	// barrier observe closed under the lock and spawn nothing.
	s.resizeMu.Lock()
	s.resizeMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	s.wg.Wait()
	return nil
}

// Closed reports whether Close has been called.
func (s *Scheduler) Closed() bool { return s.closed.Load() }

// Submit enqueues a fork-join job rooted at root and returns — in the
// default unbounded-admission configuration — immediately; it is safe
// to call from any goroutine, including concurrently with other
// submissions and with Close. Multiple submitted jobs run concurrently
// over the same worker pool. Wait on the returned Job for completion
// and inspect its Err and Stats.
//
// The queue behind Submit is not a single FIFO: jobs enter per-class
// weighted-fair queues (see JobClass, Options.ClassWeights) and
// workers pick them up in stride order, so tenants submitting with
// different priorities or weights share the pool proportionally
// instead of first-come-first-served. Options configure one
// submission: WithJobPriority and WithJobWeight place the job in the
// QoS order, WithJobCtx attaches cancellation, and WithAdmission
// selects blocking vs fail-fast behavior against a class capacity
// (Options.ClassCapacity). With no options a submission is a
// Normal-class, weight-1, block-on-admission job — equivalent to the
// old single-FIFO behavior when every submitter does the same.
func (s *Scheduler) Submit(root func(*Worker), opts ...SubmitOpt) *Job {
	cfg := submitConfig{class: Normal, weight: 1}
	for _, o := range opts {
		o(&cfg)
	}
	return s.submit(root, cfg)
}

// SubmitCtx is Submit with cancellation.
//
// Deprecated: use Submit with WithJobCtx, which composes with the
// other submission options.
func (s *Scheduler) SubmitCtx(ctx context.Context, root func(*Worker)) *Job {
	return s.Submit(root, WithJobCtx(ctx))
}

func (s *Scheduler) submit(root func(*Worker), cfg submitConfig) *Job {
	if cfg.class > Low {
		cfg.class = Low
	}
	if cfg.weight < 1 {
		cfg.weight = 1
	}
	j := &Job{
		id:     s.jobSeq.Add(1),
		sched:  s,
		done:   make(chan struct{}),
		start:  time.Now(),
		class:  cfg.class,
		weight: cfg.weight,
	}
	j.root.prepareFn(root)
	j.root.job = j //lcws:presync job constructor: published to workers only via the injector's lock
	s.jobsSubmitted.Add(1)
	// Order matters: the increment must precede the closed check. If we
	// observe closed == false here, the increment is before Close's
	// store in the seq-cst total order, so any worker that later loads
	// closed == true also loads activeJobs >= 1 and keeps running until
	// this job settles — a submission that won the race cannot strand.
	s.activeJobs.Add(1)
	if s.closed.Load() {
		j.fail(ErrSchedulerClosed)
		j.settle()
		return j
	}
	// Shards are sized to the MaxWorkers slab, not the live set: a
	// worker grown into the pool mid-job must find its accounting slot,
	// and a draining worker still completing tasks keeps its own.
	j.shards = make([]jobShard, len(s.workers)) //lcws:presync job constructor: published to workers only via the injector's lock
	s.ensureStarted()
	ctx := cfg.ctx
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			j.fail(err)
			j.settle()
			return j
		}
		if ctx.Done() != nil {
			j.stop = context.AfterFunc(ctx, func() { //lcws:presync written before inj.Push publishes the job; settle runs after a worker's locked pop (or on this goroutine)
				j.fail(context.Cause(ctx))
				// Wake parked workers so a cancelled-but-unstarted job is
				// drained (and settled) promptly even on an idle pool.
				s.wakeAll()
			})
		}
	}
	// Bounded admission: each queued-but-unstarted job of a bounded
	// class holds one slot, released by the pickup that dequeues it.
	// Blocking here with activeJobs already incremented cannot idle the
	// pool against us: a full class queue means plenty of queued jobs,
	// and every pickup that works the backlog off frees a slot.
	if !s.inj.TryAcquire(int(cfg.class)) {
		if cfg.admit == AdmitFail {
			s.admissionRejects.Add(1)
			j.fail(ErrQueueFull)
			j.settle()
			return j
		}
		var cancelled <-chan struct{} // nil (blocks forever) without a ctx
		if ctx != nil {
			cancelled = ctx.Done()
		}
		select {
		case <-s.inj.SlotChan(int(cfg.class)):
		case <-cancelled:
			j.fail(context.Cause(ctx))
			j.settle()
			return j
		case <-s.closedCh:
			j.fail(ErrSchedulerClosed)
			j.settle()
			return j
		}
	}
	s.jobsEnqueued[cfg.class].Add(1)
	j.enqueued = time.Now() //lcws:presync written before inj.Push publishes the job to the picking worker
	s.inj.Push(j, int(cfg.class), cfg.weight)
	// Publish-then-scan half of the Dekker handshake with deepPark.
	s.wakeAll()
	// Demand growth: if the whole live pool is busy and this job still
	// sits in the injector, add a worker (up to MaxWorkers).
	s.maybeGrow()
	return j
}

// observeInjectorWait records a picked-up job's queue-to-pickup
// latency in its class's wait histogram.
func (s *Scheduler) observeInjectorWait(j *Job) {
	d := time.Since(j.enqueued).Nanoseconds()
	s.waitMu.Lock()
	s.waitHist[j.class].Observe(d)
	s.waitMu.Unlock()
}

// InjectorWait returns class c's queue-to-pickup latency histogram.
// Unlike the trace histograms it is populated on every scheduler.
func (s *Scheduler) InjectorWait(c JobClass) trace.Histogram {
	s.waitMu.Lock()
	h := s.waitHist[c]
	s.waitMu.Unlock()
	return h
}

// Run executes root to completion on the resident pool and returns
// when root and every task it transitively forked have finished: it is
// Submit + Wait, and accepts the same submission options. If a task
// panics, Run re-throws the panic wrapped as *TaskPanic — and unlike
// the one-shot scheduler this poisons nothing: the job's orphaned
// tasks are drained and the pool stays healthy for further Runs. Run
// may be called concurrently from several goroutines; the jobs share
// the pool.
func (s *Scheduler) Run(root func(*Worker), opts ...SubmitOpt) {
	j := s.Submit(root, opts...)
	if err := j.Wait(); err != nil {
		if tp, ok := err.(*TaskPanic); ok {
			panic(tp)
		}
		panic(err)
	}
}

// RunCtx is Run with cancellation and an error return instead of a
// panic: it waits for the job and returns Job.Err (a *TaskPanic if a
// task panicked, ctx's error if cancelled, nil on success).
//
// Deprecated: use Submit with WithJobCtx and Wait on the returned Job,
// which composes with the other submission options.
func (s *Scheduler) RunCtx(ctx context.Context, root func(*Worker)) error {
	return s.Submit(root, WithJobCtx(ctx)).Wait()
}

// quiesce spins until no worker is inside its busy phase, provided the
// pool is idle (no active jobs). Workers leave the busy phase promptly
// once activeJobs hits zero — the longest they can lag is one capped
// idle-backoff sleep or insurance-timer park (≤1ms). The busy
// counter's release/acquire pair makes every counter and trace write
// of the finished jobs visible to the caller, restoring the seed
// scheduler's "Stats after Run are exact" guarantee for the resident
// pool. With other jobs still active, quiesce returns immediately and
// concurrent Stats reads stay approximate, as documented.
func (s *Scheduler) quiesce() {
	for s.activeJobs.Load() == 0 && s.busy.Load() != 0 {
		runtime.Gosched()
	}
}

// setParked marks worker id parked in the parking-lot bitset.
func (s *Scheduler) setParked(id int) {
	word := &s.parkWords[id/64]
	bit := uint64(1) << uint(id%64)
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// clearParked clears worker id's parked bit and reports whether this call
// was the one that cleared it (false means a waker already claimed the
// worker and a semaphore token is in flight or consumed).
func (s *Scheduler) clearParked(id int) bool {
	word := &s.parkWords[id/64]
	bit := uint64(1) << uint(id%64)
	for {
		old := word.Load()
		if old&bit == 0 {
			return false
		}
		if word.CompareAndSwap(old, old&^bit) {
			return true
		}
	}
}

// wakeOne wakes at most one parked worker: it claims a set bit with a CAS
// (so concurrent wakers pick distinct workers) and posts the claimed
// worker's semaphore. Work-producing operations call it after publishing
// the work; c (when non-nil) accounts the wakeup to the caller.
func (s *Scheduler) wakeOne(c *counters.Worker) {
	for wi := range s.parkWords {
		word := s.parkWords[wi].Load()
		for word != 0 {
			bit := word & -word
			if s.parkWords[wi].CompareAndSwap(word, word&^bit) {
				id := wi*64 + bits.TrailingZeros64(bit)
				select {
				case s.worker(id).parkSem <- struct{}{}:
				default:
				}
				if c != nil {
					c.Inc(counters.WakeupsSent)
				}
				return
			}
			word = s.parkWords[wi].Load()
		}
	}
}

// wakeAll unparks every parked worker. Submissions, job settlement,
// cancellation, and Close call it so the pool re-evaluates its state
// promptly instead of on insurance timers.
func (s *Scheduler) wakeAll() {
	for wi := range s.parkWords {
		word := s.parkWords[wi].Swap(0)
		for word != 0 {
			bit := word & -word
			word &^= bit
			id := wi*64 + bits.TrailingZeros64(bit)
			select {
			case s.worker(id).parkSem <- struct{}{}:
			default:
			}
		}
	}
}

// Workers returns the pool's current live size — the worker count of
// the present worker-set epoch. It is NOT fixed at construction: it
// moves with SetWorkers, demand growth, and idle retirement, between 1
// and MaxWorkers. Worker ids, by contrast, are stable: a worker keeps
// its id across resizes, and id-indexed state (WorkerCounters, shards)
// spans the full [0, MaxWorkers) range.
func (s *Scheduler) Workers() int { return len(s.set.Load().slots) }

// Policy returns the scheduling policy of the pool.
func (s *Scheduler) Policy() Policy { return s.opts.Policy }

// Counters returns the aggregated instrumentation counters accumulated by
// all jobs since the last ResetCounters. It is exact after Job.Wait on
// an otherwise-idle scheduler (see quiesce) and approximate while jobs
// are running.
func (s *Scheduler) Counters() counters.Snapshot { return s.ctrs.Snapshot() }

// WorkerCounters returns worker id's own counter snapshot.
func (s *Scheduler) WorkerCounters(id int) counters.Snapshot {
	var out counters.Snapshot
	w := s.ctrs.Worker(id)
	for e := 0; e < counters.NumEvents; e++ {
		out[e] = w.Get(counters.Event(e))
	}
	return out
}

// ResetCounters zeroes all instrumentation counters.
func (s *Scheduler) ResetCounters() { s.ctrs.Reset() }

// Tracing reports whether the scheduler was built with a flight
// recorder (Options.Trace non-nil).
func (s *Scheduler) Tracing() bool { return s.opts.Trace != nil }

// recordJobSpan logs a settled job for the Chrome export (traced
// schedulers only; bounded to maxJobSpans, dropping oldest).
func (s *Scheduler) recordJobSpan(j *Job, failed bool) {
	if s.opts.Trace == nil {
		return
	}
	span := trace.JobSpan{
		ID:     j.id,
		Start:  j.start.Sub(s.traceEpoch).Nanoseconds(),
		End:    time.Since(s.traceEpoch).Nanoseconds(),
		Failed: failed,
		Class:  uint8(j.class),
	}
	s.spanMu.Lock()
	if len(s.jobSpans) >= maxJobSpans {
		s.jobSpans = append(s.jobSpans[:0], s.jobSpans[1:]...)
	}
	s.jobSpans = append(s.jobSpans, span)
	s.spanMu.Unlock()
}

// TraceSnapshot decodes every worker's flight-recorder ring into one
// merged, time-sorted event stream plus the aggregated latency
// histograms and the settled jobs' spans. It is safe to call at any
// time, including concurrently with running jobs: each ring is frozen
// for the instant it is read (its owner drops — and counts — events
// that land in that window), so the snapshot is race-free without
// stopping the world. Events carry the id of the job their worker was
// executing (0 between jobs, or when the tagging job-switch event has
// aged out of the ring). On a scheduler built without Options.Trace it
// returns an empty Trace.
//
// The snapshot is taken over one worker-set epoch: Workers and the
// live-worker iteration both come from the same set load, so a resize
// racing the snapshot yields either the old epoch's view or the new
// one, never a mix. Slots beyond the live prefix are merged too —
// retired workers' rings keep their tail events (including the
// EvRetire that ended them) until reclamation releases the ring, at
// which point their events leave the snapshot (each epoch flip and
// retirement is itself recorded, as EvResize/EvRetire, on the ring of
// the worker it happened to).
func (s *Scheduler) TraceSnapshot() trace.Trace {
	set := s.set.Load()
	t := trace.Trace{Policy: s.opts.Policy.String(), Workers: len(set.slots)}
	if s.opts.Trace == nil {
		return t
	}
	for i := range set.slots {
		events, dropped := s.worker(i).rec.Snapshot(i)
		// Walk this worker's events in ring order, carrying the job id
		// forward from each job-switch marker.
		cur := uint64(0)
		for k := range events {
			if events[k].Type == trace.EvJobSwitch {
				cur = uint64(events[k].Arg)
			}
			events[k].Job = cur
		}
		t.Events = append(t.Events, events...)
		t.Dropped += dropped
		for l := 0; l < trace.NumLatencies; l++ {
			t.Latencies[l] = t.Latencies[l].Add(s.worker(i).rec.Hist(l))
		}
	}
	// Slots outside the live set: retired rings that have not been
	// reclaimed yet. The resize lock orders these reads against
	// initSlot's plain writes on slots a concurrent grow is building
	// (slots the grow re-publishes were covered by the loop above at
	// the loaded epoch, so no ring is merged twice).
	s.resizeMu.Lock()
	for i := len(set.slots); i < len(s.workers); i++ {
		if s.worker(i).rec == nil {
			continue // slab tail never grown into
		}
		events, dropped := s.worker(i).rec.Snapshot(i)
		cur := uint64(0)
		for k := range events {
			if events[k].Type == trace.EvJobSwitch {
				cur = uint64(events[k].Arg)
			}
			events[k].Job = cur
		}
		t.Events = append(t.Events, events...)
		t.Dropped += dropped
		for l := 0; l < trace.NumLatencies; l++ {
			t.Latencies[l] = t.Latencies[l].Add(s.worker(i).rec.Hist(l))
		}
	}
	s.resizeMu.Unlock()
	s.spanMu.Lock()
	t.Jobs = append(t.Jobs, s.jobSpans...)
	s.spanMu.Unlock()
	sort.SliceStable(t.Events, func(a, b int) bool { return t.Events[a].Ts < t.Events[b].Ts })
	return t
}

// workerLabels builds the pprof label set attributing a worker's CPU
// samples to the scheduling policy, the worker id, and its phase
// ("resident" for the pool's long-lived workers). Applied only when
// tracing is on.
func (s *Scheduler) workerLabels(id int, phase string) pprof.LabelSet {
	return pprof.Labels(
		"lcws_policy", s.opts.Policy.String(),
		"lcws_worker", strconv.Itoa(id),
		"lcws_phase", phase,
	)
}
