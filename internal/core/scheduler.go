package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lcws/internal/counters"
	"lcws/internal/deque"
	"lcws/internal/trace"
)

// Options configures a Scheduler.
type Options struct {
	// Workers is the number of processors (worker goroutines), P in the
	// paper. Defaults to 1 when non-positive.
	Workers int
	// Policy selects the scheduler algorithm. The zero value is the WS
	// baseline.
	Policy Policy
	// DequeCapacity sets the per-worker deque capacity
	// (deque.DefaultCapacity when non-positive).
	DequeCapacity int
	// Seed seeds the workers' victim-selection PRNGs; runs with equal
	// options and deterministic workloads make identical scheduling
	// decisions up to goroutine interleaving.
	Seed uint64
	// YieldEvery makes each worker call runtime.Gosched after executing
	// that many tasks (0 = never). On hosts with fewer CPUs than
	// workers, cooperative yielding gives thieves regular chances to
	// run, producing steal/exposure dynamics representative of a real
	// P-core machine; the profiling harness uses it for the paper's
	// counter figures.
	YieldEvery int
	// PollEvery sets how many Poll calls elapse between checks of the
	// emulated pending-signal word (default 64). It is the knob that
	// plays the role of OS signal-delivery latency (paper footnote 2):
	// larger values make exposure requests take longer to reach busy
	// workers.
	PollEvery int
	// StealBatch opts into the batched steal-side mode: thieves claim up
	// to half of a victim's public part with a single CAS (PopTopHalf /
	// PopTopN), remember their last successful victim (sticky victim
	// selection), and idle workers park on per-worker semaphores woken by
	// work-producing events instead of sleeping blind. The default
	// (false) is the paper-faithful single-steal mode whose fence/CAS
	// accounting matches internal/counters/model.go exactly; batch mode
	// extends the model as documented there (the WS baseline switches to
	// the tag-bumping batched deque, whose owner pop CASes on every pop).
	StealBatch bool
	// Trace enables the flight recorder: each worker gets a fixed-
	// capacity owner-write event ring (see internal/trace) plus online
	// latency histograms, readable at any time via TraceSnapshot/Stats.
	// nil (the default) disables tracing entirely — workers hold no
	// recorder and every hook is a single nil check, preserving the
	// fork fast path's zero-allocation and ns/fork properties.
	Trace *trace.Config
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.PollEvery <= 0 {
		o.PollEvery = defaultPollEvery
	}
	return o
}

// Scheduler is a pool of P workers executing fork-join computations under
// one of the paper's scheduling policies. A Scheduler may be reused for
// any number of sequential Run calls; Run must not be called concurrently.
//
// Workers live in one contiguous, cache-line-padded slab (see workerSlot)
// rather than as individually heap-allocated objects: victim selection
// then walks a single allocation, and the padding guarantees no two
// workers — and no thief-written notification word and owner-hot field —
// share a cache line.
type Scheduler struct {
	opts     Options
	workers  []workerSlot
	ctrs     *counters.Set
	finished atomic.Bool
	running  atomic.Bool
	wg       sync.WaitGroup // helper-goroutine barrier, reused so Run stays allocation-free

	// parkWords is the idle-worker bitset of the StealBatch parking lot
	// (bit id set = worker id is parked); nil unless StealBatch is on.
	// Parkers set their bit with a seq-cst RMW *before* re-checking for
	// work; producers publish work *before* scanning the bitset — the
	// Dekker-style ordering that makes a lost wakeup impossible (see
	// Worker.park).
	parkWords []atomic.Uint64

	// traceEpoch is the zero point of all trace timestamps; set once in
	// NewScheduler when tracing is enabled.
	traceEpoch time.Time

	panicOnce sync.Once
	panicked  atomic.Bool
	panicVal  any
}

// worker returns worker i of the slab.
func (s *Scheduler) worker(i int) *Worker { return &s.workers[i].w }

// TaskPanic is the value Run re-throws when a task function panics: the
// original panic value wrapped with the id of the worker that was
// executing the task and, when tracing is on, that worker's most recent
// flight-recorder events — so the crash report says where the panic
// happened and what the scheduler was doing just before.
type TaskPanic struct {
	// WorkerID is the worker whose goroutine the panicking task ran on.
	WorkerID int
	// Value is the original value passed to panic.
	Value any
	// Tail holds the panicking worker's last flight-recorder events
	// (oldest first); nil when the scheduler was not tracing.
	Tail []trace.Event
}

// Error renders the panic report; TaskPanic satisfies error so callers
// recovering it can log it directly.
func (p *TaskPanic) Error() string {
	msg := fmt.Sprintf("lcws: task panic on worker %d: %v", p.WorkerID, p.Value)
	if len(p.Tail) > 0 {
		msg += fmt.Sprintf(" (last %d trace events", len(p.Tail))
		for _, e := range p.Tail {
			msg += fmt.Sprintf(" %s@%dns", e.Type, e.Ts)
		}
		msg += ")"
	}
	return msg
}

func (p *TaskPanic) String() string { return p.Error() }

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As work through a recovered TaskPanic.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// recordPanic stores the first task panic of a Run, wrapped with the
// reporting worker's id and trace tail; Run re-throws it.
func (s *Scheduler) recordPanic(id int, v any, tail []trace.Event) {
	s.panicOnce.Do(func() {
		s.panicVal = &TaskPanic{WorkerID: id, Value: v, Tail: tail}
		s.panicked.Store(true)
	})
}

// NewScheduler returns a scheduler with the given options.
func NewScheduler(opts Options) *Scheduler {
	opts = opts.withDefaults()
	if int(opts.Policy) >= NumPolicies {
		panic(fmt.Sprintf("core: unknown policy %d", opts.Policy))
	}
	s := &Scheduler{
		opts:    opts,
		workers: make([]workerSlot, opts.Workers),
		ctrs:    counters.NewSet(opts.Workers),
	}
	if opts.Trace != nil {
		s.traceEpoch = time.Now() //lcws:presync constructor: worker goroutines have not started
	}
	if opts.StealBatch {
		//lcws:presync constructor: worker goroutines have not started
		s.parkWords = make([]atomic.Uint64, (opts.Workers+63)/64)
	}
	for i := range s.workers {
		var dq taskDeque
		switch {
		case opts.Policy.SplitDeque():
			// The split deque supports PopTopHalf as-is; batch mode only
			// changes the owner discipline (reclaim via UnexposeAll, see
			// Worker.popLocal).
			dq = deque.NewSplit[Task](opts.DequeCapacity, opts.Policy.raceFixPop())
		case opts.StealBatch:
			dq = chaseLevDeque{deque.NewChaseLevBatch[Task](opts.DequeCapacity)}
		default:
			dq = chaseLevDeque{deque.NewChaseLev[Task](opts.DequeCapacity)}
		}
		s.workers[i].w.init(i, s, dq, opts)
	}
	return s
}

// setParked marks worker id parked in the parking-lot bitset.
func (s *Scheduler) setParked(id int) {
	word := &s.parkWords[id/64]
	bit := uint64(1) << uint(id%64)
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old|bit) {
			return
		}
	}
}

// clearParked clears worker id's parked bit and reports whether this call
// was the one that cleared it (false means a waker already claimed the
// worker and a semaphore token is in flight or consumed).
func (s *Scheduler) clearParked(id int) bool {
	word := &s.parkWords[id/64]
	bit := uint64(1) << uint(id%64)
	for {
		old := word.Load()
		if old&bit == 0 {
			return false
		}
		if word.CompareAndSwap(old, old&^bit) {
			return true
		}
	}
}

// wakeOne wakes at most one parked worker: it claims a set bit with a CAS
// (so concurrent wakers pick distinct workers) and posts the claimed
// worker's semaphore. Work-producing operations call it after publishing
// the work; c (when non-nil) accounts the wakeup to the caller.
func (s *Scheduler) wakeOne(c *counters.Worker) {
	for wi := range s.parkWords {
		word := s.parkWords[wi].Load()
		for word != 0 {
			bit := word & -word
			if s.parkWords[wi].CompareAndSwap(word, word&^bit) {
				id := wi*64 + bits.TrailingZeros64(bit)
				select {
				case s.worker(id).parkSem <- struct{}{}:
				default:
				}
				if c != nil {
					c.Inc(counters.WakeupsSent)
				}
				return
			}
			word = s.parkWords[wi].Load()
		}
	}
}

// wakeAll unparks every parked worker; Run calls it when the computation
// finishes so parked helpers exit promptly instead of on their insurance
// timers.
func (s *Scheduler) wakeAll() {
	for wi := range s.parkWords {
		word := s.parkWords[wi].Swap(0)
		for word != 0 {
			bit := word & -word
			word &^= bit
			id := wi*64 + bits.TrailingZeros64(bit)
			select {
			case s.worker(id).parkSem <- struct{}{}:
			default:
			}
		}
	}
}

// Workers returns the pool size P.
func (s *Scheduler) Workers() int { return len(s.workers) }

// Policy returns the scheduling policy of the pool.
func (s *Scheduler) Policy() Policy { return s.opts.Policy }

// Counters returns the aggregated instrumentation counters accumulated by
// all Run calls since the last ResetCounters. It is exact only while no
// Run is in progress.
func (s *Scheduler) Counters() counters.Snapshot { return s.ctrs.Snapshot() }

// WorkerCounters returns worker id's own counter snapshot.
func (s *Scheduler) WorkerCounters(id int) counters.Snapshot {
	var out counters.Snapshot
	w := s.ctrs.Worker(id)
	for e := 0; e < counters.NumEvents; e++ {
		out[e] = w.Get(counters.Event(e))
	}
	return out
}

// ResetCounters zeroes all instrumentation counters.
func (s *Scheduler) ResetCounters() { s.ctrs.Reset() }

// Tracing reports whether the scheduler was built with a flight
// recorder (Options.Trace non-nil).
func (s *Scheduler) Tracing() bool { return s.opts.Trace != nil }

// TraceSnapshot decodes every worker's flight-recorder ring into one
// merged, time-sorted event stream plus the aggregated latency
// histograms. It is safe to call at any time, including concurrently
// with a running Run: each ring is frozen for the instant it is read
// (its owner drops — and counts — events that land in that window), so
// the snapshot is race-free without stopping the world. On a scheduler
// built without Options.Trace it returns an empty Trace.
func (s *Scheduler) TraceSnapshot() trace.Trace {
	t := trace.Trace{Policy: s.opts.Policy.String(), Workers: len(s.workers)}
	if s.opts.Trace == nil {
		return t
	}
	for i := range s.workers {
		events, dropped := s.worker(i).rec.Snapshot(i)
		t.Events = append(t.Events, events...)
		t.Dropped += dropped
		for l := 0; l < trace.NumLatencies; l++ {
			t.Latencies[l] = t.Latencies[l].Add(s.worker(i).rec.Hist(l))
		}
	}
	sort.SliceStable(t.Events, func(a, b int) bool { return t.Events[a].Ts < t.Events[b].Ts })
	return t
}

// workerLabels builds the pprof label set attributing a worker's CPU
// samples to the scheduling policy, the worker id, and its phase
// ("root" for the caller's goroutine running the root task, "helper"
// for the stealing helpers). Applied only when tracing is on.
func (s *Scheduler) workerLabels(id int, phase string) pprof.LabelSet {
	return pprof.Labels(
		"lcws_policy", s.opts.Policy.String(),
		"lcws_worker", strconv.Itoa(id),
		"lcws_phase", phase,
	)
}

// labeledHelp runs a helper worker's loop under its pprof labels.
func (s *Scheduler) labeledHelp(w *Worker) {
	pprof.Do(context.Background(), s.workerLabels(w.id, "helper"), func(context.Context) {
		w.helpUntil(nil, 0)
	})
}

// Run executes root to completion on the pool and returns when root and
// every task it transitively forked have finished. Worker 0 executes root;
// the remaining workers start stealing immediately.
func (s *Scheduler) Run(root func(*Worker)) {
	if s.running.Swap(true) {
		panic("core: concurrent Run calls on the same Scheduler")
	}
	defer s.running.Store(false)

	s.finished.Store(false)
	for i := range s.workers {
		s.workers[i].w.resetForRun()
	}

	for i := 1; i < len(s.workers); i++ {
		w := s.worker(i)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.opts.Trace != nil {
				s.labeledHelp(w)
			} else {
				w.helpUntil(nil, 0)
			}
		}()
	}

	// The caller's goroutine acts as worker 0 for the duration of the
	// Run, so allocating the root task from its freelist is owner-local.
	w0 := s.worker(0)
	rootTask := w0.newTask()
	rootTask.prepareFn(root)
	if s.opts.Trace != nil {
		// Label the root's profiler samples like the helpers'; pprof.Do
		// allocates, so the wrap is traced-only and Run stays
		// allocation-free when tracing is off.
		pprof.Do(context.Background(), s.workerLabels(0, "root"), func(context.Context) {
			w0.runTask(rootTask)
		})
	} else {
		w0.runTask(rootTask)
	}
	s.finished.Store(true)
	if s.opts.StealBatch {
		s.wakeAll()
	}
	s.wg.Wait()
	w0.freeTask(rootTask)

	if s.panicked.Load() {
		// A task panicked: its fork subtree was abandoned, so deques may
		// legitimately hold orphaned tasks. Report the original panic to
		// the caller; the scheduler must not be reused afterwards.
		panic(s.panicVal)
	}
	for i := range s.workers {
		w := s.worker(i)
		if !w.dq.IsEmpty() {
			panic(fmt.Sprintf("core: worker %d deque non-empty after Run (scheduler invariant violated)", w.id))
		}
	}
}
