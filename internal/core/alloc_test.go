package core

import "testing"

// Package-level branch functions: a func value referencing a top-level
// function is a constant and costs nothing, so the measurements below see
// only the scheduler's own allocations.
func allocNoop(*Worker) {}

func allocSpawn2(w *Worker) { Fork2(w, allocNoop, allocNoop) }

func allocNoopBody(*Worker, int) {}

// TestFork2FastPathZeroAllocs asserts the headline property of the task
// freelists: once warm, the no-steal Fork2 fast path allocates nothing —
// the right-branch descriptor comes from the freelist and both branches
// are top-level functions.
func TestFork2FastPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by the race detector")
	}
	for _, pol := range Policies {
		s := NewScheduler(Options{Workers: 1, Policy: pol})
		var allocs float64
		s.Run(func(w *Worker) {
			// Warm the freelist to its steady-state depth (two levels of
			// forks live at once via allocSpawn2).
			for i := 0; i < 8; i++ {
				Fork2(w, allocSpawn2, allocSpawn2)
			}
			allocs = testing.AllocsPerRun(100, func() {
				Fork2(w, allocSpawn2, allocSpawn2)
			})
		})
		if allocs != 0 {
			t.Errorf("%s: Fork2 fast path allocates %.1f objects per fork pair in steady state, want 0",
				pol, allocs)
		}
	}
}

// TestParForSplitZeroAllocs asserts that ParFor's range splitting is
// closure-free: a grain-1 loop over 64 indices performs 63 splits per
// run and must allocate for none of them.
func TestParForSplitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by the race detector")
	}
	for _, pol := range Policies {
		s := NewScheduler(Options{Workers: 1, Policy: pol})
		var allocs float64
		s.Run(func(w *Worker) {
			ParFor(w, 0, 64, 1, allocNoopBody) // warm the freelist
			allocs = testing.AllocsPerRun(100, func() {
				ParFor(w, 0, 64, 1, allocNoopBody)
			})
		})
		if allocs != 0 {
			t.Errorf("%s: ParFor allocates %.1f objects per 63-split run in steady state, want 0",
				pol, allocs)
		}
	}
}

// TestFreelistWarmsUp pins down the cold-start behaviour the zero-alloc
// gates rely on: the first run of a fork tree allocates one Task per
// simultaneously live fork depth, and repeating the identical tree
// allocates nothing more.
func TestFreelistWarmsUp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by the race detector")
	}
	s := NewScheduler(Options{Workers: 1})
	s.Run(func(w *Worker) {
		ParFor(w, 0, 1024, 1, allocNoopBody)
		if allocs := testing.AllocsPerRun(10, func() {
			ParFor(w, 0, 1024, 1, allocNoopBody)
		}); allocs != 0 {
			t.Errorf("warm 1023-split ParFor allocates %.1f objects, want 0", allocs)
		}
	})
}
