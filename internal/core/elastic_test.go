package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcws/internal/trace"
)

// elasticScheduler builds a pool with growth headroom and aggressive
// exposure so resizes interleave with real steals under -race.
func elasticScheduler(p Policy, workers, maxWorkers int) *Scheduler {
	return NewScheduler(Options{
		Workers:    workers,
		MaxWorkers: maxWorkers,
		Policy:     p,
		Seed:       42,
		YieldEvery: 1,
		PollEvery:  4,
	})
}

// waitUntil polls cond every millisecond until it holds or the
// deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", d, what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSetWorkersBounds(t *testing.T) {
	s := elasticScheduler(SignalLCWS, 2, 4)
	defer s.Close()
	if err := s.SetWorkers(0); err == nil {
		t.Error("SetWorkers(0) succeeded, want error")
	}
	if err := s.SetWorkers(5); err == nil {
		t.Error("SetWorkers(5) above MaxWorkers succeeded, want error")
	}
	if got := s.MaxWorkers(); got != 4 {
		t.Errorf("MaxWorkers() = %d, want 4", got)
	}
	for _, n := range []int{1, 4, 2} {
		if err := s.SetWorkers(n); err != nil {
			t.Fatalf("SetWorkers(%d): %v", n, err)
		}
		if got := s.Workers(); got != n {
			t.Errorf("Workers() = %d after SetWorkers(%d)", got, n)
		}
	}
}

func TestSetWorkersAfterClose(t *testing.T) {
	s := elasticScheduler(SignalLCWS, 2, 4)
	s.Run(func(w *Worker) {})
	s.Close()
	if err := s.SetWorkers(4); !errors.Is(err, ErrSchedulerClosed) {
		t.Errorf("SetWorkers after Close = %v, want ErrSchedulerClosed", err)
	}
}

// TestSetWorkersBeforeStart resizes a pool that has never spawned a
// goroutine: the set must flip without creating workers, and the first
// Run must spawn exactly the resized live set.
func TestSetWorkersBeforeStart(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := elasticScheduler(p, 4, 8)
		defer s.Close()
		if err := s.SetWorkers(2); err != nil {
			t.Fatal(err)
		}
		if err := s.SetWorkers(6); err != nil {
			t.Fatal(err)
		}
		if got := s.Workers(); got != 6 {
			t.Fatalf("Workers() = %d before start, want 6", got)
		}
		var got int
		s.Run(func(w *Worker) { got = fib(w, 15) })
		if got != 610 {
			t.Fatalf("fib(15) = %d, want 610", got)
		}
		if st := s.Stats(); st.WorkersRetired != 0 {
			t.Errorf("WorkersRetired = %d for a pre-start shrink, want 0", st.WorkersRetired)
		}
	})
}

// TestShrinkRetiresAndReclaims shrinks a running pool and waits for the
// surplus workers to drain, retire, and have their resources reclaimed.
func TestShrinkRetiresAndReclaims(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := elasticScheduler(p, 8, 8)
		defer s.Close()
		var got int
		s.Run(func(w *Worker) { got = fib(w, 18) })
		if got != 2584 {
			t.Fatalf("fib(18) = %d, want 2584", got)
		}
		if err := s.SetWorkers(2); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, 5*time.Second, "6 workers to retire", func() bool {
			return s.workersRetired.Load() >= 6
		})
		if got := s.Workers(); got != 2 {
			t.Errorf("Workers() = %d after shrink, want 2", got)
		}
		// A no-op SetWorkers still attempts reclamation; once the two
		// live workers deep-park (unpinned), every retiree is
		// reclaimable.
		waitUntil(t, 5*time.Second, "retired slots to be reclaimed", func() bool {
			if err := s.SetWorkers(2); err != nil {
				t.Fatal(err)
			}
			return s.epochReclaims.Load() >= 6
		})
		s.Run(func(w *Worker) { got = fib(w, 16) })
		if got != 987 {
			t.Fatalf("fib(16) on shrunk pool = %d, want 987", got)
		}
		st := s.Stats()
		if st.Resizes == 0 {
			t.Error("Resizes = 0 after SetWorkers shrink")
		}
	})
}

// TestRetireThenRegrowReuse retires slots, forces reclamation, then
// grows back over the same slots: deques, freelists and rings must be
// reusable, and thieves' per-victim state (MultFree claim cursors,
// sticky victims) must stay sound across the cycle.
func TestRetireThenRegrowReuse(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := elasticScheduler(p, 8, 8)
		defer s.Close()
		for cycle := 0; cycle < 3; cycle++ {
			var got int
			s.Run(func(w *Worker) { got = fib(w, 18) })
			if got != 2584 {
				t.Fatalf("cycle %d: fib(18) = %d, want 2584", cycle, got)
			}
			if err := s.SetWorkers(1); err != nil {
				t.Fatal(err)
			}
			waitUntil(t, 5*time.Second, "7 workers to retire", func() bool {
				return s.workersRetired.Load() >= uint64(cycle+1)*7
			})
			if err := s.SetWorkers(8); err != nil {
				t.Fatal(err)
			}
			if got := s.Workers(); got != 8 {
				t.Fatalf("cycle %d: Workers() = %d after regrow, want 8", cycle, got)
			}
		}
		st := s.Stats()
		if st.WorkersRetired < 21 {
			t.Errorf("WorkersRetired = %d, want >= 21", st.WorkersRetired)
		}
		if st.Resizes < 6 {
			t.Errorf("Resizes = %d, want >= 6", st.Resizes)
		}
	})
}

// TestSetWorkersRacingSubmit flips the pool size while jobs with real
// fork-join parallelism (hence steals across the epoch boundary) run
// underneath. Under -race this is the main epoch-protocol exerciser,
// including MultFree's relaxed claims against victims that retire and
// come back mid-run.
func TestSetWorkersRacingSubmit(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := elasticScheduler(p, 2, 8)
		defer s.Close()
		stop := make(chan struct{})
		var flips sync.WaitGroup
		flips.Add(1)
		go func() {
			defer flips.Done()
			sizes := []int{1, 8, 3, 2, 5, 1, 8}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := s.SetWorkers(sizes[i%len(sizes)]); err != nil {
					t.Error(err)
					return
				}
				// Throttle: an unbroken stream of resizes starves the
				// pool of forward progress; the point is interleaving,
				// not livelock.
				time.Sleep(200 * time.Microsecond)
			}
		}()
		for round := 0; round < 100; round++ {
			var sum atomic.Int64
			j := s.Submit(func(w *Worker) {
				ParFor(w, 0, 512, 4, func(w *Worker, i int) {
					sum.Add(int64(i))
				})
			})
			if err := j.Wait(); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if want := int64(512) * 511 / 2; sum.Load() != want {
				t.Fatalf("round %d: sum = %d, want %d", round, sum.Load(), want)
			}
		}
		close(stop)
		flips.Wait()
	})
}

// TestSetWorkersRacingClose races resizes (including grows, which spawn
// goroutines) against Close: Close must wait for every spawned worker
// and SetWorkers must never revive a closed pool.
func TestSetWorkersRacingClose(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for round := 0; round < 10; round++ {
			s := elasticScheduler(p, 2, 8)
			s.Run(func(w *Worker) { _ = fib(w, 10) })
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if err := s.SetWorkers(1 + i%8); err != nil {
						if !errors.Is(err, ErrSchedulerClosed) {
							t.Errorf("SetWorkers: %v", err)
						}
						return
					}
				}
			}()
			go func() {
				defer wg.Done()
				s.Close()
			}()
			wg.Wait()
			s.Close()
		}
	})
}

// TestDemandGrowth verifies the submit-side probe: a pool of one with
// backlog in the injector must grow toward MaxWorkers without any
// SetWorkers call.
func TestDemandGrowth(t *testing.T) {
	s := elasticScheduler(SignalLCWS, 1, 4)
	defer s.Close()
	var release atomic.Bool
	var jobs []*Job
	waitUntil(t, 5*time.Second, "demand growth", func() bool {
		for i := 0; i < 4; i++ {
			jobs = append(jobs, s.Submit(func(w *Worker) {
				for !release.Load() {
					time.Sleep(100 * time.Microsecond)
				}
			}))
		}
		return s.poolGrows.Load() > 0
	})
	release.Store(true)
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Workers(); got < 2 {
		t.Errorf("Workers() = %d after sustained backlog, want >= 2", got)
	}
}

// TestIdleRetirement verifies the other half of elasticity: workers the
// demand probe added above the resident target retire again once the
// pool has been idle past the deep-park insurance window.
func TestIdleRetirement(t *testing.T) {
	s := elasticScheduler(SignalLCWS, 1, 4)
	defer s.Close()
	var release atomic.Bool
	var jobs []*Job
	waitUntil(t, 5*time.Second, "demand growth", func() bool {
		for i := 0; i < 4; i++ {
			jobs = append(jobs, s.Submit(func(w *Worker) {
				for !release.Load() {
					time.Sleep(100 * time.Microsecond)
				}
			}))
		}
		return s.poolGrows.Load() > 0
	})
	release.Store(true)
	for _, j := range jobs {
		if err := j.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// The pool is now idle and above target; each insurance window
	// (100ms) retires one surplus worker.
	waitUntil(t, 10*time.Second, "idle retirement back to target", func() bool {
		return s.Workers() == 1 && s.workersRetired.Load() > 0
	})
}

// TestParkUnparkDuringReclamation shrinks a fully deep-parked pool —
// retirement must pull sleeping surplus workers out of their park
// rather than waiting out insurance timers — and then wakes the
// remainder with fresh work while reclamation is still pending.
func TestParkUnparkDuringReclamation(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := elasticScheduler(p, 4, 4)
		defer s.Close()
		s.Run(func(w *Worker) { _ = fib(w, 14) })
		// Give the pool time to deep-park everyone.
		time.Sleep(20 * time.Millisecond)
		if err := s.SetWorkers(1); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, 5*time.Second, "parked surplus workers to retire", func() bool {
			return s.workersRetired.Load() >= 3
		})
		var got int
		s.Run(func(w *Worker) { got = fib(w, 14) })
		if got != 377 {
			t.Fatalf("fib(14) = %d, want 377", got)
		}
	})
}

// TestElasticTraceEvents pins a worker in a long job across a shrink so
// retirement is observable in a snapshot (the blocker's old-epoch pin
// defers ring reclamation), then checks the flip itself is recorded by
// the survivors once they adopt the new epoch.
func TestElasticTraceEvents(t *testing.T) {
	s := NewScheduler(Options{
		Workers: 3,
		Policy:  SignalLCWS,
		Seed:    42,
		Trace:   &trace.Config{BufPerWorker: 1 << 12},
	})
	defer s.Close()
	s.Run(func(w *Worker) {}) // spawn the pool
	var started, release atomic.Bool
	blocker := s.Submit(func(w *Worker) {
		started.Store(true)
		for !release.Load() {
			time.Sleep(100 * time.Microsecond)
		}
	})
	waitUntil(t, 5*time.Second, "blocker to start", started.Load)
	if err := s.SetWorkers(1); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "a surplus worker to retire", func() bool {
		return s.workersRetired.Load() >= 1
	})
	tr := s.TraceSnapshot()
	if tr.Workers != s.Workers() {
		t.Errorf("Trace.Workers = %d, want live count %d", tr.Workers, s.Workers())
	}
	retires := 0
	for _, e := range tr.Events {
		if e.Type == trace.EvRetire {
			retires++
		}
	}
	if retires == 0 {
		t.Error("no EvRetire event in snapshot taken before reclamation")
	}
	release.Store(true)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	s.Run(func(w *Worker) { _ = fib(w, 10) })
	resizes := 0
	for _, e := range s.TraceSnapshot().Events {
		if e.Type == trace.EvResize {
			resizes++
		}
	}
	if resizes == 0 {
		t.Error("no EvResize event after survivors adopted the new epoch")
	}
}

// TestSnapshotConsistentMidResize hammers TraceSnapshot and Workers
// while the pool size flips: both must read one coherent epoch (no
// index out of range on a shrinking set, count and ring iteration from
// the same set load). Counter aggregation (Stats) is checked only at
// quiescence — its plain per-worker counters are documented as exact
// only then.
func TestSnapshotConsistentMidResize(t *testing.T) {
	s := NewScheduler(Options{
		Workers:    2,
		MaxWorkers: 8,
		Policy:     MultFree,
		Seed:       42,
		YieldEvery: 1,
		PollEvery:  4,
		Trace:      &trace.Config{BufPerWorker: 1 << 10},
	})
	defer s.Close()
	s.Run(func(w *Worker) { _ = fib(w, 10) })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var flips atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.SetWorkers(1 + i%8); err != nil {
				t.Error(err)
				return
			}
			flips.Add(1)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	// Snapshot until at least 200 reads have raced at least 25 flips:
	// without the flip floor the loop can complete before the flipper
	// goroutine is even scheduled, and nothing would actually race.
	for i := 0; i < 200 || flips.Load() < 25; i++ {
		if n := s.Workers(); n < 1 || n > 8 {
			t.Fatalf("Workers() = %d outside [1, 8]", n)
		}
		tr := s.TraceSnapshot()
		if tr.Workers < 1 || tr.Workers > 8 {
			t.Fatalf("Trace.Workers = %d outside [1, 8]", tr.Workers)
		}
		for _, e := range tr.Events {
			if e.Worker < 0 || e.Worker >= 8 {
				t.Fatalf("event from worker %d outside the slab", e.Worker)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := s.SetWorkers(2); err != nil {
		t.Fatal(err)
	}
	var got int
	s.Run(func(w *Worker) { got = fib(w, 12) })
	if got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
	if st := s.Stats(); st.Resizes == 0 {
		t.Error("Resizes = 0 after the flip storm")
	}
}
