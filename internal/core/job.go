package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lcws/internal/counters"
)

// Errors surfaced through Job.Err / Run.
var (
	// ErrSchedulerClosed is returned for jobs submitted after Close.
	ErrSchedulerClosed = errors.New("lcws: scheduler closed")
	// ErrQueueFull is returned for jobs submitted with AdmitFail whose
	// class admission queue (Options.ClassCapacity) was at capacity;
	// the job never entered the queue.
	ErrQueueFull = errors.New("lcws: submission queue full")
	// ErrJobInvariant wraps a post-job scheduler invariant violation
	// (e.g. a healthy job that left tasks behind). It indicates a
	// scheduler bug, not a user error; it is an error rather than a
	// panic so one suspect job does not take down the pool.
	ErrJobInvariant = errors.New("lcws: scheduler invariant violated")
)

// errJobAborted is the sentinel panic used to unwind a worker out of an
// aborted job's task spine (context cancellation or a task panic
// elsewhere in the job). It never escapes the worker loop: taskDone
// swallows it at the task boundary after the usual bookkeeping.
var errJobAborted = errors.New("lcws: job aborted (internal unwind sentinel)")

// jobShard is one worker's slice of a job's task accounting, padded so
// two workers never contend on one cache line. created counts tasks
// this worker pushed for the job (plus 1 on the worker that ran the
// root); completed counts tasks of the job this worker executed or
// discarded. Each shard is owner-written, unsynchronized; the sums are
// read only at job finalization, after every worker has left the job
// (see Job.settle for why that read is race-free on the healthy path).
//
//lcws:manifest
type jobShard struct {
	created   uint64 //lcws:field thief-shared — owner-written; read at settlement under fork-join transitive happens-before
	completed uint64 //lcws:field thief-shared — same settlement protocol as created
	_         [48]byte
}

// JobStats describes one finished job.
type JobStats struct {
	// Tasks is the number of tasks the job created (root included).
	Tasks uint64
	// Discarded is how many of those were drained unexecuted because
	// the job failed or was cancelled.
	Discarded uint64
	// Duration is the wall-clock time from submission to settlement
	// (queueing included).
	Duration time.Duration
	// Class is the job's priority class.
	Class JobClass
}

// Job is a unit of submission to a Scheduler: one root task plus
// everything it transitively forks. Obtain one from Submit;
// Wait for it with Wait (or the Done channel), then inspect Err and
// Stats. A Job is settled exactly once; all accessors are safe from
// any goroutine after Wait/Done.
//
//lcws:manifest
type Job struct {
	id    uint64     //lcws:field immutable
	sched *Scheduler //lcws:field immutable

	// root is the job's root task, embedded rather than drawn from a
	// worker freelist: the submitting goroutine is no worker, and the
	// drain path must never recycle it into a freelist either.
	root Task //lcws:field thief-shared — the Task manifest and the publication presyncs govern it

	// aborted flips once when the job fails (task panic, cancellation);
	// workers then discard the job's remaining tasks instead of running
	// them, and Poll checkpoints unwind out of its running tasks.
	aborted atomic.Bool //lcws:field atomic

	// firstErr records the job's first failure cause; settle reads it.
	errOnce sync.Once //lcws:field atomic
	failErr error     //lcws:field guarded(errOnce)

	// drained counts tasks of this job discarded unexecuted.
	drained atomic.Uint64 //lcws:field atomic

	done       chan struct{} //lcws:field immutable — closed exactly once by settle
	settleOnce sync.Once     //lcws:field atomic
	err        error         //lcws:field thief-shared — written in settle, read after Done's close edge
	stats      JobStats      //lcws:field thief-shared — same done-channel protocol as err

	// shards is the per-worker task accounting, indexed by worker id.
	shards []jobShard //lcws:field thief-shared — set at submit (presync), shard words owner-written

	// stop detaches the context watcher (context.AfterFunc); nil when
	// the job was submitted without a context.
	stop func() bool //lcws:field guarded(settleOnce)

	start time.Time //lcws:field immutable

	// QoS placement: the job's priority class and within-class weight,
	// fixed at submission; enqueued is stamped just before the injector
	// push and read by the picking worker for the class's injector-wait
	// histogram.
	class    JobClass  //lcws:field immutable
	weight   int       //lcws:field immutable
	enqueued time.Time //lcws:field thief-shared — written before inj.Push publishes the job; read by the picking worker after the locked pop
}

// Class returns the job's priority class.
func (j *Job) Class() JobClass { return j.class }

// Weight returns the job's within-class weight.
func (j *Job) Weight() int { return j.weight }

// fail records cause as the job's failure and flips it to aborted.
// First caller wins; safe from any goroutine.
func (j *Job) fail(cause error) {
	j.errOnce.Do(func() { j.failErr = cause })
	j.aborted.Store(true)
}

// Done returns a channel closed when the job has settled.
func (j *Job) Done() <-chan struct{} { return j.done }

// Err returns the job's outcome: nil on success, a *TaskPanic-wrapped
// error if a task panicked, the context's error if cancelled, or an
// ErrJobInvariant-wrapped error if the job violated scheduler
// invariants. Valid only after Wait/Done.
func (j *Job) Err() error { return j.err }

// Stats returns the job's task accounting and duration. Valid only
// after Wait/Done. When several jobs overlap in time the scheduler-wide
// Stats deltas mix their work; per-job task counts here stay exact for
// successful jobs. For failed jobs Discarded reflects the drains
// observed so far: orphans can trail settlement, so the count grows
// until the pool has quiesced (it is complete after Wait on an
// otherwise-idle scheduler).
func (j *Job) Stats() JobStats {
	st := j.stats
	if j.err != nil {
		if d := j.drained.Load(); d > st.Discarded {
			st.Discarded = d
		}
	}
	return st
}

// Wait blocks until the job settles and returns Err. After Wait
// returns on an otherwise-idle scheduler, the pool has quiesced enough
// that Scheduler.Stats/Counters reads are exact (see quiesce).
func (j *Job) Wait() error {
	<-j.done
	j.sched.quiesce()
	return j.err
}

// settle finalizes the job exactly once: it verifies the job's
// accounting invariants (healthy jobs only), computes stats, releases
// the context watcher, and wakes the pool so idle workers re-evaluate
// the executor state. Called by the worker that ran the job's root to
// completion (or discarded it), or by submit when rejecting a job.
//
// The shard reads below are race-free on the healthy path: every shard
// write happened on a worker that subsequently stamped a task of this
// job complete (a release store some join of the job observed with an
// acquire load); the chain of those fork-join edges ends at the root's
// return on the settling worker. On the aborted path concurrent
// discards of orphaned tasks can still be in flight, so settle does
// not read the shards at all — failed jobs report approximate stats
// from the atomic drain counter only.
func (j *Job) settle() {
	j.settleOnce.Do(func() {
		j.errOnce.Do(func() {}) // acquire failErr (memory-model Do edge)
		err := j.failErr
		st := JobStats{Duration: time.Since(j.start), Class: j.class}
		if err == nil {
			var created, completed uint64
			for i := range j.shards {
				created += j.shards[i].created
				completed += j.shards[i].completed
			}
			discarded := j.drained.Load()
			// The former "deque non-empty after Run" panic, scoped to
			// this job and surfaced as an error: every task the job
			// created must have been executed, and none discarded.
			if completed != created || discarded != 0 {
				err = fmt.Errorf("%w: job %d created %d tasks, completed %d, discarded %d",
					ErrJobInvariant, j.id, created, completed, discarded)
			}
			st.Tasks = created
			st.Discarded = discarded
		} else {
			st.Discarded = j.drained.Load()
		}
		j.stats = st
		j.err = err
		if j.stop != nil {
			j.stop()
			j.stop = nil
		}
		s := j.sched
		if err == nil {
			s.jobsCompleted.Add(1)
		} else {
			s.jobsFailed.Add(1)
		}
		s.recordJobSpan(j, err != nil)
		// Drop the executor's reference count before waking waiters:
		// Wait's quiesce spins only while activeJobs is zero, so if done
		// were closed first a waiter could observe this settled job still
		// counted active, skip quiescing, and read counters while workers
		// are mid-steal. The settling worker is still inside busyPhase
		// (busy > 0), so quiesce waits for every in-flight worker anyway.
		s.activeJobs.Add(-1)
		close(j.done)
		s.wakeAll()
	})
}

// discard drains one orphaned task of an aborted job without executing
// it: the completion stamp is still stored (an in-flight join of the
// dead job may spin on it) and the discard is accounted. The task is
// deliberately not freelisted here — if its forking worker's join is
// still alive it will observe the stamp and recycle the task under the
// normal single-owner discipline; orphans whose joins were unwound are
// left to the garbage collector.
func (w *Worker) discard(t *Task) {
	if w.relaxed && t.fn == nil && !w.claimExec(t) {
		// MultFree: another claimant of this range task won the
		// execution arbitration — it either ran the task or is
		// discarding it itself, and will account the completion. Our
		// copy is a duplicate (already counted by claimExec).
		return
	}
	j := t.job
	if j != nil {
		j.drained.Add(1)
		if sh := w.shardOf(j); sh != nil {
			sh.completed++
		}
	}
	w.ctr.Inc(counters.TaskDiscarded)
	t.complete()
	if j != nil && t == &j.root { //lcws:presync address identity check only; root is embedded, nothing is written
		// Discarding the root settles the job: nothing of it ran or
		// will run (roots are never in a deque; this happens only when
		// a job was cancelled before a worker picked it up).
		j.settle()
	}
}

// shardOf returns this worker's accounting shard of job j.
func (w *Worker) shardOf(j *Job) *jobShard {
	if j == nil || w.id >= len(j.shards) {
		return nil
	}
	return &j.shards[w.id]
}

// jobID returns j's id for trace tagging (0 = no job).
func jobID(j *Job) uint64 {
	if j == nil {
		return 0
	}
	return j.id
}
