//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. Tests
// that assert exact allocation counts skip under it: its instrumentation
// changes what escapes and what the runtime allocates.
const raceEnabled = true
