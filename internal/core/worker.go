package core

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"lcws/internal/counters"
	"lcws/internal/deque"
	"lcws/internal/rng"
	"lcws/internal/trace"
)

// cacheLineSize is the assumed cache-line size used to segregate
// thief-written worker state from owner-hot state and to pad the
// scheduler's worker slab.
const cacheLineSize = 64

// Worker is the per-processor scheduling context. Exactly one goroutine
// runs each worker; task functions receive the worker they execute on and
// must thread it through to nested fork points and Poll calls.
//
// The field layout is deliberate: the two notification words that thieves
// write (targeted, pending) occupy the struct's first cache line by
// themselves, so a thief's notify never invalidates the line(s) holding
// the owner-hot fields the fork fast path reads every push and pop.
// Workers are allocated contiguously in the scheduler's slab (see
// workerSlot), each slot padded to a cache-line multiple plus a trailing
// guard line, so neighbouring workers never share a line either.
type Worker struct {
	// targeted is the per-processor flag of Listings 1 and 3: it records
	// that a thief targeted this worker for stealing. In USLCWS it is the
	// notification itself; in the signal-based schedulers it only
	// suppresses redundant signals.
	targeted atomic.Bool

	// pending is the emulated in-flight signal: a thief stores true
	// ("pthread_kill"), and this worker's goroutine runs the exposure
	// handler at its next poll point.
	pending atomic.Bool

	_ [6]byte // align the trace stamps below to 8 bytes

	// reqTs and sigSendTs are trace-latency stamps, live only when the
	// scheduler traces: a thief that sets this worker's targeted flag
	// stamps reqTs (CAS from zero, so the first requester of a targeted
	// window wins), and the signal sender stamps sigSendTs; the owner
	// Swap(0)s them when it exposes/handles and observes the deltas into
	// its latency histograms. They are thief-written like the two flags
	// above, hence on this line rather than with the owner-hot state.
	reqTs     atomic.Int64
	sigSendTs atomic.Int64

	_ [cacheLineSize - 2*unsafe.Sizeof(atomic.Bool{}) - 6 - 2*unsafe.Sizeof(atomic.Int64{})]byte

	// Owner-hot state: written only by this worker's own goroutine (or
	// by scheduler setup code before that goroutine exists).
	sched      *Scheduler
	dq         taskDeque
	ctr        *counters.Worker
	rand       *rng.Xoshiro256
	freelist   *Task           // owner-only recycled tasks; see newTask/freeTask
	rec        *trace.Recorder // owner-only flight recorder; nil = tracing off
	id         int
	sinceYield int           // tasks executed since the last cooperative yield
	yieldEvery int           // cached Options.YieldEvery (0 = never)
	idleSleep  time.Duration // current idle-backoff sleep (0 = not sleeping yet)
	pollCount  uint32        // Poll() call counter for the cheap fast path
	pollEvery  uint32        // Poll calls between pending-signal checks
	idleSpins  uint32        // consecutive failed work-search iterations
	policy     Policy
	batch      bool  // cached Options.StealBatch
	sticky     int32 // last successful victim id (-1 = none); batch mode only

	// StealBatch-mode state. parkSem is the worker's parking semaphore:
	// a waker that claims this worker's bit in Scheduler.parkWords posts
	// one token here. parkTimer is the missed-wakeup insurance timer
	// (lazily allocated on first park). stealBuf receives batched steals
	// (owner-only after the claim; see stealFromBatched).
	parkSem   chan struct{}
	parkTimer *time.Timer
	stealBuf  [stealBatchSize]*Task
}

// stealBatchSize caps how many tasks one batched steal can claim. Eight
// keeps the thief-side buffer to one cache line of pointers while still
// amortizing the claim CAS over most bursts.
const stealBatchSize = 8

// workerSlot pads a Worker up to a cache-line multiple and appends one
// guard line, so adjacent slots in the scheduler's contiguous slab never
// place two workers' live fields on one line even when the Go allocator
// hands back a slab base that is not itself line-aligned.
type workerSlot struct {
	w Worker
	_ [workerSlotPad]byte
}

const workerSlotPad = (cacheLineSize-unsafe.Sizeof(Worker{})%cacheLineSize)%cacheLineSize + cacheLineSize

// init populates a zeroed worker slot. It runs in NewScheduler, before
// any worker goroutine exists.
func (w *Worker) init(id int, s *Scheduler, dq taskDeque, opts Options) {
	w.id = id
	w.sched = s
	w.policy = opts.Policy
	w.dq = dq
	w.ctr = s.ctrs.Worker(id)
	w.rand = rng.New(opts.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	w.pollEvery = uint32(opts.PollEvery)
	w.yieldEvery = opts.YieldEvery
	w.batch = opts.StealBatch
	w.sticky = -1
	if opts.StealBatch {
		w.parkSem = make(chan struct{}, 1)
	}
	if opts.Trace != nil {
		w.rec = trace.NewRecorder(*opts.Trace, s.traceEpoch, w.ctr)
	}
}

// resetForRun clears per-run scheduling state. It runs at the top of
// Scheduler.Run, before the worker goroutines of that Run are started.
// Everything a Run mutates must be reset here — pollCount and sinceYield
// included, so the poll phase and yield cadence of one Run cannot leak
// into the next (leaked phase made signal-handling latency differ
// between identical seeded runs).
func (w *Worker) resetForRun() {
	w.targeted.Store(false)
	w.pending.Store(false)
	w.reqTs.Store(0)
	w.sigSendTs.Store(0)
	if w.rec != nil {
		w.rec.ResetRun()
	}
	w.idleSpins = 0
	w.idleSleep = 0
	w.pollCount = 0
	w.sinceYield = 0
	w.sticky = -1
	if w.parkSem != nil {
		// Drop a stale wakeup token from a previous Run's shutdown.
		select {
		case <-w.parkSem:
		default:
		}
	}
}

// ID returns the worker's scheduling identifier in [0, Workers()).
func (w *Worker) ID() int { return w.id }

// Workers returns the number of workers in this worker's scheduler.
func (w *Worker) Workers() int { return len(w.sched.workers) }

// Policy returns the scheduling policy the pool runs.
func (w *Worker) Policy() Policy { return w.policy }

// Rand returns the worker-local deterministic PRNG. It must only be used
// from this worker's goroutine.
func (w *Worker) Rand() *rng.Xoshiro256 { return w.rand }

// defaultPollEvery is the default Poll interval between pending-signal
// checks (Options.PollEvery). Kernels call Poll in their innermost loops,
// so the common path must stay a couple of instructions.
const defaultPollEvery = 64

// Poll is the cheap checkpoint that computational kernels place inside
// long sequential loops. Every PollEvery-th call it checks for an emulated
// pending signal and, if one arrived, runs the work-exposure handler. This
// is what makes the signal-based schedulers handle exposure requests in
// (bounded) constant time even in the middle of a coarse-grained task, in
// contrast to USLCWS and Lace which wait for the task to finish.
func (w *Worker) Poll() {
	w.pollCount++
	if w.pollCount >= w.pollEvery {
		w.pollCount = 0
		w.Checkpoint()
	}
}

// Checkpoint checks immediately for a pending exposure request and handles
// it. It is the emulated signal-delivery point; the handler (the deque's
// Expose) runs on this worker's goroutine, mirroring a POSIX handler
// running on the victim's thread.
func (w *Worker) Checkpoint() {
	if w.pending.Load() {
		w.pending.Store(false)
		w.ctr.Inc(counters.SignalHandled)
		n := w.dq.Expose(w.policy.exposeMode(), w.ctr)
		if w.rec != nil {
			w.rec.SignalHandle(n, w.sigSendTs.Swap(0), w.reqTs.Swap(0))
		}
		if n > 0 && w.batch {
			// Work just became public; unpark a thief to take it.
			w.sched.wakeOne(w.ctr)
		}
	}
}

// runLeaf executes body for every index of a ParFor leaf range with the
// Poll bookkeeping hoisted out of the per-iteration path: the loop runs
// in chunks bounded by the remaining poll budget and checkpoints between
// chunks. The observable cadence is identical to calling Poll after
// every iteration — pollCount advances by one per index and a checkpoint
// fires every pollEvery-th — but the inner loop is a bare body call.
func (w *Worker) runLeaf(lo, hi int, body func(*Worker, int)) {
	for i := lo; i < hi; {
		n := hi - i
		if rem := int(w.pollEvery - w.pollCount); n > rem {
			n = rem
		}
		for end := i + n; i < end; i++ {
			body(w, i)
		}
		w.pollCount += uint32(n)
		if w.pollCount >= w.pollEvery {
			w.pollCount = 0
			w.Checkpoint()
		}
	}
}

// runTask executes t — a plain function task or a range task — and marks
// it done. With Options.YieldEvery set, the worker periodically yields
// the OS thread so that on oversubscribed hosts thieves interleave with
// busy workers at task granularity.
//
// A panic in the task function is captured into the scheduler (the first
// one wins) and re-thrown by Run after the computation drains; the task
// still counts as done so joins waiting on it cannot hang. runTask never
// frees t: recycling is the forking worker's job, at its join point.
func (w *Worker) runTask(t *Task) {
	if w.rec != nil {
		if t.fn != nil {
			w.rec.TaskBegin(0)
		} else {
			w.rec.TaskBegin(1)
		}
	}
	defer w.taskDone(t)
	if t.fn != nil {
		t.fn(w)
	} else {
		w.forkRange(t.lo, t.hi, t.grain, t.body)
	}
	if ye := w.yieldEvery; ye > 0 {
		w.sinceYield++
		if w.sinceYield >= ye {
			w.sinceYield = 0
			runtime.Gosched()
		}
	}
}

// taskDone is runTask's deferred epilogue: capture a task panic (with
// this worker's id and recent trace history), close the task's trace
// span, and mark the task complete. It is a named Worker method rather
// than a closure so its owner-only accesses (rec, freelist-class state)
// verifiably run on the owner's goroutine; recover works here because
// taskDone is itself the deferred function.
func (w *Worker) taskDone(t *Task) {
	if r := recover(); r != nil {
		w.sched.recordPanic(w.id, r, w.traceTail())
	}
	if w.rec != nil {
		w.rec.TaskEnd()
	}
	t.complete()
	w.ctr.Inc(counters.TaskExecuted)
}

// runInline executes a forked task that its own join popped back
// un-stolen. It differs from runTask in one way: the completion stamp is
// not stored. No other worker holds a reference that waits on it — the
// task came back through the owner's pop, so any thief that glimpsed the
// pointer lost its steal CAS and abandoned it — and the joining code
// path below is the caller itself. Skipping the store keeps the no-steal
// join free of its last atomic RMW; the stamp scheme stays sound because
// a later incarnation of the task waits for a strictly greater stamp
// value than any this incarnation could have stored (see Task).
// Inline siblings run inside their parent's task span: runInline is
// the per-fork fast path, so it deliberately records no begin/end
// events of its own (see DESIGN.md §9 on enabled-tracing overhead).
func (w *Worker) runInline(t *Task) {
	defer w.inlineDone()
	if t.fn != nil {
		t.fn(w)
	} else {
		w.forkRange(t.lo, t.hi, t.grain, t.body)
	}
	if ye := w.yieldEvery; ye > 0 {
		w.sinceYield++
		if w.sinceYield >= ye {
			w.sinceYield = 0
			runtime.Gosched()
		}
	}
}

// inlineDone is runInline's deferred epilogue; unlike taskDone it skips
// the completion stamp (see runInline) and the trace span close.
func (w *Worker) inlineDone() {
	if r := recover(); r != nil {
		w.sched.recordPanic(w.id, r, w.traceTail())
	}
	w.ctr.Inc(counters.TaskExecuted)
}

// panicTailEvents is how many trailing flight-recorder events a task
// panic carries in its TaskPanic report.
const panicTailEvents = 16

// traceTail returns this worker's most recent flight-recorder events
// for a panic report (nil when tracing is off). Owner-only.
func (w *Worker) traceTail() []trace.Event {
	if w.rec == nil {
		return nil
	}
	tail := w.rec.Tail(panicTailEvents)
	for i := range tail {
		tail[i].Worker = w.id
	}
	return tail
}

// traceFork records a fork event when tracing is on; the fork entry
// points (Fork2, forkRange) call it instead of touching rec directly so
// the owner-only access stays inside a Worker method.
func (w *Worker) traceFork() {
	if w.rec != nil {
		w.rec.Fork()
	}
}

// push appends a task to this worker's deque, applying the policy's
// push-side flag maintenance (§4: in the signal-based schedulers the
// targeted flag is reset when the owner pushes new work, so thieves may
// notify again). The reset is a single unconditional store: the flag
// lives on the worker's thief-shared line, which the owner's fast path
// does not otherwise touch, so the store costs at most one exclusive
// line acquisition — while the former load-test-store pair put an extra
// load and a mispredictable branch on every fork.
func (w *Worker) push(t *Task) {
	// Batch mode: a push onto an empty deque is the event that turns an
	// idle pool busy again, so it wakes one parked thief. (For the WS
	// baseline the pushed task is immediately stealable; for the split
	// deque the woken thief finds PrivateWork and notifies, starting the
	// exposure chain — without this wake, a fully parked pool would only
	// learn about new work from insurance timers.)
	wake := w.batch && w.dq.IsEmpty()
	w.dq.PushBottom(t, w.ctr)
	if w.policy.SignalBased() {
		w.targeted.Store(false)
	}
	if wake {
		w.sched.wakeOne(w.ctr)
	}
}

// popLocal is the local half of Listing 1's get_task: first the private
// part (with USLCWS's task-boundary exposure check), then the public part.
func (w *Worker) popLocal() *Task {
	if t := w.dq.PopBottom(w.ctr); t != nil {
		if w.policy.flagBased() && w.targeted.Load() {
			// Listing 1 lines 9–12: handle the notification at the
			// task boundary (USLCWS; Lace behaves the same way).
			w.targeted.Store(false)
			n := w.dq.Expose(w.policy.exposeMode(), w.ctr)
			if w.rec != nil {
				w.rec.Exposed(n, w.reqTs.Swap(0))
			}
			if n > 0 && w.batch {
				w.sched.wakeOne(w.ctr)
			}
		}
		return t
	}
	if w.policy == LaceWS || w.batch {
		// Lace: reclaim the public part wholesale instead of draining it
		// through pop_public_bottom. Batch mode mandates the same owner
		// discipline for every split-deque policy: PopPublicBottom's
		// common path removes tasks above top without touching the age
		// word, which is unsound against an in-flight PopTopHalf (a
		// stalled thief's CAS could re-claim an owner-consumed slot);
		// UnexposeAll's tag-bump CAS invalidates such claims first.
		if n := w.dq.UnexposeAll(w.ctr); n > 0 {
			if w.rec != nil {
				w.rec.Repair(n)
			}
			if w.policy.SignalBased() {
				// §4: tasks were removed from the public part; allow
				// new notifications.
				w.targeted.Store(false)
			}
			return w.dq.PopBottom(w.ctr)
		}
		w.targeted.Store(false)
		return nil
	}
	if t := w.dq.PopPublicBottom(w.ctr); t != nil {
		if w.policy.SignalBased() {
			// §4: a task was removed from the public part; allow new
			// notifications.
			w.targeted.Store(false)
		}
		return t
	}
	return nil
}

// join is the second half of a fork (Fork2 or a range split): take the
// forked sibling back from the bottom of the deque and run it inline,
// or, if it was stolen, help execute other tasks until the thief
// completes it. want is the completion stamp (seq+1) recorded at fork
// time; a seq that no longer matches it at join time means the task was
// recycled while a stale reference to it was still live, which the
// stamp turns into an immediate panic. After the join the task is
// returned to this worker's freelist.
func (w *Worker) join(rt *Task, want uint32) {
	if t := w.popLocal(); t != nil {
		if t != rt {
			// LIFO discipline guarantees rt is the bottom-most task
			// *this worker forked*: every task forked after rt was
			// joined before this join ran. In batch mode the deque can
			// additionally hold steal-batch remnants, pushed before the
			// stolen task that forked rt ran, hence below rt — so
			// popping one here proves rt itself was stolen. Execute the
			// remnant as ordinary help (completion stamp and all: its
			// forker joins on it), then wait for rt.
			if !w.batch {
				panic("core: fork-join LIFO violation (bottom of deque is not the forked sibling)")
			}
			w.runTask(t)
			w.helpUntil(rt, want)
		} else {
			w.runInline(t)
		}
	} else {
		// rt was stolen (or exposed and then stolen); work on other
		// tasks until the thief finishes it.
		w.helpUntil(rt, want)
	}
	if rt.seq+1 != want {
		panic("core: forked task was recycled while its join was in flight (generation stamp mismatch)")
	}
	w.freeTask(rt)
	if testHookAfterJoin != nil {
		testHookAfterJoin(w, rt)
	}
}

// testHookAfterJoin, when non-nil, runs after every join's freeTask with
// the just-freed task. Tests use it to seed recycling-discipline
// violations (e.g. a deliberate double free) and assert they are caught.
var testHookAfterJoin func(*Worker, *Task)

// stealOnce performs one stealing-phase iteration of Listing 1: pick a
// victim and attempt pop_top, notifying the victim according to the
// policy when only private work was found. Victim selection is uniformly
// random; in batch mode a sticky victim — the last one this worker stole
// from successfully — is probed first, falling back to random once the
// sticky victim runs empty, so steal traffic follows where work actually
// is instead of re-discovering it by sampling.
func (w *Worker) stealOnce() *Task {
	n := len(w.sched.workers)
	if n == 1 {
		return nil
	}
	vid := -1
	if w.batch && w.sticky >= 0 && int(w.sticky) != w.id {
		vid = int(w.sticky)
	}
	if vid < 0 {
		vid = w.rand.Intn(n - 1)
		if vid >= w.id {
			vid++
		}
	}
	v := w.sched.worker(vid)
	w.ctr.Inc(counters.StealAttempt)
	if w.rec != nil {
		w.rec.StealAttempt(vid)
	}
	if w.batch {
		return w.stealFromBatched(v, vid)
	}
	t, res := v.dq.PopTop(w.ctr)
	switch res {
	case deque.Stolen:
		w.ctr.Inc(counters.StealSuccess)
		if w.rec != nil {
			w.rec.StealHit(vid, 1)
		}
		if w.policy.SignalBased() {
			// §4: a task was removed from the victim's public part;
			// allow new notifications to it.
			v.targeted.Store(false)
		}
		return t
	case deque.PrivateWork:
		w.ctr.Inc(counters.StealPrivate)
		w.notify(v)
	case deque.Abort:
		w.ctr.Inc(counters.StealAbort)
	case deque.Empty:
		w.ctr.Inc(counters.StealEmpty)
	}
	return nil
}

// stealFromBatched is the batch-mode steal attempt against victim v: it
// claims up to half of v's public part with one CAS and lands the
// remnant of the batch in this worker's own deque — the *private* part
// for the split deque, so redistributing the batch costs no fences and
// the batch is immediately shielded from other thieves. The oldest
// (victim-top-most) task is returned for execution, mirroring the
// steal-the-largest-subtree heuristic of the single steal; remnants are
// pushed oldest-first so this worker's own LIFO pops them
// youngest-first, exactly as the victim would have.
func (w *Worker) stealFromBatched(v *Worker, vid int) *Task {
	nTasks, res := v.dq.PopTopHalf(w.stealBuf[:], w.ctr)
	switch res {
	case deque.Stolen:
		w.ctr.Inc(counters.StealSuccess)
		w.ctr.Add(counters.StealBatchTasks, uint64(nTasks))
		if w.rec != nil {
			w.rec.StealHit(vid, nTasks)
		}
		w.sticky = int32(vid)
		if w.policy.SignalBased() {
			// §4: tasks were removed from the victim's public part;
			// allow new notifications to it.
			v.targeted.Store(false)
		}
		t := w.stealBuf[0]
		for i := 1; i < nTasks; i++ {
			w.push(w.stealBuf[i])
			w.stealBuf[i] = nil
		}
		w.stealBuf[0] = nil
		return t
	case deque.PrivateWork:
		// The victim holds work it hasn't exposed yet: stay sticky (the
		// notification below will make it public) and ask for exposure.
		w.ctr.Inc(counters.StealPrivate)
		w.notify(v)
	case deque.Abort:
		// Lost the race, but the victim demonstrably has public work:
		// stay sticky and retry.
		w.ctr.Inc(counters.StealAbort)
	case deque.Empty:
		// A genuine miss: fall back to uniform random selection.
		w.sticky = -1
		w.ctr.Inc(counters.StealEmpty)
	}
	return nil
}

// notify asks victim v to expose work, per policy:
// USLCWS sets the targeted flag unconditionally (Listing 1 line 22);
// the signal-based schedulers send an emulated signal unless one is
// already outstanding (Listing 3 lines 8–11), with the Conservative
// variant additionally requiring the victim to hold at least two tasks.
//
// The signal-based arms claim the targeted flag with a CAS rather than a
// load-then-store: two thieves racing the plain-load check could both
// observe !targeted and both send, double-counting SignalSent and (in
// the C++ reference) issuing a redundant pthread_kill. The CAS admits
// exactly one sender per targeted window, which is what makes the
// SignalSent >= SignalHandled counter invariant exact.
func (w *Worker) notify(v *Worker) {
	switch w.policy {
	case USLCWS, LaceWS:
		w.traceExposeReq(v)
		v.targeted.Store(true)
	case SignalLCWS, HalfLCWS:
		if v.targeted.CompareAndSwap(false, true) {
			w.traceSignalSend(v)
			v.pending.Store(true)
			w.ctr.Inc(counters.SignalSent)
		}
	case ConsLCWS:
		if v.dq.HasTwoTasks() && v.targeted.CompareAndSwap(false, true) {
			w.traceSignalSend(v)
			v.pending.Store(true)
			w.ctr.Inc(counters.SignalSent)
		}
	}
}

// traceExposeReq records an exposure request against victim v and
// stamps v's request word (CAS from zero: the first requester of a
// targeted window anchors the flag-to-exposure latency). No-op when
// tracing is off.
func (w *Worker) traceExposeReq(v *Worker) {
	if w.rec == nil {
		return
	}
	ts := w.rec.ExposeRequest(v.id)
	v.reqTs.CompareAndSwap(0, ts)
}

// traceSignalSend records the emulated signal to victim v and stamps
// v's signal word; the caller is the CAS winner of v's targeted window
// and invokes this before setting v.pending, so the victim's handler
// observes the stamp. No-op when tracing is off.
func (w *Worker) traceSignalSend(v *Worker) {
	if w.rec == nil {
		return
	}
	ts := w.rec.ExposeRequest(v.id)
	v.reqTs.CompareAndSwap(0, ts)
	v.sigSendTs.Store(w.rec.SignalSend(v.id))
}

// Idle-backoff schedule: a short burst of pure spins keeps steal latency
// minimal when work is about to appear, a window of cooperative yields
// lets victims run on oversubscribed hosts, and beyond that the worker
// parks in exponentially growing sleeps (capped) so a mostly-idle pool
// stops burning CPU. The ladder resets whenever the worker finds work.
const (
	idleSpinIters  = 8
	idleYieldIters = 256
	idleSleepMin   = 20 * time.Microsecond
	idleSleepMax   = time.Millisecond
)

// idleBackoff is called after a work-search iteration that found nothing.
// Blocked time (sleeping or parked) is accounted to the ParkedNanos
// counter so idle cost shows up in profiles separately from busy idle
// iterations. canPark gates the event-driven parking lot: only the
// top-level loop may park (a join's help loop wakes on its sibling's
// completion stamp, for which no wakeup event exists), and only in
// StealBatch mode; everywhere else the tail of the ladder is the blind
// capped sleep.
func (w *Worker) idleBackoff(canPark bool) {
	w.ctr.Inc(counters.IdleIteration)
	w.idleSpins++
	switch {
	case w.idleSpins <= idleSpinIters:
		// Spin again immediately.
	case w.idleSpins <= idleSpinIters+idleYieldIters:
		runtime.Gosched()
	case w.batch && canPark:
		w.park()
	default:
		d := w.idleSleep
		if d < idleSleepMin {
			d = idleSleepMin
		}
		var pstart int64
		if w.rec != nil {
			pstart = w.rec.ParkStart(0)
		}
		start := time.Now()
		time.Sleep(d)
		w.ctr.Add(counters.ParkedNanos, uint64(time.Since(start)))
		if w.rec != nil {
			w.rec.ParkEnd(0, pstart)
		}
		d *= 2
		if d > idleSleepMax {
			d = idleSleepMax
		}
		w.idleSleep = d
	}
}

// park blocks the worker on its parking semaphore until a work event
// wakes it or the insurance timer (idleSleepMax) fires.
//
// Wakeup ordering — why a parked thief cannot miss an exposure: the
// parker (1) sets its bit in the parking-lot bitset with a seq-cst RMW,
// then (2) re-checks for finish/signals/public work and bails out if any
// is found. A producer (3) publishes work with a seq-cst store (Expose's
// publicBot store, PushBottom's bot store), then (4) scans the bitset
// and wakes a claimed worker. Interleave them: if the parker's re-check
// (2) misses the work, the check ran before the publish (3) in the
// seq-cst total order, so the bit-set (1) — which precedes (2) — also
// precedes the producer's scan (4), which therefore observes the bit
// and posts the semaphore. Either the parker sees the work, or the
// producer sees the parker; a sleep through a wake event is impossible.
// The timer is insurance for the one chain no wake event covers (work
// that stays private because its owner's targeted flag was already set
// when the pool parked), bounding worst-case steal latency at
// idleSleepMax — exactly the old ladder's cap.
func (w *Worker) park() {
	// A stale token can linger from a wake that raced a previous
	// timeout; drop it so it cannot satisfy this round's wait early.
	// (No waker can be targeting this round yet: our bit is not set.)
	select {
	case <-w.parkSem:
	default:
	}
	w.sched.setParked(w.id)
	if w.sched.finished.Load() || w.pending.Load() || w.anyPublicWork() {
		w.sched.clearParked(w.id)
		return
	}
	w.ctr.Inc(counters.ParkCount)
	if w.parkTimer == nil {
		w.parkTimer = time.NewTimer(idleSleepMax)
	} else {
		w.parkTimer.Reset(idleSleepMax)
	}
	var pstart int64
	if w.rec != nil {
		pstart = w.rec.ParkStart(1)
	}
	start := time.Now()
	select {
	case <-w.parkSem:
	case <-w.parkTimer.C:
	}
	w.ctr.Add(counters.ParkedNanos, uint64(time.Since(start)))
	if w.rec != nil {
		w.rec.ParkEnd(1, pstart)
	}
	if !w.parkTimer.Stop() {
		// Timer already fired; drain its channel if the wakeup came
		// from the semaphore (pre-1.23 timer discipline).
		select {
		case <-w.parkTimer.C:
		default:
		}
	}
	w.sched.clearParked(w.id)
}

// anyPublicWork reports whether any other worker's deque (racily) holds
// stealable work; park uses it as the pre-park re-check.
func (w *Worker) anyPublicWork() bool {
	for i := range w.sched.workers {
		if i != w.id && w.sched.worker(i).dq.HasPublicWork() {
			return true
		}
	}
	return false
}

// next implements Listing 1's get_task generalized over the stop
// condition: with join == nil it serves the top-level worker loop and
// stops when the computation finishes; with join != nil it serves a
// fork's join point and stops when the awaited task's completion stamp
// reaches want. It returns nil exactly when the stop condition became
// true. Threading the awaited task instead of a stop closure keeps the
// fork join path allocation-free (a captured predicate would
// heap-allocate per fork).
func (w *Worker) next(join *Task, want uint32) *Task {
	for {
		if join != nil {
			if join.isDone(want) {
				return nil
			}
		} else if w.sched.finished.Load() {
			return nil
		}
		w.Checkpoint()
		if t := w.popLocal(); t != nil {
			w.idleSpins = 0
			w.idleSleep = 0
			if w.rec != nil {
				w.rec.LocalWork()
			}
			return t
		}
		if w.rec != nil && w.idleSpins == 0 {
			// First fruitless local pop of this idle episode.
			w.rec.DequeEmpty()
		}
		if w.policy.flagBased() {
			// Listing 1 line 17: nothing local to expose; clear the
			// notification before entering the stealing phase.
			w.targeted.Store(false)
		}
		if t := w.stealOnce(); t != nil {
			w.idleSpins = 0
			w.idleSleep = 0
			return t
		}
		w.idleBackoff(join == nil)
	}
}

// helpUntil runs scheduler work until the stop condition of
// next(join, want) is reached. It is the join-side wait loop: instead
// of blocking, the worker keeps executing local and stolen tasks
// (work-first helping), so a stolen sibling's completion is detected
// promptly and no worker idles while work exists.
func (w *Worker) helpUntil(join *Task, want uint32) {
	for {
		t := w.next(join, want)
		if t == nil {
			return
		}
		w.runTask(t)
	}
}
