package core

import (
	"runtime"
	"sync/atomic"
	"time"

	"lcws/internal/counters"
	"lcws/internal/deque"
	"lcws/internal/rng"
)

// Worker is the per-processor scheduling context. Exactly one goroutine
// runs each worker; task functions receive the worker they execute on and
// must thread it through to nested fork points and Poll calls.
type Worker struct {
	id     int
	sched  *Scheduler
	policy Policy
	dq     taskDeque
	ctr    *counters.Worker
	rand   *rng.Xoshiro256

	// targeted is the per-processor flag of Listings 1 and 3: it records
	// that a thief targeted this worker for stealing. In USLCWS it is the
	// notification itself; in the signal-based schedulers it only
	// suppresses redundant signals.
	targeted atomic.Bool

	// pending is the emulated in-flight signal: a thief stores true
	// ("pthread_kill"), and this worker's goroutine runs the exposure
	// handler at its next poll point.
	pending atomic.Bool

	pollCount  uint32 // Poll() call counter for the cheap fast path
	pollEvery  uint32 // Poll calls between pending-signal checks
	idleSpins  uint32 // consecutive failed work-search iterations
	sinceYield int    // tasks executed since the last cooperative yield
}

// ID returns the worker's scheduling identifier in [0, Workers()).
func (w *Worker) ID() int { return w.id }

// Workers returns the number of workers in this worker's scheduler.
func (w *Worker) Workers() int { return len(w.sched.workers) }

// Policy returns the scheduling policy the pool runs.
func (w *Worker) Policy() Policy { return w.policy }

// Rand returns the worker-local deterministic PRNG. It must only be used
// from this worker's goroutine.
func (w *Worker) Rand() *rng.Xoshiro256 { return w.rand }

// defaultPollEvery is the default Poll interval between pending-signal
// checks (Options.PollEvery). Kernels call Poll in their innermost loops,
// so the common path must stay a couple of instructions.
const defaultPollEvery = 64

// Poll is the cheap checkpoint that computational kernels place inside
// long sequential loops. Every PollEvery-th call it checks for an emulated
// pending signal and, if one arrived, runs the work-exposure handler. This
// is what makes the signal-based schedulers handle exposure requests in
// (bounded) constant time even in the middle of a coarse-grained task, in
// contrast to USLCWS and Lace which wait for the task to finish.
func (w *Worker) Poll() {
	w.pollCount++
	if w.pollCount >= w.pollEvery {
		w.pollCount = 0
		w.Checkpoint()
	}
}

// Checkpoint checks immediately for a pending exposure request and handles
// it. It is the emulated signal-delivery point; the handler (the deque's
// Expose) runs on this worker's goroutine, mirroring a POSIX handler
// running on the victim's thread.
func (w *Worker) Checkpoint() {
	if w.pending.Load() {
		w.pending.Store(false)
		w.ctr.Inc(counters.SignalHandled)
		w.dq.Expose(w.policy.exposeMode(), w.ctr)
	}
}

// runTask executes t and marks it done. With Options.YieldEvery set, the
// worker periodically yields the OS thread so that on oversubscribed
// hosts thieves interleave with busy workers at task granularity.
//
// A panic in the task function is captured into the scheduler (the first
// one wins) and re-thrown by Run after the computation drains; the task
// still counts as done so joins waiting on it cannot hang.
func (w *Worker) runTask(t *Task) {
	defer func() {
		if r := recover(); r != nil {
			w.sched.recordPanic(r)
		}
		t.done.Store(true)
		w.ctr.Inc(counters.TaskExecuted)
	}()
	t.fn(w)
	if ye := w.sched.opts.YieldEvery; ye > 0 {
		w.sinceYield++
		if w.sinceYield >= ye {
			w.sinceYield = 0
			runtime.Gosched()
		}
	}
}

// push appends a task to this worker's deque, applying the policy's
// push-side flag maintenance (§4: in the signal-based schedulers the
// targeted flag is reset when the owner pushes new work, so thieves may
// notify again).
func (w *Worker) push(t *Task) {
	w.dq.PushBottom(t, w.ctr)
	if w.policy.SignalBased() && w.targeted.Load() {
		w.targeted.Store(false)
	}
}

// popLocal is the local half of Listing 1's get_task: first the private
// part (with USLCWS's task-boundary exposure check), then the public part.
func (w *Worker) popLocal() *Task {
	if t := w.dq.PopBottom(w.ctr); t != nil {
		if w.policy.flagBased() && w.targeted.Load() {
			// Listing 1 lines 9–12: handle the notification at the
			// task boundary (USLCWS; Lace behaves the same way).
			w.targeted.Store(false)
			w.dq.Expose(w.policy.exposeMode(), w.ctr)
		}
		return t
	}
	if w.policy == LaceWS {
		// Lace: reclaim the public part wholesale instead of draining
		// it through pop_public_bottom.
		if w.dq.UnexposeAll(w.ctr) > 0 {
			return w.dq.PopBottom(w.ctr)
		}
		w.targeted.Store(false)
		return nil
	}
	if t := w.dq.PopPublicBottom(w.ctr); t != nil {
		if w.policy.SignalBased() {
			// §4: a task was removed from the public part; allow new
			// notifications.
			w.targeted.Store(false)
		}
		return t
	}
	return nil
}

// stealOnce performs one stealing-phase iteration of Listing 1: pick a
// uniformly random victim and attempt pop_top, notifying the victim
// according to the policy when only private work was found.
func (w *Worker) stealOnce() *Task {
	n := len(w.sched.workers)
	if n == 1 {
		return nil
	}
	vid := w.rand.Intn(n - 1)
	if vid >= w.id {
		vid++
	}
	v := w.sched.workers[vid]
	w.ctr.Inc(counters.StealAttempt)
	t, res := v.dq.PopTop(w.ctr)
	switch res {
	case deque.Stolen:
		w.ctr.Inc(counters.StealSuccess)
		if w.policy.SignalBased() {
			// §4: a task was removed from the victim's public part;
			// allow new notifications to it.
			v.targeted.Store(false)
		}
		return t
	case deque.PrivateWork:
		w.ctr.Inc(counters.StealPrivate)
		w.notify(v)
	case deque.Abort:
		w.ctr.Inc(counters.StealAbort)
	case deque.Empty:
		w.ctr.Inc(counters.StealEmpty)
	}
	return nil
}

// notify asks victim v to expose work, per policy:
// USLCWS sets the targeted flag unconditionally (Listing 1 line 22);
// the signal-based schedulers send an emulated signal unless one is
// already outstanding (Listing 3 lines 8–11), with the Conservative
// variant additionally requiring the victim to hold at least two tasks.
func (w *Worker) notify(v *Worker) {
	switch w.policy {
	case USLCWS, LaceWS:
		v.targeted.Store(true)
	case SignalLCWS, HalfLCWS:
		if !v.targeted.Load() {
			v.targeted.Store(true)
			v.pending.Store(true)
			w.ctr.Inc(counters.SignalSent)
		}
	case ConsLCWS:
		if !v.targeted.Load() && v.dq.HasTwoTasks() {
			v.targeted.Store(true)
			v.pending.Store(true)
			w.ctr.Inc(counters.SignalSent)
		}
	}
}

// idleBackoff is called after a work-search iteration that found nothing.
// On few-core hosts the yield is what lets victims run and expose work.
func (w *Worker) idleBackoff() {
	w.ctr.Inc(counters.IdleIteration)
	w.idleSpins++
	switch {
	case w.idleSpins%1024 == 0:
		time.Sleep(20 * time.Microsecond)
	case w.idleSpins%4 == 0:
		runtime.Gosched()
	}
}

// next implements Listing 1's get_task generalized over the stop
// condition: the top-level worker loop stops when the computation
// finishes, and join points stop when the awaited task completes.
// It returns nil exactly when stop() became true.
func (w *Worker) next(stop func() bool) *Task {
	for {
		if stop() {
			return nil
		}
		w.Checkpoint()
		if t := w.popLocal(); t != nil {
			w.idleSpins = 0
			return t
		}
		if w.policy.flagBased() {
			// Listing 1 line 17: nothing local to expose; clear the
			// notification before entering the stealing phase.
			w.targeted.Store(false)
		}
		if t := w.stealOnce(); t != nil {
			w.idleSpins = 0
			return t
		}
		w.idleBackoff()
	}
}

// helpUntil runs scheduler work until stop() is true. It is the join-side
// wait loop: instead of blocking, the worker keeps executing local and
// stolen tasks (work-first helping), so a stolen sibling's completion is
// detected promptly and no worker idles while work exists.
func (w *Worker) helpUntil(stop func() bool) {
	for {
		t := w.next(stop)
		if t == nil {
			return
		}
		w.runTask(t)
	}
}
