package core

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"

	"lcws/internal/counters"
	"lcws/internal/deque"
	"lcws/internal/rng"
	"lcws/internal/trace"
)

// cacheLineSize is the assumed cache-line size used to segregate
// thief-written worker state from owner-hot state and to pad the
// scheduler's worker slab.
const cacheLineSize = 64

// Worker is the per-processor scheduling context. Exactly one goroutine
// runs each worker; task functions receive the worker they execute on and
// must thread it through to nested fork points and Poll calls.
//
// The field layout is deliberate: the two notification words that thieves
// write (targeted, pending) occupy the struct's first cache line by
// themselves, so a thief's notify never invalidates the line(s) holding
// the owner-hot fields the fork fast path reads every push and pop.
// Workers are allocated contiguously in the scheduler's slab (see
// workerSlot), each slot padded to a cache-line multiple plus a trailing
// guard line, so neighbouring workers never share a line either.
//
//lcws:manifest
type Worker struct {
	// targeted is the per-processor flag of Listings 1 and 3: it records
	// that a thief targeted this worker for stealing. In USLCWS it is the
	// notification itself; in the signal-based schedulers it only
	// suppresses redundant signals.
	targeted atomic.Bool //lcws:field atomic

	// pending is the emulated in-flight signal: a thief stores true
	// ("pthread_kill"), and this worker's goroutine runs the exposure
	// handler at its next poll point.
	pending atomic.Bool //lcws:field atomic

	_ [6]byte // align the trace stamps below to 8 bytes

	// reqTs and sigSendTs are trace-latency stamps, live only when the
	// scheduler traces: a thief that sets this worker's targeted flag
	// stamps reqTs (CAS from zero, so the first requester of a targeted
	// window wins), and the signal sender stamps sigSendTs; the owner
	// Swap(0)s them when it exposes/handles and observes the deltas into
	// its latency histograms. They are thief-written like the two flags
	// above, hence on this line rather than with the owner-hot state.
	reqTs     atomic.Int64 //lcws:field atomic
	sigSendTs atomic.Int64 //lcws:field atomic

	_ [cacheLineSize - 2*unsafe.Sizeof(atomic.Bool{}) - 6 - 2*unsafe.Sizeof(atomic.Int64{})]byte

	// Owner-hot state: written only by this worker's own goroutine (or
	// by scheduler setup code before that goroutine exists). The
	// immutable fields are set once in Worker.init; the owner fields
	// mutate on the hot path under the receiver-context rule.
	sched         *Scheduler       //lcws:field immutable
	dq            taskDeque        //lcws:field immutable — owner/thief method split enforced by owneronly
	ctr           *counters.Worker //lcws:field immutable
	rand          *rng.Xoshiro256  //lcws:field immutable
	freelist      *Task            //lcws:field owner — recycled tasks; see newTask/freeTask
	freelistLen   int              //lcws:field owner — length of freelist; bounded by freelistBound
	rec           *trace.Recorder  //lcws:field immutable — owner/thief method split enforced by owneronly; nil = tracing off
	id            int              //lcws:field immutable
	sinceYield    int              //lcws:field owner — tasks executed since the last cooperative yield
	yieldEvery    int              //lcws:field immutable — cached Options.YieldEvery (0 = never)
	idleSleep     time.Duration    //lcws:field owner — current idle-backoff sleep (0 = not sleeping yet)
	pollCount     uint32           //lcws:field owner — Poll() call counter for the cheap fast path
	pollEvery     uint32           //lcws:field immutable — Poll calls between pending-signal checks
	idleSpins     uint32           //lcws:field owner — consecutive failed work-search iterations
	policy        Policy           //lcws:field immutable
	batch         bool             //lcws:field immutable — cached Options.StealBatch
	relaxed       bool             //lcws:field immutable — cached Policy.relaxedSteal (MultFree)
	sticky        int32            //lcws:field owner — last successful victim id (-1 = none); batch mode only
	freelistBound int              //lcws:field immutable — cached Options.FreelistBound

	// Overflow-spill state: when the deque hits Options.MaxDequeCapacity,
	// the owner moves its oldest tasks onto this unbounded private FIFO
	// (linked through Task.next) and drains it back in next/busyPhase.
	// spilled, once set, relaxes the join's LIFO assertion — a spilled
	// sibling comes back through the overflow drain instead of popLocal.
	// spillBuf is the lazily-allocated SpillOldest scratch buffer.
	overflowHead *Task   //lcws:field owner
	overflowTail *Task   //lcws:field owner
	spilled      bool    //lcws:field owner
	spillBuf     []*Task //lcws:field owner

	// Job context, owner-only: curJob is the job of the task currently
	// executing on this worker (nil between tasks and for untagged test
	// tasks), curShard its per-worker accounting shard. runTask saves
	// and restores them around each task, so a worker helping one job's
	// join while executing another job's stolen task accounts each task
	// to its own job. taskDepth counts nested runTask frames; the
	// abort-unwind sentinel fires only at depth > 0 (see Checkpoint).
	curJob    *Job      //lcws:field owner
	curShard  *jobShard //lcws:field owner
	taskDepth int32     //lcws:field owner

	// parkSem is the worker's parking semaphore: a waker that claims
	// this worker's bit in Scheduler.parkWords posts one token here.
	// Used by the in-job parking lot (StealBatch mode) and by every
	// worker's between-jobs deep park. parkTimer is the missed-wakeup
	// insurance timer (lazily allocated on first park). stealBuf
	// receives batched steals (owner-only after the claim; see
	// stealFromBatched).
	parkSem   chan struct{}         //lcws:field immutable — channel ops are internally synchronized
	parkTimer *time.Timer           //lcws:field owner
	stealBuf  [stealBatchSize]*Task //lcws:field owner

	// relClaims is this worker's per-victim relaxed-claim memory
	// (MultFree only, indexed by victim id): the monotone high-water
	// marks that bound how often this thief can return any one task to
	// at most once. Thief-private — only this worker's goroutine touches
	// its own slice. Sized to MaxWorkers: cursors persist across
	// worker-set epochs (sound because retirement tears deques down
	// index-preservingly; see deque.SplitDeque.Teardown).
	relClaims []deque.RelClaim //lcws:field owner

	// Elastic worker-set state (see workerset.go). curSet is the
	// snapshot this worker's steal path runs against, refreshed by pin;
	// pinnedEpoch is its published reclamation guard (0 = unpinned);
	// state is the slot lifecycle word the resizer and this goroutine
	// arbitrate retirement through. The two atomics are written by the
	// resizer only on (rare) resizes, so sharing the owner-hot lines
	// costs nothing on a stable epoch.
	curSet      *workerSet    //lcws:field owner — cached snapshot; may be stale while unpinned
	pinnedEpoch atomic.Uint64 //lcws:field atomic
	state       atomic.Int32  //lcws:field atomic — slotIdle / slotLive / slotDraining
}

// stealBatchSize caps how many tasks one batched steal can claim. Eight
// keeps the thief-side buffer to one cache line of pointers while still
// amortizing the claim CAS over most bursts.
const stealBatchSize = 8

// workerSlot pads a Worker up to a cache-line multiple and appends one
// guard line, so adjacent slots in the scheduler's contiguous slab never
// place two workers' live fields on one line even when the Go allocator
// hands back a slab base that is not itself line-aligned.
//
//lcws:manifest
type workerSlot struct {
	w Worker //lcws:field thief-shared — the Worker's own manifest governs each field
	_ [workerSlotPad]byte
}

const workerSlotPad = (cacheLineSize-unsafe.Sizeof(Worker{})%cacheLineSize)%cacheLineSize + cacheLineSize

// init populates a zeroed worker slot. It runs in NewScheduler, before
// any worker goroutine exists.
func (w *Worker) init(id int, s *Scheduler, dq taskDeque, opts Options) {
	w.id = id
	w.sched = s
	w.policy = opts.Policy
	w.dq = dq
	w.ctr = s.ctrs.Worker(id)
	w.rand = rng.New(opts.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	w.pollEvery = uint32(opts.PollEvery)
	w.yieldEvery = opts.YieldEvery
	w.batch = opts.StealBatch
	w.relaxed = opts.Policy.relaxedSteal()
	if w.relaxed {
		w.relClaims = make([]deque.RelClaim, opts.MaxWorkers)
	}
	w.sticky = -1
	w.freelistBound = opts.FreelistBound
	w.parkSem = make(chan struct{}, 1)
	w.curSet = s.set.Load() // current snapshot; pin refreshes it
	if opts.Trace != nil {
		w.rec = trace.NewRecorder(*opts.Trace, s.traceEpoch, w.ctr)
	}
}

// resetForRun clears per-run scheduling state. The resident executor
// resets the deterministic subset (poll phase, yield cadence, idle
// ladder) in startJob on the worker that picks a job up; this full
// variant also clears the notification words and is used by tests that
// drive workers directly on an unstarted scheduler.
func (w *Worker) resetForRun() {
	w.targeted.Store(false)
	w.pending.Store(false)
	w.reqTs.Store(0)
	w.sigSendTs.Store(0)
	if w.rec != nil {
		w.rec.ResetRun()
	}
	w.idleSpins = 0
	w.idleSleep = 0
	w.pollCount = 0
	w.sinceYield = 0
	w.sticky = -1
	if w.parkSem != nil {
		// Drop a stale wakeup token from a previous Run's shutdown.
		select {
		case <-w.parkSem:
		default:
		}
	}
}

// ID returns the worker's scheduling identifier in [0, Workers()).
func (w *Worker) ID() int { return w.id }

// Workers returns the scheduler's MaxWorkers bound — the size of the
// worker-id space. Task code uses it to size per-worker scratch
// indexed by ID(), and unlike the live worker count (which moves with
// SetWorkers and elastic growth/retirement) it is fixed for the
// scheduler's lifetime, so such scratch stays valid across resizes.
func (w *Worker) Workers() int { return len(w.sched.workers) }

// Policy returns the scheduling policy the pool runs.
func (w *Worker) Policy() Policy { return w.policy }

// Rand returns the worker-local deterministic PRNG. It must only be used
// from this worker's goroutine.
func (w *Worker) Rand() *rng.Xoshiro256 { return w.rand }

// defaultPollEvery is the default Poll interval between pending-signal
// checks (Options.PollEvery). Kernels call Poll in their innermost loops,
// so the common path must stay a couple of instructions.
const defaultPollEvery = 64

// Poll is the cheap checkpoint that computational kernels place inside
// long sequential loops. Every PollEvery-th call it checks for an emulated
// pending signal and, if one arrived, runs the work-exposure handler. This
// is what makes the signal-based schedulers handle exposure requests in
// (bounded) constant time even in the middle of a coarse-grained task, in
// contrast to USLCWS and Lace which wait for the task to finish.
func (w *Worker) Poll() {
	w.pollCount++
	if w.pollCount >= w.pollEvery {
		w.pollCount = 0
		w.Checkpoint()
	}
}

// Checkpoint checks immediately for a pending exposure request and handles
// it. It is the emulated signal-delivery point; the handler (the deque's
// Expose) runs on this worker's goroutine, mirroring a POSIX handler
// running on the victim's thread.
//
// Checkpoint is also where an aborted job (task panic elsewhere in the
// job, or context cancellation) unwinds its running tasks: inside a
// task of an aborted job it throws the internal errJobAborted sentinel,
// which the enclosing runTask boundary swallows after the usual
// completion bookkeeping. The depth guard keeps the sentinel out of
// the resident worker loop itself, and the curJob check means a worker
// nested into a *different*, healthy job's task is not unwound — only
// the aborted job's own frames are.
func (w *Worker) Checkpoint() {
	if w.taskDepth > 0 {
		if j := w.curJob; j != nil && j.aborted.Load() {
			panic(errJobAborted)
		}
	}
	if w.pending.Load() {
		w.pending.Store(false)
		w.ctr.Inc(counters.SignalHandled)
		n := w.dq.Expose(w.policy.exposeMode(), w.ctr)
		if w.rec != nil {
			w.rec.SignalHandle(n, w.sigSendTs.Swap(0), w.reqTs.Swap(0))
		}
		if n > 0 && w.batch {
			// Work just became public; unpark a thief to take it.
			w.sched.wakeOne(w.ctr)
		}
	}
	// QoS preemption point: a worker inside a Normal- or Low-class job
	// cedes to a queued job of a strictly more urgent class — but only
	// when the weighted-fair stride order would serve that class next
	// anyway (TryPopAbove re-checks), so yielding bounds the urgent
	// class's pickup latency by the checkpoint interval instead of the
	// running job's length without granting it more than its share.
	// The probe is one atomic load, and jobs of the most urgent class
	// skip even that.
	if j := w.curJob; j != nil && j.class != High && w.sched.inj.ReadyAbove(int(j.class)) {
		w.yieldToUrgent(int(j.class))
	}
}

// yieldToUrgent runs one queued job of a class strictly more urgent
// than class below — if the stride order agrees it is that class's
// turn — nested inside the current task, then resumes the interrupted
// job. runTask's job-context switching handles the nesting (the same
// machinery that lets a worker help another job's join); the poll and
// yield cadences are saved around the nested job so the interrupted
// job's signal-delivery timing resumes where it left off. Nesting is
// bounded by the class count: the nested job's own checkpoints can
// only yield to classes more urgent still.
func (w *Worker) yieldToUrgent(below int) {
	j, ok := w.sched.inj.TryPopAbove(below)
	if !ok {
		return
	}
	w.ctr.Inc(counters.JobYield)
	savedPoll, savedSince := w.pollCount, w.sinceYield
	w.startJob(j)
	w.pollCount, w.sinceYield = savedPoll, savedSince
}

// runLeaf executes body for every index of a ParFor leaf range with the
// Poll bookkeeping hoisted out of the per-iteration path: the loop runs
// in chunks bounded by the remaining poll budget and checkpoints between
// chunks. The observable cadence is identical to calling Poll after
// every iteration — pollCount advances by one per index and a checkpoint
// fires every pollEvery-th — but the inner loop is a bare body call.
func (w *Worker) runLeaf(lo, hi int, body func(*Worker, int)) {
	for i := lo; i < hi; {
		n := hi - i
		if rem := int(w.pollEvery - w.pollCount); n > rem {
			n = rem
		}
		for end := i + n; i < end; i++ {
			body(w, i)
		}
		w.pollCount += uint32(n)
		if w.pollCount >= w.pollEvery {
			w.pollCount = 0
			w.Checkpoint()
		}
	}
}

// setJob switches this worker's job context to j (nil = none),
// recaching the accounting shard and recording the switch in the
// flight recorder. Owner-only.
func (w *Worker) setJob(j *Job) {
	w.curJob = j
	w.curShard = w.shardOf(j)
	if w.rec != nil {
		w.rec.JobSwitch(uint32(jobID(j)))
	}
}

// runTask executes t — a plain function task or a range task — and marks
// it done. With Options.YieldEvery set, the worker periodically yields
// the OS thread so that on oversubscribed hosts thieves interleave with
// busy workers at task granularity.
//
// runTask is a job boundary: if t belongs to a different job than the
// one this worker is currently in (a stolen task picked up while
// helping another job's join, or a top-level task from the resident
// loop), the worker's job context is switched for the task's duration
// and restored after. It is also the job-failure firewall: a panic in
// the task function fails t's job and is swallowed here — the worker
// goroutine survives, and only the job's own tasks unwind. The task
// still counts as done so joins waiting on it cannot hang. runTask
// never frees t: recycling is the forking worker's job, at its join
// point.
func (w *Worker) runTask(t *Task) {
	if w.relaxed && t.fn == nil && !w.claimExec(t) {
		// MultFree: another claimant of this range task won the
		// execution arbitration (bounded multiplicity); it will run and
		// complete the task, so this duplicate is dropped without any
		// completion or shard accounting.
		return
	}
	prevJob := w.curJob
	if t.job != prevJob {
		w.setJob(t.job)
	}
	w.taskDepth++
	if w.rec != nil {
		if t.fn != nil {
			w.rec.TaskBegin(0)
		} else {
			w.rec.TaskBegin(1)
		}
	}
	defer w.taskDone(t, prevJob)
	if t.fn != nil {
		t.fn(w)
	} else {
		w.forkRange(t.lo, t.hi, t.grain, t.body)
	}
	if ye := w.yieldEvery; ye > 0 {
		w.sinceYield++
		if w.sinceYield >= ye {
			w.sinceYield = 0
			runtime.Gosched()
		}
	}
}

// taskDone is runTask's deferred epilogue: dispose of a task panic,
// close the task's trace span, account and mark the task complete, and
// restore the enclosing job context. It is a named Worker method rather
// than a closure so its owner-only accesses (rec, freelist-class state)
// verifiably run on the owner's goroutine; recover works here because
// taskDone is itself the deferred function.
//
// Panic disposition: the errJobAborted sentinel thrown by a Checkpoint
// of an aborted job stops unwinding here — this is the task boundary it
// was unwinding to. A real panic fails t's job (first failure wins) and
// is likewise swallowed: the pool stays healthy, the job's remaining
// tasks are drained by job-id filtering, and the job's waiter receives
// the panic wrapped as *TaskPanic via Job.Err (Run re-throws it). Only
// a panic in an untagged task (unit tests driving workers directly) is
// re-thrown to the caller. In every case the completion stamp is
// stored, so joins waiting on the task cannot hang.
func (w *Worker) taskDone(t *Task, prevJob *Job) {
	// Capture the job tag before the completion stamp: the stamp is
	// this worker's last permitted access to t — the forking worker's
	// join may observe it and recycle t immediately.
	j := t.job
	var rethrow any
	if r := recover(); r != nil && r != errJobAborted { //nolint:errorlint // sentinel identity
		if j != nil {
			j.fail(&TaskPanic{WorkerID: w.id, Value: r, Tail: w.traceTail()})
		} else {
			rethrow = r
		}
	}
	if w.rec != nil {
		w.rec.TaskEnd()
	}
	if sh := w.curShard; sh != nil {
		sh.completed++
	}
	t.complete()
	w.ctr.Inc(counters.TaskExecuted)
	w.taskDepth--
	if j != prevJob {
		w.setJob(prevJob)
	}
	if rethrow != nil {
		panic(rethrow)
	}
}

// runInline executes a forked task that its own join popped back
// un-stolen. It differs from runTask in one way: the completion stamp is
// not stored. No other worker holds a reference that waits on it — the
// task came back through the owner's pop, so any thief that glimpsed the
// pointer lost its steal CAS and abandoned it — and the joining code
// path below is the caller itself. Skipping the store keeps the no-steal
// join free of its last atomic RMW; the stamp scheme stays sound because
// a later incarnation of the task waits for a strictly greater stamp
// value than any this incarnation could have stored (see Task).
// Inline siblings run inside their parent's task span: runInline is
// the per-fork fast path, so it deliberately records no begin/end
// events of its own (see DESIGN.md §9 on enabled-tracing overhead).
func (w *Worker) runInline(t *Task) {
	defer w.inlineDone()
	if t.fn != nil {
		t.fn(w)
	} else {
		w.forkRange(t.lo, t.hi, t.grain, t.body)
	}
	if ye := w.yieldEvery; ye > 0 {
		w.sinceYield++
		if w.sinceYield >= ye {
			w.sinceYield = 0
			runtime.Gosched()
		}
	}
}

// inlineDone is runInline's deferred epilogue; unlike taskDone it skips
// the completion stamp (see runInline) and the trace span close.
//
// Inline tasks always run inside their forker's spine, in the same job,
// so a panic here cannot stop at this boundary: after failing the job
// and accounting the task, unwinding continues as the errJobAborted
// sentinel up to the nearest runTask frame (whose taskDone swallows
// it). Resuming the forker's code would be pointless — its job is now
// aborted and its next Checkpoint would unwind it anyway. A panic in an
// untagged task (unit tests driving workers directly) re-throws the
// original value to the caller.
func (w *Worker) inlineDone() {
	r := recover()
	if r != nil && r != errJobAborted { //nolint:errorlint // sentinel identity
		if j := w.curJob; j != nil {
			j.fail(&TaskPanic{WorkerID: w.id, Value: r, Tail: w.traceTail()})
			r = errJobAborted
		}
	}
	if sh := w.curShard; sh != nil {
		sh.completed++
	}
	w.ctr.Inc(counters.TaskExecuted)
	if r != nil {
		panic(r)
	}
}

// panicTailEvents is how many trailing flight-recorder events a task
// panic carries in its TaskPanic report.
const panicTailEvents = 16

// traceTail returns this worker's most recent flight-recorder events
// for a panic report (nil when tracing is off). Owner-only.
func (w *Worker) traceTail() []trace.Event {
	if w.rec == nil {
		return nil
	}
	tail := w.rec.Tail(panicTailEvents)
	for i := range tail {
		tail[i].Worker = w.id
	}
	return tail
}

// traceFork records a fork event when tracing is on; the fork entry
// points (Fork2, forkRange) call it instead of touching rec directly so
// the owner-only access stays inside a Worker method.
func (w *Worker) traceFork() {
	if w.rec != nil {
		w.rec.Fork()
	}
}

// push appends a freshly forked task to this worker's deque: it tags
// the task with the worker's current job (so thieves — and the orphan
// drain — know which job it belongs to), accounts it to the job's
// per-worker shard, and hands off to pushNoTag. The tag is written
// before the deque's publication protocol makes the task visible to
// thieves, so t.job is immutable-after-publish.
//
//lcws:noalloc
func (w *Worker) push(t *Task) {
	t.job = w.curJob //lcws:presync written before the deque's release publication makes t visible to thieves
	if w.relaxed {
		// Stamp the landing (epoch, index) for the MultFree relaxed lane:
		// thieves validate their fence-free slot reads against it, and
		// the recycling gate (freeTask) checks it against the exposure
		// high-water mark. Batch remnants do NOT come through here — the
		// remnant landing loop (stealFromRelaxed) restamps them in the
		// receiver's index domain with the sticky exposed bit set before
		// calling pushNoTag.
		t.pushStamp.Store(w.dq.PushStamp()) //lcws:presync written before the deque's release publication makes t visible to thieves
	}
	if sh := w.curShard; sh != nil {
		sh.created++
	}
	w.pushNoTag(t)
}

// pushNoTag appends a task to this worker's deque without touching its
// job tag or accounting — used by push (which tags first) and by the
// batched-steal remnant landing, where the tasks keep the job tag and
// created-count of their original forker. It applies the policy's
// push-side flag maintenance (§4: in the signal-based schedulers the
// targeted flag is reset when the owner pushes new work, so thieves may
// notify again). The reset is a single unconditional store: the flag
// lives on the worker's thief-shared line, which the owner's fast path
// does not otherwise touch, so the store costs at most one exclusive
// line acquisition — while the former load-test-store pair put an extra
// load and a mispredictable branch on every fork.
//
//lcws:noalloc
func (w *Worker) pushNoTag(t *Task) {
	// Batch mode: a push onto an empty deque is the event that turns an
	// idle pool busy again, so it wakes one parked thief. (For the WS
	// baseline the pushed task is immediately stealable; for the split
	// deque the woken thief finds PrivateWork and notifies, starting the
	// exposure chain — without this wake, a fully parked pool would only
	// learn about new work from insurance timers.)
	wake := w.batch && w.dq.IsEmpty()
	var grows uint64
	if w.rec != nil {
		grows = w.ctr.Get(counters.DequeGrow)
	}
	if !w.dq.TryPushBottom(t, w.ctr) {
		// At Options.MaxDequeCapacity: spill the oldest tasks to the
		// overflow list and retry.
		w.spillForPush(t)
	}
	if w.rec != nil && w.ctr.Get(counters.DequeGrow) != grows {
		w.rec.Grow(w.dq.Capacity())
	}
	if w.policy.SignalBased() {
		w.targeted.Store(false)
	}
	if wake {
		w.sched.wakeOne(w.ctr)
	}
}

// spillBatchSize is SpillOldest's scratch-buffer length: one spill
// episode moves up to this many of the deque's oldest tasks to the
// overflow list (half a KiB of pointers, allocated lazily on the first
// spill of a worker's lifetime).
const spillBatchSize = 64

// spillForPush makes room for t in a deque at its maximum capacity:
// the OLDEST tasks (the steal-side end — the ones a thief would have
// taken first) move to the worker's unbounded overflow FIFO, then the
// push is retried. Cold path of pushNoTag; a spawn tree must outgrow
// Options.MaxDequeCapacity to ever reach it.
func (w *Worker) spillForPush(t *Task) {
	if w.spillBuf == nil {
		w.spillBuf = make([]*Task, spillBatchSize)
	}
	for {
		k := w.dq.SpillOldest(w.spillBuf, w.ctr)
		if k == 0 {
			// A full deque always has tasks to spill; reaching this
			// means the capacity accounting is broken.
			panic("core: deque at maximum capacity but SpillOldest found nothing")
		}
		for i := 0; i < k; i++ {
			w.enqueueOverflow(w.spillBuf[i])
			w.spillBuf[i] = nil
		}
		w.spilled = true
		w.ctr.Add(counters.TaskSpilled, uint64(k))
		if w.rec != nil {
			w.rec.Spill(k)
		}
		if w.dq.TryPushBottom(t, w.ctr) {
			return
		}
	}
}

// enqueueOverflow appends t to the worker's overflow FIFO. The list is
// linked through Task.next, which is unused while a task is live and
// off the deque; the owner exclusively holds spilled tasks (SpillOldest
// invalidated any in-flight steal claims before handing them over).
//
//lcws:noalloc
func (w *Worker) enqueueOverflow(t *Task) {
	t.unlink()
	if w.overflowTail == nil {
		w.overflowHead = t
	} else {
		w.overflowTail.link(t)
	}
	w.overflowTail = t
}

// popOverflow removes and returns the oldest spilled task (nil when the
// overflow list is empty). Oldest-first drain preserves the deque's
// steal-side order: spilled tasks run in the order thieves would have
// taken them.
//
//lcws:noalloc
func (w *Worker) popOverflow() *Task {
	t := w.overflowHead
	if t == nil {
		return nil
	}
	w.overflowHead = t.next
	if w.overflowHead == nil {
		w.overflowTail = nil
	}
	t.unlink()
	return t
}

// nextOverflow is the overflow drain used by the work-search loops:
// popOverflow plus the aborted-job filter every other task source
// applies. It returns the next runnable spilled task, discarding dead
// jobs' tasks along the way, or nil once the overflow list is empty.
func (w *Worker) nextOverflow() *Task {
	for {
		t := w.popOverflow()
		if t == nil {
			return nil
		}
		if j := t.job; j != nil && j.aborted.Load() {
			w.discard(t)
			continue
		}
		return t
	}
}

// popLocal is the local half of Listing 1's get_task: first the private
// part (with USLCWS's task-boundary exposure check), then the public part.
//
//lcws:noalloc
func (w *Worker) popLocal() *Task {
	if t := w.dq.PopBottom(w.ctr); t != nil {
		if w.policy.flagBased() && w.targeted.Load() {
			// Listing 1 lines 9–12: handle the notification at the
			// task boundary (USLCWS; Lace behaves the same way).
			w.targeted.Store(false)
			n := w.dq.Expose(w.policy.exposeMode(), w.ctr)
			if w.rec != nil {
				w.rec.Exposed(n, w.reqTs.Swap(0))
			}
			if n > 0 && w.batch {
				w.sched.wakeOne(w.ctr)
			}
		}
		return t
	}
	if w.policy == LaceWS || w.batch || w.relaxed {
		// Lace: reclaim the public part wholesale instead of draining it
		// through pop_public_bottom. Batch mode mandates the same owner
		// discipline for every split-deque policy: PopPublicBottom's
		// common path removes tasks above top without touching the age
		// word, which is unsound against an in-flight PopTopHalf (a
		// stalled thief's CAS could re-claim an owner-consumed slot);
		// UnexposeAll's tag-bump CAS invalidates such claims first.
		// MultFree mandates it for a stronger reason: PopPublicBottom's
		// emptying path resets the deque's absolute indices WITHOUT
		// changing the index epoch, and the relaxed thieves' monotone
		// claim memory is only sound while an exposed absolute index is
		// never reused within an epoch (UnexposeAll reclaims are
		// tag-bumped, so reclaimed indices re-expose under a new tag,
		// which the claim protocol treats as fresh; the deque's own
		// epoch-advancing reset — resetIndices — re-arms the memories).
		if n := w.dq.UnexposeAll(w.ctr); n > 0 {
			if w.rec != nil {
				w.rec.Repair(n)
			}
			if w.policy.SignalBased() {
				// §4: tasks were removed from the public part; allow
				// new notifications.
				w.targeted.Store(false)
			}
			return w.dq.PopBottom(w.ctr)
		}
		w.targeted.Store(false)
		return nil
	}
	if t := w.dq.PopPublicBottom(w.ctr); t != nil {
		if w.policy.SignalBased() {
			// §4: a task was removed from the public part; allow new
			// notifications.
			w.targeted.Store(false)
		}
		return t
	}
	return nil
}

// join is the second half of a fork (Fork2 or a range split): take the
// forked sibling back from the bottom of the deque and run it inline,
// or, if it was stolen, help execute other tasks until the thief
// completes it. want is the completion stamp (seq+1) recorded at fork
// time; a seq that no longer matches it at join time means the task was
// recycled while a stale reference to it was still live, which the
// stamp turns into an immediate panic. After the join the task is
// returned to this worker's freelist.
func (w *Worker) join(rt *Task, want uint32) {
	for {
		t := w.popLocal()
		if t == nil {
			// rt was stolen (or exposed and then stolen); work on other
			// tasks until the thief finishes it.
			w.helpUntil(rt, want)
			break
		}
		if j := t.job; j != nil && j.aborted.Load() {
			// An orphan of an aborted job — possibly rt itself, or a
			// task left above it by an unwound nested frame. Drain it
			// (the discard stamps completion, so if it was rt the join
			// is satisfied) and keep looking.
			w.discard(t)
			if t == rt {
				break
			}
			continue
		}
		if t != rt {
			// LIFO discipline guarantees rt is the bottom-most task
			// *this worker forked*: every task forked after rt was
			// joined before this join ran. In batch mode the deque can
			// additionally hold steal-batch remnants, pushed before the
			// stolen task that forked rt ran, hence below rt — so
			// popping one here proves rt itself was stolen. A worker
			// that has ever spilled gets the same relaxation: rt may
			// sit on the overflow list (spilling takes the OLDEST
			// tasks, and rt is older than everything its sibling's
			// subtree forked), with other tasks still in the deque.
			// Execute the popped task as ordinary help (completion
			// stamp and all: its forker joins on it), then wait for rt
			// — helpUntil's drain runs rt itself if it was spilled.
			if !w.batch && !w.spilled {
				panic("core: fork-join LIFO violation (bottom of deque is not the forked sibling)")
			}
			w.runTask(t)
			w.helpUntil(rt, want)
			break
		}
		if w.relaxed && t.fn == nil && !w.dq.NeverExposed(t.pushStamp.Load()) {
			// MultFree: rt was exposed at some point, so a relaxed thief
			// whose plain-write claim the repair could not yet see may
			// hold it too (rt is own-forked — t == rt — so its push
			// stamp is in this deque's index domain and the exposure
			// check is exact). The execution arbitration decides: if
			// this worker wins, rt runs inline as usual; if a thief won,
			// it is executing rt right now, so help until its completion
			// stamp lands. (claimExec already accounted the duplicate on
			// the losing side.) Never-exposed siblings — the no-steal
			// common case — skip the arbitration entirely: no claimant
			// can exist, so the join path stays CAS-free, preserving the
			// Figure-3 property for MultFree's fork-join fast path.
			if !w.claimExec(t) {
				w.helpUntil(rt, want)
				break
			}
		}
		w.runInline(t)
		break
	}
	if rt.seq+1 != want {
		panic("core: forked task was recycled while its join was in flight (generation stamp mismatch)")
	}
	w.freeTask(rt)
	if testHookAfterJoin != nil {
		testHookAfterJoin(w, rt)
	}
}

// testHookAfterJoin, when non-nil, runs after every join's freeTask with
// the just-freed task. Tests use it to seed recycling-discipline
// violations (e.g. a deliberate double free) and assert they are caught.
var testHookAfterJoin func(*Worker, *Task)

// stealOnce performs one stealing-phase iteration of Listing 1: pick a
// victim and attempt pop_top, notifying the victim according to the
// policy when only private work was found. Victim selection is uniformly
// random; in batch mode a sticky victim — the last one this worker stole
// from successfully — is probed first, falling back to random once the
// sticky victim runs empty, so steal traffic follows where work actually
// is instead of re-discovering it by sampling.
func (w *Worker) stealOnce() *Task {
	// Victims come from the pinned worker-set snapshot: inside a stable
	// epoch this is the one extra pointer load the elastic refactor is
	// allowed to cost the steal path (curSet is worker-private).
	n := len(w.curSet.slots)
	if n == 1 || w.id >= n {
		// Singleton set, or this worker was shrunk out of the live
		// prefix mid-phase (it is draining): nothing to steal from /
		// no valid "everyone but me" victim space.
		return nil
	}
	vid := -1
	if w.batch && w.sticky >= 0 && int(w.sticky) != w.id && int(w.sticky) < n {
		vid = int(w.sticky)
	}
	if vid < 0 {
		vid = w.rand.Intn(n - 1)
		if vid >= w.id {
			vid++
		}
	}
	v := w.sched.worker(vid)
	w.ctr.Inc(counters.StealAttempt)
	if w.rec != nil {
		w.rec.StealAttempt(vid)
	}
	if w.relaxed {
		return w.stealFromRelaxed(v, vid)
	}
	if w.batch {
		return w.stealFromBatched(v, vid)
	}
	t, res := v.dq.PopTop(w.ctr)
	switch res {
	case deque.Stolen:
		w.ctr.Inc(counters.StealSuccess)
		if w.rec != nil {
			w.rec.StealHit(vid, 1)
		}
		if w.policy.SignalBased() {
			// §4: a task was removed from the victim's public part;
			// allow new notifications to it.
			v.targeted.Store(false)
		}
		return t
	case deque.PrivateWork:
		w.ctr.Inc(counters.StealPrivate)
		w.notify(v)
	case deque.Abort:
		w.ctr.Inc(counters.StealAbort)
	case deque.Empty:
		w.ctr.Inc(counters.StealEmpty)
	}
	return nil
}

// taskIsIdempotent is the MultFree eligibility predicate the relaxed
// steal path hands to the deque: only range tasks (fn == nil) — whose
// bodies the ParFor contract requires to tolerate re-execution — may be
// claimed without exclusion. A package-level function value allocates
// nothing at the call site, keeping the steal path noalloc.
func taskIsIdempotent(t *Task) bool { return t.fn == nil }

// taskPushStamp is the stamp accessor the relaxed steal path hands to
// the deque for its post-read validation (see deque.TakeTopRelaxed).
// Atomic: the pointer the thief validates may be stale and reference a
// descriptor its owner has recycled and re-stamped. A package-level
// function value, like taskIsIdempotent, to keep the steal path noalloc.
func taskPushStamp(t *Task) uint64 { return t.pushStamp.Load() }

// stealFromRelaxed is the MultFree steal attempt against victim v:
// idempotent (range) tasks are claimed with plain read/write operations
// through the thief's per-victim monotone claim memory — no fence, no
// CAS — at the cost of bounded multiplicity; a non-idempotent task at
// the top falls back to the exclusive CAS claim inside TakeTopRelaxed.
// With StealBatch the relaxed claim composes with steal-half: one cursor
// store claims up to half of the victim's public prefix, and the remnant
// lands in this worker's private part exactly as in stealFromBatched.
func (w *Worker) stealFromRelaxed(v *Worker, vid int) *Task {
	cl := &w.relClaims[vid]
	if w.batch {
		nTasks, res := v.dq.TakeTopHalfRelaxed(w.stealBuf[:], cl, taskIsIdempotent, taskPushStamp, w.ctr)
		switch res {
		case deque.Stolen:
			w.ctr.Inc(counters.StealSuccess)
			w.ctr.Add(counters.StealBatchTasks, uint64(nTasks))
			if w.rec != nil {
				w.rec.StealHit(vid, nTasks)
			}
			w.sticky = int32(vid)
			v.targeted.Store(false) // §4: work left the victim's public part
			t := w.stealBuf[0]
			for i := 1; i < nTasks; i++ {
				// Restamp the remnant in THIS deque's index domain before
				// it lands here, with the sticky exposed bit: thieves of
				// this deque must be able to validate their slot reads
				// against the local (epoch, index), while the origin
				// forker's recycling gate must keep seeing "was exposed"
				// (a remnant was necessarily public at its origin) — the
				// sticky bit makes NeverExposed false regardless of what
				// the receiver-domain index would say about the origin
				// deque. Safe to store plainly-before-publication: the
				// remnant is exclusively ours between the batch claim and
				// pushNoTag; stale origin-side claimants read the atomic
				// stamp and fail their validation either way.
				w.stealBuf[i].pushStamp.Store(w.dq.PushStamp() | deque.StampExposed)
				w.pushNoTag(w.stealBuf[i])
				w.stealBuf[i] = nil
			}
			w.stealBuf[0] = nil
			return t
		case deque.PrivateWork:
			w.ctr.Inc(counters.StealPrivate)
			w.notify(v)
		case deque.Abort:
			w.ctr.Inc(counters.StealAbort)
		case deque.Empty:
			w.sticky = -1
			w.ctr.Inc(counters.StealEmpty)
		}
		return nil
	}
	t, res := v.dq.TakeTopRelaxed(cl, taskIsIdempotent, taskPushStamp, w.ctr)
	switch res {
	case deque.Stolen:
		w.ctr.Inc(counters.StealSuccess)
		if w.rec != nil {
			w.rec.StealHit(vid, 1)
		}
		v.targeted.Store(false) // §4: a task left the victim's public part
		return t
	case deque.PrivateWork:
		w.ctr.Inc(counters.StealPrivate)
		w.notify(v)
	case deque.Abort:
		w.ctr.Inc(counters.StealAbort)
	case deque.Empty:
		w.ctr.Inc(counters.StealEmpty)
	}
	return nil
}

// stealFromBatched is the batch-mode steal attempt against victim v: it
// claims up to half of v's public part with one CAS and lands the
// remnant of the batch in this worker's own deque — the *private* part
// for the split deque, so redistributing the batch costs no fences and
// the batch is immediately shielded from other thieves. The oldest
// (victim-top-most) task is returned for execution, mirroring the
// steal-the-largest-subtree heuristic of the single steal; remnants are
// pushed oldest-first so this worker's own LIFO pops them
// youngest-first, exactly as the victim would have.
func (w *Worker) stealFromBatched(v *Worker, vid int) *Task {
	nTasks, res := v.dq.PopTopHalf(w.stealBuf[:], w.ctr)
	switch res {
	case deque.Stolen:
		w.ctr.Inc(counters.StealSuccess)
		w.ctr.Add(counters.StealBatchTasks, uint64(nTasks))
		if w.rec != nil {
			w.rec.StealHit(vid, nTasks)
		}
		w.sticky = int32(vid)
		if w.policy.SignalBased() {
			// §4: tasks were removed from the victim's public part;
			// allow new notifications to it.
			v.targeted.Store(false)
		}
		t := w.stealBuf[0]
		for i := 1; i < nTasks; i++ {
			// Remnants keep their original job tag and accounting; only
			// their deque changes hands.
			w.pushNoTag(w.stealBuf[i])
			w.stealBuf[i] = nil
		}
		w.stealBuf[0] = nil
		return t
	case deque.PrivateWork:
		// The victim holds work it hasn't exposed yet: stay sticky (the
		// notification below will make it public) and ask for exposure.
		w.ctr.Inc(counters.StealPrivate)
		w.notify(v)
	case deque.Abort:
		// Lost the race, but the victim demonstrably has public work:
		// stay sticky and retry.
		w.ctr.Inc(counters.StealAbort)
	case deque.Empty:
		// A genuine miss: fall back to uniform random selection.
		w.sticky = -1
		w.ctr.Inc(counters.StealEmpty)
	}
	return nil
}

// notify asks victim v to expose work, per policy:
// USLCWS sets the targeted flag unconditionally (Listing 1 line 22);
// the signal-based schedulers send an emulated signal unless one is
// already outstanding (Listing 3 lines 8–11), with the Conservative
// variant additionally requiring the victim to hold at least two tasks.
//
// The signal-based arms claim the targeted flag with a CAS rather than a
// load-then-store: two thieves racing the plain-load check could both
// observe !targeted and both send, double-counting SignalSent and (in
// the C++ reference) issuing a redundant pthread_kill. The CAS admits
// exactly one sender per targeted window, which is what makes the
// SignalSent >= SignalHandled counter invariant exact.
func (w *Worker) notify(v *Worker) {
	switch w.policy {
	case USLCWS, LaceWS:
		w.traceExposeReq(v)
		v.targeted.Store(true)
	case SignalLCWS, HalfLCWS, MultFree:
		if v.targeted.CompareAndSwap(false, true) {
			w.traceSignalSend(v)
			v.pending.Store(true)
			w.ctr.Inc(counters.SignalSent)
		}
	case ConsLCWS:
		if v.dq.HasTwoTasks() && v.targeted.CompareAndSwap(false, true) {
			w.traceSignalSend(v)
			v.pending.Store(true)
			w.ctr.Inc(counters.SignalSent)
		}
	}
}

// traceExposeReq records an exposure request against victim v and
// stamps v's request word (CAS from zero: the first requester of a
// targeted window anchors the flag-to-exposure latency). No-op when
// tracing is off.
func (w *Worker) traceExposeReq(v *Worker) {
	if w.rec == nil {
		return
	}
	ts := w.rec.ExposeRequest(v.id)
	v.reqTs.CompareAndSwap(0, ts)
}

// traceSignalSend records the emulated signal to victim v and stamps
// v's signal word; the caller is the CAS winner of v's targeted window
// and invokes this before setting v.pending, so the victim's handler
// observes the stamp. No-op when tracing is off.
func (w *Worker) traceSignalSend(v *Worker) {
	if w.rec == nil {
		return
	}
	ts := w.rec.ExposeRequest(v.id)
	v.reqTs.CompareAndSwap(0, ts)
	v.sigSendTs.Store(w.rec.SignalSend(v.id))
}

// Idle-backoff schedule: a short burst of pure spins keeps steal latency
// minimal when work is about to appear, a window of cooperative yields
// lets victims run on oversubscribed hosts, and beyond that the worker
// parks in exponentially growing sleeps (capped) so a mostly-idle pool
// stops burning CPU. The ladder resets whenever the worker finds work.
const (
	idleSpinIters  = 8
	idleYieldIters = 256
	idleSleepMin   = 20 * time.Microsecond
	idleSleepMax   = time.Millisecond
)

// idleBackoff is called after a work-search iteration that found nothing.
// Blocked time (sleeping or parked) is accounted to the ParkedNanos
// counter so idle cost shows up in profiles separately from busy idle
// iterations. canPark gates the event-driven parking lot: only the
// top-level loop may park (a join's help loop wakes on its sibling's
// completion stamp, for which no wakeup event exists), and only in
// StealBatch mode; everywhere else the tail of the ladder is the blind
// capped sleep.
func (w *Worker) idleBackoff(canPark bool) {
	w.ctr.Inc(counters.IdleIteration)
	// Idle is the cheap moment to adopt a resize: re-pinning here keeps
	// a long busy phase from holding an old epoch hostage (blocking
	// reclamation) and lets this thief see victims a grow just added.
	// On a stable epoch this is two loads of the same hot pointer.
	w.pin()
	w.idleSpins++
	switch {
	case w.idleSpins <= idleSpinIters:
		// Spin again immediately.
	case w.idleSpins <= idleSpinIters+idleYieldIters:
		runtime.Gosched()
	case w.batch && canPark:
		w.park()
	default:
		d := w.idleSleep
		if d < idleSleepMin {
			d = idleSleepMin
		}
		var pstart int64
		if w.rec != nil {
			pstart = w.rec.ParkStart(0)
		}
		start := time.Now()
		time.Sleep(d)
		w.ctr.Add(counters.ParkedNanos, uint64(time.Since(start)))
		if w.rec != nil {
			w.rec.ParkEnd(0, pstart)
		}
		d *= 2
		if d > idleSleepMax {
			d = idleSleepMax
		}
		w.idleSleep = d
	}
}

// park blocks the worker on its parking semaphore until a work event
// wakes it or the insurance timer (idleSleepMax) fires.
//
// Wakeup ordering — why a parked thief cannot miss an exposure: the
// parker (1) sets its bit in the parking-lot bitset with a seq-cst RMW,
// then (2) re-checks for finish/signals/public work and bails out if any
// is found. A producer (3) publishes work with a seq-cst store (Expose's
// publicBot store, PushBottom's bot store), then (4) scans the bitset
// and wakes a claimed worker. Interleave them: if the parker's re-check
// (2) misses the work, the check ran before the publish (3) in the
// seq-cst total order, so the bit-set (1) — which precedes (2) — also
// precedes the producer's scan (4), which therefore observes the bit
// and posts the semaphore. Either the parker sees the work, or the
// producer sees the parker; a sleep through a wake event is impossible.
// The timer is insurance for the one chain no wake event covers (work
// that stays private because its owner's targeted flag was already set
// when the pool parked), bounding worst-case steal latency at
// idleSleepMax — exactly the old ladder's cap.
func (w *Worker) park() {
	// A stale token can linger from a wake that raced a previous
	// timeout; drop it so it cannot satisfy this round's wait early.
	// (No waker can be targeting this round yet: our bit is not set.)
	select {
	case <-w.parkSem:
	default:
	}
	w.sched.setParked(w.id)
	if w.sched.closed.Load() || w.pending.Load() || w.anyPublicWork() {
		w.sched.clearParked(w.id)
		return
	}
	w.ctr.Inc(counters.ParkCount)
	if w.parkTimer == nil {
		w.parkTimer = time.NewTimer(idleSleepMax)
	} else {
		w.parkTimer.Reset(idleSleepMax)
	}
	var pstart int64
	if w.rec != nil {
		pstart = w.rec.ParkStart(1)
	}
	start := time.Now()
	select {
	case <-w.parkSem:
	case <-w.parkTimer.C:
	}
	w.ctr.Add(counters.ParkedNanos, uint64(time.Since(start)))
	if w.rec != nil {
		w.rec.ParkEnd(1, pstart)
	}
	if !w.parkTimer.Stop() {
		// Timer already fired; drain its channel if the wakeup came
		// from the semaphore (pre-1.23 timer discipline).
		select {
		case <-w.parkTimer.C:
		default:
		}
	}
	w.sched.clearParked(w.id)
}

// anyPublicWork reports whether any other worker's deque (racily) holds
// stealable work; park uses it as the pre-park re-check. It scans the
// current snapshot's live prefix — draining slots past it are already
// re-homing their work through the orphan path, and a racy miss is
// covered by the insurance timer like any other private-work chain.
func (w *Worker) anyPublicWork() bool {
	set := w.curSet
	for i := range set.slots {
		if i != w.id && w.sched.worker(i).dq.HasPublicWork() {
			return true
		}
	}
	return false
}

// next implements Listing 1's get_task for a fork's join point: it
// serves scheduler work until the awaited task's completion stamp
// reaches want, returning nil exactly when it has. Tasks of aborted
// jobs are drained here (discarded, never returned), so a helping
// worker cannot be handed a dead job's work. Threading the awaited
// task instead of a stop closure keeps the fork join path
// allocation-free (a captured predicate would heap-allocate per fork).
// The top-level resident loop has its own acquisition loop (busyPhase)
// — it additionally polls the injector, which join helping must not
// (picking up a whole new job inside a join would reset the poll phase
// and nest arbitrarily deep work under the waiter). The one deliberate
// exception is the QoS preemption point inside Checkpoint: a queued
// job of a strictly more urgent class whose stride turn has come runs
// nested here too — that nesting is bounded by the class count and its
// latency cost to the waiter is the point of the priority system.
func (w *Worker) next(join *Task, want uint32) *Task {
	for {
		if join.isDone(want) {
			return nil
		}
		w.Checkpoint()
		if t := w.popLocal(); t != nil {
			if j := t.job; j != nil && j.aborted.Load() {
				w.discard(t)
				continue
			}
			w.idleSpins = 0
			w.idleSleep = 0
			if w.rec != nil {
				w.rec.LocalWork()
			}
			return t
		}
		// The deque is drained; run spilled tasks before stealing. rt
		// itself may be here — a spilled sibling is executed (and its
		// completion stamped) through this drain.
		if t := w.nextOverflow(); t != nil {
			w.idleSpins = 0
			w.idleSleep = 0
			return t
		}
		if w.rec != nil && w.idleSpins == 0 {
			// First fruitless local pop of this idle episode.
			w.rec.DequeEmpty()
		}
		if w.policy.flagBased() {
			// Listing 1 line 17: nothing local to expose; clear the
			// notification before entering the stealing phase.
			w.targeted.Store(false)
		}
		if t := w.stealOnce(); t != nil {
			if j := t.job; j != nil && j.aborted.Load() {
				w.discard(t)
				continue
			}
			w.idleSpins = 0
			w.idleSleep = 0
			return t
		}
		// Joins never park: the awaited completion stamp is a plain
		// store with no wakeup event attached.
		w.idleBackoff(false)
	}
}

// helpUntil runs scheduler work until the stop condition of
// next(join, want) is reached. It is the join-side wait loop: instead
// of blocking, the worker keeps executing local and stolen tasks
// (work-first helping), so a stolen sibling's completion is detected
// promptly and no worker idles while work exists.
func (w *Worker) helpUntil(join *Task, want uint32) {
	for {
		t := w.next(join, want)
		if t == nil {
			return
		}
		w.runTask(t)
	}
}

// residentLoop is a resident worker's top-level state machine: it
// alternates between the counter-free idle phase (no jobs anywhere;
// deep-parked on the parking lot) and the busy phase (the paper's
// work-stealing loop, active while jobs are in flight). It returns —
// ending the worker goroutine — only when the scheduler is closed and
// fully drained.
func (w *Worker) residentLoop() {
	for {
		if w.idlePhase() {
			return
		}
		w.busyPhase()
	}
}

// deepParkInsurance is the between-jobs park timeout. Every state
// change that can end the idle phase (Submit, settle, cancellation,
// Close) wakes the pool explicitly, so this timer is pure insurance;
// it is much longer than the in-job cap because there is no steal
// latency to bound between jobs.
const deepParkInsurance = 100 * time.Millisecond

// idlePhase holds the worker between jobs. It returns true when the
// worker must exit (scheduler closed and drained), false when work may
// exist again (a job was submitted or is still active). The phase is
// deliberately free of counter and trace writes: an idle executor
// mutates no instrumentation, so Stats taken between jobs are stable
// and the per-policy counting models see only in-job events.
func (w *Worker) idlePhase() bool {
	s := w.sched
	spins := 0
	for {
		if w.retiring() {
			// Shrunk out of the live set with no local work left:
			// complete retirement and end the goroutine. On CAS failure
			// the slot was re-admitted by a concurrent grow — resume
			// normal idling (the loop re-checks everything).
			if w.tryRetire() {
				return true
			}
			continue
		}
		if s.closed.Load() {
			// The closed load precedes the activeJobs load: a Submit
			// that observed the scheduler open incremented activeJobs
			// before our closed load (seq-cst total order), so we
			// cannot miss its job here and exit early.
			return s.activeJobs.Load() == 0 && s.inj.Empty()
		}
		if s.activeJobs.Load() > 0 || !s.inj.Empty() {
			return false
		}
		spins++
		switch {
		case spins <= idleSpinIters:
			// Spin: the next job is often right behind the last.
		case spins <= idleSpinIters+idleYieldIters:
			runtime.Gosched()
		default:
			w.deepPark()
			if s.activeJobs.Load() == 0 && s.inj.Empty() && !s.closed.Load() {
				// The deep park ran its full insurance window (or was
				// woken spuriously) and the pool is still idle: sustained
				// idleness, the elastic retire-on-idle trigger.
				s.maybeRetireIdle()
			}
		}
	}
}

// deepPark blocks an idle worker on its parking semaphore until a
// state change wakes it (or the insurance timer fires). Same Dekker
// ordering as the in-job park: the parker sets its bit (seq-cst RMW)
// and re-checks the wake conditions; producers (Submit's inj.Push,
// settle, Close) publish their state change and then wakeAll. One side
// must observe the other, so a submission cannot sleep through a fully
// parked pool. Unlike park, deepPark records no counters or trace
// events — between-jobs idleness belongs to no job's profile.
func (w *Worker) deepPark() {
	s := w.sched
	// Drop a stale token from a wake that raced a previous timeout.
	select {
	case <-w.parkSem:
	default:
	}
	s.setParked(w.id)
	if s.closed.Load() || s.activeJobs.Load() > 0 || !s.inj.Empty() {
		s.clearParked(w.id)
		return
	}
	if w.parkTimer == nil {
		w.parkTimer = time.NewTimer(deepParkInsurance)
	} else {
		w.parkTimer.Reset(deepParkInsurance)
	}
	select {
	case <-w.parkSem:
	case <-w.parkTimer.C:
	}
	if !w.parkTimer.Stop() {
		select {
		case <-w.parkTimer.C:
		default:
		}
	}
	s.clearParked(w.id)
}

// busyPhase is the in-job work loop: the seed scheduler's helper loop
// extended with injector pickup and orphan draining. The worker stays
// here while any job is active (or its own deque holds tasks),
// executing local work, starting queued jobs, and stealing; it leaves
// — after draining its deque — once the pool has no active jobs. The
// enclosing busy counter is what Job.Wait's quiesce spins on: its
// release/acquire pair publishes this worker's counter and trace
// writes to post-Wait readers.
func (w *Worker) busyPhase() {
	s := w.sched
	s.busy.Add(1)
	// Pin the worker-set snapshot for the phase: one pointer load (plus
	// a validation re-load) on entry, zero on the per-fork path. While
	// pinned, the resizer cannot reclaim any slot of this epoch, so
	// every victim index this worker derives from curSet stays valid.
	// idleBackoff re-pins, so long busy phases still adopt new sets and
	// release old epochs for reclamation.
	w.pin()
	for {
		// The exit check runs before Checkpoint: a worker that slips
		// into the busy phase just after the last job settled must
		// leave without touching counters — Checkpoint may handle a
		// signal left pending by the settled job, and that counter
		// write would be unordered with a waiter's post-Wait reads.
		if s.activeJobs.Load() == 0 && w.dq.IsEmpty() && w.overflowHead == nil {
			break
		}
		w.Checkpoint()
		// The IsEmpty pre-check keeps the between-work iterations
		// counter-free: popLocal on a definitely-empty deque would
		// still account fences for some policies, perturbing the
		// per-policy counting models with idle-loop noise.
		if !w.dq.IsEmpty() {
			if t := w.popLocal(); t != nil {
				if j := t.job; j != nil && j.aborted.Load() {
					w.discard(t)
					continue
				}
				w.idleSpins = 0
				w.idleSleep = 0
				if w.rec != nil {
					w.rec.LocalWork()
				}
				w.runTask(t)
				continue
			}
		}
		// The deque is drained; run spilled tasks before picking up new
		// jobs or stealing (they also gate the exit check above, so a
		// worker never parks — or leaves the busy phase — holding
		// spilled work).
		if t := w.nextOverflow(); t != nil {
			w.idleSpins = 0
			w.idleSleep = 0
			w.runTask(t)
			continue
		}
		if w.retiring() {
			// Shrunk out of the live set: finish draining local work
			// (loop back for it) but pick up nothing new — no injector
			// jobs, no steals — so the slot quiesces and idlePhase can
			// complete retirement. Thieves and the orphan path re-home
			// whatever this deque still exposes.
			if w.dq.IsEmpty() {
				break
			}
			continue
		}
		if j, ok := s.inj.TryPop(); ok {
			w.idleSpins = 0
			w.idleSleep = 0
			w.startJob(j)
			continue
		}
		if s.activeJobs.Load() == 0 {
			// Either orphans of failed jobs remain (loop back to drain
			// them through the popLocal/discard path above) or the
			// deque is empty and the top-of-loop check exits.
			continue
		}
		if w.rec != nil && w.idleSpins == 0 {
			// First fruitless local pop of this idle episode.
			w.rec.DequeEmpty()
		}
		if w.policy.flagBased() {
			// Listing 1 line 17: nothing local to expose; clear the
			// notification before entering the stealing phase.
			w.targeted.Store(false)
		}
		if t := w.stealOnce(); t != nil {
			if j := t.job; j != nil && j.aborted.Load() {
				w.discard(t)
				continue
			}
			w.idleSpins = 0
			w.idleSleep = 0
			w.runTask(t)
			continue
		}
		w.idleBackoff(true)
	}
	w.unpin()
	s.busy.Add(-1)
}

// startJob begins executing a job popped from the injector: this
// worker runs the job's root task (and, transitively, everything the
// job forks that is not stolen), then settles the job — by the
// fork-join structure, the root's return implies every task the job
// created has completed. The poll phase, yield cadence, and idle
// ladder are reset first so a job's signal-delivery timing is a
// deterministic function of the job itself, not of whatever the worker
// did before (the seed scheduler made the same guarantee via
// resetForRun).
func (w *Worker) startJob(j *Job) {
	// Queue-to-pickup latency, per class: the QoS fairness bound is
	// stated over this histogram, so it is recorded on every pickup
	// (injector-pop and checkpoint-yield alike), tracing or not.
	w.sched.observeInjectorWait(j)
	if j.aborted.Load() {
		// Cancelled (or failed) before any worker picked it up: drain
		// the root, which also settles the job.
		w.discard(&j.root) //lcws:presync address-of only; this worker owns the job after the locked injector pop
		return
	}
	w.pollCount = 0
	w.sinceYield = 0
	w.idleSpins = 0
	w.idleSleep = 0
	w.pin() // run the job against the freshest worker-set snapshot
	if sh := w.shardOf(j); sh != nil {
		sh.created++ // the root task counts toward the job's accounting
	}
	w.runTask(&j.root) //lcws:presync address-of only; this worker owns the job after the locked injector pop
	j.settle()
}
