package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcws/internal/counters"
)

func newBatchScheduler(p Policy, workers int) *Scheduler {
	return NewScheduler(Options{Workers: workers, Policy: p, Seed: 42, StealBatch: true})
}

// publishOneTask pushes and exposes one no-op task. It is a Worker
// method so the owner-only deque calls run on the owning receiver (the
// owneronly contract); tests call it single-threaded before starting
// any concurrent goroutines.
func (w *Worker) publishOneTask() {
	task := w.newTask()
	task.prepareFn(func(*Worker) {})
	w.dq.PushBottom(task, w.ctr)
	w.dq.Expose(w.policy.exposeMode(), w.ctr)
}

// TestFibStealBatchAllPolicies runs the recursive-fib spawn tree under
// every policy with StealBatch on: batched claims, remnant re-pushes,
// sticky victims and parking must all preserve the fork-join semantics.
func TestFibStealBatchAllPolicies(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		for _, workers := range testWorkerCounts {
			s := newBatchScheduler(p, workers)
			var got int
			s.Run(func(w *Worker) { got = fib(w, 18) })
			if got != 2584 {
				t.Fatalf("workers=%d: fib(18) = %d, want 2584", workers, got)
			}
		}
	})
}

// TestStealBatchReusedScheduler re-runs one batch-mode scheduler many
// times; leaked per-run state (parked bits, semaphore tokens, sticky
// victims) would corrupt later runs.
func TestStealBatchReusedScheduler(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newBatchScheduler(p, 4)
		for run := 0; run < 20; run++ {
			var got int
			s.Run(func(w *Worker) { got = fib(w, 12) })
			if got != 144 {
				t.Fatalf("run %d: fib(12) = %d, want 144", run, got)
			}
		}
	})
}

// TestStealBatchParForSum checks the range-task path under batch mode.
func TestStealBatchParForSum(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		const n = 1 << 14
		s := newBatchScheduler(p, 4)
		var sum atomic.Uint64
		s.Run(func(w *Worker) {
			ParFor(w, 0, n, 64, func(w *Worker, i int) {
				sum.Add(uint64(i))
			})
		})
		if want := uint64(n) * (n - 1) / 2; sum.Load() != want {
			t.Fatalf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

// TestStealBatchCounters checks the batch-mode counter plumbing: every
// successful steal claims at least one task, so StealBatchTasks >=
// StealSuccess, and the batch counters stay zero with batching off.
func TestStealBatchCounters(t *testing.T) {
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newBatchScheduler(p, 4)
		s.Run(func(w *Worker) { fib(w, 20) })
		sn := s.Counters()
		if succ := sn.Get(counters.StealSuccess); succ > 0 {
			if batch := sn.Get(counters.StealBatchTasks); batch < succ {
				t.Errorf("StealBatchTasks = %d < StealSuccess = %d", batch, succ)
			}
			if avg := sn.AvgStealBatchSize(); avg < 1 {
				t.Errorf("AvgStealBatchSize = %v, want >= 1", avg)
			}
		}

		single := newTestScheduler(p, 4)
		single.Run(func(w *Worker) { fib(w, 20) })
		sn = single.Counters()
		for _, e := range []counters.Event{counters.StealBatchTasks, counters.WakeupsSent, counters.ParkCount} {
			if v := sn.Get(e); v != 0 {
				t.Errorf("default mode accumulated %s = %d, want 0", e, v)
			}
		}
	})
}

// TestResetForRunClearsPollAndYieldState is the satellite-fix regression
// test: pollCount and sinceYield must not leak across Run calls, or the
// poll phase (and with it the emulated signal-handling latency) differs
// between identical seeded runs.
func TestResetForRunClearsPollAndYieldState(t *testing.T) {
	s := newTestScheduler(SignalLCWS, 1)
	w := s.worker(0)
	w.pollCount = 17               //lcws:presync single-threaded test; no worker goroutines running
	w.sinceYield = 5               //lcws:presync single-threaded test
	w.idleSpins = 99               //lcws:presync single-threaded test
	w.idleSleep = time.Millisecond //lcws:presync single-threaded test
	w.sticky = 2                   //lcws:presync single-threaded test
	w.resetForRun()
	if w.pollCount != 0 {
		t.Errorf("resetForRun left pollCount = %d", w.pollCount)
	}
	if w.sinceYield != 0 {
		t.Errorf("resetForRun left sinceYield = %d", w.sinceYield)
	}
	if w.idleSpins != 0 || w.idleSleep != 0 {
		t.Errorf("resetForRun left idleSpins = %d, idleSleep = %v", w.idleSpins, w.idleSleep)
	}
	if w.sticky != -1 {
		t.Errorf("resetForRun left sticky = %d", w.sticky)
	}
}

// TestPollPhaseIdenticalAcrossRuns drives the same computation twice on
// one scheduler and requires the per-run SignalHandled-relevant poll
// phase to match: with the resetForRun fix, worker 0 ends both runs with
// the same pollCount.
func TestPollPhaseIdenticalAcrossRuns(t *testing.T) {
	s := newTestScheduler(SignalLCWS, 1)
	workload := func(w *Worker) {
		for i := 0; i < 100; i++ {
			w.Poll()
		}
	}
	s.Run(workload)
	first := s.worker(0).pollCount
	s.Run(workload)
	if second := s.worker(0).pollCount; second != first {
		t.Errorf("poll phase leaked across runs: %d then %d", first, second)
	}
}

// TestNotifySingleSignalPerWindow is the satellite-fix regression test
// for the check-then-act race in notify: many concurrent thieves racing
// to notify one victim must send exactly one signal per targeted window
// (the CAS admits one winner), keeping SignalSent exact.
func TestNotifySingleSignalPerWindow(t *testing.T) {
	const thieves = 8
	s := newTestScheduler(SignalLCWS, thieves+1)
	victim := s.worker(0)
	var start, done sync.WaitGroup
	for i := 1; i <= thieves; i++ {
		start.Add(1)
		done.Add(1)
		go func(w *Worker) {
			defer done.Done()
			start.Done()
			start.Wait() // maximize the race window
			w.notify(victim)
		}(s.worker(i))
	}
	done.Wait()
	var sent uint64
	for i := 1; i <= thieves; i++ {
		sent += s.WorkerCounters(i).Get(counters.SignalSent)
	}
	if sent != 1 {
		t.Errorf("%d concurrent notifies sent %d signals, want exactly 1", thieves, sent)
	}
	if !victim.targeted.Load() || !victim.pending.Load() {
		t.Error("victim not targeted/pending after notify")
	}
}

// TestSignalCounterInvariant runs a signal-heavy workload and checks the
// invariant the notify CAS makes exact: every handled signal corresponds
// to exactly one sent signal, so SignalSent >= SignalHandled, and sends
// never exceed one per targeted window (no double-send inflation).
func TestSignalCounterInvariant(t *testing.T) {
	for _, p := range []Policy{SignalLCWS, ConsLCWS, HalfLCWS} {
		t.Run(p.String(), func(t *testing.T) {
			s := newTestScheduler(p, 4)
			s.Run(func(w *Worker) { fib(w, 20) })
			sn := s.Counters()
			sent, handled := sn.Get(counters.SignalSent), sn.Get(counters.SignalHandled)
			if sent < handled {
				t.Errorf("SignalSent = %d < SignalHandled = %d", sent, handled)
			}
		})
	}
}

// TestIdleBackoffLadder drives idleBackoff directly and checks the
// spins -> yields -> capped-sleeps progression and the ParkedNanos
// accounting of the sleep phase.
func TestIdleBackoffLadder(t *testing.T) {
	s := newTestScheduler(WS, 1)
	w := s.worker(0)

	// Phase 1: pure spins — no sleeping, no ParkedNanos.
	for i := 0; i < idleSpinIters; i++ {
		w.idleBackoff(true)
	}
	if got := w.ctr.Get(counters.ParkedNanos); got != 0 {
		t.Fatalf("spin phase accumulated ParkedNanos = %d", got)
	}
	if w.idleSleep != 0 {
		t.Fatalf("spin phase started the sleep ladder: %v", w.idleSleep)
	}

	// Phase 2: yields — still no sleeping.
	for i := 0; i < idleYieldIters; i++ {
		w.idleBackoff(true)
	}
	if got := w.ctr.Get(counters.ParkedNanos); got != 0 {
		t.Fatalf("yield phase accumulated ParkedNanos = %d", got)
	}

	// Phase 3: sleeps — idleSleep doubles per iteration up to the cap,
	// and sleep time lands in ParkedNanos.
	w.idleBackoff(true)
	if w.idleSleep != 2*idleSleepMin {
		t.Errorf("first sleep set idleSleep = %v, want %v", w.idleSleep, 2*idleSleepMin)
	}
	if got := w.ctr.Get(counters.ParkedNanos); got == 0 {
		t.Error("sleep phase accumulated no ParkedNanos")
	}
	for i := 0; i < 12; i++ {
		w.idleBackoff(true)
	}
	if w.idleSleep != idleSleepMax {
		t.Errorf("sleep ladder cap = %v, want %v", w.idleSleep, idleSleepMax)
	}

	// IdleIteration counted every rung.
	want := uint64(idleSpinIters + idleYieldIters + 1 + 12)
	if got := w.ctr.Get(counters.IdleIteration); got != want {
		t.Errorf("IdleIteration = %d, want %d", got, want)
	}

	// Finding work resets the ladder (what next() does).
	w.idleSpins, w.idleSleep = 0, 0 //lcws:presync single-threaded test
	w.idleBackoff(true)
	if w.idleSleep != 0 {
		t.Error("ladder did not restart in the spin phase after a reset")
	}
}

// TestParkWakeRoundTrip parks a worker directly and wakes it through the
// scheduler's parking lot, checking the bitset handshake and both
// counters. The worker re-parks whenever its 1ms insurance timer beats
// the wake: on a single-CPU host the parked window can fall entirely
// inside one of this goroutine's sleep quanta, so one park attempt is
// not guaranteed to be observed, let alone woken.
func TestParkWakeRoundTrip(t *testing.T) {
	s := newBatchScheduler(SignalLCWS, 2)
	w := s.worker(1)
	waker := s.ctrs.Worker(0)

	var woken atomic.Bool
	done := make(chan struct{})
	go func() {
		for !woken.Load() {
			w.park()
		}
		close(done)
	}()

	// Keep trying to catch the worker parked; wakeOne claims the bitset
	// bit with a CAS and counts WakeupsSent only when it actually woke
	// someone, so retrying cannot over-wake.
	deadline := time.After(10 * time.Second)
	for waker.Get(counters.WakeupsSent) == 0 {
		if s.parkWords[0].Load()&(1<<1) != 0 {
			s.wakeOne(waker)
			continue
		}
		select {
		case <-deadline:
			t.Fatal("never caught the worker parked")
		default:
			time.Sleep(10 * time.Microsecond)
		}
	}
	woken.Store(true)
	// The claimed wake's token may have been drained as stale by a
	// concurrent re-park; that round still exits on its insurance timer
	// and then observes woken.
	<-done

	if got := w.ctr.Get(counters.ParkCount); got == 0 {
		t.Error("ParkCount = 0, want at least one park")
	}
	if got := waker.Get(counters.WakeupsSent); got != 1 {
		t.Errorf("WakeupsSent = %d, want 1", got)
	}
	if got := w.ctr.Get(counters.ParkedNanos); got == 0 {
		t.Error("park accumulated no ParkedNanos")
	}
	if s.parkWords[0].Load() != 0 {
		t.Errorf("parkWords not cleared after wake: %b", s.parkWords[0].Load())
	}
}

// TestParkRefusesWithPublicWork checks the pre-park Dekker re-check: a
// worker must not park while another deque holds stealable work.
func TestParkRefusesWithPublicWork(t *testing.T) {
	s := newBatchScheduler(USLCWS, 2)
	s.worker(0).publishOneTask()

	w := s.worker(1)
	done := make(chan struct{})
	go func() {
		w.park() // must return immediately via the re-check
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("worker parked despite visible public work")
	}
	if got := w.ctr.Get(counters.ParkCount); got != 0 {
		t.Errorf("ParkCount = %d, want 0 (re-check should have refused)", got)
	}
	if s.parkWords[0].Load() != 0 {
		t.Error("parked bit left set after refused park")
	}
}

// TestParkTimerInsurance checks the missed-wakeup insurance: a parked
// worker with no wake event returns on its own after idleSleepMax.
func TestParkTimerInsurance(t *testing.T) {
	s := newBatchScheduler(SignalLCWS, 2)
	w := s.worker(1)
	start := time.Now()
	done := make(chan struct{})
	go func() {
		w.park()
		close(done)
	}()
	select {
	case <-done:
		if elapsed := time.Since(start); elapsed > 100*idleSleepMax {
			t.Errorf("insurance wake took %v, cap is %v", elapsed, idleSleepMax)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked worker never woke on the insurance timer")
	}
	if got := w.ctr.Get(counters.ParkCount); got != 1 {
		t.Errorf("ParkCount = %d, want 1", got)
	}
}

// TestStealBatchStress hammers a batch-mode pool with repeated bursty
// spawn trees to exercise park/wake edges under contention; run with
// -race it doubles as the data-race gate for the parking lot.
func TestStealBatchStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	forEachPolicy(t, func(t *testing.T, p Policy) {
		s := newBatchScheduler(p, 8)
		for round := 0; round < 10; round++ {
			var got int
			s.Run(func(w *Worker) { got = fib(w, 16) })
			if got != 987 {
				t.Fatalf("round %d: fib(16) = %d, want 987", round, got)
			}
		}
	})
}
