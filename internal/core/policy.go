// Package core implements the paper's schedulers: the Work Stealing
// baseline (WS) and four LCWS variants (user-space USLCWS of §3, the
// signal-based scheduler of §4, and the Conservative Exposure and Expose
// Half variants of §4.1), over the deques of internal/deque.
//
// # Signal emulation
//
// The paper's signal-based schedulers deliver work-exposure requests with
// pthread_kill: the handler runs update_public_bottom on the victim's own
// thread at an arbitrary instruction boundary, so requests are handled in
// constant time (up to OS signal latency — footnote 2). Go cannot deliver a
// signal to a specific goroutine, so this package emulates delivery with a
// per-worker pending word: a thief stores to it ("sends the signal"), and
// the victim's goroutine polls it at scheduler points and at Poll/Checkpoint
// calls that computational kernels place inside their loops. The handler
// therefore still runs on the owner's goroutine at a bounded-distance
// instruction boundary, preserving both the ownership discipline and the
// constant-time-exposure property, with the checkpoint interval playing the
// role of OS delivery latency. USLCWS ignores the pending word entirely and
// only notices its targeted flag at task boundaries, exactly as in §3.
package core

import (
	"fmt"
	"strings"

	"lcws/internal/deque"
)

// Policy selects which scheduler the worker pool runs.
type Policy uint8

const (
	// WS is the baseline Work Stealing scheduler with fully concurrent
	// Chase-Lev deques (Parlay's stock scheduler in the paper).
	WS Policy = iota
	// USLCWS is the user-space LCWS of §3: thieves set the victim's
	// targeted flag; the victim notices it only at task boundaries.
	USLCWS
	// SignalLCWS is the signal-based LCWS of §4: notifications are
	// handled in constant time via the emulated signal mechanism, with
	// the §4 race-fixed pop_bottom.
	SignalLCWS
	// ConsLCWS is the Conservative Exposure variant of §4.1.1: signals
	// are sent only when the victim has at least two tasks, and the
	// handler exposes only when at least two private tasks remain, so
	// the original pop_bottom stays race-free.
	ConsLCWS
	// HalfLCWS is the Expose Half variant of §4.1.2: the handler exposes
	// round(r/2) of the r private tasks when r >= 3.
	HalfLCWS
	// LaceWS is the Lace scheduler of van Dijk and van de Pol (the
	// related-work baseline of §2): split deques with flag-based
	// exposure requests observed only at deque accesses (like USLCWS),
	// half-of-deque exposure, and — unlike every LCWS variant — the
	// ability to "unexpose": when the private part empties while public
	// work remains, the owner reclaims the whole public part in one
	// synchronized step instead of draining it task by task.
	LaceWS

	numPolicies
)

// NumPolicies is the number of scheduler policies.
const NumPolicies = int(numPolicies)

// Policies lists every policy in presentation order (baseline first,
// the paper's four LCWS variants, then the Lace comparator).
var Policies = [NumPolicies]Policy{WS, USLCWS, SignalLCWS, ConsLCWS, HalfLCWS, LaceWS}

// LCWSPolicies lists the four LCWS-based policies the paper evaluates
// against the WS baseline, in the order used by Figures 5 and 6
// (User, Signal, Cons, Half).
var LCWSPolicies = [4]Policy{USLCWS, SignalLCWS, ConsLCWS, HalfLCWS}

var policyNames = [NumPolicies]string{
	WS:         "WS",
	USLCWS:     "USLCWS",
	SignalLCWS: "Signal",
	ConsLCWS:   "Cons",
	HalfLCWS:   "Half",
	LaceWS:     "Lace",
}

// String returns the short name used in the paper's figures
// (WS, USLCWS/User, Signal, Cons, Half).
func (p Policy) String() string {
	if int(p) >= NumPolicies {
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
	return policyNames[p]
}

// ParsePolicy returns the policy whose String name matches
// case-insensitively, so flag values like "signal" or "ws" round-trip
// with Policy.String.
func ParsePolicy(name string) (Policy, error) {
	for i, n := range policyNames {
		if strings.EqualFold(n, name) {
			return Policy(i), nil
		}
	}
	if strings.EqualFold(name, "User") { // figure-label alias for USLCWS
		return USLCWS, nil
	}
	return 0, fmt.Errorf("core: unknown policy %q", name)
}

// SplitDeque reports whether the policy uses the LCWS split deque
// (all policies except the WS baseline).
func (p Policy) SplitDeque() bool { return p != WS }

// SignalBased reports whether thieves notify victims through the emulated
// signal mechanism (handled at checkpoints) rather than the task-boundary
// targeted flag.
func (p Policy) SignalBased() bool {
	return p == SignalLCWS || p == ConsLCWS || p == HalfLCWS
}

// raceFixPop reports whether the split deque must use the §4 signal-safe
// pop_bottom. The Conservative variant avoids the race by construction and
// keeps the original pop_bottom; USLCWS never exposes mid-task.
func (p Policy) raceFixPop() bool { return p == SignalLCWS || p == HalfLCWS }

// exposeMode returns the work-exposure policy of the scheduler's handler.
func (p Policy) exposeMode() deque.ExposeMode {
	switch p {
	case ConsLCWS:
		return deque.ExposeConservative
	case HalfLCWS, LaceWS:
		return deque.ExposeHalf
	default:
		return deque.ExposeOne
	}
}

// flagBased reports whether exposure requests are observed only at task
// boundaries via the targeted flag (USLCWS and Lace).
func (p Policy) flagBased() bool { return p == USLCWS || p == LaceWS }
