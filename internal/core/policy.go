// Package core implements the paper's schedulers: the Work Stealing
// baseline (WS) and four LCWS variants (user-space USLCWS of §3, the
// signal-based scheduler of §4, and the Conservative Exposure and Expose
// Half variants of §4.1), over the deques of internal/deque.
//
// # Signal emulation
//
// The paper's signal-based schedulers deliver work-exposure requests with
// pthread_kill: the handler runs update_public_bottom on the victim's own
// thread at an arbitrary instruction boundary, so requests are handled in
// constant time (up to OS signal latency — footnote 2). Go cannot deliver a
// signal to a specific goroutine, so this package emulates delivery with a
// per-worker pending word: a thief stores to it ("sends the signal"), and
// the victim's goroutine polls it at scheduler points and at Poll/Checkpoint
// calls that computational kernels place inside their loops. The handler
// therefore still runs on the owner's goroutine at a bounded-distance
// instruction boundary, preserving both the ownership discipline and the
// constant-time-exposure property, with the checkpoint interval playing the
// role of OS delivery latency. USLCWS ignores the pending word entirely and
// only notices its targeted flag at task boundaries, exactly as in §3.
package core

import (
	"fmt"
	"strings"

	"lcws/internal/deque"
)

// Policy selects which scheduler the worker pool runs.
type Policy uint8

const (
	// WS is the baseline Work Stealing scheduler with fully concurrent
	// Chase-Lev deques (Parlay's stock scheduler in the paper).
	WS Policy = iota
	// USLCWS is the user-space LCWS of §3: thieves set the victim's
	// targeted flag; the victim notices it only at task boundaries.
	USLCWS
	// SignalLCWS is the signal-based LCWS of §4: notifications are
	// handled in constant time via the emulated signal mechanism, with
	// the §4 race-fixed pop_bottom.
	SignalLCWS
	// ConsLCWS is the Conservative Exposure variant of §4.1.1: signals
	// are sent only when the victim has at least two tasks, and the
	// handler exposes only when at least two private tasks remain, so
	// the original pop_bottom stays race-free.
	ConsLCWS
	// HalfLCWS is the Expose Half variant of §4.1.2: the handler exposes
	// round(r/2) of the r private tasks when r >= 3.
	HalfLCWS
	// LaceWS is the Lace scheduler of van Dijk and van de Pol (the
	// related-work baseline of §2): split deques with flag-based
	// exposure requests observed only at deque accesses (like USLCWS),
	// half-of-deque exposure, and — unlike every LCWS variant — the
	// ability to "unexpose": when the private part empties while public
	// work remains, the owner reclaims the whole public part in one
	// synchronized step instead of draining it task by task.
	LaceWS
	// MultFree is the relaxed split-deque policy of Castañeda & Piña
	// (arXiv 2008.04424) grafted onto the signal-based scheduler: thieves
	// claim tasks with plain read/write operations — no CAS, no fence on
	// the steal side — at the cost of bounded multiplicity (a task may
	// rarely be taken more than once, at most once per thief). Only tasks
	// the scheduler knows are idempotent take the relaxed path (ParFor
	// range bodies); Fork2 closures fall back to the exclusive CAS steal
	// and are never duplicated. Duplicate executions are absorbed by a
	// generation-stamp arbitration so completion and join accounting stay
	// exact; the owner reclaims leftover public work exclusively through
	// the tag-bumping UnexposeAll (like Lace), which together with the
	// owner-side cursor repair keeps the multiplicity bound
	// (model-checked in internal/verify).
	MultFree

	numPolicies
)

// NumPolicies is the number of scheduler policies.
const NumPolicies = int(numPolicies)

// Policies lists every policy in presentation order (baseline first,
// the paper's four LCWS variants, the Lace comparator, then the relaxed
// MultFree extension).
var Policies = [NumPolicies]Policy{WS, USLCWS, SignalLCWS, ConsLCWS, HalfLCWS, LaceWS, MultFree}

// LCWSPolicies lists the four LCWS-based policies the paper evaluates
// against the WS baseline, in the order used by Figures 5 and 6
// (User, Signal, Cons, Half).
var LCWSPolicies = [4]Policy{USLCWS, SignalLCWS, ConsLCWS, HalfLCWS}

var policyNames = [NumPolicies]string{
	WS:         "WS",
	USLCWS:     "USLCWS",
	SignalLCWS: "Signal",
	ConsLCWS:   "Cons",
	HalfLCWS:   "Half",
	LaceWS:     "Lace",
	MultFree:   "MultFree",
}

// String returns the short name used in the paper's figures
// (WS, USLCWS/User, Signal, Cons, Half).
func (p Policy) String() string {
	if int(p) >= NumPolicies {
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
	return policyNames[p]
}

// ParsePolicy returns the policy whose String name matches
// case-insensitively, so flag values like "signal" or "ws" round-trip
// with Policy.String.
func ParsePolicy(name string) (Policy, error) {
	for i, n := range policyNames {
		if strings.EqualFold(n, name) {
			return Policy(i), nil
		}
	}
	if strings.EqualFold(name, "User") { // figure-label alias for USLCWS
		return USLCWS, nil
	}
	return 0, fmt.Errorf("core: unknown policy %q", name)
}

// SplitDeque reports whether the policy uses the LCWS split deque
// (all policies except the WS baseline).
func (p Policy) SplitDeque() bool { return p != WS }

// SignalBased reports whether thieves notify victims through the emulated
// signal mechanism (handled at checkpoints) rather than the task-boundary
// targeted flag. MultFree keeps Signal's notification machinery so the
// steal-path relaxation is the only variable between the two.
func (p Policy) SignalBased() bool {
	return p == SignalLCWS || p == ConsLCWS || p == HalfLCWS || p == MultFree
}

// raceFixPop reports whether the split deque must use the §4 signal-safe
// pop_bottom. The Conservative variant avoids the race by construction and
// keeps the original pop_bottom; USLCWS never exposes mid-task.
func (p Policy) raceFixPop() bool { return p == SignalLCWS || p == HalfLCWS || p == MultFree }

// relaxedSteal reports whether thieves may claim idempotent tasks through
// the fence- and CAS-free relaxed path (TakeTopRelaxed) with bounded
// multiplicity, and the owner reclaims public work exclusively through
// UnexposeAll.
func (p Policy) relaxedSteal() bool { return p == MultFree }

// exposeMode returns the work-exposure policy of the scheduler's handler.
func (p Policy) exposeMode() deque.ExposeMode {
	switch p {
	case ConsLCWS:
		return deque.ExposeConservative
	case HalfLCWS, LaceWS:
		return deque.ExposeHalf
	default:
		return deque.ExposeOne
	}
}

// flagBased reports whether exposure requests are observed only at task
// boundaries via the targeted flag (USLCWS and Lace).
func (p Policy) flagBased() bool { return p == USLCWS || p == LaceWS }
