package core

import (
	"testing"
	"unsafe"
)

// TestWorkerFieldLayout pins the cache-layout contract of the Worker
// struct: the thief-written notification words live alone on the first
// cache line, and every owner-hot field starts at or beyond the second.
// A refactor that reorders fields silently reintroduces the false
// sharing this layout exists to prevent, so the test fails loudly
// instead.
func TestWorkerFieldLayout(t *testing.T) {
	var w Worker
	if off := unsafe.Offsetof(w.targeted); off != 0 {
		t.Errorf("targeted at offset %d, want 0 (thief-shared line must lead the struct)", off)
	}
	if off := unsafe.Offsetof(w.pending); off >= cacheLineSize {
		t.Errorf("pending at offset %d, want it on the first (thief-shared) cache line", off)
	}
	// The trace-latency stamps are thief-written like the two flags, so
	// they must share the first line with them, not the owner-hot state.
	for name, off := range map[string]uintptr{
		"reqTs":     unsafe.Offsetof(w.reqTs),
		"sigSendTs": unsafe.Offsetof(w.sigSendTs),
	} {
		if off >= cacheLineSize {
			t.Errorf("thief-written stamp %s at offset %d, want it on the first cache line", name, off)
		}
		if off%8 != 0 {
			t.Errorf("stamp %s at offset %d is not 8-byte aligned", name, off)
		}
	}
	ownerFields := map[string]uintptr{
		"sched":    unsafe.Offsetof(w.sched),
		"dq":       unsafe.Offsetof(w.dq),
		"ctr":      unsafe.Offsetof(w.ctr),
		"rand":     unsafe.Offsetof(w.rand),
		"freelist": unsafe.Offsetof(w.freelist),
		"rec":      unsafe.Offsetof(w.rec),
		"id":       unsafe.Offsetof(w.id),
		"policy":   unsafe.Offsetof(w.policy),
	}
	for name, off := range ownerFields {
		if off < cacheLineSize {
			t.Errorf("owner-hot field %s at offset %d shares the thief-written cache line (< %d)",
				name, off, cacheLineSize)
		}
	}
}

// TestWorkerSlotPadding pins the slab-slot contract: slots are a
// cache-line multiple with at least one full trailing guard line, so no
// two workers in the contiguous slab share a line regardless of the
// slab's base alignment.
func TestWorkerSlotPadding(t *testing.T) {
	slot := unsafe.Sizeof(workerSlot{})
	if slot%cacheLineSize != 0 {
		t.Errorf("workerSlot size %d is not a cache-line multiple", slot)
	}
	if slot < unsafe.Sizeof(Worker{})+cacheLineSize {
		t.Errorf("workerSlot size %d leaves no guard line after the %d-byte Worker",
			slot, unsafe.Sizeof(Worker{}))
	}
}

// TestWorkerSlabStride verifies workers really are allocated contiguously
// at workerSlot stride (the property victim selection and the padding
// analysis assume), rather than individually on the heap.
func TestWorkerSlabStride(t *testing.T) {
	s := NewScheduler(Options{Workers: 4})
	stride := unsafe.Sizeof(workerSlot{})
	base := uintptr(unsafe.Pointer(s.worker(0)))
	for i := 1; i < s.Workers(); i++ {
		got := uintptr(unsafe.Pointer(s.worker(i))) - base
		if got != uintptr(i)*stride {
			t.Errorf("worker %d at byte offset %d from worker 0, want %d (contiguous slab)",
				i, got, uintptr(i)*stride)
		}
	}
	// With the guard line in the slot, two workers' live fields can
	// never fall on one line even at the worst-case base alignment.
	if stride < unsafe.Sizeof(Worker{})+cacheLineSize {
		t.Errorf("slab stride %d too small for misalignment-proof separation", stride)
	}
}
