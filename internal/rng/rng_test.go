package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("generators with different seeds matched %d/100 outputs", same)
	}
}

func TestSeedReset(t *testing.T) {
	g := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = g.Uint64()
	}
	g.Seed(7)
	for i := range first {
		if got := g.Uint64(); got != first[i] {
			t.Fatalf("Seed did not reset the stream (step %d)", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	f := func(seed uint64, nRaw uint32) bool {
		n := uint64(nRaw%1000) + 1
		g := New(seed)
		for i := 0; i < 100; i++ {
			if v := g.Uint64n(n); v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nRoughUniformity(t *testing.T) {
	g := New(99)
	const n = 10
	const draws = 100000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[g.Uint64n(n)]++
	}
	want := draws / n
	for i, got := range buckets {
		if got < want*9/10 || got > want*11/10 {
			t.Errorf("bucket %d: %d draws, want about %d", i, got, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(5)
	for i := 0; i < 10000; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	g := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += g.Exp()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean = %v, want about 1", mean)
	}
}

func TestNormMoments(t *testing.T) {
	g := New(13)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := g.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want about 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(17)
	out := make([]int, 100)
	g.Perm(out)
	seen := make([]bool, 100)
	for _, v := range out {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm output is not a permutation: %v", out[:10])
		}
		seen[v] = true
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(42) != Hash64(42) {
		t.Error("Hash64 is not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Error("Hash64(1) == Hash64(2)")
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d, %d) = (%d, %d), want (%d, %d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
