// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the workload generators, victim selection, and the
// simulator. Using our own generators (instead of math/rand) guarantees
// bit-for-bit reproducible workloads and figures across Go versions.
//
// Two generators are provided: SplitMix64, used for seeding and for
// hash-style stateless streams, and Xoshiro256, a xoshiro256** generator
// used where a stateful stream is needed. Neither is safe for concurrent
// use; create one generator per worker.
package rng

import "math"

// SplitMix64 advances the SplitMix64 state and returns the next value.
// It is the recommended seeder for xoshiro generators and doubles as a
// strong 64-bit mixing function.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 returns a stateless SplitMix64-style hash of x. Equal inputs give
// equal outputs; it is used for reproducible "random" per-index values in
// data generators (mirroring PBBS's dataGen hash).
func Hash64(x uint64) uint64 {
	s := x
	return SplitMix64(&s)
}

// Xoshiro256 is a xoshiro256** PRNG. The zero value is invalid; use New.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 seeded from seed via SplitMix64.
func New(seed uint64) *Xoshiro256 {
	var g Xoshiro256
	g.Seed(seed)
	return &g
}

// Seed resets the generator state deterministically from seed.
func (g *Xoshiro256) Seed(seed uint64) {
	sm := seed
	for i := range g.s {
		g.s[i] = SplitMix64(&sm)
	}
	// A state of all zeros is a fixed point; SplitMix64 of any seed cannot
	// produce four zero words, but keep the guard for clarity.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64-bit value.
func (g *Xoshiro256) Uint64() uint64 {
	result := rotl(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = rotl(g.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift reduction with rejection for exactness.
func (g *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return g.Uint64() & (n - 1)
	}
	// Lemire's method with rejection sampling for an unbiased result.
	threshold := -n % n
	for {
		v := g.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(g.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (g *Xoshiro256) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed float64 with mean 1, used for
// exponential task-grain and sequence distributions.
func (g *Xoshiro256) Exp() float64 {
	for {
		u := g.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Norm returns a standard normal variate (Box–Muller; one value per call).
func (g *Xoshiro256) Norm() float64 {
	for {
		u := g.Float64()
		v := g.Float64()
		if u == 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm fills out with a uniform random permutation of [0, len(out)).
func (g *Xoshiro256) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
}
