package deque

import (
	"testing"

	"lcws/internal/counters"
)

// This file cross-checks the per-operation fence/CAS accounting of both
// deques against the counting model in internal/counters/model.go by
// running scripted operation sequences and comparing the counter totals
// with sums computed from the model constants. The syncaccount analyzer
// (cmd/lcwsvet) statically checks that each method accounts the right
// event classes; these tests check the amounts.

// syncOf returns the (fence, CAS) totals accumulated in c.
func syncOf(c *counters.Worker) (uint64, uint64) {
	return c.Get(counters.Fence), c.Get(counters.CAS)
}

func TestScriptedSplitOwnerOpsFree(t *testing.T) {
	// Model: LCWS push_bottom, pop_bottom and exposure cost nothing
	// (Lemma 1 and footnote 3), regardless of variant or expose mode.
	for _, raceFix := range []bool{false, true} {
		d := NewSplit[int](16, raceFix)
		c := newCtr()
		push(t, d, c, 1, 2, 3, 4, 5)
		d.Expose(ExposeOne, c)
		d.Expose(ExposeConservative, c)
		d.Expose(ExposeHalf, c)
		for d.PopBottom(c) != nil {
		}
		if f, cas := syncOf(c); f != 0 || cas != 0 {
			t.Errorf("raceFix=%v: owner push/pop/expose script cost (%d fences, %d CAS), want (0, 0)", raceFix, f, cas)
		}
	}
}

func TestScriptedSplitPopPublicAccounting(t *testing.T) {
	// Script: three tasks, two exposed; the owner drains the private one,
	// then the public part. The first pop_public_bottom takes the common
	// path (one fence, Listing 2 line 12), the second takes the emptying
	// path (both fences) and races for the last element (one CAS), the
	// third finds the deque already reset (free).
	d := NewSplit[int](16, true)
	c := newCtr()
	push(t, d, c, 1, 2, 3)
	d.Expose(ExposeOne, c)
	d.Expose(ExposeOne, c)
	for d.PopBottom(c) != nil {
	}
	base, baseCAS := syncOf(c)
	if base != 0 || baseCAS != 0 {
		t.Fatalf("pre-script sync counts (%d, %d), want (0, 0)", base, baseCAS)
	}

	if got := d.PopPublicBottom(c); got == nil || *got != 2 {
		t.Fatalf("first PopPublicBottom = %v, want 2", got)
	}
	if f, cas := syncOf(c); f != counters.LCWSPopPublicFences || cas != 0 {
		t.Errorf("common path cost (%d fences, %d CAS), want (%d, 0)", f, cas, counters.LCWSPopPublicFences)
	}

	if got := d.PopPublicBottom(c); got == nil || *got != 1 {
		t.Fatalf("second PopPublicBottom = %v, want 1", got)
	}
	wantF := uint64(counters.LCWSPopPublicFences + counters.LCWSPopPublicEmptyFences)
	wantCAS := uint64(counters.LCWSPopPublicRaceCAS)
	if f, cas := syncOf(c); f != wantF || cas != wantCAS {
		t.Errorf("after emptying path: (%d fences, %d CAS), want (%d, %d)", f, cas, wantF, wantCAS)
	}

	if got := d.PopPublicBottom(c); got != nil {
		t.Fatalf("third PopPublicBottom = %v, want nil", *got)
	}
	if f, cas := syncOf(c); f != wantF || cas != wantCAS {
		t.Errorf("empty pop_public_bottom must be free; totals (%d, %d), want (%d, %d)", f, cas, wantF, wantCAS)
	}
}

func TestScriptedSplitStealAccounting(t *testing.T) {
	// Model: a steal attempt costs one CAS when it finds public work and
	// nothing when the public part is empty (Lemma 3) — including the
	// PRIVATE_WORK and post-abort cases.
	d := NewSplit[int](16, true)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2)

	if _, res := d.PopTop(thief); res != PrivateWork {
		t.Fatalf("PopTop on private-only deque: %v, want PrivateWork", res)
	}
	if f, cas := syncOf(thief); f != 0 || cas != 0 {
		t.Errorf("PRIVATE_WORK attempt cost (%d, %d), want (0, 0)", f, cas)
	}

	d.Expose(ExposeOne, owner)
	if got, res := d.PopTop(thief); res != Stolen || *got != 1 {
		t.Fatalf("PopTop = (%v, %v), want (1, Stolen)", got, res)
	}
	if f, cas := syncOf(thief); f != 0 || cas != counters.LCWSStealCAS {
		t.Errorf("successful steal cost (%d fences, %d CAS), want (0, %d)", f, cas, counters.LCWSStealCAS)
	}

	if _, res := d.PopTop(thief); res != PrivateWork {
		t.Fatalf("PopTop with private work left: %v, want PrivateWork", res)
	}
	if f, cas := syncOf(thief); f != 0 || cas != counters.LCWSStealCAS {
		t.Errorf("post-steal empty-public attempt must be free; totals (%d, %d)", f, cas)
	}
	if f, _ := syncOf(owner); f != 0 {
		t.Errorf("owner paid %d fences without touching the public part", f)
	}
}

func TestScriptedChaseLevAccounting(t *testing.T) {
	// The WS baseline script, step by step against the model:
	// two pushes, one steal, a last-element owner pop (racing the CAS),
	// an empty owner pop, and an empty steal attempt.
	d := NewChaseLev[int](16)
	owner, thief := newCtr(), newCtr()
	vals := []int{1, 2}
	for i := range vals {
		d.PushBottom(&vals[i], owner)
	}
	if f, cas := syncOf(owner); f != 2*counters.WSPushFences || cas != 0 {
		t.Errorf("2 pushes cost (%d fences, %d CAS), want (%d, 0)", f, cas, 2*counters.WSPushFences)
	}

	if got, res := d.PopTop(thief); res != Stolen || *got != 1 {
		t.Fatalf("PopTop = (%v, %v), want (1, Stolen)", got, res)
	}
	if f, cas := syncOf(thief); f != counters.WSStealFences || cas != counters.WSStealCAS {
		t.Errorf("steal cost (%d fences, %d CAS), want (%d, %d)", f, cas, counters.WSStealFences, counters.WSStealCAS)
	}

	if got := d.PopBottom(owner); got == nil || *got != 2 {
		t.Fatalf("PopBottom = %v, want 2", got)
	}
	wantF := uint64(2*counters.WSPushFences + counters.WSPopFences)
	wantCAS := uint64(counters.WSPopRaceCAS)
	if f, cas := syncOf(owner); f != wantF || cas != wantCAS {
		t.Errorf("last-element pop: owner totals (%d fences, %d CAS), want (%d, %d)", f, cas, wantF, wantCAS)
	}

	if got := d.PopBottom(owner); got != nil {
		t.Fatalf("PopBottom on empty = %v, want nil", *got)
	}
	wantF += counters.WSPopFences // empty pop still pays the store-load fence
	if f, cas := syncOf(owner); f != wantF || cas != wantCAS {
		t.Errorf("empty pop: owner totals (%d fences, %d CAS), want (%d, %d)", f, cas, wantF, wantCAS)
	}

	if _, res := d.PopTop(thief); res != Empty {
		t.Fatalf("PopTop on empty: %v, want Empty", res)
	}
	if f, cas := syncOf(thief); f != 2*counters.WSStealFences || cas != counters.WSStealCAS {
		t.Errorf("empty steal pays the fence only; thief totals (%d, %d), want (%d, %d)",
			f, cas, 2*counters.WSStealFences, counters.WSStealCAS)
	}
}

// TestScriptedSameSequenceModelRatio runs the SAME logical schedule on
// both deques — the owner forks two tasks, a thief steals one, the
// owner consumes the rest — and checks the LCWS-to-WS synchronization
// ratio that Figures 3 and 8 are built from: the LCWS owner executes
// zero synchronization operations until it must reach into the public
// part, while the WS owner pays per operation.
func TestScriptedSameSequenceModelRatio(t *testing.T) {
	// WS baseline.
	ws := NewChaseLev[int](16)
	wsOwner, wsThief := newCtr(), newCtr()
	a, b := 1, 2
	ws.PushBottom(&a, wsOwner)
	ws.PushBottom(&b, wsOwner)
	if _, res := ws.PopTop(wsThief); res != Stolen {
		t.Fatal("WS steal failed")
	}
	if got := ws.PopBottom(wsOwner); got == nil {
		t.Fatal("WS pop failed")
	}

	// LCWS with the signal-safe pop; exposure happens between pushes and
	// steals, as if the emulated signal handler ran at that boundary.
	ls := NewSplit[int](16, true)
	lsOwner, lsThief := newCtr(), newCtr()
	ls.PushBottom(&a, lsOwner)
	ls.PushBottom(&b, lsOwner)
	ls.Expose(ExposeOne, lsOwner)
	if _, res := ls.PopTop(lsThief); res != Stolen {
		t.Fatal("LCWS steal failed")
	}
	if got := ls.PopBottom(lsOwner); got == nil {
		t.Fatal("LCWS pop failed")
	}

	wsF, wsCAS := syncOf(wsOwner)
	lsF, lsCAS := syncOf(lsOwner)
	if wantF := uint64(2*counters.WSPushFences + counters.WSPopFences); wsF != wantF || wsCAS != counters.WSPopRaceCAS {
		t.Errorf("WS owner totals (%d fences, %d CAS), want (%d, %d)", wsF, wsCAS, wantF, counters.WSPopRaceCAS)
	}
	if lsF != 0 || lsCAS != 0 {
		t.Errorf("LCWS owner totals (%d fences, %d CAS), want (0, 0): the owner never touched the public part", lsF, lsCAS)
	}
	tf, tc := syncOf(lsThief)
	if tf != 0 || tc != counters.LCWSStealCAS {
		t.Errorf("LCWS thief totals (%d fences, %d CAS), want (0, %d)", tf, tc, counters.LCWSStealCAS)
	}
}
