package deque

import (
	"sync"
	"testing"
	"testing/quick"

	"lcws/internal/counters"
	"lcws/internal/rng"
)

func newCtr() *counters.Worker { return counters.NewSet(1).Worker(0) }

func push(t *testing.T, d *SplitDeque[int], c *counters.Worker, vals ...int) []*int {
	t.Helper()
	out := make([]*int, len(vals))
	for i, v := range vals {
		p := new(int)
		*p = v
		d.PushBottom(p, c)
		out[i] = p
	}
	return out
}

func TestSplitPushPopLIFO(t *testing.T) {
	for _, raceFix := range []bool{false, true} {
		d := NewSplit[int](64, raceFix)
		c := newCtr()
		push(t, d, c, 1, 2, 3)
		for want := 3; want >= 1; want-- {
			got := d.PopBottom(c)
			if got == nil || *got != want {
				t.Fatalf("raceFix=%v: PopBottom = %v, want %d", raceFix, got, want)
			}
		}
		if d.PopBottom(c) != nil {
			t.Fatalf("raceFix=%v: PopBottom on empty deque returned a task", raceFix)
		}
	}
}

func TestSplitPrivateOpsAreSynchronizationFree(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	push(t, d, c, 1, 2, 3, 4, 5)
	for d.PopBottom(c) != nil {
	}
	if f := c.Get(counters.Fence); f != 0 {
		t.Errorf("private push/pop recorded %d fences, want 0 (paper Lemmas 1-2)", f)
	}
	if cas := c.Get(counters.CAS); cas != 0 {
		t.Errorf("private push/pop recorded %d CAS, want 0", cas)
	}
}

func TestSplitExposeModes(t *testing.T) {
	cases := []struct {
		mode    ExposeMode
		private int
		want    int
	}{
		{ExposeOne, 0, 0},
		{ExposeOne, 1, 1},
		{ExposeOne, 5, 1},
		{ExposeConservative, 0, 0},
		{ExposeConservative, 1, 0},
		{ExposeConservative, 2, 1},
		{ExposeConservative, 5, 1},
		{ExposeHalf, 0, 0},
		{ExposeHalf, 1, 1},
		{ExposeHalf, 2, 1},
		{ExposeHalf, 3, 2}, // round(3/2) = 2
		{ExposeHalf, 4, 2},
		{ExposeHalf, 5, 3}, // round(5/2) = 3
		{ExposeHalf, 9, 5},
	}
	for _, tc := range cases {
		d := NewSplit[int](64, false)
		c := newCtr()
		for i := 0; i < tc.private; i++ {
			push(t, d, c, i)
		}
		got := d.Expose(tc.mode, c)
		if got != tc.want {
			t.Errorf("%v with %d private tasks exposed %d, want %d", tc.mode, tc.private, got, tc.want)
		}
		if ps := d.PublicSize(); ps != tc.want {
			t.Errorf("%v with %d private tasks: PublicSize = %d, want %d", tc.mode, tc.private, ps, tc.want)
		}
		if c.Get(counters.Exposure) != uint64(tc.want) {
			t.Errorf("%v exposure counter = %d, want %d", tc.mode, c.Get(counters.Exposure), tc.want)
		}
	}
}

func TestSplitPopTopResults(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, thief := newCtr(), newCtr()

	if _, res := d.PopTop(thief); res != Empty {
		t.Fatalf("PopTop on empty deque = %v, want Empty", res)
	}
	push(t, d, owner, 7)
	if _, res := d.PopTop(thief); res != PrivateWork {
		t.Fatalf("PopTop with only private work = %v, want PrivateWork", res)
	}
	if got := thief.Get(counters.CAS); got != 0 {
		t.Errorf("failed steal attempts cost %d CAS, want 0", got)
	}
	d.Expose(ExposeOne, owner)
	task, res := d.PopTop(thief)
	if res != Stolen || task == nil || *task != 7 {
		t.Fatalf("PopTop after exposure = %v, %v; want Stolen 7", task, res)
	}
	if got := thief.Get(counters.CAS); got != 1 {
		t.Errorf("successful steal cost %d CAS, want 1", got)
	}
	if _, res := d.PopTop(thief); res != Empty {
		t.Fatalf("PopTop after stealing last task = %v, want Empty", res)
	}
}

func TestSplitStealOrderIsFIFO(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2, 3)
	d.Expose(ExposeHalf, owner) // exposes 2: tasks 1 and 2
	a, res := d.PopTop(thief)
	if res != Stolen || *a != 1 {
		t.Fatalf("first steal = %v, %v; want 1", a, res)
	}
	b, res := d.PopTop(thief)
	if res != Stolen || *b != 2 {
		t.Fatalf("second steal = %v, %v; want 2", b, res)
	}
	if _, res := d.PopTop(thief); res != PrivateWork {
		t.Fatalf("third steal = %v, want PrivateWork (task 3 is private)", res)
	}
}

func TestSplitPopPublicBottomTakesYoungestPublic(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	push(t, d, c, 1, 2, 3)
	d.Expose(ExposeOne, c)
	d.Expose(ExposeOne, c) // public: [1 2], private: [3]
	for d.PopBottom(c) != nil {
	}
	got := d.PopPublicBottom(c)
	if got == nil || *got != 2 {
		t.Fatalf("PopPublicBottom = %v, want 2 (youngest public)", got)
	}
	got = d.PopPublicBottom(c)
	if got == nil || *got != 1 {
		t.Fatalf("PopPublicBottom = %v, want 1", got)
	}
	if d.PopPublicBottom(c) != nil {
		t.Fatal("PopPublicBottom on empty deque returned a task")
	}
	if un := c.Get(counters.ExposedNotStolen); un != 2 {
		t.Errorf("ExposedNotStolen = %d, want 2", un)
	}
}

func TestSplitPopPublicBottomFenceAccounting(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	push(t, d, c, 1, 2)
	d.Expose(ExposeOne, c)
	d.Expose(ExposeOne, c)
	for d.PopBottom(c) != nil {
	}
	base := c.Get(counters.Fence)
	d.PopPublicBottom(c) // common path: task 2 remains... task 1 still public
	afterCommon := c.Get(counters.Fence)
	if afterCommon-base != counters.LCWSPopPublicFences {
		t.Errorf("common-path PopPublicBottom cost %d fences, want %d",
			afterCommon-base, counters.LCWSPopPublicFences)
	}
	d.PopPublicBottom(c) // emptying path
	afterEmpty := c.Get(counters.Fence)
	if afterEmpty-afterCommon != counters.LCWSPopPublicEmptyFences {
		t.Errorf("emptying-path PopPublicBottom cost %d fences, want %d",
			afterEmpty-afterCommon, counters.LCWSPopPublicEmptyFences)
	}
}

func TestSplitIndicesResetAfterEmpty(t *testing.T) {
	d := NewSplit[int](8, false)
	c := newCtr()
	// Fill and fully drain through the public path many times; with
	// capacity 8 this only works if indices reset on empty.
	for round := 0; round < 100; round++ {
		push(t, d, c, 1, 2, 3, 4, 5, 6)
		for d.PopBottom(c) != nil {
		}
		// Private part drained; expose nothing, deque empty via pops.
		push(t, d, c, 1, 2)
		d.Expose(ExposeOne, c)
		d.Expose(ExposeOne, c)
		for d.PopPublicBottom(c) != nil {
		}
		if !d.IsEmpty() {
			t.Fatalf("round %d: deque not empty after drain", round)
		}
	}
}

func TestSplitRaceFixPopRepairsBot(t *testing.T) {
	// §4: the race-fixed pop_bottom pre-decrements bot; a failed pop must
	// be repaired by the subsequent PopPublicBottom on every path.
	t.Run("public-work-remains", func(t *testing.T) {
		d := NewSplit[int](64, true)
		c := newCtr()
		push(t, d, c, 1, 2)
		d.Expose(ExposeOne, c)
		d.Expose(ExposeOne, c) // both public
		if got := d.PopBottom(c); got != nil {
			t.Fatalf("PopBottom with empty private part = %v, want nil", got)
		}
		got := d.PopPublicBottom(c)
		if got == nil || *got != 2 {
			t.Fatalf("PopPublicBottom = %v, want 2", got)
		}
		// bot must have been repaired so that further pushes work.
		push(t, d, c, 9)
		if got := d.PopBottom(c); got == nil || *got != 9 {
			t.Fatalf("PopBottom after repair = %v, want 9", got)
		}
	})
	t.Run("deque-empty", func(t *testing.T) {
		d := NewSplit[int](64, true)
		c := newCtr()
		if got := d.PopBottom(c); got != nil {
			t.Fatalf("PopBottom on empty = %v, want nil", got)
		}
		if got := d.PopPublicBottom(c); got != nil {
			t.Fatalf("PopPublicBottom on empty = %v, want nil", got)
		}
		push(t, d, c, 5)
		if got := d.PopBottom(c); got == nil || *got != 5 {
			t.Fatalf("PopBottom after empty-path repair = %v, want 5", got)
		}
	})
}

func TestSplitHasTwoTasks(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	if d.HasTwoTasks() {
		t.Error("empty deque reports two tasks")
	}
	push(t, d, c, 1)
	if d.HasTwoTasks() {
		t.Error("1-task deque reports two tasks")
	}
	push(t, d, c, 2)
	if !d.HasTwoTasks() {
		t.Error("2-task deque does not report two tasks")
	}
	d.Expose(ExposeOne, c)
	if !d.HasTwoTasks() {
		t.Error("1 public + 1 private deque does not report two tasks")
	}
}

func TestSplitOverflowPanics(t *testing.T) {
	// With maxCapacity == capacity the deque cannot grow, so PushBottom
	// beyond the window must panic (TryPushBottom is the graceful path).
	d := NewSplitMax[int](4, 4, false)
	c := newCtr()
	push(t, d, c, 1, 2, 3, 4)
	defer func() {
		if recover() == nil {
			t.Error("push beyond the maximum capacity did not panic")
		}
	}()
	push(t, d, c, 5)
}

// TestSplitSequentialModel drives a split deque with a random owner-side
// operation sequence against a simple slice model (property-based test).
func TestSplitSequentialModel(t *testing.T) {
	f := func(seed uint64, raceFix bool) bool {
		g := rng.New(seed)
		d := NewSplit[int](256, raceFix)
		c := newCtr()
		var model []int // model[0] is top; private/public split tracked separately
		publicCount := 0
		next := 0
		for step := 0; step < 500; step++ {
			switch op := g.Intn(10); {
			case op < 4: // push
				if len(model) >= 250 {
					continue
				}
				p := new(int)
				*p = next
				d.PushBottom(p, c)
				model = append(model, next)
				next++
			case op < 7: // pop bottom (private)
				got := d.PopBottom(c)
				if len(model) == publicCount {
					if got != nil {
						t.Logf("PopBottom on empty private part returned %d", *got)
						return false
					}
					if raceFix {
						// Repair bot as the scheduler contract requires.
						d.PopPublicBottom(c)
						if publicCount > 0 {
							model = model[:len(model)-1]
							publicCount--
						}
					}
					continue
				}
				want := model[len(model)-1]
				if got == nil || *got != want {
					t.Logf("PopBottom = %v, want %d", got, want)
					return false
				}
				model = model[:len(model)-1]
			case op < 8: // expose one
				if d.Expose(ExposeOne, c) == 1 {
					publicCount++
				}
			case op < 9: // owner takes from public part
				if len(model) > publicCount {
					// Contract: pop_public_bottom may only run when the
					// private part is empty (Listing 1 line 15).
					continue
				}
				got := d.PopPublicBottom(c)
				if publicCount == 0 {
					if got != nil {
						t.Logf("PopPublicBottom with empty public part returned %d", *got)
						return false
					}
					continue
				}
				// Youngest public element is at index publicCount-1.
				want := model[publicCount-1]
				if got == nil || *got != want {
					t.Logf("PopPublicBottom = %v, want %d", got, want)
					return false
				}
				copy(model[publicCount-1:], model[publicCount:])
				model = model[:len(model)-1]
				publicCount--
			default: // steal (single-threaded here, so deterministic)
				got, res := d.PopTop(c)
				switch {
				case publicCount > 0:
					if res != Stolen || got == nil || *got != model[0] {
						t.Logf("PopTop = %v,%v, want Stolen %d", got, res, model[0])
						return false
					}
					model = model[1:]
					publicCount--
				case len(model) > 0:
					if res != PrivateWork {
						t.Logf("PopTop = %v, want PrivateWork", res)
						return false
					}
				default:
					if res != Empty {
						t.Logf("PopTop = %v, want Empty", res)
						return false
					}
				}
			}
			if d.PrivateSize() != len(model)-publicCount {
				t.Logf("PrivateSize = %d, model says %d", d.PrivateSize(), len(model)-publicCount)
				return false
			}
			if d.PublicSize() != publicCount {
				t.Logf("PublicSize = %d, model says %d", d.PublicSize(), publicCount)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSplitConcurrentSteals hammers a split deque with one owner and many
// thieves and checks that every task is taken exactly once.
func TestSplitConcurrentSteals(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	for _, raceFix := range []bool{false, true} {
		d := NewSplit[int](1<<15, raceFix)
		ownerCtr := newCtr()
		var wg sync.WaitGroup
		counts := make([][]int32, thieves+1)
		for i := range counts {
			counts[i] = make([]int32, tasks)
		}

		stop := make(chan struct{})
		for th := 0; th < thieves; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				c := newCtr()
				for {
					task, res := d.PopTop(c)
					if res == Stolen {
						counts[th][*task]++
					}
					select {
					case <-stop:
						if _, res := d.PopTop(c); res == Empty {
							return
						}
					default:
					}
				}
			}(th)
		}

		// Owner: push all tasks, interleaving exposures and local pops.
		g := rng.New(uint64(tasks))
		pushed := 0
		for pushed < tasks || !d.IsEmpty() {
			if pushed < tasks && d.PrivateSize() < 64 {
				p := new(int)
				*p = pushed
				d.PushBottom(p, ownerCtr)
				pushed++
			}
			switch g.Intn(3) {
			case 0:
				d.Expose(ExposeOne, ownerCtr)
			case 1, 2:
				if task := d.PopBottom(ownerCtr); task != nil {
					counts[thieves][*task]++
				} else {
					// Private part empty: the scheduler contract says
					// the owner now pops from the public part (this
					// also repairs bot after a race-fix PopBottom).
					if task := d.PopPublicBottom(ownerCtr); task != nil {
						counts[thieves][*task]++
					}
				}
			}
		}
		close(stop)
		wg.Wait()

		for i := 0; i < tasks; i++ {
			var n int32
			for th := range counts {
				n += counts[th][i]
			}
			if n != 1 {
				t.Fatalf("raceFix=%v: task %d taken %d times, want exactly 1", raceFix, i, n)
			}
		}
	}
}

func TestUnexposeAllReclaimsPublicWork(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	push(t, d, c, 1, 2, 3, 4)
	d.Expose(ExposeHalf, c) // exposes 2: tasks 1 and 2
	// Drain the private part as the scheduler would.
	for d.PopBottom(c) != nil {
	}
	if d.PublicSize() != 2 || d.PrivateSize() != 0 {
		t.Fatalf("setup wrong: public %d private %d", d.PublicSize(), d.PrivateSize())
	}
	got := d.UnexposeAll(c)
	if got != 2 {
		t.Fatalf("UnexposeAll reclaimed %d, want 2", got)
	}
	if d.PublicSize() != 0 || d.PrivateSize() != 2 {
		t.Fatalf("after unexpose: public %d private %d", d.PublicSize(), d.PrivateSize())
	}
	// Reclaimed tasks pop in LIFO order, synchronization-free.
	fences := c.Get(counters.Fence)
	a := d.PopBottom(c)
	b := d.PopBottom(c)
	if a == nil || b == nil || *a != 2 || *b != 1 {
		t.Fatalf("pops after unexpose = %v, %v; want 2, 1", a, b)
	}
	if c.Get(counters.Fence) != fences {
		t.Error("pops after unexpose paid fences")
	}
}

func TestUnexposeAllEmptyAndAllStolen(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, thief := newCtr(), newCtr()
	if got := d.UnexposeAll(owner); got != 0 {
		t.Fatalf("UnexposeAll on empty deque = %d", got)
	}
	push(t, d, owner, 1)
	d.Expose(ExposeOne, owner)
	if _, res := d.PopTop(thief); res != Stolen {
		t.Fatal("setup steal failed")
	}
	if got := d.UnexposeAll(owner); got != 0 {
		t.Fatalf("UnexposeAll after full steal = %d, want 0", got)
	}
}

func TestUnexposeAllCountsSync(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	push(t, d, c, 1, 2)
	d.Expose(ExposeHalf, c)
	for d.PopBottom(c) != nil {
	}
	f0, cas0 := c.Get(counters.Fence), c.Get(counters.CAS)
	d.UnexposeAll(c)
	if c.Get(counters.Fence)-f0 != 1 || c.Get(counters.CAS)-cas0 != 1 {
		t.Errorf("UnexposeAll cost %d fences %d CAS, want 1 and 1",
			c.Get(counters.Fence)-f0, c.Get(counters.CAS)-cas0)
	}
}

// TestUnexposeAllConcurrentWithThieves checks that under a steal storm
// every task is taken exactly once even while the owner repeatedly
// exposes and un-exposes.
func TestUnexposeAllConcurrentWithThieves(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	d := NewSplit[int](1<<15, false)
	ownerCtr := newCtr()
	counts := make([][]int32, thieves+1)
	for i := range counts {
		counts[i] = make([]int32, tasks)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := newCtr()
			for {
				task, res := d.PopTop(c)
				if res == Stolen {
					counts[th][*task]++
				}
				select {
				case <-stop:
					if _, res := d.PopTop(c); res == Empty {
						return
					}
				default:
				}
			}
		}(th)
	}
	g := rng.New(99)
	pushed := 0
	for pushed < tasks || !d.IsEmpty() {
		if pushed < tasks && d.PrivateSize() < 64 {
			p := new(int)
			*p = pushed
			d.PushBottom(p, ownerCtr)
			pushed++
		}
		switch g.Intn(4) {
		case 0:
			d.Expose(ExposeHalf, ownerCtr)
		case 1, 2:
			if task := d.PopBottom(ownerCtr); task != nil {
				counts[thieves][*task]++
			} else if d.UnexposeAll(ownerCtr) > 0 {
				if task := d.PopBottom(ownerCtr); task != nil {
					counts[thieves][*task]++
				}
			}
		case 3:
			// Lace-style: only unexpose when private is drained.
			if d.PrivateSize() == 0 {
				d.UnexposeAll(ownerCtr)
			}
		}
	}
	close(stop)
	wg.Wait()
	for i := 0; i < tasks; i++ {
		var n int32
		for th := range counts {
			n += counts[th][i]
		}
		if n != 1 {
			t.Fatalf("task %d taken %d times, want exactly 1", i, n)
		}
	}
}

// TestSplitABATagPreventsStaleSteal reproduces the ABA scenario the age
// tag exists for: a thief holds a stale age snapshot across a deque
// drain-and-refill; its CAS must fail rather than steal a new task with
// stale indices.
func TestSplitABATagPreventsStaleSteal(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, thief := newCtr(), newCtr()

	// Owner pushes and exposes one task.
	push(t, d, owner, 1)
	d.Expose(ExposeOne, owner)

	// The thief reads state as PopTop would but stops before its CAS.
	staleAge := d.age.Load()
	top, tag := unpackAge(staleAge)
	if d.publicBot.Load() <= uint64(top) {
		t.Fatal("setup: no public work visible to the thief")
	}

	// Owner drains the deque through the public path (indices reset,
	// tag bumps) and refills it with a new exposed task at the same
	// positions.
	if got := d.PopPublicBottom(owner); got == nil || *got != 1 {
		t.Fatalf("drain got %v", got)
	}
	push(t, d, owner, 2)
	d.Expose(ExposeOne, owner)

	// The thief's stale CAS must fail: same top index, different tag.
	if d.age.CompareAndSwap(staleAge, packAge(top+1, tag)) {
		t.Fatal("stale CAS succeeded; ABA tag did not protect the steal")
	}
	// A fresh attempt succeeds and yields the new task.
	got, res := d.PopTop(thief)
	if res != Stolen || got == nil || *got != 2 {
		t.Fatalf("fresh steal = %v, %v; want Stolen 2", got, res)
	}
}
