package deque

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// This file exhaustively exercises the §4 repair protocol: the race-fix
// PopBottom pre-decrements bot, so a nil return leaves bot == publicBot-1
// (or 0 on a fully empty deque), and the next owner-side operation —
// PopPublicBottom or UnexposeAll, per the scheduler loop — must restore
// the index invariant top <= publicBot <= bot on EVERY one of its
// branches. Each subtest drives one branch and then asserts the raw
// indices directly. The bounded model checker (internal/verify) covers
// the same branches under all interleavings; these tests pin the
// concrete implementation.

// assertIndices checks the raw index state of a split deque.
func assertIndices(t *testing.T, d *SplitDeque[int], wantTop, wantPB, wantBot uint64) {
	t.Helper()
	top, _ := unpackAge(d.age.Load())
	if uint64(top) != wantTop || d.publicBot.Load() != wantPB || d.bot.Load() != wantBot {
		t.Fatalf("indices (top,publicBot,bot) = (%d,%d,%d), want (%d,%d,%d)",
			top, d.publicBot.Load(), d.bot.Load(), wantTop, wantPB, wantBot)
	}
}

// popNil performs a race-fix PopBottom that must fail, leaving the
// deque in the mid-repair state.
func popNil(t *testing.T, d *SplitDeque[int]) {
	t.Helper()
	if got := d.PopBottom(newCtr()); got != nil {
		t.Fatalf("PopBottom = %v, want nil", *got)
	}
}

func TestRaceFixRepairPopPublicEmptyDeque(t *testing.T) {
	// Branch 1 (Listing 2 line 10 + §4 repair): publicBot == 0, the
	// deque is empty and already reset; bot is (re)stored to 0.
	d := NewSplit[int](8, true)
	c := newCtr()
	popNil(t, d)
	if got := d.PopPublicBottom(c); got != nil {
		t.Fatalf("PopPublicBottom on empty = %v, want nil", *got)
	}
	assertIndices(t, d, 0, 0, 0)
	push(t, d, c, 7)
	if got := d.PopBottom(c); got == nil || *got != 7 {
		t.Fatalf("PopBottom after repair = %v, want 7", got)
	}
}

func TestRaceFixRepairPopPublicCommonPath(t *testing.T) {
	// Branch 2: more public tasks remain below top; bot lands on the new
	// publicBot (one below the task just taken).
	d := NewSplit[int](8, true)
	c := newCtr()
	push(t, d, c, 1, 2, 3)
	if n := d.Expose(ExposeHalf, c); n != 2 {
		t.Fatalf("Expose = %d, want 2", n)
	}
	if got := d.PopBottom(c); got == nil || *got != 3 {
		t.Fatalf("PopBottom = %v, want 3", got)
	}
	popNil(t, d) // bot: 2 -> 1 == publicBot-1
	got := d.PopPublicBottom(c)
	if got == nil || *got != 2 {
		t.Fatalf("PopPublicBottom = %v, want 2", got)
	}
	assertIndices(t, d, 0, 1, 1)
}

func TestRaceFixRepairPopPublicEmptyingCASWin(t *testing.T) {
	// Branch 3: the last public task is taken by the owner; the CAS on
	// age wins against (absent) thieves and every index resets to zero.
	d := NewSplit[int](8, true)
	c := newCtr()
	push(t, d, c, 1)
	if n := d.Expose(ExposeOne, c); n != 1 {
		t.Fatalf("Expose = %d, want 1", n)
	}
	popNil(t, d) // bot: 1 -> 0 == publicBot-1
	got := d.PopPublicBottom(c)
	if got == nil || *got != 1 {
		t.Fatalf("PopPublicBottom = %v, want 1", got)
	}
	assertIndices(t, d, 0, 0, 0)
}

func TestRaceFixRepairPopPublicEmptyingAfterSteal(t *testing.T) {
	// Branch 4: a thief already stole the last public task (top advanced
	// past localBot), so the emptying path returns nil without a CAS —
	// and must still reset bot and publicBot.
	d := NewSplit[int](8, true)
	c, thief := newCtr(), newCtr()
	push(t, d, c, 1)
	d.Expose(ExposeOne, c)
	if got, res := d.PopTop(thief); res != Stolen || *got != 1 {
		t.Fatalf("PopTop = (%v,%v), want (1,Stolen)", got, res)
	}
	popNil(t, d) // bot: 1 -> 0, publicBot still 1
	if got := d.PopPublicBottom(c); got != nil {
		t.Fatalf("PopPublicBottom after steal = %v, want nil", *got)
	}
	assertIndices(t, d, 0, 0, 0)
	push(t, d, c, 8)
	if got := d.PopBottom(c); got == nil || *got != 8 {
		t.Fatalf("PopBottom after repair = %v, want 8", got)
	}
}

func TestRaceFixRepairUnexposeAllEmpty(t *testing.T) {
	// UnexposeAll branch pb == 0: nothing public, bot re-zeroed.
	d := NewSplit[int](8, true)
	c := newCtr()
	popNil(t, d)
	if n := d.UnexposeAll(c); n != 0 {
		t.Fatalf("UnexposeAll = %d, want 0", n)
	}
	assertIndices(t, d, 0, 0, 0)
}

func TestRaceFixRepairUnexposeAllAllStolen(t *testing.T) {
	// UnexposeAll branch pb <= top: everything public was stolen; bot is
	// restored to publicBot (empty deque, indices equal but non-zero).
	d := NewSplit[int](8, true)
	c, thief := newCtr(), newCtr()
	push(t, d, c, 1)
	d.Expose(ExposeOne, c)
	if _, res := d.PopTop(thief); res != Stolen {
		t.Fatalf("PopTop result %v, want Stolen", res)
	}
	popNil(t, d) // bot: 1 -> 0, publicBot == 1, top == 1
	if n := d.UnexposeAll(c); n != 0 {
		t.Fatalf("UnexposeAll = %d, want 0", n)
	}
	assertIndices(t, d, 1, 1, 1)
	push(t, d, c, 9)
	if got := d.PopBottom(c); got == nil || *got != 9 {
		t.Fatalf("PopBottom after repair = %v, want 9", got)
	}
}

func TestRaceFixRepairUnexposeAllReclaim(t *testing.T) {
	// UnexposeAll CAS-win branch: the public part is reclaimed wholesale
	// and bot is restored above it.
	d := NewSplit[int](8, true)
	c := newCtr()
	push(t, d, c, 1, 2)
	d.Expose(ExposeOne, c)
	d.Expose(ExposeOne, c)
	popNil(t, d) // bot: 2 -> 1 == publicBot-1
	if n := d.UnexposeAll(c); n != 2 {
		t.Fatalf("UnexposeAll = %d, want 2", n)
	}
	assertIndices(t, d, 0, 0, 2)
	for want := 2; want >= 1; want-- {
		if got := d.PopBottom(c); got == nil || *got != want {
			t.Fatalf("PopBottom = %v, want %d", got, want)
		}
	}
}

// TestRaceFixRepairConcurrent drives the remaining, inherently racy
// branch — the emptying path losing its age CAS to a concurrent thief —
// by hammering owner drains against two thieves and checking exact-once
// consumption. The model checker proves the property over all
// interleavings on small bounds; this test exercises the real atomics.
func TestRaceFixRepairConcurrent(t *testing.T) {
	const rounds = 2000
	const batch = 6
	d := NewSplit[int](16, true)
	tasks := make([]int, rounds*batch)
	var hits = make([]atomic.Int32, rounds*batch)
	var done atomic.Bool

	var wg sync.WaitGroup
	for th := 0; th < 2; th++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := newCtr()
			for !done.Load() {
				if got, res := d.PopTop(c); res == Stolen {
					hits[*got].Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}

	c := newCtr()
	for r := 0; r < rounds; r++ {
		for i := 0; i < batch; i++ {
			id := r*batch + i
			tasks[id] = id
			d.PushBottom(&tasks[id], c)
		}
		d.Expose(ExposeHalf, c)
		for {
			if got := d.PopBottom(c); got != nil {
				hits[*got].Add(1)
				continue
			}
			if got := d.PopPublicBottom(c); got != nil {
				hits[*got].Add(1)
				continue
			}
			if d.IsEmpty() {
				break
			}
		}
	}
	done.Store(true)
	wg.Wait()

	for id := range hits {
		if n := hits[id].Load(); n != 1 {
			t.Fatalf("task %d consumed %d times, want exactly once", id, n)
		}
	}
	if !d.IsEmpty() {
		t.Fatal("deque not empty after drain")
	}
}
