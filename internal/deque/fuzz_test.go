package deque

import (
	"testing"

	"lcws/internal/counters"
)

// FuzzSplitDequeOwnerOps drives a split deque with an arbitrary owner-side
// operation string against a slice model, checking LIFO/FIFO semantics and
// size accounting. Each byte of ops selects an operation. Run with
// `go test -fuzz FuzzSplitDequeOwnerOps ./internal/deque` to explore; the
// seed corpus doubles as a regression test in normal runs.
func FuzzSplitDequeOwnerOps(f *testing.F) {
	f.Add([]byte("ppooxpso"), false)
	f.Add([]byte("pppxxsssooo"), true)
	f.Add([]byte("pxopxopxo"), false)
	f.Add([]byte("ppppxxxxuoooo"), true)
	f.Add([]byte("pppphbboo"), false)
	f.Add([]byte("ppppppxxxxxxbbuoo"), true)
	f.Fuzz(func(t *testing.T, ops []byte, raceFix bool) {
		d := NewSplit[int](256, raceFix)
		c := counters.NewSet(1).Worker(0)
		var model []int // all live values, oldest first
		publicCount := 0
		next := 0
		for _, op := range ops {
			switch op {
			case 'p': // push
				if len(model) >= 250 {
					continue
				}
				v := new(int)
				*v = next
				d.PushBottom(v, c)
				model = append(model, next)
				next++
			case 'x': // expose one
				if d.Expose(ExposeOne, c) == 1 {
					publicCount++
				}
			case 'h': // expose half
				publicCount += d.Expose(ExposeHalf, c)
			case 'o': // pop bottom (private), repair via public on failure
				got := d.PopBottom(c)
				if len(model) > publicCount {
					if got == nil || *got != model[len(model)-1] {
						t.Fatalf("PopBottom = %v, model wants %d", got, model[len(model)-1])
					}
					model = model[:len(model)-1]
				} else {
					if got != nil {
						t.Fatalf("PopBottom on empty private part returned %d", *got)
					}
					got := d.PopPublicBottom(c)
					if publicCount > 0 {
						if got == nil || *got != model[len(model)-1] {
							t.Fatalf("PopPublicBottom = %v, model wants %d", got, model[len(model)-1])
						}
						model = model[:len(model)-1]
						publicCount--
					} else if got != nil {
						t.Fatalf("PopPublicBottom on empty deque returned %d", *got)
					}
				}
			case 'b': // batched steal (single-threaded: deterministic)
				var buf [4]*int
				n, res := d.PopTopHalf(buf[:], c)
				switch {
				case publicCount > 0:
					want := (publicCount + 1) / 2
					if want > len(buf) {
						want = len(buf)
					}
					if res != Stolen || n != want {
						t.Fatalf("PopTopHalf = %d,%v, model wants Stolen %d", n, res, want)
					}
					for i := 0; i < n; i++ {
						if buf[i] == nil || *buf[i] != model[i] {
							t.Fatalf("PopTopHalf buf[%d] = %v, model wants %d", i, buf[i], model[i])
						}
					}
					model = model[n:]
					publicCount -= n
				case len(model) > 0:
					if res != PrivateWork || n != 0 {
						t.Fatalf("PopTopHalf = %d,%v, want 0,PrivateWork", n, res)
					}
				default:
					if res != Empty || n != 0 {
						t.Fatalf("PopTopHalf = %d,%v, want 0,Empty", n, res)
					}
				}
			case 's': // steal (single-threaded: deterministic)
				got, res := d.PopTop(c)
				switch {
				case publicCount > 0:
					if res != Stolen || got == nil || *got != model[0] {
						t.Fatalf("PopTop = %v,%v, model wants Stolen %d", got, res, model[0])
					}
					model = model[1:]
					publicCount--
				case len(model) > 0:
					if res != PrivateWork {
						t.Fatalf("PopTop = %v, want PrivateWork", res)
					}
				default:
					if res != Empty {
						t.Fatalf("PopTop = %v, want Empty", res)
					}
				}
			case 'u': // unexpose (only legal when private part empty)
				if len(model) > publicCount {
					continue
				}
				got := d.UnexposeAll(c)
				if got != publicCount {
					t.Fatalf("UnexposeAll = %d, model has %d public", got, publicCount)
				}
				publicCount = 0
			default:
				continue
			}
			if d.PrivateSize() != len(model)-publicCount {
				t.Fatalf("PrivateSize = %d, model %d (op %q)", d.PrivateSize(), len(model)-publicCount, op)
			}
			if d.PublicSize() != publicCount {
				t.Fatalf("PublicSize = %d, model %d (op %q)", d.PublicSize(), publicCount, op)
			}
		}
	})
}

// FuzzChaseLevOwnerOps drives the WS baseline deque against a slice model
// the same way FuzzSplitDequeOwnerOps drives the split deque. With
// batched true it drives the NewChaseLevBatch variant, whose owner pop
// and batched steal ('n') must preserve the same sequential semantics.
func FuzzChaseLevOwnerOps(f *testing.F) {
	f.Add([]byte("ppooso"), false)
	f.Add([]byte("ppppssssoooo"), false)
	f.Add([]byte("ppppnnoo"), true)
	f.Add([]byte("pppposnpono"), true)
	f.Fuzz(func(t *testing.T, ops []byte, batched bool) {
		var d *ChaseLev[int]
		if batched {
			d = NewChaseLevBatch[int](256)
		} else {
			d = NewChaseLev[int](256)
		}
		c := counters.NewSet(1).Worker(0)
		var model []int
		next := 0
		for _, op := range ops {
			switch op {
			case 'p':
				if len(model) >= 250 {
					continue
				}
				v := new(int)
				*v = next
				d.PushBottom(v, c)
				model = append(model, next)
				next++
			case 'o':
				got := d.PopBottom(c)
				if len(model) == 0 {
					if got != nil {
						t.Fatalf("PopBottom on empty returned %d", *got)
					}
					continue
				}
				if got == nil || *got != model[len(model)-1] {
					t.Fatalf("PopBottom = %v, want %d", got, model[len(model)-1])
				}
				model = model[:len(model)-1]
			case 's':
				got, res := d.PopTop(c)
				if len(model) == 0 {
					if res != Empty {
						t.Fatalf("PopTop on empty = %v", res)
					}
					continue
				}
				if res != Stolen || got == nil || *got != model[0] {
					t.Fatalf("PopTop = %v,%v, want Stolen %d", got, res, model[0])
				}
				model = model[1:]
			case 'n': // batched steal (single-threaded: deterministic)
				var buf [4]*int
				n, res := d.PopTopN(buf[:], c)
				if len(model) == 0 {
					if res != Empty || n != 0 {
						t.Fatalf("PopTopN on empty = %d,%v", n, res)
					}
					continue
				}
				want := 1
				if batched {
					want = (len(model) + 1) / 2
					if want > len(buf) {
						want = len(buf)
					}
				}
				if res != Stolen || n != want {
					t.Fatalf("PopTopN = %d,%v, model wants Stolen %d", n, res, want)
				}
				for i := 0; i < n; i++ {
					if buf[i] == nil || *buf[i] != model[i] {
						t.Fatalf("PopTopN buf[%d] = %v, model wants %d", i, buf[i], model[i])
					}
				}
				model = model[n:]
			default:
				continue
			}
			if d.Size() != len(model) {
				t.Fatalf("Size = %d, model %d", d.Size(), len(model))
			}
		}
	})
}
