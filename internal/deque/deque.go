// Package deque provides the two work-stealing deques compared by the
// paper: the LCWS split deque of Rito and Paulino (Listing 2 of the paper,
// including the §4 signal-safe pop_bottom variant and the §4.1 exposure
// policies) and a Chase-Lev/ABP style fully concurrent deque representing
// Parlay's stock Work Stealing baseline.
//
// Both deques are generic over the element type and store pointers. All
// cross-thread fields are Go atomics: Go's sync/atomic operations are
// sequentially consistent, so the fence placement that Listing 2 needs
// under C++ relaxed atomics is implied here. Because the fences therefore
// cannot be elided physically, every operation instead *accounts* the
// fences and CAS instructions the C++ reference implementation would
// execute, against the counting model in internal/counters/model.go. The
// paper's synchronization profiles (Figures 3 and 8) are ratios of those
// counts.
//
// Ownership discipline: exactly one goroutine (the owner) may call
// PushBottom, PopBottom, PopPublicBottom and Expose; any goroutine may call
// PopTop, PrivateSize and TotalSize. The emulated signal handler runs on
// the owner's goroutine (see internal/core), preserving this discipline
// exactly as a POSIX signal handler runs on the victim's thread.
package deque

import "fmt"

// StealResult is the outcome of a PopTop steal attempt.
type StealResult uint8

const (
	// Empty means the deque held no work at all.
	Empty StealResult = iota
	// Stolen means a task was successfully taken.
	Stolen
	// Abort means the thief lost a CAS race and should retry elsewhere
	// (the ABORT result of Listing 2).
	Abort
	// PrivateWork means the public part was empty but the private part
	// holds tasks: the thief should notify the owner to expose work
	// (the PRIVATE_WORK result of Listing 2).
	PrivateWork
)

// String returns a short name for the steal result.
func (r StealResult) String() string {
	switch r {
	case Empty:
		return "empty"
	case Stolen:
		return "stolen"
	case Abort:
		return "abort"
	case PrivateWork:
		return "private-work"
	default:
		return fmt.Sprintf("stealresult(%d)", uint8(r))
	}
}

// ExposeMode selects the work exposure policy of Expose
// (paper §3.1, §4.1.1 and §4.1.2).
type ExposeMode uint8

const (
	// ExposeOne transfers one task from the private to the public part
	// when the private part is non-empty (base LCWS behaviour,
	// update_public_bottom of Listing 2).
	ExposeOne ExposeMode = iota
	// ExposeConservative transfers one task only when the private part
	// holds at least two tasks (§4.1.1), leaving the bottom-most task
	// private so the original pop_bottom stays race-free.
	ExposeConservative
	// ExposeHalf transfers round(r/2) tasks when the private part holds
	// r >= 3 tasks, and otherwise behaves like ExposeOne (§4.1.2).
	ExposeHalf
)

// String returns a short name for the exposure mode.
func (m ExposeMode) String() string {
	switch m {
	case ExposeOne:
		return "expose-one"
	case ExposeConservative:
		return "expose-conservative"
	case ExposeHalf:
		return "expose-half"
	default:
		return fmt.Sprintf("exposemode(%d)", uint8(m))
	}
}

// RelClaim is a thief's private claim memory for one victim under the
// relaxed (MultFree) steal protocol. It records one past the highest
// absolute deque index this thief has ever claimed from that victim,
// together with the victim's index epoch the memory belongs to: within
// one epoch a relaxed deque never resets or reuses an exposed absolute
// index, so keeping the memory monotone guarantees the thief returns
// each index at most once, which caps a task's multiplicity at the
// number of thieves per epoch. When the victim resets its indices (a
// rare maintenance operation before the 32-bit top could wrap — see
// SplitDeque's index-reset notes), the epoch moves on and the memory is
// re-armed from zero on the thief's next claim. The zero value is ready
// to use. Single-writer: only the owning thief reads or writes it.
//
//lcws:manifest
type RelClaim struct {
	epoch uint64 //lcws:field owner(SplitDeque) — the victim's index epoch this memory is valid for
	next  uint64 //lcws:field owner(SplitDeque) — one past the highest index claimed; advanced by the thief through the deque's relaxed claim methods
}

// age packs the top index (low 32 bits) and the ABA tag (high 32 bits)
// into the single word that PopTop CASes.
func packAge(top, tag uint32) uint64 { return uint64(tag)<<32 | uint64(top) }

func unpackAge(a uint64) (top, tag uint32) {
	return uint32(a), uint32(a >> 32)
}

// Push-stamp layout. The owner stamps every task it pushes onto a
// relaxed deque with PushStamp(): the absolute push index in the low 32
// bits and the deque's index epoch in bits 32..62. A relaxed thief
// re-reads the stamp from the task it loaded and honors the claim only
// when the stamp matches the (epoch, index) it claimed — the post-read
// validation that makes the fence-free slot read safe against the
// backing array's circularity: if the live window slid a full capacity
// past a stalled thief, the slot holds the task pushed at claim+k*cap,
// whose stamp cannot match. The exclusive CAS paths need no stamp (the
// age CAS itself invalidates stale reads).
//
// StampExposed is the sticky high bit: a steal-batch remnant landing in
// a new deque is restamped in the receiver's index domain with the bit
// set, so the origin forker's recycling gate (NeverExposed) keeps
// reporting "was exposed" even though the receiver-domain index says
// nothing about the origin deque.
const (
	// StampExposed marks a task ever-exposed regardless of its index
	// (set on cross-deque restamps of steal-batch remnants).
	StampExposed uint64 = 1 << 63

	stampEpochShift        = 32
	stampEpochMask  uint64 = (1<<31 - 1) << stampEpochShift
	stampIdxMask    uint64 = 1<<32 - 1
)

// makeStamp packs an index epoch and an absolute push index into a
// stamp (without the StampExposed bit).
func makeStamp(epoch, idx uint64) uint64 {
	return epoch<<stampEpochShift&stampEpochMask | idx&stampIdxMask
}

// DefaultCapacity is the *initial* per-deque task array size used when a
// non-positive capacity is requested. Unlike the paper's fixed-size
// array, both deques grow geometrically (owner-side doubling, published
// with a single atomic store) up to their maximum capacity, so the
// initial capacity only sets the first allocation — capacity bounds the
// momentary live window (bot - top), and the window may exceed any past
// capacity without panicking as long as it stays under the maximum.
const DefaultCapacity = 1 << 16

// DefaultMaxCapacity is the growth ceiling used when a non-positive
// maximum capacity is requested. At the ceiling TryPushBottom reports
// failure instead of growing, and the scheduler core spills the oldest
// tasks to an unbounded per-worker overflow list (see internal/core), so
// pathological spawn depths degrade gracefully instead of panicking.
const DefaultMaxCapacity = 1 << 22

// normalizeCapacity rounds a requested capacity up to a power of two
// (DefaultCapacity when non-positive) so both deques can use mask
// indexing into their circular buffers.
func normalizeCapacity(capacity int) int {
	if capacity <= 0 {
		return DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return size
}

// normalizeMaxCapacity rounds the growth ceiling up to a power of two
// (DefaultMaxCapacity when non-positive) and floors it at the initial
// capacity, so a deque is never constructed already beyond its ceiling.
func normalizeMaxCapacity(maxCapacity int, initial uint64) uint64 {
	m := uint64(DefaultMaxCapacity)
	if maxCapacity > 0 {
		m = 1
		for m < uint64(maxCapacity) {
			m <<= 1
		}
	}
	if m < initial {
		m = initial
	}
	return m
}
