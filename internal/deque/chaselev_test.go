package deque

import (
	"sync"
	"testing"
	"testing/quick"

	"lcws/internal/counters"
	"lcws/internal/rng"
)

func TestChaseLevPushPopLIFO(t *testing.T) {
	d := NewChaseLev[int](64)
	c := newCtr()
	push2 := func(v int) {
		p := new(int)
		*p = v
		d.PushBottom(p, c)
	}
	push2(1)
	push2(2)
	push2(3)
	for want := 3; want >= 1; want-- {
		got := d.PopBottom(c)
		if got == nil || *got != want {
			t.Fatalf("PopBottom = %v, want %d", got, want)
		}
	}
	if d.PopBottom(c) != nil {
		t.Fatal("PopBottom on empty deque returned a task")
	}
}

func TestChaseLevFenceAccounting(t *testing.T) {
	d := NewChaseLev[int](64)
	c := newCtr()
	p := new(int)
	d.PushBottom(p, c)
	if got := c.Get(counters.Fence); got != counters.WSPushFences {
		t.Errorf("push cost %d fences, want %d", got, counters.WSPushFences)
	}
	base := c.Get(counters.Fence)
	d.PopBottom(c)
	if got := c.Get(counters.Fence) - base; got != counters.WSPopFences {
		t.Errorf("pop cost %d fences, want %d", got, counters.WSPopFences)
	}
	// Popping the last element also costs a CAS (the race with thieves).
	if got := c.Get(counters.CAS); got != counters.WSPopRaceCAS {
		t.Errorf("last-element pop cost %d CAS, want %d", got, counters.WSPopRaceCAS)
	}
	// An empty pop still costs the store-load fence.
	base = c.Get(counters.Fence)
	d.PopBottom(c)
	if got := c.Get(counters.Fence) - base; got != counters.WSPopFences {
		t.Errorf("empty pop cost %d fences, want %d", got, counters.WSPopFences)
	}
}

func TestChaseLevStealAccounting(t *testing.T) {
	d := NewChaseLev[int](64)
	owner, thief := newCtr(), newCtr()
	if _, res := d.PopTop(thief); res != Empty {
		t.Fatalf("steal from empty deque = %v, want Empty", res)
	}
	if got := thief.Get(counters.Fence); got != counters.WSStealFences {
		t.Errorf("empty steal cost %d fences, want %d", got, counters.WSStealFences)
	}
	if got := thief.Get(counters.CAS); got != 0 {
		t.Errorf("empty steal cost %d CAS, want 0", got)
	}
	p := new(int)
	*p = 42
	d.PushBottom(p, owner)
	task, res := d.PopTop(thief)
	if res != Stolen || task == nil || *task != 42 {
		t.Fatalf("steal = %v, %v; want Stolen 42", task, res)
	}
	if got := thief.Get(counters.CAS); got != counters.WSStealCAS {
		t.Errorf("successful steal cost %d CAS, want %d", got, counters.WSStealCAS)
	}
}

func TestChaseLevStealsAreFIFO(t *testing.T) {
	d := NewChaseLev[int](64)
	owner, thief := newCtr(), newCtr()
	for v := 1; v <= 3; v++ {
		p := new(int)
		*p = v
		d.PushBottom(p, owner)
	}
	for want := 1; want <= 3; want++ {
		task, res := d.PopTop(thief)
		if res != Stolen || *task != want {
			t.Fatalf("steal = %v, %v; want %d", task, res, want)
		}
	}
}

func TestChaseLevNeverReportsPrivateWork(t *testing.T) {
	d := NewChaseLev[int](64)
	owner, thief := newCtr(), newCtr()
	p := new(int)
	d.PushBottom(p, owner)
	_, res := d.PopTop(thief)
	if res == PrivateWork {
		t.Fatal("Chase-Lev deque reported PrivateWork")
	}
}

func TestChaseLevCircularWraparound(t *testing.T) {
	d := NewChaseLev[int](8)
	c := newCtr()
	// Push/pop far more elements than the capacity; the circular buffer
	// must wrap cleanly.
	for i := 0; i < 1000; i++ {
		p := new(int)
		*p = i
		d.PushBottom(p, c)
		if i%3 == 0 {
			d.PopBottom(c)
		}
		for d.Size() > 4 {
			d.PopBottom(c)
		}
	}
}

func TestChaseLevOverflowPanics(t *testing.T) {
	// With maxCapacity == capacity the deque cannot grow, so PushBottom
	// beyond the window must panic (TryPushBottom is the graceful path).
	d := NewChaseLevMax[int](4, 4)
	c := newCtr()
	defer func() {
		if recover() == nil {
			t.Error("push beyond the maximum capacity did not panic")
		}
	}()
	for i := 0; i < 10; i++ {
		p := new(int)
		d.PushBottom(p, c)
	}
}

func TestChaseLevSequentialModel(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		d := NewChaseLev[int](256)
		c := newCtr()
		var model []int
		next := 0
		for step := 0; step < 500; step++ {
			switch op := g.Intn(8); {
			case op < 4: // push
				if len(model) >= 250 {
					continue
				}
				p := new(int)
				*p = next
				d.PushBottom(p, c)
				model = append(model, next)
				next++
			case op < 6: // pop bottom
				got := d.PopBottom(c)
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				if got == nil || *got != want {
					return false
				}
				model = model[:len(model)-1]
			default: // steal
				got, res := d.PopTop(c)
				if len(model) == 0 {
					if res != Empty {
						return false
					}
					continue
				}
				if res != Stolen || got == nil || *got != model[0] {
					return false
				}
				model = model[1:]
			}
			if d.Size() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChaseLevConcurrentSteals(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	d := NewChaseLev[int](1 << 15)
	ownerCtr := newCtr()
	counts := make([][]int32, thieves+1)
	for i := range counts {
		counts[i] = make([]int32, tasks)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := newCtr()
			for {
				task, res := d.PopTop(c)
				if res == Stolen {
					counts[th][*task]++
				}
				select {
				case <-stop:
					if _, res := d.PopTop(c); res == Empty {
						return
					}
				default:
				}
			}
		}(th)
	}
	g := rng.New(uint64(tasks))
	pushed := 0
	for pushed < tasks || !d.IsEmpty() {
		if pushed < tasks && d.Size() < 64 {
			p := new(int)
			*p = pushed
			d.PushBottom(p, ownerCtr)
			pushed++
		}
		if g.Intn(2) == 0 {
			if task := d.PopBottom(ownerCtr); task != nil {
				counts[thieves][*task]++
			}
		}
	}
	close(stop)
	wg.Wait()
	for i := 0; i < tasks; i++ {
		var n int32
		for th := range counts {
			n += counts[th][i]
		}
		if n != 1 {
			t.Fatalf("task %d taken %d times, want exactly 1", i, n)
		}
	}
}

func TestStealResultAndExposeModeStrings(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{Empty.String(), "empty"},
		{Stolen.String(), "stolen"},
		{Abort.String(), "abort"},
		{PrivateWork.String(), "private-work"},
		{ExposeOne.String(), "expose-one"},
		{ExposeConservative.String(), "expose-conservative"},
		{ExposeHalf.String(), "expose-half"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
}
