package deque

import (
	"sync"
	"testing"
	"testing/quick"

	"lcws/internal/counters"
	"lcws/internal/rng"
)

// --- SplitDeque.PopTopHalf ---

func TestPopTopHalfClaimsHalfTopFirst(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, thief := newCtr(), newCtr()
	for v := 0; v < 8; v++ {
		p := new(int)
		*p = v
		d.PushBottom(p, owner)
	}
	if d.Expose(ExposeHalf, owner) != 4 {
		t.Fatal("expected 4 tasks exposed")
	}
	var buf [8]*int
	n, res := d.PopTopHalf(buf[:], thief)
	if res != Stolen || n != 2 { // round(4/2)
		t.Fatalf("PopTopHalf = %d,%v; want 2,Stolen", n, res)
	}
	for i := 0; i < n; i++ {
		if *buf[i] != i {
			t.Errorf("buf[%d] = %d, want %d (top-first order)", i, *buf[i], i)
		}
	}
	if d.PublicSize() != 2 {
		t.Errorf("PublicSize after batch = %d, want 2", d.PublicSize())
	}
	if d.PrivateSize() != 4 {
		t.Errorf("PrivateSize after batch = %d, want 4", d.PrivateSize())
	}
}

func TestPopTopHalfRoundsUpAndCapsAtBuf(t *testing.T) {
	for _, tc := range []struct {
		public, bufLen, want int
	}{
		{1, 8, 1}, // round(1/2) -> 1
		{2, 8, 1},
		{3, 8, 2},
		{5, 8, 3},
		{7, 2, 2}, // capped by buffer
		{8, 8, 4},
	} {
		d := NewSplit[int](64, false)
		c := newCtr()
		for v := 0; v < tc.public; v++ {
			p := new(int)
			*p = v
			d.PushBottom(p, c)
			d.Expose(ExposeOne, c)
		}
		buf := make([]*int, tc.bufLen)
		n, res := d.PopTopHalf(buf, c)
		if res != Stolen || n != tc.want {
			t.Errorf("public=%d buf=%d: PopTopHalf = %d,%v; want %d,Stolen",
				tc.public, tc.bufLen, n, res, tc.want)
		}
	}
}

func TestPopTopHalfEmptyAndPrivateWork(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	var buf [4]*int
	if n, res := d.PopTopHalf(buf[:], c); res != Empty || n != 0 {
		t.Fatalf("PopTopHalf on empty = %d,%v; want 0,Empty", n, res)
	}
	if c.Get(counters.CAS) != 0 {
		t.Error("empty batched steal attempt accounted a CAS")
	}
	p := new(int)
	d.PushBottom(p, c)
	if n, res := d.PopTopHalf(buf[:], c); res != PrivateWork || n != 0 {
		t.Fatalf("PopTopHalf with only private work = %d,%v; want 0,PrivateWork", n, res)
	}
	if c.Get(counters.CAS) != 0 {
		t.Error("private-work batched steal attempt accounted a CAS")
	}
}

func TestPopTopHalfAccountingMatchesPopTop(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, thief := newCtr(), newCtr()
	for v := 0; v < 6; v++ {
		p := new(int)
		d.PushBottom(p, owner)
		d.Expose(ExposeOne, owner)
	}
	var buf [8]*int
	n, res := d.PopTopHalf(buf[:], thief)
	if res != Stolen || n != 3 {
		t.Fatalf("PopTopHalf = %d,%v; want 3,Stolen", n, res)
	}
	// One CAS claims the whole batch; no fences, exactly like PopTop.
	if got := thief.Get(counters.CAS); got != counters.LCWSStealCAS {
		t.Errorf("batched steal cost %d CAS, want %d", got, counters.LCWSStealCAS)
	}
	if got := thief.Get(counters.Fence); got != 0 {
		t.Errorf("batched steal cost %d fences, want 0", got)
	}
}

func TestPopTopHalfAbortsOnStaleAge(t *testing.T) {
	d := NewSplit[int](64, false)
	owner, a, b := newCtr(), newCtr(), newCtr()
	for v := 0; v < 8; v++ {
		p := new(int)
		d.PushBottom(p, owner)
		d.Expose(ExposeOne, owner)
	}
	// Simulate a race: thief A reads the age word, thief B completes a
	// steal, then A's CAS must fail.
	oldAge := d.age.Load()
	if _, res := d.PopTop(b); res != Stolen {
		t.Fatal("setup steal failed")
	}
	top, tag := unpackAge(oldAge)
	var buf [4]*int
	// Re-run A's claim against the stale word by hand.
	c := a
	c.Add(counters.CAS, counters.LCWSStealCAS)
	if d.age.CompareAndSwap(oldAge, packAge(top+2, tag)) {
		t.Fatal("stale batched claim succeeded; ABA protection broken")
	}
	// The public API also aborts cleanly mid-race (fresh read, no race
	// here: just confirms the claim still works after the interleaving).
	if n, res := d.PopTopHalf(buf[:], a); res != Stolen || n == 0 {
		t.Fatalf("fresh PopTopHalf = %d,%v; want Stolen", n, res)
	}
}

func TestSplitHasPublicWork(t *testing.T) {
	d := NewSplit[int](64, false)
	c := newCtr()
	if d.HasPublicWork() {
		t.Error("empty deque reports public work")
	}
	p := new(int)
	d.PushBottom(p, c)
	if d.HasPublicWork() {
		t.Error("private-only deque reports public work")
	}
	d.Expose(ExposeOne, c)
	if !d.HasPublicWork() {
		t.Error("exposed deque reports no public work")
	}
}

// TestPopTopHalfConcurrentBatchDiscipline runs the batch-mode owner
// discipline (private pops + Expose + UnexposeAll reclaim, never
// PopPublicBottom) against batched thieves and checks every task is taken
// exactly once.
func TestPopTopHalfConcurrentBatchDiscipline(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	d := NewSplit[int](1<<15, true)
	ownerCtr := newCtr()
	counts := make([][]int32, thieves+1)
	for i := range counts {
		counts[i] = make([]int32, tasks)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := newCtr()
			var buf [8]*int
			for {
				n, res := d.PopTopHalf(buf[:], c)
				if res == Stolen {
					for i := 0; i < n; i++ {
						counts[th][*buf[i]]++
					}
				}
				select {
				case <-stop:
					if _, res := d.PopTopHalf(buf[:], c); res == Empty {
						return
					}
				default:
				}
			}
		}(th)
	}
	g := rng.New(uint64(tasks))
	pushed := 0
	for pushed < tasks || !d.IsEmpty() {
		if pushed < tasks && d.PrivateSize()+d.PublicSize() < 64 {
			p := new(int)
			*p = pushed
			d.PushBottom(p, ownerCtr)
			pushed++
		}
		switch g.Intn(4) {
		case 0:
			d.Expose(ExposeHalf, ownerCtr)
		case 1, 2:
			if task := d.PopBottom(ownerCtr); task != nil {
				counts[thieves][*task]++
			} else if d.UnexposeAll(ownerCtr) > 0 {
				// Batch-mode owner discipline: reclaim the public part
				// wholesale; PopPublicBottom is forbidden here.
				if task := d.PopBottom(ownerCtr); task != nil {
					counts[thieves][*task]++
				}
			}
		}
	}
	close(stop)
	wg.Wait()
	for i := 0; i < tasks; i++ {
		var n int32
		for th := range counts {
			n += counts[th][i]
		}
		if n != 1 {
			t.Fatalf("task %d taken %d times, want exactly 1", i, n)
		}
	}
}

// --- batched ChaseLev ---

func TestChaseLevBatchSequentialModel(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		d := NewChaseLevBatch[int](256)
		c := newCtr()
		var model []int
		next := 0
		for step := 0; step < 500; step++ {
			switch op := g.Intn(10); {
			case op < 4: // push
				if len(model) >= 250 {
					continue
				}
				p := new(int)
				*p = next
				d.PushBottom(p, c)
				model = append(model, next)
				next++
			case op < 6: // pop bottom
				got := d.PopBottom(c)
				if len(model) == 0 {
					if got != nil {
						return false
					}
					continue
				}
				if got == nil || *got != model[len(model)-1] {
					return false
				}
				model = model[:len(model)-1]
			case op < 8: // single steal
				got, res := d.PopTop(c)
				if len(model) == 0 {
					if res != Empty {
						return false
					}
					continue
				}
				if res != Stolen || got == nil || *got != model[0] {
					return false
				}
				model = model[1:]
			default: // batched steal
				var buf [4]*int
				n, res := d.PopTopN(buf[:], c)
				if len(model) == 0 {
					if res != Empty || n != 0 {
						return false
					}
					continue
				}
				want := (len(model) + 1) / 2
				if want > len(buf) {
					want = len(buf)
				}
				if res != Stolen || n != want {
					return false
				}
				for i := 0; i < n; i++ {
					if *buf[i] != model[i] {
						return false
					}
				}
				model = model[n:]
			}
			if d.Size() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChaseLevBatchAccounting(t *testing.T) {
	d := NewChaseLevBatch[int](64)
	c := newCtr()
	p := new(int)
	d.PushBottom(p, c)
	if got := c.Get(counters.Fence); got != counters.WSPushFences {
		t.Errorf("batched push cost %d fences, want %d", got, counters.WSPushFences)
	}
	if got := c.Get(counters.CAS); got != 0 {
		t.Errorf("batched push cost %d CAS, want 0", got)
	}
	// Owner pop: one fence and one tag-bump CAS on every pop.
	baseF, baseC := c.Get(counters.Fence), c.Get(counters.CAS)
	if d.PopBottom(c) == nil {
		t.Fatal("pop lost the only element")
	}
	if got := c.Get(counters.Fence) - baseF; got != counters.WSPopFences {
		t.Errorf("batched pop cost %d fences, want %d", got, counters.WSPopFences)
	}
	if got := c.Get(counters.CAS) - baseC; got != counters.WSBatchPopCAS {
		t.Errorf("batched pop cost %d CAS, want %d", got, counters.WSBatchPopCAS)
	}
	// Batched steal: one fence per attempt, one CAS when non-empty —
	// identical to the stock steal.
	for v := 0; v < 4; v++ {
		q := new(int)
		d.PushBottom(q, c)
	}
	baseF, baseC = c.Get(counters.Fence), c.Get(counters.CAS)
	var buf [8]*int
	n, res := d.PopTopN(buf[:], c)
	if res != Stolen || n != 2 {
		t.Fatalf("PopTopN = %d,%v; want 2,Stolen", n, res)
	}
	if got := c.Get(counters.Fence) - baseF; got != counters.WSStealFences {
		t.Errorf("batched steal cost %d fences, want %d", got, counters.WSStealFences)
	}
	if got := c.Get(counters.CAS) - baseC; got != counters.WSStealCAS {
		t.Errorf("batched steal cost %d CAS, want %d", got, counters.WSStealCAS)
	}
	// Empty attempt: fence only.
	for d.PopBottom(c) != nil {
	}
	baseF, baseC = c.Get(counters.Fence), c.Get(counters.CAS)
	if n, res := d.PopTopN(buf[:], c); res != Empty || n != 0 {
		t.Fatalf("PopTopN on empty = %d,%v; want 0,Empty", n, res)
	}
	if got := c.Get(counters.Fence) - baseF; got != counters.WSStealFences {
		t.Errorf("empty batched steal cost %d fences, want %d", got, counters.WSStealFences)
	}
	if got := c.Get(counters.CAS) - baseC; got != 0 {
		t.Errorf("empty batched steal cost %d CAS, want 0", got)
	}
}

func TestPopTopNStockDegradesToSingleSteal(t *testing.T) {
	d := NewChaseLev[int](64)
	c := newCtr()
	for v := 0; v < 6; v++ {
		p := new(int)
		*p = v
		d.PushBottom(p, c)
	}
	var buf [4]*int
	n, res := d.PopTopN(buf[:], c)
	if res != Stolen || n != 1 || *buf[0] != 0 {
		t.Fatalf("stock PopTopN = %d,%v; want single-task claim of 0", n, res)
	}
}

func TestChaseLevBatchWraparound(t *testing.T) {
	d := NewChaseLevBatch[int](8)
	c := newCtr()
	var buf [4]*int
	for i := 0; i < 1000; i++ {
		p := new(int)
		*p = i
		d.PushBottom(p, c)
		if i%3 == 0 {
			d.PopBottom(c)
		}
		if i%7 == 0 {
			d.PopTopN(buf[:], c)
		}
		for d.Size() > 4 {
			d.PopBottom(c)
		}
	}
}

// TestChaseLevBatchConcurrentSteals is the batched analogue of
// TestChaseLevConcurrentSteals: batched thieves race a popping owner and
// every task must be taken exactly once. This is the linearizability
// property that forced the tag-bump owner pop (a stalled thief's
// multi-task CAS must never claim a slot the owner consumed).
func TestChaseLevBatchConcurrentSteals(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	d := NewChaseLevBatch[int](1 << 15)
	ownerCtr := newCtr()
	counts := make([][]int32, thieves+1)
	for i := range counts {
		counts[i] = make([]int32, tasks)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for th := 0; th < thieves; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			c := newCtr()
			var buf [8]*int
			for {
				n, res := d.PopTopN(buf[:], c)
				if res == Stolen {
					for i := 0; i < n; i++ {
						counts[th][*buf[i]]++
					}
				}
				select {
				case <-stop:
					if n, _ := d.PopTopN(buf[:], c); n == 0 && d.IsEmpty() {
						return
					}
				default:
				}
			}
		}(th)
	}
	g := rng.New(uint64(tasks))
	pushed := 0
	for pushed < tasks || !d.IsEmpty() {
		if pushed < tasks && d.Size() < 64 {
			p := new(int)
			*p = pushed
			d.PushBottom(p, ownerCtr)
			pushed++
		}
		if g.Intn(2) == 0 {
			if task := d.PopBottom(ownerCtr); task != nil {
				counts[thieves][*task]++
			}
		}
	}
	close(stop)
	wg.Wait()
	for i := 0; i < tasks; i++ {
		var n int32
		for th := range counts {
			n += counts[th][i]
		}
		if n != 1 {
			t.Fatalf("task %d taken %d times, want exactly 1", i, n)
		}
	}
}

func TestBatchAgePacking(t *testing.T) {
	for _, top := range []int64{0, 1, 47, 1 << 20, batchTopMask} {
		for _, tag := range []uint16{0, 1, 0xffff} {
			gotTop, gotTag := unpackBatchAge(packBatchAge(top, tag))
			if gotTop != top || gotTag != tag {
				t.Errorf("pack/unpack(%d,%d) = (%d,%d)", top, tag, gotTop, gotTag)
			}
		}
	}
}
