package deque

import (
	"fmt"
	"sync/atomic"

	"lcws/internal/counters"
)

// ChaseLev is a fully concurrent Chase-Lev/ABP style work-stealing deque,
// standing in for Parlay's stock Work Stealing deque (the paper's
// baseline). Every task in it can be taken by any processor at any time,
// which is exactly why the owner's own pop_bottom needs a memory fence
// (Attiya et al., "Laws of Order") and a CAS when racing for the last
// element.
//
// The buffer is circular with a fixed capacity; like the split deque it
// panics on overflow rather than growing (Parlay's deque is likewise a
// fixed-size array).
type ChaseLev[T any] struct {
	top  atomic.Int64 // next index to steal from
	bot  atomic.Int64 // next index to push at
	mask int64
	buf  []atomic.Pointer[T]
}

// NewChaseLev returns a ChaseLev deque whose capacity is the smallest
// power of two >= capacity (DefaultCapacity if capacity <= 0).
func NewChaseLev[T any](capacity int) *ChaseLev[T] {
	capacity = normalizeCapacity(capacity)
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &ChaseLev[T]{
		mask: int64(size - 1),
		buf:  make([]atomic.Pointer[T], size),
	}
}

// Capacity returns the size of the backing circular buffer.
func (d *ChaseLev[T]) Capacity() int { return len(d.buf) }

// PushBottom appends t at the bottom. Per the counting model a WS push
// costs one fence (the release ordering on bot that makes the new task
// visible to thieves). It panics when the buffer is full.
func (d *ChaseLev[T]) PushBottom(t *T, c *counters.Worker) {
	b := d.bot.Load()
	if b-d.top.Load() > d.mask {
		panic(fmt.Sprintf("deque: chase-lev deque overflow (capacity %d); construct the scheduler with a larger deque capacity", len(d.buf)))
	}
	d.buf[b&d.mask].Store(t)
	d.bot.Store(b + 1)
	c.Inc(counters.TaskPushed)
	c.Add(counters.Fence, counters.WSPushFences)
}

// PopBottom removes and returns the bottom-most task, or nil when the
// deque is empty. Per the counting model it always costs one fence and an
// additional CAS when racing thieves for the last element.
func (d *ChaseLev[T]) PopBottom(c *counters.Worker) *T {
	b := d.bot.Load() - 1
	d.bot.Store(b)
	c.Add(counters.Fence, counters.WSPopFences) // the unavoidable store-load fence
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore bot.
		d.bot.Store(t)
		return nil
	}
	task := d.buf[b&d.mask].Load()
	if t < b {
		// More than one element: no race possible.
		return task
	}
	// Exactly one element: race thieves with a CAS on top.
	c.Add(counters.CAS, counters.WSPopRaceCAS)
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil
	}
	d.bot.Store(t + 1)
	return task
}

// PopTop attempts to steal the top-most task. Per the counting model an
// attempt costs one fence, plus one CAS when the deque was non-empty and
// the head CAS was reached. It never returns PrivateWork: the fully
// concurrent deque has no private part.
func (d *ChaseLev[T]) PopTop(c *counters.Worker) (*T, StealResult) {
	t := d.top.Load()
	c.Add(counters.Fence, counters.WSStealFences)
	b := d.bot.Load()
	if t >= b {
		return nil, Empty
	}
	task := d.buf[t&d.mask].Load()
	c.Add(counters.CAS, counters.WSStealCAS)
	if d.top.CompareAndSwap(t, t+1) {
		return task, Stolen
	}
	return nil, Abort
}

// Size returns the current number of tasks. The value is racy under
// concurrency and is meant for assertions and tests.
func (d *ChaseLev[T]) Size() int {
	n := d.bot.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// IsEmpty reports whether the deque is (racily) empty.
func (d *ChaseLev[T]) IsEmpty() bool { return d.Size() == 0 }
