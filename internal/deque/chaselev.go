package deque

import (
	"fmt"
	"sync/atomic"

	"lcws/internal/counters"
)

// clBuf is one backing-array generation of a ChaseLev deque; see splitBuf
// for the generation protocol (owner-side copy at unchanged absolute
// indices, single atomic publish, superseded generations never written).
//
//lcws:manifest
type clBuf[T any] struct {
	slots []atomic.Pointer[T] //lcws:field immutable — set before the generation is published; slots are atomic
	mask  int64               //lcws:field immutable — len(slots)-1; len(slots) is a power of two
}

// ChaseLev is a fully concurrent Chase-Lev/ABP style work-stealing deque,
// standing in for Parlay's stock Work Stealing deque (the paper's
// baseline). Every task in it can be taken by any processor at any time,
// which is exactly why the owner's own pop_bottom needs a memory fence
// (Attiya et al., "Laws of Order") and a CAS when racing for the last
// element.
//
// The buffer is circular; indices are absolute and monotonic, so the
// capacity bounds the live window bot - top. Like the split deque the
// array grows by owner-side doubling up to the maximum capacity — this is
// exactly the dynamic circular array of Chase & Lev's original paper:
// growth preserves absolute indices and touches neither top nor the age
// word, so a thief that raced onto the old generation either validates
// its claim with its usual CAS (the slot content for a live index is
// identical in both generations) or fails it because top moved. At the
// ceiling TryPushBottom reports failure and the scheduler core spills.
//
//lcws:manifest
type ChaseLev[T any] struct {
	top     atomic.Int64  //lcws:field atomic — stock mode: next index to steal from
	bot     atomic.Int64  //lcws:field atomic — next index to push at
	age     atomic.Uint64 //lcws:field atomic — batch mode: packed (tag, top); unused in stock mode
	batched bool          //lcws:field immutable
	maxCap  int64         //lcws:field immutable — growth ceiling; TryPushBottom fails beyond it
	initCap int64         //lcws:field immutable — construction-time capacity; Teardown shrinks back to it

	// buf is the current array generation; grow publishes a doubled one.
	// Thieves load it after their top/age load; see splitBuf.
	buf atomic.Pointer[clBuf[T]] //lcws:field atomic

	// ownerSlots/ownerMask cache the current generation for the owner's
	// push/pop paths (see SplitDeque: only owner-side grow replaces the
	// generation, so the cache is coherent for the owner; thieves must
	// load buf).
	ownerSlots []atomic.Pointer[T] //lcws:field owner — same backing array buf points at
	ownerMask  int64               //lcws:field owner — copy of the current generation's mask
}

// NewChaseLev returns a ChaseLev deque whose initial capacity is the
// smallest power of two >= capacity (DefaultCapacity if capacity <= 0),
// with the default growth ceiling.
func NewChaseLev[T any](capacity int) *ChaseLev[T] {
	return NewChaseLevMax[T](capacity, 0)
}

// NewChaseLevMax is NewChaseLev with an explicit growth ceiling
// (DefaultMaxCapacity if <= 0; rounded up to a power of two and floored
// at the initial capacity).
func NewChaseLevMax[T any](capacity, maxCapacity int) *ChaseLev[T] {
	n := uint64(normalizeCapacity(capacity))
	d := &ChaseLev[T]{maxCap: int64(normalizeMaxCapacity(maxCapacity, n)), initCap: int64(n)}
	bb := &clBuf[T]{slots: make([]atomic.Pointer[T], n), mask: int64(n) - 1}
	//lcws:presync constructor: the deque has not been published yet
	d.buf.Store(bb)
	//lcws:presync constructor: the deque has not been published yet
	d.ownerSlots = bb.slots
	//lcws:presync constructor: the deque has not been published yet
	d.ownerMask = bb.mask
	return d
}

// NewChaseLevBatch returns a ChaseLev deque that supports multi-task
// steals through PopTopN (Options.StealBatch mode).
//
// A plain int64 top cannot support batched claims: the stock owner pop
// only CASes top when racing for the last element, so a stalled thief
// whose CAS claims [top, top+n) with n >= 2 could re-claim slots the
// owner plain-took from the bottom. The batch variant therefore replaces
// top with a packed (tag, top) age word and makes *every* owner pop bump
// the tag with a CAS (see the batch extension in counters/model.go), so
// a successful steal CAS proves no owner pop intervened since the thief
// read the word. The tag is 16 bits wide and top 48; an ABA false match
// would need a thief stalled across exactly a multiple of 2^16 owner
// pops with no intervening steal, the same vanishing-probability class
// as the split deque's 32-bit tag.
func NewChaseLevBatch[T any](capacity int) *ChaseLev[T] {
	return NewChaseLevBatchMax[T](capacity, 0)
}

// NewChaseLevBatchMax is NewChaseLevBatch with an explicit growth
// ceiling.
func NewChaseLevBatchMax[T any](capacity, maxCapacity int) *ChaseLev[T] {
	d := NewChaseLevMax[T](capacity, maxCapacity)
	//lcws:presync constructor: the deque has not been published yet
	d.batched = true
	return d
}

// Batched reports whether the deque was built by NewChaseLevBatch.
func (d *ChaseLev[T]) Batched() bool { return d.batched }

// batchAge packs the batch-mode top index (low 48 bits) and owner-pop tag
// (high 16 bits) into the word that both owner pops and steals CAS.
func packBatchAge(top int64, tag uint16) uint64 {
	return uint64(tag)<<48 | uint64(top)&batchTopMask
}

func unpackBatchAge(a uint64) (top int64, tag uint16) {
	return int64(a & batchTopMask), uint16(a >> 48)
}

const batchTopMask = 1<<48 - 1

// topIndex returns the current steal index in either mode.
func (d *ChaseLev[T]) topIndex() int64 {
	if d.batched {
		t, _ := unpackBatchAge(d.age.Load())
		return t
	}
	return d.top.Load()
}

// Capacity returns the current size of the backing circular buffer.
func (d *ChaseLev[T]) Capacity() int { return len(d.buf.Load().slots) }

// MaxCapacity returns the growth ceiling.
func (d *ChaseLev[T]) MaxCapacity() int { return int(d.maxCap) }

// PushBottom appends t at the bottom, growing the array if the live
// window is full. Per the counting model a WS push costs one fence (the
// release ordering on bot that makes the new task visible to thieves).
// It panics when the deque is full at its maximum capacity; schedulers
// use TryPushBottom and spill instead.
//
//lcws:noalloc
func (d *ChaseLev[T]) PushBottom(t *T, c *counters.Worker) {
	if !d.TryPushBottom(t, c) {
		panic(fmt.Sprintf("deque: chase-lev deque at its maximum capacity (%d live tasks); spill via SpillOldest or raise Options.MaxDequeCapacity", d.maxCap))
	}
}

// TryPushBottom is PushBottom that reports failure instead of panicking
// when the deque is full at its maximum capacity. Owner-only.
//
//lcws:noalloc
func (d *ChaseLev[T]) TryPushBottom(t *T, c *counters.Worker) bool {
	b := d.bot.Load()
	if top := d.topIndex(); b-top > d.ownerMask {
		if 2*(d.ownerMask+1) > d.maxCap {
			return false
		}
		d.grow(top, b, c)
	}
	d.ownerSlots[b&d.ownerMask].Store(t)
	d.bot.Store(b + 1)
	c.Inc(counters.TaskPushed)
	c.Add(counters.Fence, counters.WSPushFences)
	return true
}

// grow publishes a doubled array generation preserving absolute indices
// (Chase & Lev's dynamic circular array): every live slot in [top, b) is
// copied to the same absolute index under the new mask, then the
// generation is published with one atomic pointer store. Neither top nor
// the age word is touched, so an in-flight steal validates against
// either generation — the content of a live absolute index is identical
// in both, the old generation is never written again, and any slot whose
// content could differ has had top move past it, failing the thief's
// CAS. (A thief advancing top during the copy merely makes some copied
// slots dead.) Owner-only; the owner cache is refreshed before the
// publish (same goroutine for the owner, thieves only ever see buf).
// The allocation is why growth lives outside the //lcws:noalloc push
// path.
func (d *ChaseLev[T]) grow(top, b int64, c *counters.Worker) {
	size := 2 * (d.ownerMask + 1)
	nb := &clBuf[T]{slots: make([]atomic.Pointer[T], size), mask: size - 1}
	for i := top; i < b; i++ {
		nb.slots[i&nb.mask].Store(d.ownerSlots[i&d.ownerMask].Load())
	}
	d.ownerSlots = nb.slots
	d.ownerMask = nb.mask
	d.buf.Store(nb)
	c.Inc(counters.DequeGrow)
}

// Teardown releases a grown array generation back to the initial
// capacity: grow in reverse — a fresh initial-capacity generation is
// published with one pointer store, no index moves, top/bot/age
// untouched. The deque is empty (no live slots to copy) and a stale
// thief's claim CAS fails against the unmoved indices exactly as it
// would across a grow.
//
// Epoch-guarded: the caller (core.reclaimSlot) proves the owner
// goroutine has exited and the worker-set epoch has quiesced before
// calling. A no-op when the deque never grew.
//
//lcws:epoch-guarded
func (d *ChaseLev[T]) Teardown() {
	if int64(len(d.ownerSlots)) <= d.initCap {
		return
	}
	nb := &clBuf[T]{slots: make([]atomic.Pointer[T], d.initCap), mask: d.initCap - 1}
	d.ownerSlots = nb.slots
	d.ownerMask = nb.mask
	d.buf.Store(nb)
}

// SpillOldest removes up to len(out) of the deque's oldest tasks,
// writing them into out oldest-first, and returns how many were removed.
// Owner-only by convention (the scheduler calls it when TryPushBottom
// fails at the maximum capacity), but implemented as owner self-steal
// through the thief-safe PopTop path, so it is trivially correct against
// concurrent thieves: an Abort means a thief took the task instead,
// which is progress too. The self-steals execute PopTop's fence/CAS
// accounting; spilling is an off-model emergency path, so runs that
// spill deviate from the paper's exact WS counting identities (runs
// that never hit the capacity ceiling are unaffected).
//
//lcws:noalloc
func (d *ChaseLev[T]) SpillOldest(out []*T, c *counters.Worker) int {
	n := 0
	for n < len(out) {
		t, res := d.PopTop(c)
		switch res {
		case Stolen:
			out[n] = t
			n++
		case Abort:
			continue
		default:
			return n
		}
	}
	return n
}

// PopBottom removes and returns the bottom-most task, or nil when the
// deque is empty. Per the counting model it always costs one fence and an
// additional CAS when racing thieves for the last element.
//
//lcws:noalloc
func (d *ChaseLev[T]) PopBottom(c *counters.Worker) *T {
	if d.batched {
		return d.popBottomBatch(c)
	}
	b := d.bot.Load() - 1
	d.bot.Store(b)
	c.Add(counters.Fence, counters.WSPopFences) // the unavoidable store-load fence
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore bot.
		d.bot.Store(t)
		return nil
	}
	task := d.ownerSlots[b&d.ownerMask].Load()
	if t < b {
		// More than one element: no race possible.
		return task
	}
	// Exactly one element: race thieves with a CAS on top.
	c.Add(counters.CAS, counters.WSPopRaceCAS)
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil
	}
	d.bot.Store(t + 1)
	return task
}

// popBottomBatch is the batch-mode owner pop: bot is taken back with the
// usual store-load fence, but the claim itself is a tag-bump CAS on the
// age word (WSBatchPopCAS) on every pop, not just for the last element —
// see NewChaseLevBatch for why batched steals require this.
//
//lcws:noalloc
func (d *ChaseLev[T]) popBottomBatch(c *counters.Worker) *T {
	b := d.bot.Load() - 1
	d.bot.Store(b)
	c.Add(counters.Fence, counters.WSPopFences)
	for {
		a := d.age.Load()
		t, tag := unpackBatchAge(a)
		if t > b {
			// Deque empty (possibly emptied by thieves since the bot
			// store); restore bot.
			d.bot.Store(t)
			return nil
		}
		task := d.ownerSlots[b&d.ownerMask].Load()
		c.Add(counters.CAS, counters.WSBatchPopCAS)
		if d.age.CompareAndSwap(a, packBatchAge(t, tag+1)) {
			return task
		}
		// A thief advanced top concurrently; retry against the new word.
	}
}

// PopTop attempts to steal the top-most task. Per the counting model an
// attempt costs one fence, plus one CAS when the deque was non-empty and
// the head CAS was reached. It never returns PrivateWork: the fully
// concurrent deque has no private part.
//
//lcws:noalloc
func (d *ChaseLev[T]) PopTop(c *counters.Worker) (*T, StealResult) {
	if d.batched {
		var buf [1]*T
		n, res := d.PopTopN(buf[:], c)
		if n > 0 {
			return buf[0], res
		}
		return nil, res
	}
	t := d.top.Load()
	c.Add(counters.Fence, counters.WSStealFences)
	b := d.bot.Load()
	if t >= b {
		return nil, Empty
	}
	bb := d.buf.Load() // after the top load; see clBuf
	task := bb.slots[t&bb.mask].Load()
	c.Add(counters.CAS, counters.WSStealCAS)
	if d.top.CompareAndSwap(t, t+1) {
		return task, Stolen
	}
	return nil, Abort
}

// PopTopN attempts to steal up to half of the deque (rounded up, capped
// at len(buf)) with one CAS on the age word, writing the stolen tasks
// into buf top-first and returning how many were claimed. It requires a
// deque built by NewChaseLevBatch; on a stock deque it degrades to a
// single-task PopTop, because with a plain top word a multi-task claim
// can race the owner's fence-only pop (see NewChaseLevBatch).
// Accounting per attempt matches the stock steal: one fence, plus one
// CAS when the deque was non-empty.
//
//lcws:noalloc
func (d *ChaseLev[T]) PopTopN(buf []*T, c *counters.Worker) (int, StealResult) {
	if len(buf) == 0 {
		panic("deque: PopTopN requires a non-empty batch buffer")
	}
	if !d.batched {
		t, res := d.PopTop(c)
		if t != nil {
			buf[0] = t
			return 1, res
		}
		return 0, res
	}
	a := d.age.Load()
	t, tag := unpackBatchAge(a)
	c.Add(counters.Fence, counters.WSStealFences)
	b := d.bot.Load()
	s := b - t
	if s <= 0 {
		return 0, Empty
	}
	n := (s + 1) / 2 // round(size/2), at least 1
	if n > int64(len(buf)) {
		n = int64(len(buf))
	}
	bb := d.buf.Load() // after the age load; see clBuf
	for i := int64(0); i < n; i++ {
		buf[i] = bb.slots[(t+i)&bb.mask].Load()
	}
	c.Add(counters.CAS, counters.WSStealCAS)
	if d.age.CompareAndSwap(a, packBatchAge(t+n, tag)) {
		return int(n), Stolen
	}
	return 0, Abort
}

// Size returns the current number of tasks. The value is racy under
// concurrency and is meant for assertions and tests.
func (d *ChaseLev[T]) Size() int {
	n := d.bot.Load() - d.topIndex()
	if n < 0 {
		return 0
	}
	return int(n)
}

// IsEmpty reports whether the deque is (racily) empty.
func (d *ChaseLev[T]) IsEmpty() bool { return d.Size() == 0 }

// HasPublicWork reports whether the deque (racily) holds stealable work;
// for the fully concurrent deque that is any work at all. Thieves use it
// in the parking lot's pre-park check.
func (d *ChaseLev[T]) HasPublicWork() bool { return d.Size() > 0 }
