package deque

import (
	"fmt"
	"sync/atomic"

	"lcws/internal/counters"
)

// ChaseLev is a fully concurrent Chase-Lev/ABP style work-stealing deque,
// standing in for Parlay's stock Work Stealing deque (the paper's
// baseline). Every task in it can be taken by any processor at any time,
// which is exactly why the owner's own pop_bottom needs a memory fence
// (Attiya et al., "Laws of Order") and a CAS when racing for the last
// element.
//
// The buffer is circular with a fixed capacity; like the split deque it
// panics on overflow rather than growing (Parlay's deque is likewise a
// fixed-size array).
//
//lcws:manifest
type ChaseLev[T any] struct {
	top     atomic.Int64        //lcws:field atomic — stock mode: next index to steal from
	bot     atomic.Int64        //lcws:field atomic — next index to push at
	age     atomic.Uint64       //lcws:field atomic — batch mode: packed (tag, top); unused in stock mode
	mask    int64               //lcws:field immutable
	batched bool                //lcws:field immutable
	buf     []atomic.Pointer[T] //lcws:field immutable — slice header set in the constructor; slots are atomic
}

// NewChaseLev returns a ChaseLev deque whose capacity is the smallest
// power of two >= capacity (DefaultCapacity if capacity <= 0).
func NewChaseLev[T any](capacity int) *ChaseLev[T] {
	capacity = normalizeCapacity(capacity)
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &ChaseLev[T]{
		mask: int64(size - 1),
		buf:  make([]atomic.Pointer[T], size),
	}
}

// NewChaseLevBatch returns a ChaseLev deque that supports multi-task
// steals through PopTopN (Options.StealBatch mode).
//
// A plain int64 top cannot support batched claims: the stock owner pop
// only CASes top when racing for the last element, so a stalled thief
// whose CAS claims [top, top+n) with n >= 2 could re-claim slots the
// owner plain-took from the bottom. The batch variant therefore replaces
// top with a packed (tag, top) age word and makes *every* owner pop bump
// the tag with a CAS (see the batch extension in counters/model.go), so
// a successful steal CAS proves no owner pop intervened since the thief
// read the word. The tag is 16 bits wide and top 48; an ABA false match
// would need a thief stalled across exactly a multiple of 2^16 owner
// pops with no intervening steal, the same vanishing-probability class
// as the split deque's 32-bit tag.
func NewChaseLevBatch[T any](capacity int) *ChaseLev[T] {
	d := NewChaseLev[T](capacity)
	//lcws:presync constructor: the deque has not been published yet
	d.batched = true
	return d
}

// Batched reports whether the deque was built by NewChaseLevBatch.
func (d *ChaseLev[T]) Batched() bool { return d.batched }

// batchAge packs the batch-mode top index (low 48 bits) and owner-pop tag
// (high 16 bits) into the word that both owner pops and steals CAS.
func packBatchAge(top int64, tag uint16) uint64 {
	return uint64(tag)<<48 | uint64(top)&batchTopMask
}

func unpackBatchAge(a uint64) (top int64, tag uint16) {
	return int64(a & batchTopMask), uint16(a >> 48)
}

const batchTopMask = 1<<48 - 1

// topIndex returns the current steal index in either mode.
func (d *ChaseLev[T]) topIndex() int64 {
	if d.batched {
		t, _ := unpackBatchAge(d.age.Load())
		return t
	}
	return d.top.Load()
}

// Capacity returns the size of the backing circular buffer.
func (d *ChaseLev[T]) Capacity() int { return len(d.buf) }

// PushBottom appends t at the bottom. Per the counting model a WS push
// costs one fence (the release ordering on bot that makes the new task
// visible to thieves). It panics when the buffer is full.
//
//lcws:noalloc
func (d *ChaseLev[T]) PushBottom(t *T, c *counters.Worker) {
	b := d.bot.Load()
	if b-d.topIndex() > d.mask {
		panic(fmt.Sprintf("deque: chase-lev deque overflow (capacity %d); construct the scheduler with a larger deque capacity", len(d.buf)))
	}
	d.buf[b&d.mask].Store(t)
	d.bot.Store(b + 1)
	c.Inc(counters.TaskPushed)
	c.Add(counters.Fence, counters.WSPushFences)
}

// PopBottom removes and returns the bottom-most task, or nil when the
// deque is empty. Per the counting model it always costs one fence and an
// additional CAS when racing thieves for the last element.
//
//lcws:noalloc
func (d *ChaseLev[T]) PopBottom(c *counters.Worker) *T {
	if d.batched {
		return d.popBottomBatch(c)
	}
	b := d.bot.Load() - 1
	d.bot.Store(b)
	c.Add(counters.Fence, counters.WSPopFences) // the unavoidable store-load fence
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore bot.
		d.bot.Store(t)
		return nil
	}
	task := d.buf[b&d.mask].Load()
	if t < b {
		// More than one element: no race possible.
		return task
	}
	// Exactly one element: race thieves with a CAS on top.
	c.Add(counters.CAS, counters.WSPopRaceCAS)
	if !d.top.CompareAndSwap(t, t+1) {
		task = nil
	}
	d.bot.Store(t + 1)
	return task
}

// popBottomBatch is the batch-mode owner pop: bot is taken back with the
// usual store-load fence, but the claim itself is a tag-bump CAS on the
// age word (WSBatchPopCAS) on every pop, not just for the last element —
// see NewChaseLevBatch for why batched steals require this.
//
//lcws:noalloc
func (d *ChaseLev[T]) popBottomBatch(c *counters.Worker) *T {
	b := d.bot.Load() - 1
	d.bot.Store(b)
	c.Add(counters.Fence, counters.WSPopFences)
	for {
		a := d.age.Load()
		t, tag := unpackBatchAge(a)
		if t > b {
			// Deque empty (possibly emptied by thieves since the bot
			// store); restore bot.
			d.bot.Store(t)
			return nil
		}
		task := d.buf[b&d.mask].Load()
		c.Add(counters.CAS, counters.WSBatchPopCAS)
		if d.age.CompareAndSwap(a, packBatchAge(t, tag+1)) {
			return task
		}
		// A thief advanced top concurrently; retry against the new word.
	}
}

// PopTop attempts to steal the top-most task. Per the counting model an
// attempt costs one fence, plus one CAS when the deque was non-empty and
// the head CAS was reached. It never returns PrivateWork: the fully
// concurrent deque has no private part.
//
//lcws:noalloc
func (d *ChaseLev[T]) PopTop(c *counters.Worker) (*T, StealResult) {
	if d.batched {
		var buf [1]*T
		n, res := d.PopTopN(buf[:], c)
		if n > 0 {
			return buf[0], res
		}
		return nil, res
	}
	t := d.top.Load()
	c.Add(counters.Fence, counters.WSStealFences)
	b := d.bot.Load()
	if t >= b {
		return nil, Empty
	}
	task := d.buf[t&d.mask].Load()
	c.Add(counters.CAS, counters.WSStealCAS)
	if d.top.CompareAndSwap(t, t+1) {
		return task, Stolen
	}
	return nil, Abort
}

// PopTopN attempts to steal up to half of the deque (rounded up, capped
// at len(buf)) with one CAS on the age word, writing the stolen tasks
// into buf top-first and returning how many were claimed. It requires a
// deque built by NewChaseLevBatch; on a stock deque it degrades to a
// single-task PopTop, because with a plain top word a multi-task claim
// can race the owner's fence-only pop (see NewChaseLevBatch).
// Accounting per attempt matches the stock steal: one fence, plus one
// CAS when the deque was non-empty.
//
//lcws:noalloc
func (d *ChaseLev[T]) PopTopN(buf []*T, c *counters.Worker) (int, StealResult) {
	if len(buf) == 0 {
		panic("deque: PopTopN requires a non-empty batch buffer")
	}
	if !d.batched {
		t, res := d.PopTop(c)
		if t != nil {
			buf[0] = t
			return 1, res
		}
		return 0, res
	}
	a := d.age.Load()
	t, tag := unpackBatchAge(a)
	c.Add(counters.Fence, counters.WSStealFences)
	b := d.bot.Load()
	s := b - t
	if s <= 0 {
		return 0, Empty
	}
	n := (s + 1) / 2 // round(size/2), at least 1
	if n > int64(len(buf)) {
		n = int64(len(buf))
	}
	for i := int64(0); i < n; i++ {
		buf[i] = d.buf[(t+i)&d.mask].Load()
	}
	c.Add(counters.CAS, counters.WSStealCAS)
	if d.age.CompareAndSwap(a, packBatchAge(t+n, tag)) {
		return int(n), Stolen
	}
	return 0, Abort
}

// Size returns the current number of tasks. The value is racy under
// concurrency and is meant for assertions and tests.
func (d *ChaseLev[T]) Size() int {
	n := d.bot.Load() - d.topIndex()
	if n < 0 {
		return 0
	}
	return int(n)
}

// IsEmpty reports whether the deque is (racily) empty.
func (d *ChaseLev[T]) IsEmpty() bool { return d.Size() == 0 }

// HasPublicWork reports whether the deque (racily) holds stealable work;
// for the fully concurrent deque that is any work at all. Thieves use it
// in the parking lot's pre-park check.
func (d *ChaseLev[T]) HasPublicWork() bool { return d.Size() > 0 }
