package deque

import (
	"fmt"
	"sync/atomic"

	"lcws/internal/counters"
)

// splitBuf is one backing-array generation of a SplitDeque. Growth
// allocates a doubled splitBuf, copies the live window slot-for-slot at
// the same absolute indices, and publishes the new generation with a
// single atomic pointer store. A superseded generation is never written
// again, so a thief that raced onto the old array still reads the
// correct task for any absolute index its age CAS can validate.
//
//lcws:manifest
type splitBuf[T any] struct {
	slots []atomic.Pointer[T] //lcws:field immutable — set before the generation is published; slots are atomic
	mask  uint64              //lcws:field immutable — len(slots)-1; len(slots) is a power of two
}

// SplitDeque is the LCWS split deque of Listing 2. The task array is split
// at publicBot into a public part [top, publicBot) that thieves may steal
// from, and a private part [publicBot, bot) that only the owner touches.
//
// Index invariants (indices only reset to zero when the deque fully
// empties through PopPublicBottom, or — on a relaxed deque — through the
// owner's explicit index reset, see resetIndices):
//
//	top <= publicBot <= bot   (top from the age word)
//
// Indices are absolute and the backing array is circular (mask indexing),
// so the capacity bounds the live *window* bot - top, not the absolute
// position. The array grows by owner-side doubling up to the maximum
// capacity; at the ceiling TryPushBottom reports failure and the caller
// spills (see SpillOldest). Growth preserves absolute indices and touches
// neither the age word nor publicBot — re-verified exhaustively by the
// Grow op model in internal/verify, together with a negative model
// showing why a compacting grow that rewrites indices is unsound.
//
// Index width: top lives in 32 bits of the age word. A non-relaxed deque
// resets all indices to zero whenever it fully empties through
// PopPublicBottom, so top only outruns 2^32 after four billion steals
// without the deque ever draining. A RELAXED deque never takes that
// reset (its owner reclaims exclusively through tag-bumping UnexposeAll,
// which the monotone claim memory depends on), so instead it performs an
// explicit index reset: when Expose finds top at or above
// relaxedResetThreshold (2^31 — far below the wrap, and indices stay
// under threshold+maxCap between Expose calls because only Expose
// advances publicBot), the owner rebases the live window to index zero
// in a FRESH array generation, bumps the ABA tag, and advances the index
// epoch (see resetIndices). Thieves detect the epoch change and re-arm
// their claim memories; stamps from the old epoch fail the relaxed
// claim's validation, so stale claims straddling a reset fall back to
// the exclusive CAS or abort. The multiplicity bound of the relaxed
// protocol is therefore per-epoch: at most thieves+1 returns of one task
// within an epoch (an epoch spans at least 2^31 consumed tasks).
//
// In the C++ reference, bot and publicBot are plain unsigned ints and the
// algorithm's correctness rests on two explicit seq-cst fences. In Go both
// fields must be atomics because thieves read them (PopTop reads bot to
// distinguish Empty from PrivateWork, and reads publicBot to find the split
// point); Go atomics are seq-cst, which subsumes the fences. The fence and
// CAS accounting below records what the C++ implementation would execute.
//
//lcws:manifest
type SplitDeque[T any] struct {
	bot       atomic.Uint64 //lcws:field atomic — index of the empty slot below the bottom-most task
	publicBot atomic.Uint64 //lcws:field atomic — index below the bottom-most public task
	age       atomic.Uint64 //lcws:field atomic — packed (top, tag)
	raceFix   bool          //lcws:field immutable — use the §4 signal-safe pop_bottom
	relaxed   bool          //lcws:field immutable — enable the MultFree relaxed-claim lane (TakeTopRelaxed + owner repair)
	maxCap    uint64        //lcws:field immutable — growth ceiling; TryPushBottom fails beyond it
	initCap   uint64        //lcws:field immutable — construction-time capacity; Teardown shrinks back to it
	cachedTop uint64        //lcws:field owner — lower bound of top for the push window check; refreshed from age only when the window looks full
	maxPub    uint64        //lcws:field owner — high-water mark of publicBot (relaxed only): indices below it may have been observed by a relaxed thief

	// epoch counts the index resets of a relaxed deque (see resetIndices).
	// It only ever increments, and always as the LAST store of a reset, so
	// a thief that observes the new epoch is guaranteed to also observe
	// the fully rebased index state. Push stamps and thief claim memories
	// carry the epoch they were minted in; a stamp or claim from another
	// epoch is never honored by the relaxed lane.
	epoch atomic.Uint64 //lcws:field atomic

	// relNext is the relaxed-claim cursor of the MultFree steal protocol
	// (Castañeda & Piña, arXiv 2008.04424): packed (idx, tag) like age.
	// Thieves advance it with plain stores — no CAS, no fence on the
	// steal side — so it may transiently rewind (a stalled thief's store
	// landing late) or carry a stale tag (a store landing after an owner
	// reclaim bumped the tag). Every reader therefore treats it as a hint:
	// it is honored only when its tag matches the current age tag, and
	// only as a max against the authoritative top and the thief's own
	// monotone claim memory (RelClaim). The owner's repairRelaxed folds an
	// honored cursor into top, which is what keeps multiplicity bounded
	// across expose/unexpose epochs (see internal/verify).
	relNext atomic.Uint64 //lcws:field atomic

	// buf is the current array generation; grow publishes a doubled one.
	// Readers load it *after* loading the age word: the slot content for
	// a live absolute index is identical in every generation that was
	// current since that age value, so either load order validates.
	buf atomic.Pointer[splitBuf[T]] //lcws:field atomic

	// ownerSlots/ownerMask cache the current generation for the owner's
	// push/pop paths, so the per-fork fast path keeps the single-load
	// slot access it had before deques grew (no atomic pointer chase).
	// Only grow (owner-side) replaces the generation, so the cache is
	// trivially coherent for the owner; thieves must go through buf.
	ownerSlots []atomic.Pointer[T] //lcws:field owner — same backing array buf points at
	ownerMask  uint64              //lcws:field owner — copy of the current generation's mask
}

// NewSplit returns a SplitDeque with the given initial capacity
// (DefaultCapacity if capacity <= 0, rounded up to a power of two) and
// the default growth ceiling. raceFix selects the §4 pop_bottom variant
// that is safe against an exposure request landing in the middle of
// pop_bottom; the Conservative Exposure policy (§4.1.1) instead keeps the
// original pop_bottom and avoids the race by never exposing the
// bottom-most task.
func NewSplit[T any](capacity int, raceFix bool) *SplitDeque[T] {
	return NewSplitMax[T](capacity, 0, raceFix)
}

// NewSplitMax is NewSplit with an explicit growth ceiling: the deque
// doubles its array on demand while the live window fits under
// maxCapacity (DefaultMaxCapacity if <= 0; rounded up to a power of two
// and floored at the initial capacity). At the ceiling TryPushBottom
// returns false instead of growing.
func NewSplitMax[T any](capacity, maxCapacity int, raceFix bool) *SplitDeque[T] {
	return newSplit[T](capacity, maxCapacity, raceFix, false)
}

// NewSplitRelaxed is NewSplitMax with the MultFree relaxed-claim lane
// enabled: thieves may steal through TakeTopRelaxed (plain read/write
// claims, bounded multiplicity) and the owner-side boundary operations
// (Expose, UnexposeAll) run the repairRelaxed cursor fold. The CAS steal
// path (PopTop, PopTopHalf) remains available for non-idempotent tasks.
func NewSplitRelaxed[T any](capacity, maxCapacity int, raceFix bool) *SplitDeque[T] {
	return newSplit[T](capacity, maxCapacity, raceFix, true)
}

func newSplit[T any](capacity, maxCapacity int, raceFix, relaxed bool) *SplitDeque[T] {
	n := uint64(normalizeCapacity(capacity))
	d := &SplitDeque[T]{
		raceFix: raceFix,
		relaxed: relaxed,
		maxCap:  normalizeMaxCapacity(maxCapacity, n),
		initCap: n,
	}
	bb := &splitBuf[T]{slots: make([]atomic.Pointer[T], n), mask: n - 1}
	//lcws:presync constructor: the deque has not been published yet
	d.buf.Store(bb)
	//lcws:presync constructor: the deque has not been published yet
	d.ownerSlots = bb.slots
	//lcws:presync constructor: the deque has not been published yet
	d.ownerMask = bb.mask
	return d
}

// Capacity returns the current size of the backing task array.
func (d *SplitDeque[T]) Capacity() int { return len(d.buf.Load().slots) }

// MaxCapacity returns the growth ceiling.
func (d *SplitDeque[T]) MaxCapacity() int { return int(d.maxCap) }

// loadSlot reads the task at absolute index i from the current array
// generation. Thief-path only: callers must load the age word first
// (see buf); owner paths use ownerSlot and skip the pointer load.
//
//lcws:noalloc
func (d *SplitDeque[T]) loadSlot(i uint64) *T {
	bb := d.buf.Load()
	return bb.slots[i&bb.mask].Load()
}

// ownerSlot is loadSlot for the owner's pop paths, reading through the
// owner-cached generation.
//
//lcws:noalloc
func (d *SplitDeque[T]) ownerSlot(i uint64) *T { return d.ownerSlots[i&d.ownerMask].Load() }

// PushBottom appends t to the private part, growing the array if the
// live window is full. Per the counting model it executes no
// synchronization operations (paper Lemma 1); the owner-cached top bound
// keeps even the fullness check off the shared age word except when the
// window genuinely looks full. It panics when the deque is at its
// maximum capacity; schedulers use TryPushBottom and spill instead.
//
//lcws:noalloc
func (d *SplitDeque[T]) PushBottom(t *T, c *counters.Worker) {
	if !d.TryPushBottom(t, c) {
		panic(fmt.Sprintf("deque: split deque at its maximum capacity (%d live tasks); spill via SpillOldest or raise Options.MaxDequeCapacity", d.maxCap))
	}
}

// TryPushBottom is PushBottom that reports failure instead of panicking
// when the deque is full at its maximum capacity. Owner-only.
//
//lcws:noalloc
func (d *SplitDeque[T]) TryPushBottom(t *T, c *counters.Worker) bool {
	b := d.bot.Load()
	if b-d.cachedTop > d.ownerMask {
		// The window looks full against the cached top bound; refresh the
		// bound from the age word (cold: at most once per capacity's
		// worth of pushes) and grow only if the window is genuinely full.
		top, _ := unpackAge(d.age.Load())
		d.cachedTop = uint64(top)
		if b-d.cachedTop > d.ownerMask {
			if 2*(d.ownerMask+1) > d.maxCap {
				return false
			}
			d.grow(d.cachedTop, b, c)
		}
	}
	d.ownerSlots[b&d.ownerMask].Store(t)
	d.bot.Store(b + 1)
	c.Inc(counters.TaskPushed)
	return true
}

// grow publishes a doubled array generation preserving absolute indices:
// every live slot in [top, b) is copied to the same absolute index under
// the new mask, then the generation is published with one atomic pointer
// store. No index moves and neither the age word nor publicBot is
// touched — the content of a live absolute index is the same in both
// generations, and the old one is never written again, so a thief's
// steal CAS validates regardless of which generation its slot read hit.
// (A thief advancing top during the copy merely makes some copied slots
// dead; copying them is harmless.) Owner-only; called by TryPushBottom
// with the window genuinely full. The owner cache is refreshed before
// the publish; the order is irrelevant (same goroutine for the owner,
// and thieves only ever see buf). The allocation is why growth lives
// outside the //lcws:noalloc push path.
func (d *SplitDeque[T]) grow(top, b uint64, c *counters.Worker) {
	size := 2 * (d.ownerMask + 1)
	nb := &splitBuf[T]{slots: make([]atomic.Pointer[T], size), mask: size - 1}
	for i := top; i < b; i++ {
		nb.slots[i&nb.mask].Store(d.ownerSlots[i&d.ownerMask].Load())
	}
	d.ownerSlots = nb.slots
	d.ownerMask = nb.mask
	d.buf.Store(nb)
	c.Inc(counters.DequeGrow)
}

// Teardown releases a grown array generation back to the initial
// capacity — grow in reverse: a fresh initial-capacity generation is
// published with one pointer store, and no index moves (bot, publicBot,
// the age word, and the relaxed epoch are all untouched). The deque is
// empty, so there are no live slots to copy, and any stale thief state
// minted against the old generation — a sticky victim's cached pointer,
// a MultFree monotone claim cursor — revalidates against the new
// generation exactly as it would across a grow: the window is empty, so
// every claim fails validation harmlessly.
//
// Epoch-guarded: the caller (core.reclaimSlot) proves quiescence — the
// owner goroutine has exited through the retirement CAS and every
// worker pinned on an epoch that could reach this deque has drained —
// before calling. A no-op when the deque never grew.
//
//lcws:epoch-guarded
func (d *SplitDeque[T]) Teardown() {
	if uint64(len(d.ownerSlots)) <= d.initCap {
		return
	}
	nb := &splitBuf[T]{slots: make([]atomic.Pointer[T], d.initCap), mask: d.initCap - 1}
	d.ownerSlots = nb.slots
	d.ownerMask = nb.mask
	d.buf.Store(nb)
}

// SpillOldest removes up to len(out) of the deque's oldest tasks,
// writing them into out oldest-first, and returns how many were removed.
// Owner-only; the scheduler calls it when TryPushBottom fails at the
// maximum capacity, parking the extracted tasks on an overflow list.
//
// The protocol reclaims the public part first (UnexposeAll, which bumps
// the ABA tag), so no thief holds a validatable claim on any slot; the
// owner then reads the oldest k tasks and advances top past them with a
// plain tag-bumping age store. Between the age store and the publicBot
// store a thief can observe the transient top > publicBot, which every
// thief path treats as "nothing public" — the extracted slots are never
// observable as stealable.
//
//lcws:noalloc
func (d *SplitDeque[T]) SpillOldest(out []*T, c *counters.Worker) int {
	if len(out) == 0 {
		return 0
	}
	d.UnexposeAll(c)
	a := d.age.Load()
	top, tag := unpackAge(a)
	b := d.bot.Load()
	n := b - uint64(top) // the whole deque is private after UnexposeAll
	if n == 0 {
		return 0
	}
	k := uint64(len(out))
	if k > n {
		k = n
	}
	for i := uint64(0); i < k; i++ {
		out[i] = d.ownerSlot(uint64(top) + i)
	}
	// No thief CAS can target the current age value: after UnexposeAll
	// publicBot == top, and a thief only CASes when it read
	// publicBot > top — so any in-flight CAS holds a stale (pre-bump)
	// age and must fail. A plain store therefore cannot lose a race; the
	// extra tag bump invalidates the new value too, for symmetry with
	// every other owner-side reclaim.
	d.age.Store(packAge(top+uint32(k), tag+1))
	d.publicBot.Store(uint64(top) + k)
	d.cachedTop = uint64(top) + k
	c.Inc(counters.Fence) // ordering of the age store against the publicBot store
	return int(k)
}

// PopBottom removes and returns the bottom-most private task, or nil when
// the private part is empty. Per the counting model it executes no
// synchronization operations (paper Lemma 2).
//
// With raceFix enabled this is the §4 variant: bot is decremented before
// the comparison so that an exposure request arriving between the
// comparison and the decrement cannot make the owner read a task that has
// just become public. When the variant returns nil it leaves bot one below
// publicBot; the subsequent PopPublicBottom call (the only legal next deque
// operation in the scheduler loop) repairs bot on every path.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopBottom(c *counters.Worker) *T {
	if d.raceFix {
		b := d.bot.Load()
		if b == 0 {
			// Deque completely empty and already reset; nothing to
			// decrement. (publicBot <= bot == 0.)
			return nil
		}
		b--
		d.bot.Store(b)
		if b < d.publicBot.Load() {
			return nil
		}
		return d.ownerSlot(b)
	}
	b := d.bot.Load()
	if b == d.publicBot.Load() {
		return nil
	}
	b--
	d.bot.Store(b)
	return d.ownerSlot(b)
}

// PopPublicBottom removes and returns the bottom-most public task, or nil
// when the deque is empty or the last public task was lost to a thief.
// Only the owner may call it, and only when the private part is empty —
// i.e. after PopBottom returned nil, exactly as in the scheduler loop of
// Listing 1 (the operation rewrites bot, so private tasks would be lost
// otherwise). Fence/CAS accounting follows Listing 2:
// one fence on the common path (line 12), a second fence on the emptying
// path (line 27), and one CAS attempt when racing thieves for the last
// element.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopPublicBottom(c *counters.Worker) *T {
	pb := d.publicBot.Load()
	if pb == 0 {
		if d.raceFix {
			// §4: repair bot after a failed race-fix PopBottom.
			d.bot.Store(0)
		}
		return nil
	}
	pb--
	d.publicBot.Store(pb)
	c.Add(counters.Fence, counters.LCWSPopPublicFences) // line 12 fence
	task := d.ownerSlot(pb)
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	if pb > uint64(top) {
		// More public tasks remain below top; no race possible.
		d.bot.Store(pb)
		c.Inc(counters.ExposedNotStolen)
		return task
	}
	// The deque is emptying: race thieves for the last element and reset
	// all indices to zero.
	d.bot.Store(0)
	newAge := packAge(0, tag+1)
	localBot := pb
	d.publicBot.Store(0)
	d.cachedTop = 0 // top resets with the age store/CAS below
	won := false
	if localBot == uint64(top) {
		c.Add(counters.CAS, counters.LCWSPopPublicRaceCAS)
		won = d.age.CompareAndSwap(oldAge, newAge)
	}
	if !won {
		d.age.Store(newAge)
		task = nil
	} else {
		c.Inc(counters.ExposedNotStolen)
	}
	c.Add(counters.Fence, counters.LCWSPopPublicEmptyFences-counters.LCWSPopPublicFences) // line 27 fence
	return task
}

// PopTop attempts to steal the top-most public task. Any goroutine may
// call it; c must be the calling thief's counter record. Per the counting
// model a steal attempt that finds public work costs one CAS; attempts
// that find the public part empty cost nothing.
//
// Note: Listing 2 line 39 reads "(public_bot < bot) ? nullptr :
// PRIVATE_WORK", which contradicts the prose ("if only the public part is
// empty it returns PRIVATE_WORK"); public_bot < bot is precisely the
// private-part-non-empty condition, so we implement the prose semantics.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopTop(c *counters.Worker) (*T, StealResult) {
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	pb := d.publicBot.Load()
	if pb > uint64(top) {
		task := d.loadSlot(uint64(top))
		c.Add(counters.CAS, counters.LCWSStealCAS)
		if d.age.CompareAndSwap(oldAge, packAge(top+1, tag)) {
			return task, Stolen
		}
		return nil, Abort
	}
	if pb < d.bot.Load() {
		return nil, PrivateWork
	}
	return nil, Empty
}

// PopTopHalf attempts to steal up to half of the public part (rounded up,
// capped at len(buf)) with a single CAS on the age word, writing the
// stolen tasks into buf in top-first (oldest-first) order and returning
// how many were claimed. Accounting matches PopTop: one CAS per attempt
// that found public work (the batch rides on the same claim), nothing
// otherwise.
//
// OWNER DISCIPLINE (batch mode): PopTopHalf is safe against concurrent
// owner operations only when the owner reclaims public work exclusively
// through UnexposeAll and never calls PopPublicBottom. The single-steal
// PopTop is safe against PopPublicBottom because it claims exactly index
// top, which the owner's common (non-emptying) path never touches and the
// emptying path races with a CAS. A batch additionally claims indices
// above top, and the common path of PopPublicBottom plain-takes those
// without touching the age word — a stalled thief's CAS would still
// succeed and re-claim owner-consumed tasks. UnexposeAll instead bumps
// the ABA tag before any reclaimed slot is reused, so a successful batch
// CAS proves every claimed slot was untouched since it was read.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopTopHalf(buf []*T, c *counters.Worker) (int, StealResult) {
	if len(buf) == 0 {
		panic("deque: PopTopHalf requires a non-empty batch buffer")
	}
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	pb := d.publicBot.Load()
	if pb > uint64(top) {
		n := (pb - uint64(top) + 1) / 2 // round(avail/2), at least 1
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		bb := d.buf.Load() // after the age load; see buf
		for i := uint64(0); i < n; i++ {
			buf[i] = bb.slots[(uint64(top)+i)&bb.mask].Load()
		}
		c.Add(counters.CAS, counters.LCWSStealCAS)
		if d.age.CompareAndSwap(oldAge, packAge(top+uint32(n), tag)) {
			return int(n), Stolen
		}
		return 0, Abort
	}
	if pb < d.bot.Load() {
		return 0, PrivateWork
	}
	return 0, Empty
}

// TakeTopRelaxed attempts to steal the top-most unclaimed public task
// with the MultFree relaxed-claim protocol: the claim is a plain store to
// the relNext cursor — per the counting model the steal side executes no
// fence and no CAS (the fully read/write steal of Castañeda & Piña). The
// price is bounded multiplicity: because the claim is not atomic with its
// validation, a task may be returned by more than one thief (at most once
// per thief; internal/verify proves the bound exhaustively for the
// modeled configurations). cl is this thief's private, monotone claim
// memory for this victim: it guarantees the thief never returns the same
// claim index twice, which — together with the owner repair and the fact
// that a relaxed deque never reuses an exposed absolute index within an
// epoch (the owner reclaims exclusively through tag-bumping operations,
// and the rare index reset moves to a fresh epoch whose stale claims are
// rejected by the stamp validation) — is what bounds a task's
// multiplicity by the number of thieves per epoch.
//
// stampOf must return the push stamp the owner wrote into the task
// (PushStamp at fork time; the read must be atomic, because stale slot
// pointers may reference descriptors the owner has recycled). The stamp
// is the relaxed lane's post-read validation: the claim is honored only
// when the loaded task was pushed at exactly the (epoch, index) claimed.
// Without it a thief that stalls between its publicBot load and the slot
// load while the victim's live window slides a full capacity would read
// the task pushed at claim+capacity — a private, possibly never-exposed
// task, unprotected by the owner's join arbitration — out of the slot
// the indices alias to (the backing array is circular). The exclusive
// CAS paths need no stamp: any such slide advances top past the claim
// (the window bound forces it) or bumps the tag, failing the CAS.
//
// idempotent gates eligibility per task: when the claimed slot fails the
// predicate (a non-idempotent Fork2 closure), the thief falls back to the
// exclusive CAS claim of PopTop — possible only when the claim is the
// authoritative top — so non-idempotent tasks are never duplicated.
//
//lcws:noalloc
func (d *SplitDeque[T]) TakeTopRelaxed(cl *RelClaim, idempotent func(*T) bool, stampOf func(*T) uint64, c *counters.Worker) (*T, StealResult) {
	epoch := d.epoch.Load()
	if cl.epoch != epoch {
		// The victim reset its indices since this memory was armed, so
		// its claims are about dead coordinates. Re-arm from zero: safe,
		// because the stamp validation below rejects every slot whose
		// content predates the epoch this claim was computed in.
		cl.epoch = epoch
		cl.next = 0
	}
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	claim := uint64(top)
	if rIdx, rTag := unpackAge(d.relNext.Load()); rTag == tag && uint64(rIdx) > claim {
		claim = uint64(rIdx)
	}
	if cl.next > claim {
		claim = cl.next
	}
	pb := d.publicBot.Load()
	if claim >= pb {
		if pb < d.bot.Load() {
			return nil, PrivateWork
		}
		return nil, Empty
	}
	task := d.loadSlot(claim)
	if task == nil {
		// A read below a grown generation's copy window, or mid-reset:
		// nothing claimable here.
		return nil, Abort
	}
	if stampOf(task)&^StampExposed != makeStamp(epoch, claim) {
		// The slot does not hold the task pushed at the claimed
		// (epoch, index): the read raced a window slide onto an aliased
		// slot, an index reset, or a re-push. Only the exclusive CAS can
		// settle such a race, and only at the authoritative top: CAS
		// success proves the age word — top and tag — never moved since
		// oldAge, which retroactively validates the slot read (any
		// overwrite of the claimed slot requires advancing top past the
		// claim or bumping the tag). This is also how tasks rebased by an
		// index reset, which keep their old-epoch stamps, get consumed.
		if claim != uint64(top) {
			return nil, Abort
		}
		c.Add(counters.CAS, counters.LCWSStealCAS)
		if d.age.CompareAndSwap(oldAge, packAge(top+1, tag)) {
			cl.next = claim + 1
			return task, Stolen
		}
		return nil, Abort
	}
	if !idempotent(task) {
		// Exclusive claim required; only the real top can be CASed.
		if claim != uint64(top) {
			return nil, Abort
		}
		c.Add(counters.CAS, counters.LCWSStealCAS)
		if d.age.CompareAndSwap(oldAge, packAge(top+1, tag)) {
			cl.next = claim + 1
			return task, Stolen
		}
		return nil, Abort
	}
	// The relaxed claim: one plain store, accounted at
	// MultFreeStealFences/MultFreeStealCAS (both zero). A store that lands
	// after an owner reclaim carries a stale tag and is ignored by every
	// reader, so it cannot corrupt the cursor; this thief still returns
	// the task it read, which is exactly the bounded-multiplicity window.
	d.relNext.Store(packAge(uint32(claim)+1, tag))
	cl.next = claim + 1
	c.Inc(counters.RelaxedSteal)
	return task, Stolen
}

// TakeTopHalfRelaxed is the batched composition of TakeTopRelaxed with
// PopTopHalf (WithStealBatch): it claims up to half of the unclaimed
// public part with a single plain cursor store, writing the claimed tasks
// into buf oldest-first and returning how many were claimed. The batch
// stops at the first task that fails the per-slot stamp validation (see
// TakeTopRelaxed) or the idempotent predicate; if the very first task
// fails either, the thief falls back to the exclusive batch CAS of
// PopTopHalf when the claim is the authoritative top — PopTopHalf
// re-reads its slots under its own age load, and its CAS retroactively
// validates every batched read (overwriting any claimed slot requires
// advancing top past it or bumping the tag). Multiplicity is bounded
// exactly as for TakeTopRelaxed — the batch rides on one cursor advance,
// and cl keeps the thief's claims monotone.
//
//lcws:noalloc
func (d *SplitDeque[T]) TakeTopHalfRelaxed(buf []*T, cl *RelClaim, idempotent func(*T) bool, stampOf func(*T) uint64, c *counters.Worker) (int, StealResult) {
	if len(buf) == 0 {
		panic("deque: TakeTopHalfRelaxed requires a non-empty batch buffer")
	}
	epoch := d.epoch.Load()
	if cl.epoch != epoch {
		// See TakeTopRelaxed: the memory belongs to a dead epoch.
		cl.epoch = epoch
		cl.next = 0
	}
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	claim := uint64(top)
	if rIdx, rTag := unpackAge(d.relNext.Load()); rTag == tag && uint64(rIdx) > claim {
		claim = uint64(rIdx)
	}
	if cl.next > claim {
		claim = cl.next
	}
	pb := d.publicBot.Load()
	if claim >= pb {
		if pb < d.bot.Load() {
			return 0, PrivateWork
		}
		return 0, Empty
	}
	n := (pb - claim + 1) / 2 // round(avail/2), at least 1
	if n > uint64(len(buf)) {
		n = uint64(len(buf))
	}
	bb := d.buf.Load() // after the age load; see buf
	k := uint64(0)
	for k < n {
		t := bb.slots[(claim+k)&bb.mask].Load()
		if t == nil || stampOf(t)&^StampExposed != makeStamp(epoch, claim+k) {
			// Stale, aliased or mid-reset read (see TakeTopRelaxed):
			// truncate the batch at the last validated slot.
			break
		}
		if !idempotent(t) {
			break
		}
		buf[k] = t
		k++
	}
	if k == 0 {
		// The oldest unclaimed task is non-idempotent or its slot read
		// failed validation: take the exclusive batch path when the claim
		// is the real top (the batch CAS settles both cases), otherwise
		// leave it for a CAS thief or the owner.
		if claim != uint64(top) {
			return 0, Abort
		}
		return d.PopTopHalf(buf, c)
	}
	d.relNext.Store(packAge(uint32(claim+k), tag))
	cl.next = claim + k
	c.Add(counters.RelaxedSteal, k)
	return int(k), Stolen
}

// repairRelaxed is the owner-side repair of the MultFree protocol
// ("put/take-back" in Castañeda & Piña's terms): it folds an honored
// relaxed-claim cursor into the authoritative top with a tag-preserving
// CAS, so that relaxed-claimed tasks are recognized as consumed before
// the owner reclaims or re-exposes public work. Without this fold a
// reclaim would return claimed tasks to the private part and a later
// Expose would offer them to thieves again, growing multiplicity with
// every expose/unexpose epoch — the negative model in internal/verify
// shows exactly that unbounded counterexample. The CAS races concurrent
// exclusive (fn-task) steals; on failure the fold retries against the
// advanced top. Stale-tagged or rewound cursors are simply not honored.
//
//lcws:noalloc
func (d *SplitDeque[T]) repairRelaxed(c *counters.Worker) {
	for {
		oldAge := d.age.Load()
		top, tag := unpackAge(oldAge)
		rIdx, rTag := unpackAge(d.relNext.Load())
		if rTag != tag || rIdx <= top {
			return
		}
		c.Add(counters.CAS, counters.MultFreeRepairCAS)
		if d.age.CompareAndSwap(oldAge, packAge(rIdx, tag)) {
			return
		}
	}
}

// HasPublicWork reports whether the public part (racily) holds at least
// one stealable task. Thieves use it in the parking lot's pre-park check.
func (d *SplitDeque[T]) HasPublicWork() bool { return d.PublicSize() > 0 }

// Expose transfers tasks from the private part to the public part
// according to mode and returns the number of tasks exposed. Only the
// owner may call it (in the signal-based schedulers it runs inside the
// emulated signal handler, which executes on the owner's goroutine). Per
// footnote 3 of the paper, exposure itself performs no synchronization
// operations; its cost materialises later as the fences of
// PopPublicBottom when exposed tasks are not stolen.
//
//lcws:noalloc
func (d *SplitDeque[T]) Expose(mode ExposeMode, c *counters.Worker) int {
	if d.relaxed {
		d.repairRelaxed(c)
		if top, _ := unpackAge(d.age.Load()); top >= relaxedResetThreshold {
			// Rebase the indices long before the 32-bit top could wrap.
			// The allocation is why the reset lives outside this
			// //lcws:noalloc boundary path, mirroring grow.
			d.resetIndices(c)
		}
	}
	pb := d.publicBot.Load()
	b := d.bot.Load()
	if b < pb {
		// Mid-pop_bottom state of the race-fix variant: the private
		// part is empty.
		return 0
	}
	r := b - pb // private task count
	var n uint64
	switch mode {
	case ExposeOne:
		if r >= 1 {
			n = 1
		}
	case ExposeConservative:
		if r >= 2 {
			n = 1
		}
	case ExposeHalf:
		if r >= 3 {
			n = (r + 1) / 2 // round(r/2)
		} else if r >= 1 {
			n = 1
		}
	default:
		panic(fmt.Sprintf("deque: unknown expose mode %d", mode))
	}
	if n == 0 {
		return 0
	}
	d.publicBot.Store(pb + n)
	if d.relaxed && pb+n > d.maxPub {
		// Record the exposure high-water mark: any task at an absolute
		// index below it may have been loaded by a relaxed thief whose
		// claim is still in flight, so NeverExposed must say false for it
		// forever (the owner core gates task recycling on this).
		d.maxPub = pb + n
	}
	c.Add(counters.Exposure, n)
	return int(n)
}

// relaxedResetThreshold is the top index at which Expose triggers a
// relaxed deque's index reset (resetIndices). 2^31 makes resets
// vanishingly rare — one per two billion consumed tasks — while leaving
// the 32-bit top field a full 2^31 of headroom: between the check and
// the next Expose, top can only advance to publicBot, and publicBot only
// advances in Expose, so indices stay below threshold + the window bound
// (maxCap, itself necessarily < 2^31 for the age word's arithmetic). A
// package variable so tests can lower it and exercise the reset without
// two billion pushes.
var relaxedResetThreshold uint32 = 1 << 31

// resetIndices rebases a relaxed deque's live window to absolute index
// zero and advances the index epoch. A non-relaxed deque resets its
// indices whenever it fully empties (PopPublicBottom), but a relaxed
// deque never takes that path — the monotone claim memories forbid it —
// so without this operation its indices would grow without bound and the
// 32-bit top in the age word would wrap after 2^32 cumulative advances,
// silently diverging from the uint64 bot/publicBot/RelClaim.next.
// Owner-only; called by Expose when top crosses relaxedResetThreshold.
//
// The sequence, in an order each step depends on:
//
//  1. UnexposeAll — reclaims the public part and bumps the ABA tag, so
//     no in-flight exclusive CAS can land on the rewritten age word and
//     no relaxed cursor store survives as honored (the repair inside
//     UnexposeAll folds live claims into top first; after the bump every
//     late cursor store is tag-mismatched and ignored by all readers).
//  2. Copy the live window [top, b) into a FRESH same-size generation at
//     [0, b-top) and publish it. A fresh generation, not an in-place
//     move: the source and destination ranges overlap in mask space, and
//     a superseded generation is never written again — the invariant
//     every stale reader relies on.
//  3. Rewrite bot, publicBot, age and relNext to rebased coordinates.
//     A thief reading a mix of old and new values sees either "nothing
//     public" (publicBot ends at zero, and nothing is exposed until this
//     Expose call proceeds) or a stamp-mismatched slot; both abort.
//  4. epoch advance LAST. The epoch is what re-arms thief claim
//     memories; a thief that observes the new epoch therefore observes
//     every rebased store above (Go atomics are seq-cst). Rebased tasks
//     keep their original old-epoch stamps, so relaxed claims on them
//     fail validation and they are consumed through the exclusive CAS
//     fallback or the owner's own pops — never duplicated across the
//     reset.
//
// The allocation is why the reset lives outside the //lcws:noalloc
// Expose path, exactly like grow under TryPushBottom.
func (d *SplitDeque[T]) resetIndices(c *counters.Worker) {
	d.UnexposeAll(c)
	top, tag := unpackAge(d.age.Load())
	b := d.bot.Load()
	n := b - uint64(top) // the whole deque is private after UnexposeAll
	size := d.ownerMask + 1
	nb := &splitBuf[T]{slots: make([]atomic.Pointer[T], size), mask: size - 1}
	for i := uint64(0); i < n; i++ {
		nb.slots[i&nb.mask].Store(d.ownerSlot(uint64(top) + i))
	}
	d.ownerSlots = nb.slots
	d.ownerMask = nb.mask
	d.buf.Store(nb)
	d.bot.Store(n)
	d.publicBot.Store(0)
	d.age.Store(packAge(0, tag+1))
	d.relNext.Store(packAge(0, tag+1))
	d.cachedTop = 0
	d.maxPub = 0
	d.epoch.Add(1)
	c.Inc(counters.Fence) // ordering of the rebased stores against the epoch advance
}

// PushStamp returns the stamp — the packed (index epoch, absolute index)
// of makeStamp — that the next PushBottom will occupy. Owner-only; the
// MultFree core writes it into each forked task before pushing, so
// relaxed thieves can validate their fence-free slot reads against it
// (TakeTopRelaxed) and the recycling gate (NeverExposed) can be checked
// when the task is freed.
//
//lcws:noalloc
func (d *SplitDeque[T]) PushStamp() uint64 {
	return makeStamp(d.epoch.Load(), d.bot.Load())
}

// NeverExposed reports whether the task carrying stamp has never been
// inside the public window of this (relaxed) deque. Owner-only.
// Conservative on three fronts, each trading a GC-dropped descriptor for
// soundness, never the reverse: a stamp with the sticky StampExposed bit
// (a cross-deque restamp of a steal-batch remnant) reports false
// forever; a stamp minted in a previous index epoch reports false (its
// index means nothing in the current epoch, and a thief claim from
// before the reset may still be in flight on it); and an index once
// exposed reports false even for a later task reusing it privately.
//
//lcws:noalloc
func (d *SplitDeque[T]) NeverExposed(stamp uint64) bool {
	if stamp&StampExposed != 0 {
		return false
	}
	if stamp&stampEpochMask != d.epoch.Load()<<stampEpochShift&stampEpochMask {
		return false
	}
	return stamp&stampIdxMask >= d.maxPub
}

// UnexposeAll transfers every unstolen public task back to the private
// part and returns how many were reclaimed. Only the owner may call it.
// Unlike PopPublicBottom it is also legal with a non-empty private part
// (SpillOldest relies on this): the bot repairs below are conditional on
// bot actually sitting below publicBot — the §4 race-fix decrement —
// so a live private part is never truncated.
//
// This is the operation that distinguishes Lace (van Dijk & van de Pol)
// from LCWS: LCWS never un-exposes — its owner drains leftover public
// work through PopPublicBottom, paying fences per task — whereas Lace
// reclaims the whole public part in one synchronized step and then pops
// it fence-free. The reclaim races concurrent thieves: publicBot is first
// moved to top (hiding the work from new thieves), then the age word's
// tag is bumped with a CAS so that any thief still holding the old age
// fails its steal; if instead a thief advances top first, the owner's CAS
// fails and it retries against the new top.
//
//lcws:noalloc
func (d *SplitDeque[T]) UnexposeAll(c *counters.Worker) int {
	if d.relaxed {
		// Fold honored relaxed claims into top first, so claimed tasks are
		// treated as consumed and never reclaimed into the private part.
		d.repairRelaxed(c)
	}
	for {
		pb := d.publicBot.Load()
		if pb == 0 {
			// Nothing was ever exposed (or the deque reset). There is no
			// race-fix decrement to repair: bot < publicBot cannot hold
			// at publicBot == 0, so bot is left alone (it may hold a
			// non-empty private part when called from SpillOldest).
			return 0
		}
		oldAge := d.age.Load()
		top, tag := unpackAge(oldAge)
		if pb <= uint64(top) {
			// Everything public was stolen; nothing to reclaim.
			if d.raceFix && d.bot.Load() < pb {
				d.bot.Store(pb) // repair after a failed race-fix PopBottom
			}
			return 0
		}
		d.publicBot.Store(uint64(top))
		c.Inc(counters.Fence) // ordering of the store against the CAS below
		c.Inc(counters.CAS)
		if d.age.CompareAndSwap(oldAge, packAge(top, tag+1)) {
			// [top, pb) is now private; restore bot above it only if a
			// failed race-fix PopBottom decremented it (a non-empty
			// private part keeps bot > pb and must not be truncated).
			if d.bot.Load() < pb {
				d.bot.Store(pb)
			}
			n := pb - uint64(top)
			c.Add(counters.ExposedNotStolen, n)
			return int(n)
		}
		// A thief advanced top concurrently; restore the split and
		// retry against the new state.
		d.publicBot.Store(pb)
	}
}

// PrivateSize returns the number of tasks in the private part. Thieves use
// it (via HasTwoTasks) for the Conservative Exposure notification
// condition; the value is naturally racy.
func (d *SplitDeque[T]) PrivateSize() int {
	b := d.bot.Load()
	pb := d.publicBot.Load()
	if b < pb {
		return 0
	}
	return int(b - pb)
}

// PublicSize returns the number of stealable tasks in the public part.
// On a relaxed deque it discounts tasks already claimed through the
// cursor (when the cursor's tag is current), so parked thieves and the
// notify predicates do not chase work that has already been taken.
func (d *SplitDeque[T]) PublicSize() int {
	top, tag := unpackAge(d.age.Load())
	eff := uint64(top)
	if d.relaxed {
		if rIdx, rTag := unpackAge(d.relNext.Load()); rTag == tag && uint64(rIdx) > eff {
			eff = uint64(rIdx)
		}
	}
	pb := d.publicBot.Load()
	if pb < eff {
		return 0
	}
	return int(pb - eff)
}

// HasTwoTasks reports whether the deque holds at least two tasks
// (method has_two_tasks of §4.1.1).
func (d *SplitDeque[T]) HasTwoTasks() bool {
	return d.PrivateSize()+d.PublicSize() >= 2
}

// IsEmpty reports whether the deque holds no tasks at all. The result is
// racy under concurrency and is meant for owner-side assertions and tests.
func (d *SplitDeque[T]) IsEmpty() bool {
	return d.PrivateSize() == 0 && d.PublicSize() == 0
}
