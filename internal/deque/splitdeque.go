package deque

import (
	"fmt"
	"sync/atomic"

	"lcws/internal/counters"
)

// SplitDeque is the LCWS split deque of Listing 2. The task array is split
// at publicBot into a public part [top, publicBot) that thieves may steal
// from, and a private part [publicBot, bot) that only the owner touches.
//
// Index invariants (all indices only reset to zero when the deque fully
// empties through PopPublicBottom):
//
//	top <= publicBot <= bot   (top from the age word)
//
// In the C++ reference, bot and publicBot are plain unsigned ints and the
// algorithm's correctness rests on two explicit seq-cst fences. In Go both
// fields must be atomics because thieves read them (PopTop reads bot to
// distinguish Empty from PrivateWork, and reads publicBot to find the split
// point); Go atomics are seq-cst, which subsumes the fences. The fence and
// CAS accounting below records what the C++ implementation would execute.
//
//lcws:manifest
type SplitDeque[T any] struct {
	bot       atomic.Uint64       //lcws:field atomic — index of the empty slot below the bottom-most task
	publicBot atomic.Uint64       //lcws:field atomic — index below the bottom-most public task
	age       atomic.Uint64       //lcws:field atomic — packed (top, tag)
	raceFix   bool                //lcws:field immutable — use the §4 signal-safe pop_bottom
	deq       []atomic.Pointer[T] //lcws:field immutable — slice header set in NewSplit; slots are atomic
}

// NewSplit returns a SplitDeque with the given capacity (DefaultCapacity
// if capacity <= 0). raceFix selects the §4 pop_bottom variant that is
// safe against an exposure request landing in the middle of pop_bottom;
// the Conservative Exposure policy (§4.1.1) instead keeps the original
// pop_bottom and avoids the race by never exposing the bottom-most task.
func NewSplit[T any](capacity int, raceFix bool) *SplitDeque[T] {
	return &SplitDeque[T]{
		raceFix: raceFix,
		deq:     make([]atomic.Pointer[T], normalizeCapacity(capacity)),
	}
}

// Capacity returns the size of the backing task array.
func (d *SplitDeque[T]) Capacity() int { return len(d.deq) }

// PushBottom appends t to the private part. Per the counting model it
// executes no synchronization operations (paper Lemma 1).
// It panics if the backing array is exhausted; see DefaultCapacity.
//
//lcws:noalloc
func (d *SplitDeque[T]) PushBottom(t *T, c *counters.Worker) {
	b := d.bot.Load()
	if int(b) == len(d.deq) {
		panic(fmt.Sprintf("deque: split deque overflow (capacity %d); construct the scheduler with a larger deque capacity", len(d.deq)))
	}
	d.deq[b].Store(t)
	d.bot.Store(b + 1)
	c.Inc(counters.TaskPushed)
}

// PopBottom removes and returns the bottom-most private task, or nil when
// the private part is empty. Per the counting model it executes no
// synchronization operations (paper Lemma 2).
//
// With raceFix enabled this is the §4 variant: bot is decremented before
// the comparison so that an exposure request arriving between the
// comparison and the decrement cannot make the owner read a task that has
// just become public. When the variant returns nil it leaves bot one below
// publicBot; the subsequent PopPublicBottom call (the only legal next deque
// operation in the scheduler loop) repairs bot on every path.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopBottom(c *counters.Worker) *T {
	if d.raceFix {
		b := d.bot.Load()
		if b == 0 {
			// Deque completely empty and already reset; nothing to
			// decrement. (publicBot <= bot == 0.)
			return nil
		}
		b--
		d.bot.Store(b)
		if b < d.publicBot.Load() {
			return nil
		}
		return d.deq[b].Load()
	}
	b := d.bot.Load()
	if b == d.publicBot.Load() {
		return nil
	}
	b--
	d.bot.Store(b)
	return d.deq[b].Load()
}

// PopPublicBottom removes and returns the bottom-most public task, or nil
// when the deque is empty or the last public task was lost to a thief.
// Only the owner may call it, and only when the private part is empty —
// i.e. after PopBottom returned nil, exactly as in the scheduler loop of
// Listing 1 (the operation rewrites bot, so private tasks would be lost
// otherwise). Fence/CAS accounting follows Listing 2:
// one fence on the common path (line 12), a second fence on the emptying
// path (line 27), and one CAS attempt when racing thieves for the last
// element.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopPublicBottom(c *counters.Worker) *T {
	pb := d.publicBot.Load()
	if pb == 0 {
		if d.raceFix {
			// §4: repair bot after a failed race-fix PopBottom.
			d.bot.Store(0)
		}
		return nil
	}
	pb--
	d.publicBot.Store(pb)
	c.Add(counters.Fence, counters.LCWSPopPublicFences) // line 12 fence
	task := d.deq[pb].Load()
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	if pb > uint64(top) {
		// More public tasks remain below top; no race possible.
		d.bot.Store(pb)
		c.Inc(counters.ExposedNotStolen)
		return task
	}
	// The deque is emptying: race thieves for the last element and reset
	// all indices to zero.
	d.bot.Store(0)
	newAge := packAge(0, tag+1)
	localBot := pb
	d.publicBot.Store(0)
	won := false
	if localBot == uint64(top) {
		c.Add(counters.CAS, counters.LCWSPopPublicRaceCAS)
		won = d.age.CompareAndSwap(oldAge, newAge)
	}
	if !won {
		d.age.Store(newAge)
		task = nil
	} else {
		c.Inc(counters.ExposedNotStolen)
	}
	c.Add(counters.Fence, counters.LCWSPopPublicEmptyFences-counters.LCWSPopPublicFences) // line 27 fence
	return task
}

// PopTop attempts to steal the top-most public task. Any goroutine may
// call it; c must be the calling thief's counter record. Per the counting
// model a steal attempt that finds public work costs one CAS; attempts
// that find the public part empty cost nothing.
//
// Note: Listing 2 line 39 reads "(public_bot < bot) ? nullptr :
// PRIVATE_WORK", which contradicts the prose ("if only the public part is
// empty it returns PRIVATE_WORK"); public_bot < bot is precisely the
// private-part-non-empty condition, so we implement the prose semantics.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopTop(c *counters.Worker) (*T, StealResult) {
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	pb := d.publicBot.Load()
	if pb > uint64(top) {
		task := d.deq[top].Load()
		c.Add(counters.CAS, counters.LCWSStealCAS)
		if d.age.CompareAndSwap(oldAge, packAge(top+1, tag)) {
			return task, Stolen
		}
		return nil, Abort
	}
	if pb < d.bot.Load() {
		return nil, PrivateWork
	}
	return nil, Empty
}

// PopTopHalf attempts to steal up to half of the public part (rounded up,
// capped at len(buf)) with a single CAS on the age word, writing the
// stolen tasks into buf in top-first (oldest-first) order and returning
// how many were claimed. Accounting matches PopTop: one CAS per attempt
// that found public work (the batch rides on the same claim), nothing
// otherwise.
//
// OWNER DISCIPLINE (batch mode): PopTopHalf is safe against concurrent
// owner operations only when the owner reclaims public work exclusively
// through UnexposeAll and never calls PopPublicBottom. The single-steal
// PopTop is safe against PopPublicBottom because it claims exactly index
// top, which the owner's common (non-emptying) path never touches and the
// emptying path races with a CAS. A batch additionally claims indices
// above top, and the common path of PopPublicBottom plain-takes those
// without touching the age word — a stalled thief's CAS would still
// succeed and re-claim owner-consumed tasks. UnexposeAll instead bumps
// the ABA tag before any reclaimed slot is reused, so a successful batch
// CAS proves every claimed slot was untouched since it was read.
//
//lcws:noalloc
func (d *SplitDeque[T]) PopTopHalf(buf []*T, c *counters.Worker) (int, StealResult) {
	if len(buf) == 0 {
		panic("deque: PopTopHalf requires a non-empty batch buffer")
	}
	oldAge := d.age.Load()
	top, tag := unpackAge(oldAge)
	pb := d.publicBot.Load()
	if pb > uint64(top) {
		n := (pb - uint64(top) + 1) / 2 // round(avail/2), at least 1
		if n > uint64(len(buf)) {
			n = uint64(len(buf))
		}
		for i := uint64(0); i < n; i++ {
			buf[i] = d.deq[uint64(top)+i].Load()
		}
		c.Add(counters.CAS, counters.LCWSStealCAS)
		if d.age.CompareAndSwap(oldAge, packAge(top+uint32(n), tag)) {
			return int(n), Stolen
		}
		return 0, Abort
	}
	if pb < d.bot.Load() {
		return 0, PrivateWork
	}
	return 0, Empty
}

// HasPublicWork reports whether the public part (racily) holds at least
// one stealable task. Thieves use it in the parking lot's pre-park check.
func (d *SplitDeque[T]) HasPublicWork() bool { return d.PublicSize() > 0 }

// Expose transfers tasks from the private part to the public part
// according to mode and returns the number of tasks exposed. Only the
// owner may call it (in the signal-based schedulers it runs inside the
// emulated signal handler, which executes on the owner's goroutine). Per
// footnote 3 of the paper, exposure itself performs no synchronization
// operations; its cost materialises later as the fences of
// PopPublicBottom when exposed tasks are not stolen.
//
//lcws:noalloc
func (d *SplitDeque[T]) Expose(mode ExposeMode, c *counters.Worker) int {
	pb := d.publicBot.Load()
	b := d.bot.Load()
	if b < pb {
		// Mid-pop_bottom state of the race-fix variant: the private
		// part is empty.
		return 0
	}
	r := b - pb // private task count
	var n uint64
	switch mode {
	case ExposeOne:
		if r >= 1 {
			n = 1
		}
	case ExposeConservative:
		if r >= 2 {
			n = 1
		}
	case ExposeHalf:
		if r >= 3 {
			n = (r + 1) / 2 // round(r/2)
		} else if r >= 1 {
			n = 1
		}
	default:
		panic(fmt.Sprintf("deque: unknown expose mode %d", mode))
	}
	if n == 0 {
		return 0
	}
	d.publicBot.Store(pb + n)
	c.Add(counters.Exposure, n)
	return int(n)
}

// UnexposeAll transfers every unstolen public task back to the private
// part and returns how many were reclaimed. Only the owner may call it,
// and only when the private part is empty (after PopBottom returned nil).
//
// This is the operation that distinguishes Lace (van Dijk & van de Pol)
// from LCWS: LCWS never un-exposes — its owner drains leftover public
// work through PopPublicBottom, paying fences per task — whereas Lace
// reclaims the whole public part in one synchronized step and then pops
// it fence-free. The reclaim races concurrent thieves: publicBot is first
// moved to top (hiding the work from new thieves), then the age word's
// tag is bumped with a CAS so that any thief still holding the old age
// fails its steal; if instead a thief advances top first, the owner's CAS
// fails and it retries against the new top.
//
//lcws:noalloc
func (d *SplitDeque[T]) UnexposeAll(c *counters.Worker) int {
	for {
		pb := d.publicBot.Load()
		if pb == 0 {
			if d.raceFix {
				d.bot.Store(0)
			}
			return 0
		}
		oldAge := d.age.Load()
		top, tag := unpackAge(oldAge)
		if pb <= uint64(top) {
			// Everything public was stolen; nothing to reclaim.
			if d.raceFix {
				d.bot.Store(pb) // repair after a failed race-fix PopBottom
			}
			return 0
		}
		d.publicBot.Store(uint64(top))
		c.Inc(counters.Fence) // ordering of the store against the CAS below
		c.Inc(counters.CAS)
		if d.age.CompareAndSwap(oldAge, packAge(top, tag+1)) {
			// [top, pb) is now private; restore bot above it (a no-op
			// unless a failed race-fix PopBottom decremented it).
			d.bot.Store(pb)
			n := pb - uint64(top)
			c.Add(counters.ExposedNotStolen, n)
			return int(n)
		}
		// A thief advanced top concurrently; restore the split and
		// retry against the new state.
		d.publicBot.Store(pb)
	}
}

// PrivateSize returns the number of tasks in the private part. Thieves use
// it (via HasTwoTasks) for the Conservative Exposure notification
// condition; the value is naturally racy.
func (d *SplitDeque[T]) PrivateSize() int {
	b := d.bot.Load()
	pb := d.publicBot.Load()
	if b < pb {
		return 0
	}
	return int(b - pb)
}

// PublicSize returns the number of stealable tasks in the public part.
func (d *SplitDeque[T]) PublicSize() int {
	top, _ := unpackAge(d.age.Load())
	pb := d.publicBot.Load()
	if pb < uint64(top) {
		return 0
	}
	return int(pb - uint64(top))
}

// HasTwoTasks reports whether the deque holds at least two tasks
// (method has_two_tasks of §4.1.1).
func (d *SplitDeque[T]) HasTwoTasks() bool {
	return d.PrivateSize()+d.PublicSize() >= 2
}

// IsEmpty reports whether the deque holds no tasks at all. The result is
// racy under concurrency and is meant for owner-side assertions and tests.
func (d *SplitDeque[T]) IsEmpty() bool {
	return d.PrivateSize() == 0 && d.PublicSize() == 0
}
