package deque

import (
	"sync"
	"testing"

	"lcws/internal/counters"
	"lcws/internal/rng"
)

// TestSplitGrowthPreservesContents pushes far past the initial capacity
// and checks LIFO pops return every task, counting one DequeGrow per
// doubling.
func TestSplitGrowthPreservesContents(t *testing.T) {
	for _, raceFix := range []bool{false, true} {
		d := NewSplitMax[int](4, 1<<10, raceFix)
		c := newCtr()
		const n = 300
		ptrs := push(t, d, c, make([]int, n)...)
		for i, p := range ptrs {
			*p = i
		}
		if got := d.Capacity(); got < n {
			t.Fatalf("raceFix=%v: capacity %d after %d pushes, want >= %d", raceFix, got, n, n)
		}
		if g := c.Get(counters.DequeGrow); g == 0 {
			t.Fatalf("raceFix=%v: no DequeGrow counted across %d pushes from capacity 4", raceFix, n)
		}
		for want := n - 1; want >= 0; want-- {
			got := d.PopBottom(c)
			if got == nil || *got != want {
				t.Fatalf("raceFix=%v: PopBottom = %v, want %d", raceFix, got, want)
			}
		}
	}
}

// TestSplitGrowthPreservesPublicPart grows with an exposed public part
// and checks thieves still steal the old tasks FIFO afterwards.
func TestSplitGrowthPreservesPublicPart(t *testing.T) {
	d := NewSplitMax[int](4, 1<<10, false)
	owner, thief := newCtr(), newCtr()
	ptrs := push(t, d, owner, 0, 1, 2)
	for i, p := range ptrs {
		*p = i
	}
	d.Expose(ExposeHalf, owner) // public: [0 1]
	// Push past capacity 4: the array doubles with a live public part.
	more := push(t, d, owner, make([]int, 20)...)
	for i, p := range more {
		*p = 3 + i
	}
	if owner.Get(counters.DequeGrow) == 0 {
		t.Fatal("no growth happened")
	}
	for want := 0; want <= 1; want++ {
		got, res := d.PopTop(thief)
		if res != Stolen || got == nil || *got != want {
			t.Fatalf("steal after growth = %v, %v; want Stolen %d", got, res, want)
		}
	}
}

// TestSplitIndicesResetAfterGrowth checks the empty-reset invariant
// (indices return to zero when the deque drains through the public path)
// still holds on a grown array.
func TestSplitIndicesResetAfterGrowth(t *testing.T) {
	d := NewSplitMax[int](4, 1<<10, false)
	c := newCtr()
	push(t, d, c, make([]int, 100)...) // forces growth
	for d.PopBottom(c) != nil {
	}
	// Drain through the public path to trigger the emptying reset.
	push(t, d, c, 1, 2)
	d.Expose(ExposeOne, c)
	d.Expose(ExposeOne, c)
	for d.PopPublicBottom(c) != nil {
	}
	if b := d.bot.Load(); b != 0 {
		t.Fatalf("bot = %d after empty drain on grown array, want 0", b)
	}
	if top, _ := unpackAge(d.age.Load()); top != 0 {
		t.Fatalf("top = %d after empty drain on grown array, want 0", top)
	}
	// The owner's cached top bound must have reset too: with capacity 128
	// a stale cachedTop would misjudge the window on the next fill.
	push(t, d, c, make([]int, 100)...)
	for want := 0; want < 100; want++ {
		if d.PopBottom(c) == nil {
			t.Fatalf("pop %d after reset returned nil", want)
		}
	}
}

// TestSplitTryPushBottomAtMax checks TryPushBottom reports failure (and
// PushBottom panics) exactly when the live window fills the maximum
// capacity.
func TestSplitTryPushBottomAtMax(t *testing.T) {
	d := NewSplitMax[int](2, 8, false)
	c := newCtr()
	for i := 0; i < 8; i++ {
		if !d.TryPushBottom(new(int), c) {
			t.Fatalf("TryPushBottom %d failed below the maximum capacity", i)
		}
	}
	if d.TryPushBottom(new(int), c) {
		t.Fatal("TryPushBottom succeeded with the window at the maximum capacity")
	}
	if d.Capacity() != 8 || d.MaxCapacity() != 8 {
		t.Fatalf("capacity %d / max %d, want 8 / 8", d.Capacity(), d.MaxCapacity())
	}
	// Draining one task re-opens the window.
	if d.PopBottom(c) == nil {
		t.Fatal("drain pop failed")
	}
	if !d.TryPushBottom(new(int), c) {
		t.Fatal("TryPushBottom failed after draining one task")
	}
}

// TestSplitSpillOldestOrdering spills from a full deque and checks the
// extracted tasks are the oldest, in oldest-first order, and the deque
// keeps working (LIFO pops, steals) afterwards.
func TestSplitSpillOldestOrdering(t *testing.T) {
	for _, raceFix := range []bool{false, true} {
		d := NewSplitMax[int](8, 8, raceFix)
		c := newCtr()
		ptrs := push(t, d, c, make([]int, 8)...)
		for i, p := range ptrs {
			*p = i
		}
		d.Expose(ExposeHalf, c) // a live public part must not break spilling
		out := make([]*int, 3)
		n := d.SpillOldest(out, c)
		if n != 3 {
			t.Fatalf("raceFix=%v: SpillOldest = %d, want 3", raceFix, n)
		}
		for i := 0; i < 3; i++ {
			if out[i] == nil || *out[i] != i {
				t.Fatalf("raceFix=%v: spilled[%d] = %v, want %d (oldest-first)", raceFix, i, out[i], i)
			}
		}
		// Remaining tasks [3..7] are all private and pop LIFO.
		if ps := d.PrivateSize(); ps != 5 {
			t.Fatalf("raceFix=%v: PrivateSize after spill = %d, want 5", raceFix, ps)
		}
		for want := 7; want >= 3; want-- {
			got := d.PopBottom(c)
			if got == nil || *got != want {
				t.Fatalf("raceFix=%v: PopBottom after spill = %v, want %d", raceFix, got, want)
			}
		}
		// Spilling freed window space: pushes work again without growth.
		if !d.TryPushBottom(new(int), c) {
			t.Fatalf("raceFix=%v: push after spill-drain failed", raceFix)
		}
	}
}

// TestSplitSpillOldestEdgeCases covers empty deque, empty out buffer, and
// spilling more than the deque holds.
func TestSplitSpillOldestEdgeCases(t *testing.T) {
	d := NewSplitMax[int](4, 4, false)
	c := newCtr()
	out := make([]*int, 8)
	if n := d.SpillOldest(out, c); n != 0 {
		t.Fatalf("SpillOldest on empty deque = %d, want 0", n)
	}
	push(t, d, c, 1, 2)
	if n := d.SpillOldest(nil, c); n != 0 {
		t.Fatalf("SpillOldest with nil buffer = %d, want 0", n)
	}
	if n := d.SpillOldest(out, c); n != 2 {
		t.Fatalf("SpillOldest of 2 tasks into 8 slots = %d, want 2", n)
	}
	if *out[0] != 1 || *out[1] != 2 {
		t.Fatalf("spilled = %d, %d; want 1, 2", *out[0], *out[1])
	}
	if !d.IsEmpty() {
		t.Fatal("deque not empty after full spill")
	}
	// A fully spilled deque accepts new work.
	push(t, d, c, 9)
	if got := d.PopBottom(c); got == nil || *got != 9 {
		t.Fatalf("push/pop after full spill = %v, want 9", got)
	}
}

// TestSplitGrowthRacesThieves hammers a tiny deque with thieves while
// the owner's pushes force repeated growth; every task must be taken
// exactly once. Run under -race this also checks the generation
// publication protocol is data-race free.
func TestSplitGrowthRacesThieves(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	for _, raceFix := range []bool{false, true} {
		d := NewSplitMax[int](2, 1<<15, raceFix)
		ownerCtr := newCtr()
		counts := make([][]int32, thieves+1)
		for i := range counts {
			counts[i] = make([]int32, tasks)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for th := 0; th < thieves; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				c := newCtr()
				for {
					task, res := d.PopTop(c)
					if res == Stolen {
						counts[th][*task]++
					}
					select {
					case <-stop:
						if _, res := d.PopTop(c); res == Empty {
							return
						}
					default:
					}
				}
			}(th)
		}
		g := rng.New(uint64(tasks))
		pushed := 0
		for pushed < tasks || !d.IsEmpty() {
			// No PrivateSize cap: the window regularly outgrows the
			// capacity-2 start, forcing growth under an active steal storm.
			if pushed < tasks && d.PrivateSize() < 200 {
				p := new(int)
				*p = pushed
				d.PushBottom(p, ownerCtr)
				pushed++
			}
			switch g.Intn(3) {
			case 0:
				d.Expose(ExposeHalf, ownerCtr)
			case 1, 2:
				if task := d.PopBottom(ownerCtr); task != nil {
					counts[thieves][*task]++
				} else if task := d.PopPublicBottom(ownerCtr); task != nil {
					counts[thieves][*task]++
				}
			}
		}
		close(stop)
		wg.Wait()
		if ownerCtr.Get(counters.DequeGrow) == 0 {
			t.Fatalf("raceFix=%v: stress run never grew the deque", raceFix)
		}
		for i := 0; i < tasks; i++ {
			var n int32
			for th := range counts {
				n += counts[th][i]
			}
			if n != 1 {
				t.Fatalf("raceFix=%v: task %d taken %d times, want exactly 1", raceFix, i, n)
			}
		}
	}
}

// TestChaseLevGrowthPreservesContents mirrors the split-deque growth
// test for both ChaseLev modes.
func TestChaseLevGrowthPreservesContents(t *testing.T) {
	for _, batched := range []bool{false, true} {
		var d *ChaseLev[int]
		if batched {
			d = NewChaseLevBatchMax[int](4, 1<<10)
		} else {
			d = NewChaseLevMax[int](4, 1<<10)
		}
		c := newCtr()
		const n = 300
		for i := 0; i < n; i++ {
			p := new(int)
			*p = i
			d.PushBottom(p, c)
		}
		if got := d.Capacity(); got < n {
			t.Fatalf("batched=%v: capacity %d after %d pushes, want >= %d", batched, got, n, n)
		}
		if c.Get(counters.DequeGrow) == 0 {
			t.Fatalf("batched=%v: no DequeGrow counted", batched)
		}
		for want := n - 1; want >= 0; want-- {
			got := d.PopBottom(c)
			if got == nil || *got != want {
				t.Fatalf("batched=%v: PopBottom = %v, want %d", batched, got, want)
			}
		}
	}
}

// TestChaseLevTryPushBottomAtMax checks the ceiling behaviour in both
// modes.
func TestChaseLevTryPushBottomAtMax(t *testing.T) {
	for _, batched := range []bool{false, true} {
		var d *ChaseLev[int]
		if batched {
			d = NewChaseLevBatchMax[int](2, 8)
		} else {
			d = NewChaseLevMax[int](2, 8)
		}
		c := newCtr()
		for i := 0; i < 8; i++ {
			if !d.TryPushBottom(new(int), c) {
				t.Fatalf("batched=%v: TryPushBottom %d failed below the maximum capacity", batched, i)
			}
		}
		if d.TryPushBottom(new(int), c) {
			t.Fatalf("batched=%v: TryPushBottom succeeded at the maximum capacity", batched)
		}
		if d.PopBottom(c) == nil {
			t.Fatalf("batched=%v: drain pop failed", batched)
		}
		if !d.TryPushBottom(new(int), c) {
			t.Fatalf("batched=%v: TryPushBottom failed after draining one task", batched)
		}
	}
}

// TestChaseLevSpillOldestOrdering checks SpillOldest extracts oldest
// tasks first in both modes and leaves the rest poppable.
func TestChaseLevSpillOldestOrdering(t *testing.T) {
	for _, batched := range []bool{false, true} {
		var d *ChaseLev[int]
		if batched {
			d = NewChaseLevBatchMax[int](8, 8)
		} else {
			d = NewChaseLevMax[int](8, 8)
		}
		c := newCtr()
		for i := 0; i < 8; i++ {
			p := new(int)
			*p = i
			d.PushBottom(p, c)
		}
		out := make([]*int, 3)
		n := d.SpillOldest(out, c)
		if n != 3 {
			t.Fatalf("batched=%v: SpillOldest = %d, want 3", batched, n)
		}
		for i := 0; i < 3; i++ {
			if out[i] == nil || *out[i] != i {
				t.Fatalf("batched=%v: spilled[%d] = %v, want %d", batched, i, out[i], i)
			}
		}
		for want := 7; want >= 3; want-- {
			got := d.PopBottom(c)
			if got == nil || *got != want {
				t.Fatalf("batched=%v: PopBottom after spill = %v, want %d", batched, got, want)
			}
		}
	}
}

// TestChaseLevGrowthRacesThieves forces repeated growth under a steal
// storm in both modes; every task must be taken exactly once.
func TestChaseLevGrowthRacesThieves(t *testing.T) {
	const (
		tasks   = 20000
		thieves = 4
	)
	for _, batched := range []bool{false, true} {
		var d *ChaseLev[int]
		if batched {
			d = NewChaseLevBatchMax[int](2, 1<<15)
		} else {
			d = NewChaseLevMax[int](2, 1<<15)
		}
		ownerCtr := newCtr()
		counts := make([][]int32, thieves+1)
		for i := range counts {
			counts[i] = make([]int32, tasks)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for th := 0; th < thieves; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				c := newCtr()
				var batch [4]*int
				for {
					if batched {
						n, res := d.PopTopN(batch[:], c)
						if res == Stolen {
							for i := 0; i < n; i++ {
								counts[th][*batch[i]]++
							}
						}
					} else {
						task, res := d.PopTop(c)
						if res == Stolen {
							counts[th][*task]++
						}
					}
					select {
					case <-stop:
						if d.IsEmpty() {
							return
						}
					default:
					}
				}
			}(th)
		}
		g := rng.New(uint64(tasks))
		pushed := 0
		for pushed < tasks || !d.IsEmpty() {
			if pushed < tasks && d.Size() < 200 {
				p := new(int)
				*p = pushed
				d.PushBottom(p, ownerCtr)
				pushed++
			}
			if g.Intn(2) == 0 {
				if task := d.PopBottom(ownerCtr); task != nil {
					counts[thieves][*task]++
				}
			}
		}
		close(stop)
		wg.Wait()
		if ownerCtr.Get(counters.DequeGrow) == 0 {
			t.Fatalf("batched=%v: stress run never grew the deque", batched)
		}
		for i := 0; i < tasks; i++ {
			var n int32
			for th := range counts {
				n += counts[th][i]
			}
			if n != 1 {
				t.Fatalf("batched=%v: task %d taken %d times, want exactly 1", batched, i, n)
			}
		}
	}
}
