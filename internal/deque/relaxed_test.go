package deque

import (
	"testing"

	"lcws/internal/counters"
)

// Tests for the MultFree relaxed claim protocol: TakeTopRelaxed /
// TakeTopHalfRelaxed, the owner-side repair fold, the post-read stamp
// validation, the index reset, and the recycling gate. These cover what
// is sequentially reachable through the public API — the claim
// arithmetic, the pinned fallback, the monotone claim memory, and the
// fence/CAS accounting against the MultFree counting model
// (internal/counters/model.go) — plus white-box corruptions of the slot
// array standing in for the stale reads only an adversarial scheduler
// can produce. The concurrency properties (the multiplicity bound under
// arbitrary interleavings, the necessity of the repair fold, the
// stale-read hazard of a circularly aliased slot) are proved
// exhaustively in internal/verify and exercised under -race by the
// scheduler-level stress tests.

func newRelaxed(t *testing.T) *SplitDeque[int] {
	t.Helper()
	return NewSplitRelaxed[int](16, 64, true)
}

// exposeAll publishes the entire private part.
func exposeAll(d *SplitDeque[int], c *counters.Worker) {
	for d.PrivateSize() > 0 {
		d.Expose(ExposeHalf, c)
	}
}

func alwaysIdempotent(*int) bool { return true }

func neverIdempotent(*int) bool { return false }

// stamps is the test-side stand-in for core.Task's pushStamp field: a
// side table from element to the stamp the owner minted at push time.
// Sequential tests only, so a plain map suffices where the scheduler
// needs an atomic field.
type stamps map[*int]uint64

func (s stamps) of(p *int) uint64 { return s[p] }

// pushStamped is splitdeque_test.go's push helper plus the owner-side
// stamping the MultFree core performs before every relaxed push.
func pushStamped(t *testing.T, d *SplitDeque[int], s stamps, c *counters.Worker, vals ...int) []*int {
	t.Helper()
	out := make([]*int, len(vals))
	for i, v := range vals {
		p := new(int)
		*p = v
		s[p] = d.PushStamp()
		d.PushBottom(p, c)
		out[i] = p
	}
	return out
}

func TestRelaxedStealDrainsOldestFirst(t *testing.T) {
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	pushStamped(t, d, st, owner, 1, 2, 3, 4)
	exposeAll(d, owner)
	var cl RelClaim
	for want := 1; want <= 4; want++ {
		got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief)
		if res != Stolen || got == nil || *got != want {
			t.Fatalf("relaxed steal %d = %v, %v; want %d, stolen", want, got, res, want)
		}
	}
	if _, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Empty {
		t.Fatalf("steal from drained deque = %v, want empty", res)
	}
}

func TestRelaxedStealAccounting(t *testing.T) {
	// Model: a relaxed claim costs MultFreeStealFences fences and
	// MultFreeStealCAS CAS (both zero) and counts one relaxed steal per
	// task; the owner's reclaim pays MultFreeRepairCAS for the cursor
	// fold on top of its usual cost (here the all-stolen path, which
	// pays nothing further).
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	pushStamped(t, d, st, owner, 1, 2, 3, 4)
	exposeAll(d, owner)
	var cl RelClaim
	for i := 0; i < 4; i++ {
		if _, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Stolen {
			t.Fatalf("steal %d = %v, want stolen", i, res)
		}
	}
	if f, cas := syncOf(thief); f != 4*counters.MultFreeStealFences || cas != 4*counters.MultFreeStealCAS {
		t.Errorf("4 relaxed steals cost (%d fences, %d CAS), want (0, 0)", f, cas)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 4 {
		t.Errorf("relaxed_steals = %d, want 4", got)
	}
	of, ocas := syncOf(owner)
	if of != 0 || ocas != 0 {
		t.Fatalf("owner pre-reclaim sync (%d, %d), want (0, 0)", of, ocas)
	}
	if n := d.UnexposeAll(owner); n != 0 {
		t.Errorf("UnexposeAll reclaimed %d claimed tasks, want 0", n)
	}
	if f, cas := syncOf(owner); f != 0 || cas != counters.MultFreeRepairCAS {
		t.Errorf("reclaim after full drain cost (%d fences, %d CAS), want (0, %d)",
			f, cas, counters.MultFreeRepairCAS)
	}
}

func TestRelaxedPinnedFallbackCAS(t *testing.T) {
	// A non-idempotent task at the authoritative top is claimed through
	// the exclusive CAS (priced like any LCWS steal); above top the
	// thief must abort rather than claim it without exclusion.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	pushStamped(t, d, st, owner, 1, 2)
	exposeAll(d, owner)
	var cl RelClaim
	got, res := d.TakeTopRelaxed(&cl, neverIdempotent, st.of, thief)
	if res != Stolen || got == nil || *got != 1 {
		t.Fatalf("pinned steal at top = %v, %v; want 1, stolen", got, res)
	}
	if f, cas := syncOf(thief); f != 0 || cas != counters.LCWSStealCAS {
		t.Errorf("pinned steal cost (%d fences, %d CAS), want (0, %d)", f, cas, counters.LCWSStealCAS)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 0 {
		t.Errorf("pinned steal counted %d relaxed steals, want 0", got)
	}
	// Make the thief's claim run ahead of top: one relaxed claim bumps
	// cl past the authoritative top, so a subsequent non-idempotent
	// claim is above top and must abort.
	d2 := newRelaxed(t)
	owner2, thief2 := newCtr(), newCtr()
	st2 := stamps{}
	pushStamped(t, d2, st2, owner2, 1, 2)
	exposeAll(d2, owner2)
	var cl2 RelClaim
	if _, res := d2.TakeTopRelaxed(&cl2, alwaysIdempotent, st2.of, thief2); res != Stolen {
		t.Fatalf("relaxed warm-up steal = %v, want stolen", res)
	}
	if _, res := d2.TakeTopRelaxed(&cl2, neverIdempotent, st2.of, thief2); res != Abort {
		t.Errorf("pinned claim above top = %v, want abort", res)
	}
}

func TestRelaxedBatchClaim(t *testing.T) {
	// One cursor store claims up to half of the public part (capped at
	// the buffer), oldest-first, with zero fences and CAS.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	pushStamped(t, d, st, owner, 1, 2, 3, 4, 5, 6, 7, 8)
	exposeAll(d, owner)
	buf := make([]*int, 4)
	var cl RelClaim
	n, res := d.TakeTopHalfRelaxed(buf, &cl, alwaysIdempotent, st.of, thief)
	if res != Stolen || n != 4 {
		t.Fatalf("batched relaxed claim = %d, %v; want 4, stolen", n, res)
	}
	for i := 0; i < n; i++ {
		if *buf[i] != i+1 {
			t.Errorf("batch[%d] = %d, want %d (oldest first)", i, *buf[i], i+1)
		}
	}
	if f, cas := syncOf(thief); f != 0 || cas != 0 {
		t.Errorf("batched relaxed claim cost (%d fences, %d CAS), want (0, 0)", f, cas)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 4 {
		t.Errorf("relaxed_steals = %d, want 4 (one per claimed task)", got)
	}
}

func TestRelaxedBatchStopsAtPinned(t *testing.T) {
	// The batch must not claim past a non-idempotent task: claiming it
	// with a plain store would allow duplication of a task that cannot
	// tolerate it.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	vals := pushStamped(t, d, st, owner, 1, 2, 3, 4, 5, 6, 7, 8)
	pinned := vals[2] // third-oldest task is non-idempotent
	idem := func(p *int) bool { return p != pinned }
	exposeAll(d, owner)
	buf := make([]*int, 8)
	var cl RelClaim
	n, res := d.TakeTopHalfRelaxed(buf, &cl, idem, st.of, thief)
	if res != Stolen || n != 2 {
		t.Fatalf("batch into pinned task = %d, %v; want 2, stolen", n, res)
	}
	if *buf[0] != 1 || *buf[1] != 2 {
		t.Errorf("batch claimed (%d, %d), want (1, 2)", *buf[0], *buf[1])
	}
	// The pinned task is now at the thief's claim == top? No: top is
	// still 0 (no repair ran), the claim is 2, so a retry falls back to
	// the exclusive path only at top — it must abort instead.
	n, res = d.TakeTopHalfRelaxed(buf, &cl, idem, st.of, thief)
	if res != Abort || n != 0 {
		t.Errorf("batch at pinned non-top claim = %d, %v; want 0, abort", n, res)
	}
}

func TestRelaxedUnexposeReclaimsOnlyUnclaimed(t *testing.T) {
	// The repair fold runs before the reclaim, so claimed tasks are
	// consumed and only the unclaimed suffix returns to the private
	// part, where the owner pops it LIFO.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	pushStamped(t, d, st, owner, 1, 2, 3)
	exposeAll(d, owner)
	var cl RelClaim
	if got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Stolen || *got != 1 {
		t.Fatalf("relaxed steal = %v, %v; want 1, stolen", got, res)
	}
	if n := d.UnexposeAll(owner); n != 2 {
		t.Fatalf("UnexposeAll reclaimed %d, want 2 (the unclaimed tasks)", n)
	}
	for _, want := range []int{3, 2} {
		got := d.PopBottom(owner)
		if got == nil || *got != want {
			t.Fatalf("PopBottom after reclaim = %v, want %d", got, want)
		}
	}
	if got := d.PopBottom(owner); got != nil {
		t.Fatalf("deque should be empty, popped %d", *got)
	}
}

func TestRelaxedStaleCursorIgnoredAcrossEpochs(t *testing.T) {
	// After an owner reclaim bumps the tag, the old cursor is stale: a
	// later exposure must offer work from the authoritative top, not
	// from the dead cursor, and a fresh thief must receive the new task.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	pushStamped(t, d, st, owner, 1)
	exposeAll(d, owner)
	var cl RelClaim
	if got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Stolen || *got != 1 {
		t.Fatalf("epoch-1 steal = %v, %v; want 1, stolen", got, res)
	}
	d.UnexposeAll(owner) // folds the claim; cursor is now stale-tagged
	pushStamped(t, d, st, owner, 2)
	exposeAll(d, owner)
	var fresh RelClaim
	got, res := d.TakeTopRelaxed(&fresh, alwaysIdempotent, st.of, thief)
	if res != Stolen || got == nil || *got != 2 {
		t.Fatalf("epoch-2 steal = %v, %v; want 2, stolen", got, res)
	}
}

func TestRelaxedClaimMemoryIsMonotone(t *testing.T) {
	// A thief's claim memory never re-claims an index it already
	// returned, even when the owner re-exposes the same absolute index
	// range... which a relaxed deque never does within an epoch: indices
	// only grow. The observable contract is that repeated drains see
	// strictly newer tasks.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	var cl RelClaim
	seen := map[int]int{}
	for round := 0; round < 3; round++ {
		pushStamped(t, d, st, owner, 10*round+1, 10*round+2)
		exposeAll(d, owner)
		for {
			got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief)
			if res != Stolen {
				break
			}
			seen[*got]++
		}
		d.UnexposeAll(owner)
	}
	if len(seen) != 6 {
		t.Fatalf("thief saw %d distinct tasks, want 6: %v", len(seen), seen)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("task %d returned %d times in a sequential drain, want 1", v, n)
		}
	}
}

func TestRelaxedStaleSlotReadAborts(t *testing.T) {
	// The post-read validation: a slot whose content does not carry the
	// claimed (epoch, index) stamp must never be honored by the plain
	// relaxed claim. Concurrently this happens when the victim's live
	// window slides a full capacity past a stalled thief and the claimed
	// slot aliases to a younger (possibly never-exposed, recyclable)
	// task; sequentially we corrupt the slot by hand. At the
	// authoritative top the thief may settle the race with the exclusive
	// CAS — CAS success proves the slot was not overwritten, so here
	// (where it WAS overwritten but the age word is untouched) the CAS
	// legitimately claims the slot's current occupant. Above top there
	// is no CAS to lean on and the claim must abort.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	vals := pushStamped(t, d, st, owner, 1, 2, 3)
	exposeAll(d, owner)
	var cl RelClaim
	if got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Stolen || *got != 1 {
		t.Fatalf("warm-up steal = %v, %v; want 1, stolen", got, res)
	}
	// Corrupt the slot of the thief's next claim (index 1, above the
	// untouched top 0) with a task stamped for another index.
	d.ownerSlots[1&d.ownerMask].Store(vals[2])
	if _, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Abort {
		t.Fatalf("mis-stamped slot above top = %v, want abort", res)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 1 {
		t.Errorf("relaxed_steals = %d after aborted validation, want 1 (the warm-up only)", got)
	}
	// A nil slot (readable below a grown generation's copy window, or
	// mid-reset) aborts even at the authoritative top: there is nothing
	// to validate or CAS over.
	d2 := newRelaxed(t)
	owner2, thief2 := newCtr(), newCtr()
	st2 := stamps{}
	pushStamped(t, d2, st2, owner2, 1)
	exposeAll(d2, owner2)
	d2.ownerSlots[0].Store(nil)
	var cl2 RelClaim
	if _, res := d2.TakeTopRelaxed(&cl2, alwaysIdempotent, st2.of, thief2); res != Abort {
		t.Fatalf("nil slot at top = %v, want abort", res)
	}
}

func TestRelaxedStaleSlotReadFallsBackToCASAtTop(t *testing.T) {
	// At claim == top a stamp mismatch downgrades to the exclusive CAS
	// instead of aborting: CAS success proves the age word never moved,
	// which retroactively validates the read — and it is also how tasks
	// rebased by an index reset (old-epoch stamps) get consumed. Here
	// the slot legitimately holds a differently-stamped task, so the
	// thief must claim it exclusively, pay the CAS, and not count a
	// relaxed steal.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	vals := pushStamped(t, d, st, owner, 1, 2)
	exposeAll(d, owner)
	d.ownerSlots[0].Store(vals[1]) // slot 0 now carries the stamp of index 1
	var cl RelClaim
	got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief)
	if res != Stolen || got != vals[1] {
		t.Fatalf("mis-stamped slot at top = %v, %v; want occupant via CAS, stolen", got, res)
	}
	if f, cas := syncOf(thief); f != 0 || cas != counters.LCWSStealCAS {
		t.Errorf("validation fallback cost (%d fences, %d CAS), want (0, %d)", f, cas, counters.LCWSStealCAS)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 0 {
		t.Errorf("validation fallback counted %d relaxed steals, want 0", got)
	}
}

func TestRelaxedBatchTruncatesAtStaleSlot(t *testing.T) {
	// The batched claim validates every slot and truncates at the first
	// mismatch, claiming only the validated prefix.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	vals := pushStamped(t, d, st, owner, 1, 2, 3, 4, 5, 6, 7, 8)
	exposeAll(d, owner)
	d.ownerSlots[2&d.ownerMask].Store(vals[7]) // index 2 mis-stamped
	buf := make([]*int, 8)
	var cl RelClaim
	n, res := d.TakeTopHalfRelaxed(buf, &cl, alwaysIdempotent, st.of, thief)
	if res != Stolen || n != 2 {
		t.Fatalf("batch into mis-stamped slot = %d, %v; want 2, stolen", n, res)
	}
	if *buf[0] != 1 || *buf[1] != 2 {
		t.Errorf("batch claimed (%d, %d), want (1, 2)", *buf[0], *buf[1])
	}
}

func TestRelaxedIndexReset(t *testing.T) {
	// Lowering the reset threshold, a long-lived relaxed deque must
	// rebase its indices through Expose: the epoch advances, the live
	// window lands at index zero in a fresh generation, stale claim
	// memories re-arm, and no task is lost or double-returned across the
	// reset (rebased tasks keep their old-epoch stamps and are consumed
	// through the CAS fallback).
	old := relaxedResetThreshold
	relaxedResetThreshold = 8
	defer func() { relaxedResetThreshold = old }()

	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	var cl RelClaim
	seen := map[int]int{}
	next := 1
	for round := 0; round < 12; round++ {
		pushStamped(t, d, st, owner, next, next+1)
		next += 2
		exposeAll(d, owner)
		for {
			got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief)
			if res != Stolen {
				if res != Empty {
					t.Fatalf("round %d: sequential drain ended with %v, want empty", round, res)
				}
				break
			}
			seen[*got]++
		}
	}
	if d.epoch.Load() == 0 {
		t.Fatal("top crossed the lowered threshold but no index reset happened")
	}
	if top, _ := unpackAge(d.age.Load()); top >= uint32(next) {
		t.Errorf("post-reset top = %d, want rebased below the %d tasks ever pushed", top, next)
	}
	if len(seen) != next-1 {
		t.Fatalf("thief saw %d distinct tasks, want %d", len(seen), next-1)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("task %d returned %d times across the reset, want 1", v, n)
		}
	}
}

func TestRelaxedIndexResetRebasesLiveWindow(t *testing.T) {
	// A reset with unconsumed tasks must carry them into the rebased
	// window: the owner still pops every one of them, and a thief with a
	// pre-reset claim memory re-arms instead of claiming dead indices.
	old := relaxedResetThreshold
	relaxedResetThreshold = 8
	defer func() { relaxedResetThreshold = old }()

	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	st := stamps{}
	var cl RelClaim
	// Advance top to the threshold by cycling claimed work, folding the
	// cursor through UnexposeAll (which repairs but never resets), so
	// the reset itself is staged to fire at the next Expose.
	for i := uint32(0); i < relaxedResetThreshold; i++ {
		pushStamped(t, d, st, owner, int(i))
		exposeAll(d, owner)
		if _, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief); res != Stolen {
			t.Fatalf("cycle steal %d = %v, want stolen", i, res)
		}
		d.UnexposeAll(owner)
	}
	if top, _ := unpackAge(d.age.Load()); top < relaxedResetThreshold {
		t.Fatalf("staging left top = %d, want >= %d", top, relaxedResetThreshold)
	}
	// Push live tasks, then trigger the reset via Expose.
	pushStamped(t, d, st, owner, 101, 102, 103)
	preEpoch := d.epoch.Load()
	exposeAll(d, owner)
	if d.epoch.Load() == preEpoch {
		t.Fatal("Expose above the threshold did not reset the indices")
	}
	if top, _ := unpackAge(d.age.Load()); top != 0 {
		t.Errorf("post-reset top = %d, want 0", top)
	}
	// The stale claim memory re-arms on its next use; the rebased tasks
	// carry old-epoch stamps, so they are consumed via the CAS fallback
	// in index order.
	for _, want := range []int{101, 102, 103} {
		got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, st.of, thief)
		if res != Stolen || got == nil || *got != want {
			t.Fatalf("post-reset steal = %v, %v; want %d, stolen", got, res, want)
		}
	}
	if !d.IsEmpty() {
		t.Error("deque should be empty after draining the rebased window")
	}
}

func TestRelaxedRecyclingGate(t *testing.T) {
	// PushStamp/NeverExposed: a task whose stamp stayed private through
	// its whole life may be recycled; any stamp the high-water mark of
	// exposure has passed may not (a straggler's stale read could still
	// observe the slot). Stamps from another index epoch and stamps
	// carrying the sticky StampExposed bit (cross-deque batch-remnant
	// restamps) are conservatively unrecyclable too.
	d := newRelaxed(t)
	owner := newCtr()
	v := 1
	stamp := d.PushStamp()
	d.PushBottom(&v, owner)
	if !d.NeverExposed(stamp) {
		t.Fatalf("private-only stamp %#x reported as exposed", stamp)
	}
	if d.PopBottom(owner) == nil {
		t.Fatal("pop of private task failed")
	}
	if !d.NeverExposed(stamp) {
		t.Errorf("stamp %#x never exposed but gate rejects recycling", stamp)
	}
	stamp2 := d.PushStamp()
	d.PushBottom(&v, owner)
	exposeAll(d, owner)
	if d.NeverExposed(stamp2) {
		t.Errorf("exposed stamp %#x still reported never-exposed", stamp2)
	}
	d.UnexposeAll(owner)
	if d.NeverExposed(stamp2) {
		t.Errorf("reclaimed stamp %#x must stay unrecyclable (stale thief reads)", stamp2)
	}
	if d.NeverExposed(stamp | StampExposed) {
		t.Error("sticky StampExposed bit must make any stamp unrecyclable")
	}
	otherEpoch := makeStamp(d.epoch.Load()+1, 1<<20)
	if d.NeverExposed(otherEpoch) {
		t.Error("stamp from another index epoch must be unrecyclable")
	}
}
