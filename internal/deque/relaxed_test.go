package deque

import (
	"testing"

	"lcws/internal/counters"
)

// Tests for the MultFree relaxed claim protocol: TakeTopRelaxed /
// TakeTopHalfRelaxed, the owner-side repair fold, and the recycling
// gate. These cover what is sequentially reachable through the public
// API — the claim arithmetic, the pinned fallback, the monotone claim
// memory, and the fence/CAS accounting against the MultFree counting
// model (internal/counters/model.go). The concurrency properties (the
// multiplicity bound under arbitrary interleavings, the necessity of
// the repair fold) are proved exhaustively in internal/verify and
// exercised under -race by the scheduler-level stress tests.

func newRelaxed(t *testing.T) *SplitDeque[int] {
	t.Helper()
	return NewSplitRelaxed[int](16, 64, true)
}

// exposeAll publishes the entire private part.
func exposeAll(d *SplitDeque[int], c *counters.Worker) {
	for d.PrivateSize() > 0 {
		d.Expose(ExposeHalf, c)
	}
}

func alwaysIdempotent(*int) bool { return true }

func neverIdempotent(*int) bool { return false }

func TestRelaxedStealDrainsOldestFirst(t *testing.T) {
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2, 3, 4)
	exposeAll(d, owner)
	var cl RelClaim
	for want := 1; want <= 4; want++ {
		got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, thief)
		if res != Stolen || got == nil || *got != want {
			t.Fatalf("relaxed steal %d = %v, %v; want %d, stolen", want, got, res, want)
		}
	}
	if _, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, thief); res != Empty {
		t.Fatalf("steal from drained deque = %v, want empty", res)
	}
}

func TestRelaxedStealAccounting(t *testing.T) {
	// Model: a relaxed claim costs MultFreeStealFences fences and
	// MultFreeStealCAS CAS (both zero) and counts one relaxed steal per
	// task; the owner's reclaim pays MultFreeRepairCAS for the cursor
	// fold on top of its usual cost (here the all-stolen path, which
	// pays nothing further).
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2, 3, 4)
	exposeAll(d, owner)
	var cl RelClaim
	for i := 0; i < 4; i++ {
		if _, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, thief); res != Stolen {
			t.Fatalf("steal %d = %v, want stolen", i, res)
		}
	}
	if f, cas := syncOf(thief); f != 4*counters.MultFreeStealFences || cas != 4*counters.MultFreeStealCAS {
		t.Errorf("4 relaxed steals cost (%d fences, %d CAS), want (0, 0)", f, cas)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 4 {
		t.Errorf("relaxed_steals = %d, want 4", got)
	}
	of, ocas := syncOf(owner)
	if of != 0 || ocas != 0 {
		t.Fatalf("owner pre-reclaim sync (%d, %d), want (0, 0)", of, ocas)
	}
	if n := d.UnexposeAll(owner); n != 0 {
		t.Errorf("UnexposeAll reclaimed %d claimed tasks, want 0", n)
	}
	if f, cas := syncOf(owner); f != 0 || cas != counters.MultFreeRepairCAS {
		t.Errorf("reclaim after full drain cost (%d fences, %d CAS), want (0, %d)",
			f, cas, counters.MultFreeRepairCAS)
	}
}

func TestRelaxedPinnedFallbackCAS(t *testing.T) {
	// A non-idempotent task at the authoritative top is claimed through
	// the exclusive CAS (priced like any LCWS steal); above top the
	// thief must abort rather than claim it without exclusion.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2)
	exposeAll(d, owner)
	var cl RelClaim
	got, res := d.TakeTopRelaxed(&cl, neverIdempotent, thief)
	if res != Stolen || got == nil || *got != 1 {
		t.Fatalf("pinned steal at top = %v, %v; want 1, stolen", got, res)
	}
	if f, cas := syncOf(thief); f != 0 || cas != counters.LCWSStealCAS {
		t.Errorf("pinned steal cost (%d fences, %d CAS), want (0, %d)", f, cas, counters.LCWSStealCAS)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 0 {
		t.Errorf("pinned steal counted %d relaxed steals, want 0", got)
	}
	// Make the thief's claim run ahead of top: one relaxed claim bumps
	// cl past the authoritative top, so a subsequent non-idempotent
	// claim is above top and must abort.
	d2 := newRelaxed(t)
	owner2, thief2 := newCtr(), newCtr()
	push(t, d2, owner2, 1, 2)
	exposeAll(d2, owner2)
	var cl2 RelClaim
	if _, res := d2.TakeTopRelaxed(&cl2, alwaysIdempotent, thief2); res != Stolen {
		t.Fatalf("relaxed warm-up steal = %v, want stolen", res)
	}
	if _, res := d2.TakeTopRelaxed(&cl2, neverIdempotent, thief2); res != Abort {
		t.Errorf("pinned claim above top = %v, want abort", res)
	}
}

func TestRelaxedBatchClaim(t *testing.T) {
	// One cursor store claims up to half of the public part (capped at
	// the buffer), oldest-first, with zero fences and CAS.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2, 3, 4, 5, 6, 7, 8)
	exposeAll(d, owner)
	buf := make([]*int, 4)
	var cl RelClaim
	n, res := d.TakeTopHalfRelaxed(buf, &cl, alwaysIdempotent, thief)
	if res != Stolen || n != 4 {
		t.Fatalf("batched relaxed claim = %d, %v; want 4, stolen", n, res)
	}
	for i := 0; i < n; i++ {
		if *buf[i] != i+1 {
			t.Errorf("batch[%d] = %d, want %d (oldest first)", i, *buf[i], i+1)
		}
	}
	if f, cas := syncOf(thief); f != 0 || cas != 0 {
		t.Errorf("batched relaxed claim cost (%d fences, %d CAS), want (0, 0)", f, cas)
	}
	if got := thief.Get(counters.RelaxedSteal); got != 4 {
		t.Errorf("relaxed_steals = %d, want 4 (one per claimed task)", got)
	}
}

func TestRelaxedBatchStopsAtPinned(t *testing.T) {
	// The batch must not claim past a non-idempotent task: claiming it
	// with a plain store would allow duplication of a task that cannot
	// tolerate it.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	vals := push(t, d, owner, 1, 2, 3, 4, 5, 6, 7, 8)
	pinned := vals[2] // third-oldest task is non-idempotent
	idem := func(p *int) bool { return p != pinned }
	exposeAll(d, owner)
	buf := make([]*int, 8)
	var cl RelClaim
	n, res := d.TakeTopHalfRelaxed(buf, &cl, idem, thief)
	if res != Stolen || n != 2 {
		t.Fatalf("batch into pinned task = %d, %v; want 2, stolen", n, res)
	}
	if *buf[0] != 1 || *buf[1] != 2 {
		t.Errorf("batch claimed (%d, %d), want (1, 2)", *buf[0], *buf[1])
	}
	// The pinned task is now at the thief's claim == top? No: top is
	// still 0 (no repair ran), the claim is 2, so a retry falls back to
	// the exclusive path only at top — it must abort instead.
	n, res = d.TakeTopHalfRelaxed(buf, &cl, idem, thief)
	if res != Abort || n != 0 {
		t.Errorf("batch at pinned non-top claim = %d, %v; want 0, abort", n, res)
	}
}

func TestRelaxedUnexposeReclaimsOnlyUnclaimed(t *testing.T) {
	// The repair fold runs before the reclaim, so claimed tasks are
	// consumed and only the unclaimed suffix returns to the private
	// part, where the owner pops it LIFO.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1, 2, 3)
	exposeAll(d, owner)
	var cl RelClaim
	if got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, thief); res != Stolen || *got != 1 {
		t.Fatalf("relaxed steal = %v, %v; want 1, stolen", got, res)
	}
	if n := d.UnexposeAll(owner); n != 2 {
		t.Fatalf("UnexposeAll reclaimed %d, want 2 (the unclaimed tasks)", n)
	}
	for _, want := range []int{3, 2} {
		got := d.PopBottom(owner)
		if got == nil || *got != want {
			t.Fatalf("PopBottom after reclaim = %v, want %d", got, want)
		}
	}
	if got := d.PopBottom(owner); got != nil {
		t.Fatalf("deque should be empty, popped %d", *got)
	}
}

func TestRelaxedStaleCursorIgnoredAcrossEpochs(t *testing.T) {
	// After an owner reclaim bumps the tag, the old cursor is stale: a
	// later exposure must offer work from the authoritative top, not
	// from the dead cursor, and a fresh thief must receive the new task.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	push(t, d, owner, 1)
	exposeAll(d, owner)
	var cl RelClaim
	if got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, thief); res != Stolen || *got != 1 {
		t.Fatalf("epoch-1 steal = %v, %v; want 1, stolen", got, res)
	}
	d.UnexposeAll(owner) // folds the claim; cursor is now stale-tagged
	push(t, d, owner, 2)
	exposeAll(d, owner)
	var fresh RelClaim
	got, res := d.TakeTopRelaxed(&fresh, alwaysIdempotent, thief)
	if res != Stolen || got == nil || *got != 2 {
		t.Fatalf("epoch-2 steal = %v, %v; want 2, stolen", got, res)
	}
}

func TestRelaxedClaimMemoryIsMonotone(t *testing.T) {
	// A thief's claim memory never re-claims an index it already
	// returned, even when the owner re-exposes the same absolute index
	// range... which a relaxed deque never does: indices only grow. The
	// observable contract is that repeated drains see strictly newer
	// tasks.
	d := newRelaxed(t)
	owner, thief := newCtr(), newCtr()
	var cl RelClaim
	seen := map[int]int{}
	for epoch := 0; epoch < 3; epoch++ {
		push(t, d, owner, 10*epoch+1, 10*epoch+2)
		exposeAll(d, owner)
		for {
			got, res := d.TakeTopRelaxed(&cl, alwaysIdempotent, thief)
			if res != Stolen {
				break
			}
			seen[*got]++
		}
		d.UnexposeAll(owner)
	}
	if len(seen) != 6 {
		t.Fatalf("thief saw %d distinct tasks, want 6: %v", len(seen), seen)
	}
	for v, n := range seen {
		if n != 1 {
			t.Errorf("task %d returned %d times in a sequential drain, want 1", v, n)
		}
	}
}

func TestRelaxedRecyclingGate(t *testing.T) {
	// PushIndex/NeverExposed: an index that stayed private through its
	// whole life may be recycled; any index the high-water mark of
	// exposure has passed may not (a straggler's stale read could still
	// observe the slot).
	d := newRelaxed(t)
	owner := newCtr()
	v := 1
	idx := d.PushIndex()
	d.PushBottom(&v, owner)
	if !d.NeverExposed(idx) {
		t.Fatalf("private-only index %d reported as exposed", idx)
	}
	if d.PopBottom(owner) == nil {
		t.Fatal("pop of private task failed")
	}
	if !d.NeverExposed(idx) {
		t.Errorf("index %d never exposed but gate rejects recycling", idx)
	}
	idx2 := d.PushIndex()
	d.PushBottom(&v, owner)
	exposeAll(d, owner)
	if d.NeverExposed(idx2) {
		t.Errorf("exposed index %d still reported never-exposed", idx2)
	}
	d.UnexposeAll(owner)
	if d.NeverExposed(idx2) {
		t.Errorf("reclaimed index %d must stay unrecyclable (stale thief reads)", idx2)
	}
}
