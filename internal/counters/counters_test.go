package counters

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWorkerIncAddGet(t *testing.T) {
	var w Worker
	w.Inc(Fence)
	w.Add(Fence, 4)
	if got := w.Get(Fence); got != 5 {
		t.Errorf("Get(Fence) = %d, want 5", got)
	}
	if got := w.Get(CAS); got != 0 {
		t.Errorf("Get(CAS) = %d, want 0", got)
	}
	w.Reset()
	if got := w.Get(Fence); got != 0 {
		t.Errorf("after Reset Get(Fence) = %d, want 0", got)
	}
}

func TestSetSnapshotSumsWorkers(t *testing.T) {
	s := NewSet(3)
	s.Worker(0).Add(CAS, 1)
	s.Worker(1).Add(CAS, 2)
	s.Worker(2).Add(CAS, 3)
	if got := s.Snapshot().Get(CAS); got != 6 {
		t.Errorf("Snapshot CAS = %d, want 6", got)
	}
	s.Reset()
	if got := s.Snapshot().Get(CAS); got != 0 {
		t.Errorf("after Reset Snapshot CAS = %d, want 0", got)
	}
}

func TestNewSetPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSet(0) did not panic")
		}
	}()
	NewSet(0)
}

func TestSnapshotSubClampsAtZero(t *testing.T) {
	var a, b Snapshot
	a[Fence] = 5
	b[Fence] = 10
	if got := a.Sub(b)[Fence]; got != 0 {
		t.Errorf("Sub clamped = %d, want 0", got)
	}
	if got := b.Sub(a)[Fence]; got != 5 {
		t.Errorf("Sub = %d, want 5", got)
	}
}

func TestSnapshotAdd(t *testing.T) {
	f := func(x, y uint32) bool {
		var a, b Snapshot
		a[CAS], b[CAS] = uint64(x), uint64(y)
		return a.Add(b)[CAS] == uint64(x)+uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRatio(t *testing.T) {
	var a, b Snapshot
	a[Fence], b[Fence] = 1, 100
	if got := a.Ratio(Fence, b, -1); got != 0.01 {
		t.Errorf("Ratio = %v, want 0.01", got)
	}
	var zero Snapshot
	if got := a.Ratio(Fence, zero, -1); got != -1 {
		t.Errorf("Ratio with zero denominator = %v, want default -1", got)
	}
}

func TestUnstolenFraction(t *testing.T) {
	var s Snapshot
	if got := s.UnstolenFraction(); got != 0 {
		t.Errorf("UnstolenFraction of zero snapshot = %v, want 0", got)
	}
	s[Exposure] = 10
	s[ExposedNotStolen] = 4
	if got := s.UnstolenFraction(); got != 0.4 {
		t.Errorf("UnstolenFraction = %v, want 0.4", got)
	}
}

func TestStealSuccessRate(t *testing.T) {
	var s Snapshot
	if got := s.StealSuccessRate(); got != 0 {
		t.Errorf("StealSuccessRate of zero snapshot = %v, want 0", got)
	}
	s[StealAttempt] = 8
	s[StealSuccess] = 2
	if got := s.StealSuccessRate(); got != 0.25 {
		t.Errorf("StealSuccessRate = %v, want 0.25", got)
	}
}

func TestEventStrings(t *testing.T) {
	for e := 0; e < NumEvents; e++ {
		name := Event(e).String()
		if name == "" || strings.HasPrefix(name, "event(") {
			t.Errorf("event %d has no name", e)
		}
	}
	if got := Event(999).String(); got != "event(999)" {
		t.Errorf("out-of-range event String = %q", got)
	}
}

func TestSnapshotString(t *testing.T) {
	var s Snapshot
	s[Fence] = 3
	out := s.String()
	if !strings.Contains(out, "fences=3") {
		t.Errorf("Snapshot String missing fences: %q", out)
	}
}

func TestWorkerPadding(t *testing.T) {
	// The Worker struct must be a multiple of the cache line size so
	// adjacent workers in a Set never share a line.
	s := NewSet(2)
	if sz := int(uintptr(len(s.workers))) * 0; sz != 0 {
		t.Fatal("impossible")
	}
	const want = 0
	if got := (NumEvents*8 + pad) % cacheLine; got != want {
		t.Errorf("Worker size %% cacheLine = %d, want 0", got)
	}
}
