// Package counters provides cache-padded per-worker instrumentation counters
// for the scheduler implementations.
//
// The counters record the synchronization operations that the C++ reference
// implementations of the schedulers would execute (memory fences and
// compare-and-swap instructions) together with scheduler-level events
// (steal attempts, successful steals, work exposures, exposed-but-unstolen
// tasks, signals, idle iterations). Figures 3 and 8 of the paper are ratios
// of these counters between schedulers; see model.go for the exact counting
// model.
//
// All increment methods are owner-local and unsynchronized: each worker owns
// one Worker record and is the only goroutine that writes to it. Snapshots
// taken while workers run are therefore approximate; snapshots taken after a
// computation quiesces (the only use in this repository) are exact.
package counters

import "fmt"

// Event identifies one instrumented counter.
type Event int

// The instrumented events. Fence and CAS follow the counting model in
// model.go; the remaining events are scheduler-level statistics used by the
// paper's profiles (Figures 3 and 8).
const (
	// Fence counts memory fences the reference C++ algorithm executes.
	Fence Event = iota
	// CAS counts compare-and-swap instructions.
	CAS
	// StealAttempt counts calls to popTop on a victim deque.
	StealAttempt
	// StealSuccess counts popTop calls that returned a task.
	StealSuccess
	// StealPrivate counts popTop calls that found only private work
	// (the PRIVATE_WORK result that triggers a notification).
	StealPrivate
	// StealEmpty counts popTop calls that found an entirely empty deque.
	StealEmpty
	// StealAbort counts popTop calls that lost a CAS race.
	StealAbort
	// Exposure counts tasks transferred from the private to the public
	// part of a split deque (per task, not per updatePublicBottom call).
	Exposure
	// ExposedNotStolen counts exposed tasks that the owner later took
	// back via popPublicBottom instead of being stolen.
	ExposedNotStolen
	// SignalSent counts emulated pthread_kill notifications.
	SignalSent
	// SignalHandled counts exposure requests handled by the owner.
	SignalHandled
	// IdleIteration counts scheduler-loop iterations in which a worker
	// found no work anywhere.
	IdleIteration
	// ParkedNanos accumulates the nanoseconds workers spent sleeping in
	// the idle backoff (accumulated with Add, unlike the event counters),
	// so parked idle time is visible in profiles separately from busy
	// idle iterations.
	ParkedNanos
	// TaskExecuted counts tasks run to completion.
	TaskExecuted
	// TaskPushed counts pushBottom calls.
	TaskPushed
	// StealBatchTasks counts tasks transferred by batched steal
	// operations (PopTopN / PopTopHalf): a batched steal claiming n
	// tasks adds n here and 1 to StealSuccess, so the ratio of the two
	// is the average claimed batch size. Zero in single-steal mode.
	StealBatchTasks
	// WakeupsSent counts parked thieves woken by work-producing
	// operations (exposure handler, push onto an empty deque, reclaim).
	WakeupsSent
	// ParkCount counts times a worker parked on its semaphore in the
	// event-driven idle parking lot (StealBatch mode); the time spent
	// parked accumulates in ParkedNanos as with the sleep ladder.
	ParkCount
	// TraceDrop counts flight-recorder events lost to ring wrap-around
	// or to a concurrent snapshot's freeze window. Zero when tracing is
	// off or the per-worker ring never filled.
	TraceDrop
	// TaskDiscarded counts orphaned tasks drained and dropped (not
	// executed) because their job had already failed or been cancelled;
	// each discard still stores the task's completion stamp so in-flight
	// joins of the dead job cannot hang. Zero while every job succeeds.
	TaskDiscarded
	// DequeGrow counts owner-side deque array doublings (one per
	// published generation, not per task copied). Zero while the live
	// window never outgrows the initial capacity.
	DequeGrow
	// TaskSpilled counts tasks the owner moved from a deque at its
	// maximum capacity onto its unbounded overflow list (per task).
	// Zero unless a spawn tree outgrew Options.MaxDequeCapacity.
	TaskSpilled
	// FreelistRefill counts recycled tasks adopted from the global
	// recycle shards into a worker's freelist on an allocation miss
	// (per task, not per batched refill).
	FreelistRefill
	// FreelistReturn counts recycled tasks a worker donated from its
	// over-full freelist to its global recycle shard (per task; tasks
	// dropped for GC because the shard was also full are included —
	// they left the freelist either way).
	FreelistReturn
	// RelaxedSteal counts tasks claimed through the MultFree relaxed
	// (fence- and CAS-free) steal path, per task: TakeTopRelaxed adds 1,
	// a relaxed batch claim adds its batch size. Zero outside MultFree.
	RelaxedSteal
	// TaskDuplicated counts task executions absorbed as duplicates under
	// MultFree's bounded multiplicity: a claimant that lost the
	// generation-stamp arbitration (or found the task already completed)
	// counts here instead of TaskExecuted, so completion accounting
	// stays exact. Zero outside MultFree.
	TaskDuplicated
	// JobYield counts queued jobs picked up at a Poll checkpoint of a
	// running less-urgent job — the QoS preemption point — rather than
	// in the worker's top-level loop. Zero while every submission uses
	// one class.
	JobYield

	numEvents
)

// NumEvents is the number of distinct counter events.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	Fence:            "fences",
	CAS:              "cas",
	StealAttempt:     "steal_attempts",
	StealSuccess:     "steal_success",
	StealPrivate:     "steal_private",
	StealEmpty:       "steal_empty",
	StealAbort:       "steal_abort",
	Exposure:         "exposures",
	ExposedNotStolen: "exposed_not_stolen",
	SignalSent:       "signals_sent",
	SignalHandled:    "signals_handled",
	IdleIteration:    "idle_iterations",
	ParkedNanos:      "parked_nanos",
	TaskExecuted:     "tasks_executed",
	TaskPushed:       "tasks_pushed",
	StealBatchTasks:  "steal_batch_tasks",
	WakeupsSent:      "wakeups_sent",
	ParkCount:        "park_count",
	TraceDrop:        "trace_drops",
	TaskDiscarded:    "tasks_discarded",
	DequeGrow:        "deque_grows",
	TaskSpilled:      "tasks_spilled",
	FreelistRefill:   "freelist_refills",
	FreelistReturn:   "freelist_returns",
	RelaxedSteal:     "relaxed_steals",
	TaskDuplicated:   "tasks_duplicated",
	JobYield:         "job_yields",
}

// String returns the snake_case name of the event.
func (e Event) String() string {
	if e < 0 || int(e) >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// cacheLine is the assumed cache-line size, used to pad per-worker counters
// so that two workers never write to the same line (false sharing would not
// affect correctness, only measurement overhead).
const cacheLine = 64

// Worker holds the counters of a single worker. It is padded to a multiple
// of the cache line size.
type Worker struct {
	v [NumEvents]uint64
	_ [pad]byte
}

// pad rounds the Worker struct up to a cache-line multiple.
const pad = (cacheLine - (NumEvents*8)%cacheLine) % cacheLine

// Inc adds 1 to event e.
func (w *Worker) Inc(e Event) { w.v[e]++ }

// Add adds n to event e.
func (w *Worker) Add(e Event, n uint64) { w.v[e] += n }

// Get returns the current value of event e.
func (w *Worker) Get(e Event) uint64 { return w.v[e] }

// Reset zeroes all counters of the worker.
func (w *Worker) Reset() { w.v = [NumEvents]uint64{} }

// Set is a collection of per-worker counters for a P-worker scheduler.
type Set struct {
	workers []Worker
}

// NewSet returns a Set with room for p workers.
func NewSet(p int) *Set {
	if p <= 0 {
		panic(fmt.Sprintf("counters: non-positive worker count %d", p))
	}
	return &Set{workers: make([]Worker, p)}
}

// Worker returns the counter record of worker id.
func (s *Set) Worker(id int) *Worker { return &s.workers[id] }

// Workers returns the number of per-worker records.
func (s *Set) Workers() int { return len(s.workers) }

// Reset zeroes every worker's counters.
func (s *Set) Reset() {
	for i := range s.workers {
		s.workers[i].Reset()
	}
}

// Snapshot returns the sum of all workers' counters. It is exact only when
// no worker is concurrently running.
func (s *Set) Snapshot() Snapshot {
	var out Snapshot
	for i := range s.workers {
		for e := 0; e < NumEvents; e++ {
			out[e] += s.workers[i].v[e]
		}
	}
	return out
}

// Snapshot is an aggregated view of the counters of a whole scheduler run.
type Snapshot [NumEvents]uint64

// Get returns the value of event e.
func (sn Snapshot) Get(e Event) uint64 { return sn[e] }

// Sub returns the element-wise difference sn - old. Values are clamped at
// zero so that a reset between snapshots cannot produce wrapped counts.
func (sn Snapshot) Sub(old Snapshot) Snapshot {
	var out Snapshot
	for i := range sn {
		if sn[i] >= old[i] {
			out[i] = sn[i] - old[i]
		}
	}
	return out
}

// Add returns the element-wise sum sn + other.
func (sn Snapshot) Add(other Snapshot) Snapshot {
	var out Snapshot
	for i := range sn {
		out[i] = sn[i] + other[i]
	}
	return out
}

// Ratio returns sn[e] / other[e], or def when other[e] is zero.
func (sn Snapshot) Ratio(e Event, other Snapshot, def float64) float64 {
	if other[e] == 0 {
		return def
	}
	return float64(sn[e]) / float64(other[e])
}

// UnstolenFraction returns the fraction of exposed tasks that were not
// stolen, or 0 when nothing was exposed. This is the quantity plotted in
// Figures 3d and 8d of the paper.
func (sn Snapshot) UnstolenFraction() float64 {
	if sn[Exposure] == 0 {
		return 0
	}
	return float64(sn[ExposedNotStolen]) / float64(sn[Exposure])
}

// StealSuccessRate returns successful steals / steal attempts, or 0 when no
// attempts were made.
func (sn Snapshot) StealSuccessRate() float64 {
	if sn[StealAttempt] == 0 {
		return 0
	}
	return float64(sn[StealSuccess]) / float64(sn[StealAttempt])
}

// AvgStealBatchSize returns the average number of tasks claimed per
// successful steal in batch mode (StealBatchTasks / StealSuccess), or 0
// when nothing was stolen. In single-steal mode StealBatchTasks stays
// zero and so does this ratio.
func (sn Snapshot) AvgStealBatchSize() float64 {
	if sn[StealSuccess] == 0 {
		return 0
	}
	return float64(sn[StealBatchTasks]) / float64(sn[StealSuccess])
}

// WakeupsPerPark returns wakeups sent per park (WakeupsSent / ParkCount),
// or 0 when no worker ever parked. Values near 1 mean parked thieves are
// woken almost exclusively by work events; values well below 1 mean most
// parks ended on the fallback timer.
func (sn Snapshot) WakeupsPerPark() float64 {
	if sn[ParkCount] == 0 {
		return 0
	}
	return float64(sn[WakeupsSent]) / float64(sn[ParkCount])
}

// String renders the snapshot as a single line of name=value pairs.
func (sn Snapshot) String() string {
	out := ""
	for e := 0; e < NumEvents; e++ {
		if e > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", Event(e), sn[e])
	}
	return out
}
