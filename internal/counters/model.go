package counters

// This file is the single authoritative statement of the synchronization
// counting model used throughout the repository. The Go implementations
// cannot elide fences (Go's sync/atomic operations are sequentially
// consistent), so instead of measuring hardware fences we count the fences
// and CAS instructions that the paper's C++ reference implementations
// (Listings 1–3 and Parlay's Chase-Lev style WS deque) would execute on the
// same operation sequence. Figures 3 and 8 of the paper are ratios of these
// counts between schedulers, so the ratios are exactly reproducible.
//
// The model, per deque operation:
//
//	Work Stealing baseline (Chase-Lev / ABP deque, as tuned in Parlay):
//	  push_bottom        : 1 fence  (release/store-load ordering on bot)
//	  pop_bottom         : 1 fence  (the unavoidable store-load fence of
//	                                 Attiya et al.'s "Laws of Order")
//	                       +1 CAS when racing thieves for the last element
//	  steal (pop_top)    : 1 fence + 1 CAS per attempt that reaches the CAS
//	                       (empty deques cost the fence only)
//
//	LCWS split deque (Listing 2):
//	  push_bottom        : 0
//	  pop_bottom         : 0      (private part is synchronization-free)
//	  pop_public_bottom  : 1 fence (line 12 of Listing 2) on the common
//	                       path; the emptying path additionally executes
//	                       the line-27 fence (total 2) and attempts the
//	                       last-element CAS when local_bot == top
//	  pop_top (steal)    : 1 CAS when the public part is non-empty;
//	                       0 otherwise (returns nullptr/PRIVATE_WORK)
//	  update_public_bottom: 0     (plain stores; in the signal version the
//	                               field is volatile, which is not a
//	                               synchronization operation — §4 footnote 3)
//
// These constants are referenced by the deque implementations so the model
// lives in one place, and asserted by tests in model_test.go.
const (
	// WSPushFences is the fence cost of a WS push_bottom.
	WSPushFences = 1
	// WSPopFences is the fence cost of a WS pop_bottom.
	WSPopFences = 1
	// WSPopRaceCAS is the CAS cost of a WS pop_bottom that races for the
	// last element.
	WSPopRaceCAS = 1
	// WSStealFences is the fence cost of a WS steal attempt.
	WSStealFences = 1
	// WSStealCAS is the CAS cost of a WS steal attempt that reaches the
	// head compare-and-swap.
	WSStealCAS = 1

	// LCWSPopPublicFences is the fence cost of pop_public_bottom on the
	// common (non-emptying) path.
	LCWSPopPublicFences = 1
	// LCWSPopPublicEmptyFences is the total fence cost of a
	// pop_public_bottom that takes the deque-emptying path.
	LCWSPopPublicEmptyFences = 2
	// LCWSPopPublicRaceCAS is the CAS cost of a pop_public_bottom that
	// races thieves for the last public element.
	LCWSPopPublicRaceCAS = 1
	// LCWSStealCAS is the CAS cost of a pop_top that found public work.
	LCWSStealCAS = 1
)

// Batch-mode extension (Options.StealBatch). These operations are not part
// of the paper's counting model — batching is this repository's opt-in
// steal-side optimization — but they are accounted under the same rules so
// batch-mode profiles remain comparable:
//
//	pop_top_half (split deque) : 1 CAS per attempt that found public work,
//	                             identical to pop_top (LCWSStealCAS); the
//	                             whole batch is claimed by that one CAS.
//	pop_top_n (batched WS)     : 1 fence + 1 CAS per attempt, identical to
//	                             the stock steal (WSStealFences/WSStealCAS).
//	pop_bottom (batched WS)    : 1 fence (WSPopFences) plus one tag-bump
//	                             CAS per claim attempt. The stock deque
//	                             only CASes for the last element; the
//	                             batched variant must CAS on every pop so
//	                             an in-flight multi-task steal can never
//	                             claim a slot the owner already consumed.
const (
	// WSBatchPopCAS is the CAS cost of each claim attempt of a batched
	// WS pop_bottom.
	WSBatchPopCAS = 1
)

// MultFree extension (the relaxed policy of Castañeda & Piña,
// arXiv 2008.04424, adapted to the split deque). The steal side is fully
// read/write — a relaxed claim is one plain load of the cursor plus one
// plain store, so a successful TakeTopRelaxed costs no fence and no CAS.
// What the policy pays instead (the Rito & Paulino trade-off): the owner
// folds honored claims into top with one CAS at each public-boundary
// operation (Expose/UnexposeAll, only when there is something to fold),
// thieves that hit a non-idempotent task fall back to the exclusive
// LCWSStealCAS claim, and every relaxed-eligible task execution performs
// one generation-stamp arbitration CAS so bounded multiplicity cannot
// double-count completions:
//
//	take_top_relaxed     : 0 fences + 0 CAS (plain read/write claim)
//	                       — falls back to LCWSStealCAS for tasks the
//	                       scheduler cannot prove idempotent
//	repair (owner fold)  : 1 CAS per fold attempt (MultFreeRepairCAS);
//	                       nothing when the cursor is stale or behind top
//	execute (range task) : 1 CAS per execution-claim arbitration
//	                       (MultFreeExecCAS), on the executor, not the
//	                       steal path
const (
	// MultFreeStealFences is the fence cost of a relaxed steal: none.
	MultFreeStealFences = 0
	// MultFreeStealCAS is the CAS cost of a relaxed steal: none.
	MultFreeStealCAS = 0
	// MultFreeRepairCAS is the CAS cost of an owner-side cursor fold
	// (repairRelaxed) that found an honored claim to fold.
	MultFreeRepairCAS = 1
	// MultFreeExecCAS is the CAS cost of the execution-claim arbitration
	// each relaxed-eligible task pays once per claimant under MultFree.
	MultFreeExecCAS = 1
)
