package perf

// The recorded pre-optimization baseline: the fork path before
// per-worker task freelists and closure-free range tasks, which
// allocated two heap objects per fork (the Task and the right-branch
// closure) and paid the matching GC time.
//
// All numbers were measured with this package's own methodology on the
// commit immediately preceding the freelist work, on the same class of
// single-CPU container the verification suite runs on.
//
//   - baselineNormPerFork is what the speedup gate compares against:
//     ns/fork divided by the calibration kernel's ns/op measured around
//     the same window (see MeasureReference), so the value is in
//     machine-relative units. Each entry is the median of five
//     (spawn-tree) or four (pfor-sum) full harness runs. The median,
//     not the minimum: a single run's min-of-reps normalized value can
//     read low when the reference bracket happens to catch a slow
//     moment while the fork loop ran clean, and recording such an
//     outlier would make the gate flaky rather than strict. The per-run
//     values spread < 10% around these medians.
//   - baselineNsPerFork is the raw wall-clock cost from a quiet-machine
//     run, kept for human comparison in BENCH_fork.json; gates do not
//     use it because raw nanoseconds do not transfer across hosts or
//     load conditions.
// MultFree postdates the freelist work, so it has no measured
// pre-optimization commit; its entries inherit Signal's baseline, which
// is the correct counterfactual — MultFree's no-steal fork path is
// Signal's plus the recycling-stamp store, and the relaxed machinery is
// steal-side only.
var baselineNormPerFork = map[string]float64{
	"spawn-tree/WS":       302.1,
	"spawn-tree/USLCWS":   299.4,
	"spawn-tree/Signal":   297.8,
	"spawn-tree/Cons":     305.6,
	"spawn-tree/Half":     306.9,
	"spawn-tree/Lace":     298.4,
	"spawn-tree/MultFree": 297.8,
	"pfor-sum/WS":         3659.8,
	"pfor-sum/USLCWS":     3566.6,
	"pfor-sum/Signal":     3662.2,
	"pfor-sum/Cons":       3652.3,
	"pfor-sum/Half":       3729.1,
	"pfor-sum/Lace":       3712.6,
	"pfor-sum/MultFree":   3662.2,
}

var baselineNsPerFork = map[string]float64{
	"spawn-tree/WS":       131.8,
	"spawn-tree/USLCWS":   124.7,
	"spawn-tree/Signal":   124.0,
	"spawn-tree/Cons":     124.0,
	"spawn-tree/Half":     126.1,
	"spawn-tree/Lace":     124.7,
	"spawn-tree/MultFree": 124.0,
	"pfor-sum/WS":         1635.4,
	"pfor-sum/USLCWS":     1568.4,
	"pfor-sum/Signal":     1617.4,
	"pfor-sum/Cons":       1556.8,
	"pfor-sum/Half":       1562.5,
	"pfor-sum/Lace":       1620.9,
	"pfor-sum/MultFree":   1617.4,
}

// BaselineReferenceNsPerOp is the calibration kernel's cost on the quiet
// machine that produced baselineNsPerFork, pairing the raw baseline with
// its load context in BENCH_fork.json.
const BaselineReferenceNsPerOp = 0.474

// BaselineNormPerFork returns a copy of the load-normalized
// pre-optimization baseline the speedup gate compares against, keyed
// "<bench>/<policy>".
func BaselineNormPerFork() map[string]float64 {
	out := make(map[string]float64, len(baselineNormPerFork))
	for k, v := range baselineNormPerFork {
		out[k] = v
	}
	return out
}

// BaselineNsPerFork returns a copy of the recorded raw-nanosecond
// baseline (informational; see baselineNsPerFork).
func BaselineNsPerFork() map[string]float64 {
	out := make(map[string]float64, len(baselineNsPerFork))
	for k, v := range baselineNsPerFork {
		out[k] = v
	}
	return out
}

// BaselineSpawnTreeSpeedup is the minimum improvement factor the
// spawn-tree benchmark must retain over the recorded baseline in
// load-normalized units (the fork path got >=2x cheaper when
// allocations left it; losing that factor means the optimization
// regressed).
const BaselineSpawnTreeSpeedup = 2.0
