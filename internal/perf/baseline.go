package perf

// The recorded pre-optimization baseline: the fork path before
// per-worker task freelists and closure-free range tasks, which
// allocated two heap objects per fork (the Task and the right-branch
// closure) and paid the matching GC time.
//
// All numbers were measured with this package's own methodology on the
// commit immediately preceding the freelist work, on the same class of
// single-CPU container the verification suite runs on.
//
//   - baselineNsPerFork is the raw wall-clock cost from a quiet-machine
//     run. It is the durable record: raw nanoseconds on the container
//     class are what the recording session actually observed, and the
//     per-run spread of those recordings was < 10%.
//   - baselineNormPerFork — what the speedup gate compares against — is
//     DERIVED from the raw record at init: ns/fork divided by
//     BaselineReferenceNsPerOp, the calibration kernel's cost on the
//     same container class. Dividing the current measurement by the
//     kernel's cost measured around the same window (see
//     MeasureReference) puts both sides in machine-relative units, so a
//     uniformly faster, slower, or loaded host cancels out.
//
// History: the norm column used to be independently hand-recorded
// medians (spawn-tree 297.8–306.9, pfor-sum 3566.6–3729.1) taken with
// the original pure-add calibration kernel. That kernel's measurement
// turned out to depend on the binary's code placement — up to ~70%
// between otherwise identical binaries (see MeasureReference) — which
// silently inflated every recorded norm and, worse, inflated it by a
// DIFFERENT factor than the binary under test, so the gate drifted with
// each PR's unrelated code. The norms are now derived from the raw
// record and the placement-robust kernel's class cost, and the gate
// floors below were re-set against honestly-normalized margins. In
// honest units the old "2.0x" gate was enforcing only ~1.1–1.5x
// (depending on each binary's placement luck); the floors below are
// stricter than what the old gate actually held.
var baselineNsPerFork = map[string]float64{
	"spawn-tree/WS":       131.8,
	"spawn-tree/USLCWS":   124.7,
	"spawn-tree/Signal":   124.0,
	"spawn-tree/Cons":     124.0,
	"spawn-tree/Half":     126.1,
	"spawn-tree/Lace":     124.7,
	"spawn-tree/MultFree": 124.0,
	"pfor-sum/WS":         1635.4,
	"pfor-sum/USLCWS":     1568.4,
	"pfor-sum/Signal":     1617.4,
	"pfor-sum/Cons":       1556.8,
	"pfor-sum/Half":       1562.5,
	"pfor-sum/Lace":       1620.9,
	"pfor-sum/MultFree":   1617.4,
}

// MultFree postdates the freelist work, so it has no measured
// pre-optimization commit; its entries inherit Signal's baseline, which
// is the correct counterfactual — MultFree's no-steal fork path is
// Signal's plus the recycling-stamp store, and the relaxed machinery is
// steal-side only. (The stamp store is a real per-fork cost the other
// policies do not pay, which is why MultFree gets its own gate floor;
// see SpawnTreeSpeedupFloor.)

var baselineNormPerFork = func() map[string]float64 {
	out := make(map[string]float64, len(baselineNsPerFork))
	for k, ns := range baselineNsPerFork {
		out[k] = ns / BaselineReferenceNsPerOp
	}
	return out
}()

// BaselineReferenceNsPerOp is the calibration kernel's cost on the
// single-CPU container class that produced baselineNsPerFork: the
// minimum over repeated quiet-window runs of MeasureReference's
// three-op-chain kernel (the chain pins the loop to ~3 dependent ALU
// cycles per element, making the value a property of the machine class
// rather than of any one binary's code placement).
const BaselineReferenceNsPerOp = 1.17

// BaselineNormPerFork returns a copy of the load-normalized
// pre-optimization baseline the speedup gate compares against, keyed
// "<bench>/<policy>" (baselineNsPerFork over BaselineReferenceNsPerOp).
func BaselineNormPerFork() map[string]float64 {
	out := make(map[string]float64, len(baselineNormPerFork))
	for k, v := range baselineNormPerFork {
		out[k] = v
	}
	return out
}

// BaselineNsPerFork returns a copy of the recorded raw-nanosecond
// baseline (the durable quiet-machine record; see baselineNsPerFork).
func BaselineNsPerFork() map[string]float64 {
	out := make(map[string]float64, len(baselineNsPerFork))
	for k, v := range baselineNsPerFork {
		out[k] = v
	}
	return out
}

// BaselineSpawnTreeSpeedup is the minimum improvement factor the
// spawn-tree benchmark must retain over the recorded baseline in
// load-normalized units. The freelist work holds a measured 1.9–2.2x
// over the allocating baseline in honest units (steady-state
// quiet-machine ns against the recorded raw ns on the same container
// class). 1.6 locks the optimization in while leaving headroom for the
// shared containers' multi-second degradation episodes, which slow the
// scheduler-heavy fork measurement by up to ~25% while the cycle-bound
// calibration kernel (correctly) holds — normalization cancels uniform
// slowdowns, not selective ones. A real regression — the allocating
// path's return — costs 2x+, far beyond the headroom.
const BaselineSpawnTreeSpeedup = 1.6

// MultFreeSpawnTreeSpeedup is the MultFree-specific gate floor: its
// fork path honestly holds ~1.5x over the inherited Signal baseline —
// the allocation win net of the recycling-stamp store every MultFree
// fork pays — so gating it at the shared floor would demand a margin
// the policy never had (earlier revisions appeared to clear 2.0x only
// through the calibration-placement inflation described above).
const MultFreeSpawnTreeSpeedup = 1.25

// SpawnTreeSpeedupFloor returns the gate floor for a policy's
// spawn-tree speedup over the recorded baseline.
func SpawnTreeSpeedupFloor(policy string) float64 {
	if policy == "MultFree" {
		return MultFreeSpawnTreeSpeedup
	}
	return BaselineSpawnTreeSpeedup
}
