package perf

import (
	"runtime"

	"lcws"
)

// Memory benchmark: is steady-state heap usage flat across jobs of
// wildly different widths, and do the growth/spill/recycling paths
// actually engage under pressure?
//
// The growable deques, overflow spilling and bounded freelists (see
// DESIGN.md §12) promise two things this file measures:
//
//  1. Flat steady state. A resident pool that has served one very wide
//     job must not pin that job's high-water mark of tasks forever:
//     the bounded freelists shed their cold halves into the global
//     recycle shards, the shards are capped, and everything past the
//     caps is released to the GC. MeasureMemSteady runs a long stream
//     of narrow jobs with a ~32k-live-task deep job mixed in every
//     MemWideEvery-th submission and compares the post-GC HeapInuse
//     early in the stream against the end of it.
//
//  2. Engaged machinery. MeasureMemDeepFork drives a deep linear fork
//     spine through deliberately tiny deques so that array growth AND
//     overflow spilling both fire; the gate asserts the counters are
//     non-zero, so the flat-memory result above cannot be trivially
//     green because the limits were never reached.

// Memory benchmark dimensions. Changing them invalidates comparisons
// across revisions.
const (
	// MemWorkers is the pool size the steady-state stream runs on.
	MemWorkers = 4
	// MemJobsWarm is the number of jobs after which the warm HeapInuse
	// reference is taken; MemJobsTotal is the full stream length.
	MemJobsWarm  = 100
	MemJobsTotal = 10000
	// MemNarrowWidth is the ParFor width of the common narrow job;
	// every MemWideEvery-th job is a linear fork spine of MemWideDepth
	// levels instead. The spine holds ~MemWideDepth tasks LIVE at once
	// (a wide ParFor would not: fork-join frees at each join, so its
	// live set is only logarithmic in the width), driving each worker's
	// freelist far past the default bound and forcing donations.
	MemNarrowWidth = 64
	MemWideDepth   = 32768
	MemWideEvery   = 97
	// MemFlatRatio is the regression gate: HeapInuse after MemJobsTotal
	// jobs must stay within this factor of the warm reference, OR
	// within MemFlatSlack bytes of it. The absolute arm absorbs
	// allocator span-layout drift (HeapInuse counts whole spans, and
	// the periodic churn re-scatters retained tasks across them by a
	// few MB either way); a genuine per-job leak compounds over the
	// 10k-job stream and clears both arms easily.
	MemFlatRatio = 1.25
	MemFlatSlack = 4 << 20

	// Deep-fork configuration: a MemDeepDepth-level linear fork spine
	// through deques starting at MemDeepDequeCap slots and capped at
	// MemDeepMaxCap, so both growth (MemDeepDequeCap -> MemDeepMaxCap)
	// and spilling (depth >> MemDeepMaxCap) must occur.
	MemDeepWorkers  = 2
	MemDeepDepth    = 8192
	MemDeepDequeCap = 64
	MemDeepMaxCap   = 512
)

// MemResult is one memory measurement.
type MemResult struct {
	// Bench is "mem-steady" or "mem-deepfork".
	Bench string `json:"bench"`
	// Policy is the scheduling policy's figure label.
	Policy string `json:"policy"`
	// Workers is the pool size P.
	Workers int `json:"workers"`
	// JobsWarm/JobsTotal (steady) or Depth (deepfork) record the
	// workload shape.
	JobsWarm  int `json:"jobs_warm,omitempty"`
	JobsTotal int `json:"jobs_total,omitempty"`
	Depth     int `json:"depth,omitempty"`
	// DequeCapacity/MaxDequeCapacity record the deque configuration of
	// the deep-fork run (zero on the steady run: defaults).
	DequeCapacity    int `json:"deque_capacity,omitempty"`
	MaxDequeCapacity int `json:"max_deque_capacity,omitempty"`
	// HeapInuseWarm and HeapInuseFinal are post-GC runtime.MemStats
	// HeapInuse readings after JobsWarm and JobsTotal jobs; GrowthRatio
	// is their quotient (the flatness gate compares it to MemFlatRatio).
	HeapInuseWarm  uint64  `json:"heap_inuse_warm,omitempty"`
	HeapInuseFinal uint64  `json:"heap_inuse_final,omitempty"`
	GrowthRatio    float64 `json:"growth_ratio,omitempty"`
	// The memory-discipline counters accumulated over the run.
	DequeGrows      uint64 `json:"deque_grows"`
	TasksSpilled    uint64 `json:"tasks_spilled"`
	FreelistRefills uint64 `json:"freelist_refills"`
	FreelistReturns uint64 `json:"freelist_returns"`
	TasksExecuted   uint64 `json:"tasks_executed"`
}

// heapInuse returns HeapInuse after a forced collection, so the reading
// reflects retained memory (freelists, shards, rings) rather than
// garbage awaiting the next GC cycle.
func heapInuse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// MemFlat reports whether a final HeapInuse reading passes the flatness
// gate against its warm reference.
func MemFlat(warm, final uint64) bool {
	return float64(final) <= float64(warm)*MemFlatRatio || final-warm <= MemFlatSlack
}

// MeasureMemSteady runs the mixed-width job stream on a resident pool
// and returns the warm/final HeapInuse readings plus the recycling
// counters. Defaults apply when jobsWarm/jobsTotal are non-positive.
func MeasureMemSteady(pol lcws.Policy, workers, jobsWarm, jobsTotal int) MemResult {
	if workers <= 0 {
		workers = MemWorkers
	}
	if jobsWarm <= 0 {
		jobsWarm = MemJobsWarm
	}
	if jobsTotal <= jobsWarm {
		jobsTotal = MemJobsTotal
	}
	s := lcws.New(lcws.WithWorkers(workers), lcws.WithPolicy(pol))
	defer s.Close()
	s.Start()
	// Saturate the pool's bounded retention first: serve 2P concurrent
	// deep jobs so every worker runs at least one spine and its
	// freelist, recycle shard and grown deque reach their caps before
	// the warm reference is taken. (Spilled/recycled tasks are freed by
	// the worker that allocated them, so only workers that RUN a spine
	// retain its capital.) The gate then checks that the caps hold
	// across the stream, not how fast the pool approaches them.
	handles := make([]*lcws.Job, 0, 2*workers)
	for i := 0; i < 2*workers; i++ {
		handles = append(handles, s.Submit(func(ctx *lcws.Ctx) { memSpine(ctx, MemWideDepth) }))
	}
	for _, j := range handles {
		if err := j.Wait(); err != nil {
			panic(err)
		}
	}
	runJob := func(i int) {
		if i%MemWideEvery == MemWideEvery-1 {
			s.Run(func(ctx *lcws.Ctx) { memSpine(ctx, MemWideDepth) })
			return
		}
		s.Run(func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, MemNarrowWidth, 1, noopBody) })
	}
	// Churn through a couple of full wide/narrow cycles before the warm
	// reading: the retained-task population is already at its caps, but
	// the heap-span layout the periodic stream settles into (which is
	// what HeapInuse measures) takes a few cycles to stabilize.
	for i := 0; i < 2*MemWideEvery; i++ {
		runJob(i)
	}
	for i := 0; i < jobsWarm; i++ {
		runJob(i)
	}
	warm := heapInuse()
	for i := jobsWarm; i < jobsTotal; i++ {
		runJob(i)
	}
	final := heapInuse()
	st := s.Stats()
	res := MemResult{
		Bench:          "mem-steady",
		Policy:         pol.String(),
		Workers:        workers,
		JobsWarm:       jobsWarm,
		JobsTotal:      jobsTotal,
		HeapInuseWarm:  warm,
		HeapInuseFinal: final,

		DequeGrows:      st.DequeGrows,
		TasksSpilled:    st.TasksSpilled,
		FreelistRefills: st.FreelistRefills,
		FreelistReturns: st.FreelistReturns,
		TasksExecuted:   st.TasksExecuted,
	}
	if warm > 0 {
		res.GrowthRatio = float64(final) / float64(warm)
	}
	return res
}

// memSpine is the deep-fork workload: a linear spine that pushes one
// sibling per level and recurses inline, so a single worker's deque
// accumulates up to depth live tasks — far past MemDeepMaxCap.
func memSpine(ctx *lcws.Ctx, depth int) {
	if depth <= 0 {
		return
	}
	lcws.Fork2(ctx,
		func(ctx *lcws.Ctx) { memSpine(ctx, depth-1) },
		func(*lcws.Ctx) {},
	)
}

// MeasureMemDeepFork drives the deep spine through tiny capped deques
// and returns the growth/spill counters the gate asserts on.
func MeasureMemDeepFork(pol lcws.Policy) MemResult {
	s := lcws.New(
		lcws.WithWorkers(MemDeepWorkers),
		lcws.WithPolicy(pol),
		lcws.WithDequeCapacity(MemDeepDequeCap),
		lcws.WithMaxDequeCapacity(MemDeepMaxCap),
	)
	defer s.Close()
	s.Run(func(ctx *lcws.Ctx) { memSpine(ctx, MemDeepDepth) })
	st := s.Stats()
	return MemResult{
		Bench:            "mem-deepfork",
		Policy:           pol.String(),
		Workers:          MemDeepWorkers,
		Depth:            MemDeepDepth,
		DequeCapacity:    MemDeepDequeCap,
		MaxDequeCapacity: MemDeepMaxCap,

		DequeGrows:      st.DequeGrows,
		TasksSpilled:    st.TasksSpilled,
		FreelistRefills: st.FreelistRefills,
		FreelistReturns: st.FreelistReturns,
		TasksExecuted:   st.TasksExecuted,
	}
}

// MemReport is the machine-readable document written to BENCH_mem.json
// by cmd/lcwsbench -membench.
type MemReport struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Steady holds the mixed-width stream per measured policy; DeepFork
	// the growth/spill engagement runs. WS (Chase-Lev deques) and
	// Signal (split deques) cover both deque implementations.
	Steady   []MemResult `json:"steady"`
	DeepFork []MemResult `json:"deep_fork"`
}

// memPolicies are the policies the memory benchmarks measure: one per
// deque implementation.
var memPolicies = []lcws.Policy{lcws.WS, lcws.SignalLCWS}

// NewMemReport measures the steady-state stream and the deep-fork
// engagement run for WS and Signal.
func NewMemReport(jobsWarm, jobsTotal int) MemReport {
	rep := MemReport{
		Schema:     "lcws-membench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, pol := range memPolicies {
		rep.Steady = append(rep.Steady, MeasureMemSteady(pol, MemWorkers, jobsWarm, jobsTotal))
		rep.DeepFork = append(rep.DeepFork, MeasureMemDeepFork(pol))
	}
	return rep
}
