package perf

import (
	"testing"

	"lcws"
)

// Gate thresholds. The resident/spawn ratio measures both sides in the
// same process on the same pool, so it is robust to machine speed; the
// margins absorb scheduling noise on shared containers.
const (
	// execMinSpeedup is the required load-normalized advantage of the
	// resident lifecycle over spawn-per-run (measured ~1.2x).
	execMinSpeedup = 1.08
	// execMaxAllocsPerRun bounds the per-Run allocation cost of the
	// submit path (job handle + done channel + accounting shards;
	// measured 3).
	execMaxAllocsPerRun = 32.0
)

// execGatePolicies keeps the gate's runtime modest; the full per-policy
// sweep is cmd/lcwsbench -execbench territory.
var execGatePolicies = []lcws.Policy{lcws.WS, lcws.SignalLCWS}

func TestResidentExecutorBeatsSpawnPerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	for _, pol := range execGatePolicies {
		res := MeasureExecResident(pol, ExecWorkers, 0, 0)
		sp := MeasureExecSpawnPerRun(pol, ExecWorkers, 0, 0)
		if res.NormPerRun <= 0 || sp.NormPerRun <= 0 {
			t.Fatalf("%s: degenerate measurement: resident %.1f, spawn %.1f",
				pol, res.NormPerRun, sp.NormPerRun)
		}
		speedup := sp.NormPerRun / res.NormPerRun
		t.Logf("%s: resident %.0f ns/run (%.1f normalized) vs spawn-per-run %.0f ns/run (%.1f normalized): %.2fx",
			pol, res.NsPerRun, res.NormPerRun, sp.NsPerRun, sp.NormPerRun, speedup)
		if speedup < execMinSpeedup {
			t.Errorf("%s: resident pool is only %.2fx faster than spawn-per-run, want >= %.2fx",
				pol, speedup, execMinSpeedup)
		}
		if res.AllocsPerRun > execMaxAllocsPerRun {
			t.Errorf("%s: resident Run allocates %.1f objects/Run, want <= %.0f",
				pol, res.AllocsPerRun, execMaxAllocsPerRun)
		}
	}
}
