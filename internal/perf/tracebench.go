package perf

import (
	"runtime"
	"sort"

	"lcws"
)

// TraceOverheadGate is the maximum allowed slowdown of the fork path
// with the flight recorder enabled: traced NormPerFork may be at most
// 15% above untraced on the pfor-sum workload. The gate runs on
// pfor-sum rather than spawn-tree because the recorder's contract is
// bounded *relative* overhead on workloads that do real work per split;
// spawn-tree's empty bodies make ns/fork so small that two ring stores
// per event dominate it, which is not the regression the gate protects
// against (DESIGN.md §9 reports both numbers).
const TraceOverheadGate = 1.15

// TraceAllocGate is the maximum allowed heap allocations per recorded
// trace event over whole traced Run calls. Recording into the ring is
// allocation-free; the budget absorbs the per-Run pprof-label setup.
const TraceAllocGate = 0.01

// TraceOverhead is the measurement document of the enabled-tracing
// overhead gate.
type TraceOverhead struct {
	// Bench is the gated workload ("pfor-sum").
	Bench string `json:"bench"`
	// Policy is the measured policy's figure label.
	Policy string `json:"policy"`
	// UntracedNorm and TracedNorm are the best-repetition
	// load-normalized ns/fork without and with the flight recorder
	// (same estimator as Result.NormPerFork).
	UntracedNorm float64 `json:"untraced_norm_per_fork"`
	TracedNorm   float64 `json:"traced_norm_per_fork"`
	// Ratio is TracedNorm / UntracedNorm — the number the gate bounds.
	Ratio float64 `json:"ratio"`
	// NsPerForkUntraced/Traced are the raw counterparts (informational).
	NsPerForkUntraced float64 `json:"ns_per_fork_untraced"`
	NsPerForkTraced   float64 `json:"ns_per_fork_traced"`
	// EventsPerRound is how many flight-recorder events one traced Run
	// of the spawn tree records; AllocsPerEvent is heap allocations per
	// recorded event over those Runs.
	EventsPerRound float64 `json:"events_per_round"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	// Rounds and Reps record the methodology parameters.
	Rounds int `json:"rounds"`
	Reps   int `json:"reps"`
}

// tracedPForSum is MeasurePForSum on a scheduler with the flight
// recorder enabled.
func tracedPForSum(pol lcws.Policy, rounds, reps int) Result {
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol), lcws.WithTrace(lcws.TraceConfig{}))
	data := make([]int64, PForSumN)
	for i := range data {
		data[i] = int64(i)
	}
	var acc int64
	body := func(_ *lcws.Ctx, i int) { acc += data[i] }
	root := func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, PForSumN, PForSumGrain, body) }
	return measure(s, "pfor-sum", rounds, reps, func() { s.Run(root) })
}

// traceEventTotal counts every event the scheduler's recorder has
// accepted so far: the ring's surviving events plus everything that
// wrapped out. Both terms come from the same snapshot, so the sum is
// monotonic across calls and deltas count events recorded in between.
func traceEventTotal(s *lcws.Scheduler) uint64 {
	tr := s.TraceSnapshot()
	return tr.Dropped + uint64(len(tr.Events))
}

// measureTraceAllocs runs the traced spawn tree and reports heap
// allocations per recorded event and events per Run. The snapshots
// bracketing the timed window allocate on the reader side, so the
// malloc readings are taken strictly inside the bracket.
func measureTraceAllocs(pol lcws.Policy, rounds int) (allocsPerEvent, eventsPerRound float64) {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol), lcws.WithTrace(lcws.TraceConfig{}))
	root := func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, SpawnTreeN, 1, noopBody) }
	s.Run(root) // warm-up: freelists, ring pages, label sets
	before := traceEventTotal(s)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	for r := 0; r < rounds; r++ {
		s.Run(root)
	}
	runtime.ReadMemStats(&ms)
	mallocs = ms.Mallocs - mallocs
	events := traceEventTotal(s) - before
	if events == 0 {
		return 0, 0
	}
	return float64(mallocs) / float64(events), float64(events) / float64(rounds)
}

// MeasureTraceOverhead measures the enabled-tracing cost the gate
// bounds: the traced/untraced load-normalized fork-cost ratio on
// pfor-sum under SignalLCWS (the policy with the richest hook set), and
// allocations per recorded event on the traced spawn tree. Zero
// rounds/reps select the defaults.
//
// The two sides are measured as adjacent (untraced, traced) pairs and
// the reported ratio is the MEDIAN pair's: shared containers show
// multi-second degradation episodes, and with all untraced reps timed
// before all traced ones a single episode lands on only one side and
// fakes (or hides) overhead. Pairing keeps the two halves temporally
// adjacent so an episode tends to hit both or neither, and the median
// discards the pairs where it straddled the boundary — without the
// systematic optimism a min would have (the min pair is the one whose
// noise most favored the traced half).
func MeasureTraceOverhead(rounds, reps int) TraceOverhead {
	if reps <= 0 {
		reps = DefaultReps
	}
	pol := lcws.SignalLCWS
	pairs := make([]TraceOverhead, 0, reps)
	for rep := 0; rep < reps; rep++ {
		untraced := MeasurePForSum(pol, rounds, 1)
		traced := tracedPForSum(pol, rounds, 1)
		if untraced.NormPerFork == 0 || traced.NormPerFork == 0 {
			continue
		}
		pairs = append(pairs, TraceOverhead{
			Bench:             "pfor-sum",
			Policy:            pol.String(),
			Ratio:             traced.NormPerFork / untraced.NormPerFork,
			UntracedNorm:      untraced.NormPerFork,
			TracedNorm:        traced.NormPerFork,
			NsPerForkUntraced: untraced.NsPerFork,
			NsPerForkTraced:   traced.NsPerFork,
			Rounds:            traced.Rounds,
			Reps:              reps,
		})
	}
	var out TraceOverhead
	if len(pairs) > 0 {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].Ratio < pairs[j].Ratio })
		out = pairs[len(pairs)/2]
	} else {
		out = TraceOverhead{Bench: "pfor-sum", Policy: pol.String()}
	}
	out.AllocsPerEvent, out.EventsPerRound = measureTraceAllocs(pol, rounds)
	return out
}
