package perf

import (
	"runtime"
	"time"

	"lcws"
)

// Elastic pool benchmark: does the epoch-guarded worker-set actually
// deliver elasticity's promises end to end? One measurement walks a
// pool through the full lifecycle and gates each leg:
//
//  1. Demand growth. The pool starts at its resident target of
//     ElasticResident worker; a burst of ElasticBurstJobs independent
//     jobs is submitted while it is busy. The submit-side probe must
//     grow the pool (pool_grows > 0, peak live count above the
//     target) with no SetWorkers call.
//
//  2. Retire-on-idle. After the burst drains, the pool sits idle; the
//     demand-grown surplus must retire back to the resident target,
//     one deep-park insurance window at a time (workers_retired
//     grows). The settle time is reported.
//
//  3. Idle cost. With the pool settled, a quiet window is measured:
//     the process's CPU time (getrusage) over the window must stay
//     under ElasticIdleCPUFrac of one core — i.e. an idle elastic
//     pool sleeps in its deep park rather than spinning, waking only
//     for the ~100ms insurance check. deepPark deliberately records
//     no counters (between-jobs idleness belongs to no job's
//     profile), so the harness asks the OS, not the scheduler.
//
//  4. Regrow. SetWorkers back to ElasticMax must restore full-size
//     throughput: the same fixed workload, re-timed over recycled
//     slots (deques torn down to initial capacity, rings re-armed,
//     freelists donated away), must stay within ElasticRegrowFactor
//     of its pre-shrink baseline.

// Elastic benchmark dimensions. Changing them invalidates comparisons
// across revisions.
const (
	// ElasticResident is the pool's resident target; ElasticMax its
	// growth ceiling (Options.MaxWorkers).
	ElasticResident = 1
	ElasticMax      = 4
	// ElasticBurstJobs and ElasticBurstIters shape the demand burst:
	// enough backlog behind a busy single worker that the submit probe
	// must fire, each job long enough (~1ms) that the backlog does not
	// drain before it does.
	ElasticBurstJobs  = 32
	ElasticBurstIters = 200_000
	// ElasticWorkloadTasks/Iters/Reps shape the fixed throughput
	// workload (one Run, ElasticWorkloadTasks independent spin tasks);
	// the minimum of Reps timings is reported.
	ElasticWorkloadTasks = 64
	ElasticWorkloadIters = 100_000
	ElasticWorkloadReps  = 3
	// ElasticIdleCPUFrac is the idle-cost gate: process CPU time over
	// the quiet window must stay under this fraction of one core. An
	// idle worker wakes only for the ~100ms insurance check
	// (microseconds awake per wake), so a healthy pool measures well
	// under 1%; a pool that spins instead of parking measures ~100%
	// per live worker. The headroom absorbs GC and runtime background
	// work on noisy CI hosts.
	ElasticIdleCPUFrac = 0.10
	// ElasticRegrowFactor bounds the regrown pool's workload time
	// relative to the pre-shrink baseline on the same pool.
	ElasticRegrowFactor = 2.5
)

// elasticPolicies are the policies the elastic benchmark measures: one
// per deque implementation, as in the QoS and memory benchmarks.
var elasticPolicies = []lcws.Policy{lcws.WS, lcws.SignalLCWS}

// ElasticResult is one policy's walk through the elastic lifecycle.
type ElasticResult struct {
	Bench      string `json:"bench"`
	Policy     string `json:"policy"`
	Resident   int    `json:"resident"`
	MaxWorkers int    `json:"max_workers"`

	// BaselineNs is the fixed workload's wall time at full size,
	// before any shrink; RegrowNs the same workload after the
	// shrink/idle/regrow cycle; RegrowRatio their quotient.
	BaselineNs  int64   `json:"baseline_ns"`
	RegrowNs    int64   `json:"regrow_ns"`
	RegrowRatio float64 `json:"regrow_ratio"`

	// BurstJobs is the demand burst's size; PeakWorkers the largest
	// live count observed while it drained; BurstPoolGrows the
	// pool_grows delta the burst provoked.
	BurstJobs      int    `json:"burst_jobs"`
	PeakWorkers    int    `json:"peak_workers"`
	BurstPoolGrows uint64 `json:"burst_pool_grows"`

	// RetireSettleNs is how long after the burst drained the pool took
	// to retire back to the resident target (capped at the idle
	// window); Settled records whether it got there.
	RetireSettleNs     int64  `json:"retire_settle_ns"`
	Settled            bool   `json:"settled"`
	WorkersRetiredIdle uint64 `json:"workers_retired_idle"`

	// IdleWindowNs is the quiet window; IdleCPUNs the process CPU
	// time (user+system, getrusage) burned during it (-1 when the
	// platform cannot report it); IdleCPUFrac that time as a fraction
	// of one core over the window.
	IdleWindowNs int64   `json:"idle_window_ns"`
	IdleCPUNs    int64   `json:"idle_cpu_ns"`
	IdleCPUFrac  float64 `json:"idle_cpu_frac"`

	// Cumulative elastic counters at the end of the measurement.
	PoolGrows      uint64 `json:"pool_grows"`
	WorkersRetired uint64 `json:"workers_retired"`
	Resizes        uint64 `json:"resizes"`
	EpochReclaims  uint64 `json:"epoch_reclaims"`
}

// elasticWorkload times the fixed throughput workload on s, returning
// the minimum wall time over ElasticWorkloadReps runs.
func elasticWorkload(s *lcws.Scheduler) int64 {
	best := int64(0)
	for rep := 0; rep < ElasticWorkloadReps; rep++ {
		t0 := time.Now()
		s.Run(func(ctx *lcws.Ctx) {
			lcws.ParFor(ctx, 0, ElasticWorkloadTasks, 1, func(ctx *lcws.Ctx, i int) {
				qosSpin(ctx, ElasticWorkloadIters)
			})
		})
		if d := time.Since(t0).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}

// MeasureElastic walks pol's pool through the elastic lifecycle.
// idleWindow bounds both the retire-settle wait and the quiet-window
// measurement; non-positive means the 2s default.
func MeasureElastic(pol lcws.Policy, idleWindow time.Duration) ElasticResult {
	if idleWindow <= 0 {
		idleWindow = 2 * time.Second
	}
	s := lcws.New(
		lcws.WithWorkers(ElasticResident),
		lcws.WithMaxWorkers(ElasticMax),
		lcws.WithPolicy(pol),
	)
	defer s.Close()
	s.Start()

	res := ElasticResult{
		Bench:        "elastic",
		Policy:       pol.String(),
		Resident:     ElasticResident,
		MaxWorkers:   ElasticMax,
		BurstJobs:    ElasticBurstJobs,
		IdleWindowNs: idleWindow.Nanoseconds(),
	}

	// Phase 1: full-size throughput baseline.
	must(s.SetWorkers(ElasticMax))
	res.BaselineNs = elasticWorkload(s)

	// Phase 2: back to the resident target, then a demand burst. The
	// sampler watches the live count while the backlog drains.
	must(s.SetWorkers(ElasticResident))
	stBefore := lcws.StatsOf(s)
	stopSample := make(chan struct{})
	peakCh := make(chan int, 1)
	go func() {
		peak := s.Workers()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSample:
				peakCh <- peak
				return
			case <-tick.C:
				if n := s.Workers(); n > peak {
					peak = n
				}
			}
		}
	}()
	jobs := make([]*lcws.Job, 0, ElasticBurstJobs)
	for i := 0; i < ElasticBurstJobs; i++ {
		jobs = append(jobs, s.Submit(func(ctx *lcws.Ctx) { qosSpin(ctx, ElasticBurstIters) }))
	}
	for _, j := range jobs {
		j.Wait()
	}
	close(stopSample)
	res.PeakWorkers = <-peakCh
	stBurst := lcws.StatsOf(s)
	res.BurstPoolGrows = stBurst.PoolGrows - stBefore.PoolGrows

	// Phase 3: retire-on-idle — wait (bounded by the idle window) for
	// the demand-grown surplus to retire back to the target.
	settleStart := time.Now()
	deadline := settleStart.Add(idleWindow)
	for time.Now().Before(deadline) {
		if s.Workers() == ElasticResident {
			res.Settled = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.RetireSettleNs = time.Since(settleStart).Nanoseconds()

	// Phase 4: quiet window — the settled pool must sleep, not spin.
	cpu0 := processCPUNs()
	time.Sleep(idleWindow)
	cpu1 := processCPUNs()
	stQuiet := lcws.StatsOf(s)
	if cpu0 >= 0 && cpu1 >= cpu0 {
		res.IdleCPUNs = cpu1 - cpu0
		res.IdleCPUFrac = float64(res.IdleCPUNs) / float64(idleWindow.Nanoseconds())
	} else {
		res.IdleCPUNs = -1
	}
	res.WorkersRetiredIdle = stQuiet.WorkersRetired - stBurst.WorkersRetired

	// Phase 5: regrow to full size and re-time the workload over the
	// recycled slots.
	must(s.SetWorkers(ElasticMax))
	res.RegrowNs = elasticWorkload(s)
	if res.BaselineNs > 0 {
		res.RegrowRatio = float64(res.RegrowNs) / float64(res.BaselineNs)
	}

	st := lcws.StatsOf(s)
	res.PoolGrows = st.PoolGrows
	res.WorkersRetired = st.WorkersRetired
	res.Resizes = st.Resizes
	res.EpochReclaims = st.EpochReclaims
	return res
}

// must panics on a SetWorkers error: the benchmark only passes in-range
// sizes to an open pool, so an error is a harness bug.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// ElasticGrew reports whether the demand burst grew the pool.
func ElasticGrew(res ElasticResult) bool {
	return res.BurstPoolGrows > 0 && res.PeakWorkers > res.Resident
}

// ElasticRetired reports whether idle retirement fired after the burst.
func ElasticRetired(res ElasticResult) bool { return res.WorkersRetiredIdle > 0 }

// ElasticIdleQuiet reports whether the settled pool slept through the
// quiet window. It passes trivially where rusage is unavailable.
func ElasticIdleQuiet(res ElasticResult) bool {
	return res.IdleCPUNs < 0 || res.IdleCPUFrac <= ElasticIdleCPUFrac
}

// ElasticRegrowRestored reports whether regrowth restored full-size
// throughput.
func ElasticRegrowRestored(res ElasticResult) bool {
	return res.RegrowRatio > 0 && res.RegrowRatio <= ElasticRegrowFactor
}

// ElasticReport is the machine-readable document written to
// BENCH_elastic.json by cmd/lcwsbench -elasticbench.
type ElasticReport struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Results holds one lifecycle walk per measured policy.
	Results []ElasticResult `json:"results"`
}

// NewElasticReport measures the elastic lifecycle for each policy in
// elasticPolicies. Defaults apply when window is non-positive.
func NewElasticReport(window time.Duration) ElasticReport {
	rep := ElasticReport{
		Schema:     "lcws-elasticbench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, pol := range elasticPolicies {
		rep.Results = append(rep.Results, MeasureElastic(pol, window))
	}
	return rep
}
