// Package perf is the fork-overhead measurement harness for the
// scheduler's allocation/benchmark regression gate.
//
// It measures the cost of the no-steal fork fast path — the quantity the
// paper's schedulers compete on once synchronization is gone — with two
// single-worker microbenchmarks:
//
//   - spawn-tree: a ParFor over 4096 indices with grain 1 and an empty
//     body. Every binary split is one fork (push + pop + inline run +
//     recycle), so elapsed time / forks is ns per fork with nothing else
//     in the loop.
//   - pfor-sum: a ParFor summing 64Ki int64s with grain 512. The body
//     dominates; the bench watches that per-split overhead stays noise.
//
// Methodology: each measurement repetition runs a warm-up Run (which also
// warms the task freelists), then times `rounds` whole Run calls and
// reports their mean ns/fork; the harness takes the best (minimum) of
// `reps` repetitions. The mean keeps costs that are intrinsic per-round
// (e.g. the GC time a fork path that allocates per split must pay),
// while the min-of-reps discards repetitions that lost the CPU to
// unrelated load — on shared single-CPU containers a single estimator
// does not separate the two. Allocations are measured over the same
// window via runtime.MemStats.Mallocs, not testing.AllocsPerRun, so the
// count covers complete Run calls including worker startup.
//
// Shared containers add one more failure mode: load episodes that slow
// the machine uniformly for many seconds, longer than any rep window.
// MeasureReference times a scheduler-independent serial kernel in the
// same conditions; gates compare load-normalized costs (ns/fork divided
// by the reference's ns/op, current vs. baseline) so a uniformly slow or
// fast machine cancels out instead of flaking the gate.
//
// Baselines recorded by a previous revision of the code (see
// baseline.go, written to BENCH_fork.json by cmd/lcwsbench -forkbench)
// gate regressions: forkbench_test.go fails when the fork path allocates
// again or gives back the speedup this harness exists to protect.
package perf

import (
	"runtime"
	"time"

	"lcws"
)

// Benchmark dimensions. These are part of the measurement definition:
// changing them invalidates comparisons against recorded baselines.
const (
	// SpawnTreeN is the spawn-tree index range; 4096 leaves = 4095 forks.
	SpawnTreeN = 4096
	// PForSumN is the pfor-sum element count.
	PForSumN = 1 << 16
	// PForSumGrain is the pfor-sum leaf size (127 splits over PForSumN).
	PForSumGrain = 512
	// DefaultRounds is the number of timed Run calls per repetition.
	DefaultRounds = 200
	// DefaultReps is the number of repetitions the minimum is taken
	// over. Five repetitions make the estimator robust on shared
	// containers where a single repetition can lose the CPU for a
	// double-digit fraction of its window.
	DefaultReps = 5
)

// Result is one benchmark × policy measurement.
type Result struct {
	// Bench is the benchmark name ("spawn-tree" or "pfor-sum").
	Bench string `json:"bench"`
	// Policy is the scheduling policy's figure label.
	Policy string `json:"policy"`
	// NsPerFork is the best repetition's mean time per fork in
	// nanoseconds (elapsed time of a repetition / forks executed).
	NsPerFork float64 `json:"ns_per_fork"`
	// RefNsPerOp is the calibration kernel's per-element cost bracketing
	// the best repetition's window, and NormPerFork is NsPerFork divided
	// by it: fork cost in machine-relative units. Repetitions are ranked
	// by NormPerFork, so "best" means best after discounting machine
	// load, and speedup gates compare NormPerFork across revisions.
	RefNsPerOp  float64 `json:"ref_ns_per_op"`
	NormPerFork float64 `json:"norm_per_fork"`
	// AllocsPerFork is heap allocations per fork over the best
	// repetition's timed window (0 once the freelists are warm).
	AllocsPerFork float64 `json:"allocs_per_fork"`
	// FencesPerFork and CASPerFork are the counting-model costs per
	// fork (the paper's Figure 3 profile for this workload).
	FencesPerFork float64 `json:"fences_per_fork"`
	CASPerFork    float64 `json:"cas_per_fork"`
	// Forks is the number of forks in one Run call.
	Forks uint64 `json:"forks_per_round"`
	// Rounds and Reps record the methodology parameters.
	Rounds int `json:"rounds"`
	Reps   int `json:"reps"`
}

// Key returns the baseline-map key "<bench>/<policy>".
func (r Result) Key() string { return r.Bench + "/" + r.Policy }

func noopBody(*lcws.Ctx, int) {}

// measure times rounds×Run calls reps times and fills a Result from the
// best repetition. run must execute one Run call of the workload on s.
func measure(s *lcws.Scheduler, bench string, rounds, reps int, run func()) Result {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	if reps <= 0 {
		reps = DefaultReps
	}
	res := Result{
		Bench:  bench,
		Policy: s.Policy().String(),
		Rounds: rounds,
		Reps:   reps,
	}
	var ms runtime.MemStats
	first := true
	for rep := 0; rep < reps; rep++ {
		run() // warm-up: freelists, deques, code paths
		s.ResetStats()
		refBefore := quickReference()
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		for r := 0; r < rounds; r++ {
			run()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs - mallocs
		refAfter := quickReference()
		st := s.Stats()
		forks := st.TasksPushed
		if forks == 0 {
			continue
		}
		// The faster bracket is the better estimate of the machine's
		// clean speed around this window.
		ref := refBefore
		if refAfter < ref {
			ref = refAfter
		}
		ns := float64(elapsed.Nanoseconds()) / float64(forks)
		norm := ns / ref
		if first || norm < res.NormPerFork {
			first = false
			res.NsPerFork = ns
			res.RefNsPerOp = ref
			res.NormPerFork = norm
			res.AllocsPerFork = float64(mallocs) / float64(forks)
			res.FencesPerFork = float64(st.Fences) / float64(forks)
			res.CASPerFork = float64(st.CAS) / float64(forks)
			res.Forks = forks / uint64(rounds)
		}
	}
	return res
}

// quickReference is the short calibration burst bracketing each timed
// repetition: a few milliseconds of the reference kernel, minimum of two
// passes, in ns per element.
func quickReference() float64 { return MeasureReference(16, 2) }

// MeasureSpawnTree measures ns/fork of the no-steal spawn tree on a
// single-worker scheduler running pol. Zero rounds/reps select the
// defaults.
func MeasureSpawnTree(pol lcws.Policy, rounds, reps int) Result {
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol))
	root := func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, SpawnTreeN, 1, noopBody) }
	return measure(s, "spawn-tree", rounds, reps, func() { s.Run(root) })
}

// MeasurePForSum measures per-split overhead of a grain-512 ParFor sum
// on a single-worker scheduler running pol.
func MeasurePForSum(pol lcws.Policy, rounds, reps int) Result {
	s := lcws.New(lcws.WithWorkers(1), lcws.WithPolicy(pol))
	data := make([]int64, PForSumN)
	for i := range data {
		data[i] = int64(i)
	}
	var acc int64
	body := func(_ *lcws.Ctx, i int) { acc += data[i] }
	root := func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, PForSumN, PForSumGrain, body) }
	return measure(s, "pfor-sum", rounds, reps, func() { s.Run(root) })
}

// referenceData backs the calibration kernel; one allocation per
// process.
var referenceData []int64

// ReferenceN is the element count of one calibration pass.
const ReferenceN = 1 << 18

// MeasureReference times the calibration kernel — a serial reduction
// over ReferenceN int64s carrying a three-op dependency chain per
// element (add, shift, xor), no scheduler code at all — with the same
// rounds/reps methodology as the fork benchmarks and returns its
// best-repetition mean ns per element. Fork costs divided by this value
// are in "machine-relative" units that survive uniform slowdowns of a
// loaded host.
//
// The chain is load-bearing: an earlier revision used a bare `acc += v`
// loop, which runs at one cycle per element — a rate the frontend only
// sustains when the compiled loop happens to sit well inside the
// decoded-uop cache. That made the measurement a function of code
// placement: two structurally identical copies of that loop in one
// binary, over the same array, read 0.37 vs 0.63 ns/element on the CI
// container class, so adding unrelated code anywhere in the repo could
// swing every "machine-relative" number by up to ~70% and flip the
// speedup gates with the fork path untouched. Three dependent ALU ops
// per element pin the loop to its data-dependency latency (~3 cycles);
// at that pace the few loop uops are fetchable from anywhere, and the
// measurement is stable across binaries. The independent loads stream
// ahead of the chain, so memory effects stay hidden too.
func MeasureReference(rounds, reps int) float64 {
	if rounds <= 0 {
		rounds = DefaultRounds
	}
	if reps <= 0 {
		reps = DefaultReps
	}
	if referenceData == nil {
		referenceData = make([]int64, ReferenceN)
		for i := range referenceData {
			referenceData[i] = int64(i ^ (i >> 3))
		}
	}
	var sink int64
	pass := func() int64 {
		var acc int64
		for _, v := range referenceData {
			acc += v
			acc ^= acc >> 13
		}
		return acc
	}
	sink = pass() // warm data into cache once
	best := 0.0
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			sink += pass()
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(rounds*ReferenceN)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	referenceSink = sink // defeat dead-code elimination
	return best
}

// referenceSink keeps MeasureReference's arithmetic observable.
var referenceSink int64

// MeasureAll runs both benchmarks for every policy in presentation
// order.
func MeasureAll(rounds, reps int) []Result {
	var out []Result
	for _, pol := range lcws.Policies {
		out = append(out, MeasureSpawnTree(pol, rounds, reps))
	}
	for _, pol := range lcws.Policies {
		out = append(out, MeasurePForSum(pol, rounds, reps))
	}
	return out
}

// Report is the machine-readable document written to BENCH_fork.json.
type Report struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// ReferenceNsPerOp is the calibration kernel's cost measured in the
	// same conditions as Benches; BaselineReferenceNsPerOp is the same
	// kernel's cost at baseline-recording time. Speedups are computed on
	// the load-normalized ratio (ns_per_fork / reference) of the two
	// revisions.
	ReferenceNsPerOp         float64 `json:"reference_ns_per_op"`
	BaselineReferenceNsPerOp float64 `json:"baseline_reference_ns_per_op"`
	// BaselineNsPerFork is the pre-optimization baseline in raw
	// nanoseconds (informational), and BaselineNormPerFork the
	// load-normalized baseline the speedup gate compares against; both
	// keyed "<bench>/<policy>".
	BaselineNsPerFork   map[string]float64 `json:"baseline_ns_per_fork"`
	BaselineNormPerFork map[string]float64 `json:"baseline_norm_per_fork"`
	// Benches are the current measurements.
	Benches []Result `json:"benches"`
}

// NewReport measures everything and pairs it with the recorded baseline.
func NewReport(rounds, reps int) Report {
	return Report{
		Schema:                   "lcws-forkbench/v1",
		GoVersion:                runtime.Version(),
		GOMAXPROCS:               runtime.GOMAXPROCS(0),
		ReferenceNsPerOp:         MeasureReference(rounds, reps),
		BaselineReferenceNsPerOp: BaselineReferenceNsPerOp,
		BaselineNsPerFork:        BaselineNsPerFork(),
		BaselineNormPerFork:      BaselineNormPerFork(),
		Benches:                  MeasureAll(rounds, reps),
	}
}
