package perf

import (
	"testing"

	"lcws"
)

// spawnTreeResults memoizes one spawn-tree measurement per policy so the
// three gates below (allocations, speedup, counter ordering) don't
// re-pay the measurement three times.
var spawnTreeResults = map[string]Result{}

func spawnTree(t *testing.T, pol lcws.Policy) Result {
	t.Helper()
	if r, ok := spawnTreeResults[pol.String()]; ok {
		return r
	}
	r := MeasureSpawnTree(pol, 0, 0)
	if r.Forks == 0 {
		t.Fatalf("%s: spawn tree executed no forks", pol)
	}
	spawnTreeResults[pol.String()] = r
	return r
}

// TestSpawnTreeZeroAllocs is the allocation gate: the steady-state fork
// fast path (freelist task + closure-free range split) must not allocate.
// The budget is a small epsilon per fork rather than exactly zero so a
// one-off runtime-internal allocation inside the ~800k-fork window
// cannot flake the gate; a real regression (the pre-freelist code paid 2
// allocs per fork) exceeds it by orders of magnitude.
func TestSpawnTreeZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are distorted by the race detector")
	}
	for _, pol := range lcws.Policies {
		r := spawnTree(t, pol)
		if r.AllocsPerFork > 0.01 {
			t.Errorf("%s: %.3f allocs/fork in steady state, want 0 (fork fast path is allocating again)",
				pol, r.AllocsPerFork)
		}
	}
}

// TestPForSumSplitAllocs gates the ParFor split path on a workload with a
// real body: splits must stay allocation-free (the loose budget absorbs
// the workload's own one-off allocations amortized over the window).
func TestPForSumSplitAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are distorted by the race detector")
	}
	for _, pol := range lcws.Policies {
		r := MeasurePForSum(pol, 50, 1)
		if r.AllocsPerFork > 0.05 {
			t.Errorf("%s: %.3f allocs/split in pfor-sum, want 0", pol, r.AllocsPerFork)
		}
	}
}

// TestSpawnTreeSpeedupVsBaseline is the performance gate: the no-steal
// spawn tree's load-normalized cost per fork must stay at least
// SpawnTreeSpeedupFloor times better than the recorded pre-optimization
// baseline for every policy. Comparing normalized units (ns/fork over
// the calibration kernel's ns/op, each side measured under its own
// machine conditions) keeps the gate meaningful on hosts that are
// uniformly faster, slower, or temporarily loaded.
func TestSpawnTreeSpeedupVsBaseline(t *testing.T) {
	if RaceEnabled {
		t.Skip("timing is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate needs full-length measurement")
	}
	base := BaselineNormPerFork()
	for _, pol := range lcws.Policies {
		r := spawnTree(t, pol)
		b, ok := base[r.Key()]
		if !ok {
			t.Fatalf("no recorded baseline for %s", r.Key())
		}
		floor := SpawnTreeSpeedupFloor(pol.String())
		speedup := b / r.NormPerFork
		t.Logf("%s: %.1f ns/fork (%.1f normalized) vs baseline %.1f normalized (%.2fx)",
			r.Key(), r.NsPerFork, r.NormPerFork, b, speedup)
		if speedup < floor {
			t.Errorf("%s: normalized %.1f is only %.2fx better than the recorded baseline %.1f, want >= %.1fx",
				r.Key(), r.NormPerFork, speedup, b, floor)
		}
	}
}

// TestFigure3OrderingPreserved checks that the optimization did not
// disturb the paper's headline counter result on this workload: WS pays
// its two fences per fork (push + pop, Lemma 1/2 commentary in
// internal/counters/model.go) while the LCWS variants' private-part
// operations are synchronization-free.
func TestFigure3OrderingPreserved(t *testing.T) {
	for _, pol := range lcws.Policies {
		r := spawnTree(t, pol)
		switch {
		case pol == lcws.WS:
			if r.FencesPerFork < 1.99 || r.FencesPerFork > 2.01 {
				t.Errorf("WS: %.3f fences/fork, want 2 (push+pop per the counting model)", r.FencesPerFork)
			}
		default:
			if r.FencesPerFork != 0 {
				t.Errorf("%s: %.3f fences/fork on the no-steal path, want 0", pol, r.FencesPerFork)
			}
			if r.CASPerFork != 0 {
				t.Errorf("%s: %.3f CAS/fork on the no-steal path, want 0", pol, r.CASPerFork)
			}
		}
	}
	ws := spawnTree(t, lcws.WS)
	for _, pol := range []lcws.Policy{lcws.USLCWS, lcws.SignalLCWS} {
		if r := spawnTree(t, pol); r.FencesPerFork >= ws.FencesPerFork {
			t.Errorf("Figure-3 ordering violated: %s pays %.3f fences/fork, WS %.3f",
				pol, r.FencesPerFork, ws.FencesPerFork)
		}
	}
}
