package perf

import (
	"runtime"
	"testing"

	"lcws"
)

// stealResults memoizes one ping-pong measurement per mode so the gates
// below share the measurement instead of re-paying its ~1s of quiesce
// periods each.
var stealResults = map[string]StealModeResult{}

func stealPingPong(t *testing.T, batch bool) StealModeResult {
	t.Helper()
	key := "ladder"
	if batch {
		key = "park"
	}
	if r, ok := stealResults[key]; ok {
		return r
	}
	r := MeasureStealLatency(lcws.WS, batch, 0, 0)
	if r.Steals == 0 {
		t.Fatalf("%s: ping-pong completed without a single steal", r.Key())
	}
	stealResults[key] = r
	return r
}

// skipUnlessStealBenchable centralizes the preconditions of the
// steal-latency gates: latencies are meaningless under the race detector
// and on single-CPU hosts (the thief needs its own CPU to show wake
// latency rather than scheduling latency), and the measurement's quiesce
// periods are too slow for -short.
func skipUnlessStealBenchable(t *testing.T) {
	t.Helper()
	if RaceEnabled {
		t.Skip("timing is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("steal-latency measurement needs its full quiesce periods")
	}
	if runtime.NumCPU() < 2 || runtime.GOMAXPROCS(0) < 2 {
		t.Skip("steal-latency measurement needs two CPUs")
	}
}

// TestStealLatencyBatchParkSpeedup is the steal-side performance gate:
// after a quiesce period, the batch+parking mode's mean time-to-first-
// steal must be at least StealLatencySpeedupGate times better than the
// sleep-ladder baseline on the same bursty ping-pong. The baseline's
// latency is dominated by the blind capped sleep (on average half a
// quantum of idleSleepMax); the parking lot replaces it with a semaphore
// wake on the push, so the expected margin is an order of magnitude —
// the 2x gate only fails when event-driven wakeups stop working and
// parked thieves fall back to their insurance timers.
func TestStealLatencyBatchParkSpeedup(t *testing.T) {
	skipUnlessStealBenchable(t)
	ladder := stealPingPong(t, false)
	park := stealPingPong(t, true)
	if park.NsFirstSteal <= 0 {
		t.Fatalf("batch-park measured a non-positive latency %.1f", park.NsFirstSteal)
	}
	speedup := ladder.NsFirstSteal / park.NsFirstSteal
	t.Logf("time-to-first-steal: sleep-ladder %.1fus, batch-park %.1fus (%.1fx)",
		ladder.NsFirstSteal/1e3, park.NsFirstSteal/1e3, speedup)
	if speedup < StealLatencySpeedupGate {
		t.Errorf("batch-park first-steal latency %.1fus is only %.2fx better than the sleep ladder's %.1fus, want >= %.1fx",
			park.NsFirstSteal/1e3, speedup, ladder.NsFirstSteal/1e3, StealLatencySpeedupGate)
	}
}

// TestStealPathZeroAllocs is the steal-side allocation gate: a burst —
// fork, wake, batched steal, remnant handling, re-park — must not
// allocate in steady state in either mode. The 0.1 budget absorbs
// one-off runtime-internal allocations inside the window; a real
// regression (a closure or buffer allocated per steal or per wake)
// exceeds it immediately.
func TestStealPathZeroAllocs(t *testing.T) {
	skipUnlessStealBenchable(t)
	for _, batch := range []bool{false, true} {
		r := stealPingPong(t, batch)
		if r.AllocsPerBurst > 0.1 {
			t.Errorf("%s: %.3f allocs/burst in steady state, want 0", r.Key(), r.AllocsPerBurst)
		}
	}
}

// TestRelaxedStealOpSpeedup is the MultFree performance gate: on the
// fine-grained burst-drain harness, MultFree's ParFor steal path (the
// batched relaxed claim — one plain cursor store per up to
// StealOpBatch tasks, no CAS validation window) must be at least
// RelaxedStealSpeedupGate times cheaper per stolen task than
// SignalLCWS's exclusive claim. Unlike the latency gates above the
// harness is single-threaded by design — it measures the steal path's
// instruction cost, not wake latency — so it runs on one-CPU hosts too.
func TestRelaxedStealOpSpeedup(t *testing.T) {
	if RaceEnabled {
		t.Skip("timing is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("steal-op measurement needs its full rounds")
	}
	cas := MeasureStealOpCost(false, 0, 0, 0, 0)
	rel := MeasureStealOpCost(true, StealOpBatch, 0, 0, 0)
	if cas.Steals == 0 || rel.Steals == 0 || rel.NsPerSteal <= 0 {
		t.Fatalf("degenerate measurement: cas=%+v relaxed=%+v", cas, rel)
	}
	want := uint64(cas.Rounds * cas.Burst)
	if cas.Steals != want || rel.Steals != want {
		t.Fatalf("drain incomplete: cas stole %d, relaxed-batch stole %d, want %d per repetition",
			cas.Steals, rel.Steals, want)
	}
	speedup := cas.NsPerSteal / rel.NsPerSteal
	t.Logf("per-steal cost: cas %.1fns, relaxed-batch %.1fns over %d ops (%.2fx)",
		cas.NsPerSteal, rel.NsPerSteal, rel.Ops, speedup)
	if speedup < RelaxedStealSpeedupGate {
		t.Errorf("MultFree steal %.1fns/task is only %.2fx cheaper than Signal's %.1fns, want >= %.2fx",
			rel.NsPerSteal, speedup, cas.NsPerSteal, RelaxedStealSpeedupGate)
	}
}

// TestRelaxedStealOpFenceFree checks the harness measures what it
// claims: both relaxed drains must pay zero CAS and zero fences (every
// claim through the cursor store, counted per task as relaxed steals),
// and the CAS drains must pay one CAS per claim operation with no
// relaxed claims. Counter profiles need no timing validity, so this
// runs everywhere.
func TestRelaxedStealOpFenceFree(t *testing.T) {
	for _, batch := range []int{0, StealOpBatch} {
		rel := MeasureStealOpCost(true, batch, 8, 64, 1)
		if rel.CAS != 0 || rel.Fences != 0 {
			t.Errorf("%s: drain paid synchronization: cas=%d fences=%d, want 0/0", rel.Path, rel.CAS, rel.Fences)
		}
		if rel.RelaxedSteals != rel.Steals {
			t.Errorf("%s: claimed %d tasks but counted %d relaxed steals", rel.Path, rel.Steals, rel.RelaxedSteals)
		}
		cas := MeasureStealOpCost(false, batch, 8, 64, 1)
		if cas.CAS < cas.Ops {
			t.Errorf("%s: counted %d CAS for %d claim ops, want >= one per op", cas.Path, cas.CAS, cas.Ops)
		}
		if cas.RelaxedSteals != 0 {
			t.Errorf("%s: counted %d relaxed steals, want 0", cas.Path, cas.RelaxedSteals)
		}
	}
}

// TestRelaxedDuplicateRateBounded is the scheduler-level MultFree gate:
// a fine-grained ParFor's absorbed duplicates must stay within the
// model-checked multiplicity bound — at most thieves (= workers-1)
// duplicates per relaxed steal window — and the claimed-sum check must
// prove every element still executed exactly once per round.
func TestRelaxedDuplicateRateBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate-rate run needs its full workload")
	}
	r := MeasureRelaxedDuplicateRate(0, 0, 0)
	t.Logf("MultFree run: %d relaxed steals, %d duplicates absorbed (rate %.4f, bound %d)",
		r.RelaxedSteals, r.TasksDuplicated, r.DuplicateRate, r.Workers-1)
	if !r.SumOK {
		t.Errorf("ParFor sum wrong under MultFree: duplicates were not absorbed before execution")
	}
	if bound := uint64(r.Workers-1) * r.RelaxedSteals; r.TasksDuplicated > bound {
		t.Errorf("%d duplicates exceed the multiplicity bound thieves x relaxed-steals = %d",
			r.TasksDuplicated, bound)
	}
}

// TestStealBenchExercisesParkingLot checks the measurement measures what
// it claims: in batch mode the bursts must be served through the parking
// lot (parks and wakeups observed), and in the baseline the parking-lot
// counters must stay zero.
func TestStealBenchExercisesParkingLot(t *testing.T) {
	skipUnlessStealBenchable(t)
	park := stealPingPong(t, true)
	if park.ParkCount == 0 {
		t.Errorf("batch-park: no parks recorded; the idle worker never reached the parking lot")
	}
	if park.WakeupsSent == 0 {
		t.Errorf("batch-park: no wakeups recorded; bursts were served by insurance timers, not events")
	}
	ladder := stealPingPong(t, false)
	if ladder.ParkCount != 0 || ladder.WakeupsSent != 0 {
		t.Errorf("sleep-ladder: parking-lot counters non-zero (parks=%d wakeups=%d) without StealBatch",
			ladder.ParkCount, ladder.WakeupsSent)
	}
}
