//go:build unix

package perf

import "syscall"

// processCPUNs returns the process's cumulative CPU time (user +
// system) in nanoseconds, or -1 if the platform cannot report it. The
// elastic benchmark's idle-cost gate is a statement about CPU burned,
// not about any scheduler counter — deepPark deliberately records
// nothing — so the harness asks the OS directly.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return -1
	}
	return syscall.TimevalToNsec(ru.Utime) + syscall.TimevalToNsec(ru.Stime)
}
