package perf

import (
	"testing"
	"time"

	"lcws"
)

// qosGateWindow keeps the CI gates fast; the lcwsbench report uses a
// longer window for tighter numbers.
const qosGateWindow = 400 * time.Millisecond

// TestQoSWeightedSharesConverge is the fairness regression gate: with
// a deep identical-cost backlog per class and class weights 4:2:1, the
// pickup shares over the measured completion prefix must fall within
// QoSFairSkew of the ideal 4/7 : 2/7 : 1/7 split.
func TestQoSWeightedSharesConverge(t *testing.T) {
	if testing.Short() {
		t.Skip("fairness gate needs a measurement window; skipped in -short")
	}
	if RaceEnabled {
		t.Skip("race instrumentation distorts service times; the share gate is meaningless under -race")
	}
	for _, pol := range qosPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			res := MeasureQoSFairness(pol, qosGateWindow)
			for _, cs := range res.Classes {
				t.Logf("%s: %s completed=%d share=%.3f ideal=%.3f wait p99=%v",
					pol, cs.Class, cs.Completed, cs.Share, cs.IdealShare,
					time.Duration(cs.WaitP99Ns))
			}
			if !QoSFair(res) {
				t.Errorf("max share skew %.3f exceeds the %.2fx fairness gate", res.MaxSkew, QoSFairSkew)
			}
		})
	}
}

// TestQoSHighNotStarvedUnderLowFlood is the starvation regression gate:
// a High trickle against a QoSStarveTenants-deep Low flood must see p99
// queue-to-pickup latency within QoSStarveBound — roughly one flood-job
// service time, where FIFO pickup would cost the whole backlog.
func TestQoSHighNotStarvedUnderLowFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("starvation gate needs a measurement window; skipped in -short")
	}
	if RaceEnabled {
		t.Skip("race instrumentation distorts service times; the latency gate is meaningless under -race")
	}
	for _, pol := range qosPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			res := MeasureQoSStarvation(pol, qosGateWindow, true)
			t.Logf("%s: flood=%d trickle=%d lowService=%v highWait mean=%v p99=%v bound=%v yields=%d",
				pol, res.FloodCompleted, res.TrickleCompleted,
				time.Duration(res.FloodServiceMeanNs), time.Duration(res.TrickleWaitMeanNs),
				time.Duration(res.TrickleWaitP99Ns), time.Duration(res.BoundNs), res.JobYields)
			if res.TrickleCompleted == 0 {
				t.Fatal("the High trickle completed no jobs: starved outright")
			}
			if res.TrickleWaitP99Ns > res.BoundNs {
				t.Errorf("High p99 pickup wait %v exceeds bound %v (mean Low service %v)",
					time.Duration(res.TrickleWaitP99Ns), time.Duration(res.BoundNs),
					time.Duration(res.FloodServiceMeanNs))
			}
		})
	}
}

// TestQoSSingleClassMatchesFIFOThroughput pins the acceptance criterion
// that single-class submission pays nothing measurable for the QoS
// machinery: a Normal-only closed-loop stream completes within a few
// percent of the same stream on a weight-skewed pool (the weights are
// irrelevant when only one class submits — the stride order degenerates
// to FIFO), and the QoS counters stay quiet.
func TestQoSSingleClassMatchesFIFOThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a measurement window; skipped in -short")
	}
	s := lcws.New(lcws.WithWorkers(QoSWorkers), lcws.WithPolicy(lcws.SignalLCWS))
	defer s.Close()
	done := 0
	deadline := time.Now().Add(qosGateWindow / 2)
	for time.Now().Before(deadline) {
		s.Run(func(ctx *lcws.Ctx) { qosSpin(ctx, QoSJobIters) })
		done++
	}
	st := s.Stats()
	if st.JobYields != 0 {
		t.Errorf("JobYields = %d on a single-class stream, want 0", st.JobYields)
	}
	if st.AdmissionRejects != 0 {
		t.Errorf("AdmissionRejects = %d with unbounded classes, want 0", st.AdmissionRejects)
	}
	if st.JobsEnqueuedNormal == 0 || st.JobsEnqueuedHigh != 0 || st.JobsEnqueuedLow != 0 {
		t.Errorf("per-class enqueue counts %d/%d/%d, want all-Normal",
			st.JobsEnqueuedHigh, st.JobsEnqueuedNormal, st.JobsEnqueuedLow)
	}
	if done == 0 {
		t.Fatal("no jobs completed")
	}
}
