package perf

import (
	"testing"
	"time"
)

// elasticGateWindow keeps the CI gates fast; the lcwsbench report uses
// the 2s default window for tighter numbers. It must still cover the
// retire-settle wait: ElasticMax-ElasticResident surplus workers retire
// one ~100ms insurance window apiece.
const elasticGateWindow = time.Second

// TestElasticLifecycle is the elastic-pool regression gate: one walk
// per policy through demand growth, retire-on-idle, the idle-cost
// window, and regrowth, each leg gated.
func TestElasticLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("elastic gates need idle windows; skipped in -short")
	}
	if RaceEnabled {
		t.Skip("race instrumentation distorts CPU fractions and service times; the gates are meaningless under -race")
	}
	for _, pol := range elasticPolicies {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			res := MeasureElastic(pol, elasticGateWindow)
			t.Logf("%s: baseline=%v regrow=%v ratio=%.2f peak=%d grows=%d retired_idle=%d settle=%v idle_cpu_frac=%.4f",
				pol, time.Duration(res.BaselineNs), time.Duration(res.RegrowNs), res.RegrowRatio,
				res.PeakWorkers, res.BurstPoolGrows, res.WorkersRetiredIdle,
				time.Duration(res.RetireSettleNs), res.IdleCPUFrac)
			if !ElasticGrew(res) {
				t.Errorf("demand burst did not grow the pool: pool_grows=%d peak=%d", res.BurstPoolGrows, res.PeakWorkers)
			}
			if !ElasticRetired(res) {
				t.Errorf("no worker retired during the idle phase (workers_retired_idle = 0)")
			}
			if !ElasticIdleQuiet(res) {
				t.Errorf("idle pool burned %.4f of a core over the quiet window, want <= %.2f", res.IdleCPUFrac, ElasticIdleCPUFrac)
			}
			if !ElasticRegrowRestored(res) {
				t.Errorf("regrown pool at %.2fx baseline, want <= %.2fx", res.RegrowRatio, ElasticRegrowFactor)
			}
		})
	}
}
