package perf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcws"
)

// Executor-lifecycle benchmark: what does one small Run cost on the
// resident pool, versus the same Run under the spawn-per-run lifecycle
// this repository had before the persistent executor?
//
// Both measurements execute the identical small fork-join job on the
// same resident scheduler, so the scheduling work cancels out; the
// spawn-per-run side additionally pays, per Run, what the one-shot
// scheduler paid around every computation: spawning P-1 worker
// goroutines that probe for work and back off with the idle sleep
// ladder until the computation finishes, then observing the finished
// flag (possibly mid-sleep) and joining. The emulated thieves run no
// deque code, so the added cost is a lower bound on the old design's
// true per-Run overhead — which makes the speedup gate in
// execbench_test.go conservative. Both sides are measured in the same
// process minutes apart and compared on load-normalized cost, so
// machine speed cancels out of the ratio.

// Executor benchmark dimensions. Changing them invalidates comparisons
// across revisions.
const (
	// ExecDefaultRounds is the number of timed Run calls per repetition.
	ExecDefaultRounds = 400
	// ExecWorkers is the pool size the lifecycle is measured at.
	ExecWorkers = 4
	// ExecJobN and ExecJobGrain define the per-Run job: a ParFor wide
	// enough (ExecJobN/ExecJobGrain = 256 forks) that the job lasts a
	// few microseconds and the old lifecycle's thieves reach the sleep
	// ladder, as they did on real workloads.
	ExecJobN     = 8192
	ExecJobGrain = 32
)

// ExecResult is one executor-lifecycle measurement.
type ExecResult struct {
	// Bench is "exec-resident" or "exec-spawn".
	Bench string `json:"bench"`
	// Policy is the scheduling policy's figure label.
	Policy string `json:"policy"`
	// Workers is the pool size P.
	Workers int `json:"workers"`
	// NsPerRun is the best repetition's mean wall time per Run call.
	NsPerRun float64 `json:"ns_per_run"`
	// RefNsPerOp and NormPerRun mirror the fork benchmarks: the
	// calibration kernel's per-element cost bracketing the best
	// repetition, and NsPerRun divided by it (machine-relative units).
	RefNsPerOp float64 `json:"ref_ns_per_op"`
	NormPerRun float64 `json:"norm_per_run"`
	// AllocsPerRun is heap allocations per Run over the best
	// repetition's window. On the resident pool this is the job handle,
	// its done channel and its accounting shards — no goroutines, no
	// per-worker state.
	AllocsPerRun float64 `json:"allocs_per_run"`
	// Rounds and Reps record the methodology parameters.
	Rounds int `json:"rounds"`
	Reps   int `json:"reps"`
}

// measureExec times rounds calls of run, reps times, and returns the
// best (load-normalized) repetition.
func measureExec(bench, policy string, workers, rounds, reps int, run func()) ExecResult {
	if rounds <= 0 {
		rounds = ExecDefaultRounds
	}
	if reps <= 0 {
		reps = DefaultReps
	}
	res := ExecResult{
		Bench:   bench,
		Policy:  policy,
		Workers: workers,
		Rounds:  rounds,
		Reps:    reps,
	}
	var ms runtime.MemStats
	first := true
	for rep := 0; rep < reps; rep++ {
		run() // warm-up
		refBefore := quickReference()
		runtime.ReadMemStats(&ms)
		mallocs := ms.Mallocs
		start := time.Now()
		for r := 0; r < rounds; r++ {
			run()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs - mallocs
		refAfter := quickReference()
		ref := refBefore
		if refAfter < ref {
			ref = refAfter
		}
		ns := float64(elapsed.Nanoseconds()) / float64(rounds)
		norm := ns / ref
		if first || norm < res.NormPerRun {
			first = false
			res.NsPerRun = ns
			res.RefNsPerOp = ref
			res.NormPerRun = norm
			res.AllocsPerRun = float64(mallocs) / float64(rounds)
		}
	}
	return res
}

// execRoot returns the benchmark job: a ParFor of ExecJobN/ExecJobGrain
// forks with an empty body.
func execRoot() func(*lcws.Ctx) {
	return func(ctx *lcws.Ctx) { lcws.ParFor(ctx, 0, ExecJobN, ExecJobGrain, noopBody) }
}

// MeasureExecResident measures the per-Run cost of the benchmark job on
// a long-lived resident pool: workers are spawned once, park between
// Runs, and each Run is submit + wait.
func MeasureExecResident(pol lcws.Policy, workers, rounds, reps int) ExecResult {
	if workers <= 0 {
		workers = ExecWorkers
	}
	s := lcws.New(lcws.WithWorkers(workers), lcws.WithPolicy(pol))
	defer s.Close()
	s.Start()
	root := execRoot()
	return measureExec("exec-resident", pol.String(), workers, rounds, reps,
		func() { s.Run(root) })
}

// MeasureExecSpawnPerRun measures the same job under the pre-executor
// lifecycle: every Run additionally spawns P-1 thief goroutines that
// probe for work and climb the idle sleep ladder for the duration of
// the computation, observe the finished flag, and are joined — the
// goroutine churn the one-shot scheduler paid per Run.
func MeasureExecSpawnPerRun(pol lcws.Policy, workers, rounds, reps int) ExecResult {
	if workers <= 0 {
		workers = ExecWorkers
	}
	s := lcws.New(lcws.WithWorkers(workers), lcws.WithPolicy(pol))
	defer s.Close()
	s.Start()
	root := execRoot()
	run := func() {
		var finished atomic.Bool
		var wg sync.WaitGroup
		for i := 1; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sleep := time.Microsecond
				for {
					for v := 0; v < workers; v++ { // one probe round
						if finished.Load() {
							return
						}
					}
					time.Sleep(sleep)
					if sleep < 32*time.Microsecond {
						sleep *= 2
					}
				}
			}()
		}
		s.Run(root)
		finished.Store(true)
		wg.Wait()
	}
	return measureExec("exec-spawn", pol.String(), workers, rounds, reps, run)
}

// ExecReport is the machine-readable document written to
// BENCH_exec.json by cmd/lcwsbench -execbench.
type ExecReport struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Resident and SpawnPerRun hold one measurement per policy each;
	// entries at the same index compare directly (same policy, same
	// job, same pool size).
	Resident    []ExecResult `json:"resident"`
	SpawnPerRun []ExecResult `json:"spawn_per_run"`
}

// NewExecReport measures the executor lifecycle for every policy.
func NewExecReport(rounds, reps int) ExecReport {
	rep := ExecReport{
		Schema:     "lcws-execbench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, pol := range lcws.Policies {
		rep.Resident = append(rep.Resident, MeasureExecResident(pol, ExecWorkers, rounds, reps))
		rep.SpawnPerRun = append(rep.SpawnPerRun, MeasureExecSpawnPerRun(pol, ExecWorkers, rounds, reps))
	}
	return rep
}
