//go:build !unix

package perf

// processCPUNs reports -1: no rusage on this platform, so the elastic
// idle-cost gate passes trivially.
func processCPUNs() int64 { return -1 }
