package perf

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcws"
)

// QoS benchmark: does the weighted-fair injector deliver the shares it
// promises, and does checkpoint preemption keep High-priority pickup
// latency bounded under a saturating Low-priority flood?
//
// Two scenarios, both on a deliberately small pool so the injector —
// not raw capacity — decides who runs:
//
//  1. Fairness. A deep identical-cost backlog is stacked per class
//     (High, Normal, Low) while the workers sit parked on gate jobs,
//     over a pool configured with 4:2:1 class weights; the gate is
//     then released and the classes' counts over a bounded prefix of
//     completions measure the injector's pickup shares directly. The
//     prefix is sized so no class can drain before it ends: every
//     measured pickup chose among all three classes, making the
//     shares a property of the stride order alone. (A closed-loop
//     tenant population cannot measure this on a small host — tenant
//     resubmission latency lets the preferentially-served class run
//     dry, and the skipped turns flow downhill and flatten the
//     observed shares even though every pickup honoured the weights.)
//     The gate requires each class's share within QoSFairSkew of its
//     weight share.
//
//  2. Starvation. QoSStarveTenants closed-loop Low tenants saturate
//     the pool while a single sequential High tenant trickles jobs in.
//     The gate bounds the High class's p99 queue-to-pickup latency
//     (Scheduler.InjectorWait) relative to the measured Low service
//     time: FIFO pickup would make the High job wait behind the whole
//     Low backlog (~QoSStarveTenants/P service times), while
//     weighted-fair pickup plus the Poll-checkpoint yield gets it onto
//     a worker in at most about one checkpoint interval. A same-shape
//     control run with every tenant in the Normal class shows the
//     backlog latency the QoS machinery removes.

// QoS benchmark dimensions. Changing them invalidates comparisons
// across revisions.
const (
	// QoSWorkers is the pool size; demand always exceeds it.
	QoSWorkers = 2
	// QoSFairBacklogPerMs sizes the fairness scenario's per-class
	// backlog: one job per millisecond of requested window, floored at
	// QoSFairMinBacklog.
	QoSFairBacklogPerMs = 1
	QoSFairMinBacklog   = 64
	// QoSJobIters is the per-job spin length (each iteration calls
	// Poll, so jobs are preemptible at the default checkpoint cadence).
	QoSJobIters = 20_000
	// QoSStarveTenants is the Low-class flood's multiprogramming level.
	QoSStarveTenants = 16
	// QoSStarveLowIters makes flood jobs several times longer than the
	// fairness jobs, so backlog wait (the thing FIFO would impose)
	// dwarfs per-job overheads.
	QoSStarveLowIters = 100_000
	// QoSFairSkew is the fairness gate: each class's completion share
	// must lie within this factor of its configured weight share.
	QoSFairSkew = 1.3
	// QoSStarveFactor and QoSStarveSlackNs bound the High class's p99
	// pickup wait in the starvation scenario: p99 <= Factor * measured
	// mean Low service time + Slack. The Low backlog is
	// QoSStarveTenants deep, so FIFO pickup (wait ~ Tenants/P service
	// times ~ 8x) fails this bound by a wide margin, while the
	// checkpoint yield passes it even on a noisy CI host.
	QoSStarveFactor  = 2.0
	QoSStarveSlackNs = 5_000_000
)

// qosClasses lists the classes in weight order, with the 4:2:1 weight
// configuration the fairness scenario runs under.
var (
	qosClasses     = []lcws.JobClass{lcws.High, lcws.Normal, lcws.Low}
	qosFairWeights = [lcws.NumJobClasses]int{4, 2, 1}
)

// qosSink defeats dead-code elimination of the spin kernel.
var qosSink atomic.Uint64

// qosSpin is the fixed-cost, checkpoint-preemptible job body.
func qosSpin(ctx *lcws.Ctx, iters int) {
	x := uint64(1)
	for i := 0; i < iters; i++ {
		x = x*2862933555777941757 + 3037000493
		ctx.Poll()
	}
	qosSink.Store(x)
}

// QoSClassStat is one class's accounting over a measurement window.
type QoSClassStat struct {
	Class string `json:"class"`
	// Weight is the class's configured share weight.
	Weight int `json:"weight"`
	// Completed counts jobs of the class completed within the window;
	// Share is its fraction of all completions, IdealShare the
	// weight-proportional target.
	Completed  int     `json:"completed"`
	Share      float64 `json:"share"`
	IdealShare float64 `json:"ideal_share"`
	// WaitMeanNs and WaitP99Ns summarize the class's queue-to-pickup
	// latency histogram.
	WaitMeanNs float64 `json:"wait_mean_ns"`
	WaitP99Ns  uint64  `json:"wait_p99_ns"`
}

// QoSFairnessResult is the fairness scenario's measurement.
type QoSFairnessResult struct {
	Bench   string `json:"bench"`
	Policy  string `json:"policy"`
	Workers int    `json:"workers"`
	// Backlog is the per-class job count stacked behind the gate;
	// Prefix is how many completions the shares were measured over
	// (sized so the heaviest class cannot drain inside it).
	Backlog  int            `json:"backlog_per_class"`
	Prefix   int            `json:"measured_prefix"`
	WindowNs int64          `json:"window_ns"`
	Classes  []QoSClassStat `json:"classes"`
	// MaxSkew is the worst ratio between a class's actual and ideal
	// share (always >= 1); the gate compares it to QoSFairSkew.
	MaxSkew float64 `json:"max_skew"`
	// JobYields counts checkpoint pickups over the run.
	JobYields uint64 `json:"job_yields"`
}

// QoSStarvationResult is one flood-plus-trickle measurement.
type QoSStarvationResult struct {
	Bench    string `json:"bench"`
	Policy   string `json:"policy"`
	Workers  int    `json:"workers"`
	Tenants  int    `json:"flood_tenants"`
	WindowNs int64  `json:"window_ns"`
	// Classed records whether the trickle ran as High against a Low
	// flood (the QoS path) or everything ran Normal (the FIFO-shaped
	// control).
	Classed bool `json:"classed"`
	// FloodCompleted and TrickleCompleted count jobs per role.
	FloodCompleted   int `json:"flood_completed"`
	TrickleCompleted int `json:"trickle_completed"`
	// FloodServiceMeanNs is the measured mean flood-job service time —
	// the unit the trickle's wait bound is expressed in.
	FloodServiceMeanNs float64 `json:"flood_service_mean_ns"`
	// TrickleWaitMeanNs/P99Ns summarize the trickle class's
	// queue-to-pickup latency; BoundNs is the gate's derived bound
	// (meaningful only on the classed run).
	TrickleWaitMeanNs float64 `json:"trickle_wait_mean_ns"`
	TrickleWaitP99Ns  uint64  `json:"trickle_wait_p99_ns"`
	BoundNs           uint64  `json:"bound_ns,omitempty"`
	JobYields         uint64  `json:"job_yields"`
}

// qosHist picks class c's wait histogram out of st.
func qosHist(st lcws.Stats, c lcws.JobClass) lcws.Histogram {
	switch c {
	case lcws.High:
		return st.InjectorWaitHigh
	case lcws.Normal:
		return st.InjectorWaitNormal
	default:
		return st.InjectorWaitLow
	}
}

// MeasureQoSFairness measures the injector's weighted pickup shares
// under sustained contention. With the workers parked on gate jobs it
// stacks a deep identical-cost backlog per class (sized from window),
// releases the gate, and attributes the first Prefix completions to
// their classes. Checkpoint yields run nested jobs through the same
// counters, so the shares account for preemptive pickups too.
func MeasureQoSFairness(pol lcws.Policy, window time.Duration) QoSFairnessResult {
	backlog := int(window/time.Millisecond) * QoSFairBacklogPerMs
	if backlog < QoSFairMinBacklog {
		backlog = QoSFairMinBacklog
	}
	weightSum, maxWeight := 0, 0
	for _, c := range qosClasses {
		weightSum += qosFairWeights[c]
		if qosFairWeights[c] > maxWeight {
			maxWeight = qosFairWeights[c]
		}
	}
	// The heaviest class drains first, after about backlog*weightSum/
	// maxWeight total pickups; stop counting a few jobs shy of that so
	// every measured pickup chose among all three classes.
	prefix := (backlog - 4) * weightSum / maxWeight

	opts := []lcws.Option{lcws.WithWorkers(QoSWorkers), lcws.WithPolicy(pol)}
	for _, c := range qosClasses {
		opts = append(opts, lcws.WithClassWeight(c, qosFairWeights[c]))
	}
	s := lcws.New(opts...)
	defer s.Close()
	s.Start()

	// Park every worker on a gate job so the backlog stacks up with no
	// consumption racing the submission loop; ready confirms each gate
	// is actually occupying its worker before we start stacking.
	gate := make(chan struct{})
	ready := make(chan struct{}, QoSWorkers)
	gates := make([]*lcws.Job, 0, QoSWorkers)
	for i := 0; i < QoSWorkers; i++ {
		gates = append(gates, s.Submit(func(ctx *lcws.Ctx) {
			ready <- struct{}{}
			<-gate
		}, lcws.WithJobPriority(lcws.High)))
	}
	for i := 0; i < QoSWorkers; i++ {
		<-ready
	}

	var total atomic.Int64
	var counted [lcws.NumJobClasses]atomic.Int64
	jobs := make([]*lcws.Job, 0, 3*backlog)
	for i := 0; i < backlog; i++ {
		for _, c := range qosClasses {
			c := c
			jobs = append(jobs, s.Submit(func(ctx *lcws.Ctx) {
				qosSpin(ctx, QoSJobIters)
				if total.Add(1) <= int64(prefix) {
					counted[c].Add(1)
				}
			}, lcws.WithJobPriority(c)))
		}
	}
	close(gate)
	for _, j := range gates {
		j.Wait()
	}
	for _, j := range jobs {
		j.Wait()
	}

	st := s.Stats()
	res := QoSFairnessResult{
		Bench:     "qos-fairness",
		Policy:    pol.String(),
		Workers:   QoSWorkers,
		Backlog:   backlog,
		Prefix:    prefix,
		WindowNs:  window.Nanoseconds(),
		JobYields: st.JobYields,
		MaxSkew:   1,
	}
	for _, c := range qosClasses {
		n := int(counted[c].Load())
		h := qosHist(st, c)
		cs := QoSClassStat{
			Class:      c.String(),
			Weight:     qosFairWeights[c],
			Completed:  n,
			IdealShare: float64(qosFairWeights[c]) / float64(weightSum),
			WaitMeanNs: h.Mean(),
			WaitP99Ns:  h.Quantile(0.99),
		}
		if prefix > 0 {
			cs.Share = float64(n) / float64(prefix)
		}
		if cs.Share > 0 && cs.IdealShare > 0 {
			skew := cs.Share / cs.IdealShare
			if skew < 1 {
				skew = 1 / skew
			}
			if skew > res.MaxSkew {
				res.MaxSkew = skew
			}
		} else {
			res.MaxSkew = 1e9 // a silent class is maximally unfair
		}
		res.Classes = append(res.Classes, cs)
	}
	return res
}

// MeasureQoSStarvation runs the Low-flood / High-trickle scenario
// (classed == true) or its all-Normal control (classed == false).
func MeasureQoSStarvation(pol lcws.Policy, window time.Duration, classed bool) QoSStarvationResult {
	s := lcws.New(lcws.WithWorkers(QoSWorkers), lcws.WithPolicy(pol))
	defer s.Close()
	s.Start()

	floodClass, trickleClass := lcws.Normal, lcws.Normal
	if classed {
		floodClass, trickleClass = lcws.Low, lcws.High
	}

	var floodDone, trickleDone atomic.Int64
	var floodServiceNs atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for t := 0; t < QoSStarveTenants; t++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				j := s.Submit(func(ctx *lcws.Ctx) { qosSpin(ctx, QoSStarveLowIters) },
					lcws.WithJobPriority(floodClass))
				if j.Wait() == nil {
					floodServiceNs.Add(j.Stats().Duration.Nanoseconds())
					floodDone.Add(1)
				}
			}
		}()
	}
	// The trickle: one sequential submitter, at most one job in flight,
	// so its demand is far below its weight share and every pickup
	// latency it sees is pure queueing, not its own backlog.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			s.Run(func(ctx *lcws.Ctx) { qosSpin(ctx, QoSJobIters) },
				lcws.WithJobPriority(trickleClass))
			trickleDone.Add(1)
		}
	}()
	wg.Wait()

	st := s.Stats()
	res := QoSStarvationResult{
		Bench:            "qos-starvation",
		Policy:           pol.String(),
		Workers:          QoSWorkers,
		Tenants:          QoSStarveTenants,
		WindowNs:         window.Nanoseconds(),
		Classed:          classed,
		FloodCompleted:   int(floodDone.Load()),
		TrickleCompleted: int(trickleDone.Load()),
		JobYields:        st.JobYields,
	}
	if n := floodDone.Load(); n > 0 {
		res.FloodServiceMeanNs = float64(floodServiceNs.Load()) / float64(n)
	}
	// On the control run flood and trickle share one class, so the
	// trickle's waits are buried in the class histogram; report it
	// anyway — the flood dominates it, which is exactly the point.
	h := qosHist(st, trickleClass)
	res.TrickleWaitMeanNs = h.Mean()
	res.TrickleWaitP99Ns = h.Quantile(0.99)
	if classed {
		res.BoundNs = QoSStarveBound(res.FloodServiceMeanNs)
	}
	return res
}

// QoSStarveBound derives the starvation gate's p99 pickup-wait bound
// from the measured mean flood service time.
func QoSStarveBound(floodServiceMeanNs float64) uint64 {
	return uint64(QoSStarveFactor*floodServiceMeanNs) + QoSStarveSlackNs
}

// QoSFair reports whether a fairness measurement passes the skew gate.
func QoSFair(res QoSFairnessResult) bool { return res.MaxSkew <= QoSFairSkew }

// QoSReport is the machine-readable document written to BENCH_qos.json
// by cmd/lcwsbench -qosbench.
type QoSReport struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Fairness holds the weighted-share scenario per measured policy;
	// Starvation the classed flood-plus-trickle runs; Control the
	// all-Normal baseline showing the backlog latency QoS removes.
	Fairness   []QoSFairnessResult   `json:"fairness"`
	Starvation []QoSStarvationResult `json:"starvation"`
	Control    []QoSStarvationResult `json:"control"`
}

// qosPolicies are the policies the QoS benchmarks measure: one per
// deque implementation, as in the memory benchmarks.
var qosPolicies = []lcws.Policy{lcws.WS, lcws.SignalLCWS}

// NewQoSReport measures fairness, starvation and the control for WS
// and Signal. Defaults apply when window is non-positive.
func NewQoSReport(window time.Duration) QoSReport {
	if window <= 0 {
		window = time.Second
	}
	rep := QoSReport{
		Schema:     "lcws-qosbench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, pol := range qosPolicies {
		rep.Fairness = append(rep.Fairness, MeasureQoSFairness(pol, window))
		rep.Starvation = append(rep.Starvation, MeasureQoSStarvation(pol, window, true))
		rep.Control = append(rep.Control, MeasureQoSStarvation(pol, window, false))
	}
	return rep
}
