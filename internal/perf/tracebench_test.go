package perf

import (
	"testing"
)

// traceOverheadResult memoizes the (expensive) overhead measurement so
// the two gates below share one run.
var traceOverheadResult *TraceOverhead

func traceOverhead(t *testing.T) TraceOverhead {
	t.Helper()
	if traceOverheadResult != nil {
		return *traceOverheadResult
	}
	r := MeasureTraceOverhead(50, 5)
	if r.UntracedNorm == 0 || r.TracedNorm == 0 {
		t.Fatal("trace-overhead measurement produced no forks")
	}
	traceOverheadResult = &r
	return r
}

// TestTraceOverheadGate bounds the enabled-tracing slowdown of the fork
// path: with the flight recorder on, the load-normalized cost per split
// of the grain-512 ParFor sum must stay within TraceOverheadGate of the
// untraced cost. (The disabled-tracing cost is gated separately — and
// at zero — by the existing forkbench baselines, which run untraced.)
func TestTraceOverheadGate(t *testing.T) {
	if RaceEnabled {
		t.Skip("timing gate is meaningless under the race detector")
	}
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	r := traceOverhead(t)
	t.Logf("traced/untraced norm ratio = %.3f (%.1f → %.1f ns/fork raw)",
		r.Ratio, r.NsPerForkUntraced, r.NsPerForkTraced)
	if r.Ratio > TraceOverheadGate {
		t.Errorf("enabled tracing slows pfor-sum forks by %.1f%%, gate is %.0f%%",
			(r.Ratio-1)*100, (TraceOverheadGate-1)*100)
	}
}

// TestTraceZeroAllocsPerEvent gates the recorder's allocation contract:
// recording an event into the owner-write ring must not allocate. The
// small budget absorbs the per-Run pprof-label setup amortized over the
// thousands of events each spawn-tree Run records.
func TestTraceZeroAllocsPerEvent(t *testing.T) {
	if RaceEnabled {
		t.Skip("allocation counts are distorted by the race detector")
	}
	if testing.Short() {
		t.Skip("measurement skipped in -short mode")
	}
	r := traceOverhead(t)
	if r.EventsPerRound == 0 {
		t.Fatal("traced spawn tree recorded no events")
	}
	t.Logf("%.0f events/round, %.4f allocs/event", r.EventsPerRound, r.AllocsPerEvent)
	if r.AllocsPerEvent > TraceAllocGate {
		t.Errorf("recording allocates: %.4f allocs/event, gate is %.2f",
			r.AllocsPerEvent, TraceAllocGate)
	}
}
