package perf

// Steal-side latency benchmark: the bursty ping-pong harness behind the
// BENCH_steal.json regression gate.
//
// The quantity under test is time-to-first-steal: how long a freshly
// published task waits before an idle worker picks it up. The default
// scheduler's idle workers descend a blind backoff ladder (spins, then
// yields, then capped sleeps of up to idleSleepMax), so a task published
// into a quiesced pool waits, on average, half a sleep quantum. The
// StealBatch mode replaces the ladder's sleeping tail with an
// event-driven parking lot: idle workers park on per-worker semaphores
// and work-producing operations wake exactly one of them, making
// post-publication latency a semaphore wake instead of a timer expiry.
//
// The harness alternates quiesce periods — long enough for the idle
// worker to reach the ladder's deepest rung (or to park) — with
// two-sided ping-pong bursts: the root worker forks a pair whose left
// branch spins until the right branch runs, forcing the right branch to
// be stolen; the time from just before the fork to the right branch's
// first instruction is one burst's latency. Mean-over-bursts is the
// repetition's estimate and the best (minimum) repetition is reported,
// mirroring the forkbench methodology (see package comment) — both
// modes are measured back-to-back in the same process, so the gate's
// batch-vs-baseline ratio cancels machine speed.
//
// Allocations are measured over the burst window (warm-up bursts
// excluded) via runtime.MemStats.Mallocs: the steal path — batched claim,
// remnant redistribution into the thief's deque, park/wake round trips —
// must not allocate in steady state.

import (
	"runtime"
	"sync/atomic"
	"time"

	"lcws"
	"lcws/internal/counters"
	"lcws/internal/deque"
)

// Steal-benchmark dimensions; like the forkbench constants they are part
// of the measurement definition.
const (
	// StealQuiesce is the idle period before each burst: comfortably
	// longer than the backoff ladder's full descent (8 spins + 256
	// yields + ~1.3ms of doubling sleeps), so the idle worker is in a
	// deepest-rung sleep (or parked) when the burst arrives.
	StealQuiesce = 3 * time.Millisecond
	// StealWarmupBursts run before the timed window of each repetition:
	// they warm freelists, the parking-lot timer, and code paths.
	StealWarmupBursts = 8
	// DefaultStealBursts is the number of timed bursts per repetition.
	DefaultStealBursts = 64
	// DefaultStealReps is the number of repetitions the minimum is taken
	// over.
	DefaultStealReps = 3
)

// StealLatencySpeedupGate is the minimum improvement in mean
// time-to-first-steal the batch+parking mode must show over the
// sleep-ladder baseline on the WS ping-pong (the acceptance gate of
// stealbench_test.go).
const StealLatencySpeedupGate = 2.0

// StealModeResult is one policy × idle-mode measurement.
type StealModeResult struct {
	// Policy is the scheduling policy's figure label.
	Policy string `json:"policy"`
	// Mode is "sleep-ladder" (default scheduler) or "batch-park"
	// (Options.StealBatch).
	Mode string `json:"mode"`
	// NsFirstSteal is the best repetition's mean nanoseconds from task
	// publication (just before the fork) to the stolen branch's first
	// instruction.
	NsFirstSteal float64 `json:"ns_first_steal"`
	// AllocsPerBurst is heap allocations per burst over the best
	// repetition's timed window (0 in steady state: the steal, park and
	// wake paths must not allocate).
	AllocsPerBurst float64 `json:"allocs_per_burst"`
	// Bursts and Reps record the methodology parameters.
	Bursts int `json:"bursts"`
	Reps   int `json:"reps"`
	// Scheduler counters accumulated over all repetitions
	// (informational): they prove which mechanism served the bursts.
	Steals          uint64 `json:"steals"`
	StealBatchTasks uint64 `json:"steal_batch_tasks"`
	WakeupsSent     uint64 `json:"wakeups_sent"`
	ParkCount       uint64 `json:"park_count"`
	SignalsSent     uint64 `json:"signals_sent"`
}

// Key returns the result-map key "<policy>/<mode>".
func (r StealModeResult) Key() string { return r.Policy + "/" + r.Mode }

// pingPong is the reusable burst state: one allocation per measurement,
// so the burst loop itself stays allocation-free. lat is written by the
// thief before its done.Store(true) release and read by the owner only
// after observing done, which orders the plain access.
type pingPong struct {
	t0   time.Time
	lat  int64
	done atomic.Bool
}

// quiesceSpin busy-waits for d, yielding each iteration so the idle
// worker being measured gets the CPU it needs to descend its ladder.
func quiesceSpin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
		runtime.Gosched()
	}
}

// MeasureStealLatency runs the bursty ping-pong on a two-worker
// scheduler with the given policy, with the parking lot (batch=true) or
// the default sleep ladder. Zero bursts/reps select the defaults.
func MeasureStealLatency(pol lcws.Policy, batch bool, bursts, reps int) StealModeResult {
	if bursts <= 0 {
		bursts = DefaultStealBursts
	}
	if reps <= 0 {
		reps = DefaultStealReps
	}
	mode := "sleep-ladder"
	opts := []lcws.Option{lcws.WithWorkers(2), lcws.WithPolicy(pol), lcws.WithSeed(1)}
	if batch {
		mode = "batch-park"
		opts = append(opts, lcws.WithStealBatch(true))
	}
	s := lcws.New(opts...)
	res := StealModeResult{Policy: pol.String(), Mode: mode, Bursts: bursts, Reps: reps}

	var pp pingPong
	// left spins until right has run, forcing right to be stolen; Poll
	// makes it a valid signal-delivery point so the exposure handler can
	// publish right under the signal-based policies, and the yield keeps
	// the thief runnable on oversubscribed hosts.
	left := func(ctx *lcws.Ctx) {
		for !pp.done.Load() {
			ctx.Poll()
			runtime.Gosched()
		}
	}
	right := func(*lcws.Ctx) {
		pp.lat = time.Since(pp.t0).Nanoseconds()
		pp.done.Store(true)
	}
	var sumNs float64
	var mallocs uint64
	root := func(ctx *lcws.Ctx) {
		var ms runtime.MemStats
		sumNs = 0
		for b := 0; b < StealWarmupBursts+bursts; b++ {
			if b == StealWarmupBursts {
				runtime.ReadMemStats(&ms)
				mallocs = ms.Mallocs
			}
			quiesceSpin(StealQuiesce)
			pp.done.Store(false)
			pp.t0 = time.Now()
			lcws.Fork2(ctx, left, right)
			if b >= StealWarmupBursts {
				sumNs += float64(pp.lat)
			}
		}
		runtime.ReadMemStats(&ms)
		mallocs = ms.Mallocs - mallocs
	}
	first := true
	for rep := 0; rep < reps; rep++ {
		s.Run(root)
		mean := sumNs / float64(bursts)
		if first || mean < res.NsFirstSteal {
			first = false
			res.NsFirstSteal = mean
			res.AllocsPerBurst = float64(mallocs) / float64(bursts)
		}
	}
	st := s.Stats()
	res.Steals = st.StealSuccesses
	res.StealBatchTasks = st.StealBatchTasks
	res.WakeupsSent = st.WakeupsSent
	res.ParkCount = st.ParkCount
	res.SignalsSent = st.SignalsSent
	return res
}

// ---- Relaxed (MultFree) steal-path operation cost ----
//
// The second steal-side quantity under test is the cost of the steal
// path itself: what a thief pays per claimed task when draining a
// fine-grained ParFor's range-task burst. The harness is a burst-drain
// ping-pong over one relaxed split deque: the owner publishes a burst,
// the thief drains it through one of the four steal operations, the
// owner reclaims (UnexposeAll, the MultFree owner discipline) and
// republishes; only the drain loop is timed. All paths run back-to-back
// in the same process over the same deque, so the gate ratio cancels
// machine speed, and a single-threaded drive keeps the measurement
// reproducible on one-CPU CI hosts where the latency gates above must
// skip.
//
// The four measured cells:
//
//	cas            PopTop             SignalLCWS's per-task exclusive claim
//	cas-batch      PopTopHalf         the WithStealBatch compose of the same
//	relaxed        TakeTopRelaxed     MultFree's single relaxed claim
//	relaxed-batch  TakeTopHalfRelaxed MultFree's WithStealBatch compose
//
// The gate compares each policy's fine-grained ParFor steal
// configuration: MultFree composed with the steal batch (relaxed-batch,
// the configuration the policy ships for throughput work — one plain
// cursor store claims up to stealBatchSize tasks with no CAS validation
// window) against SignalLCWS's standard exclusive claim (cas). The
// single-claim cells are reported alongside for transparency: in Go on
// x86 an atomic store compiles to XCHG — itself a full barrier costing
// nearly a CAS — so the single relaxed claim is time-parity with the
// exclusive one (the C++ counting model's fence/CAS elimination, which
// the counters here do show, does not translate to single-op wall time
// in Go). The family's wall-time win is the abort-free batch
// amortization the relaxed cursor makes safe; its contention win (no
// CAS retries) needs real parallelism and shows in the counting model
// instead.

// Relaxed steal-op benchmark dimensions.
const (
	// DefaultStealOpRounds is the number of publish/drain rounds per
	// repetition.
	DefaultStealOpRounds = 128
	// DefaultStealOpBurst is the number of tasks per published burst.
	DefaultStealOpBurst = 256
	// DefaultStealOpReps is the number of repetitions the minimum is
	// taken over.
	DefaultStealOpReps = 5
	// StealOpBatch is the batch-cell claim cap, matching the core
	// scheduler's stealBatchSize.
	StealOpBatch = 8
)

// RelaxedStealSpeedupGate is the minimum per-steal speedup MultFree's
// ParFor steal path (the batched relaxed claim) must show over
// SignalLCWS's (the exclusive claim) on the burst-drain harness — the
// acceptance gate of stealbench_test.go and of CI's bench-smoke job.
const RelaxedStealSpeedupGate = 1.15

// StealOpResult is one steal-path measurement of the burst-drain
// harness.
type StealOpResult struct {
	// Path is "cas", "cas-batch", "relaxed" or "relaxed-batch" (see the
	// cell table above).
	Path string `json:"path"`
	// NsPerSteal is the best repetition's mean nanoseconds per claimed
	// task over the drain loops.
	NsPerSteal float64 `json:"ns_per_steal"`
	// Steals is the number of tasks claimed per repetition.
	Steals uint64 `json:"steals"`
	// Ops is the number of steal operations the drain needed per
	// repetition (Steals/Ops is the realized batch amortization).
	Ops uint64 `json:"ops"`
	// CAS, Fences and RelaxedSteals are the thief's counters accumulated
	// over all repetitions: they prove which synchronization the drain
	// actually paid (the relaxed cells must show zero CAS and fences).
	CAS           uint64 `json:"cas"`
	Fences        uint64 `json:"fences"`
	RelaxedSteals uint64 `json:"relaxed_steals"`
	// Rounds, Burst and Reps record the methodology parameters.
	Rounds int `json:"rounds"`
	Burst  int `json:"burst"`
	Reps   int `json:"reps"`
}

// MeasureStealOpCost runs the burst-drain harness over one steal path:
// relaxed selects the MultFree claim, batch > 1 selects the batched
// (WithStealBatch) compose with that claim cap. Zero rounds/burst/reps
// select the defaults.
func MeasureStealOpCost(relaxed bool, batch, rounds, burst, reps int) StealOpResult {
	if rounds <= 0 {
		rounds = DefaultStealOpRounds
	}
	if burst <= 0 {
		burst = DefaultStealOpBurst
	}
	if reps <= 0 {
		reps = DefaultStealOpReps
	}
	path := "cas"
	if relaxed {
		path = "relaxed"
	}
	if batch > 1 {
		path += "-batch"
	}
	res := StealOpResult{Path: path, Rounds: rounds, Burst: burst, Reps: reps}

	// The element carries its own push stamp, mirroring core.Task: the
	// relaxed claim paths re-validate every slot read against it.
	type stealOpTask struct {
		stamp atomic.Uint64
	}
	d := deque.NewSplitRelaxed[stealOpTask](1024, 1<<20, true)
	payload := make([]stealOpTask, burst)
	var buf []*stealOpTask
	if batch > 1 {
		buf = make([]*stealOpTask, batch)
	}
	var ownerC, thiefC counters.Worker
	var cl deque.RelClaim
	idem := func(*stealOpTask) bool { return true }
	stampOf := func(t *stealOpTask) uint64 { return t.stamp.Load() }
	var sink *stealOpTask
	first := true
	for rep := 0; rep < reps; rep++ {
		var elapsed time.Duration
		var steals, ops uint64
		for r := 0; r < rounds; r++ {
			for i := range payload {
				payload[i].stamp.Store(d.PushStamp())
				d.PushBottom(&payload[i], &ownerC)
			}
			for d.PrivateSize() > 0 {
				d.Expose(deque.ExposeHalf, &ownerC)
			}
			start := time.Now()
			switch {
			case relaxed && batch > 1:
				for {
					n, sr := d.TakeTopHalfRelaxed(buf, &cl, idem, stampOf, &thiefC)
					if sr != deque.Stolen {
						break
					}
					sink = buf[n-1]
					steals += uint64(n)
					ops++
				}
			case relaxed:
				for {
					t, sr := d.TakeTopRelaxed(&cl, idem, stampOf, &thiefC)
					if sr != deque.Stolen {
						break
					}
					sink = t
					steals++
					ops++
				}
			case batch > 1:
				for {
					n, sr := d.PopTopHalf(buf, &thiefC)
					if sr != deque.Stolen {
						break
					}
					sink = buf[n-1]
					steals += uint64(n)
					ops++
				}
			default:
				for {
					t, sr := d.PopTop(&thiefC)
					if sr != deque.Stolen {
						break
					}
					sink = t
					steals++
					ops++
				}
			}
			elapsed += time.Since(start)
			d.UnexposeAll(&ownerC)
		}
		ns := float64(elapsed.Nanoseconds()) / float64(steals)
		if first || ns < res.NsPerSteal {
			first = false
			res.NsPerSteal = ns
			res.Steals = steals
			res.Ops = ops
		}
	}
	_ = sink
	res.CAS = thiefC.Get(counters.CAS)
	res.Fences = thiefC.Get(counters.Fence)
	res.RelaxedSteals = thiefC.Get(counters.RelaxedSteal)
	return res
}

// RelaxedRunResult is a scheduler-level MultFree run of a fine-grained
// ParFor, recording the relaxed-steal traffic and the duplicate
// executions the generation-stamp arbitration absorbed. The duplicate
// rate is bounded by the model-checked multiplicity bound: each relaxed
// steal window can hand at most one extra copy per thief to the
// arbitration, so duplicates never exceed thieves x relaxed steals.
type RelaxedRunResult struct {
	// Workers is the scheduler size; Thieves = Workers-1.
	Workers int `json:"workers"`
	// Elements and Rounds size the ParFor workload (grain 1).
	Elements int `json:"elements"`
	Rounds   int `json:"rounds"`
	// RelaxedSteals and TasksDuplicated are the run's scheduler stats.
	RelaxedSteals   uint64 `json:"relaxed_steals"`
	TasksDuplicated uint64 `json:"tasks_duplicated"`
	// DuplicateRate is TasksDuplicated per relaxed steal (0 when no
	// relaxed steal happened); the gate bound is Workers-1.
	DuplicateRate float64 `json:"duplicate_rate"`
	// SumOK reports that every ParFor element was executed exactly once
	// per round despite the duplicated claims (the claimed-sum check).
	SumOK bool `json:"sum_ok"`
}

// MeasureRelaxedDuplicateRate runs rounds of a grain-1 ParFor over elems
// elements under MultFree and returns the run's relaxed-steal and
// duplicate accounting. Zero workers/elems/rounds select 2 workers,
// 1<<15 elements, 4 rounds.
func MeasureRelaxedDuplicateRate(workers, elems, rounds int) RelaxedRunResult {
	if workers <= 0 {
		workers = 2
	}
	if elems <= 0 {
		elems = 1 << 15
	}
	if rounds <= 0 {
		rounds = 4
	}
	s := lcws.New(lcws.WithWorkers(workers), lcws.WithPolicy(lcws.MultFree), lcws.WithSeed(1))
	var sum atomic.Int64
	s.Run(func(ctx *lcws.Ctx) {
		for r := 0; r < rounds; r++ {
			lcws.ParFor(ctx, 0, elems, 1, func(_ *lcws.Ctx, i int) {
				sum.Add(int64(i))
			})
		}
	})
	st := s.Stats()
	res := RelaxedRunResult{
		Workers:         workers,
		Elements:        elems,
		Rounds:          rounds,
		RelaxedSteals:   st.RelaxedSteals,
		TasksDuplicated: st.TasksDuplicated,
		SumOK:           sum.Load() == int64(rounds)*int64(elems)*int64(elems-1)/2,
	}
	if res.RelaxedSteals > 0 {
		res.DuplicateRate = float64(res.TasksDuplicated) / float64(res.RelaxedSteals)
	}
	return res
}

// StealReport is the machine-readable document written to
// BENCH_steal.json.
type StealReport struct {
	// Schema identifies the document layout.
	Schema string `json:"schema"`
	// GoVersion and GOMAXPROCS describe the measuring environment.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// QuiesceNs is the idle period before each burst.
	QuiesceNs int64 `json:"quiesce_ns"`
	// SpeedupFirstSteal is the WS sleep-ladder mean latency over the WS
	// batch-park mean latency — the ratio the regression gate compares
	// against StealLatencySpeedupGate.
	SpeedupFirstSteal float64 `json:"speedup_first_steal"`
	// SpeedupRelaxedSteal is the CAS path's per-steal cost over the
	// relaxed path's on the burst-drain harness — the ratio the
	// regression gate compares against RelaxedStealSpeedupGate.
	SpeedupRelaxedSteal float64 `json:"speedup_relaxed_steal"`
	// Results holds every policy × mode measurement.
	Results []StealModeResult `json:"results"`
	// StealOps holds the per-path steal-operation cost measurements.
	StealOps []StealOpResult `json:"steal_ops"`
	// RelaxedRun is the scheduler-level MultFree duplicate accounting.
	RelaxedRun RelaxedRunResult `json:"relaxed_run"`
}

// NewStealReport measures the ping-pong for the WS, SignalLCWS and
// MultFree policies in both idle modes, the steal-operation cost of the
// CAS and relaxed claim paths, and the scheduler-level MultFree
// duplicate accounting. WS isolates the parking-lot effect (no exposure
// step); SignalLCWS measures the full post-exposure path (notify,
// handler, expose, wake); MultFree adds the relaxed claim on top of the
// same signal protocol.
func NewStealReport(bursts, reps int) StealReport {
	rep := StealReport{
		Schema:     "lcws-stealbench/v1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		QuiesceNs:  StealQuiesce.Nanoseconds(),
	}
	var wsLadder, wsPark float64
	for _, pol := range []lcws.Policy{lcws.WS, lcws.SignalLCWS, lcws.MultFree} {
		for _, batch := range []bool{false, true} {
			r := MeasureStealLatency(pol, batch, bursts, reps)
			if pol == lcws.WS {
				if batch {
					wsPark = r.NsFirstSteal
				} else {
					wsLadder = r.NsFirstSteal
				}
			}
			rep.Results = append(rep.Results, r)
		}
	}
	if wsPark > 0 {
		rep.SpeedupFirstSteal = wsLadder / wsPark
	}
	cas := MeasureStealOpCost(false, 0, 0, 0, 0)
	casBatch := MeasureStealOpCost(false, StealOpBatch, 0, 0, 0)
	rel := MeasureStealOpCost(true, 0, 0, 0, 0)
	relBatch := MeasureStealOpCost(true, StealOpBatch, 0, 0, 0)
	rep.StealOps = []StealOpResult{cas, casBatch, rel, relBatch}
	if relBatch.NsPerSteal > 0 {
		rep.SpeedupRelaxedSteal = cas.NsPerSteal / relBatch.NsPerSteal
	}
	rep.RelaxedRun = MeasureRelaxedDuplicateRate(0, 0, 0)
	return rep
}
